// Timed coherence example: the MOESI directory protocol running over the
// real crossbar and broadcast-bus models with full timing — the simulation
// the paper deferred ("has not yet been modeled in the system simulation",
// Section 3.1.2).
//
// The experiment builds a widely shared line, upgrades one sharer to
// Modified, and compares the invalidation latency and crossbar message cost
// with and without the optical broadcast bus. It finishes with the bus's
// barrier-notification generalization timing a 64-cluster barrier.
//
//	go run ./examples/timedcoherence
package main

import (
	"fmt"

	"corona/internal/bus"
	"corona/internal/cohsim"
	"corona/internal/sim"
)

func invalidationRun(useBus bool, sharers int) (latNs float64, msgs uint64, broadcasts uint64) {
	cfg := cohsim.DefaultConfig()
	cfg.UseBus = useBus
	s := cohsim.New(cfg)
	line := uint64(0x2000)
	var issued uint64
	for n := 0; n <= sharers; n++ {
		s.Access(n, line, false, nil)
		issued++
		s.Run(issued)
	}
	before := s.NetworkMessages()
	s.Access(sharers, line, true, nil) // a sharer upgrades
	issued++
	s.Run(issued)
	return s.InvLatency.Mean(), s.NetworkMessages() - before, s.BusBroadcasts()
}

func main() {
	fmt.Println("Timed MOESI over the optical crossbar + broadcast bus")
	fmt.Println()
	fmt.Printf("%-8s  %-22s  %-22s\n", "sharers", "bus: ns / xbar msgs", "unicast: ns / xbar msgs")
	for _, sharers := range []int{4, 16, 40, 63} {
		bl, bm, bb := invalidationRun(true, sharers)
		ul, um, _ := invalidationRun(false, sharers)
		fmt.Printf("%-8d  %6.1f / %-12d  %6.1f / %-12d (broadcasts used: %d)\n",
			sharers, bl, bm, ul, um, bb)
	}

	fmt.Println("\nThe bus invalidates any sharer pool in one two-pass transit;")
	fmt.Println("unicast costs ~2 crossbar messages per sharer and serializes the acks.")

	// Barrier notification (Section 3.2.2's generalization).
	k := sim.NewKernel()
	b := bus.New(k, bus.DefaultConfig())
	br := bus.NewBarrier(b, 64)
	var done sim.Time
	for c := 0; c < 64; c++ {
		br.Arrive(c, func() { done = k.Now() })
	}
	k.Run()
	fmt.Printf("\nBarrier notification: 64 simultaneous arrivals resolved in %.1f ns\n", done.Ns())
	fmt.Println("(each cluster snoops all 64 one-byte arrival pulses and releases locally)")
}
