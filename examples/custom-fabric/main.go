// Custom-fabric example: build a sixth machine — an SWMR photonic crossbar
// with optically connected memory — from a JSON scenario, without touching
// the simulator's source, and race it against the paper's flagship XBar/OCM
// under identical traffic.
//
// The SWMR organization is the one Corona argues against in Section 3.2:
// each cluster modulates its own dedicated channel (no token arbitration on
// the send path) and every receiver filters all channels' wavelengths. The
// cost is component count and head-of-line blocking at the source; the win
// is zero arbitration latency. This example puts numbers on that trade.
//
//	go run ./examples/custom-fabric [scenario.json]
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"corona"
)

func main() {
	path := filepath.Join("examples", "custom-fabric", "scenario.json")
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else if _, err := os.Stat(path); err != nil {
		// Run from this example's own directory.
		path = "scenario.json"
	}

	sc, err := corona.LoadScenario(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("registered fabrics: %s\n", strings.Join(corona.Fabrics(), ", "))
	fmt.Printf("scenario %s: %d machines x %d workloads, %d requests/cell\n\n",
		path, len(sc.Configs), len(sc.Workloads), sc.Requests)

	// Per-workload rows: every machine in a row sees identical traffic, so
	// the speedup column is a fair one-on-one race. Rows run through the
	// context-aware Client API (docs/API.md).
	client := corona.NewClient()
	for _, spec := range sc.Workloads {
		results, err := client.Compare(context.Background(), spec, sc.Requests, sc.Seed, sc.Configs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		baseline := results[0]
		fmt.Printf("%s:\n", spec.Name)
		fmt.Printf("  %-10s  %10s  %9s  %12s  %10s  %8s\n",
			"config", "cycles", "TB/s", "latency(ns)", "chan-util", "speedup")
		for _, r := range results {
			fmt.Printf("  %-10s  %10d  %9.2f  %12.1f  %9.1f%%  %8.2f\n",
				r.Config, r.Cycles, r.AchievedTBs, r.MeanLatencyNs,
				r.XBarUtil*100, r.Speedup(baseline))
		}
	}

	fmt.Println("\nInterpretation:")
	fmt.Println("  With fully provisioned receivers, SWMR sends with zero arbitration latency")
	fmt.Println("  (the MWSR crossbar pays up to a token revolution), so it wins outright on")
	fmt.Println("  permutation patterns like Tornado and Transpose — but it spends N^2 receive")
	fmt.Println("  rings and 6 W more trimming power to get there, and each source serializes")
	fmt.Println("  its traffic through one channel in FIFO order (head-of-line blocking under")
	fmt.Println("  fan-out). That component-cost-versus-latency trade is exactly the")
	fmt.Println("  channel-organization argument of the paper's Section 3.2. Swap")
	fmt.Println("  \"tuned_receivers\": 1 into the scenario to price receiver arbitration")
	fmt.Println("  instead of N^2 receive rings; no recompile needed.")
}
