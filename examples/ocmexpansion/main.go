// OCM expansion example (Section 3.3 / Figure 6c): Corona grows memory by
// daisy-chaining optically connected memory modules on each fiber loop.
// Because light passes through modules without buffering or retiming, the
// incremental latency per module is tiny — unlike FBDIMM-style electrical
// chaining, which resamples and retransmits at every hop. The chain depth is
// bounded instead by the optical power budget.
//
// This example measures memory access latency versus chain depth on the
// simulated controller, compares an FBDIMM-like electrical chain, and prints
// the optical budget that limits depth.
//
//	go run ./examples/ocmexpansion
package main

import (
	"fmt"

	"corona/internal/memory"
	"corona/internal/photonic"
	"corona/internal/sim"
)

// measure returns the isolated read latency for a controller configuration.
func measure(cfg memory.Config) sim.Time {
	k := sim.NewKernel()
	c := memory.NewController(k, cfg, 0)
	var done sim.Time
	c.Submit(&memory.Request{ID: 1, Addr: 0, ReqBytes: 16, RspBytes: 72,
		Done: func() { done = k.Now() }})
	k.Run()
	return done
}

func main() {
	fmt.Println("OCM daisy-chain expansion: access latency vs depth")
	fmt.Printf("%-8s  %-18s  %-22s\n", "modules", "OCM latency (ns)", "FBDIMM-like (ns)")
	for depth := 1; depth <= 8; depth *= 2 {
		ocm := memory.OCMConfig()
		ocm.DaisyChain = depth

		// An electrical FBDIMM-style chain resamples at each module:
		// ~2 ns per hop each way instead of the optical pass-through.
		fb := memory.OCMConfig()
		fb.DaisyChain = depth
		fb.ChainHopCycles = sim.FromNs(2)

		fmt.Printf("%-8d  %-18.1f  %-22.1f\n", depth, measure(ocm).Ns(), measure(fb).Ns())
	}

	fmt.Println("\n\"As the light passes directly through the OCM without buffering or")
	fmt.Println(" retiming ... the memory access latency is similar across all modules.\"")

	fmt.Println("\nOptical budget limit on chain depth (launch power per wavelength):")
	for _, launch := range []float64{0, 5, 10, 15} {
		max := photonic.MaxOCMModules(launch, 1)
		fmt.Printf("  %4.1f dBm -> up to %d modules\n", launch, max)
	}
	fmt.Println("\nWorst-case loop budget through 4 modules at 10 dBm:")
	fmt.Println(photonic.OCMBudget(10, 4))
}
