// SPLASH-2 example: run one application model (FFT by default, or any
// Table 3 name passed as an argument) across all five system configurations
// and print its row of Figures 8, 9, and 10 — the per-application view of
// the paper's evaluation.
//
//	go run ./examples/splash2 [Ocean]
package main

import (
	"context"
	"fmt"
	"os"

	"corona"
)

func main() {
	name := "FFT"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	var spec corona.Workload
	found := false
	for _, s := range corona.AllWorkloads() {
		if s.Name == name {
			spec, found = s, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try a Table 3 name: Barnes, Cholesky, FFT, ... Water-Sp)\n", name)
		os.Exit(2)
	}

	const requests = 15000
	fmt.Printf("SPLASH-2 model %q: demand %.2f TB/s, %d simulated misses per configuration\n\n",
		spec.Name, spec.DemandTBs, requests)

	// All five configurations simulate concurrently on the sweep pool; the
	// shared seed gives every machine the identical offered traffic.
	results, err := corona.NewClient().Compare(context.Background(), spec, requests, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	baseline := results[0]
	fmt.Printf("%-10s  %10s  %9s  %12s  %8s\n", "config", "cycles", "TB/s", "latency(ns)", "speedup")
	for _, r := range results {
		fmt.Printf("%-10s  %10d  %9.2f  %12.1f  %8.2f\n",
			r.Config, r.Cycles, r.AchievedTBs, r.MeanLatencyNs, r.Speedup(baseline))
	}

	fmt.Println("\nInterpretation (paper, Section 5):")
	switch {
	case spec.DemandTBs < 0.96:
		fmt.Println("  low memory demand: even the electrical baseline satisfies it; all bars ~1.")
	case spec.Burst != nil:
		fmt.Println("  bursty, latency-bound: OCM gives most of the speedup, the crossbar adds some.")
	case spec.DemandTBs > 2:
		fmt.Println("  bandwidth-bound: fast memory helps, and is fully realized only with the crossbar.")
	default:
		fmt.Println("  moderate demand: modest OCM gains.")
	}
}
