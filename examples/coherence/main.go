// Coherence example: drive the MOESI directory protocol over a widely shared
// cache line and show why Corona augments its unicast crossbar with an
// optical broadcast bus (Section 3.2.2): invalidating a large sharer pool
// costs one bus transit instead of a storm of unicast messages.
//
// The example runs the protocol twice — once with the broadcast bus enabled,
// once forcing unicast-only invalidation — counts the protocol messages, and
// then times an actual invalidation broadcast on the bus model.
//
//	go run ./examples/coherence
package main

import (
	"fmt"

	"corona/internal/bus"
	"corona/internal/coherence"
	"corona/internal/noc"
	"corona/internal/sim"
)

func shareWidely(p *coherence.Protocol, line uint64, sharers int) {
	for n := 0; n < sharers; n++ {
		p.Read(n, line)
	}
}

func main() {
	const sharers = 63
	const line = 0x4000

	fmt.Printf("MOESI directory protocol, %d clusters, line %#x shared by %d clusters\n\n",
		64, line, sharers)

	// With the broadcast bus.
	withBus := coherence.New(64, coherence.Transport{})
	withBus.BroadcastThreshold = 3
	shareWidely(withBus, line, sharers)
	before := withBus.Stats()
	withBus.Write(63, line)
	after := withBus.Stats()
	fmt.Printf("with broadcast bus:  %3d unicasts + %d broadcast to invalidate %d sharers\n",
		after.UnicastMessages-before.UnicastMessages,
		after.BroadcastMessages-before.BroadcastMessages,
		after.Invalidations-before.Invalidations)

	// Unicast-only (no bus).
	noBus := coherence.New(64, coherence.Transport{})
	noBus.BroadcastThreshold = 1 << 30
	shareWidely(noBus, line, sharers)
	before = noBus.Stats()
	noBus.Write(63, line)
	after = noBus.Stats()
	fmt.Printf("unicast-only:        %3d unicasts to invalidate %d sharers\n\n",
		after.UnicastMessages-before.UnicastMessages,
		after.Invalidations-before.Invalidations)

	if err := withBus.CheckInvariants(); err != nil {
		fmt.Println("protocol invariant violation:", err)
		return
	}
	fmt.Println("MOESI invariants hold after the writes.")

	// Time one invalidate on the optical broadcast bus model: modulated on
	// the first pass of the coiled waveguide, snooped by all 64 clusters on
	// the second.
	k := sim.NewKernel()
	b := bus.New(k, bus.DefaultConfig())
	var first, last sim.Time
	snooped := 0
	for c := 0; c < 64; c++ {
		b.SetDeliver(c, func(m *noc.Message) {
			if snooped == 0 {
				first = k.Now()
			}
			snooped++
			last = k.Now()
		})
	}
	m := b.Acquire()
	m.ID, m.Src, m.Dst = 1, 63, -1
	m.Size, m.Kind = 16, noc.KindInvalidate
	b.Broadcast(m)
	k.Run()
	fmt.Printf("\noptical broadcast bus: %d clusters snooped the invalidate between %.1f and %.1f ns\n",
		snooped, first.Ns(), last.Ns())
	fmt.Printf("one %d-byte message replaced %d unicast invalidations\n",
		noc.RequestBytes, sharers)
}
