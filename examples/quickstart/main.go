// Quickstart: build the flagship Corona machine (optical crossbar + optically
// connected memory), run a uniform random workload, and print the headline
// statistics next to the LMesh/ECM electrical baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"corona"
)

func main() {
	const requests = 20000
	uniform := corona.SyntheticWorkloads()[0]

	fmt.Println("Corona quickstart: 64 clusters / 256 cores, uniform random memory traffic")
	fmt.Printf("simulating %d L2 misses per configuration...\n\n", requests)

	// The Client API: context-aware, error-returning (docs/API.md).
	ctx := context.Background()
	client := corona.NewClient()
	optical, err := client.Run(ctx, corona.Corona(), uniform, requests, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	baseline, err := client.Run(ctx, corona.Configurations()[0], uniform, requests, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	row := func(r corona.Result) {
		fmt.Printf("%-10s  %8d cycles  %6.2f TB/s  %7.1f ns mean latency  %5.1f W network\n",
			r.Config, r.Cycles, r.AchievedTBs, r.MeanLatencyNs, r.NetworkPowerW)
	}
	row(baseline)
	row(optical)

	fmt.Printf("\nCorona speedup over the electrical baseline: %.2fx\n", optical.Speedup(baseline))
	fmt.Printf("Crossbar channel utilization: %.1f%%\n", optical.XBarUtil*100)

	fmt.Println("\nThe machine's analytic inventory (Table 2 of the paper):")
	fmt.Println(corona.Table2())
}
