package corona

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"corona/internal/cluster"
	"corona/internal/noc"
	"corona/internal/sim"
	"corona/internal/trace"
)

func TestPublicConfigurations(t *testing.T) {
	cfgs := Configurations()
	if len(cfgs) != 5 {
		t.Fatalf("configurations = %d, want 5", len(cfgs))
	}
	if Corona().Name() != "XBar/OCM" {
		t.Fatalf("Corona() = %s", Corona().Name())
	}
}

func TestPublicWorkloads(t *testing.T) {
	if n := len(SyntheticWorkloads()); n != 4 {
		t.Fatalf("synthetics = %d, want 4", n)
	}
	if n := len(SplashWorkloads()); n != 11 {
		t.Fatalf("splash = %d, want 11", n)
	}
	if n := len(AllWorkloads()); n != 15 {
		t.Fatalf("all = %d, want 15", n)
	}
}

func TestPublicRun(t *testing.T) {
	res := RunWorkload(Corona(), SyntheticWorkloads()[0], 1000, 1)
	if res.Requests != 1000 || res.Cycles == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Config != "XBar/OCM" || res.Workload != "Uniform" {
		t.Fatalf("labels: %s / %s", res.Config, res.Workload)
	}
}

func TestPublicReplay(t *testing.T) {
	recs := []TraceRecord{
		{Time: 0, Thread: 0, Addr: 0x40 * 5, Write: false},
		{Time: 1, Thread: 900, Addr: 0x40 * 9, Write: true},
	}
	res := ReplayTrace(Corona(), recs, 16)
	if res.Requests != 2 {
		t.Fatalf("replay requests = %d, want 2", res.Requests)
	}
}

func TestPublicTables(t *testing.T) {
	checks := map[string]struct {
		table *Table
		want  string
	}{
		"Table1": {Table1(), "MOESI"},
		"Table2": {Table2(), "1024 K"},
		"Table3": {Table3(), "Radix"},
		"Table4": {Table4(), "256 fibers"},
	}
	for name, c := range checks {
		if !strings.Contains(c.table.String(), c.want) {
			t.Errorf("%s missing %q:\n%s", name, c.want, c.table)
		}
	}
}

func TestPublicBudgets(t *testing.T) {
	if !CrossbarBudget(10).Closes() {
		t.Error("crossbar budget should close at 10 dBm")
	}
	deep := OCMChainBudget(0, 4)
	shallow := OCMChainBudget(0, 1)
	if deep.MarginDB() >= shallow.MarginDB() {
		t.Error("deeper OCM chains must have less margin")
	}
}

func TestPublicSweep(t *testing.T) {
	s := NewSweep(300, 2)
	s.Workloads = s.Workloads[:1]
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Figure8().String(), "Uniform") {
		t.Fatal("Figure 8 missing workload row")
	}
}

func TestPublicSweepParallelDeterminism(t *testing.T) {
	// The façade-level statement of docs/DETERMINISM.md: sequential and
	// parallel sweeps (with an on-disk cache in the mix) render the same
	// bytes.
	render := func(s *Sweep) string {
		return s.Figure8().String() + s.Figure9().String() +
			s.Figure10().String() + s.Figure11().String()
	}
	mk := func() *Sweep {
		s := NewSweep(300, 5)
		s.Workloads = s.Workloads[:2]
		return s
	}
	seq := mk()
	if err := seq.Run(context.Background(), Workers(1)); err != nil {
		t.Fatal(err)
	}
	par := mk()
	if err := par.Run(context.Background(), Workers(8), CacheDir(t.TempDir())); err != nil {
		t.Fatal(err)
	}
	if render(seq) != render(par) {
		t.Fatalf("parallel+cached tables differ from sequential:\n%s\n--- want ---\n%s",
			render(par), render(seq))
	}
}

func TestPublicFabricsAndCustomConfig(t *testing.T) {
	names := Fabrics()
	for _, want := range []string{"xbar", "hmesh", "lmesh", "swmr"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Fabrics() = %v, missing %q", names, want)
		}
	}
	cfg := CustomConfig("", "swmr", OCM, nil)
	if cfg.Name() != "SWMR/OCM" || cfg.Clusters != 64 {
		t.Fatalf("CustomConfig = %+v", cfg)
	}
	res := RunWorkload(cfg, SyntheticWorkloads()[0], 800, 3)
	if res.Config != "SWMR/OCM" || res.Cycles == 0 || res.NetworkPowerW != 32 {
		t.Fatalf("SWMR run = %+v", res)
	}
	if _, err := ParseConfigName("SWMR/OCM"); err != nil {
		t.Errorf("ParseConfigName(SWMR/OCM): %v", err)
	}
	if _, err := ParseConfigName("Warp/OCM"); err == nil {
		t.Error("ParseConfigName accepted an unknown preset")
	}
}

// idealNet is a minimal user-defined fabric: single-cycle delivery, no
// contention, no back pressure — the "infinite interconnect" upper bound.
type idealNet struct {
	noc.MsgPool

	k       *sim.Kernel
	n       int
	deliver []noc.DeliverFunc
	slots   sim.Slots[*noc.Message]
	stats   noc.Stats
}

type idealDeliver idealNet

func (e *idealDeliver) OnEvent(_ sim.Time, data uint64) {
	x := (*idealNet)(e)
	m := x.slots.Take(data)
	x.stats.Messages++
	x.stats.Bytes += uint64(m.Size)
	x.deliver[m.Dst](m)
}

func (x *idealNet) Name() string                               { return "ideal" }
func (x *idealNet) Clusters() int                              { return x.n }
func (x *idealNet) Stats() noc.Stats                           { return x.stats }
func (x *idealNet) SetDeliver(cluster int, fn noc.DeliverFunc) { x.deliver[cluster] = fn }
func (x *idealNet) Consume(_ int, m *noc.Message)              { x.Release(m) }
func (x *idealNet) Send(m *noc.Message) bool {
	x.k.ScheduleEvent(1, (*idealDeliver)(x), x.slots.Put(m))
	return true
}

// TestRegisterFabricEndToEnd registers a fabric through the public façade
// and drives it through RunWorkload and a matrix sweep — the complete
// "add a topology without touching the simulator" path.
func TestRegisterFabricEndToEnd(t *testing.T) {
	// The registry is process-global, so guard against double registration
	// when the test binary reruns in one process (-count=2, bench mixes).
	if _, registered := noc.Lookup("ideal"); !registered {
		RegisterFabric(Fabric{
			Name:        "ideal",
			Display:     "Ideal",
			Description: "zero-contention single-cycle interconnect (upper bound)",
			Build: func(k *sim.Kernel, p FabricParams) (Network, error) {
				return &idealNet{k: k, n: p.Clusters, deliver: make([]noc.DeliverFunc, p.Clusters)}, nil
			},
		})
	}
	ideal := CustomConfig("", "ideal", OCM, nil)
	spec := SyntheticWorkloads()[0]
	res := RunWorkload(ideal, spec, 1000, 5)
	if res.Config != "Ideal/OCM" || res.Requests != 1000 {
		t.Fatalf("ideal run = %+v", res)
	}
	real := RunWorkload(Corona(), spec, 1000, 5)
	if res.Cycles > real.Cycles {
		t.Errorf("ideal interconnect (%d cycles) slower than the crossbar (%d)", res.Cycles, real.Cycles)
	}
	// And through an arbitrary matrix with the determinism guarantee.
	mk := func() *Sweep {
		return NewMatrixSweep([]SystemConfig{Corona(), ideal}, AllWorkloads()[:2], 300, 9)
	}
	seq := mk()
	if err := seq.Run(context.Background(), Workers(1)); err != nil {
		t.Fatal(err)
	}
	par := mk()
	if err := par.Run(context.Background(), Workers(4)); err != nil {
		t.Fatal(err)
	}
	if seq.Figure8().String() != par.Figure8().String() {
		t.Fatal("custom-fabric matrix not deterministic across worker counts")
	}
	if !strings.Contains(seq.Figure8().String(), "Ideal/OCM") {
		t.Fatalf("Figure 8 missing the custom column:\n%s", seq.Figure8())
	}
}

func TestPublicCompareCustomConfigs(t *testing.T) {
	spec := SyntheticWorkloads()[0]
	res := CompareConfigs(spec, 600, 3, Corona(), CustomConfig("", "swmr", OCM, nil))
	if len(res) != 2 || res[0].Config != "XBar/OCM" || res[1].Config != "SWMR/OCM" {
		t.Fatalf("explicit-config compare = %+v", res)
	}
}

func TestPublicCompareConfigs(t *testing.T) {
	res := CompareConfigs(SyntheticWorkloads()[0], 800, 3)
	if len(res) != 5 {
		t.Fatalf("CompareConfigs returned %d results, want 5", len(res))
	}
	for i, cfg := range Configurations() {
		if res[i].Config != cfg.Name() {
			t.Fatalf("result %d is %s, want %s (Configurations() order)", i, res[i].Config, cfg.Name())
		}
	}
	if res[4].Cycles >= res[0].Cycles {
		t.Errorf("XBar/OCM (%d cycles) not faster than LMesh/ECM (%d) under uniform load",
			res[4].Cycles, res[0].Cycles)
	}
}

// TestFullPipeline exercises the complete two-part infrastructure end to
// end, as the paper's Section 4 describes it: synthetic threads run against
// real L1/L2 cache models (the COTSon substitute), the resulting L2 misses
// are serialized to the trace format, read back, and replayed on two system
// configurations by the network simulator.
func TestFullPipeline(t *testing.T) {
	var buf bytes.Buffer
	const perCluster = 100
	w, err := trace.NewWriter(&buf, 64*perCluster)
	if err != nil {
		t.Fatal(err)
	}
	model := cluster.ThreadModel{
		WorkingSetLines:    32 * 1024, // thrashes the 256 KB sim L2
		StreamFrac:         0.2,
		WriteFrac:          0.3,
		ReferencesPerCycle: 0.5,
	}
	for c := 0; c < 64; c++ {
		eng := cluster.NewTraceEngine(cluster.New(c, true), model, 7+uint64(c))
		if err := eng.Generate(w, perCluster); err != nil {
			t.Fatal(err)
		}
		if eng.MissRate() == 0 {
			t.Fatalf("cluster %d produced no misses", c)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 64*perCluster {
		t.Fatalf("trace has %d records, want %d", len(recs), 64*perCluster)
	}

	fast := ReplayTrace(Corona(), recs, cluster.ThreadsPerCluster)
	slow := ReplayTrace(Configurations()[0], recs, cluster.ThreadsPerCluster)
	if fast.Requests != len(recs) || slow.Requests != len(recs) {
		t.Fatalf("replay incomplete: %d/%d", fast.Requests, slow.Requests)
	}
	if fast.Cycles >= slow.Cycles {
		t.Errorf("XBar/OCM replay (%d cycles) not faster than LMesh/ECM (%d)",
			fast.Cycles, slow.Cycles)
	}
	if fast.MeanLatencyNs >= slow.MeanLatencyNs {
		t.Errorf("XBar/OCM latency %.1f >= LMesh/ECM %.1f", fast.MeanLatencyNs, slow.MeanLatencyNs)
	}
}

// TestPublicClientJob drives the new context-aware API through the façade:
// a one-shot Client.Run that matches the deprecated blocking wrapper result
// for result, typed rejection of bad input, and a streamed Job whose cells
// cover the matrix.
func TestPublicClientJob(t *testing.T) {
	client := NewClient(WithWorkers(4))
	spec := SyntheticWorkloads()[0]
	res, err := client.Run(context.Background(), Corona(), spec, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	if legacy := RunWorkload(Corona(), spec, 800, 3); res != legacy {
		t.Fatalf("Client.Run differs from the deprecated wrapper:\n%+v\nvs\n%+v", res, legacy)
	}

	_, err = client.Run(context.Background(), CustomConfig("", "no-such-fabric", OCM, nil), spec, 100, 1)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("unknown fabric: got %v, want *ConfigError", err)
	}

	s := NewMatrixSweep([]SystemConfig{Corona(), CustomConfig("", "swmr", OCM, nil)},
		AllWorkloads()[:2], 300, 9)
	job, err := client.Submit(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	for cell := range job.Results() {
		cells++
		if cell.Result.Cycles == 0 {
			t.Errorf("cell %s on %s has zero runtime", cell.Workload, cell.Config)
		}
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cells != 4 {
		t.Fatalf("streamed %d cells, want 4", cells)
	}
}
