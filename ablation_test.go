package corona

// Ablation benches: quantify the design choices DESIGN.md calls out.
//
//	go test -bench=Ablation -benchtime=1x
//
// Each sub-benchmark runs a fixed-size workload under a parameter sweep and
// reports the simulated runtime in cycles as a custom metric, so the cost or
// benefit of the design point reads directly off the bench output.

import (
	"fmt"
	"testing"

	"corona/internal/config"
	"corona/internal/core"
	"corona/internal/memory"
	"corona/internal/mesh"
	"corona/internal/sim"
	"corona/internal/traffic"
	"corona/internal/xbar"
)

const ablationRequests = 10000

func ablationSpec() traffic.Spec {
	return traffic.Spec{Name: "ablation", Kind: traffic.Uniform, DemandTBs: 5, WriteFrac: 0.3}
}

// BenchmarkAblationArbitration compares Corona's optical token-ring
// arbitration (8 positions/cycle, up to one revolution of wait) against an
// idealized near-zero-cost arbiter, isolating the token scheme's overhead.
func BenchmarkAblationArbitration(b *testing.B) {
	cases := []struct {
		name  string
		speed int
	}{
		{"token-8pos-per-cycle", 8},
		{"ideal-arbitration", 1 << 20},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var cycles sim.Time
			for i := 0; i < b.N; i++ {
				xb := xbar.DefaultConfig()
				xb.TokenSpeed = c.speed
				cfg := config.Corona()
				cfg.XBarOverride = &xb
				cycles = core.Run(cfg, ablationSpec(), ablationRequests, 5).Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationXBarWidth sweeps the crossbar channel width (the paper's
// is 256 λ = 64 B/cycle: one cache line per clock).
func BenchmarkAblationXBarWidth(b *testing.B) {
	for _, width := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("bytes-per-cycle-%d", width), func(b *testing.B) {
			var cycles sim.Time
			for i := 0; i < b.N; i++ {
				xb := xbar.DefaultConfig()
				xb.BytesPerCycle = width
				cfg := config.Corona()
				cfg.XBarOverride = &xb
				cycles = core.Run(cfg, ablationSpec(), ablationRequests, 5).Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationMeshBisection sweeps the electrical mesh link width
// around the paper's LMesh (8 B/cycle) and HMesh (16 B/cycle) points.
func BenchmarkAblationMeshBisection(b *testing.B) {
	for _, width := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("link-bytes-per-cycle-%d", width), func(b *testing.B) {
			var cycles sim.Time
			for i := 0; i < b.N; i++ {
				mc := mesh.HMeshConfig()
				mc.Name = fmt.Sprintf("mesh-%d", width)
				mc.BytesPerCycle = width
				cfg := config.Default(config.HMesh, config.OCM)
				cfg.MeshOverride = &mc
				cycles = core.Run(cfg, ablationSpec(), ablationRequests, 5).Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationOCMChain sweeps OCM daisy-chain depth; the un-retimed
// optical pass-through should cost ~0.2 ns per module on end-to-end latency.
func BenchmarkAblationOCMChain(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("modules-%d", depth), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				mem := memory.OCMConfig()
				mem.DaisyChain = depth
				cfg := config.Corona()
				cfg.MemOverride = &mem
				lat = core.Run(cfg, ablationSpec(), ablationRequests, 5).MeanLatencyNs
			}
			b.ReportMetric(lat, "mean-latency-ns")
		})
	}
}

// BenchmarkAblationMSHRs sweeps the per-cluster MSHR file size, the knob
// bounding each cluster's memory-level parallelism.
func BenchmarkAblationMSHRs(b *testing.B) {
	for _, mshrs := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("mshrs-%d", mshrs), func(b *testing.B) {
			var cycles sim.Time
			for i := 0; i < b.N; i++ {
				cfg := config.Corona()
				cfg.MSHRs = mshrs
				cycles = core.Run(cfg, ablationSpec(), ablationRequests, 5).Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}
