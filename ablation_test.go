package corona

// Ablation benches: quantify the design choices DESIGN.md calls out.
//
//	go test -bench=Ablation -benchtime=1x
//
// Each benchmark sweeps one parameter and reports the simulated runtime in
// cycles (or latency in ns) as a custom metric, so the cost or benefit of
// the design point reads directly off the bench output. The points of each
// sweep are independent deterministic cells, so they are simulated
// concurrently on the core worker pool (core.RunCells) before the
// sub-benchmarks report them — the wall-clock win of the sweep engine
// applied to the ablation matrix.

import (
	"context"
	"fmt"
	"testing"

	"corona/internal/config"
	"corona/internal/core"
	"corona/internal/memory"
	"corona/internal/mesh"
	"corona/internal/traffic"
	"corona/internal/xbar"
)

// xbarPoint is one crossbar ablation cell: the flagship machine with a
// single fabric parameter overridden through the registry's param map.
func xbarPoint(param string, value int) config.System {
	cfg := config.Corona()
	cfg.FabricParams = map[string]int{param: value}
	return cfg
}

const ablationRequests = 10000

func ablationSpec() traffic.Spec {
	return traffic.Spec{Name: "ablation", Kind: traffic.Uniform, DemandTBs: 5, WriteFrac: 0.3}
}

// reportAblation simulates every cell concurrently, then emits one
// sub-benchmark per point reporting metric(result).
func reportAblation(b *testing.B, names []string, cells []core.Cell, unit string, metric func(core.Result) float64) {
	b.Helper()
	results, err := core.RunCells(context.Background(), cells, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := range cells {
		v := metric(results[i])
		b.Run(names[i], func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				_ = v
			}
			b.ReportMetric(v, unit)
		})
	}
}

func cycles(r core.Result) float64 { return float64(r.Cycles) }

// BenchmarkAblationArbitration compares Corona's optical token-ring
// arbitration (8 positions/cycle, up to one revolution of wait) against an
// idealized near-zero-cost arbiter, isolating the token scheme's overhead.
func BenchmarkAblationArbitration(b *testing.B) {
	cases := []struct {
		name  string
		speed int
	}{
		{"token-8pos-per-cycle", 8},
		{"ideal-arbitration", 1 << 20},
	}
	var names []string
	var cells []core.Cell
	for _, c := range cases {
		names = append(names, c.name)
		cells = append(cells, core.Cell{Config: xbarPoint(xbar.ParamTokenSpeed, c.speed),
			Spec: ablationSpec(), Requests: ablationRequests, Seed: 5})
	}
	reportAblation(b, names, cells, "sim-cycles", cycles)
}

// BenchmarkAblationXBarWidth sweeps the crossbar channel width (the paper's
// is 256 λ = 64 B/cycle: one cache line per clock).
func BenchmarkAblationXBarWidth(b *testing.B) {
	var names []string
	var cells []core.Cell
	for _, width := range []int{16, 32, 64, 128} {
		names = append(names, fmt.Sprintf("bytes-per-cycle-%d", width))
		cells = append(cells, core.Cell{Config: xbarPoint(xbar.ParamBytesPerCycle, width),
			Spec: ablationSpec(), Requests: ablationRequests, Seed: 5})
	}
	reportAblation(b, names, cells, "sim-cycles", cycles)
}

// BenchmarkAblationMeshBisection sweeps the electrical mesh link width
// around the paper's LMesh (8 B/cycle) and HMesh (16 B/cycle) points.
func BenchmarkAblationMeshBisection(b *testing.B) {
	var names []string
	var cells []core.Cell
	for _, width := range []int{4, 8, 16, 32} {
		cfg := config.Default(config.HMesh, config.OCM)
		cfg.Label = fmt.Sprintf("Mesh-%dB/OCM", width)
		cfg.FabricParams = map[string]int{mesh.ParamBytesPerCycle: width}
		names = append(names, fmt.Sprintf("link-bytes-per-cycle-%d", width))
		cells = append(cells, core.Cell{Config: cfg, Spec: ablationSpec(), Requests: ablationRequests, Seed: 5})
	}
	reportAblation(b, names, cells, "sim-cycles", cycles)
}

// BenchmarkAblationOCMChain sweeps OCM daisy-chain depth; the un-retimed
// optical pass-through should cost ~0.2 ns per module on end-to-end latency.
func BenchmarkAblationOCMChain(b *testing.B) {
	var names []string
	var cells []core.Cell
	for _, depth := range []int{1, 2, 4, 8} {
		mem := memory.OCMConfig()
		mem.DaisyChain = depth
		cfg := config.Corona()
		cfg.MemOverride = &mem
		names = append(names, fmt.Sprintf("modules-%d", depth))
		cells = append(cells, core.Cell{Config: cfg, Spec: ablationSpec(), Requests: ablationRequests, Seed: 5})
	}
	reportAblation(b, names, cells, "mean-latency-ns", func(r core.Result) float64 { return r.MeanLatencyNs })
}

// BenchmarkAblationMSHRs sweeps the per-cluster MSHR file size, the knob
// bounding each cluster's memory-level parallelism.
func BenchmarkAblationMSHRs(b *testing.B) {
	var names []string
	var cells []core.Cell
	for _, mshrs := range []int{8, 16, 32, 64, 128} {
		cfg := config.Corona()
		cfg.MSHRs = mshrs
		names = append(names, fmt.Sprintf("mshrs-%d", mshrs))
		cells = append(cells, core.Cell{Config: cfg, Spec: ablationSpec(), Requests: ablationRequests, Seed: 5})
	}
	reportAblation(b, names, cells, "sim-cycles", cycles)
}
