package corona

// The benchmark harness regenerates every table and figure of the paper's
// evaluation:
//
//	go test -bench=Table -benchmem      # Tables 1-4 (analytic)
//	go test -bench=Fig -benchmem        # Figures 8-11 (full 5x15 sweep)
//	go test -bench=Component -benchmem  # interconnect/memory micro-benches
//
// Figure benches share one sweep per request scale (cached across benches)
// and report the paper's headline statistics as custom metrics. Absolute
// numbers depend on the synthetic workload substitution (see DESIGN.md);
// the shapes — who wins, by what factor, where the crossovers fall — are
// the reproduction target. Use cmd/corona-sweep to print the full rows.

import (
	"container/heap"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"corona/internal/config"
	"corona/internal/core"
	"corona/internal/memory"
	"corona/internal/mesh"
	"corona/internal/noc"
	"corona/internal/sim"
	"corona/internal/traffic"
	"corona/internal/xbar"
)

// benchRequests is the per-cell request count for figure benches: large
// enough for stable steady-state shapes, small enough to keep the full
// 75-cell matrix in the tens of seconds even sequentially.
const benchRequests = 8000

var (
	sweepOnce   sync.Once
	sweepShared *core.Sweep
)

func benchSweep(b *testing.B) *core.Sweep {
	b.Helper()
	sweepOnce.Do(func() {
		s := core.NewSweep(benchRequests, 42)
		if err := s.Run(context.Background()); err != nil { // parallel engine, GOMAXPROCS workers
			b.Fatal(err)
		}
		sweepShared = s
	})
	return sweepShared
}

// BenchmarkSweepEngine times the full 5x15 matrix sequentially (Workers(1))
// and on the parallel engine, reports the wall-clock speedup, and fails if
// the two runs' Figure 8-11 tables are not byte-identical — the determinism
// guarantee asserted at full-matrix scale. One iteration is enough:
//
//	go test -bench=SweepEngine -benchtime=1x
//
// The 75 cells are embarrassingly parallel (no shared state, no
// synchronization inside a cell), so the reported "speedup" tracks the
// host's core count until the longest cells — the saturated LMesh/ECM
// columns — dominate the tail. On a single-core host it sits at ~1.0,
// which doubles as a check that the engine itself adds no overhead.
func BenchmarkSweepEngine(b *testing.B) {
	const requests = 2000 // smaller cells than benchRequests: this bench pays for the matrix twice
	for i := 0; i < b.N; i++ {
		seq := core.NewSweep(requests, 42)
		t0 := time.Now()
		if err := seq.Run(context.Background(), core.Workers(1)); err != nil {
			b.Fatal(err)
		}
		seqElapsed := time.Since(t0)

		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		par := core.NewSweep(requests, 42)
		t1 := time.Now()
		if err := par.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		parElapsed := time.Since(t1)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)

		if seq.Figure8().String() != par.Figure8().String() ||
			seq.Figure9().String() != par.Figure9().String() ||
			seq.Figure10().String() != par.Figure10().String() ||
			seq.Figure11().String() != par.Figure11().String() {
			b.Fatal("parallel sweep tables differ from sequential")
		}
		// Kernel throughput across the whole matrix: total discrete events
		// dispatched per wall-clock second of the parallel run, and heap
		// allocations amortized per event (the wheel kernel's zero-allocation
		// claim at system scale — remaining allocations are messages and
		// per-cell setup, not scheduler nodes).
		var events uint64
		for _, row := range par.Results {
			for _, cell := range row {
				events += cell.KernelEvents
			}
		}
		allocs := after.Mallocs - before.Mallocs
		b.ReportMetric(float64(events)/parElapsed.Seconds(), "events/s")
		b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
		b.ReportMetric(float64(allocs)/75, "allocs/cell")
		b.ReportMetric(seqElapsed.Seconds(), "seq-s")
		b.ReportMetric(parElapsed.Seconds(), "par-s")
		b.ReportMetric(seqElapsed.Seconds()/parElapsed.Seconds(), "speedup")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	}
}

// BenchmarkWarmupFork prices warmup forking at the cell level: the same
// replay run from scratch versus forked from a shared barrier snapshot
// (docs/DETERMINISM.md, "Warmup forking and the snapshot contract"). Two
// workload shapes bound the mechanism:
//
//   - mid: a 99.9%-local stream whose barrier falls mid-replay — the shape
//     the sweep engine actually forks. The saving is the skipped prefix; the
//     barrier-cycles metric shows how deep it was.
//   - full: an all-local stream (no remote record at all), where the donor
//     replays the entire cell and a fork only restores final state — the
//     upper bound on what forking can save.
//
// The paper's fifteen workloads all touch the network at time zero (their
// barrier is zero), so neither shape occurs in the headline matrix; this
// bench prices the mechanism, not the sweep. BenchmarkSweepEngine remains
// the full-sweep wall-clock number.
func BenchmarkWarmupFork(b *testing.B) {
	const forkRequests = 4000
	shapes := []struct {
		name string
		spec traffic.Spec
	}{
		{"mid", traffic.Spec{Name: "LocalUniform", Kind: traffic.Uniform,
			DemandTBs: 5, LocalFrac: 0.999, WriteFrac: 0.3}},
		{"full", traffic.Spec{Name: "LocalTranspose", Kind: traffic.Transpose,
			DemandTBs: 5, LocalFrac: 1, WriteFrac: 0.1}},
	}
	cfg := config.Corona()
	for _, shape := range shapes {
		buckets := core.MaterializeStream(shape.spec, cfg.Clusters, forkRequests, core.CellSeed(1, shape.spec.Name))
		barrier := core.WarmupHorizon(buckets)
		if barrier == 0 {
			b.Fatalf("%s: warmup barrier is zero; the fork path would not run", shape.name)
		}
		b.Run(shape.name+"/scratch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, err := core.ReplayRunner(sys, shape.spec.Name, buckets)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(shape.name+"/forked", func(b *testing.B) {
			donor, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			dr, err := core.ReplayRunner(donor, shape.spec.Name, buckets)
			if err != nil {
				b.Fatal(err)
			}
			dr.RunToBarrier(barrier)
			snap, err := dr.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				fr, err := core.ForkRunner(sys, snap)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fr.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			if barrier != ^sim.Time(0) {
				b.ReportMetric(float64(barrier), "barrier-cycles")
			}
		})
	}
}

// --- Kernel micro-benches: scheduler throughput in isolation. ---
//
// The workload is the component steady state: a fixed population of 64
// self-perpetuating event chains (one per cluster) with mixed 1-16 cycle
// delays, so every dispatch schedules exactly one successor. Three variants
// share it: the typed Handler fast path, the closure compatibility path, and
// a faithful reimplementation of the seed's container/heap kernel as the
// before/after baseline. docs/PERFORMANCE.md records the numbers.

// kernelChains is the in-flight event population for kernel benches.
const kernelChains = 64

func kernelNextData(data uint64) uint64 { return data*2654435761 + 12345 }

func kernelDelay(data uint64) sim.Time { return sim.Time(data&15) + 1 }

// benchHandler is the typed-path target: reschedules itself forever;
// RunLimit bounds the run.
type benchHandler struct {
	k *sim.Kernel
}

func (h *benchHandler) OnEvent(_ sim.Time, data uint64) {
	h.k.ScheduleEvent(kernelDelay(data), h, kernelNextData(data))
}

// seedEvent/seedHeap/seedKernel reimplement the pre-wheel kernel —
// container/heap of captured closures, interface{} boxing on every push and
// pop — exactly as the seed shipped it, so BenchmarkKernel/seed-heap is the
// honest baseline for the wheel's speedup claim.
type seedEvent struct {
	when sim.Time
	seq  uint64
	fn   func()
}

type seedHeap []seedEvent

func (h seedHeap) Len() int { return len(h) }
func (h seedHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h seedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *seedHeap) Push(x interface{}) { *h = append(*h, x.(seedEvent)) }
func (h *seedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type seedKernel struct {
	pq  seedHeap
	now sim.Time
	seq uint64
}

func (k *seedKernel) Schedule(delay sim.Time, fn func()) {
	k.seq++
	heap.Push(&k.pq, seedEvent{when: k.now + delay, seq: k.seq, fn: fn})
}

func (k *seedKernel) RunLimit(n uint64) {
	for i := uint64(0); i < n && len(k.pq) > 0; i++ {
		e := heap.Pop(&k.pq).(seedEvent)
		k.now = e.when
		e.fn()
	}
}

// BenchmarkKernel compares scheduler paths on the same self-perpetuating
// workload; events/s is the headline metric, allocs/op the zero-allocation
// check (typed path: 0 steady-state allocs; closure paths: one closure per
// event plus queue growth).
func BenchmarkKernel(b *testing.B) {
	b.Run("typed", func(b *testing.B) {
		k := sim.NewKernel()
		h := &benchHandler{k: k}
		for i := 0; i < kernelChains; i++ {
			k.ScheduleEvent(sim.Time(i&15)+1, h, uint64(i)*7919)
		}
		b.ReportAllocs()
		b.ResetTimer()
		k.RunLimit(uint64(b.N))
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("closure", func(b *testing.B) {
		k := sim.NewKernel()
		var step func(data uint64)
		step = func(data uint64) {
			next := kernelNextData(data)
			k.Schedule(kernelDelay(data), func() { step(next) })
		}
		for i := 0; i < kernelChains; i++ {
			step(uint64(i) * 7919)
		}
		b.ReportAllocs()
		b.ResetTimer()
		k.RunLimit(uint64(b.N))
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("seed-heap", func(b *testing.B) {
		k := &seedKernel{}
		var step func(data uint64)
		step = func(data uint64) {
			next := kernelNextData(data)
			k.Schedule(kernelDelay(data), func() { step(next) })
		}
		for i := 0; i < kernelChains; i++ {
			step(uint64(i) * 7919)
		}
		b.ReportAllocs()
		b.ResetTimer()
		k.RunLimit(uint64(b.N))
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkTable1Config regenerates the resource configuration table.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Inventory regenerates the optical resource inventory and
// reports the paper's totals (388 waveguides, ~1056 K rings).
func BenchmarkTable2Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table2().String() == "" {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(388, "waveguides")
	b.ReportMetric(1056, "Krings")
}

// BenchmarkTable3Benchmarks regenerates the benchmark setup table.
func BenchmarkTable3Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table3().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4Memory regenerates the OCM-vs-ECM comparison and reports
// the aggregate bandwidths.
func BenchmarkTable4Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table4().String() == "" {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(memory.OCMConfig().AggregateBytesPerSec(64)/1e12, "OCM-TB/s")
	b.ReportMetric(memory.ECMConfig().AggregateBytesPerSec(64)/1e12, "ECM-TB/s")
}

// BenchmarkFig8Speedup runs the sweep and reports the paper's headline
// geometric-mean speedups (paper: synthetics 3.28 / 2.36, SPLASH 1.80 /
// 1.44).
func BenchmarkFig8Speedup(b *testing.B) {
	var s *core.Sweep
	for i := 0; i < b.N; i++ {
		s = benchSweep(b)
	}
	synOCM, synXBar := s.GeoMeanSummary(0, 4)
	splOCM, splXBar := s.GeoMeanSummary(4, 15)
	b.ReportMetric(synOCM, "syn-OCM/ECM")
	b.ReportMetric(synXBar, "syn-XBar/HMesh")
	b.ReportMetric(splOCM, "splash-OCM/ECM")
	b.ReportMetric(splXBar, "splash-XBar/HMesh")
}

// BenchmarkFig9Bandwidth reports XBar/OCM's peak achieved bandwidth across
// workloads (the tallest bar of Figure 9).
func BenchmarkFig9Bandwidth(b *testing.B) {
	var s *core.Sweep
	for i := 0; i < b.N; i++ {
		s = benchSweep(b)
	}
	xo := len(s.Configs) - 1 // XBar/OCM
	var peak, base float64
	for w := range s.Workloads {
		if v := s.Results[w][xo].AchievedTBs; v > peak {
			peak = v
		}
		if v := s.Results[w][0].AchievedTBs; v > base {
			base = v
		}
	}
	b.ReportMetric(peak, "xbar-peak-TB/s")
	b.ReportMetric(base, "lmesh-peak-TB/s")
}

// BenchmarkFig10Latency reports mean L2 miss latency on the best and worst
// configurations for the uniform workload.
func BenchmarkFig10Latency(b *testing.B) {
	var s *core.Sweep
	for i := 0; i < b.N; i++ {
		s = benchSweep(b)
	}
	b.ReportMetric(s.Results[0][len(s.Configs)-1].MeanLatencyNs, "xbar-uniform-ns")
	b.ReportMetric(s.Results[0][0].MeanLatencyNs, "lmesh-uniform-ns")
}

// BenchmarkFig11Power reports the crossbar's constant draw and the worst
// mesh dynamic power across all workloads.
func BenchmarkFig11Power(b *testing.B) {
	var s *core.Sweep
	for i := 0; i < b.N; i++ {
		s = benchSweep(b)
	}
	var worstMesh float64
	for w := range s.Workloads {
		for c := 0; c < len(s.Configs)-1; c++ {
			if v := s.Results[w][c].NetworkPowerW; v > worstMesh {
				worstMesh = v
			}
		}
	}
	b.ReportMetric(26, "xbar-W")
	b.ReportMetric(worstMesh, "mesh-worst-W")
}

// --- Component micro-benches: simulator throughput per subsystem. ---
//
// The network benches drive the pooled message lifecycle exactly as the hub
// does — Acquire, fill, Send, and Consume (which recycles) at delivery — so
// their allocs/op is the steady-state cost of the Send→Consume path itself:
// zero once the pool and the scheduler have grown to the in-flight peak.

// BenchmarkComponentXBar measures crossbar message throughput.
func BenchmarkComponentXBar(b *testing.B) {
	k := sim.NewKernel()
	x := xbar.New(k, xbar.DefaultConfig())
	var delivered int
	for c := 0; c < 64; c++ {
		c := c
		x.SetDeliver(c, func(m *noc.Message) { delivered++; x.Consume(c, m) })
	}
	rng := sim.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.Intn(64)
		dst := rng.Intn(63)
		if dst >= src {
			dst++
		}
		for {
			m := x.Acquire()
			m.ID, m.Src, m.Dst, m.Size = uint64(i), src, dst, 64
			if x.Send(m) {
				break
			}
			x.Release(m) // refused: recycle and let the model drain
			k.Step()
		}
		if i%64 == 0 {
			k.RunLimit(1024)
		}
	}
	k.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkComponentMesh measures HMesh message throughput.
func BenchmarkComponentMesh(b *testing.B) {
	k := sim.NewKernel()
	m := mesh.New(k, mesh.HMeshConfig())
	var delivered int
	for c := 0; c < 64; c++ {
		c := c
		m.SetDeliver(c, func(msg *noc.Message) { delivered++; m.Consume(c, msg) })
	}
	rng := sim.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.Intn(64)
		dst := rng.Intn(63)
		if dst >= src {
			dst++
		}
		for {
			msg := m.Acquire()
			msg.ID, msg.Src, msg.Dst, msg.Size = uint64(i), src, dst, 64
			msg.Kind = noc.KindResponse
			if m.Send(msg) {
				break
			}
			m.Release(msg)
			k.Step()
		}
		if i%64 == 0 {
			k.RunLimit(4096)
		}
	}
	k.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkComponentMemory measures OCM controller transaction throughput.
func BenchmarkComponentMemory(b *testing.B) {
	k := sim.NewKernel()
	cfg := memory.OCMConfig()
	cfg.QueueDepth = 1 << 20
	c := memory.NewController(k, cfg, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(&memory.Request{ID: uint64(i), Addr: uint64(i) << 12, ReqBytes: 16, RspBytes: 72})
		if i%256 == 0 {
			k.RunLimit(4096)
		}
	}
	k.Run()
	if int(c.Served) != b.N {
		b.Fatalf("served %d of %d", c.Served, b.N)
	}
}

// BenchmarkComponentEndToEnd measures full-system simulated requests per
// wall-clock second on the flagship configuration.
func BenchmarkComponentEndToEnd(b *testing.B) {
	spec := traffic.Spec{Name: "bench", Kind: traffic.Uniform, DemandTBs: 3, WriteFrac: 0.3}
	b.ResetTimer()
	if _, err := core.Run(context.Background(), config.Corona(), spec, b.N, 7); err != nil {
		b.Fatal(err)
	}
}
