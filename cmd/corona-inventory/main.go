// Command corona-inventory prints the paper's analytic tables — resource
// configuration (Table 1), optical component inventory (Table 2), benchmark
// setup (Table 3), memory interconnect comparison (Table 4) — and the
// optical link budgets that gate the design (crossbar worst case, OCM
// daisy-chain depth).
//
// It also prints the Section 3.1/3.4 package budget (die areas, power bands,
// TSV counts) and the Section 2 fabrication-yield analysis.
//
// -table fabrics prints the registered interconnect catalog — every fabric
// the registry knows, with its analytic bisection bandwidth and best-case
// transit latency at the 64-cluster scale (docs/ARCHITECTURE.md).
//
// Usage:
//
//	corona-inventory [-table 1|2|3|4|fabrics|budget|stack|yield|all] [-launch dBm]
package main

import (
	"flag"
	"fmt"
	"os"

	"corona/internal/config"
	"corona/internal/photonic"
	"corona/internal/stack"
)

// tables is the -table vocabulary; an unknown selection is rejected up
// front (exit 2) instead of silently printing nothing.
var tables = []string{"1", "2", "3", "4", "fabrics", "budget", "stack", "yield", "all"}

func main() { os.Exit(run()) }

func run() int {
	table := flag.String("table", "all", "which table to print: 1, 2, 3, 4, fabrics, budget, stack, yield, or all")
	launch := flag.Float64("launch", 10, "per-wavelength laser launch power in dBm for the budgets")
	flag.Parse()

	known := false
	for _, name := range tables {
		if *table == name {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "corona-inventory: unknown table %q (valid: %v)\n", *table, tables)
		return 2
	}

	want := func(name string) bool { return *table == "all" || *table == name }

	if want("1") {
		fmt.Printf("Table 1: Resource Configuration\n%s\n", config.Table1())
	}
	if want("2") {
		fmt.Printf("Table 2: Optical Resource Inventory\n%s\n",
			photonic.InventoryTable(photonic.DefaultGeometry()))
	}
	if want("3") {
		fmt.Printf("Table 3: Benchmarks and Configurations\n%s\n", config.Table3())
	}
	if want("4") {
		fmt.Printf("Table 4: Optical vs Electrical Memory Interconnects\n%s\n", config.Table4())
	}
	if want("fabrics") {
		fmt.Printf("Registered interconnect fabrics (64 clusters, published defaults)\n%s\n",
			config.FabricCatalog())
	}
	if want("stack") {
		fmt.Printf("3D package budget (Sections 3.1, 3.4)\n%s\n", stack.Estimate(64).Table())
	}
	if want("yield") {
		m := photonic.DefaultYieldModel()
		fmt.Printf("Fabrication yield analysis (ring hard-failure prob %.0e)\n%s\n",
			m.RingFailureProb, photonic.YieldReport(photonic.DefaultGeometry(), m))
		fmt.Printf("Spares per 256-wavelength crossbar channel for 99.9%% channel yield: %d\n\n",
			m.SparesFor(256, 0.999))
	}
	if want("budget") {
		fmt.Println("Optical link budgets")
		fmt.Println(photonic.CrossbarWorstCaseBudget(*launch))
		fmt.Println()
		fmt.Println(photonic.OCMBudget(*launch, 4))
		fmt.Printf("\nMax OCM daisy-chain depth at %.1f dBm launch (1 dB margin): %d modules\n",
			*launch, photonic.MaxOCMModules(*launch, 1))
	}
	return 0
}
