// Command corona-serve is the Corona experiment daemon: an HTTP/JSON
// front-end over the context-aware Client/Job engine, so the scenario space
// opened by the fabric registry can be driven remotely — submitted,
// watched, streamed, and canceled — instead of one blocking CLI run at a
// time.
//
// Usage:
//
//	corona-serve [-addr HOST:PORT] [-workers W] [-cache DIR]
//	             [-queue N] [-runners R] [-drain DUR]
//
// API (see docs/API.md for a curl walkthrough):
//
//	POST   /v1/jobs              submit a scenario JSON (the corona-sweep
//	                             -config schema); returns the job id
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status and progress
//	GET    /v1/jobs/{id}/results NDJSON stream of cells as they complete
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/fabrics           registered interconnect catalog
//	GET    /healthz              liveness
//
// Jobs wait in a bounded queue (-queue; full queue = 503) and run -runners
// at a time, each fanning its cells over a -workers pool; -cache shares one
// on-disk result cache across all jobs, so resubmitted or overlapping
// scenarios only simulate cells they have not seen. SIGINT/SIGTERM trigger
// a graceful shutdown: stop accepting, cancel running jobs (completed cells
// stay cached), drain for up to -drain, exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"corona/internal/core"
	"corona/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8451", "listen address")
	workers := flag.Int("workers", 0, "per-job worker pool size; 0 = GOMAXPROCS, 1 = sequential")
	cacheDir := flag.String("cache", "", "shared on-disk result cache directory (empty disables)")
	queue := flag.Int("queue", 16, "bounded job queue depth; submissions beyond it get 503")
	runners := flag.Int("runners", 1, "jobs executed concurrently")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Options{
		Client:     core.NewClient(core.WithWorkers(*workers), core.WithCacheDir(*cacheDir)),
		QueueDepth: *queue,
		Runners:    *runners,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "corona-serve: listening on http://%s (queue %d, %d runner(s))\n",
		*addr, *queue, *runners)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown happens on
		// the signal path below).
		fmt.Fprintf(os.Stderr, "corona-serve: %v\n", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintf(os.Stderr, "corona-serve: shutting down — canceling jobs, draining for up to %v\n", *drain)

	// Cancel jobs first so live NDJSON streams reach their terminal state,
	// then let the HTTP server drain those connections.
	srv.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "corona-serve: shutdown: %v\n", err)
		return 1
	}
	return 0
}
