// Command corona-serve is the Corona experiment daemon: an HTTP/JSON
// front-end over the context-aware Client/Job engine, so the scenario space
// opened by the fabric registry can be driven remotely — submitted,
// watched, streamed, and canceled — instead of one blocking CLI run at a
// time.
//
// Usage:
//
//	corona-serve [-addr HOST:PORT] [-workers W] [-cache DIR]
//	             [-queue N] [-runners R] [-drain DUR]
//	             [-store DIR] [-log text|json]
//	             [-mode worker|coordinator] [-peers URL,URL,...]
//	             [-heartbeat DUR] [-dead-after N]
//	             [-breaker-threshold N] [-breaker-cooldown DUR]
//	             [-speculation F] [-speculation-after DUR]
//
// API (see docs/API.md for a curl walkthrough):
//
//	POST   /v1/jobs              submit a scenario JSON (the corona-sweep
//	                             -config schema, plus optional "timeout"
//	                             and "cells" fields); returns the job id
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status and progress
//	GET    /v1/jobs/{id}/results NDJSON stream of cells as they complete
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/fabrics           registered interconnect catalog
//	GET    /healthz              liveness, queue depth, store state
//	GET    /metrics              Prometheus text-format operational metrics
//
// -mode coordinator turns the daemon into a fleet coordinator: it executes
// nothing locally, instead splitting each campaign's cell matrix into
// contiguous shards, dispatching them to the -peers worker daemons (same
// binary, default mode), merging the shard streams into one index-ordered
// result stream byte-identical to a single-node run, and retrying failed
// shards on surviving workers. A coordinator also self-heals: it heartbeats
// every worker's /healthz on the -heartbeat cadence (suspect after one
// failure, dead after -dead-after, rejoining automatically), opens a
// per-worker circuit breaker after -breaker-threshold consecutive dispatch
// failures (half-open probe after -breaker-cooldown), speculatively
// re-dispatches straggling shards (-speculation, -speculation-after), and
// sheds campaigns with 503 + a drain-rate Retry-After when every live
// worker's queue is full — see docs/OPERATIONS.md "Fleet self-healing".
// Every flag also reads a CORONA_* environment variable (flag wins) so
// containerized fleets configure via env — see docker-compose.yml.
//
// Jobs wait in a bounded queue (-queue; full queue = 503 with a Retry-After
// hint) and run -runners at a time, each fanning its cells over a -workers
// pool; -cache shares one on-disk result cache across all jobs, so
// resubmitted or overlapping scenarios only simulate cells they have not
// seen. With -store, every submission, completed cell, and terminal status
// is journaled to the directory, and a restarted daemon resumes interrupted
// jobs from exactly the cells it had durably recorded (see
// docs/OPERATIONS.md). SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, cancel running jobs (completed cells stay cached and
// journaled), drain for up to -drain, exit 0 — journaled jobs interrupted
// this way resume on the next start.
//
// The CORONA_FAULTS environment variable arms the fault-injection points
// (internal/faultinject spec syntax) for chaos drills against a live
// daemon; leave it unset in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
	"corona/internal/server"
	"corona/internal/store"
)

func main() { os.Exit(run()) }

// envStr/envInt read a CORONA_* default for a flag, so container fleets
// (docker-compose.yml) configure daemons by environment; an explicit flag
// still wins because the env only supplies the default.
func envStr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
		fmt.Fprintf(os.Stderr, "corona-serve: ignoring %s=%q: not an integer\n", key, v)
	}
	return def
}

func envDur(key string, def time.Duration) time.Duration {
	if v := os.Getenv(key); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
		fmt.Fprintf(os.Stderr, "corona-serve: ignoring %s=%q: not a duration\n", key, v)
	}
	return def
}

func envFloat(key string, def float64) float64 {
	if v := os.Getenv(key); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
		fmt.Fprintf(os.Stderr, "corona-serve: ignoring %s=%q: not a number\n", key, v)
	}
	return def
}

func run() int {
	addr := flag.String("addr", envStr("CORONA_ADDR", "127.0.0.1:8451"), "listen address")
	workers := flag.Int("workers", envInt("CORONA_WORKERS", 0), "per-job worker pool size; 0 = GOMAXPROCS, 1 = sequential")
	cacheDir := flag.String("cache", envStr("CORONA_CACHE", ""), "shared on-disk result cache directory (empty disables)")
	queue := flag.Int("queue", envInt("CORONA_QUEUE", 16), "bounded job queue depth; submissions beyond it get 503")
	runners := flag.Int("runners", envInt("CORONA_RUNNERS", 1), "jobs executed concurrently")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	storeDir := flag.String("store", envStr("CORONA_STORE", ""), "durable job journal directory; restarts resume interrupted jobs (empty = in-memory only)")
	logFormat := flag.String("log", envStr("CORONA_LOG", "text"), "log format: text or json")
	mode := flag.String("mode", envStr("CORONA_MODE", "worker"), "worker executes jobs locally; coordinator shards them across -peers")
	peers := flag.String("peers", envStr("CORONA_PEERS", ""), "comma-separated worker base URLs (coordinator mode), e.g. http://w1:8451,http://w2:8451")
	heartbeat := flag.Duration("heartbeat", envDur("CORONA_HEARTBEAT", 0), "coordinator worker-heartbeat cadence (0 = 1s default)")
	deadAfter := flag.Int("dead-after", envInt("CORONA_DEAD_AFTER", 0), "consecutive failed heartbeats before a worker is declared dead (0 = 3 default)")
	brThreshold := flag.Int("breaker-threshold", envInt("CORONA_BREAKER_THRESHOLD", 0), "consecutive dispatch failures that open a worker's circuit breaker (0 = 3 default)")
	brCooldown := flag.Duration("breaker-cooldown", envDur("CORONA_BREAKER_COOLDOWN", 0), "open-breaker cooldown before a half-open probe (0 = 5s default)")
	specFactor := flag.Float64("speculation", envFloat("CORONA_SPECULATION", 0), "straggler threshold: speculate when a shard's cells/sec falls below this fraction of the fleet median (0 = 0.25 default)")
	specAfter := flag.Duration("speculation-after", envDur("CORONA_SPECULATION_AFTER", 0), "minimum shard age before it can be judged a straggler (0 = 2s default)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "corona-serve: -log %q: want text or json\n", *logFormat)
		return 2
	}
	log := slog.New(handler)

	var peerClients []*server.Client
	switch *mode {
	case "worker":
		if *peers != "" {
			fmt.Fprintln(os.Stderr, "corona-serve: -peers requires -mode coordinator")
			return 2
		}
	case "coordinator":
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peerClients = append(peerClients, server.NewClient(u))
			}
		}
		if len(peerClients) == 0 {
			fmt.Fprintln(os.Stderr, "corona-serve: -mode coordinator needs at least one -peers worker URL")
			return 2
		}
	default:
		fmt.Fprintf(os.Stderr, "corona-serve: -mode %q: want worker or coordinator\n", *mode)
		return 2
	}

	if spec := os.Getenv("CORONA_FAULTS"); spec != "" {
		if err := faultinject.Arm(spec); err != nil {
			log.Error("bad CORONA_FAULTS spec", "spec", spec, "err", err)
			return 2
		}
		log.Warn("fault injection armed — this daemon WILL fail on purpose", "spec", spec)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, store.Options{Logger: log}); err != nil {
			log.Error("opening job store", "dir", *storeDir, "err", err)
			return 1
		}
		defer st.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Options{
		Client:     core.NewClient(core.WithWorkers(*workers), core.WithCacheDir(*cacheDir)),
		QueueDepth: *queue,
		Runners:    *runners,
		Store:      st,
		Logger:     log,
		Peers:      peerClients,
		Tuning: server.FleetTuning{
			HeartbeatInterval: *heartbeat,
			DeadAfter:         *deadAfter,
			BreakerThreshold:  *brThreshold,
			BreakerCooldown:   *brCooldown,
			SpeculationFactor: *specFactor,
			SpeculationAfter:  *specAfter,
		},
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("listening", "addr", "http://"+*addr, "mode", *mode, "fleet", len(peerClients),
		"queue", *queue, "runners", *runners, "store", *storeDir)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown happens on
		// the signal path below).
		log.Error("serving", "err", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Info("shutting down", "drain", *drain)

	// Cancel jobs first so live NDJSON streams reach their terminal state,
	// then let the HTTP server drain those connections. Journaled jobs
	// interrupted here keep no terminal status and resume on the next start.
	srv.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("shutdown", "err", err)
		return 1
	}
	return 0
}
