// Command corona-serve is the Corona experiment daemon: an HTTP/JSON
// front-end over the context-aware Client/Job engine, so the scenario space
// opened by the fabric registry can be driven remotely — submitted,
// watched, streamed, and canceled — instead of one blocking CLI run at a
// time.
//
// Usage:
//
//	corona-serve [-addr HOST:PORT] [-workers W] [-cache DIR]
//	             [-queue N] [-runners R] [-drain DUR]
//	             [-store DIR] [-log text|json]
//
// API (see docs/API.md for a curl walkthrough):
//
//	POST   /v1/jobs              submit a scenario JSON (the corona-sweep
//	                             -config schema, plus an optional "timeout"
//	                             duration); returns the job id
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status and progress
//	GET    /v1/jobs/{id}/results NDJSON stream of cells as they complete
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/fabrics           registered interconnect catalog
//	GET    /healthz              liveness, queue depth, store state
//
// Jobs wait in a bounded queue (-queue; full queue = 503 with a Retry-After
// hint) and run -runners at a time, each fanning its cells over a -workers
// pool; -cache shares one on-disk result cache across all jobs, so
// resubmitted or overlapping scenarios only simulate cells they have not
// seen. With -store, every submission, completed cell, and terminal status
// is journaled to the directory, and a restarted daemon resumes interrupted
// jobs from exactly the cells it had durably recorded (see
// docs/OPERATIONS.md). SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, cancel running jobs (completed cells stay cached and
// journaled), drain for up to -drain, exit 0 — journaled jobs interrupted
// this way resume on the next start.
//
// The CORONA_FAULTS environment variable arms the fault-injection points
// (internal/faultinject spec syntax) for chaos drills against a live
// daemon; leave it unset in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
	"corona/internal/server"
	"corona/internal/store"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8451", "listen address")
	workers := flag.Int("workers", 0, "per-job worker pool size; 0 = GOMAXPROCS, 1 = sequential")
	cacheDir := flag.String("cache", "", "shared on-disk result cache directory (empty disables)")
	queue := flag.Int("queue", 16, "bounded job queue depth; submissions beyond it get 503")
	runners := flag.Int("runners", 1, "jobs executed concurrently")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	storeDir := flag.String("store", "", "durable job journal directory; restarts resume interrupted jobs (empty = in-memory only)")
	logFormat := flag.String("log", "text", "log format: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "corona-serve: -log %q: want text or json\n", *logFormat)
		return 2
	}
	log := slog.New(handler)

	if spec := os.Getenv("CORONA_FAULTS"); spec != "" {
		if err := faultinject.Arm(spec); err != nil {
			log.Error("bad CORONA_FAULTS spec", "spec", spec, "err", err)
			return 2
		}
		log.Warn("fault injection armed — this daemon WILL fail on purpose", "spec", spec)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, store.Options{Logger: log}); err != nil {
			log.Error("opening job store", "dir", *storeDir, "err", err)
			return 1
		}
		defer st.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Options{
		Client:     core.NewClient(core.WithWorkers(*workers), core.WithCacheDir(*cacheDir)),
		QueueDepth: *queue,
		Runners:    *runners,
		Store:      st,
		Logger:     log,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("listening", "addr", "http://"+*addr, "queue", *queue,
		"runners", *runners, "store", *storeDir)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown happens on
		// the signal path below).
		log.Error("serving", "err", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Info("shutting down", "drain", *drain)

	// Cancel jobs first so live NDJSON streams reach their terminal state,
	// then let the HTTP server drain those connections. Journaled jobs
	// interrupted here keep no terminal status and resume on the next start.
	srv.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("shutdown", "err", err)
		return 1
	}
	return 0
}
