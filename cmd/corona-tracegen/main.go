// Command corona-tracegen produces annotated L2-miss trace files in the
// format the network simulator replays — the role COTSon plays in the
// paper's two-part infrastructure (Section 4).
//
// Two generation modes:
//
//   - workload: sample a named Table 3 workload model directly.
//   - cache: execute synthetic per-thread reference streams against real
//     L1/L2 cache models (package cluster) and record what misses through.
//
// Usage:
//
//	corona-tracegen -o fft.trc -workload FFT -n 100000
//	corona-tracegen -o cache.trc -mode cache -n 100000 -working-set 65536
//
// Invalid input (unknown workload or mode) exits 2; I/O failures exit 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"corona/internal/cluster"
	"corona/internal/core"
	"corona/internal/trace"
	"corona/internal/traffic"
)

func main() { os.Exit(run()) }

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "corona-tracegen: %v\n", err)
	var ce *core.ConfigError
	if errors.As(err, &ce) {
		return 2
	}
	return 1
}

func run() int {
	out := flag.String("o", "corona.trc", "output trace file")
	mode := flag.String("mode", "workload", "generation mode: workload or cache")
	wlName := flag.String("workload", "Uniform", "workload model name (workload mode)")
	n := flag.Int("n", 100000, "number of L2 miss records to generate")
	seed := flag.Uint64("seed", 42, "generator seed")
	workingSet := flag.Int("working-set", 64*1024, "per-thread working set in lines (cache mode)")
	streamFrac := flag.Float64("stream", 0.2, "streaming reference fraction (cache mode)")
	clusters := flag.Int("clusters", 64, "cluster count")
	flag.Parse()

	// Validate every input before os.Create truncates -o: a typo must never
	// destroy an existing trace file.
	var spec traffic.Spec
	switch *mode {
	case "workload":
		var found bool
		if spec, found = core.FindWorkload(*wlName); !found {
			return fail(&core.ConfigError{Name: *wlName, Err: fmt.Errorf("unknown workload %q", *wlName)})
		}
	case "cache":
	default:
		return fail(&core.ConfigError{Name: *mode,
			Err: fmt.Errorf("unknown mode %q (valid: workload, cache)", *mode)})
	}

	f, err := os.Create(*out)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f, uint64(*n))
	if err != nil {
		return fail(err)
	}

	switch *mode {
	case "workload":
		g := traffic.NewGenerator(spec, *clusters, *seed)
		for i := 0; i < *n; i++ {
			if err := w.Write(g.Next(i % *clusters)); err != nil {
				return fail(err)
			}
		}
	case "cache":
		model := cluster.ThreadModel{
			WorkingSetLines:    *workingSet,
			StreamFrac:         *streamFrac,
			WriteFrac:          0.3,
			ReferencesPerCycle: 0.5,
		}
		perCluster := *n / *clusters
		for c := 0; c < *clusters; c++ {
			eng := cluster.NewTraceEngine(cluster.New(c, true), model, *seed+uint64(c))
			count := perCluster
			if c < *n%*clusters {
				count++
			}
			if err := eng.Generate(w, count); err != nil {
				return fail(err)
			}
		}
	}

	if err := w.Flush(); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %d records to %s\n", w.Count(), *out)
	return 0
}
