// Command corona-bench measures fleet scaling and concurrent-campaign
// throughput: it boots an in-process corona-serve fleet — N worker daemons
// plus a coordinator, every node on its own TCP listener, talking the real
// HTTP/NDJSON protocol — runs the paper-shaped 6-configuration x
// 15-workload campaign through a 1-worker fleet and through the N-worker
// fleet, verifies every merged result stream is identical cell for cell,
// and reports wall-clock speedup, aggregate throughput, and campaign
// latency percentiles as JSON (BENCH_10.json in CI).
//
// Usage:
//
//	corona-bench [-fleet N] [-node-workers W] [-requests R] [-seed S]
//	             [-jobs J] [-out FILE]
//
// Each worker simulates its shard with a W-goroutine pool (-node-workers,
// default 1 so the scaling measured is the fleet's, not the pool's). -jobs
// submits the campaign J times CONCURRENTLY through the coordinator — the
// load-test mode: J client goroutines racing the admission queue, the
// fleet's backpressure, and each other — and reports aggregate throughput
// plus p50/p90/p99 campaign latencies alongside the totals. Every
// campaign's merged stream must be byte-identical to every other's and to
// the single-node reference, so the load test doubles as a determinism
// stress. The in-process fleet shares one machine, so wall-clock speedup
// is bounded by real cores: the report carries num_cpu and gomaxprocs so a
// 1-CPU container's ~1x is read as a substrate limit, not a sharding
// defect.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"corona/internal/core"
	"corona/internal/server"
)

// report is the BENCH_10.json schema. Schema 2 made -jobs concurrent, so
// the percentile fields describe campaigns racing each other, and
// jobs_per_sec is the aggregate campaign throughput the fleet sustained
// under that concurrency.
type report struct {
	Schema      int    `json:"schema"`
	Cells       int    `json:"cells"`
	Requests    int    `json:"requests"`
	Seed        uint64 `json:"seed"`
	Fleet       int    `json:"fleet"`
	NodeWorkers int    `json:"node_workers"`
	Jobs        int    `json:"jobs"`

	SingleWallSeconds float64 `json:"single_wall_seconds"`
	FleetWallSeconds  float64 `json:"fleet_wall_seconds"`
	FleetSpeedup      float64 `json:"fleet_speedup"`
	SingleCellsPerSec float64 `json:"single_cells_per_sec"`
	FleetCellsPerSec  float64 `json:"fleet_cells_per_sec"`
	FleetJobsPerSec   float64 `json:"jobs_per_sec"`

	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`

	Identical  bool   `json:"merged_identical"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

func main() { os.Exit(run()) }

func run() int {
	fleet := flag.Int("fleet", 4, "worker daemons in the fleet")
	nodeWorkers := flag.Int("node-workers", 1, "per-worker simulation pool size")
	requests := flag.Int("requests", 1500, "requests per cell")
	seed := flag.Uint64("seed", 29, "campaign base seed")
	jobs := flag.Int("jobs", 1, "campaigns submitted concurrently per fleet size")
	out := flag.String("out", "BENCH_10.json", "report file (- for stdout)")
	flag.Parse()
	if *fleet < 1 || *jobs < 1 {
		fmt.Fprintln(os.Stderr, "corona-bench: -fleet and -jobs must be >= 1")
		return 2
	}

	scenario := fmt.Appendf(nil, `{
		"configs": [{"preset": "LMesh/ECM"}, {"preset": "HMesh/ECM"}, {"preset": "LMesh/OCM"},
		            {"preset": "HMesh/OCM"}, {"preset": "XBar/OCM"}, {"fabric": "swmr", "mem": "OCM"}],
		"requests": %d,
		"seed": %d
	}`, *requests, *seed)

	single, err := benchFleet(1, *nodeWorkers, *jobs, scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corona-bench: 1-worker fleet:", err)
		return 1
	}
	multi, err := benchFleet(*fleet, *nodeWorkers, *jobs, scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corona-bench: %d-worker fleet: %v\n", *fleet, err)
		return 1
	}

	r := report{
		Schema:      2,
		Cells:       len(single.cells),
		Requests:    *requests,
		Seed:        *seed,
		Fleet:       *fleet,
		NodeWorkers: *nodeWorkers,
		Jobs:        *jobs,

		SingleWallSeconds: single.wall.Seconds(),
		FleetWallSeconds:  multi.wall.Seconds(),
		FleetSpeedup:      single.wall.Seconds() / multi.wall.Seconds(),
		SingleCellsPerSec: float64(len(single.cells)**jobs) / single.wall.Seconds(),
		FleetCellsPerSec:  float64(len(multi.cells)**jobs) / multi.wall.Seconds(),

		Identical:  identical(single.cells, multi.cells),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	r.FleetJobsPerSec = float64(*jobs) / multi.wall.Seconds()
	sort.Slice(multi.perJob, func(i, j int) bool { return multi.perJob[i] < multi.perJob[j] })
	r.P50Seconds = quantile(multi.perJob, 0.50).Seconds()
	r.P90Seconds = quantile(multi.perJob, 0.90).Seconds()
	r.P99Seconds = quantile(multi.perJob, 0.99).Seconds()
	if !r.Identical {
		fmt.Fprintln(os.Stderr, "corona-bench: FLEET RESULTS DIVERGE FROM SINGLE-NODE — determinism bug")
	}

	enc, _ := json.MarshalIndent(r, "", "  ")
	enc = append(enc, '\n')
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corona-bench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	w.Write(enc)
	fmt.Fprintf(os.Stderr, "corona-bench: %d cells x %d concurrent jobs: 1 worker %.2fs, %d workers %.2fs (%.2fx, %.2f jobs/s, p50 %.2fs p99 %.2fs, %d CPUs)\n",
		r.Cells, r.Jobs, r.SingleWallSeconds, r.Fleet, r.FleetWallSeconds, r.FleetSpeedup,
		r.FleetJobsPerSec, r.P50Seconds, r.P99Seconds, r.NumCPU)
	if !r.Identical {
		return 1
	}
	return 0
}

// node is one in-process daemon on a real TCP listener.
type node struct {
	srv *server.Server
	hs  *http.Server
	url string
}

func startNode(workers, queue, runners int, peers []*server.Client, log *slog.Logger) (*node, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Options{
		Client:     core.NewClient(core.WithWorkers(workers)),
		QueueDepth: queue,
		Runners:    runners,
		Logger:     log,
		Peers:      peers,
	})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &node{srv: srv, hs: hs, url: "http://" + ln.Addr().String()}, nil
}

func (n *node) stop() {
	n.hs.Close()
	n.srv.Close()
}

// fleetResult is one fleet size's measurement: total wall clock across the
// concurrent jobs, per-job latencies, and one job's cells in index order
// (every job's stream was verified identical before the pick).
type fleetResult struct {
	wall   time.Duration
	perJob []time.Duration
	cells  []core.CellResult
}

// benchFleet boots n workers plus a coordinator, submits the campaign jobs
// times concurrently through the coordinator — one client goroutine per
// campaign, all racing the queue — verifies every campaign's merged stream
// is identical, and tears the fleet down. Queues are sized to admit the
// whole wave: the load mode measures latency under contention, not the
// admission controller (the chaos suite covers shedding).
func benchFleet(n, nodeWorkers, jobs int, scenario []byte) (fleetResult, error) {
	var res fleetResult
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	queue := 2 * jobs
	if queue < 16 {
		queue = 16
	}
	var peers []*server.Client
	for i := 0; i < n; i++ {
		w, err := startNode(nodeWorkers, queue, 0, nil, log)
		if err != nil {
			return res, err
		}
		defer w.stop()
		peers = append(peers, server.NewClient(w.url))
	}
	coord, err := startNode(0, queue, jobs, peers, log)
	if err != nil {
		return res, err
	}
	defer coord.stop()
	c := server.NewClient(coord.url)

	ctx := context.Background()
	res.perJob = make([]time.Duration, jobs)
	cellsByJob := make([][]core.CellResult, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	start := time.Now()
	for job := 0; job < jobs; job++ {
		wg.Add(1)
		go func(job int) {
			defer wg.Done()
			jobStart := time.Now()
			v, err := c.Submit(ctx, scenario)
			if err != nil {
				errs[job] = fmt.Errorf("job %d submit: %w", job, err)
				return
			}
			var cells []core.CellResult
			if err := c.Stream(ctx, v.ID, func(cell core.CellResult) error {
				cells = append(cells, cell)
				return nil
			}); err != nil {
				errs[job] = fmt.Errorf("job %d stream: %w", job, err)
				return
			}
			if _, err := c.Wait(ctx, v.ID, 10*time.Millisecond); err != nil {
				errs[job] = fmt.Errorf("job %d wait: %w", job, err)
				return
			}
			res.perJob[job] = time.Since(jobStart)
			sort.Slice(cells, func(i, j int) bool { return cells[i].Index < cells[j].Index })
			cellsByJob[job] = cells
		}(job)
	}
	wg.Wait()
	res.wall = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.cells = cellsByJob[0]
	for job, cells := range cellsByJob[1:] {
		if !identical(res.cells, cells) {
			return res, fmt.Errorf("concurrent campaigns diverged: job %d's merged stream differs from job 0's", job+1)
		}
	}
	return res, nil
}

// identical reports whether two index-sorted cell sets carry the same
// results, compared through the JSON encoding the NDJSON stream uses.
func identical(a, b []core.CellResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ja, _ := json.Marshal(a[i])
		jb, _ := json.Marshal(b[i])
		if string(ja) != string(jb) {
			return false
		}
	}
	return true
}

// quantile reads the q-th quantile from an ascending slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
