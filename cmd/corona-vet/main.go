// Command corona-vet is the repository's static-analysis gate: the
// internal/lint analyzer suite packaged as a `go vet` tool. Build it once and
// hand it to the toolchain —
//
//	go build -o /tmp/corona-vet ./cmd/corona-vet
//	go vet -vettool=/tmp/corona-vet ./...
//
// go vet drives the binary per compilation unit, threading deprecation facts
// through the build graph; diagnostics land on stderr in the usual
// file:line:col form and any finding fails the run. Individual analyzers can
// be switched off with -<name>=false (e.g. -determinism=false). See
// docs/LINTING.md for the catalog and the //lint:allow escape hatch.
package main

import (
	"corona/internal/lint"
	"corona/internal/lint/analysis"
)

func main() {
	analysis.Main("corona-vet", lint.Analyzers())
}
