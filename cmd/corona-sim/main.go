// Command corona-sim simulates a single (configuration, workload) pair and
// prints the detailed result: runtime, achieved bandwidth, latency
// distribution, and power. It can also replay a trace file produced by
// corona-tracegen, or compare one workload across all five configurations.
//
// Usage:
//
//	corona-sim [-config XBar/OCM] [-workload Uniform] [-requests N] [-seed S]
//	corona-sim [-config XBar/OCM] -trace file.trc
//	corona-sim -compare [-workload Uniform] [-requests N] [-seed S]
//
// -compare runs the workload on every configuration concurrently (one sweep
// pool worker per configuration, identical traffic seed for each) and prints
// the workload's row of Figures 8-10.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"corona"
	"corona/internal/config"
	"corona/internal/core"
	"corona/internal/trace"
	"corona/internal/traffic"
)

func findConfig(name string) (config.System, bool) {
	for _, c := range config.Combos() {
		if c.Name() == name {
			return c, true
		}
	}
	return config.System{}, false
}

func findWorkload(name string) (traffic.Spec, bool) {
	for _, w := range core.AllWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	return traffic.Spec{}, false
}

func main() {
	cfgName := flag.String("config", "XBar/OCM", "system configuration (XBar/OCM, HMesh/OCM, LMesh/OCM, HMesh/ECM, LMesh/ECM)")
	wlName := flag.String("workload", "Uniform", "workload name (Table 3: Uniform, Hot Spot, Tornado, Transpose, Barnes, ..., Water-Sp)")
	requests := flag.Int("requests", 50000, "L2 misses to simulate")
	seed := flag.Uint64("seed", 42, "workload generator seed")
	traceFile := flag.String("trace", "", "replay this trace file instead of a synthetic workload")
	threads := flag.Int("threads-per-cluster", 16, "thread-to-cluster mapping for trace replay")
	compare := flag.Bool("compare", false, "run the workload on all five configurations in parallel and print the comparison")
	flag.Parse()

	if *compare {
		if *traceFile != "" {
			log.Fatal("-compare runs a synthetic workload on every configuration; it cannot be combined with -trace")
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "config" {
				fmt.Fprintln(os.Stderr, "note: -config is ignored with -compare (all five configurations run)")
			}
		})
		spec, ok := findWorkload(*wlName)
		if !ok {
			log.Fatalf("unknown workload %q", *wlName)
		}
		results := corona.CompareConfigs(spec, *requests, *seed)
		baseline := results[0]
		fmt.Printf("workload %q, %d requests per configuration, seed %d\n\n", spec.Name, *requests, *seed)
		fmt.Printf("%-10s  %10s  %9s  %12s  %8s\n", "config", "cycles", "TB/s", "latency(ns)", "speedup")
		for _, r := range results {
			fmt.Printf("%-10s  %10d  %9.2f  %12.1f  %8.2f\n",
				r.Config, r.Cycles, r.AchievedTBs, r.MeanLatencyNs, r.Speedup(baseline))
		}
		return
	}

	cfg, ok := findConfig(*cfgName)
	if !ok {
		log.Fatalf("unknown configuration %q", *cfgName)
	}

	var res core.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := trace.ReadAll(r)
		if err != nil {
			log.Fatal(err)
		}
		sys := core.NewSystem(cfg)
		res = core.NewTraceRunner(sys, recs, *threads).Run()
	} else {
		spec, ok := findWorkload(*wlName)
		if !ok {
			log.Fatalf("unknown workload %q", *wlName)
		}
		res = core.Run(cfg, spec, *requests, *seed)
	}

	fmt.Printf("configuration:        %s\n", res.Config)
	fmt.Printf("workload:             %s\n", res.Workload)
	fmt.Printf("requests:             %d\n", res.Requests)
	fmt.Printf("runtime:              %d cycles (%.2f us)\n", res.Cycles, res.Cycles.Ns()/1000)
	fmt.Printf("achieved bandwidth:   %.3f TB/s\n", res.AchievedTBs)
	fmt.Printf("mean miss latency:    %.1f ns\n", res.MeanLatencyNs)
	fmt.Printf("p99 miss latency:     %.1f ns\n", res.P99LatencyNs)
	fmt.Printf("network power:        %.1f W\n", res.NetworkPowerW)
	fmt.Printf("memory link power:    %.2f W\n", res.MemoryPowerW)
	fmt.Printf("network messages:     %d (%d bytes)\n", res.NetMessages, res.NetBytes)
	if res.HopTraversals > 0 {
		fmt.Printf("mesh hop traversals:  %d\n", res.HopTraversals)
	}
	if res.XBarUtil > 0 {
		fmt.Printf("crossbar utilization: %.1f%%\n", res.XBarUtil*100)
	}
}
