// Command corona-sim simulates a single (configuration, workload) pair and
// prints the detailed result: runtime, achieved bandwidth, latency
// distribution, and power. It can also replay a trace file produced by
// corona-tracegen, or compare one workload across several configurations.
//
// Usage:
//
//	corona-sim [-config XBar/OCM] [-workload Uniform] [-requests N] [-seed S]
//	corona-sim [-config scenario.json] [-workload Uniform]
//	corona-sim [-config XBar/OCM] -trace file.trc
//	corona-sim -compare [-config scenario.json] [-workload Uniform]
//
// -config accepts either a preset label (the paper's five machines plus the
// SWMR variant, e.g. "SWMR/OCM") or a path to a JSON scenario file (see
// examples/custom-fabric/scenario.json); a scenario's first machine is
// simulated unless -compare runs them all. -compare runs the workload on
// every selected configuration concurrently (one sweep pool worker per
// configuration, identical traffic seed for each) and prints the workload's
// row of Figures 8-10.
//
// Simulations run through the Client API (docs/API.md): invalid input —
// unknown presets, bad scenarios, malformed traces — exits 2 with the typed
// configuration error's message, simulation failures exit 1, and Ctrl-C
// cancels a long run cleanly instead of leaving it wedged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"corona"
	"corona/internal/config"
	"corona/internal/core"
	"corona/internal/trace"
)

// resolveConfigs turns the -config value — preset label or scenario path —
// into the list of machines to simulate.
func resolveConfigs(arg string) ([]config.System, error) {
	if strings.HasSuffix(arg, ".json") {
		sc, err := core.LoadScenario(arg)
		if err != nil {
			return nil, err
		}
		return sc.Configs, nil
	}
	cfg, err := config.ParseName(arg)
	if err != nil {
		// ParseName's rejection is invalid input; type it so fail() maps it
		// to the usage exit code.
		return nil, &core.ConfigError{Name: arg, Err: err}
	}
	return []config.System{cfg}, nil
}

func main() { os.Exit(run()) }

// fail prints err and maps it to an exit code: 2 for invalid input (typed
// *core.ConfigError), 1 for everything else — the CLI surface of the typed
// error scheme.
func fail(err error) int {
	fmt.Fprintf(os.Stderr, "corona-sim: %v\n", err)
	var ce *core.ConfigError
	if errors.As(err, &ce) {
		return 2
	}
	return 1
}

func run() int {
	cfgName := flag.String("config", "XBar/OCM", "preset (XBar/OCM ... LMesh/ECM, SWMR/OCM) or a JSON scenario file")
	wlName := flag.String("workload", "Uniform", "workload name (Table 3: Uniform, Hot Spot, Tornado, Transpose, Barnes, ..., Water-Sp)")
	requests := flag.Int("requests", 50000, "L2 misses to simulate")
	seed := flag.Uint64("seed", 42, "workload generator seed")
	traceFile := flag.String("trace", "", "replay this trace file instead of a synthetic workload")
	threads := flag.Int("threads-per-cluster", 16, "thread-to-cluster mapping for trace replay")
	compare := flag.Bool("compare", false, "run the workload on every selected configuration in parallel and print the comparison")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := core.NewClient()

	if *compare {
		if *traceFile != "" {
			return fail(&core.ConfigError{Name: "flags",
				Err: fmt.Errorf("-compare runs a synthetic workload on every configuration; it cannot be combined with -trace")})
		}
		spec, ok := core.FindWorkload(*wlName)
		if !ok {
			return fail(&core.ConfigError{Name: *wlName, Err: fmt.Errorf("unknown workload %q", *wlName)})
		}
		configs := corona.Configurations()
		var resolveErr error
		flag.Visit(func(f *flag.Flag) {
			if f.Name != "config" || resolveErr != nil {
				return
			}
			if configs, resolveErr = resolveConfigs(*cfgName); resolveErr != nil {
				return
			}
			if len(configs) == 1 {
				fmt.Fprintln(os.Stderr, "note: single -config with -compare; comparing it against the five presets")
				for _, p := range corona.Configurations() {
					if p.Name() != configs[0].Name() {
						configs = append(configs, p)
					}
				}
			}
		})
		if resolveErr != nil {
			return fail(resolveErr)
		}
		results, err := client.Compare(ctx, spec, *requests, *seed, configs...)
		if err != nil {
			return fail(err)
		}
		baseline := results[0]
		fmt.Printf("workload %q, %d requests per configuration, seed %d\n\n", spec.Name, *requests, *seed)
		fmt.Printf("%-12s  %10s  %9s  %12s  %8s\n", "config", "cycles", "TB/s", "latency(ns)", "speedup")
		for _, r := range results {
			fmt.Printf("%-12s  %10d  %9.2f  %12.1f  %8.2f\n",
				r.Config, r.Cycles, r.AchievedTBs, r.MeanLatencyNs, r.Speedup(baseline))
		}
		return 0
	}

	configs, err := resolveConfigs(*cfgName)
	if err != nil {
		return fail(err)
	}
	cfg := configs[0]
	if len(configs) > 1 {
		fmt.Fprintf(os.Stderr, "note: scenario defines %d machines; simulating %q (use -compare for all)\n",
			len(configs), cfg.Name())
	}

	var res core.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return fail(err)
		}
		recs, err := trace.ReadAll(r)
		if err != nil {
			return fail(err)
		}
		if res, err = client.Replay(ctx, cfg, recs, *threads); err != nil {
			return fail(err)
		}
	} else {
		spec, ok := core.FindWorkload(*wlName)
		if !ok {
			return fail(&core.ConfigError{Name: *wlName, Err: fmt.Errorf("unknown workload %q", *wlName)})
		}
		if res, err = client.Run(ctx, cfg, spec, *requests, *seed); err != nil {
			return fail(err)
		}
	}

	fmt.Printf("configuration:        %s\n", res.Config)
	fmt.Printf("workload:             %s\n", res.Workload)
	fmt.Printf("requests:             %d\n", res.Requests)
	fmt.Printf("runtime:              %d cycles (%.2f us)\n", res.Cycles, res.Cycles.Ns()/1000)
	fmt.Printf("achieved bandwidth:   %.3f TB/s\n", res.AchievedTBs)
	fmt.Printf("mean miss latency:    %.1f ns\n", res.MeanLatencyNs)
	fmt.Printf("p99 miss latency:     %.1f ns\n", res.P99LatencyNs)
	fmt.Printf("network power:        %.1f W\n", res.NetworkPowerW)
	fmt.Printf("memory link power:    %.2f W\n", res.MemoryPowerW)
	fmt.Printf("network messages:     %d (%d bytes)\n", res.NetMessages, res.NetBytes)
	if res.HopTraversals > 0 {
		fmt.Printf("mesh hop traversals:  %d\n", res.HopTraversals)
	}
	if res.XBarUtil > 0 {
		fmt.Printf("crossbar utilization: %.1f%%\n", res.XBarUtil*100)
	}
	return 0
}
