// Command corona-sim simulates a single (configuration, workload) pair and
// prints the detailed result: runtime, achieved bandwidth, latency
// distribution, and power. It can also replay a trace file produced by
// corona-tracegen, or compare one workload across several configurations.
//
// Usage:
//
//	corona-sim [-config XBar/OCM] [-workload Uniform] [-requests N] [-seed S]
//	corona-sim [-config scenario.json] [-workload Uniform]
//	corona-sim [-config XBar/OCM] -trace file.trc
//	corona-sim -compare [-config scenario.json] [-workload Uniform]
//
// -config accepts either a preset label (the paper's five machines plus the
// SWMR variant, e.g. "SWMR/OCM") or a path to a JSON scenario file (see
// examples/custom-fabric/scenario.json); a scenario's first machine is
// simulated unless -compare runs them all. -compare runs the workload on
// every selected configuration concurrently (one sweep pool worker per
// configuration, identical traffic seed for each) and prints the workload's
// row of Figures 8-10.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"corona"
	"corona/internal/config"
	"corona/internal/core"
	"corona/internal/trace"
)

// resolveConfigs turns the -config value — preset label or scenario path —
// into the list of machines to simulate.
func resolveConfigs(arg string) ([]config.System, error) {
	if strings.HasSuffix(arg, ".json") {
		sc, err := core.LoadScenario(arg)
		if err != nil {
			return nil, err
		}
		return sc.Configs, nil
	}
	cfg, err := config.ParseName(arg)
	if err != nil {
		return nil, err
	}
	return []config.System{cfg}, nil
}

func main() {
	cfgName := flag.String("config", "XBar/OCM", "preset (XBar/OCM ... LMesh/ECM, SWMR/OCM) or a JSON scenario file")
	wlName := flag.String("workload", "Uniform", "workload name (Table 3: Uniform, Hot Spot, Tornado, Transpose, Barnes, ..., Water-Sp)")
	requests := flag.Int("requests", 50000, "L2 misses to simulate")
	seed := flag.Uint64("seed", 42, "workload generator seed")
	traceFile := flag.String("trace", "", "replay this trace file instead of a synthetic workload")
	threads := flag.Int("threads-per-cluster", 16, "thread-to-cluster mapping for trace replay")
	compare := flag.Bool("compare", false, "run the workload on every selected configuration in parallel and print the comparison")
	flag.Parse()

	if *compare {
		if *traceFile != "" {
			log.Fatal("-compare runs a synthetic workload on every configuration; it cannot be combined with -trace")
		}
		spec, ok := core.FindWorkload(*wlName)
		if !ok {
			log.Fatalf("unknown workload %q", *wlName)
		}
		configs := corona.Configurations()
		flag.Visit(func(f *flag.Flag) {
			if f.Name != "config" {
				return
			}
			var err error
			if configs, err = resolveConfigs(*cfgName); err != nil {
				log.Fatal(err)
			}
			if len(configs) == 1 {
				fmt.Fprintln(os.Stderr, "note: single -config with -compare; comparing it against the five presets")
				for _, p := range corona.Configurations() {
					if p.Name() != configs[0].Name() {
						configs = append(configs, p)
					}
				}
			}
		})
		results := corona.CompareConfigs(spec, *requests, *seed, configs...)
		baseline := results[0]
		fmt.Printf("workload %q, %d requests per configuration, seed %d\n\n", spec.Name, *requests, *seed)
		fmt.Printf("%-12s  %10s  %9s  %12s  %8s\n", "config", "cycles", "TB/s", "latency(ns)", "speedup")
		for _, r := range results {
			fmt.Printf("%-12s  %10d  %9.2f  %12.1f  %8.2f\n",
				r.Config, r.Cycles, r.AchievedTBs, r.MeanLatencyNs, r.Speedup(baseline))
		}
		return
	}

	configs, err := resolveConfigs(*cfgName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := configs[0]
	if len(configs) > 1 {
		fmt.Fprintf(os.Stderr, "note: scenario defines %d machines; simulating %q (use -compare for all)\n",
			len(configs), cfg.Name())
	}

	var res core.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := trace.ReadAll(r)
		if err != nil {
			log.Fatal(err)
		}
		sys := core.NewSystem(cfg)
		res = core.NewTraceRunner(sys, recs, *threads).Run()
	} else {
		spec, ok := core.FindWorkload(*wlName)
		if !ok {
			log.Fatalf("unknown workload %q", *wlName)
		}
		res = core.Run(cfg, spec, *requests, *seed)
	}

	fmt.Printf("configuration:        %s\n", res.Config)
	fmt.Printf("workload:             %s\n", res.Workload)
	fmt.Printf("requests:             %d\n", res.Requests)
	fmt.Printf("runtime:              %d cycles (%.2f us)\n", res.Cycles, res.Cycles.Ns()/1000)
	fmt.Printf("achieved bandwidth:   %.3f TB/s\n", res.AchievedTBs)
	fmt.Printf("mean miss latency:    %.1f ns\n", res.MeanLatencyNs)
	fmt.Printf("p99 miss latency:     %.1f ns\n", res.P99LatencyNs)
	fmt.Printf("network power:        %.1f W\n", res.NetworkPowerW)
	fmt.Printf("memory link power:    %.2f W\n", res.MemoryPowerW)
	fmt.Printf("network messages:     %d (%d bytes)\n", res.NetMessages, res.NetBytes)
	if res.HopTraversals > 0 {
		fmt.Printf("mesh hop traversals:  %d\n", res.HopTraversals)
	}
	if res.XBarUtil > 0 {
		fmt.Printf("crossbar utilization: %.1f%%\n", res.XBarUtil*100)
	}
}
