// Command corona-sweep runs the paper's full experiment matrix — five system
// configurations by fifteen workloads — and prints Figures 8, 9, 10, and 11
// as tables, plus the headline geometric-mean speedups.
//
// Usage:
//
//	corona-sweep [-requests N] [-seed S] [-workers W] [-cache DIR]
//	             [-fig 8|9|10|11|all] [-v]
//
// The 75 cells are independent deterministic simulations, so the sweep fans
// them out over a bounded worker pool (GOMAXPROCS workers by default;
// -workers 1 forces the sequential debugging path). Tables are bit-identical
// for any worker count — see docs/DETERMINISM.md. With -cache DIR, finished
// cells are persisted and later runs re-simulate only cells whose
// (config, workload, requests, seed) key changed.
//
// The paper ran 0.6M-240M requests per cell (Table 3); the default here is
// 20000, which reproduces the shapes in seconds on a multicore machine.
// Raise -requests for tighter numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"corona/internal/core"
)

func main() {
	requests := flag.Int("requests", 20000, "L2 misses simulated per (config, workload) cell")
	seed := flag.Uint64("seed", 42, "sweep base seed (per-workload seeds are derived from it)")
	workers := flag.Int("workers", 0, "worker pool size; 0 = GOMAXPROCS, 1 = sequential")
	cacheDir := flag.String("cache", "", "persist per-cell results in this directory and reuse them across runs")
	fig := flag.String("fig", "all", "which figure to print: 8, 9, 10, 11, or all")
	verbose := flag.Bool("v", false, "print per-cell progress")
	flag.Parse()

	s := core.NewSweep(*requests, *seed)
	opts := []core.Option{core.Workers(*workers), core.CacheDir(*cacheDir)}
	if *verbose {
		opts = append(opts, core.OnProgress(func(p core.Progress) {
			note := ""
			if p.Cached {
				note = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%2d/%d] %s on %s%s\n", p.Done, p.Total, p.Workload, p.Config, note)
		}))
	}
	start := time.Now()
	s.Run(opts...)
	fmt.Fprintf(os.Stderr, "sweep of %d cells x %d requests took %v\n",
		len(s.Configs)*len(s.Workloads), *requests, time.Since(start).Round(time.Millisecond))

	show := func(name, title string, tab fmt.Stringer) {
		if *fig != "all" && *fig != name {
			return
		}
		fmt.Printf("Figure %s: %s\n%s\n", name, title, tab)
	}
	show("8", "Normalized Speedup (over LMesh/ECM)", s.Figure8())
	show("9", "Achieved Bandwidth (TB/s)", s.Figure9())
	show("10", "Average L2 Miss Latency (ns)", s.Figure10())
	show("11", "On-chip Network Power (W)", s.Figure11())

	if *fig == "all" || *fig == "8" {
		a, b := s.GeoMeanSummary(0, 4)
		fmt.Printf("Synthetic geomean speedups:  OCM over ECM (HMesh) = %.2f (paper: 3.28);"+
			"  XBar over HMesh (OCM) = %.2f (paper: 2.36)\n", a, b)
		a, b = s.GeoMeanSummary(4, 15)
		fmt.Printf("SPLASH-2 geomean speedups:   OCM over ECM (HMesh) = %.2f (paper: 1.80);"+
			"  XBar over HMesh (OCM) = %.2f (paper: 1.44)\n", a, b)
	}
}
