// Command corona-sweep runs an experiment matrix — by default the paper's
// five system configurations by fifteen workloads — and prints Figures 8,
// 9, 10, and 11 as tables, plus the headline geometric-mean speedups.
//
// Usage:
//
//	corona-sweep [-config scenario.json] [-requests N] [-seed S]
//	             [-workers W] [-cache DIR] [-fig 8|9|10|11|all] [-v]
//	             [-warmup=false] [-cpuprofile FILE] [-memprofile FILE]
//	             [-bench-out FILE.json]
//
// With -config, the matrix comes from a JSON scenario file instead: any
// set of machines (presets like "XBar/OCM" or declarative fabric + params
// descriptions, including fabrics such as the SWMR crossbar that are not
// among the paper's five) by any subset of the Table 3 workloads — new
// machines run without recompiling. Explicit -requests/-seed flags override
// the file's values. See examples/custom-fabric/scenario.json and
// docs/ARCHITECTURE.md for the schema.
//
// The matrix is submitted through the Client/Job API (docs/API.md): cells
// fan out over a bounded worker pool (GOMAXPROCS workers by default;
// -workers 1 forces the sequential debugging path) and stream back as they
// finish, which is what -v prints. Tables are bit-identical for any worker
// count — see docs/DETERMINISM.md. With -cache DIR, finished cells are
// persisted and later runs re-simulate only cells whose full configuration
// fingerprint changed.
//
// Ctrl-C (or SIGTERM) cancels the sweep gracefully: in-flight cells stop at
// their next kernel checkpoint, every already-finished cell's cache entry
// is durable (entries are written atomically as cells complete), and the
// command exits non-zero after reporting how far it got — re-run with the
// same -cache to resume from the completed cells.
//
// The paper ran 0.6M-240M requests per cell (Table 3); the default here is
// 20000, which reproduces the shapes in seconds on a multicore machine.
// Raise -requests for tighter numbers.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (CPU over the
// whole run, heap at exit) for inspection with `go tool pprof`; see
// docs/PERFORMANCE.md for the workflow. -bench-out writes a machine-readable
// JSON perf record (wall time, cells, kernel events, events/s, allocations)
// for tracking the simulator's performance trajectory across commits —
// BENCH_5.json at the repository root is a checked-in example.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"corona/internal/core"
)

func main() {
	os.Exit(run())
}

// run holds main's body so profile-writing defers always flush before the
// process exits (os.Exit in main would skip them).
func run() (code int) {
	configFile := flag.String("config", "", "JSON scenario file describing the configs x workloads matrix (default: the paper's 5x15)")
	requests := flag.Int("requests", 20000, "L2 misses simulated per (config, workload) cell")
	seed := flag.Uint64("seed", 42, "sweep base seed (per-workload seeds are derived from it)")
	workers := flag.Int("workers", 0, "worker pool size; 0 = GOMAXPROCS, 1 = sequential")
	cacheDir := flag.String("cache", "", "persist per-cell results in this directory and reuse them across runs")
	fig := flag.String("fig", "all", "which figure to print: 8, 9, 10, 11, or all")
	verbose := flag.Bool("v", false, "print per-cell progress")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file after the sweep")
	benchOut := flag.String("bench-out", "", "write a machine-readable perf record of the sweep to this JSON file")
	warmup := flag.Bool("warmup", true, "share each row's fabric-independent warmup prefix across cells via snapshot forking (results are byte-identical either way; -warmup=false is the reference path)")
	flag.Parse()

	// Ctrl-C / SIGTERM cancel the sweep's context; the engine drains, keeps
	// every completed cache entry, and we exit non-zero below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corona-sweep: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "corona-sweep: start CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "corona-sweep: -memprofile: %v\n", err)
				code = 1
			}
		}()
	}

	var s *core.Sweep
	if *configFile != "" {
		sc, err := core.LoadScenario(*configFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corona-sweep: %v\n", err)
			return 2
		}
		// Explicit flags win over the file's values.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "requests":
				sc.Requests = *requests
			case "seed":
				sc.Seed = *seed
			}
		})
		s = sc.Sweep()
	} else {
		s = core.NewSweep(*requests, *seed)
	}

	client := core.NewClient(core.WithWorkers(*workers), core.WithCacheDir(*cacheDir))
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	job, err := client.Submit(ctx, s, core.Warmup(*warmup))
	if err != nil {
		fmt.Fprintf(os.Stderr, "corona-sweep: %v\n", err)
		return 2
	}
	total := len(s.Configs) * len(s.Workloads)
	done := 0
	for cell := range job.Results() {
		done++
		if *verbose {
			note := ""
			if cell.Cached {
				note = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%2d/%d] %s on %s%s\n", done, total, cell.Workload, cell.Config, note)
		}
	}
	if err := job.Wait(context.Background()); err != nil {
		var canceled *core.CanceledError
		if errors.As(err, &canceled) {
			fmt.Fprintf(os.Stderr, "corona-sweep: interrupted with %d of %d cells finished",
				canceled.Completed, canceled.Total)
			if *cacheDir != "" {
				fmt.Fprintf(os.Stderr, "; their results are cached in %s — re-run to resume from there", *cacheDir)
			} else {
				fmt.Fprint(os.Stderr, "; partial results discarded (use -cache to make interrupted sweeps resumable)")
			}
			fmt.Fprintln(os.Stderr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "corona-sweep: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "sweep of %d cells x %d requests took %v\n",
		total, s.Requests, elapsed.Round(time.Millisecond))
	// The perf record is a side channel: write it after the tables below, so
	// an unwritable -bench-out path can never discard a finished sweep's
	// primary output.
	defer func() {
		if *benchOut == "" {
			return
		}
		if err := writeBenchRecord(*benchOut, s, *workers, *warmup, elapsed, memBefore); err != nil {
			fmt.Fprintf(os.Stderr, "corona-sweep: -bench-out: %v\n", err)
			code = 1
		}
	}()

	show := func(name, title string, tab fmt.Stringer) {
		if *fig != "all" && *fig != name {
			return
		}
		fmt.Printf("Figure %s: %s\n%s\n", name, title, tab)
	}
	show("8", "Normalized Speedup (over "+s.BaselineName()+")", s.Figure8())
	show("9", "Achieved Bandwidth (TB/s)", s.Figure9())
	show("10", "Average L2 Miss Latency (ns)", s.Figure10())
	show("11", "On-chip Network Power (W)", s.Figure11())

	// The headline geomean summary is defined over the paper's matrix
	// (synthetics rows 0-3, SPLASH rows 4-14, HMesh/XBar columns); custom
	// scenarios print tables only.
	if (*fig == "all" || *fig == "8") && *configFile == "" {
		if a, b := s.GeoMeanSummary(0, 4); a > 0 && b > 0 {
			fmt.Printf("Synthetic geomean speedups:  OCM over ECM (HMesh) = %.2f (paper: 3.28);"+
				"  XBar over HMesh (OCM) = %.2f (paper: 2.36)\n", a, b)
		}
		if a, b := s.GeoMeanSummary(4, 15); a > 0 && b > 0 {
			fmt.Printf("SPLASH-2 geomean speedups:   OCM over ECM (HMesh) = %.2f (paper: 1.80);"+
				"  XBar over HMesh (OCM) = %.2f (paper: 1.44)\n", a, b)
		}
	}
	return 0
}

// benchRecord is the machine-readable perf record -bench-out emits: enough
// to track the simulator's throughput and allocation trajectory across
// commits (BENCH_5.json in the repository root is one of these, produced at
// the PR that introduced the flag).
type benchRecord struct {
	Schema int `json:"schema"`
	// Shape of the run.
	Cells    int    `json:"cells"`
	Requests int    `json:"requests"`
	Workers  int    `json:"workers"`
	Seed     uint64 `json:"seed"`
	// Warmup records whether warmup forking (the default) was on for the
	// run. It cannot move a single result byte — the differential
	// fork-equivalence suite pins that — but it does shift the perf numbers
	// this record exists to track.
	Warmup bool `json:"warmup"`
	// Measured results.
	WallSeconds   float64 `json:"wall_seconds"`
	KernelEvents  uint64  `json:"kernel_events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Allocs        uint64  `json:"allocs"`
	AllocsPerCell float64 `json:"allocs_per_cell"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	GoVersion     string  `json:"go_version"`
}

// writeBenchRecord snapshots the finished sweep's performance into path.
func writeBenchRecord(path string, s *core.Sweep, workers int, warmup bool, elapsed time.Duration, before runtime.MemStats) error {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	var events uint64
	for _, row := range s.Results {
		for _, cell := range row {
			events += cell.KernelEvents
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := len(s.Configs) * len(s.Workloads)
	rec := benchRecord{
		Schema:       2, // 2: added the warmup field
		Cells:        cells,
		Requests:     s.Requests,
		Workers:      workers,
		Seed:         s.Seed,
		Warmup:       warmup,
		WallSeconds:  elapsed.Seconds(),
		KernelEvents: events,
		Allocs:       after.Mallocs - before.Mallocs,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rec.EventsPerSec = float64(events) / sec
	}
	if cells > 0 {
		rec.AllocsPerCell = float64(rec.Allocs) / float64(cells)
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// writeHeapProfile snapshots the heap (after a settling GC, so the profile
// shows retained allocation) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("write heap profile: %w", err)
	}
	return f.Close()
}
