module corona

go 1.22
