package memory

import (
	"testing"
	"testing/quick"

	"corona/internal/sim"
)

func TestBandwidthConstants(t *testing.T) {
	ocm := OCMConfig()
	if got := ocm.PerControllerBytesPerSec(); got != 160e9 {
		t.Errorf("OCM per-controller = %v B/s, want 160 GB/s", got)
	}
	if got := ocm.AggregateBytesPerSec(64); got != 10.24e12 {
		t.Errorf("OCM aggregate = %v B/s, want 10.24 TB/s (Table 4)", got)
	}
	ecm := ECMConfig()
	if got := ecm.PerControllerBytesPerSec(); got != 15e9 {
		t.Errorf("ECM per-controller = %v B/s, want 15 GB/s", got)
	}
	if got := ecm.AggregateBytesPerSec(64); got != 0.96e12 {
		t.Errorf("ECM aggregate = %v B/s, want 0.96 TB/s (Table 4)", got)
	}
}

func TestAccessLatency(t *testing.T) {
	// An isolated read completes in ~20 ns plus transfer time.
	k := sim.NewKernel()
	c := NewController(k, OCMConfig(), 0)
	var doneAt sim.Time
	ok := c.Submit(&Request{ID: 1, Addr: 0x1000, ReqBytes: 16, RspBytes: 72,
		Done: func() { doneAt = k.Now() }})
	if !ok {
		t.Fatal("Submit refused on empty controller")
	}
	k.Run()
	// cmd 1 cycle + access 100 + data ceil(72/32)=3 → 104 cycles = 20.8 ns.
	if doneAt != 104 {
		t.Errorf("read completed at %d cycles, want 104", doneAt)
	}
	if c.Served != 1 {
		t.Errorf("Served = %d, want 1", c.Served)
	}
}

func TestWriteLatency(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, OCMConfig(), 0)
	var doneAt sim.Time
	c.Submit(&Request{ID: 1, Addr: 64, Write: true, ReqBytes: 80,
		Done: func() { doneAt = k.Now() }})
	k.Run()
	// cmd+line ceil(80/32)=3 + access 100 = 103.
	if doneAt != 103 {
		t.Errorf("write completed at %d cycles, want 103", doneAt)
	}
}

func TestECMSlowerTransfer(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, ECMConfig(), 0)
	var doneAt sim.Time
	c.Submit(&Request{ID: 1, Addr: 0, ReqBytes: 16, RspBytes: 72,
		Done: func() { doneAt = k.Now() }})
	k.Run()
	// cmd ceil(16/1.5)=11 + access 100 + data ceil(72/1.5)=48 = 159 cycles.
	if doneAt != 159 {
		t.Errorf("ECM read completed at %d cycles, want 159", doneAt)
	}
}

func TestQueueBackPressure(t *testing.T) {
	k := sim.NewKernel()
	cfg := OCMConfig()
	cfg.QueueDepth = 4
	c := NewController(k, cfg, 0)
	accepted := 0
	for i := 0; i < 10; i++ {
		if c.Submit(&Request{ID: uint64(i), Addr: uint64(i * 64), ReqBytes: 16, RspBytes: 72}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4 (QueueDepth)", accepted)
	}
	if c.QueueFullRefusals != 6 {
		t.Fatalf("refusals = %d, want 6", c.QueueFullRefusals)
	}
	k.Run()
	if c.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", c.QueueLen())
	}
	if !c.Submit(&Request{ID: 99, Addr: 0, ReqBytes: 16, RspBytes: 72}) {
		t.Fatal("still refusing after drain")
	}
}

func TestLinkBandwidthLimit(t *testing.T) {
	// Saturate an OCM controller with reads: steady-state throughput must be
	// link-limited at ~32 B/cycle of line data (72 B transfers every >= 3
	// cycles once the pipeline fills).
	k := sim.NewKernel()
	cfg := OCMConfig()
	cfg.QueueDepth = 1024
	c := NewController(k, cfg, 0)
	const n = 512
	var done int
	var last sim.Time
	for i := 0; i < n; i++ {
		// Spread across banks (bank bits sit above BankShift).
		c.Submit(&Request{ID: uint64(i), Addr: uint64(i) << 12, ReqBytes: 16, RspBytes: 72,
			Done: func() { done++; last = k.Now() }})
	}
	k.Run()
	if done != n {
		t.Fatalf("completed %d, want %d", done, n)
	}
	// Each read needs 1 cycle command + 3 cycles data on the shared fiber:
	// >= 4 cycles per transaction at steady state.
	minCycles := sim.Time(n * 4)
	if last < minCycles {
		t.Errorf("drained %d reads in %d cycles; below the fiber's capacity (min %d)", n, last, minCycles)
	}
	// And the controller should not be grossly slower than the link bound
	// (banks are sized to sustain line rate).
	if last > minCycles+minCycles/2 {
		t.Errorf("drained %d reads in %d cycles; want near link bound %d", n, last, minCycles)
	}
}

func TestECMLinkTenTimesSlower(t *testing.T) {
	run := func(cfg Config) sim.Time {
		k := sim.NewKernel()
		cfg.QueueDepth = 1024
		c := NewController(k, cfg, 0)
		for i := 0; i < 128; i++ {
			c.Submit(&Request{ID: uint64(i), Addr: uint64(i) << 12, ReqBytes: 16, RspBytes: 72})
		}
		k.Run()
		return k.Now()
	}
	o, e := run(OCMConfig()), run(ECMConfig())
	ratio := float64(e) / float64(o)
	// 160 GB/s (shared) vs 7.5 GB/s read direction ≈ 12x at read saturation.
	if ratio < 8 || ratio > 16 {
		t.Errorf("ECM/OCM drain-time ratio = %.1f, want ~12", ratio)
	}
}

func TestBankConflictsSerialize(t *testing.T) {
	k := sim.NewKernel()
	cfg := OCMConfig()
	cfg.Banks = 1
	cfg.BankBusy = 50
	c := NewController(k, cfg, 0)
	var times []sim.Time
	for i := 0; i < 4; i++ {
		c.Submit(&Request{ID: uint64(i), Addr: 0, ReqBytes: 16, RspBytes: 72,
			Done: func() { times = append(times, k.Now()) }})
	}
	k.Run()
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < 50 {
			t.Fatalf("bank-conflicting accesses %d apart, want >= 50 (BankBusy)", times[i]-times[i-1])
		}
	}
}

func TestDaisyChainAddsLatency(t *testing.T) {
	base := OCMConfig()
	deep := OCMConfig()
	deep.DaisyChain = 8
	run := func(cfg Config) sim.Time {
		k := sim.NewKernel()
		c := NewController(k, cfg, 0)
		var at sim.Time
		c.Submit(&Request{ID: 1, Addr: 0, ReqBytes: 16, RspBytes: 72, Done: func() { at = k.Now() }})
		k.Run()
		return at
	}
	b, d := run(base), run(deep)
	if d <= b {
		t.Fatalf("8-module chain latency %d <= single-module %d", d, b)
	}
	// 7 extra module traversals out + 7 back = 14 extra cycles (2.8 ns):
	// "the memory access latency is similar across all modules".
	if d-b != 14 {
		t.Errorf("chain penalty = %d cycles, want 14", d-b)
	}
}

func TestMeanLatency(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, OCMConfig(), 0)
	c.Submit(&Request{ID: 1, Addr: 0, ReqBytes: 16, RspBytes: 72})
	k.Run()
	if got := c.MeanLatencyNs(); got < 20 || got > 22 {
		t.Errorf("mean latency = %v ns, want ~20.8", got)
	}
	empty := NewController(sim.NewKernel(), OCMConfig(), 1)
	if empty.MeanLatencyNs() != 0 {
		t.Error("mean latency of idle controller should be 0")
	}
}

// Property: every submitted request completes exactly once, in bounded time,
// and Served matches the accepted count.
func TestCompletionProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, ecm bool) bool {
		n := int(nRaw%64) + 1
		rng := sim.NewRand(seed)
		k := sim.NewKernel()
		cfg := OCMConfig()
		if ecm {
			cfg = ECMConfig()
		}
		c := NewController(k, cfg, 0)
		var done int
		accepted := 0
		for i := 0; i < n; i++ {
			w := rng.Intn(4) == 0
			r := &Request{ID: uint64(i), Addr: rng.Uint64(), Write: w, Done: func() { done++ }}
			if w {
				r.ReqBytes = 80
			} else {
				r.ReqBytes, r.RspBytes = 16, 72
			}
			if c.Submit(r) {
				accepted++
			}
		}
		if k.RunLimit(1_000_000) >= 1_000_000 {
			return false
		}
		return done == accepted && int(c.Served) == accepted && c.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRequestPanics(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, OCMConfig(), 0)
	defer func() {
		if recover() == nil {
			t.Error("zero-byte read did not panic")
		}
	}()
	c.Submit(&Request{ID: 1, ReqBytes: 0})
}

func TestNotifySpace(t *testing.T) {
	k := sim.NewKernel()
	cfg := OCMConfig()
	cfg.QueueDepth = 1
	c := NewController(k, cfg, 0)
	if c.Config().Name != "ocm" {
		t.Fatal("Config accessor wrong")
	}
	c.Submit(&Request{ID: 1, Addr: 0, ReqBytes: 16, RspBytes: 72})
	// Queue is full: the callback must fire only after the retirement.
	fired := false
	c.NotifySpace(func() {
		fired = true
		if c.QueueLen() >= cfg.QueueDepth {
			t.Error("NotifySpace fired while the queue was still full")
		}
	})
	if fired {
		t.Fatal("callback fired synchronously on a full queue")
	}
	k.Run()
	if !fired {
		t.Fatal("callback never fired")
	}
	// With space available the callback fires on the next event.
	fired = false
	c.NotifySpace(func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("immediate NotifySpace never fired")
	}
}

func TestNotifySpaceFIFO(t *testing.T) {
	k := sim.NewKernel()
	cfg := OCMConfig()
	cfg.QueueDepth = 1
	c := NewController(k, cfg, 0)
	var order []int
	submitAndWait := func(tag int) {
		c.NotifySpace(func() {
			order = append(order, tag)
			c.Submit(&Request{ID: uint64(tag), Addr: uint64(tag) << 12, ReqBytes: 16, RspBytes: 72})
		})
	}
	c.Submit(&Request{ID: 99, Addr: 0, ReqBytes: 16, RspBytes: 72})
	submitAndWait(1)
	submitAndWait(2)
	submitAndWait(3)
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("waiter order = %v, want [1 2 3]", order)
	}
}

func TestNewControllerValidation(t *testing.T) {
	k := sim.NewKernel()
	bad := []Config{
		{},
		{InBytesPerCycle: 1, Banks: 0, QueueDepth: 1},
		{InBytesPerCycle: 1, Banks: 1, QueueDepth: 1, HalfDuplex: false, OutBytesPerCycle: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			NewController(k, cfg, 0)
		}()
	}
}
