package memory

import (
	"fmt"

	"corona/internal/sim"
)

// ControllerState is a deep, self-contained copy of one controller's dynamic
// state — channel bookings, bank busy times, queue occupancy, space waiters,
// in-flight transactions, and counters — used by the warmup-forking snapshot
// machinery (docs/DETERMINISM.md). Handler references inside it still point
// at the source simulation's components; RestoreState remaps them. A state
// is only ever read after capture, so one state may be restored into many
// controllers concurrently.
type ControllerState struct {
	cfg      Config
	in       []ival
	out      []ival // nil when half duplex (out aliases in)
	banks    []sim.Time
	queued   int
	waiters  []spaceWaiter
	inflight sim.Slots[inflightReq]

	served, bytesMoved, refusals uint64
	totalLatency                 sim.Time
}

// CaptureState deep-copies the controller's dynamic state into st (reusing
// its storage). Closure callbacks — a spaceWaiter's fn or a Request's Done —
// cannot be carried across a fork, so their presence is an error; the hub's
// hot path uses the typed handler fields throughout.
func (c *Controller) CaptureState(st *ControllerState) error {
	st.cfg = c.cfg
	st.in = append(st.in[:0], c.inLink.booked...)
	if c.cfg.HalfDuplex {
		st.out = nil
	} else {
		st.out = append(st.out[:0], c.outLink.booked...)
	}
	st.banks = append(st.banks[:0], c.banks...)
	st.queued = c.queued
	st.waiters = st.waiters[:0]
	for i := 0; i < c.waiters.Len(); i++ {
		w := c.waiters.At(i)
		if w.fn != nil {
			return fmt.Errorf("memory: controller %d: closure space waiter cannot be snapshotted", c.id)
		}
		st.waiters = append(st.waiters, w)
	}
	st.inflight.CopyFrom(&c.inflight)
	var closureErr error
	st.inflight.Walk(func(_ uint64, f *inflightReq) {
		if f.r.Done != nil && closureErr == nil {
			closureErr = fmt.Errorf("memory: controller %d: in-flight request %d uses a closure Done callback and cannot be snapshotted", c.id, f.r.ID)
		}
	})
	if closureErr != nil {
		return closureErr
	}
	st.served, st.bytesMoved, st.refusals = c.Served, c.BytesMoved, c.QueueFullRefusals
	st.totalLatency = c.TotalLatency
	return nil
}

// RestoreState overwrites the controller's dynamic state with st. The
// controller must have been built with the same Config. remap translates
// handler references (completion handlers, typed space waiters) from the
// source simulation's components into this one's; a nil return fails the
// restore. st itself is never written.
func (c *Controller) RestoreState(st *ControllerState, remap func(sim.Handler) sim.Handler) error {
	if c.cfg != st.cfg {
		return fmt.Errorf("memory: controller %d: restore config mismatch (%s vs %s)", c.id, c.cfg.Name, st.cfg.Name)
	}
	c.inLink.booked = append(c.inLink.booked[:0], st.in...)
	if !c.cfg.HalfDuplex {
		c.outLink.booked = append(c.outLink.booked[:0], st.out...)
	}
	copy(c.banks, st.banks)
	c.queued = st.queued
	c.waiters.Reset()
	for _, w := range st.waiters {
		if w.h != nil {
			nh := remap(w.h)
			if nh == nil {
				return fmt.Errorf("memory: controller %d: no mapping for space-waiter handler %T", c.id, w.h)
			}
			w.h = nh
		}
		c.waiters.Push(w)
	}
	c.inflight.CopyFrom(&st.inflight)
	var remapErr error
	c.inflight.Walk(func(_ uint64, f *inflightReq) {
		if f.r.DoneHandler == nil || remapErr != nil {
			return
		}
		nh := remap(f.r.DoneHandler)
		if nh == nil {
			remapErr = fmt.Errorf("memory: controller %d: no mapping for completion handler %T", c.id, f.r.DoneHandler)
			return
		}
		f.r.DoneHandler = nh
	})
	if remapErr != nil {
		return remapErr
	}
	c.Served, c.BytesMoved, c.QueueFullRefusals = st.served, st.bytesMoved, st.refusals
	c.TotalLatency = st.totalLatency
	return nil
}

// Reset returns the controller to its just-constructed state, keeping grown
// storage so a pooled controller's next run allocates nothing.
func (c *Controller) Reset() {
	c.inLink.booked = c.inLink.booked[:0]
	if !c.cfg.HalfDuplex {
		c.outLink.booked = c.outLink.booked[:0]
	}
	clear(c.banks)
	c.queued = 0
	c.waiters.Reset()
	c.inflight.Reset()
	c.Served, c.BytesMoved, c.QueueFullRefusals = 0, 0, 0
	c.TotalLatency = 0
}

// OwnsHandler reports whether h is a memory-owned typed handler (the
// completion event type is unexported; snapshot vetting uses this).
func OwnsHandler(h sim.Handler) bool {
	_, ok := h.(*finishEvent)
	return ok
}

// RemapHandler translates a controller-owned typed handler from one
// simulation into the equivalent handler of the controller pick(id) returns.
// It reports false when h is not a memory-owned handler (the caller should
// try its other component families).
func RemapHandler(h sim.Handler, pick func(id int) *Controller) (sim.Handler, bool) {
	e, ok := h.(*finishEvent)
	if !ok {
		return nil, false
	}
	nc := pick((*Controller)(e).id)
	if nc == nil {
		return nil, false
	}
	return (*finishEvent)(nc), true
}
