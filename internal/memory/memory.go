// Package memory models Corona's off-stack memory system (Section 3.3,
// Table 4): one memory controller per cluster, each connected to optically
// connected memory (OCM) by a pair of single-waveguide 64-wavelength DWDM
// fibers, or — for the electrical baseline (ECM) — by a 12-bit full-duplex
// pin channel.
//
// OCM moves 160 GB/s per controller (10.24 TB/s aggregate) over a half-duplex
// fiber pair; ECM moves 15 GB/s per controller (0.96 TB/s aggregate) in
// total across its two directions. Both have a 20 ns access latency. The DRAM die is organized so
// an entire cache line is read from a single mat, so a small number of
// banks sustains line rate without opening kilobyte pages.
package memory

import (
	"fmt"

	"corona/internal/sim"
)

// Config parameterizes one memory controller's external channel and DRAM.
type Config struct {
	Name string
	// HalfDuplex: commands and data share one link (OCM fiber loop). When
	// false, InBytesPerCycle and OutBytesPerCycle are independent directions.
	HalfDuplex bool
	// InBytesPerCycle is command/write bandwidth toward memory;
	// OutBytesPerCycle is read-data bandwidth from memory. For half-duplex
	// configurations only InBytesPerCycle is used, as the shared link rate.
	// Fractional rates express sub-5 GB/s pin channels.
	InBytesPerCycle  float64
	OutBytesPerCycle float64
	// AccessCycles is the DRAM access latency (the paper's 20 ns).
	AccessCycles sim.Time
	// Banks is the number of independent DRAM mats per controller; BankBusy
	// is each access's bank occupancy.
	Banks    int
	BankBusy sim.Time
	// BankShift selects the address bits used for bank interleaving within
	// a controller. The system interleaves lines across controllers in the
	// 6 bits above the 6-bit line offset, so banks must be chosen from bits
	// above both (shift 12), or every line homed at one controller would
	// land in the same bank.
	BankShift uint
	// QueueDepth bounds the controller's request queue; Submit refuses when
	// full (back pressure into the hub).
	QueueDepth int
	// DaisyChain is the number of OCM modules on the fiber loop; light passes
	// through each un-retimed, adding ChainHopCycles per traversed module.
	DaisyChain     int
	ChainHopCycles sim.Time
}

// OCMConfig returns the optically connected memory parameters: a fiber pair
// carrying 64 λ at 10 Gb/s dual-edge modulation = 32 B/cycle = 160 GB/s per
// controller, half duplex, 20 ns access.
func OCMConfig() Config {
	return Config{
		Name:            "ocm",
		HalfDuplex:      true,
		InBytesPerCycle: 32,
		AccessCycles:    sim.FromNs(20),
		Banks:           32,
		BankBusy:        16,
		BankShift:       12,
		QueueDepth:      64,
		DaisyChain:      1,
		ChainHopCycles:  1,
	}
}

// ECMConfig returns the electrical baseline: a 12-bit full-duplex channel at
// 10 Gb/s carrying 15 GB/s per controller in total (Table 4's 0.96 TB/s
// aggregate across 64 controllers counts both directions, exactly as OCM's
// 160 GB/s counts the fiber pair's total), i.e. 7.5 GB/s = 1.5 B/cycle per
// direction, 20 ns access. The ITRS pin budget (1536 pins for 64 such
// channels) makes anything faster infeasible.
func ECMConfig() Config {
	return Config{
		Name:             "ecm",
		HalfDuplex:       false,
		InBytesPerCycle:  1.5,
		OutBytesPerCycle: 1.5,
		AccessCycles:     sim.FromNs(20),
		Banks:            32,
		BankBusy:         16,
		BankShift:        12,
		QueueDepth:       64,
	}
}

// PerControllerBytesPerSec returns one controller's peak total bandwidth in
// bytes/second: the shared-link rate for half duplex, the sum of both
// directions for full duplex (Table 4 counts both the same way).
func (c Config) PerControllerBytesPerSec() float64 {
	bpc := c.InBytesPerCycle
	if !c.HalfDuplex {
		bpc += c.OutBytesPerCycle
	}
	return bpc * 5e9
}

// AggregateBytesPerSec returns the 64-controller aggregate bandwidth.
func (c Config) AggregateBytesPerSec(controllers int) float64 {
	return c.PerControllerBytesPerSec() * float64(controllers)
}

// Request is one memory transaction submitted by the hub. Submit copies the
// request by value into the controller's in-flight registry and never
// retains the pointer, so callers may pass a stack-allocated Request — the
// hub's per-transaction submissions heap-allocate nothing.
type Request struct {
	ID    uint64
	Addr  uint64
	Write bool
	// Bytes on the wire: command+address for reads, command+line for writes
	// inbound; the line outbound for reads.
	ReqBytes int
	RspBytes int
	// Done is called when the transaction completes (data returned for reads,
	// write committed for writes). DoneHandler, when non-nil, is the typed
	// completion path instead: DoneHandler.OnEvent(now, DoneData) runs with no
	// closure allocated.
	Done        func()
	DoneHandler sim.Handler
	DoneData    uint64
}

// link is a serially reusable channel resource. Because the controller
// schedules future data returns at submit time, the link keeps a gap list of
// booked windows rather than a single high-water mark: a command issued now
// must be able to slip in front of a data transfer booked for 100 cycles
// from now, or the half-duplex fiber degenerates into one transaction at a
// time.
type link struct {
	booked []ival // sorted, disjoint busy windows
}

type ival struct {
	start, end sim.Time
}

// reserve books the earliest window of `bytes` starting at or after `at`,
// pruning windows that ended before `now`. It returns the [start, end)
// occupancy.
func (l *link) reserve(now, at sim.Time, bytes int, bytesPerCycle float64) (start, end sim.Time) {
	// Prune history: nothing will ever be requested before now again.
	i := 0
	for i < len(l.booked) && l.booked[i].end <= now {
		i++
	}
	if i > 0 {
		l.booked = append(l.booked[:0], l.booked[i:]...)
	}

	dur := sim.Time(float64(bytes) / bytesPerCycle)
	if float64(dur) < float64(bytes)/bytesPerCycle {
		dur++
	}
	t := at
	if t < now {
		t = now
	}
	idx := len(l.booked)
	for j, iv := range l.booked {
		if iv.start >= t+dur {
			idx = j
			break
		}
		if iv.end > t {
			t = iv.end
		}
	}
	l.booked = append(l.booked, ival{})
	copy(l.booked[idx+1:], l.booked[idx:])
	l.booked[idx] = ival{start: t, end: t + dur}
	return t, t + dur
}

// inflightReq is one submitted transaction awaiting its finish event; the
// request is held by value so the caller's Request never escapes.
type inflightReq struct {
	r     Request
	start sim.Time
}

// spaceWaiter is one queued NotifySpace registration: either a typed
// (handler, data) pair or a legacy closure.
type spaceWaiter struct {
	h    sim.Handler
	data uint64
	fn   func()
}

// finishEvent is the controller's typed completion handler: it fires at a
// transaction's finish time with the inflight slot index as data.
type finishEvent Controller

func (e *finishEvent) OnEvent(now sim.Time, data uint64) {
	c := (*Controller)(e)
	f := c.inflight.Take(data)
	c.queued--
	if !c.waiters.Empty() {
		w := c.waiters.Pop()
		if w.h != nil {
			c.k.ScheduleEvent(0, w.h, w.data)
		} else {
			//lint:allow schedulepath compat branch for closure waiters registered via NotifySpace; the hot path is the typed arm above
			c.k.Schedule(0, w.fn)
		}
	}
	c.Served++
	c.BytesMoved += uint64(f.r.ReqBytes + f.r.RspBytes)
	c.TotalLatency += now - f.start
	if f.r.DoneHandler != nil {
		f.r.DoneHandler.OnEvent(now, f.r.DoneData)
	} else if f.r.Done != nil {
		f.r.Done()
	}
}

// Controller is one cluster's memory controller plus its external channel
// and DRAM banks. The controller is the bus master: all channel scheduling is
// done here, with no arbitration (Section 3.3).
type Controller struct {
	k   *sim.Kernel
	cfg Config
	id  int

	inLink  link // commands/writes toward memory (shared link if half duplex)
	outLink *link

	banks []sim.Time // per-bank busy-until

	queued  int
	waiters sim.Fifo[spaceWaiter]

	// inflight parks (request, issue time) pairs for the typed finish event.
	inflight sim.Slots[inflightReq]

	// Stats.
	Served     uint64
	BytesMoved uint64
	// QueueFullRefusals counts Submit back-pressure events.
	QueueFullRefusals uint64
	// BusySample accumulates queue occupancy for mean-depth reporting.
	TotalLatency sim.Time
}

// NewController builds controller id with config cfg on kernel k.
func NewController(k *sim.Kernel, cfg Config, id int) *Controller {
	if cfg.InBytesPerCycle <= 0 || cfg.Banks <= 0 || cfg.QueueDepth <= 0 {
		panic(fmt.Sprintf("memory: invalid config %+v", cfg))
	}
	if !cfg.HalfDuplex && cfg.OutBytesPerCycle <= 0 {
		panic("memory: full-duplex config requires OutBytesPerCycle")
	}
	c := &Controller{k: k, cfg: cfg, id: id, banks: make([]sim.Time, cfg.Banks)}
	// Seed the booking lists with the queue's worth of capacity so the gap
	// search never grows them mid-run.
	c.inLink.booked = make([]ival, 0, cfg.QueueDepth)
	if cfg.HalfDuplex {
		c.outLink = &c.inLink // shared fiber loop
	} else {
		c.outLink = &link{booked: make([]ival, 0, cfg.QueueDepth)}
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// QueueLen returns the number of in-flight transactions.
func (c *Controller) QueueLen() int { return c.queued }

// chainDelay is the extra propagation from daisy-chained OCM modules: the
// light passes through each module un-buffered, so the delay is small and
// uniform across modules (Section 3.3 / Figure 6c).
func (c *Controller) chainDelay() sim.Time {
	if c.cfg.DaisyChain <= 1 {
		return 0
	}
	return sim.Time(c.cfg.DaisyChain-1) * c.cfg.ChainHopCycles
}

// Submit enqueues a transaction. It returns false when the controller queue
// is full; the hub must retry (back pressure).
func (c *Controller) Submit(r *Request) bool {
	if r.ReqBytes <= 0 || (!r.Write && r.RspBytes <= 0) {
		// Box a copy, not r itself: keeping the pointer out of the panic
		// argument lets escape analysis stack-allocate callers' Requests.
		panic(fmt.Sprintf("memory: invalid request %+v", *r))
	}
	if c.queued >= c.cfg.QueueDepth {
		c.QueueFullRefusals++
		return false
	}
	c.queued++
	start := c.k.Now()

	// 1. Command (and write data) transfer toward memory.
	_, cmdEnd := c.inLink.reserve(c.k.Now(), c.k.Now(), r.ReqBytes, c.cfg.InBytesPerCycle)

	// 2. Bank access: earliest-available bank selected by address.
	bank := int((r.Addr >> c.cfg.BankShift) % uint64(len(c.banks)))
	bankStart := cmdEnd + c.chainDelay()
	if c.banks[bank] > bankStart {
		bankStart = c.banks[bank]
	}
	c.banks[bank] = bankStart + c.cfg.BankBusy
	accessDone := bankStart + c.cfg.AccessCycles

	if r.Write {
		c.k.AtEvent(accessDone, (*finishEvent)(c), c.inflight.Put(inflightReq{r: *r, start: start}))
		return true
	}
	// 3. Read data return on the outbound direction (or the shared fiber).
	bpc := c.cfg.OutBytesPerCycle
	if c.cfg.HalfDuplex {
		bpc = c.cfg.InBytesPerCycle
	}
	_, dataEnd := c.outLink.reserve(c.k.Now(), accessDone+c.chainDelay(), r.RspBytes, bpc)
	c.k.AtEvent(dataEnd, (*finishEvent)(c), c.inflight.Put(inflightReq{r: *r, start: start}))
	return true
}

// NotifySpace registers a one-shot callback invoked as soon as a queue slot
// is (or becomes) available, replacing poll-and-retry at the hub. Callbacks
// fire in registration order, one per retirement.
func (c *Controller) NotifySpace(fn func()) {
	if c.queued < c.cfg.QueueDepth {
		//lint:allow schedulepath NotifySpace is itself the closure-compat surface; allocation-free callers use NotifySpaceEvent
		c.k.Schedule(0, fn)
		return
	}
	c.waiters.Push(spaceWaiter{fn: fn})
}

// NotifySpaceEvent is NotifySpace on the typed event path: h.OnEvent(now,
// data) fires as soon as a queue slot is (or becomes) available, with no
// closure allocated. Typed and closure waiters share one FIFO, so mixed
// registrations still fire strictly in order.
func (c *Controller) NotifySpaceEvent(h sim.Handler, data uint64) {
	if c.queued < c.cfg.QueueDepth {
		c.k.ScheduleEvent(0, h, data)
		return
	}
	c.waiters.Push(spaceWaiter{h: h, data: data})
}

// MeanLatencyNs returns the mean transaction latency in nanoseconds.
func (c *Controller) MeanLatencyNs() float64 {
	if c.Served == 0 {
		return 0
	}
	return (sim.Time(float64(c.TotalLatency) / float64(c.Served))).Ns()
}
