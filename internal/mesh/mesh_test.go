package mesh

import (
	"testing"
	"testing/quick"

	"corona/internal/noc"
	"corona/internal/sim"
)

type harness struct {
	k    *sim.Kernel
	m    *Mesh
	got  []*noc.Message
	when []sim.Time
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{k: sim.NewKernel()}
	h.m = New(h.k, cfg)
	for c := 0; c < h.m.Clusters(); c++ {
		c := c
		h.m.SetDeliver(c, func(msg *noc.Message) {
			h.got = append(h.got, msg)
			h.when = append(h.when, h.k.Now())
			h.m.Consume(c, msg)
		})
	}
	return h
}

func msg(id uint64, src, dst, size int, kind noc.Kind) *noc.Message {
	return &noc.Message{ID: id, Src: src, Dst: dst, Size: size, Kind: kind}
}

func TestBisectionBandwidth(t *testing.T) {
	if got := HMeshConfig().BisectionBytesPerSec(); got != 1.28e12 {
		t.Errorf("HMesh bisection = %v, want 1.28 TB/s", got)
	}
	if got := LMeshConfig().BisectionBytesPerSec(); got != 0.64e12 {
		t.Errorf("LMesh bisection = %v, want 0.64 TB/s", got)
	}
}

func TestDimensionOrderRouting(t *testing.T) {
	h := newHarness(t, HMeshConfig())
	// From (1,1)=9 to (3,2)=19: X first (E,E), then Y (S), then eject.
	path := h.m.route(9, 19, nil)
	want := []portRef{{9, dirEast}, {10, dirEast}, {11, dirSouth}, {19, dirEject}}
	if len(path) != len(want) {
		t.Fatalf("path len = %d, want %d", len(path), len(want))
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path[%d] = %+v, want %+v", i, path[i], want[i])
		}
	}
}

func TestRoutePropertyXY(t *testing.T) {
	// Property: a DOR path never turns from Y back to X, visits adjacent
	// routers, has Hops(src,dst)+1 entries, and ends with ejection at dst.
	h := newHarness(t, HMeshConfig())
	f := func(a, b uint8) bool {
		src, dst := int(a%64), int(b%64)
		if src == dst {
			return true
		}
		path := h.m.route(src, dst, nil)
		if len(path) != h.m.Hops(src, dst)+1 {
			return false
		}
		last := path[len(path)-1]
		if last.router != dst || last.d != dirEject {
			return false
		}
		seenY := false
		cur := src
		for _, p := range path[:len(path)-1] {
			if p.router != cur {
				return false
			}
			switch p.d {
			case dirEast:
				cur++
			case dirWest:
				cur--
			case dirSouth:
				cur += 8
				seenY = true
			case dirNorth:
				cur -= 8
				seenY = true
			default:
				return false
			}
			if seenY && (p.d == dirEast || p.d == dirWest) {
				return false
			}
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUncontendedLatency(t *testing.T) {
	// One hop: grant at 0, head at 5, tail at 5+s. 64 B on HMesh: s=4.
	h := newHarness(t, HMeshConfig())
	h.m.Send(msg(1, 0, 1, 64, noc.KindResponse))
	h.k.Run()
	if len(h.got) != 1 {
		t.Fatal("message not delivered")
	}
	// Path: link 0->1 (grant 0, head at 5), eject (grant 5, delivered 5+5+4).
	want := sim.Time(5 + 5 + 4)
	if h.when[0] != want {
		t.Errorf("1-hop 64 B latency = %d, want %d", h.when[0], want)
	}
}

func TestCornerToCornerLatency(t *testing.T) {
	// 14 hops corner to corner: per-hop 5 cycles dominates.
	h := newHarness(t, HMeshConfig())
	h.m.Send(msg(1, 0, 63, 16, noc.KindRequest))
	h.k.Run()
	// 14 link grants at 5-cycle strides + eject (5 + s=1).
	want := sim.Time(14*5 + 5 + 1)
	if h.when[0] != want {
		t.Errorf("corner-to-corner latency = %d, want %d", h.when[0], want)
	}
	if h.got[0].Hops != 14 {
		t.Errorf("hops = %d, want 14", h.got[0].Hops)
	}
}

func TestHopsMetric(t *testing.T) {
	h := newHarness(t, HMeshConfig())
	cases := []struct{ src, dst, want int }{
		{0, 1, 1}, {0, 63, 14}, {0, 7, 7}, {0, 56, 7}, {27, 27, 0}, {9, 19, 3},
	}
	for _, c := range cases {
		if got := h.m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestLMeshSlowerSerialization(t *testing.T) {
	hh := newHarness(t, HMeshConfig())
	hl := newHarness(t, LMeshConfig())
	hh.m.Send(msg(1, 0, 1, 64, noc.KindResponse))
	hl.m.Send(msg(1, 0, 1, 64, noc.KindResponse))
	hh.k.Run()
	hl.k.Run()
	if hl.when[0] <= hh.when[0] {
		t.Errorf("LMesh (%d) should be slower than HMesh (%d) for the same line",
			hl.when[0], hh.when[0])
	}
}

func TestInjectionBackPressure(t *testing.T) {
	cfg := HMeshConfig()
	cfg.InjectQueue = 2
	h := newHarness(t, cfg)
	ok := 0
	for i := 0; i < 10; i++ {
		if h.m.Send(msg(uint64(i), 0, 63, 64, noc.KindRequest)) {
			ok++
		}
	}
	if ok >= 10 {
		t.Fatal("injection queue never exerted back pressure")
	}
	h.k.Run()
	if len(h.got) != ok {
		t.Fatalf("delivered %d, want %d", len(h.got), ok)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two packets share the 0->1 link; their link grants must not overlap.
	h := newHarness(t, HMeshConfig())
	h.m.Send(msg(1, 0, 1, 64, noc.KindResponse)) // s=4
	h.m.Send(msg(2, 0, 1, 64, noc.KindResponse))
	h.k.Run()
	if len(h.when) != 2 {
		t.Fatal("not all delivered")
	}
	gap := h.when[1] - h.when[0]
	if gap < 4 {
		t.Errorf("deliveries %d apart, want >= 4 (serialization on shared link)", gap)
	}
}

func TestVirtualNetworksNoProtocolDeadlock(t *testing.T) {
	// A sink that only consumes responses must still receive responses even
	// while its request buffer is saturated: the two classes have separate
	// buffers and credits.
	cfg := HMeshConfig()
	cfg.RecvBuffer = 4   // 2 credits per class
	cfg.InjectQueue = 16 // accept all 10 sends per class up front
	k := sim.NewKernel()
	m := New(k, cfg)
	var reqs, rsps int
	for c := 0; c < 64; c++ {
		m.SetDeliver(c, func(msg *noc.Message) {
			if msg.Kind == noc.KindResponse {
				rsps++
				m.Consume(c, msg)
			} else {
				reqs++ // requests delivered but never consumed: buffer wedges
			}
		})
	}
	for i := 0; i < 10; i++ {
		m.Send(msg(uint64(i), 1, 0, 16, noc.KindRequest))
	}
	for i := 0; i < 10; i++ {
		m.Send(msg(uint64(100+i), 2, 0, 72, noc.KindResponse))
	}
	k.RunLimit(100000)
	if rsps != 10 {
		t.Fatalf("responses delivered = %d, want 10 despite wedged request class", rsps)
	}
}

func TestDeliveryCompletenessProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%80) + 1
		rng := sim.NewRand(seed)
		k := sim.NewKernel()
		cfg := HMeshConfig()
		cfg.InjectQueue = 200
		m := New(k, cfg)
		seen := make(map[uint64]int)
		for c := 0; c < 64; c++ {
			c := c
			m.SetDeliver(c, func(msg *noc.Message) {
				seen[msg.ID]++
				m.Consume(c, msg)
			})
		}
		for i := 0; i < n; i++ {
			src := rng.Intn(64)
			dst := rng.Intn(63)
			if dst >= src {
				dst++
			}
			kind := noc.KindRequest
			if rng.Intn(2) == 1 {
				kind = noc.KindResponse
			}
			if !m.Send(msg(uint64(i), src, dst, 16+rng.Intn(64), kind)) {
				return false
			}
		}
		if k.RunLimit(5_000_000) >= 5_000_000 {
			return false
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshVsXBarShapedBandwidth(t *testing.T) {
	// Saturate the bisection with uniform random traffic: HMesh should move
	// roughly twice the bytes LMesh does in the same horizon.
	run := func(cfg Config) uint64 {
		k := sim.NewKernel()
		m := New(k, cfg)
		var bytes uint64
		for c := 0; c < 64; c++ {
			c := c
			m.SetDeliver(c, func(msg *noc.Message) {
				bytes += uint64(msg.Size)
				m.Consume(c, msg)
			})
		}
		rng := sim.NewRand(17)
		var pump func(src int)
		var id uint64
		pump = func(src int) {
			id++
			dst := rng.Intn(63)
			if dst >= src {
				dst++
			}
			m.Send(msg(id, src, dst, 64, noc.KindResponse))
			k.Schedule(2, func() { pump(src) })
		}
		for c := 0; c < 64; c++ {
			pump(c)
		}
		k.RunUntil(4000)
		k.Stop()
		return bytes
	}
	hb := run(HMeshConfig())
	lb := run(LMeshConfig())
	ratio := float64(hb) / float64(lb)
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("HMesh/LMesh saturated throughput ratio = %.2f, want ~2", ratio)
	}
}

func TestLocalTrafficPanics(t *testing.T) {
	h := newHarness(t, HMeshConfig())
	defer func() {
		if recover() == nil {
			t.Error("src==dst Send did not panic")
		}
	}()
	h.m.Send(msg(1, 5, 5, 64, noc.KindRequest))
}

func TestUtilization(t *testing.T) {
	h := newHarness(t, HMeshConfig())
	h.m.Send(msg(1, 0, 7, 64, noc.KindResponse))
	h.k.Run()
	if u := h.m.Utilization(h.k.Now()); u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want in (0,1]", u)
	}
	if h.m.Utilization(0) != 0 {
		t.Error("zero-elapsed utilization should be 0")
	}
}

// TestDoubleConsumePanics pins the pool misuse guard on the mesh: the
// second release of one delivered message must panic (see the xbar twin).
func TestDoubleConsumePanics(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, HMeshConfig())
	var delivered *noc.Message
	for c := 0; c < 64; c++ {
		m.SetDeliver(c, func(msg *noc.Message) { delivered = msg })
	}
	if !m.Send(msg(1, 0, 63, 64, noc.KindRequest)) {
		t.Fatal("send refused")
	}
	k.Run()
	if delivered == nil {
		t.Fatal("message never delivered")
	}
	m.Consume(63, delivered)
	defer func() {
		if recover() == nil {
			t.Fatal("double Consume did not panic")
		}
	}()
	m.Consume(63, delivered)
}
