package mesh

import (
	"fmt"

	"corona/internal/noc"
	"corona/internal/power"
	"corona/internal/sim"
)

// Parameter keys the mesh fabrics accept in noc.FabricParams.Params; values
// override the preset Config field-for-field. Width and height must be
// overridden together and their product must equal the cluster count.
const (
	ParamWidth         = "width"
	ParamHeight        = "height"
	ParamBytesPerCycle = "bytes_per_cycle"
	ParamHopLatency    = "hop_latency"
	ParamLinkBuffer    = "link_buffer"
	ParamInjectQueue   = "inject_queue"
	ParamRecvBuffer    = "recv_buffer"
)

// FromParams resolves a Config from base (a preset such as HMeshConfig)
// plus overrides, rejecting unknown keys, non-positive sizes, and geometry
// that does not match the requested cluster count. When the cluster count
// differs from the base geometry and no explicit width/height is given, a
// square mesh is derived.
func FromParams(base Config, p noc.FabricParams) (Config, error) {
	if err := p.CheckKeys(base.Name, ParamWidth, ParamHeight, ParamBytesPerCycle,
		ParamHopLatency, ParamLinkBuffer, ParamInjectQueue, ParamRecvBuffer); err != nil {
		return Config{}, err
	}
	cfg := base
	cfg.Width = p.Get(ParamWidth, cfg.Width)
	cfg.Height = p.Get(ParamHeight, cfg.Height)
	cfg.BytesPerCycle = p.Get(ParamBytesPerCycle, cfg.BytesPerCycle)
	cfg.HopLatency = sim.Time(p.Get(ParamHopLatency, int(cfg.HopLatency)))
	cfg.LinkBuffer = p.Get(ParamLinkBuffer, cfg.LinkBuffer)
	cfg.InjectQueue = p.Get(ParamInjectQueue, cfg.InjectQueue)
	cfg.RecvBuffer = p.Get(ParamRecvBuffer, cfg.RecvBuffer)
	if p.Clusters > 0 && cfg.Width*cfg.Height != p.Clusters {
		_, wOver := p.Params[ParamWidth]
		_, hOver := p.Params[ParamHeight]
		if wOver || hOver {
			return Config{}, fmt.Errorf("mesh: %dx%d geometry has %d routers, system wants %d clusters",
				cfg.Width, cfg.Height, cfg.Width*cfg.Height, p.Clusters)
		}
		side := 1
		for side*side < p.Clusters {
			side++
		}
		if side*side != p.Clusters {
			return Config{}, fmt.Errorf("mesh: %d clusters is not a perfect square; pass explicit %s/%s",
				p.Clusters, ParamWidth, ParamHeight)
		}
		cfg.Width, cfg.Height = side, side
	}
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.BytesPerCycle <= 0 || cfg.HopLatency <= 0 ||
		cfg.LinkBuffer <= 0 || cfg.InjectQueue <= 0 || cfg.RecvBuffer <= 0 {
		return Config{}, fmt.Errorf("mesh: non-positive parameter in %+v", cfg)
	}
	return cfg, nil
}

// registerMesh registers one mesh preset under its fabric name.
func registerMesh(name, display, desc string, base func() Config) {
	noc.Register(noc.Fabric{
		Name:        name,
		Display:     display,
		Description: desc,
		Build: func(k *sim.Kernel, p noc.FabricParams) (noc.Network, error) {
			cfg, err := FromParams(base(), p)
			if err != nil {
				return nil, err
			}
			return New(k, cfg), nil
		},
		Check: func(p noc.FabricParams) error { _, err := FromParams(base(), p); return err },
		BisectionBytesPerSec: func(p noc.FabricParams) float64 {
			cfg, err := FromParams(base(), p)
			if err != nil {
				return 0
			}
			return cfg.BisectionBytesPerSec()
		},
		MinTransitCycles: base().HopLatency * 2, // one hop plus ejection
		PowerW: func(st noc.Stats, elapsed sim.Time) float64 {
			return power.MeshDynamicW(st.HopTraversals, elapsed)
		},
		// Utilization is deliberately nil: mesh link occupancy is not the
		// crossbar channel-utilization figure of merit.
	})
}

// init registers the paper's two electrical baselines with the fabric
// registry; the system model builds them by name ("hmesh", "lmesh").
func init() {
	registerMesh("hmesh", "HMesh",
		"high-performance electrical 2D mesh, 1.28 TB/s bisection (Section 4)", HMeshConfig)
	registerMesh("lmesh", "LMesh",
		"low-performance electrical 2D mesh, 0.64 TB/s bisection (Section 4)", LMeshConfig)
}
