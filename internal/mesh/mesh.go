// Package mesh models the electrical 2D mesh baselines of the paper's
// evaluation (Section 4): HMesh (1.28 TB/s bisection) and LMesh (0.64 TB/s
// bisection), both with 5 clocks of per-hop latency (forwarding plus signal
// propagation) and dimension-order wormhole routing [Dally & Seitz].
//
// The model is packet-granularity virtual cut-through over per-link FIFOs —
// the standard fidelity for this kind of system study. A packet of S bytes
// occupies each link on its path for ceil(S/W) cycles (W = link width in
// bytes/cycle), its head advances one hop per HopLatency, and finite input
// buffers exert credit-based back pressure upstream. Requests and responses
// travel in separate virtual networks (message classes) so that a stalled
// response never deadlocks against the requests that caused it; the physical
// link bandwidth is shared round-robin between the classes.
package mesh

import (
	"fmt"

	"corona/internal/noc"
	"corona/internal/sim"
)

// Config parameterizes a mesh.
type Config struct {
	Name          string
	Width, Height int // routers; clusters = Width*Height
	BytesPerCycle int // link bandwidth (16 for HMesh, 8 for LMesh)
	HopLatency    sim.Time
	LinkBuffer    int // input buffer per link per class, in packets
	InjectQueue   int // per-cluster injection FIFO depth (per class)
	RecvBuffer    int // per-cluster ejection buffer (credit pool for the hub)
}

// HMeshConfig returns the high-performance mesh: 16 B/cycle links give an
// 8x8 mesh a 1.28 TB/s bisection at 5 GHz.
func HMeshConfig() Config {
	return Config{
		Name: "hmesh", Width: 8, Height: 8,
		BytesPerCycle: 16, HopLatency: 5,
		LinkBuffer: 4, InjectQueue: 8, RecvBuffer: 16,
	}
}

// LMeshConfig returns the low-performance mesh: half the link width,
// 0.64 TB/s bisection.
func LMeshConfig() Config {
	c := HMeshConfig()
	c.Name = "lmesh"
	c.BytesPerCycle = 8
	return c
}

// BisectionBytesPerSec returns the mesh bisection bandwidth in bytes/second
// at 5 GHz (both directions across the vertical cut).
func (c Config) BisectionBytesPerSec() float64 {
	links := 2 * c.Height // both directions across the cut
	return float64(links*c.BytesPerCycle) * 5e9
}

// dir indexes a router's output ports.
type dir uint8

const (
	dirEast dir = iota
	dirWest
	dirNorth
	dirSouth
	dirEject
	numDirs
)

const numClasses = 2 // virtual networks: 0 = request-like, 1 = response-like

// classOf maps message kinds onto virtual networks.
func classOf(k noc.Kind) int {
	switch k {
	case noc.KindResponse, noc.KindInvalidateAck:
		return 1
	default:
		return 0
	}
}

type packet struct {
	m     *noc.Message
	path  []portRef
	stage int
	class int
}

type portRef struct {
	router int
	d      dir
}

type outPort struct {
	busyUntil sim.Time
	wakeAt    sim.Time // earliest pending wake event, to dedupe
	wakeSet   bool
	q         [numClasses]sim.Fifo[*packet]
	credits   [numClasses]int
	rr        int
}

// Mesh implements noc.Network.
type Mesh struct {
	noc.MsgPool // per-network message free list (Acquire / Consume recycles)

	k   *sim.Kernel
	cfg Config
	n   int

	// ports is the flat [router][dir] output-port array, laid out
	// router-major (index router*numDirs + dir): one contiguous block, so
	// the per-hop pipeline pays a single bounds check and no pointer chase
	// per port access.
	ports   []outPort
	deliver []noc.DeliverFunc
	// injectCount tracks stage-0 packets per cluster per class against
	// InjectQueue, laid out cluster-major (cluster*numClasses + class).
	injectCount []int

	// slots parks in-flight packets for the typed hop/eject events; pktFree
	// recycles retired packets (keeping their routed-path buffers) so the
	// steady-state Send→eject cycle allocates neither packets nor paths.
	slots   sim.Slots[*packet]
	pktFree []*packet

	stats noc.Stats
	// LinkBusyCycles accumulates occupancy across all links for utilization.
	LinkBusyCycles uint64
}

var _ noc.Network = (*Mesh)(nil)

// Mesh kernel events run on the typed fast path via named views of the Mesh:
// port references, classes, and packet slot indices pack into the data word,
// so the per-hop pipeline — the busiest scheduler client in the mesh
// configurations — allocates nothing in steady state.

// packRef packs an output-port reference (and optionally a class) into a
// handler data word: dir in the low 3 bits, router above it, class at bit 20.
func packRef(ref portRef) uint64 { return uint64(ref.router)<<3 | uint64(ref.d) }

func unpackRef(data uint64) portRef {
	return portRef{router: int(data >> 3 & 0x1ffff), d: dir(data & 7)}
}

// port returns the output port at (router, d) in the flat array.
func (m *Mesh) port(router int, d dir) *outPort {
	return &m.ports[router*int(numDirs)+int(d)]
}

// wakeEvent is a deferred tryGrant on a busy port.
type wakeEvent Mesh

func (e *wakeEvent) OnEvent(now sim.Time, data uint64) {
	m := (*Mesh)(e)
	ref := unpackRef(data)
	p := m.port(ref.router, ref.d)
	if p.wakeAt == now {
		p.wakeSet = false
	}
	m.tryGrant(ref)
}

// creditEvent returns an input-buffer credit to the upstream port once the
// packet's tail has left the router.
type creditEvent Mesh

func (e *creditEvent) OnEvent(_ sim.Time, data uint64) {
	m := (*Mesh)(e)
	ref := unpackRef(data)
	class := int(data >> 20 & 1)
	m.port(ref.router, ref.d).credits[class]++
	m.tryGrant(ref)
}

// injectDoneEvent frees the source cluster's injection-FIFO slot.
type injectDoneEvent Mesh

func (e *injectDoneEvent) OnEvent(_ sim.Time, data uint64) {
	m := (*Mesh)(e)
	m.injectCount[int(data&0xffff)*numClasses+int(data>>20&1)]--
}

// hopEvent advances a packet's head into the next router (cut-through).
type hopEvent Mesh

func (e *hopEvent) OnEvent(_ sim.Time, data uint64) {
	m := (*Mesh)(e)
	p := m.slots.Take(data)
	p.stage++
	next := p.path[p.stage]
	np := m.port(next.router, next.d)
	np.q[p.class].Push(p)
	m.tryGrant(next)
}

// ejectEvent delivers a packet's tail into the destination hub. The packet
// wrapper retires (and recycles) here; the message itself stays live until
// the hub's Consume.
type ejectEvent Mesh

func (e *ejectEvent) OnEvent(_ sim.Time, data uint64) {
	m := (*Mesh)(e)
	p := m.slots.Take(data)
	msg := p.m
	m.freePacket(p)
	m.stats.Messages++
	m.stats.Bytes += uint64(msg.Size)
	m.stats.HopTraversals += uint64(msg.Hops)
	m.deliver[msg.Dst](msg)
}

// newPacket returns a recycled (or fresh) packet wrapper; its path buffer
// keeps the capacity of earlier routes, and a fresh one is sized for the
// longest possible DOR path up front so route never grows it.
func (m *Mesh) newPacket() *packet {
	if n := len(m.pktFree); n > 0 {
		p := m.pktFree[n-1]
		m.pktFree = m.pktFree[:n-1]
		return p
	}
	//lint:allow poolflow this is the pool's own feeder: the one sanctioned packet construction site
	return &packet{path: make([]portRef, 0, m.cfg.Width+m.cfg.Height-1)}
}

// freePacket recycles a retired packet wrapper.
func (m *Mesh) freePacket(p *packet) {
	p.m = nil
	p.stage = 0
	m.pktFree = append(m.pktFree, p)
}

// New builds a mesh on kernel k.
func New(k *sim.Kernel, cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.BytesPerCycle <= 0 ||
		cfg.LinkBuffer <= 0 || cfg.InjectQueue <= 0 || cfg.RecvBuffer <= 0 {
		panic(fmt.Sprintf("mesh: invalid config %+v", cfg))
	}
	n := cfg.Width * cfg.Height
	if n > 1<<16 {
		// Event data words carry router/cluster ids in 16-bit fields
		// (injectDoneEvent) and 17-bit fields (packRef); beyond the
		// narrowest, ids would silently alias.
		panic(fmt.Sprintf("mesh: %dx%d exceeds the %d-router event encoding limit",
			cfg.Width, cfg.Height, 1<<16))
	}
	m := &Mesh{
		k: k, cfg: cfg, n: n,
		ports:       make([]outPort, n*int(numDirs)),
		deliver:     make([]noc.DeliverFunc, n),
		injectCount: make([]int, n*numClasses),
	}
	for r := 0; r < n; r++ {
		for d := dir(0); d < numDirs; d++ {
			for c := 0; c < numClasses; c++ {
				if d == dirEject {
					// Eject credits are shared across classes through the
					// hub's receive buffer; split the pool evenly.
					m.port(r, d).credits[c] = cfg.RecvBuffer / numClasses
				} else {
					m.port(r, d).credits[c] = cfg.LinkBuffer
				}
			}
		}
	}
	return m
}

// Name implements noc.Network.
func (m *Mesh) Name() string { return m.cfg.Name }

// Quiescent implements noc.Quiescer: nil only when the mesh is in its
// construction state — idle ports, empty VC queues, full credit pools, no
// in-flight packets.
func (m *Mesh) Quiescent() error {
	for r := 0; r < m.n; r++ {
		for d := dir(0); d < numDirs; d++ {
			p := m.port(r, d)
			if p.busyUntil != 0 || p.wakeSet || p.rr != 0 {
				return fmt.Errorf("mesh: port (%d,%d) has been active", r, d)
			}
			for c := 0; c < numClasses; c++ {
				if !p.q[c].Empty() {
					return fmt.Errorf("mesh: port (%d,%d) class %d holds %d packets", r, d, c, p.q[c].Len())
				}
				want := m.cfg.LinkBuffer
				if d == dirEject {
					want = m.cfg.RecvBuffer / numClasses
				}
				if p.credits[c] != want {
					return fmt.Errorf("mesh: port (%d,%d) class %d holds %d/%d credits", r, d, c, p.credits[c], want)
				}
			}
		}
		for c := 0; c < numClasses; c++ {
			if n := m.injectCount[r*numClasses+c]; n != 0 {
				return fmt.Errorf("mesh: cluster %d class %d has %d packets injecting", r, c, n)
			}
		}
	}
	if n := m.slots.Len(); n != 0 {
		return fmt.Errorf("mesh: %d packets in flight", n)
	}
	return nil
}

// Reset implements noc.Resetter: restore the construction state in place,
// keeping the message pool, packet pool, and grown queue capacity. Delivery
// callbacks are left installed; a reusing System overwrites them via
// SetDeliver.
func (m *Mesh) Reset() {
	for r := 0; r < m.n; r++ {
		for d := dir(0); d < numDirs; d++ {
			p := m.port(r, d)
			p.busyUntil, p.wakeAt, p.wakeSet, p.rr = 0, 0, false, 0
			for c := 0; c < numClasses; c++ {
				p.q[c].Reset()
				if d == dirEject {
					p.credits[c] = m.cfg.RecvBuffer / numClasses
				} else {
					p.credits[c] = m.cfg.LinkBuffer
				}
			}
		}
	}
	clear(m.injectCount)
	m.slots.Reset()
	m.stats = noc.Stats{}
	m.LinkBusyCycles = 0
}

// Clusters implements noc.Network.
func (m *Mesh) Clusters() int { return m.n }

// Stats returns message/byte/hop counters.
func (m *Mesh) Stats() noc.Stats { return m.stats }

// SetDeliver implements noc.Network.
func (m *Mesh) SetDeliver(cluster int, fn noc.DeliverFunc) { m.deliver[cluster] = fn }

func (m *Mesh) xy(r int) (int, int) { return r % m.cfg.Width, r / m.cfg.Width }
func (m *Mesh) id(x, y int) int     { return y*m.cfg.Width + x }

// route computes the dimension-order (X then Y) path — one output port per
// hop plus the final ejection port — into the caller's buffer, reusing its
// capacity.
func (m *Mesh) route(src, dst int, path []portRef) []portRef {
	x, y := m.xy(src)
	dx, dy := m.xy(dst)
	path = path[:0]
	for x != dx {
		if x < dx {
			path = append(path, portRef{m.id(x, y), dirEast})
			x++
		} else {
			path = append(path, portRef{m.id(x, y), dirWest})
			x--
		}
	}
	for y != dy {
		if y < dy {
			path = append(path, portRef{m.id(x, y), dirSouth})
			y++
		} else {
			path = append(path, portRef{m.id(x, y), dirNorth})
			y--
		}
	}
	path = append(path, portRef{dst, dirEject})
	return path
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Hops returns the link-traversal count between two clusters (excluding
// ejection), used by the 196 pJ/hop power model.
func (m *Mesh) Hops(src, dst int) int {
	x, y := m.xy(src)
	dx, dy := m.xy(dst)
	return abs(dx-x) + abs(dy-y)
}

// Send implements noc.Network.
func (m *Mesh) Send(msg *noc.Message) bool {
	if !noc.Valid(msg, m.n) {
		panic(noc.Validate(msg, m.n))
	}
	if msg.Src == msg.Dst {
		panic(fmt.Sprintf("mesh: message %d is cluster-local (src == dst == %d)", msg.ID, msg.Src))
	}
	cl := classOf(msg.Kind)
	if m.injectCount[msg.Src*numClasses+cl] >= m.cfg.InjectQueue {
		return false
	}
	msg.Inject = m.k.Now()
	msg.Hops = m.Hops(msg.Src, msg.Dst)
	p := m.newPacket()
	p.m = msg
	p.class = cl
	p.path = m.route(msg.Src, msg.Dst, p.path)
	m.injectCount[msg.Src*numClasses+cl]++
	first := p.path[0]
	port := m.port(first.router, first.d)
	port.q[cl].Push(p)
	m.tryGrant(first)
	return true
}

// Consume implements noc.Network: the hub drained msg, freeing its slot in
// the ejection buffer of msg's virtual network and recycling the message.
func (m *Mesh) Consume(cluster int, msg *noc.Message) {
	class := classOf(msg.Kind)
	m.Release(msg)
	port := m.port(cluster, dirEject)
	port.credits[class]++
	m.tryGrant(portRef{cluster, dirEject})
}

// serialization returns the link occupancy of a message.
func (m *Mesh) serialization(size int) sim.Time {
	return sim.Time((size + m.cfg.BytesPerCycle - 1) / m.cfg.BytesPerCycle)
}

// tryGrant attempts to start the next eligible packet on a port, observing
// link occupancy, class round-robin, and downstream credits.
func (m *Mesh) tryGrant(ref portRef) {
	port := m.port(ref.router, ref.d)
	now := m.k.Now()
	if port.busyUntil > now {
		m.wake(ref, port.busyUntil)
		return
	}
	// Round-robin over classes, skipping empty queues and exhausted credits.
	cl := port.rr
	for i := 0; i < numClasses; i++ {
		if !port.q[cl].Empty() && port.credits[cl] != 0 {
			port.rr = (cl + 1) & (numClasses - 1)
			m.grant(ref, port, port.q[cl].Pop())
			return
		}
		cl = (cl + 1) & (numClasses - 1)
	}
}

// wake schedules a deferred tryGrant, deduplicating redundant wake-ups. The
// wake event compares the port's wakeAt against its own firing time, which
// is exactly the `at` it was scheduled for.
func (m *Mesh) wake(ref portRef, at sim.Time) {
	port := m.port(ref.router, ref.d)
	if port.wakeSet && port.wakeAt <= at {
		return
	}
	port.wakeSet = true
	port.wakeAt = at
	m.k.AtEvent(at, (*wakeEvent)(m), packRef(ref))
}

func (m *Mesh) grant(ref portRef, port *outPort, p *packet) {
	now := m.k.Now()
	s := m.serialization(p.m.Size)
	port.busyUntil = now + s
	port.credits[p.class]--
	if ref.d != dirEject {
		m.LinkBusyCycles += uint64(s)
	}

	// The upstream input-buffer slot (previous link's credit) frees when the
	// packet's tail leaves this router.
	if p.stage > 0 {
		prev := p.path[p.stage-1]
		m.k.ScheduleEvent(s, (*creditEvent)(m), packRef(prev)|uint64(p.class)<<20)
	} else {
		m.k.ScheduleEvent(s, (*injectDoneEvent)(m), uint64(p.m.Src)|uint64(p.class)<<20)
	}

	if ref.d == dirEject {
		// Tail reaches the hub after head latency plus serialization.
		m.k.ScheduleEvent(m.cfg.HopLatency+s, (*ejectEvent)(m), m.slots.Put(p))
	} else {
		// Head arrives at the next router after HopLatency (cut-through).
		m.k.ScheduleEvent(m.cfg.HopLatency, (*hopEvent)(m), m.slots.Put(p))
	}
	// The link frees after the tail passes.
	m.wake(ref, now+s)
}

// Utilization returns mean link occupancy over elapsed cycles across all
// mesh links (excluding ejection ports).
func (m *Mesh) Utilization(elapsed sim.Time) float64 {
	if elapsed == 0 {
		return 0
	}
	// 2*(W-1)*H horizontal + 2*W*(H-1) vertical unidirectional links.
	links := 2*(m.cfg.Width-1)*m.cfg.Height + 2*m.cfg.Width*(m.cfg.Height-1)
	return float64(m.LinkBusyCycles) / (float64(elapsed) * float64(links))
}
