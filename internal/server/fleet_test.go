package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
)

// fleetScenario is a 3-config x 2-workload matrix (6 cells) spanning two
// presets and the SWMR custom fabric — small enough to fleet-run in
// milliseconds, varied enough that a misrouted shard changes bytes.
const fleetScenario = `{
	"configs": [{"preset": "LMesh/ECM"}, {"preset": "XBar/OCM"}, {"fabric": "swmr", "mem": "OCM"}],
	"workloads": ["Uniform", "Hot Spot"],
	"requests": 300,
	"seed": 23
}`

// fastPeer builds a worker client with a test-speed retry envelope: real
// backoff discipline, milliseconds instead of seconds.
func fastPeer(url string) *Client {
	return NewClient(url, WithRetries(4), WithBackoff(5*time.Millisecond, 50*time.Millisecond))
}

// newFleet starts n worker daemons plus a coordinator dispatching to them,
// returning the coordinator (server and HTTP endpoint) and the workers'
// endpoints (so a test can kill one).
func newFleet(t *testing.T, n int, workerOpts, coordOpts Options) (*Server, *httptest.Server, []*httptest.Server) {
	t.Helper()
	var workers []*httptest.Server
	var peers []*Client
	for i := 0; i < n; i++ {
		_, wts := newTestServer(t, workerOpts)
		workers = append(workers, wts)
		peers = append(peers, fastPeer(wts.URL))
	}
	coordOpts.Peers = peers
	s, ts := newTestServer(t, coordOpts)
	return s, ts, workers
}

// scrapeMetrics fetches and returns the /metrics text exposition.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestFleetByteIdenticalAcrossShardCounts is the fleet determinism gate: the
// same campaign through coordinators of 1, 2, and 5 workers yields a merged
// NDJSON stream byte-identical (in canonical index order) to a single-node
// daemon's, for full-matrix and subset submissions alike.
func TestFleetByteIdenticalAcrossShardCounts(t *testing.T) {
	_, single := newTestServer(t, Options{})
	ref, resp := postScenario(t, single, fleetScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single-node submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, single, ref.ID, statusDone)
	want := sortedNDJSON(t, single, ref.ID)
	if len(want) != 6 {
		t.Fatalf("single-node run produced %d cells, want 6", len(want))
	}

	for _, n := range []int{1, 2, 5} {
		_, coord, _ := newFleet(t, n, Options{}, Options{})
		v, resp := postScenario(t, coord, fleetScenario)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%d workers: submit: HTTP %d", n, resp.StatusCode)
		}
		waitStatus(t, coord, v.ID, statusDone)
		if got := sortedNDJSON(t, coord, v.ID); !slices.Equal(got, want) {
			t.Errorf("%d workers: merged NDJSON differs from the single-node run", n)
		}

		// A subset campaign shards the subset, not the matrix.
		sub, resp := postScenario(t, coord,
			strings.Replace(fleetScenario, `"requests"`, `"cells": {"list": [0, 2, 5]}, "requests"`, 1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%d workers: subset submit: HTTP %d", n, resp.StatusCode)
		}
		waitStatus(t, coord, sub.ID, statusDone)
		got := sortedNDJSON(t, coord, sub.ID)
		if len(got) != 3 || got[0] != want[0] || got[1] != want[2] || got[2] != want[5] {
			t.Errorf("%d workers: subset campaign returned %d cells or wrong bytes", n, len(got))
		}
	}
}

// TestFleetRetriesWorkerFailureMidCampaign kills one sub-job mid-shard via
// fault injection — a worker failing after delivering part of its cells —
// and requires the coordinator to re-dispatch exactly the missing cells and
// still merge a stream byte-identical to a healthy run.
func TestFleetRetriesWorkerFailureMidCampaign(t *testing.T) {
	_, single := newTestServer(t, Options{})
	ref, _ := postScenario(t, single, fleetScenario)
	waitStatus(t, single, ref.ID, statusDone)
	want := sortedNDJSON(t, single, ref.ID)

	defer faultinject.Disarm()
	// The third cell simulated anywhere in the in-process fleet errors: its
	// worker's sub-job fails with cells already streamed, the coordinator
	// must ride it out.
	if err := faultinject.Arm("core.cell.run:error@3"); err != nil {
		t.Fatal(err)
	}
	s, coord, _ := newFleet(t, 3, Options{}, Options{})
	v, resp := postScenario(t, coord, fleetScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, coord, v.ID, statusDone)
	if got := sortedNDJSON(t, coord, v.ID); !slices.Equal(got, want) {
		t.Error("merged NDJSON after a mid-campaign worker failure differs from a healthy run")
	}
	if _, retries, _ := s.fleet.snapshot(); retries < 1 {
		t.Errorf("fleet retries = %d, want >= 1 (a sub-job did fail)", retries)
	}
}

// TestFleetRetriesDeadWorker kills a worker daemon outright (its listener is
// gone before the campaign starts): the coordinator's dispatch to it fails
// at the transport and the shard must land on the surviving worker, output
// unchanged.
func TestFleetRetriesDeadWorker(t *testing.T) {
	_, single := newTestServer(t, Options{})
	ref, _ := postScenario(t, single, fleetScenario)
	waitStatus(t, single, ref.ID, statusDone)
	want := sortedNDJSON(t, single, ref.ID)

	s, coord, workers := newFleet(t, 2, Options{}, Options{})
	workers[0].Close()
	v, resp := postScenario(t, coord, fleetScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, coord, v.ID, statusDone)
	if got := sortedNDJSON(t, coord, v.ID); !slices.Equal(got, want) {
		t.Error("merged NDJSON with a dead worker differs from a healthy run")
	}
	if _, retries, _ := s.fleet.snapshot(); retries < 1 {
		t.Errorf("fleet retries = %d, want >= 1 (half the fleet was dead)", retries)
	}

	// The dead worker's shard is visible in the per-worker dispatch counts:
	// both workers were tried, only one could serve.
	mx := scrapeMetrics(t, coord)
	for _, name := range s.peerNames {
		if !strings.Contains(mx, fmt.Sprintf("corona_fleet_shards_dispatched_total{worker=%q}", name)) {
			t.Errorf("/metrics misses dispatch counter for worker %s", name)
		}
	}
}

// TestMetricsEndpoint pins the Prometheus exposition on both node kinds: a
// worker exports job/queue/cell/store gauges, a coordinator additionally
// exports fleet size and dispatch counters, and scrapes parse as the text
// format (every non-comment line is "name{labels} value").
func TestMetricsEndpoint(t *testing.T) {
	s, coord, workers := newFleet(t, 2, Options{}, Options{})
	v, _ := postScenario(t, coord, fleetScenario)
	waitStatus(t, coord, v.ID, statusDone)

	mx := scrapeMetrics(t, coord)
	for _, want := range []string{
		`corona_jobs{status="done"} 1`,
		`corona_jobs{status="running"} 0`,
		"corona_queue_depth 0",
		"corona_queue_capacity 16",
		"corona_cells_completed_total 6",
		"corona_cells_per_second",
		"corona_uptime_seconds",
		"corona_fleet_workers 2",
		"corona_fleet_shard_retries_total 0",
	} {
		if !strings.Contains(mx, want) {
			t.Errorf("coordinator /metrics misses %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(mx), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}

	// Workers scraped the same way report no fleet series and their own
	// share of the cells.
	wmx := scrapeMetrics(t, workers[0])
	if strings.Contains(wmx, "corona_fleet_workers") {
		t.Error("plain worker exports fleet metrics")
	}
	if !strings.Contains(wmx, "corona_cells_completed_total") {
		t.Error("worker /metrics misses corona_cells_completed_total")
	}

	// The store gauge appears only when a store is configured.
	if strings.Contains(mx, "corona_store_healthy") {
		t.Error("storeless daemon exports corona_store_healthy")
	}
	st := openStore(t, t.TempDir())
	defer st.Close()
	_, sts := newTestServer(t, Options{Store: st})
	if !strings.Contains(scrapeMetrics(t, sts), "corona_store_healthy 1") {
		t.Error("stored daemon misses corona_store_healthy 1")
	}
	_ = s
}

// TestSplitShards pins the contiguous near-equal chunking, including more
// workers than cells.
func TestSplitShards(t *testing.T) {
	for _, tc := range []struct {
		cells, n int
		want     [][]int
	}{
		{6, 2, [][]int{{0, 1, 2}, {3, 4, 5}}},
		{6, 5, [][]int{{0}, {1}, {2}, {3}, {4, 5}}},
		{2, 4, [][]int{{0}, {1}}},
		{5, 3, [][]int{{0}, {1, 2}, {3, 4}}},
	} {
		in := make([]int, tc.cells)
		for i := range in {
			in[i] = i
		}
		got := splitShards(in, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("splitShards(%d, %d) = %v", tc.cells, tc.n, got)
		}
		for k := range got {
			if !slices.Equal(got[k], tc.want[k]) {
				t.Errorf("splitShards(%d, %d)[%d] = %v, want %v", tc.cells, tc.n, k, got[k], tc.want[k])
			}
		}
	}
}

// TestCellSelector pins the wire form: contiguous runs compress to a range,
// gapped retries fall back to the explicit list.
func TestCellSelector(t *testing.T) {
	if sel := cellSelector([]int{3, 4, 5}); sel.Lo == nil || *sel.Lo != 3 || *sel.Hi != 6 || sel.List != nil {
		t.Errorf("contiguous selector = %+v", sel)
	}
	if sel := cellSelector([]int{1, 3, 4}); sel.Lo != nil || !slices.Equal(sel.List, []int{1, 3, 4}) {
		t.Errorf("gapped selector = %+v", sel)
	}
}

// TestFleetSpeedup is the scaling acceptance gate: the paper-shaped
// 6-configuration x 15-workload campaign through a 4-worker fleet (each
// worker single-threaded) must run at least twice as fast as through a
// 1-worker fleet at the same per-node parallelism, with byte-identical
// merged output. The byte-identity half runs everywhere; the wall-clock
// half needs real cores — an in-process fleet on a 1-CPU box time-slices
// one core and measures the scheduler, not the sharding.
func TestFleetSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaling measurement")
	}
	scenario := `{
		"configs": [{"preset": "LMesh/ECM"}, {"preset": "HMesh/ECM"}, {"preset": "LMesh/OCM"},
		            {"preset": "HMesh/OCM"}, {"preset": "XBar/OCM"}, {"fabric": "swmr", "mem": "OCM"}],
		"requests": 1500,
		"seed": 29
	}`
	serial := Options{Client: core.NewClient(core.WithWorkers(1))}

	run := func(n int) ([]string, time.Duration) {
		_, coord, _ := newFleet(t, n, serial, Options{})
		start := time.Now()
		v, resp := postScenario(t, coord, scenario)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%d workers: submit: HTTP %d", n, resp.StatusCode)
		}
		waitStatus(t, coord, v.ID, statusDone)
		return sortedNDJSON(t, coord, v.ID), time.Since(start)
	}

	one, tOne := run(1)
	four, tFour := run(4)
	if len(one) != 90 {
		t.Fatalf("campaign produced %d cells, want 90", len(one))
	}
	if !slices.Equal(one, four) {
		t.Error("4-worker merged NDJSON differs from 1-worker")
	}
	speedup := tOne.Seconds() / tFour.Seconds()
	t.Logf("1 worker %v, 4 workers %v: %.2fx on %d CPUs", tOne, tFour, speedup, runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling assertion needs >= 4 CPUs, have %d (byte-identity verified above)", runtime.NumCPU())
	}
	if speedup < 2 {
		t.Errorf("fleet speedup = %.2fx, want >= 2x", speedup)
	}
}
