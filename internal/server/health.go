package server

// Worker health registry: a coordinator heartbeats every worker's /healthz
// on a fixed cadence and drives a per-worker state machine —
//
//	healthy --(1 failed heartbeat)--> suspect
//	suspect --(DeadAfter consecutive failures)--> dead
//	dead    --(1 live heartbeat)--> recovered --(next live heartbeat)--> healthy
//
// Dead workers are excluded from shard dispatch and speculation; recovered
// ones rejoin automatically, no operator action required. The same heartbeat
// carries the worker's queue depth and capacity, which feed the
// coordinator's admission control (fleetAdmission): when every live worker's
// queue is full the coordinator sheds new campaigns with 503 and a
// Retry-After computed from the fleet's observed drain rate, instead of
// accepting work it can only stall on.

import (
	"context"
	"math"
	"net/http"
	"sync"
	"time"
)

// Worker health states as reported by /healthz and counted by /metrics.
// "recovered" is a one-heartbeat display state: the worker is dispatchable
// again, and the next live heartbeat promotes it to "healthy".
const (
	workerHealthy   = "healthy"
	workerSuspect   = "suspect"
	workerDead      = "dead"
	workerRecovered = "recovered"
)

// FleetTuning parameterizes the coordinator's availability layer. The zero
// value means "use the default" for every field, so Options.Tuning can be
// left unset.
type FleetTuning struct {
	// HeartbeatInterval is the worker /healthz polling cadence. Default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one heartbeat probe (a single attempt, no
	// retries). Default: HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// DeadAfter is how many consecutive failed heartbeats declare a worker
	// dead (the first failure already marks it suspect). Default 3.
	DeadAfter int
	// BreakerThreshold is how many consecutive transport/5xx dispatch
	// failures open a worker's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses dispatch before
	// admitting a half-open probe. Default 5s.
	BreakerCooldown time.Duration
	// SpeculationFactor triggers straggler speculation: a shard whose
	// observed cells/sec falls below factor x the fleet median gets its
	// undelivered cells speculatively re-dispatched. Default 0.25.
	SpeculationFactor float64
	// SpeculationAfter is the minimum shard age before it can be judged a
	// straggler — rates over tiny windows are noise. Default 2s.
	SpeculationAfter time.Duration
	// SpeculationInterval is the straggler-check cadence. Default 250ms.
	SpeculationInterval time.Duration
}

// withDefaults fills every unset field.
func (t FleetTuning) withDefaults() FleetTuning {
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = time.Second
	}
	if t.HeartbeatTimeout <= 0 {
		t.HeartbeatTimeout = t.HeartbeatInterval
	}
	if t.DeadAfter <= 0 {
		t.DeadAfter = 3
	}
	if t.BreakerThreshold <= 0 {
		t.BreakerThreshold = 3
	}
	if t.BreakerCooldown <= 0 {
		t.BreakerCooldown = 5 * time.Second
	}
	if t.SpeculationFactor <= 0 {
		t.SpeculationFactor = 0.25
	}
	if t.SpeculationAfter <= 0 {
		t.SpeculationAfter = 2 * time.Second
	}
	if t.SpeculationInterval <= 0 {
		t.SpeculationInterval = 250 * time.Millisecond
	}
	return t
}

// heartbeatTransport disables keep-alives so every heartbeat is a fresh
// connection: a probe that reuses a pre-partition connection would report a
// partitioned worker healthy.
var heartbeatTransport http.RoundTripper = &http.Transport{DisableKeepAlives: true}

// worker is one fleet peer plus everything the availability layer knows
// about it: the retrying dispatch client, a single-attempt heartbeat client,
// the health state machine, the last-reported queue figures, and the circuit
// breaker.
type worker struct {
	client *Client // dispatch client (backoff retries)
	hb     *Client // heartbeat client: one attempt, no keep-alive
	name   string
	br     *breaker

	mu          sync.Mutex
	state       string
	consecFails int
	queueDepth  int
	queueCap    int
	hasQueue    bool // at least one heartbeat has reported queue figures
}

func newWorker(c *Client, t FleetTuning) *worker {
	return &worker{
		client: c,
		hb: NewClient(c.BaseURL(), WithRetries(0),
			WithHTTPClient(&http.Client{Transport: heartbeatTransport})),
		name:  c.BaseURL(),
		br:    newBreaker(t.BreakerThreshold, t.BreakerCooldown),
		state: workerHealthy, // optimistic until the first heartbeat says otherwise
	}
}

// snapshot copies the health fields for /healthz and /metrics.
func (w *worker) snapshot() WorkerHealth {
	w.mu.Lock()
	v := WorkerHealth{
		Name:          w.name,
		State:         w.state,
		QueueDepth:    w.queueDepth,
		QueueCapacity: w.queueCap,
	}
	w.mu.Unlock()
	v.Breaker = w.br.current()
	return v
}

// live reports whether the worker is dispatch-eligible as far as the health
// registry is concerned (the breaker has its own veto in nextWorker).
func (w *worker) live() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state != workerDead
}

// heartbeatLoop polls one worker until the server closes.
func (s *Server) heartbeatLoop(w *worker) {
	defer s.wg.Done()
	t := time.NewTicker(s.tuning.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		s.heartbeat(w)
	}
}

// heartbeat runs one probe and advances the worker's state machine.
func (s *Server) heartbeat(w *worker) {
	ctx, cancel := context.WithTimeout(s.ctx, s.tuning.HeartbeatTimeout)
	hv, err := w.hb.Health(ctx)
	cancel()

	w.mu.Lock()
	prev := w.state
	if err != nil {
		w.consecFails++
		if w.consecFails >= s.tuning.DeadAfter {
			w.state = workerDead
		} else {
			w.state = workerSuspect
		}
	} else {
		w.consecFails = 0
		if prev == workerDead {
			w.state = workerRecovered
		} else {
			w.state = workerHealthy
		}
		w.queueDepth, w.queueCap, w.hasQueue = hv.QueueDepth, hv.QueueCapacity, true
	}
	cur := w.state
	w.mu.Unlock()

	if err == nil && w.br.isOpen() {
		// A live /healthz is as good as a half-open probe: the worker
		// answers again, so dispatch may resume without waiting for the
		// next cooldown window.
		w.br.recordSuccess()
		s.log.Info("worker breaker closed by live heartbeat", "worker", w.name)
	}
	if cur == prev {
		return
	}
	switch cur {
	case workerSuspect, workerDead:
		s.log.Warn("worker health degraded", "worker", w.name,
			"state", cur, "consecutive_failures", s.consecFailsOf(w), "err", err)
	default:
		s.log.Info("worker rejoined the fleet", "worker", w.name, "state", cur)
	}
}

func (s *Server) consecFailsOf(w *worker) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.consecFails
}

// fleetAdmission is the coordinator's overload control: a campaign is
// admitted only when at least one worker is live and the live workers'
// queues have headroom. Refusals carry a Retry-After derived from the
// fleet's observed drain rate, so shed clients back off by measurement
// instead of by guess.
func (s *Server) fleetAdmission() (retryAfter int, reason string, ok bool) {
	live, depth, capacity, reported := 0, 0, 0, 0
	for _, w := range s.workers {
		w.mu.Lock()
		if w.state != workerDead {
			live++
			if w.hasQueue {
				reported++
				depth += w.queueDepth
				capacity += w.queueCap
			}
		}
		w.mu.Unlock()
	}
	if live == 0 {
		return s.drainRetryAfter(), "no live workers in the fleet; retry later", false
	}
	if reported > 0 && capacity > 0 && depth >= capacity {
		return s.drainRetryAfter(),
			"fleet saturated: every live worker's queue is full; retry later", false
	}
	return 0, "", true
}

// noteJobDone records a job-completion timestamp for the drain-rate
// estimator; the ring keeps the most recent drainKeep completions.
func (s *Server) noteJobDone(at time.Time) {
	s.doneMu.Lock()
	s.doneTimes = append(s.doneTimes, at)
	if len(s.doneTimes) > drainKeep {
		s.doneTimes = s.doneTimes[len(s.doneTimes)-drainKeep:]
	}
	s.doneMu.Unlock()
}

// drainRetryAfter computes the Retry-After hint (seconds) for a shed
// submission from the observed completion rate and the current backlog.
func (s *Server) drainRetryAfter() int {
	s.doneMu.Lock()
	done := make([]time.Time, len(s.doneTimes))
	copy(done, s.doneTimes)
	s.doneMu.Unlock()
	return drainEstimate(done, len(s.queue), time.Now())
}

// Drain-estimator windowing: completions older than drainWindow no longer
// inform the rate, the ring keeps at most drainKeep samples, and the hint is
// clamped to drainMaxHint so one slow campaign cannot steer clients away for
// hours.
const (
	drainWindow  = 60 * time.Second
	drainKeep    = 32
	drainMaxHint = 60
)

// drainEstimate turns recent job-completion times (ascending) and the
// current queue depth into a Retry-After hint: the mean inter-completion gap
// over the window, times the jobs ahead of the next submission, rounded up.
// With fewer than two recent completions there is no rate to measure and the
// static retryAfterFull fallback applies.
func drainEstimate(done []time.Time, queueDepth int, now time.Time) int {
	recent := done[:0:0]
	for _, at := range done {
		if now.Sub(at) <= drainWindow {
			recent = append(recent, at)
		}
	}
	if len(recent) < 2 {
		return retryAfterFull
	}
	span := recent[len(recent)-1].Sub(recent[0]).Seconds()
	if span <= 0 {
		return retryAfterFull
	}
	perJob := span / float64(len(recent)-1)
	est := int(math.Ceil(perJob * float64(queueDepth+1)))
	if est < 1 {
		est = 1
	}
	if est > drainMaxHint {
		est = drainMaxHint
	}
	return est
}
