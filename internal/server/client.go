package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"corona/internal/core"
)

// Client is a corona-serve API client with the retry discipline the daemon's
// backpressure is designed for: a 503 (queue full, shutting down) is retried
// with jittered exponential backoff, honoring the server's Retry-After hint
// as a floor, while 4xx responses — the caller's mistake — surface
// immediately. Transient transport failures (connection refused or reset, a
// dropped response — the signature of a worker daemon restarting) retry
// under the same envelope; only a canceled or expired context aborts
// immediately. A retried request may reach a daemon that already accepted
// the previous attempt (the response was lost, not the request), so a
// submit retry can duplicate a job — harmless under deterministic seeding,
// but worth knowing when counting jobs. The jitter is deterministic in the
// client's seed, so tests (and reproductions of production retry storms)
// replay exactly.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	baseDly time.Duration
	maxDly  time.Duration
	seed    uint64
	sleep   func(ctx context.Context, d time.Duration) error
}

// ClientOption configures a NewClient call.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying http.Client (default
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) ClientOption { return func(c *Client) { c.hc = hc } }

// WithRetries bounds how many times a 503 is retried before giving up
// (default 5; 0 disables retrying).
func WithRetries(n int) ClientOption { return func(c *Client) { c.retries = n } }

// WithBackoff sets the exponential backoff envelope: attempt k waits a
// jittered min(max, base<<k). Defaults: 250ms base, 10s max.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) { c.baseDly, c.maxDly = base, max }
}

// WithRetrySeed seeds the jitter sequence; the same seed replays the same
// delays. Default 1.
func WithRetrySeed(seed uint64) ClientOption { return func(c *Client) { c.seed = seed } }

// withSleep substitutes the delay primitive so tests observe backoff
// decisions without waiting them out.
func withSleep(f func(context.Context, time.Duration) error) ClientOption {
	return func(c *Client) { c.sleep = f }
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8047").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:    baseURL,
		hc:      http.DefaultClient,
		retries: 5,
		baseDly: 250 * time.Millisecond,
		maxDly:  10 * time.Second,
		seed:    1,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.sleep == nil {
		c.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return c
}

// BaseURL returns the daemon address this client targets.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response that was not retried away: the status code
// plus the server's error message.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

// splitmix64 is the same deterministic mixer the fault injector uses; here
// it derives per-attempt jitter from (seed, attempt).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// backoff computes the delay before retry `attempt` (0-based): an
// exponential envelope min(maxDly, baseDly<<attempt), jittered into
// [50%, 100%) so a fleet of clients rejected together does not return
// together, then floored at the server's Retry-After hint.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.baseDly << attempt
	if d <= 0 || d > c.maxDly {
		d = c.maxDly
	}
	frac := float64(splitmix64(c.seed^uint64(attempt))>>11) / float64(1<<53)
	d = time.Duration(float64(d) * (0.5 + 0.5*frac))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// retryAfter parses the response's Retry-After header (seconds form), 0 when
// absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do issues one request, retrying 503s and transient transport errors with
// backoff. body may be nil; it is re-sent from the buffer on every attempt.
// The caller owns the returned response body.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			// A transport-level failure — connection refused, reset, the
			// daemon restarting mid-handshake — is retried like a 503; a
			// dead context is the caller's signal and never is.
			if attempt >= c.retries || !transientError(err) {
				return nil, err
			}
			if err := c.sleep(ctx, c.backoff(attempt, 0)); err != nil {
				return nil, err
			}
			continue
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt >= c.retries {
			return resp, nil
		}
		hint := retryAfter(resp)
		resp.Body.Close()
		if err := c.sleep(ctx, c.backoff(attempt, hint)); err != nil {
			return nil, err
		}
	}
}

// transientError reports whether a Do failure is worth retrying: everything
// the transport can throw (refused, reset, EOF, a dropped connection) except
// a canceled or expired context, which reflects the caller's deadline, not
// the server's health.
func transientError(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// decode reads the response, mapping non-2xx to *APIError and 2xx JSON into
// out (when non-nil).
func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(raw, &e) != nil || e.Error == "" {
			e.Error = string(bytes.TrimSpace(raw))
		}
		return &APIError{Status: resp.StatusCode, Message: e.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a scenario (the corona-sweep -config JSON, plus the optional
// "timeout" field) and returns the accepted job, retrying queue-full 503s.
func (c *Client) Submit(ctx context.Context, scenario []byte) (JobView, error) {
	var v JobView
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", scenario)
	if err != nil {
		return v, err
	}
	return v, decode(resp, &v)
}

// Health fetches /healthz. It is the probe behind the fleet coordinator's
// worker heartbeats: the returned queue depth and capacity feed admission
// accounting, and on a coordinator the view carries per-worker health rows.
func (c *Client) Health(ctx context.Context) (HealthView, error) {
	var v HealthView
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return v, err
	}
	return v, decode(resp, &v)
}

// Status fetches the job's current view.
func (c *Client) Status(ctx context.Context, id string) (JobView, error) {
	var v JobView
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return v, err
	}
	return v, decode(resp, &v)
}

// Cancel asks the daemon to stop the job.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	var v JobView
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return v, err
	}
	return v, decode(resp, &v)
}

// Stream follows the job's NDJSON results live, invoking fn for each cell as
// the daemon emits it, until the stream ends (the job reached a terminal
// state, or the connection broke — the returned error distinguishes the
// two), ctx is done, or fn returns an error (returned as-is). It is the
// incremental form of Results a fleet coordinator merges shards through:
// cells already received stay received even when the stream dies mid-job.
// Note the stream itself is never transparently re-dialed — a broken stream
// returns an error so the caller can decide what is missing.
func (c *Client) Stream(ctx context.Context, id string, fn func(core.CellResult) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/results", nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decode(resp, nil)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var cell core.CellResult
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			return fmt.Errorf("server: bad NDJSON line: %w", err)
		}
		if err := fn(cell); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Results streams the job's NDJSON results to completion and returns every
// cell, following the job live until it reaches a terminal state.
func (c *Client) Results(ctx context.Context, id string) ([]core.CellResult, error) {
	var cells []core.CellResult
	err := c.Stream(ctx, id, func(cell core.CellResult) error {
		cells = append(cells, cell)
		return nil
	})
	return cells, err
}

// Wait polls the job until it reaches a terminal state and returns the final
// view. A job that ends anywhere but "done" is also reported as an *APIError
// wrapping its status and error detail, so callers can treat "completed
// successfully" as the nil-error path.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobView, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		v, err := c.Status(ctx, id)
		if err != nil {
			return v, err
		}
		switch v.Status {
		case statusDone:
			return v, nil
		case statusFailed, statusCanceled, statusTimedOut:
			return v, &APIError{Status: http.StatusOK,
				Message: fmt.Sprintf("job %s ended %s: %s", id, v.Status, v.Error)}
		}
		if err := c.sleep(ctx, poll); err != nil {
			return v, err
		}
	}
}
