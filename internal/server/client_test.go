package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// recordedSleeps swaps the client's delay primitive for a recorder, so
// backoff decisions are observable without waiting them out.
func recordedSleeps(delays *[]time.Duration) ClientOption {
	return withSleep(func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	})
}

// TestClientRetries503HonoringRetryAfter bounces the first two submissions
// with 503 + Retry-After and accepts the third: the client must succeed,
// having backed off twice with at least the server's hint.
func TestClientRetries503HonoringRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id": "job-000001", "status": "queued", "total": 2}`))
	}))
	defer ts.Close()
	var delays []time.Duration
	c := NewClient(ts.URL, recordedSleeps(&delays))
	v, err := c.Submit(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "job-000001" || calls.Load() != 3 {
		t.Fatalf("view %+v after %d calls", v, calls.Load())
	}
	if len(delays) != 2 {
		t.Fatalf("backed off %d times, want 2", len(delays))
	}
	for i, d := range delays {
		if d < 3*time.Second {
			t.Errorf("delay %d = %v, want >= the 3s Retry-After floor", i, d)
		}
	}
}

// TestClientBackoffDeterministicJitter pins the jitter contract: delays grow
// with the exponential envelope, stay within [50%, 100%] of it, and replay
// exactly for a given seed.
func TestClientBackoffDeterministicJitter(t *testing.T) {
	a := NewClient("http://x", WithRetrySeed(9), WithBackoff(100*time.Millisecond, 2*time.Second))
	b := NewClient("http://x", WithRetrySeed(9), WithBackoff(100*time.Millisecond, 2*time.Second))
	for attempt := 0; attempt < 8; attempt++ {
		da, db := a.backoff(attempt, 0), b.backoff(attempt, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
		env := 100 * time.Millisecond << attempt
		if env <= 0 || env > 2*time.Second {
			env = 2 * time.Second
		}
		if da < env/2 || da > env {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, da, env/2, env)
		}
	}
	// And Retry-After floors whatever the envelope said.
	if d := a.backoff(0, 7*time.Second); d != 7*time.Second {
		t.Errorf("floored delay = %v, want 7s", d)
	}
}

// TestClientSurfaces4xxImmediately asserts a 400 is the caller's problem —
// no retries, an *APIError with the server's message.
func TestClientSurfaces4xxImmediately(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, "scenario: no configs")
	}))
	defer ts.Close()
	var delays []time.Duration
	c := NewClient(ts.URL, recordedSleeps(&delays))
	_, err := c.Submit(context.Background(), []byte(`{}`))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Message != "scenario: no configs" {
		t.Fatalf("Submit = %v, want the 400 APIError", err)
	}
	if calls.Load() != 1 || len(delays) != 0 {
		t.Fatalf("%d calls, %d backoffs; want one call, no retries", calls.Load(), len(delays))
	}
}

// TestClientRetriesExhaust gives up after the configured retry budget with
// the final 503 surfaced.
func TestClientRetriesExhaust(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		writeUnavailable(w, 1, "job queue full; retry later")
	}))
	defer ts.Close()
	var delays []time.Duration
	c := NewClient(ts.URL, WithRetries(3), recordedSleeps(&delays))
	_, err := c.Submit(context.Background(), []byte(`{}`))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("Submit = %v, want the exhausted 503", err)
	}
	if calls.Load() != 4 || len(delays) != 3 {
		t.Fatalf("%d calls, %d backoffs; want 4 and 3", calls.Load(), len(delays))
	}
}

// droppingListener closes the first drop accepted connections before any
// byte is served — the transport signature of a daemon restarting (the port
// answers, the process is not there yet) — then hands connections through.
type droppingListener struct {
	net.Listener
	drop int32
}

func (l *droppingListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if atomic.AddInt32(&l.drop, -1) >= 0 {
			conn.Close()
			continue
		}
		return conn, nil
	}
}

// TestClientRetriesTransportErrors drops the first three connections on the
// floor: the client must back off and land the request on the fourth, since
// a fleet coordinator's worker restarting mid-campaign looks exactly like
// this.
func TestClientRetriesTransportErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id": "job-000001", "status": "queued", "total": 2}`))
	})}
	go hs.Serve(&droppingListener{Listener: ln, drop: 3})
	defer hs.Close()

	var delays []time.Duration
	// Connection reuse off: a kept-alive connection would dodge the dropped
	// accepts this test exists to exercise.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	c := NewClient("http://"+ln.Addr().String(), WithHTTPClient(hc), recordedSleeps(&delays))
	v, err := c.Submit(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatalf("Submit through 3 dropped connections: %v", err)
	}
	if v.ID != "job-000001" || calls.Load() != 1 {
		t.Fatalf("view %+v after %d served calls", v, calls.Load())
	}
	if len(delays) != 3 {
		t.Fatalf("backed off %d times, want 3", len(delays))
	}
}

// TestClientTransportRetriesExhaust points the client at a port nothing
// listens on: every attempt fails at the transport, the retry budget drains,
// and the final connection error surfaces (not an APIError — there was no
// HTTP exchange to report).
func TestClientTransportRetriesExhaust(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // now connections are refused

	var delays []time.Duration
	c := NewClient("http://"+addr, WithRetries(2), recordedSleeps(&delays))
	_, err = c.Submit(context.Background(), []byte(`{}`))
	if err == nil {
		t.Fatal("Submit against a closed port succeeded")
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("transport failure surfaced as APIError %v", ae)
	}
	if len(delays) != 2 {
		t.Fatalf("backed off %d times, want the full budget of 2", len(delays))
	}
}

// TestClientDoesNotRetryCanceledContext pins the exception: a dead context
// aborts immediately, no matter how transient the transport failure looks.
func TestClientDoesNotRetryCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var delays []time.Duration
	c := NewClient("http://127.0.0.1:0", recordedSleeps(&delays))
	if _, err := c.Submit(ctx, []byte(`{}`)); err == nil {
		t.Fatal("Submit with a canceled context succeeded")
	}
	if len(delays) != 0 {
		t.Fatalf("backed off %d times on a canceled context, want 0", len(delays))
	}
}

// TestClientEndToEnd drives a real daemon through the client: submit, wait,
// stream results, and cancel-of-unknown as the error path.
func TestClientEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	c := NewClient(ts.URL)
	ctx := context.Background()
	v, err := c.Submit(ctx, []byte(tinyScenario))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, v.ID, 5*time.Millisecond)
	if err != nil || final.Status != statusDone {
		t.Fatalf("Wait = %+v, %v", final, err)
	}
	cells, err := c.Results(ctx, v.ID)
	if err != nil || len(cells) != 2 {
		t.Fatalf("Results = %d cells, %v; want 2", len(cells), err)
	}
	for _, cell := range cells {
		if cell.Result.Cycles == 0 {
			t.Errorf("streamed cell %+v has no result", cell)
		}
	}
	if _, err := c.Status(ctx, "job-999999"); err == nil {
		t.Error("Status of an unknown job did not error")
	}
	if _, err := c.Cancel(ctx, "job-999999"); err == nil {
		t.Error("Cancel of an unknown job did not error")
	}
}
