package server

// Per-worker circuit breaking: the coordinator wraps every worker's dispatch
// client in a breaker so a peer that fails repeatedly at the transport (or
// answers 5xx) stops receiving shards immediately instead of burning one
// shard-attempt per failure. The breaker is deliberately independent of the
// heartbeat health registry (health.go): heartbeats catch a worker that is
// *down*, the breaker catches one that is *broken* — accepting connections
// but failing sub-jobs — which a liveness probe cannot see.

import (
	"errors"
	"sync"
	"time"
)

// breaker states. Closed passes everything; open refuses dispatch until the
// cooldown elapses; half-open admits a single probe whose outcome decides
// between closing and re-opening.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// breaker is a consecutive-failure circuit breaker. All methods take the
// observation time explicitly so the state machine is unit-testable without
// sleeping.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open -> half-open probe delay

	mu    sync.Mutex
	state int
	fails int       // consecutive recorded failures while closed
	since time.Time // opened at (open) / probe started (half-open)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a dispatch may go to this worker now. An open
// breaker whose cooldown has elapsed transitions to half-open and admits the
// caller as the probe; while a probe is outstanding every other caller is
// refused, but a probe that never reports back (its campaign was canceled
// mid-flight) is replaced after another cooldown rather than wedging the
// worker out of the fleet forever.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(b.since) < b.cooldown {
			return false
		}
		b.state = brHalfOpen
		b.since = now
		return true
	default: // brHalfOpen
		if now.Sub(b.since) < b.cooldown {
			return false
		}
		b.since = now
		return true
	}
}

// recordFailure counts one breaker-worthy dispatch failure: the threshold-th
// consecutive failure opens the breaker, and a failed half-open probe
// re-opens it immediately.
func (b *breaker) recordFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brHalfOpen {
		b.state = brOpen
		b.since = now
		return
	}
	b.fails++
	if b.state == brClosed && b.fails >= b.threshold {
		b.state = brOpen
		b.since = now
	}
}

// recordSuccess closes the breaker from any state and resets the failure
// streak — one delivered sub-job (or, on the health path, one live
// heartbeat) is proof the worker serves again.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	b.state = brClosed
	b.fails = 0
	b.mu.Unlock()
}

// isOpen reports whether the breaker currently restricts dispatch (open or
// half-open), without the transition side effects of allow.
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != brClosed
}

// current names the state for /healthz and /metrics.
func (b *breaker) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breakerWorthy reports whether a dispatch failure indicts the worker: a
// transport-level error (refused, reset, a dropped response) or a 5xx
// answer. A context cancellation is the campaign's own signal and a 4xx is
// the coordinator's own mistake; neither says anything about worker health.
func breakerWorthy(err error) bool {
	if err == nil || !transientError(err) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return true
}
