package server

// GET /metrics: a hand-rolled Prometheus text-format (version 0.0.4) export
// of the daemon's operational surface — no client library, because the
// whole format is "# HELP / # TYPE / name{labels} value" lines and a
// dependency would outweigh it. Everything /healthz reports is here in
// scrapeable form, plus throughput (a cells/sec gauge computed over a short
// window of recent scrapes) and, on a coordinator, the fleet dispatch and
// retry counters.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// scrapeSample is one (when, cellsDone) observation; the server keeps a
// short ring of them so corona_cells_per_second reflects recent throughput
// rather than a lifetime average diluted by idle hours.
type scrapeSample struct {
	at    time.Time
	cells uint64
}

// scrape windowing: samples older than rateWindow no longer inform the
// cells/sec gauge, and the ring never grows past scrapeKeep entries.
const (
	rateWindow = 60 * time.Second
	scrapeKeep = 32
)

// cellRate records a scrape observation and returns cells completed per
// second over the retained window: the delta against the oldest in-window
// sample. The first scrape (nothing to diff against) reports zero.
func (s *Server) cellRate(now time.Time, cells uint64) float64 {
	s.mxMu.Lock()
	defer s.mxMu.Unlock()
	keep := s.mxScrape[:0]
	for _, smp := range s.mxScrape {
		if now.Sub(smp.at) <= rateWindow {
			keep = append(keep, smp)
		}
	}
	s.mxScrape = keep
	var rate float64
	if len(s.mxScrape) > 0 {
		oldest := s.mxScrape[0]
		if dt := now.Sub(oldest.at).Seconds(); dt > 0 && cells >= oldest.cells {
			rate = float64(cells-oldest.cells) / dt
		}
	}
	s.mxScrape = append(s.mxScrape, scrapeSample{at: now, cells: cells})
	if len(s.mxScrape) > scrapeKeep {
		s.mxScrape = s.mxScrape[len(s.mxScrape)-scrapeKeep:]
	}
	return rate
}

// metricsView is the point-in-time state a scrape renders: counts by job
// status plus the queue and store signals /healthz also reports.
type metricsView struct {
	byStatus map[string]int
	queued   int
	capacity int
	storeOK  float64 // 1 healthy, 0 wedged; absent when no store
	hasStore bool
}

func (s *Server) metricsSnapshot() metricsView {
	v := metricsView{byStatus: make(map[string]int), capacity: s.depth}
	s.mu.Lock()
	v.queued = len(s.queue)
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		v.byStatus[j.status]++
		j.mu.Unlock()
	}
	if s.st != nil {
		v.hasStore = true
		if s.st.Err() == nil {
			v.storeOK = 1
		}
	}
	return v
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	cells := s.cellsDone.Load()
	rate := s.cellRate(now, cells)
	v := s.metricsSnapshot()

	var b strings.Builder
	gauge := func(name, help string, value float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		fmt.Fprintf(&b, "%s %g\n", name, value)
	}
	counter := func(name, help string, value float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(&b, "%s %g\n", name, value)
	}

	fmt.Fprintf(&b, "# HELP corona_jobs Jobs in the registry by lifecycle status.\n# TYPE corona_jobs gauge\n")
	for _, st := range []string{statusQueued, statusResuming, statusRunning,
		statusDone, statusFailed, statusCanceled, statusTimedOut} {
		fmt.Fprintf(&b, "corona_jobs{status=%q} %d\n", st, v.byStatus[st])
	}
	gauge("corona_queue_depth", "Jobs waiting in the admission queue.", float64(v.queued))
	gauge("corona_queue_capacity", "Admission queue bound; depth at capacity means 503s.", float64(v.capacity))
	counter("corona_cells_completed_total", "Sweep cells completed (or restored from the journal) since start.", float64(cells))
	gauge("corona_cells_per_second", "Cell completion rate over the recent scrape window.", rate)
	if v.hasStore {
		gauge("corona_store_healthy", "1 while the journal store accepts appends, 0 once wedged.", v.storeOK)
	}
	gauge("corona_uptime_seconds", "Seconds since the daemon started.", now.Sub(s.started).Seconds())

	if len(s.workers) > 0 {
		gauge("corona_fleet_workers", "Worker daemons this coordinator dispatches shards to.", float64(len(s.workers)))
		dispatched, retries, specs := s.fleet.snapshot()
		// Sorted worker order keeps scrapes byte-stable across restarts.
		byName := make(map[string]WorkerHealth, len(s.workers))
		names := make([]string, 0, len(s.workers))
		for _, wk := range s.workers {
			byName[wk.name] = wk.snapshot()
			names = append(names, wk.name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "# HELP corona_fleet_shards_dispatched_total Shard sub-jobs dispatched, by worker.\n# TYPE corona_fleet_shards_dispatched_total counter\n")
		for _, wk := range names {
			fmt.Fprintf(&b, "corona_fleet_shards_dispatched_total{worker=%q} %d\n", wk, dispatched[wk])
		}
		fmt.Fprintf(&b, "# HELP corona_fleet_worker_healthy 1 while the health registry considers the worker dispatchable (healthy or recovered), 0 when suspect or dead.\n# TYPE corona_fleet_worker_healthy gauge\n")
		for _, wk := range names {
			up := 0
			if st := byName[wk].State; st == workerHealthy || st == workerRecovered {
				up = 1
			}
			fmt.Fprintf(&b, "corona_fleet_worker_healthy{worker=%q} %d\n", wk, up)
		}
		fmt.Fprintf(&b, "# HELP corona_fleet_breaker_open 1 while the worker's circuit breaker restricts dispatch (open or half-open), 0 when closed.\n# TYPE corona_fleet_breaker_open gauge\n")
		for _, wk := range names {
			open := 0
			if byName[wk].Breaker != "closed" {
				open = 1
			}
			fmt.Fprintf(&b, "corona_fleet_breaker_open{worker=%q} %d\n", wk, open)
		}
		counter("corona_fleet_shard_retries_total", "Shard dispatches beyond the first attempt (worker failures ridden out).", float64(retries))
		counter("corona_fleet_speculations_total", "Straggler speculations: undelivered shard cells re-dispatched to a faster worker.", float64(specs))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
