package server

// The fleet-chaos suite: drives coordinator↔worker links through the
// network-layer faults (partition, latency, drip, reset — see
// faultinject.ChaosProxy) and the availability layer through its state
// machines, always pinning the same oracle: the merged NDJSON stream stays
// byte-identical to an uninterrupted single-node run and no cell is ever
// emitted twice. CI runs it under -race with CORONA_CHAOS=1, which widens
// the probabilistic storms (see .github/workflows/ci.yml).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
)

// chaosFleet starts n workers — those listed in proxied reached through a
// ChaosProxy — plus a coordinator with the given tuning, all torn down with
// the test.
func chaosFleet(t *testing.T, n int, proxied []int, popts faultinject.ProxyOptions,
	tuning FleetTuning) (*Server, *httptest.Server, []*httptest.Server) {
	t.Helper()
	var workers []*httptest.Server
	var peers []*Client
	for i := 0; i < n; i++ {
		_, wts := newTestServer(t, Options{})
		workers = append(workers, wts)
		url := wts.URL
		if slices.Contains(proxied, i) {
			p, err := faultinject.NewProxy(strings.TrimPrefix(wts.URL, "http://"), popts)
			if err != nil {
				t.Fatalf("chaos proxy: %v", err)
			}
			t.Cleanup(p.Close)
			url = p.URL()
		}
		peers = append(peers, fastPeer(url))
	}
	s, ts := newTestServer(t, Options{Peers: peers, Tuning: tuning})
	return s, ts, workers
}

// singleNodeReference runs the scenario on a plain daemon and returns its
// canonical (index-sorted) NDJSON lines.
func singleNodeReference(t *testing.T, scenario string) []string {
	t.Helper()
	_, single := newTestServer(t, Options{})
	ref, resp := postScenario(t, single, scenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single-node submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, single, ref.ID, statusDone)
	return sortedNDJSON(t, single, ref.ID)
}

// coordHealth fetches a coordinator's /healthz and returns the decoded view.
func coordHealth(t *testing.T, ts *httptest.Server) HealthView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var v HealthView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return v
}

// waitWorkerState polls /healthz until the named worker reaches one of the
// wanted states.
func waitWorkerState(t *testing.T, ts *httptest.Server, worker string, want ...string) WorkerHealth {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		for _, w := range coordHealth(t, ts).Workers {
			if w.Name == worker && slices.Contains(want, w.State) {
				return w
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never reached %v; healthz: %+v",
				worker, want, coordHealth(t, ts).Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetMergeDuplicateCellDelivery pins first-result-wins inside
// fleetMerge: the same index delivered twice — the speculation race — emits
// exactly once, keeping the first arrival's bytes, at any interleaving,
// including a concurrent storm of racing deliverers.
func TestFleetMergeDuplicateCellDelivery(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	cell := func(i int, from string) core.CellResult {
		return core.CellResult{Index: i, Workload: from}
	}
	newMerge := func(order []int) (*fleetMerge, *job) {
		j := &job{id: "job-merge"}
		j.cond = sync.NewCond(&j.mu)
		return &fleetMerge{s: s, j: j, order: order,
			pend: make(map[int]core.CellResult), seen: make(map[int]bool)}, j
	}

	// Several adversarial interleavings: duplicate before release, duplicate
	// after release, duplicate of a parked out-of-order cell.
	for _, deliveries := range [][]core.CellResult{
		{cell(0, "primary"), cell(0, "spec"), cell(1, "primary"), cell(2, "primary"), cell(2, "spec")},
		{cell(2, "primary"), cell(2, "spec"), cell(0, "primary"), cell(1, "spec"), cell(1, "primary")},
		{cell(1, "spec"), cell(0, "spec"), cell(0, "primary"), cell(1, "primary"), cell(2, "primary")},
	} {
		m, j := newMerge([]int{0, 1, 2})
		first := make(map[int]string)
		for _, c := range deliveries {
			accepted := m.add(c)
			_, dup := first[c.Index]
			if dup && accepted {
				t.Fatalf("duplicate index %d (from %s) was accepted", c.Index, c.Workload)
			}
			if !dup && !accepted {
				t.Fatalf("first delivery of index %d (from %s) was rejected", c.Index, c.Workload)
			}
			if !dup {
				first[c.Index] = c.Workload
			}
		}
		if len(j.cells) != 3 {
			t.Fatalf("merge released %d cells, want 3", len(j.cells))
		}
		for i, c := range j.cells {
			if c.Index != i {
				t.Errorf("release order broken: position %d holds index %d", i, c.Index)
			}
			if c.Workload != first[c.Index] {
				t.Errorf("index %d kept %q, want the first arrival %q", c.Index, c.Workload, first[c.Index])
			}
		}
	}

	// Concurrent storm: many racing deliverers, every index still exactly
	// once, ascending. (Which racer wins is scheduling; that exactly one
	// does, and that bytes stay identical either way, is the invariant —
	// deterministic seeding makes racing payloads equal in production.)
	const racers, cells = 8, 50
	order := make([]int, cells)
	for i := range order {
		order[i] = i
	}
	m, j := newMerge(order)
	var wg sync.WaitGroup
	accepts := make([]int, racers)
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < cells; i++ {
				if m.add(cell(i, fmt.Sprintf("racer-%d", r))) {
					accepts[r]++
				}
			}
		}(r)
	}
	wg.Wait()
	total := 0
	for _, n := range accepts {
		total += n
	}
	if total != cells {
		t.Errorf("%d deliveries accepted across racers, want exactly %d", total, cells)
	}
	if len(j.cells) != cells {
		t.Fatalf("storm released %d cells, want %d", len(j.cells), cells)
	}
	for i, c := range j.cells {
		if c.Index != i {
			t.Errorf("storm broke release order at position %d: index %d", i, c.Index)
		}
	}
}

// TestShardBodyTimeoutPropagation pins deadline propagation: a campaign's
// remaining budget rides the sub-job body, replacing the submitted timeout;
// a deadline-free campaign strips the field entirely.
func TestShardBodyTimeoutPropagation(t *testing.T) {
	raw := json.RawMessage(`{"configs": [{"preset": "XBar/OCM"}], "timeout": "10m", "seed": 1}`)
	decode := func(b []byte) map[string]json.RawMessage {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("sub-job body does not parse: %v", err)
		}
		return m
	}

	b, err := shardBody(raw, []int{0}, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var timeout string
	if err := json.Unmarshal(decode(b)["timeout"], &timeout); err != nil {
		t.Fatalf("timeout field: %v", err)
	}
	if timeout != "1.5s" {
		t.Errorf("propagated timeout = %q, want the remaining budget \"1.5s\", not the submitted 10m", timeout)
	}

	b, err = shardBody(raw, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := decode(b)["timeout"]; ok {
		t.Error("deadline-free campaign's sub-job still carries a timeout")
	}
}

// TestCoordinatorShedsWithRetryAfterWhenSaturated is the overload-control
// gate and the Retry-After regression test: with every live worker's queue
// full, the coordinator refuses new campaigns with 503 + a Retry-After
// header, and admits again once the fleet drains.
func TestCoordinatorShedsWithRetryAfterWhenSaturated(t *testing.T) {
	slow := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"], "requests": 2000000, "seed": 1}`
	var workerTS []*httptest.Server
	var peers []*Client
	for i := 0; i < 2; i++ {
		_, wts := newTestServer(t, Options{QueueDepth: 1,
			Client: core.NewClient(core.WithWorkers(1))})
		workerTS = append(workerTS, wts)
		peers = append(peers, fastPeer(wts.URL))
	}
	_, coord := newTestServer(t, Options{Peers: peers,
		Tuning: FleetTuning{HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout: 2 * time.Second}})

	// Saturate both workers directly: one slow job running, one filling the
	// single queue slot.
	var running, queued []JobView
	for _, wts := range workerTS {
		r, resp := postScenario(t, wts, slow)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("saturating submit: HTTP %d", resp.StatusCode)
		}
		waitStatus(t, wts, r.ID, statusRunning)
		q, resp := postScenario(t, wts, slow)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue-filling submit: HTTP %d", resp.StatusCode)
		}
		running, queued = append(running, r), append(queued, q)
	}
	// Wait until heartbeats have reported the saturation to the coordinator.
	deadline := time.Now().Add(15 * time.Second)
	for {
		full := 0
		for _, w := range coordHealth(t, coord).Workers {
			if w.QueueCapacity > 0 && w.QueueDepth >= w.QueueCapacity {
				full++
			}
		}
		if full == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeats never reported saturation: %+v", coordHealth(t, coord).Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(coord.URL+"/v1/jobs", "application/json", strings.NewReader(fleetScenario))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated coordinator answered HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("coordinator 503 lacks the Retry-After header")
	} else if secs, err := time.ParseDuration(ra + "s"); err != nil || secs < time.Second {
		t.Errorf("coordinator Retry-After = %q, want a positive seconds count", ra)
	}

	// Drain the fleet and the coordinator must admit again — recovery, not
	// just refusal.
	for i, wts := range workerTS {
		for _, v := range []JobView{running[i], queued[i]} {
			req, _ := http.NewRequest(http.MethodDelete, wts.URL+"/v1/jobs/"+v.ID, nil)
			if dresp, err := http.DefaultClient.Do(req); err == nil {
				dresp.Body.Close()
			}
		}
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		v, resp := postScenario(t, coord, fleetScenario)
		if resp.StatusCode == http.StatusAccepted {
			waitStatus(t, coord, v.ID, statusDone)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained coordinator still sheds: HTTP %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWorkerHealthLifecycle drives the full heartbeat state machine over a
// real partition: healthy → suspect → dead while the link refuses
// connections, dead workers visible in /healthz and /metrics, then
// recovered → healthy when the partition heals — and a campaign submitted
// against the healed fleet still merges byte-identical.
func TestWorkerHealthLifecycle(t *testing.T) {
	want := singleNodeReference(t, fleetScenario)
	defer faultinject.Disarm()
	s, coord, _ := chaosFleet(t, 2, []int{0}, faultinject.ProxyOptions{}, FleetTuning{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		DeadAfter:         3,
	})
	proxiedName := s.workers[0].name

	if err := faultinject.Arm("faultinject.proxy.accept:error:p=1:seed=1"); err != nil {
		t.Fatal(err)
	}
	dead := waitWorkerState(t, coord, proxiedName, workerDead)
	if dead.State != workerDead {
		t.Fatalf("partitioned worker state = %s, want dead", dead.State)
	}
	mx := scrapeMetrics(t, coord)
	if !strings.Contains(mx, fmt.Sprintf("corona_fleet_worker_healthy{worker=%q} 0", proxiedName)) {
		t.Error("/metrics does not report the dead worker as unhealthy")
	}
	if !strings.Contains(mx, fmt.Sprintf("corona_fleet_worker_healthy{worker=%q} 1", s.workers[1].name)) {
		t.Error("/metrics does not report the surviving worker as healthy")
	}

	// Heal the partition: the worker must rejoin on its own.
	faultinject.Disarm()
	waitWorkerState(t, coord, proxiedName, workerRecovered, workerHealthy)
	waitWorkerState(t, coord, proxiedName, workerHealthy)

	v, resp := postScenario(t, coord, fleetScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-heal submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, coord, v.ID, statusDone)
	if got := sortedNDJSON(t, coord, v.ID); !slices.Equal(got, want) {
		t.Error("merged NDJSON after partition-and-heal differs from a single-node run")
	}
}

// TestBreakerOpensAndRecloses is the breaker integration gate: persistent
// dispatch failures to one worker open its breaker (visible in /healthz and
// /metrics) and route its shards to the healthy peer; after the fault clears
// and the cooldown elapses, the half-open probe of the next campaign closes
// it. Heartbeats are effectively disabled so the breaker — not the health
// registry — is what heals.
func TestBreakerOpensAndRecloses(t *testing.T) {
	want := singleNodeReference(t, fleetScenario)
	defer faultinject.Disarm()
	s, coord, _ := chaosFleet(t, 2, []int{0}, faultinject.ProxyOptions{}, FleetTuning{
		HeartbeatInterval: time.Hour, // isolate the breaker from the health path
		BreakerThreshold:  1,
		BreakerCooldown:   300 * time.Millisecond,
	})
	proxiedName := s.workers[0].name

	if err := faultinject.Arm("faultinject.proxy.accept:error:p=1:seed=1"); err != nil {
		t.Fatal(err)
	}
	v, resp := postScenario(t, coord, fleetScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, coord, v.ID, statusDone)
	if got := sortedNDJSON(t, coord, v.ID); !slices.Equal(got, want) {
		t.Error("merged NDJSON with a breaker-open worker differs from a single-node run")
	}
	var breakerState string
	for _, w := range coordHealth(t, coord).Workers {
		if w.Name == proxiedName {
			breakerState = w.Breaker
		}
	}
	if breakerState != "open" {
		t.Fatalf("partitioned worker breaker = %q, want open", breakerState)
	}
	if !strings.Contains(scrapeMetrics(t, coord),
		fmt.Sprintf("corona_fleet_breaker_open{worker=%q} 1", proxiedName)) {
		t.Error("/metrics does not report the open breaker")
	}

	// Fault gone, cooldown elapsed: the next campaign's dispatch is the
	// half-open probe, and its success must close the breaker.
	faultinject.Disarm()
	time.Sleep(400 * time.Millisecond)
	v2, resp := postScenario(t, coord, fleetScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, coord, v2.ID, statusDone)
	if got := sortedNDJSON(t, coord, v2.ID); !slices.Equal(got, want) {
		t.Error("merged NDJSON after breaker reclose differs from a single-node run")
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		closed := false
		for _, w := range coordHealth(t, coord).Workers {
			if w.Name == proxiedName && w.Breaker == "closed" {
				closed = true
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never reclosed; healthz: %+v", coordHealth(t, coord).Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetPartitionMidShard cuts a worker's link mid-stream — cells already
// delivered — and requires the coordinator to re-dispatch only the missing
// remainder, merged output byte-identical, no duplicates. With CORONA_CHAOS
// set, a seeded probabilistic reset storm widens the coverage.
func TestFleetPartitionMidShard(t *testing.T) {
	want := singleNodeReference(t, fleetScenario)
	run := func(t *testing.T, spec string) {
		defer faultinject.Disarm()
		_, coord, _ := chaosFleet(t, 3, []int{0}, faultinject.ProxyOptions{}, FleetTuning{
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
		})
		if err := faultinject.Arm(spec); err != nil {
			t.Fatal(err)
		}
		v, resp := postScenario(t, coord, fleetScenario)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", resp.StatusCode)
		}
		waitStatus(t, coord, v.ID, statusDone)
		got := sortedNDJSON(t, coord, v.ID)
		if len(got) != len(want) {
			t.Fatalf("merged stream has %d cells, want %d (duplicate or lost cells)", len(got), len(want))
		}
		if !slices.Equal(got, want) {
			t.Error("merged NDJSON through a resetting link differs from a single-node run")
		}
	}

	// Deterministic one-shot: the 5th relayed chunk resets the connection.
	t.Run("reset@5", func(t *testing.T) { run(t, "faultinject.proxy.chunk:error@5") })
	if os.Getenv("CORONA_CHAOS") == "" {
		return
	}
	// Chaos storm: every chunk through the proxied link resets with seeded
	// probability; panics contained as resets ride along.
	for seed := 1; seed <= 6; seed++ {
		mode := "error"
		if seed%3 == 0 {
			mode = "panic"
		}
		t.Run(fmt.Sprintf("storm/seed=%d", seed), func(t *testing.T) {
			run(t, fmt.Sprintf("faultinject.proxy.chunk:%s:p=0.05:seed=%d", mode, seed))
		})
	}
}

// TestFleetStragglerSpeculation slows one worker's link to a drip and
// requires the speculation monitor to notice the straggling shard, re-issue
// its undelivered cells to a healthy peer, and finish the campaign with the
// merged stream byte-identical — the duplicate-delivery race resolved by
// first-result-wins.
func TestFleetStragglerSpeculation(t *testing.T) {
	want := singleNodeReference(t, fleetScenario)
	defer faultinject.Disarm()
	s, coord, _ := chaosFleet(t, 3, []int{0},
		faultinject.ProxyOptions{DripBytes: 64, DripEvery: 25 * time.Millisecond},
		FleetTuning{
			HeartbeatInterval:   50 * time.Millisecond,
			HeartbeatTimeout:    time.Second,
			SpeculationFactor:   0.5,
			SpeculationAfter:    100 * time.Millisecond,
			SpeculationInterval: 20 * time.Millisecond,
		})
	if err := faultinject.Arm("faultinject.proxy.drip:error:p=1:seed=1"); err != nil {
		t.Fatal(err)
	}
	v, resp := postScenario(t, coord, fleetScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, coord, v.ID, statusDone)
	got := sortedNDJSON(t, coord, v.ID)
	if len(got) != len(want) {
		t.Fatalf("merged stream has %d cells, want %d (the speculation race duplicated or lost cells)",
			len(got), len(want))
	}
	if !slices.Equal(got, want) {
		t.Error("merged NDJSON with a speculated straggler differs from a single-node run")
	}
	if _, _, specs := s.fleet.snapshot(); specs < 1 {
		t.Errorf("speculations = %d, want >= 1 (one worker was dripping at ~2.5 KB/s)", specs)
	}
	if !strings.Contains(scrapeMetrics(t, coord), "corona_fleet_speculations_total") {
		t.Error("/metrics misses corona_fleet_speculations_total")
	}
}
