package server

// Fleet coordination: a Server built with Options.Peers does not simulate
// anything itself. Each submitted campaign's cell matrix is split into
// contiguous index shards — one per worker — and every shard is dispatched
// to a worker daemon as a shard sub-job: the campaign's own scenario body
// with a "cells" selector riding it, executed by the worker through
// core.Subset. Because every cell is independently seeded (core.CellSeed),
// a cell computes the identical Result on any node, so the coordinator can
// merge shard streams back into one index-ordered result stream that is
// byte-identical (after index sort) to a single-node run of the same
// scenario — the property the fleet determinism suite pins.
//
// Failure handling rides the durability substrate: the worker client
// retries 503 backpressure and transient transport errors with backoff, and
// when a shard sub-job still dies — the worker crashed, was restarted, or
// failed the sub-job — the coordinator re-dispatches exactly the cells it
// has not yet received to the next worker in round-robin order, up to a
// bounded number of attempts. Received cells are never re-run, and
// determinism makes retried cells indistinguishable from first-try ones.
// With a Store configured the coordinator journals merged cells like any
// daemon, so a restarted coordinator re-dispatches only the missing ones.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"corona/internal/core"
)

// maxShardAttempts bounds how many sub-job dispatches one shard may consume
// before its campaign fails: enough to walk the whole fleet twice (every
// worker gets a second chance after transient trouble), never fewer than 4
// so tiny fleets still ride out a worker restart.
func (s *Server) maxShardAttempts() int {
	if n := 2 * len(s.peers); n > 4 {
		return n
	}
	return 4
}

// runFleetJob executes one campaign by scattering its cells across the
// worker fleet and merging the shard streams. Its lifecycle mirrors
// runJob's exactly — same states, same journal semantics, same shutdown
// behavior — only the execution engine differs.
func (s *Server) runFleetJob(j *job) {
	defer s.containPanic(j)
	ctx, cancel, from, ok := s.startJob(j)
	if !ok {
		return
	}
	defer cancel()
	j.mu.Lock()
	resumedCells := len(j.restored)
	j.mu.Unlock()
	s.log.Info("fleet job running", "job", j.id, "from", from, "total", j.total,
		"resumed_cells", resumedCells, "fleet", len(s.peers), "timeout", j.timeout)
	started := time.Now()

	var err error
	if needed := s.neededCells(j); len(needed) > 0 {
		err = s.dispatchShards(ctx, j, needed)
	}
	s.finishJob(j, err, started)
}

// neededCells returns, in ascending order, the cell indices the campaign
// still has to produce: its full matrix (or submitted subset) minus the
// cells a resumed job already restored from the journal.
func (s *Server) neededCells(j *job) []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	all := j.subset
	if all == nil {
		total := len(j.scenario.Configs) * len(j.scenario.Workloads)
		all = make([]int, total)
		for i := range all {
			all[i] = i
		}
	}
	needed := make([]int, 0, len(all)-len(j.restored))
	for _, i := range all {
		if !j.restored[i] {
			needed = append(needed, i)
		}
	}
	sort.Ints(needed)
	return needed
}

// dispatchShards splits the needed cells into one contiguous shard per
// worker and runs every shard dispatcher concurrently; the first definitive
// shard failure cancels the rest of the campaign.
func (s *Server) dispatchShards(ctx context.Context, j *job, needed []int) error {
	shards := splitShards(needed, len(s.peers))
	m := &fleetMerge{
		s:     s,
		j:     j,
		order: needed,
		pend:  make(map[int]core.CellResult),
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k := range shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if err := s.runShard(runCtx, j, m, shards[k], k); err != nil {
				errs[k] = err
				cancel()
			}
		}(k)
	}
	wg.Wait()
	// A real failure outranks the cancellations it caused in the sibling
	// shards; with none, the outer context's verdict (deadline, user
	// cancel, shutdown) is the story.
	for _, err := range errs {
		if err != nil && !isCancellation(err) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitShards chunks the (ascending) indices into at most n contiguous,
// near-equal runs — the static sharding a fleet inherits from the sweep
// engine: which worker owns a cell affects wall-clock only, never results.
func splitShards(indices []int, n int) [][]int {
	if n > len(indices) {
		n = len(indices)
	}
	shards := make([][]int, 0, n)
	for k := 0; k < n; k++ {
		lo, hi := k*len(indices)/n, (k+1)*len(indices)/n
		shards = append(shards, indices[lo:hi])
	}
	return shards
}

// runShard drives one shard to completion: dispatch the missing cells to a
// worker as a sub-job, stream its results into the merge, and — when the
// worker dies or the sub-job ends without delivering everything — move the
// remainder to the next worker, round-robin, within the attempt budget.
func (s *Server) runShard(ctx context.Context, j *job, m *fleetMerge, shard []int, k int) error {
	inShard := make(map[int]bool, len(shard))
	for _, i := range shard {
		inShard[i] = true
	}
	got := make(map[int]bool, len(shard))
	wk := k % len(s.peers)
	var lastErr error
	for attempt := 0; len(got) < len(shard); attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt >= s.maxShardAttempts() {
			return fmt.Errorf("shard %d: %d of %d cells undone after %d dispatches: %w",
				k, len(shard)-len(got), len(shard), attempt, lastErr)
		}
		if attempt > 0 {
			s.fleet.noteRetry()
		}
		missing := make([]int, 0, len(shard)-len(got))
		for _, i := range shard {
			if !got[i] {
				missing = append(missing, i)
			}
		}
		peer, name := s.peers[wk], s.peerNames[wk]
		wk = (wk + 1) % len(s.peers)
		body, err := shardBody(j.raw, missing)
		if err != nil {
			return fmt.Errorf("shard %d: building sub-job body: %w", k, err)
		}
		s.fleet.noteDispatch(name)
		sub, err := peer.Submit(ctx, body)
		if err != nil {
			lastErr = fmt.Errorf("worker %s: submit: %w", name, err)
			s.log.Warn("shard dispatch failed", "job", j.id, "shard", k,
				"worker", name, "attempt", attempt+1, "err", err)
			continue
		}
		s.log.Info("shard dispatched", "job", j.id, "shard", k, "worker", name,
			"sub_job", sub.ID, "cells", len(missing), "attempt", attempt+1)
		streamErr := peer.Stream(ctx, sub.ID, func(cell core.CellResult) error {
			if !inShard[cell.Index] || got[cell.Index] {
				return nil
			}
			got[cell.Index] = true
			m.add(cell)
			return nil
		})
		if ctx.Err() != nil {
			// The campaign is over (cancel, deadline, shutdown): stop the
			// worker's sub-job rather than letting it burn cycles.
			stopCtx, stop := context.WithTimeout(context.Background(), 2*time.Second)
			peer.Cancel(stopCtx, sub.ID)
			stop()
			return ctx.Err()
		}
		if streamErr != nil {
			lastErr = fmt.Errorf("worker %s: stream of %s: %w", name, sub.ID, streamErr)
			s.log.Warn("shard stream broke; retrying missing cells", "job", j.id,
				"shard", k, "worker", name, "done", len(got), "of", len(shard), "err", streamErr)
			continue
		}
		if len(got) == len(shard) {
			break
		}
		// The stream ended cleanly but cells are missing: the sub-job failed
		// or was canceled on the worker. Record its verdict and retry.
		if v, verr := peer.Status(ctx, sub.ID); verr != nil {
			lastErr = fmt.Errorf("worker %s: sub-job %s status: %w", name, sub.ID, verr)
		} else {
			lastErr = fmt.Errorf("worker %s: sub-job %s ended %s: %s", name, sub.ID, v.Status, v.Error)
		}
		s.log.Warn("shard sub-job incomplete; retrying missing cells", "job", j.id,
			"shard", k, "worker", name, "done", len(got), "of", len(shard), "err", lastErr)
	}
	return nil
}

// shardBody rewrites the campaign's scenario body into a worker sub-job:
// the same scenario with a "cells" selector for exactly the given indices,
// and no timeout — the coordinator owns the campaign's deadline and
// enforces it by canceling sub-jobs.
func shardBody(raw json.RawMessage, cells []int) ([]byte, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	delete(m, "timeout")
	sel, err := json.Marshal(cellSelector(cells))
	if err != nil {
		return nil, err
	}
	m["cells"] = sel
	return json.Marshal(m)
}

// cellSelector compresses a sorted index list into the range form when it
// is one contiguous run — the common case for a first dispatch; retries of
// a partially-delivered shard fall back to the explicit list.
func cellSelector(cells []int) *cellRange {
	contiguous := len(cells) > 0
	for i := 1; i < len(cells); i++ {
		if cells[i] != cells[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous {
		lo, hi := cells[0], cells[len(cells)-1]+1
		return &cellRange{Lo: &lo, Hi: &hi}
	}
	return &cellRange{List: cells}
}

// fleetMerge reassembles shard streams into the job's cell list in strictly
// ascending index order: a cell arriving out of order parks in pend until
// every lower needed index has been released. Index order makes the
// coordinator's stream deterministic — byte-identical across fleet sizes,
// retry schedules, and completion races — where a single node's stream is
// only deterministic up to reordering.
type fleetMerge struct {
	s     *Server
	j     *job
	mu    sync.Mutex
	order []int // the needed indices, ascending
	next  int   // position in order of the next index to release
	pend  map[int]core.CellResult
}

// add parks the cell and releases the longest now-contiguous prefix to the
// job (observers wake per cell, the journal gets every release). Shard
// dispatchers dedup before calling, so add never sees an index twice.
func (m *fleetMerge) add(cell core.CellResult) {
	m.mu.Lock()
	m.pend[cell.Index] = cell
	var release []core.CellResult
	for m.next < len(m.order) {
		c, ok := m.pend[m.order[m.next]]
		if !ok {
			break
		}
		delete(m.pend, m.order[m.next])
		release = append(release, c)
		m.next++
	}
	m.mu.Unlock()
	for _, c := range release {
		m.j.mu.Lock()
		m.j.cells = append(m.j.cells, c)
		m.j.cond.Broadcast()
		m.j.mu.Unlock()
		m.s.persistCell(m.j.id, c)
		m.s.cellsDone.Add(1)
	}
}

// fleetMetrics counts shard dispatches per worker and shard retries, for
// the coordinator's /metrics export.
type fleetMetrics struct {
	mu         sync.Mutex
	dispatched map[string]uint64
	retries    uint64
}

func (f *fleetMetrics) noteDispatch(worker string) {
	f.mu.Lock()
	if f.dispatched == nil {
		f.dispatched = make(map[string]uint64)
	}
	f.dispatched[worker]++
	f.mu.Unlock()
}

func (f *fleetMetrics) noteRetry() {
	f.mu.Lock()
	f.retries++
	f.mu.Unlock()
}

// snapshot copies the counters for a scrape.
func (f *fleetMetrics) snapshot() (dispatched map[string]uint64, retries uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dispatched = make(map[string]uint64, len(f.dispatched))
	for w, n := range f.dispatched {
		dispatched[w] = n
	}
	return dispatched, f.retries
}
