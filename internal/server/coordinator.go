package server

// Fleet coordination: a Server built with Options.Peers does not simulate
// anything itself. Each submitted campaign's cell matrix is split into
// contiguous index shards — one per worker — and every shard is dispatched
// to a worker daemon as a shard sub-job: the campaign's own scenario body
// with a "cells" selector riding it, executed by the worker through
// core.Subset. Because every cell is independently seeded (core.CellSeed),
// a cell computes the identical Result on any node, so the coordinator can
// merge shard streams back into one index-ordered result stream that is
// byte-identical (after index sort) to a single-node run of the same
// scenario — the property the fleet determinism suite pins.
//
// The availability layer on top of that protocol has four parts:
//
//   - Health registry (health.go): heartbeats classify every worker
//     healthy/suspect/dead/recovered; dead workers are skipped by dispatch
//     and speculation until a heartbeat brings them back.
//   - Circuit breakers (breaker.go): consecutive transport/5xx dispatch
//     failures open a worker's breaker so shards route around a peer that
//     answers the wire but fails sub-jobs; a half-open probe (or a live
//     heartbeat) closes it.
//   - Straggler speculation: a shard delivering cells far below the fleet's
//     median rate gets its undelivered cells speculatively re-dispatched to
//     a healthy peer; first result wins per cell, enforced inside
//     fleetMerge, so a duplicate delivery can never reach the stream.
//   - Deadline propagation: a campaign with a timeout hands every sub-job
//     the remaining budget, so workers abandon orphaned work themselves
//     even if the coordinator dies before canceling it.
//
// Failure handling rides the durability substrate: the worker client
// retries 503 backpressure and transient transport errors with backoff, and
// when a shard sub-job still dies — the worker crashed, was restarted, or
// failed the sub-job — the coordinator re-dispatches exactly the cells it
// has not yet received to the next dispatchable worker, up to a bounded
// number of attempts. Received cells are never re-run, and determinism
// makes retried or speculated cells indistinguishable from first-try ones.
// With a Store configured the coordinator journals merged cells like any
// daemon, so a restarted coordinator re-dispatches only the missing ones.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"corona/internal/core"
)

// maxShardAttempts bounds how many sub-job dispatches one shard may consume
// before its campaign fails: enough to walk the whole fleet twice (every
// worker gets a second chance after transient trouble), never fewer than 4
// so tiny fleets still ride out a worker restart.
func (s *Server) maxShardAttempts() int {
	if n := 2 * len(s.workers); n > 4 {
		return n
	}
	return 4
}

// runFleetJob executes one campaign by scattering its cells across the
// worker fleet and merging the shard streams. Its lifecycle mirrors
// runJob's exactly — same states, same journal semantics, same shutdown
// behavior — only the execution engine differs.
func (s *Server) runFleetJob(j *job) {
	defer s.containPanic(j)
	ctx, cancel, from, ok := s.startJob(j)
	if !ok {
		return
	}
	defer cancel()
	j.mu.Lock()
	resumedCells := len(j.restored)
	j.mu.Unlock()
	s.log.Info("fleet job running", "job", j.id, "from", from, "total", j.total,
		"resumed_cells", resumedCells, "fleet", len(s.workers), "timeout", j.timeout)
	started := time.Now()

	var err error
	if needed := s.neededCells(j); len(needed) > 0 {
		err = s.dispatchShards(ctx, j, needed)
	}
	s.finishJob(j, err, started)
}

// neededCells returns, in ascending order, the cell indices the campaign
// still has to produce: its full matrix (or submitted subset) minus the
// cells a resumed job already restored from the journal.
func (s *Server) neededCells(j *job) []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	all := j.subset
	if all == nil {
		total := len(j.scenario.Configs) * len(j.scenario.Workloads)
		all = make([]int, total)
		for i := range all {
			all[i] = i
		}
	}
	needed := make([]int, 0, len(all)-len(j.restored))
	for _, i := range all {
		if !j.restored[i] {
			needed = append(needed, i)
		}
	}
	sort.Ints(needed)
	return needed
}

// dispatchShards splits the needed cells into one contiguous shard per
// worker and runs every shard dispatcher concurrently, with the straggler
// monitor watching their delivery rates; the first definitive shard failure
// cancels the rest of the campaign.
func (s *Server) dispatchShards(ctx context.Context, j *job, needed []int) error {
	shards := splitShards(needed, len(s.workers))
	m := &fleetMerge{
		s:     s,
		j:     j,
		order: needed,
		pend:  make(map[int]core.CellResult),
		seen:  make(map[int]bool),
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	runs := make([]*shardRun, len(shards))
	for k := range shards {
		runs[k] = newShardRun(runCtx, j, m, k, shards[k])
	}
	// Speculation goroutines outlive individual shard dispatchers, so they
	// get their own WaitGroup, drained only after runCtx is canceled.
	var specWG sync.WaitGroup
	if len(s.workers) > 1 && len(runs) > 1 {
		specWG.Add(1)
		go s.speculationMonitor(runCtx, runs, &specWG)
	}
	errs := make([]error, len(runs))
	var wg sync.WaitGroup
	for k := range runs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if err := s.runShard(runs[k]); err != nil {
				errs[k] = err
				cancel()
			}
		}(k)
	}
	wg.Wait()
	cancel()
	specWG.Wait()
	// A real failure outranks the cancellations it caused in the sibling
	// shards; with none, the outer context's verdict (deadline, user
	// cancel, shutdown) is the story.
	for _, err := range errs {
		if err != nil && !isCancellation(err) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitShards chunks the (ascending) indices into at most n contiguous,
// near-equal runs — the static sharding a fleet inherits from the sweep
// engine: which worker owns a cell affects wall-clock only, never results.
func splitShards(indices []int, n int) [][]int {
	if n > len(indices) {
		n = len(indices)
	}
	shards := make([][]int, 0, n)
	for k := 0; k < n; k++ {
		lo, hi := k*len(indices)/n, (k+1)*len(indices)/n
		shards = append(shards, indices[lo:hi])
	}
	return shards
}

// shardRun is the shared state of one shard's campaign: the primary
// dispatcher (runShard) and any speculative re-dispatch deliver through it,
// it tracks which cells have landed, and its context is canceled the moment
// the last cell arrives so whichever stream is still running stops.
type shardRun struct {
	s     *Server
	j     *job
	m     *fleetMerge
	k     int
	cells []int
	in    map[int]bool

	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	got         map[int]bool
	started     time.Time
	finished    time.Time // zero until the last cell lands
	curWorker   string    // worker the primary dispatcher is streaming from
	speculating bool      // a speculation goroutine is in flight
}

func newShardRun(ctx context.Context, j *job, m *fleetMerge, k int, cells []int) *shardRun {
	in := make(map[int]bool, len(cells))
	for _, i := range cells {
		in[i] = true
	}
	sh := &shardRun{
		s:       m.s,
		j:       j,
		m:       m,
		k:       k,
		cells:   cells,
		in:      in,
		got:     make(map[int]bool, len(cells)),
		started: time.Now(),
	}
	sh.ctx, sh.cancel = context.WithCancel(ctx)
	return sh
}

// deliver accepts one cell from any stream serving this shard — primary or
// speculative — deduplicating within the shard before handing it to the
// merge (which enforces first-result-wins once more, globally). Completing
// the shard cancels its context, stopping whichever stream is still open.
func (sh *shardRun) deliver(cell core.CellResult) {
	sh.mu.Lock()
	if !sh.in[cell.Index] || sh.got[cell.Index] {
		sh.mu.Unlock()
		return
	}
	sh.got[cell.Index] = true
	done := len(sh.got) == len(sh.cells)
	if done {
		sh.finished = time.Now()
	}
	sh.mu.Unlock()
	sh.m.add(cell)
	if done {
		sh.cancel()
	}
}

// complete reports whether every cell of the shard has been delivered.
func (sh *shardRun) complete() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.got) == len(sh.cells)
}

// missing returns the shard cells not yet delivered, ascending.
func (sh *shardRun) missing() []int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	missing := make([]int, 0, len(sh.cells)-len(sh.got))
	for _, i := range sh.cells {
		if !sh.got[i] {
			missing = append(missing, i)
		}
	}
	return missing
}

// rate is the shard's observed delivery rate in cells/sec — over its whole
// life once finished, over the elapsed window while running.
func (sh *shardRun) rate(now time.Time) float64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	end := sh.finished
	if end.IsZero() {
		end = now
	}
	dt := end.Sub(sh.started).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(len(sh.got)) / dt
}

func (sh *shardRun) setWorker(name string) {
	sh.mu.Lock()
	sh.curWorker = name
	sh.mu.Unlock()
}

// claimSpeculation atomically decides whether this shard is a straggler
// right now and, if so, claims the (single) speculation slot. The caller
// must release it with releaseSpeculation when the speculative dispatch
// ends, successful or not.
func (sh *shardRun) claimSpeculation(now time.Time, medianRate float64, t FleetTuning) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.speculating || len(sh.got) == len(sh.cells) {
		return false
	}
	if now.Sub(sh.started) < t.SpeculationAfter {
		return false
	}
	dt := now.Sub(sh.started).Seconds()
	if dt <= 0 {
		return false
	}
	if float64(len(sh.got))/dt >= t.SpeculationFactor*medianRate {
		return false
	}
	sh.speculating = true
	return true
}

func (sh *shardRun) releaseSpeculation() {
	sh.mu.Lock()
	sh.speculating = false
	sh.mu.Unlock()
}

// nextWorker picks the next dispatch target at or after cursor: the first
// worker the health registry calls live whose breaker admits traffic. When
// every worker is dead or breaker-open the plain round-robin choice is
// returned anyway — the client's own backoff paces the desperation, and a
// fleet that is wholly down should fail the campaign through the attempt
// budget, not hang it.
func (s *Server) nextWorker(cursor int) (*worker, int) {
	n := len(s.workers)
	now := time.Now()
	for i := 0; i < n; i++ {
		w := s.workers[(cursor+i)%n]
		if w.live() && w.br.allow(now) {
			return w, (cursor + i + 1) % n
		}
	}
	return s.workers[cursor%n], (cursor + 1) % n
}

// runShard drives one shard to completion: dispatch the missing cells to a
// worker as a sub-job, stream its results into the merge, and — when the
// worker dies or the sub-job ends without delivering everything — move the
// remainder to the next dispatchable worker within the attempt budget.
// Speculative deliveries count: a shard whose straggling sub-job is
// out-raced by a speculation completes here with a canceled stream.
func (s *Server) runShard(sh *shardRun) error {
	j := sh.j
	cursor := sh.k % len(s.workers)
	var lastErr error
	for attempt := 0; !sh.complete(); attempt++ {
		if err := sh.ctx.Err(); err != nil {
			if sh.complete() {
				return nil
			}
			return err
		}
		if attempt >= s.maxShardAttempts() {
			missing := sh.missing()
			return fmt.Errorf("shard %d: %d of %d cells undone after %d dispatches: %w",
				sh.k, len(missing), len(sh.cells), attempt, lastErr)
		}
		if attempt > 0 {
			s.fleet.noteRetry()
		}
		missing := sh.missing()
		var w *worker
		w, cursor = s.nextWorker(cursor)
		sh.setWorker(w.name)
		body, err := shardBody(j.raw, missing, remainingTimeout(sh.ctx))
		if err != nil {
			return fmt.Errorf("shard %d: building sub-job body: %w", sh.k, err)
		}
		s.fleet.noteDispatch(w.name)
		sub, err := w.client.Submit(sh.ctx, body)
		if err != nil {
			if breakerWorthy(err) {
				w.br.recordFailure(time.Now())
			}
			lastErr = fmt.Errorf("worker %s: submit: %w", w.name, err)
			s.log.Warn("shard dispatch failed", "job", j.id, "shard", sh.k,
				"worker", w.name, "attempt", attempt+1, "err", err)
			continue
		}
		s.log.Info("shard dispatched", "job", j.id, "shard", sh.k, "worker", w.name,
			"sub_job", sub.ID, "cells", len(missing), "attempt", attempt+1)
		streamErr := w.client.Stream(sh.ctx, sub.ID, func(cell core.CellResult) error {
			sh.deliver(cell)
			return nil
		})
		if sh.ctx.Err() != nil {
			// The shard is over — complete (possibly via speculation), or the
			// campaign was canceled: stop the worker's sub-job rather than
			// letting it burn cycles.
			stopCtx, stop := context.WithTimeout(context.Background(), 2*time.Second)
			w.client.Cancel(stopCtx, sub.ID)
			stop()
			if sh.complete() {
				w.br.recordSuccess()
				return nil
			}
			return sh.ctx.Err()
		}
		if streamErr != nil {
			if breakerWorthy(streamErr) {
				w.br.recordFailure(time.Now())
			}
			lastErr = fmt.Errorf("worker %s: stream of %s: %w", w.name, sub.ID, streamErr)
			s.log.Warn("shard stream broke; retrying missing cells", "job", j.id,
				"shard", sh.k, "worker", w.name, "done", len(sh.cells)-len(sh.missing()),
				"of", len(sh.cells), "err", streamErr)
			continue
		}
		if sh.complete() {
			w.br.recordSuccess()
			break
		}
		// The stream ended cleanly but cells are missing: the sub-job failed
		// or was canceled on the worker. Record its verdict and retry. The
		// worker answered coherently throughout, so this is not breaker-worthy.
		if v, verr := w.client.Status(sh.ctx, sub.ID); verr != nil {
			lastErr = fmt.Errorf("worker %s: sub-job %s status: %w", w.name, sub.ID, verr)
		} else {
			lastErr = fmt.Errorf("worker %s: sub-job %s ended %s: %s", w.name, sub.ID, v.Status, v.Error)
		}
		s.log.Warn("shard sub-job incomplete; retrying missing cells", "job", j.id,
			"shard", sh.k, "worker", w.name, "done", len(sh.cells)-len(sh.missing()),
			"of", len(sh.cells), "err", lastErr)
	}
	return nil
}

// speculationMonitor watches every shard's delivery rate on a fixed cadence
// and re-dispatches stragglers: a shard old enough to judge whose rate has
// fallen below SpeculationFactor x the fleet median gets its undelivered
// cells sent to another worker. First result wins per cell; determinism
// makes the race unobservable in the merged stream.
func (s *Server) speculationMonitor(ctx context.Context, runs []*shardRun, wg *sync.WaitGroup) {
	defer wg.Done()
	t := time.NewTicker(s.tuning.SpeculationInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		rates := make([]float64, len(runs))
		for i, sh := range runs {
			rates[i] = sh.rate(now)
		}
		med := median(rates)
		if med <= 0 {
			continue
		}
		for _, sh := range runs {
			if sh.claimSpeculation(now, med, s.tuning) {
				wg.Add(1)
				go s.speculate(sh, wg)
			}
		}
	}
}

// median of a rate sample; the input slice is sorted in place.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// speculationTarget picks the worker a straggling shard's cells are
// re-dispatched to: a live worker with a closed breaker, not the one the
// straggler is already streaming from, preferring the shallowest reported
// queue. Nil when no such worker exists — speculation is strictly
// best-effort and never falls back to a degraded peer.
func (s *Server) speculationTarget(exclude string) *worker {
	var best *worker
	bestDepth := int(^uint(0) >> 1)
	for _, w := range s.workers {
		if w.name == exclude || !w.live() || w.br.isOpen() {
			continue
		}
		w.mu.Lock()
		depth := w.queueDepth
		w.mu.Unlock()
		if best == nil || depth < bestDepth {
			best, bestDepth = w, depth
		}
	}
	return best
}

// speculate runs one speculative dispatch for a straggling shard: submit the
// undelivered cells to a healthy peer and stream whatever it produces into
// the shard (first result wins). Any failure just releases the speculation
// slot — the primary dispatcher still owns correctness, so the monitor may
// try again on a later tick.
func (s *Server) speculate(sh *shardRun, wg *sync.WaitGroup) {
	defer wg.Done()
	defer sh.releaseSpeculation()
	missing := sh.missing()
	if len(missing) == 0 {
		return
	}
	sh.mu.Lock()
	exclude := sh.curWorker
	sh.mu.Unlock()
	w := s.speculationTarget(exclude)
	if w == nil {
		return
	}
	body, err := shardBody(sh.j.raw, missing, remainingTimeout(sh.ctx))
	if err != nil {
		return
	}
	s.fleet.noteDispatch(w.name)
	s.fleet.noteSpeculation()
	sub, err := w.client.Submit(sh.ctx, body)
	if err != nil {
		s.log.Warn("speculative dispatch failed", "job", sh.j.id, "shard", sh.k,
			"worker", w.name, "err", err)
		return
	}
	s.log.Info("straggler speculation dispatched", "job", sh.j.id, "shard", sh.k,
		"slow_worker", exclude, "worker", w.name, "sub_job", sub.ID, "cells", len(missing))
	w.client.Stream(sh.ctx, sub.ID, func(cell core.CellResult) error {
		sh.deliver(cell)
		return nil
	})
	// Whether the speculation won, lost, or broke, the sub-job must not
	// outlive it.
	stopCtx, stop := context.WithTimeout(context.Background(), 2*time.Second)
	w.client.Cancel(stopCtx, sub.ID)
	stop()
}

// remainingTimeout converts the run context's deadline into the "timeout"
// value a shard sub-job should carry: the budget left right now, so a
// worker abandons orphaned work on its own schedule even if the coordinator
// never gets to cancel it. Zero (no deadline) omits the field.
func remainingTimeout(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	rem := time.Until(dl).Round(time.Millisecond)
	if rem < time.Millisecond {
		rem = time.Millisecond
	}
	return rem
}

// shardBody rewrites the campaign's scenario body into a worker sub-job:
// the same scenario with a "cells" selector for exactly the given indices,
// and the campaign's remaining deadline budget (or no timeout at all) in
// place of the submitted one — the coordinator owns the campaign deadline;
// the propagated remainder is the worker's backstop.
func shardBody(raw json.RawMessage, cells []int, timeout time.Duration) ([]byte, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	delete(m, "timeout")
	if timeout > 0 {
		tb, err := json.Marshal(timeout.String())
		if err != nil {
			return nil, err
		}
		m["timeout"] = tb
	}
	sel, err := json.Marshal(cellSelector(cells))
	if err != nil {
		return nil, err
	}
	m["cells"] = sel
	return json.Marshal(m)
}

// cellSelector compresses a sorted index list into the range form when it
// is one contiguous run — the common case for a first dispatch; retries of
// a partially-delivered shard fall back to the explicit list.
func cellSelector(cells []int) *cellRange {
	contiguous := len(cells) > 0
	for i := 1; i < len(cells); i++ {
		if cells[i] != cells[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous {
		lo, hi := cells[0], cells[len(cells)-1]+1
		return &cellRange{Lo: &lo, Hi: &hi}
	}
	return &cellRange{List: cells}
}

// fleetMerge reassembles shard streams into the job's cell list in strictly
// ascending index order: a cell arriving out of order parks in pend until
// every lower needed index has been released. Index order makes the
// coordinator's stream deterministic — byte-identical across fleet sizes,
// retry schedules, speculation races, and completion order — where a single
// node's stream is only deterministic up to reordering.
type fleetMerge struct {
	s     *Server
	j     *job
	mu    sync.Mutex
	order []int // the needed indices, ascending
	next  int   // position in order of the next index to release
	pend  map[int]core.CellResult
	seen  map[int]bool // first-result-wins: indices already accepted
}

// add accepts a cell under first-result-wins semantics — the speculation
// race's same-index duplicate is dropped here, authoritatively, whatever
// the shard-level dedup upstream saw — then releases the longest
// now-contiguous prefix to the job (observers wake per cell, the journal
// gets every release exactly once). Reports whether the cell was accepted.
func (m *fleetMerge) add(cell core.CellResult) bool {
	m.mu.Lock()
	if m.seen[cell.Index] {
		m.mu.Unlock()
		return false
	}
	m.seen[cell.Index] = true
	m.pend[cell.Index] = cell
	var release []core.CellResult
	for m.next < len(m.order) {
		c, ok := m.pend[m.order[m.next]]
		if !ok {
			break
		}
		delete(m.pend, m.order[m.next])
		release = append(release, c)
		m.next++
	}
	m.mu.Unlock()
	for _, c := range release {
		m.j.mu.Lock()
		m.j.cells = append(m.j.cells, c)
		m.j.cond.Broadcast()
		m.j.mu.Unlock()
		m.s.persistCell(m.j.id, c)
		m.s.cellsDone.Add(1)
	}
	return true
}

// fleetMetrics counts shard dispatches per worker, shard retries, and
// straggler speculations, for the coordinator's /metrics export.
type fleetMetrics struct {
	mu         sync.Mutex
	dispatched map[string]uint64
	retries    uint64
	specs      uint64
}

func (f *fleetMetrics) noteDispatch(worker string) {
	f.mu.Lock()
	if f.dispatched == nil {
		f.dispatched = make(map[string]uint64)
	}
	f.dispatched[worker]++
	f.mu.Unlock()
}

func (f *fleetMetrics) noteRetry() {
	f.mu.Lock()
	f.retries++
	f.mu.Unlock()
}

func (f *fleetMetrics) noteSpeculation() {
	f.mu.Lock()
	f.specs++
	f.mu.Unlock()
}

// snapshot copies the counters for a scrape.
func (f *fleetMetrics) snapshot() (dispatched map[string]uint64, retries, specs uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dispatched = make(map[string]uint64, len(f.dispatched))
	for w, n := range f.dispatched {
		dispatched[w] = n
	}
	return dispatched, f.retries, f.specs
}
