// Package server implements the corona-serve HTTP/JSON daemon: a small,
// job-oriented API over the core Client that lets remote callers submit
// experiment scenarios, watch their progress, and stream cell results as
// shards finish — the production-facing seam the context-aware engine was
// redesigned for.
//
// Endpoints:
//
//	POST   /v1/jobs              submit a scenario (the corona-sweep -config
//	                             JSON schema, plus an optional "timeout"
//	                             duration); 202 with the job id, 400 on
//	                             invalid input, 503 + Retry-After when the
//	                             queue is full
//	GET    /v1/jobs              list known jobs
//	GET    /v1/jobs/{id}         status and progress
//	GET    /v1/jobs/{id}/results NDJSON stream of completed cells, following
//	                             the job live until it finishes
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/fabrics           the registered interconnect catalog
//	GET    /healthz              liveness, queue depth/capacity, store state
//
// Jobs are admitted into a bounded queue and executed by a fixed set of
// runner goroutines; within one job, cells fan out over the client's worker
// pool, and all jobs share the client's on-disk result cache.
//
// Durability: with Options.Store set, every submission, completed cell, and
// terminal status is appended to the job journal before (or as) it becomes
// observable. A daemon restarted against the same store directory replays
// the journal, restores finished jobs for querying, marks jobs that were
// still in flight "resuming", and re-runs only their missing cells (the
// recorded ones are fed back through core.Precomputed); deterministic
// seeding makes the merged result set byte-identical to an uninterrupted
// run. A graceful Close deliberately does NOT write a terminal status for
// interrupted jobs — that is what lets the next daemon resume them. See
// docs/OPERATIONS.md for the full failure-semantics table.
//
// Failure containment: a panicking cell fails only its own job (the core
// engine converts cell panics to *core.PanicError, and runJob has a second
// barrier), per-job wall-clock deadlines land jobs in "timed_out", and a
// wedged store degrades the daemon to in-memory operation with loud logs
// rather than killing it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
	"corona/internal/noc"
	"corona/internal/store"
)

// Options configures a Server.
type Options struct {
	// Client executes submitted jobs; nil builds a default client
	// (GOMAXPROCS workers, no cache).
	Client *core.Client
	// QueueDepth bounds jobs admitted but not yet finished being picked up;
	// submissions beyond it are rejected with 503. Default 16. Jobs resumed
	// from the Store do not count against it.
	QueueDepth int
	// Runners is how many jobs execute concurrently. Default 1: cells within
	// a job already fan out over the client's worker pool, so more runners
	// trade per-job latency for cross-job fairness.
	Runners int
	// MaxBodyBytes bounds the scenario JSON accepted by POST /v1/jobs.
	// Default 1 MiB.
	MaxBodyBytes int64
	// RetainJobs bounds how many finished jobs (and their accumulated cell
	// results) stay queryable: when a submission would exceed it, the oldest
	// terminal jobs are evicted (and eventually compacted out of the Store).
	// Live jobs are never evicted. Default 256.
	RetainJobs int
	// Store, when non-nil, is the durable job journal: submissions, cells,
	// and terminal statuses are persisted to it, and jobs it reports as
	// interrupted are resumed at startup. The caller owns the store and
	// closes it after Close. Nil runs fully in memory (the pre-durability
	// behavior).
	Store *store.Store
	// Logger receives structured job-lifecycle logs. Nil uses slog.Default().
	Logger *slog.Logger
	// Peers turns the daemon into a fleet coordinator: submitted campaigns
	// are split into contiguous cell shards, dispatched to these worker
	// daemons as shard sub-jobs, merged into one index-ordered stream, and
	// retried on surviving workers when a worker fails. Empty (the default)
	// executes jobs locally through Client.
	Peers []*Client
	// Tuning parameterizes the coordinator's availability layer (heartbeat
	// cadence, breaker thresholds, straggler speculation). Zero fields take
	// the documented defaults; ignored without Peers.
	Tuning FleetTuning
}

// Server owns the job registry, the bounded queue, and the runner pool.
// Create one with New, mount Handler on an http.Server, and Close it on
// shutdown.
type Server struct {
	client  *core.Client
	maxBody int64
	retain  int
	depth   int // configured queue depth (the admission bound)
	st      *store.Store
	log     *slog.Logger

	// Fleet coordination (empty on a plain daemon): the workers (each a
	// dispatch client plus its health state and circuit breaker), their
	// display names, the availability tuning, the dispatch/retry/speculation
	// counters /metrics exports, and the job-completion ring feeding the
	// drain-rate Retry-After estimator.
	workers   []*worker
	peerNames []string
	tuning    FleetTuning
	fleet     fleetMetrics
	doneMu    sync.Mutex
	doneTimes []time.Time

	started   time.Time     // for /metrics uptime
	cellsDone atomic.Uint64 // cells appended to any job, for /metrics

	mxMu     sync.Mutex     // guards the cells/sec scrape window
	mxScrape []scrapeSample // recent (time, cellsDone) samples

	ctx    context.Context // canceled by Close: stops every running job
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *job

	mu           sync.Mutex
	closed       bool
	nextID       uint64
	jobs         map[string]*job
	order        []string // job ids in submission order, for bounded eviction
	sinceCompact int      // evictions since the journal was last compacted
}

// New builds a Server, resumes any interrupted jobs found in the store, and
// starts the runner goroutines.
func New(opts Options) *Server {
	if opts.Client == nil {
		opts.Client = core.NewClient()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Runners <= 0 {
		opts.Runners = 1
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 256
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		client:  opts.Client,
		maxBody: opts.MaxBodyBytes,
		retain:  opts.RetainJobs,
		depth:   opts.QueueDepth,
		st:      opts.Store,
		log:     opts.Logger,
		tuning:  opts.Tuning.withDefaults(),
		started: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*job),
	}
	for _, p := range opts.Peers {
		s.workers = append(s.workers, newWorker(p, s.tuning))
		s.peerNames = append(s.peerNames, p.BaseURL())
	}
	resumed := s.restoreJobs()
	// Resumed jobs get dedicated queue slots so a full restart never
	// deadlocks against its own backlog or eats the admission budget.
	s.queue = make(chan *job, opts.QueueDepth+len(resumed))
	for _, j := range resumed {
		s.queue <- j
	}
	for i := 0; i < opts.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go s.heartbeatLoop(w)
	}
	return s
}

// restoreJobs replays the store into the in-memory registry: terminal jobs
// come back queryable (status, cells, stream), interrupted ones are marked
// "resuming" and returned for enqueueing. Callers run before the runners
// start, so no locking is needed yet.
func (s *Server) restoreJobs() []*job {
	if s.st == nil {
		return nil
	}
	var resumed []*job
	for _, js := range s.st.Jobs() {
		j := &job{
			id:        js.ID,
			total:     js.Total,
			submitted: js.Submitted,
			timeout:   js.Timeout,
			cells:     js.Cells,
		}
		j.cond = sync.NewCond(&j.mu)
		if n := parseJobID(js.ID); n > s.nextID {
			s.nextID = n
		}
		if js.Status != "" {
			j.status, j.errMsg = js.Status, js.Error
		} else if sc, subset, err := reparseSubmission(js.Scenario); err != nil {
			// The stored scenario no longer parses (schema drift, registry
			// change): fail it durably rather than retrying forever.
			j.status = statusFailed
			j.errMsg = "resume: " + err.Error()
			s.persistStatus(js.ID, statusFailed, j.errMsg)
			s.log.Error("job resume rejected", "job", js.ID, "err", err)
		} else {
			j.scenario, j.subset, j.raw = sc, subset, js.Scenario
			j.status = statusResuming
			j.restored = make(map[int]bool, len(js.Cells))
			for _, c := range js.Cells {
				j.restored[c.Index] = true
			}
			resumed = append(resumed, j)
			s.log.Info("job marked for resume", "job", js.ID,
				"done", len(js.Cells), "total", js.Total)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	return resumed
}

// reparseSubmission re-derives a journaled job's scenario and shard subset
// from the raw body the submit recorded; the stored Timeout field carries
// the deadline, so the extras timeout is not re-read here.
func reparseSubmission(body json.RawMessage) (*core.Scenario, []int, error) {
	sc, err := core.ParseScenario(body)
	if err != nil {
		return nil, nil, err
	}
	_, subset, err := parseExtras(body, len(sc.Configs)*len(sc.Workloads))
	if err != nil {
		return nil, nil, err
	}
	return sc, subset, nil
}

// parseJobID extracts the sequence number from a "job-NNNNNN" id, 0 when it
// does not fit the shape.
func parseJobID(id string) uint64 {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Close rejects further submissions, cancels queued and running jobs, and
// waits for the runners to drain. Completed cells keep their cache entries
// and journal records; interrupted jobs are deliberately left without a
// terminal status in the journal, so the next daemon on this store resumes
// them.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/fabrics", s.handleFabrics)
	return mux
}

// Job lifecycle states. "resuming" is the restart path: the job was
// interrupted by a crash or shutdown and is queued to re-run its missing
// cells. "timed_out" is terminal: the job's submitted wall-clock deadline
// expired.
const (
	statusQueued   = "queued"
	statusResuming = "resuming"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"
	statusCanceled = "canceled"
	statusTimedOut = "timed_out"
)

// job is one submitted scenario and everything observers need: state,
// accumulated cells (the NDJSON stream replays them to late readers), and a
// cond that broadcasts every state or cell change.
type job struct {
	id        string
	scenario  *core.Scenario // nil for restored terminal jobs
	total     int
	submitted time.Time
	timeout   time.Duration

	// subset is the shard-subset of matrix indices this job executes (the
	// submission's "cells" field); nil runs the full matrix. raw is the
	// submitted scenario body, kept for fleet dispatch (the coordinator
	// rewrites it per shard) and recovered from the journal on resume.
	subset []int
	raw    json.RawMessage

	// restored marks cell indices replayed from the journal (resumed jobs
	// only): they are already in cells, already durable, and must not be
	// double-appended when the resumed sweep re-surfaces them.
	restored map[int]bool

	mu       sync.Mutex
	cond     *sync.Cond
	status   string
	cells    []core.CellResult
	errMsg   string
	canceled bool               // cancel requested (possibly before running)
	cancel   context.CancelFunc // non-nil while running
}

func newJob(id string, sc *core.Scenario, timeout time.Duration, subset []int, raw json.RawMessage) *job {
	total := len(sc.Configs) * len(sc.Workloads)
	if subset != nil {
		total = len(subset)
	}
	j := &job{
		id:        id,
		scenario:  sc,
		total:     total,
		submitted: time.Now().UTC(),
		timeout:   timeout,
		subset:    subset,
		raw:       raw,
		status:    statusQueued,
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// terminal reports whether the job has reached a final state. Callers hold
// j.mu.
func (j *job) terminal() bool {
	switch j.status {
	case statusDone, statusFailed, statusCanceled, statusTimedOut:
		return true
	}
	return false
}

// JobView is the JSON shape of a job for status responses (and the shape
// Client decodes).
type JobView struct {
	ID         string    `json:"id"`
	Status     string    `json:"status"`
	Done       int       `json:"done"`
	Total      int       `json:"total"`
	Error      string    `json:"error,omitempty"`
	Submitted  time.Time `json:"submitted"`
	Timeout    string    `json:"timeout,omitempty"`
	ResultsURL string    `json:"results_url"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Status:     j.status,
		Done:       len(j.cells),
		Total:      j.total,
		Error:      j.errMsg,
		Submitted:  j.submitted,
		ResultsURL: "/v1/jobs/" + j.id + "/results",
	}
	if j.timeout > 0 {
		v.Timeout = j.timeout.String()
	}
	return v
}

// persistSubmit/persistCell/persistStatus write through to the journal when
// one is configured. A store failure (a wedged journal, a dead disk) is
// loud but not fatal: the daemon degrades to in-memory operation — visible
// in /healthz — rather than dying mid-campaign.
func (s *Server) persistSubmit(id string, scenario []byte, total int, submitted time.Time, timeout time.Duration) {
	if s.st == nil {
		return
	}
	if err := s.st.AppendSubmit(id, scenario, total, submitted, timeout); err != nil {
		s.log.Error("job store write failed; durability degraded", "job", id, "record", "submit", "err", err)
	}
}

func (s *Server) persistCell(id string, cell core.CellResult) {
	if s.st == nil {
		return
	}
	if err := s.st.AppendCell(id, cell); err != nil {
		s.log.Error("job store write failed; durability degraded", "job", id, "record", "cell", "err", err)
	}
}

func (s *Server) persistStatus(id, status, errMsg string) {
	if s.st == nil {
		return
	}
	if err := s.st.AppendStatus(id, status, errMsg); err != nil {
		s.log.Error("job store write failed; durability degraded", "job", id, "record", "status", "err", err)
	}
}

// runner executes queued jobs until the queue closes: locally on a plain
// daemon, scattered across the worker fleet on a coordinator.
func (s *Server) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		if len(s.workers) > 0 {
			s.runFleetJob(j)
		} else {
			s.runJob(j)
		}
	}
}

// containPanic is the runner's backstop barrier, installed with defer: core
// already converts cell panics into errors, so anything recovered here is a
// bug in the job plumbing itself — fail the one job, keep the daemon and
// its sibling jobs alive.
func (s *Server) containPanic(j *job) {
	if v := recover(); v != nil {
		msg := fmt.Sprintf("job runner panicked: %v", v)
		s.log.Error("job runner panic contained", "job", j.id, "panic", v,
			"stack", string(debug.Stack()))
		j.mu.Lock()
		if !j.terminal() {
			j.status, j.errMsg = statusFailed, msg
			j.cancel = nil
			j.cond.Broadcast()
			j.mu.Unlock()
			s.persistStatus(j.id, statusFailed, msg)
			return
		}
		j.mu.Unlock()
	}
}

// startJob moves a dequeued job into "running": it installs the cancel
// function (bounded by the job's deadline when one was submitted) and
// returns the run context. ok=false means there is nothing to run — the job
// was finalized while queued, or the daemon is shutting down, in which case
// the job is marked canceled WITHOUT a journaled terminal status so the
// next daemon on this store resumes it.
func (s *Server) startJob(j *job) (ctx context.Context, cancel context.CancelFunc, from string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal() {
		// Canceled while queued: handleCancel already finalized the state.
		return nil, nil, "", false
	}
	if j.canceled || s.ctx.Err() != nil {
		j.status = statusCanceled
		j.errMsg = "canceled before start"
		j.cond.Broadcast()
		return nil, nil, "", false
	}
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.ctx, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.ctx)
	}
	j.cancel = cancel
	from = j.status
	j.status = statusRunning
	j.cond.Broadcast()
	return ctx, cancel, from, true
}

// finishJob maps the run's terminal error onto the job state machine and
// persists the verdict — except for a shutdown-interrupted job, which must
// stay statusless in the journal so the next daemon resumes it exactly
// where the cells left off.
func (s *Server) finishJob(j *job, err error, started time.Time) {
	j.mu.Lock()
	j.cancel = nil
	var status, detail string
	switch {
	case err == nil:
		status = statusDone
	case errors.Is(err, context.DeadlineExceeded) && j.timeout > 0 && !j.canceled:
		status = statusTimedOut
		detail = fmt.Sprintf("deadline %v exceeded: %v", j.timeout, err)
	case isCancellation(err):
		status = statusCanceled
		detail = err.Error()
	default:
		status = statusFailed
		detail = err.Error()
		var pe *core.PanicError
		if errors.As(err, &pe) {
			s.log.Error("cell panic contained", "job", j.id, "panic", pe.Value,
				"stack", string(pe.Stack))
		}
	}
	j.status, j.errMsg = status, detail
	j.cond.Broadcast()
	userCanceled := j.canceled
	done := len(j.cells)
	j.mu.Unlock()

	interrupted := status == statusCanceled && !userCanceled && s.ctx.Err() != nil
	if !interrupted {
		s.persistStatus(j.id, status, detail)
		s.noteJobDone(time.Now())
	}
	s.log.Info("job finished", "job", j.id, "status", status,
		"done", done, "total", j.total, "duration", time.Since(started).Round(time.Millisecond),
		"interrupted", interrupted, "err", detail)
}

func (s *Server) runJob(j *job) {
	defer s.containPanic(j)
	ctx, cancel, from, ok := s.startJob(j)
	if !ok {
		return
	}
	defer cancel()
	j.mu.Lock()
	resumedCells := len(j.restored)
	j.mu.Unlock()
	s.log.Info("job running", "job", j.id, "from", from,
		"total", j.total, "resumed_cells", resumedCells, "timeout", j.timeout)
	started := time.Now()

	// A resumed job feeds its journal-recorded cells back as precomputed
	// results: the engine re-runs only the missing ones, deterministically
	// identical to what an uninterrupted run would have produced. A shard
	// sub-job (a coordinator-dispatched slice of a campaign) runs only its
	// subset of the matrix.
	var opts []core.Option
	if j.subset != nil {
		opts = append(opts, core.Subset(j.subset))
	}
	if resumedCells > 0 {
		pre := make(map[int]core.Result, resumedCells)
		j.mu.Lock()
		for _, c := range j.cells {
			pre[c.Index] = c.Result
		}
		j.mu.Unlock()
		opts = append(opts, core.Precomputed(pre))
	}

	// server.shard.run is the fleet chaos point: arming it kills a worker's
	// shard sub-job at pickup, the coarsest failure a coordinator must retry
	// (core.cell.run covers the mid-shard cell-level one).
	var cj *core.Job
	var err error
	if j.subset != nil {
		err = faultinject.Fire("server.shard.run")
	}
	if err == nil {
		cj, err = s.client.Submit(ctx, j.scenario.Sweep(), opts...)
	}
	if err == nil {
		for cell := range cj.Results() {
			j.mu.Lock()
			if j.restored[cell.Index] {
				// Already durable and already in cells from the journal.
				j.mu.Unlock()
				continue
			}
			j.cells = append(j.cells, cell)
			j.cond.Broadcast()
			j.mu.Unlock()
			s.persistCell(j.id, cell)
			s.cellsDone.Add(1)
		}
		err = cj.Wait(context.Background())
	}
	s.finishJob(j, err, started)
}

// isCancellation reports a context cancellation or deadline, wrapped or not.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// evictLocked drops the oldest terminal jobs once the registry exceeds the
// retention bound, so a long-lived daemon's memory stays proportional to
// retain + live jobs rather than to its submission history. Live (queued or
// running) jobs are never evicted. Once enough evictions accumulate, the
// journal is compacted so disk tracks the registry too. Callers hold s.mu.
func (s *Server) evictLocked() {
	evicted := 0
	for i := 0; len(s.jobs) > s.retain && i < len(s.order); {
		j := s.jobs[s.order[i]]
		j.mu.Lock()
		dead := j.terminal()
		j.mu.Unlock()
		if !dead {
			i++
			continue
		}
		delete(s.jobs, s.order[i])
		s.order = append(s.order[:i], s.order[i+1:]...)
		evicted++
	}
	if evicted == 0 || s.st == nil {
		return
	}
	// Compact once an eighth of the retention window has been evicted —
	// often enough to bound the journal, rare enough that steady-state
	// submissions do not rewrite it every time.
	if s.sinceCompact += evicted; s.sinceCompact*8 < s.retain {
		return
	}
	s.sinceCompact = 0
	keep := make(map[string]bool, len(s.jobs))
	for id := range s.jobs {
		keep[id] = true
	}
	if err := s.st.Compact(func(id string) bool { return keep[id] }); err != nil {
		s.log.Error("journal compaction failed", "err", err)
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeUnavailable is the 503 path: every queue-full or shutting-down
// rejection carries a Retry-After hint (seconds) so backoff clients have a
// real signal instead of a guess.
func writeUnavailable(w http.ResponseWriter, retryAfter int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeError(w, http.StatusServiceUnavailable, msg)
}

// HealthView is the /healthz body: liveness plus the backpressure and
// durability signals a fleet scheduler (or a backoff client) needs. It is
// exported because it is also the shape Client.Health decodes — the fleet
// heartbeat reads QueueDepth/QueueCapacity for admission accounting. On a
// coordinator, Workers reports the health registry's per-worker verdicts.
type HealthView struct {
	Status        string         `json:"status"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          int            `json:"jobs"`
	Live          int            `json:"live"`
	Store         string         `json:"store"`
	Workers       []WorkerHealth `json:"workers,omitempty"`
}

// WorkerHealth is one worker's row in a coordinator's /healthz: the health
// state machine's verdict (healthy/suspect/dead/recovered), the circuit
// breaker's state (closed/open/half_open), and the queue figures its last
// live heartbeat reported.
type WorkerHealth struct {
	Name          string `json:"name"`
	State         string `json:"state"`
	Breaker       string `json:"breaker"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	v := HealthView{
		Status:        "ok",
		QueueDepth:    len(s.queue),
		QueueCapacity: s.depth,
		Jobs:          len(s.jobs),
	}
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if !j.terminal() {
			v.Live++
		}
		j.mu.Unlock()
	}
	switch {
	case s.st == nil:
		v.Store = "disabled"
	case s.st.Err() != nil:
		v.Store = "wedged: " + s.st.Err().Error()
	default:
		v.Store = "ok"
	}
	for _, wk := range s.workers {
		v.Workers = append(v.Workers, wk.snapshot())
	}
	writeJSON(w, http.StatusOK, v)
}

// submitExtras are the submission fields that belong to the serving layer,
// not the scenario: they ride in the same JSON body (core.ParseScenario
// ignores unknown fields) so one POST carries both.
type submitExtras struct {
	// Timeout is an optional per-job wall-clock deadline ("90s", "15m").
	// When it expires the job lands in "timed_out".
	Timeout string `json:"timeout"`
	// Cells restricts the job to a subset of the scenario's cell matrix —
	// the shard-subset protocol a fleet coordinator uses to scatter one
	// campaign across worker daemons. Omitted runs the full matrix.
	Cells *cellRange `json:"cells"`
}

// cellRange selects matrix cells by linear index (row*len(configs)+col):
// either a contiguous half-open range {"lo": L, "hi": H} or an explicit
// {"list": [i, j, ...]}. Deterministic per-cell seeding makes a subset
// job's results byte-identical to the same cells of a full run, so a
// coordinator can merge shards from many workers into one single-node-
// identical stream.
type cellRange struct {
	Lo   *int  `json:"lo"`
	Hi   *int  `json:"hi"`
	List []int `json:"list"`
}

// resolve expands the selector into validated cell indices for a
// total-cell matrix.
func (c *cellRange) resolve(total int) ([]int, error) {
	switch {
	case c.List != nil && (c.Lo != nil || c.Hi != nil):
		return nil, fmt.Errorf(`cells: "list" and "lo"/"hi" are mutually exclusive`)
	case c.List != nil:
		if len(c.List) == 0 {
			return nil, fmt.Errorf("cells: list selects no cells")
		}
		seen := make(map[int]bool, len(c.List))
		for _, i := range c.List {
			if i < 0 || i >= total {
				return nil, fmt.Errorf("cells: index %d outside the %d-cell matrix", i, total)
			}
			if seen[i] {
				return nil, fmt.Errorf("cells: index %d duplicated", i)
			}
			seen[i] = true
		}
		return c.List, nil
	case c.Lo != nil && c.Hi != nil:
		lo, hi := *c.Lo, *c.Hi
		if lo < 0 || hi > total || lo >= hi {
			return nil, fmt.Errorf("cells: range [%d,%d) invalid for the %d-cell matrix", lo, hi, total)
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		return idx, nil
	default:
		return nil, fmt.Errorf(`cells: want {"lo": L, "hi": H} or {"list": [i, ...]}`)
	}
}

// parseExtras decodes the serving-layer submission fields riding the
// scenario body. It is also the resume path's way to recover a journaled
// job's shard subset, so it must accept every body handleSubmit accepted.
func parseExtras(body []byte, total int) (timeout time.Duration, subset []int, err error) {
	var extras submitExtras
	if err := json.Unmarshal(body, &extras); err != nil {
		return 0, nil, fmt.Errorf("submission fields: %w", err)
	}
	if extras.Timeout != "" {
		timeout, err = time.ParseDuration(extras.Timeout)
		if err != nil || timeout <= 0 {
			return 0, nil, fmt.Errorf("timeout %q is not a positive duration", extras.Timeout)
		}
	}
	if extras.Cells != nil {
		if subset, err = extras.Cells.resolve(total); err != nil {
			return 0, nil, err
		}
	}
	return timeout, subset, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("scenario body exceeds %d bytes", s.maxBody))
		} else {
			writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return
	}
	sc, err := core.ParseScenario(body)
	if err != nil {
		// Every ParseScenario rejection is a *core.ConfigError — the
		// caller's input, not our failure — hence 400 across the board.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout, subset, err := parseExtras(body, len(sc.Configs)*len(sc.Workloads))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(s.workers) > 0 {
		// Coordinator overload control: admit only what the fleet can absorb.
		// Accepting a campaign no live worker can take just parks it behind a
		// saturated queue; shedding it now with a measured Retry-After lets
		// the client's backoff do something useful.
		if retry, reason, ok := s.fleetAdmission(); !ok {
			s.log.Warn("campaign shed by fleet admission control",
				"reason", reason, "retry_after", retry)
			writeUnavailable(w, retry, reason)
			return
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeUnavailable(w, retryAfterShutdown, "server is shutting down")
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), sc, timeout, subset, body)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.evictLocked()
		s.mu.Unlock()
	default:
		s.nextID-- // the id was never visible
		s.mu.Unlock()
		retry := retryAfterFull
		if len(s.workers) > 0 {
			// A coordinator knows its drain rate; hint with a measurement.
			retry = s.drainRetryAfter()
		}
		writeUnavailable(w, retry, "job queue full; retry later")
		return
	}
	s.persistSubmit(j.id, body, j.total, j.submitted, timeout)
	s.log.Info("job submitted", "job", j.id, "cells", j.total, "timeout", timeout)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view())
}

// Retry-After hints, in seconds. A full queue usually drains within a job
// or two; a shutting-down daemon will not come back on its own, so steer
// clients away for longer.
const (
	retryAfterFull     = 2
	retryAfterShutdown = 60
)

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		views = append(views, j.view())
	}
	// Zero-padded sequential ids make lexical order submission order.
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleResults streams the job's cells as NDJSON — one core.CellResult per
// line — replaying already-completed cells immediately and then following
// the live job until it reaches a terminal state or the client goes away.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	// cond.Wait cannot watch a context, so a disconnecting client pokes the
	// cond awake and the wait loop re-checks ctx.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	for i := 0; ; i++ {
		j.mu.Lock()
		for len(j.cells) <= i && !j.terminal() && ctx.Err() == nil {
			j.cond.Wait()
		}
		if ctx.Err() != nil || len(j.cells) <= i {
			j.mu.Unlock()
			return // client gone, or job finished with no further cells
		}
		cell := j.cells[i]
		j.mu.Unlock()
		if enc.Encode(cell) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	j.mu.Lock()
	j.canceled = true
	finalizedNow := false
	switch {
	case j.cancel != nil:
		// Running: the runner observes the context and finalizes the state.
		j.cancel()
	case !j.terminal():
		// Still queued: finalize immediately so status reflects the cancel
		// now; the runner skips terminal jobs when it dequeues this one.
		j.status = statusCanceled
		j.errMsg = "canceled while queued"
		finalizedNow = true
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	if finalizedNow {
		// A user cancel is a real terminal state: persist it so a restart
		// does not resurrect the job.
		s.persistStatus(j.id, statusCanceled, "canceled while queued")
		s.log.Info("job canceled while queued", "job", j.id)
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// fabricView is one row of the interconnect catalog: the registry metadata
// at the paper's 64-cluster scale.
type fabricView struct {
	Name             string  `json:"name"`
	Display          string  `json:"display"`
	Description      string  `json:"description,omitempty"`
	BisectionTBs     float64 `json:"bisection_tbs,omitempty"`
	MinTransitCycles uint64  `json:"min_transit_cycles,omitempty"`
}

func (s *Server) handleFabrics(w http.ResponseWriter, _ *http.Request) {
	views := []fabricView{}
	for _, name := range noc.Names() {
		f, ok := noc.Lookup(name)
		if !ok {
			continue
		}
		v := fabricView{
			Name:             name,
			Display:          noc.DisplayName(name),
			Description:      f.Description,
			MinTransitCycles: uint64(f.MinTransitCycles),
		}
		if f.BisectionBytesPerSec != nil {
			// The analytic metadata is quoted at the paper's 64-cluster scale,
			// matching corona-inventory -table fabrics.
			v.BisectionTBs = f.BisectionBytesPerSec(noc.FabricParams{Clusters: 64}) / 1e12
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, views)
}
