// Package server implements the corona-serve HTTP/JSON daemon: a small,
// job-oriented API over the core Client that lets remote callers submit
// experiment scenarios, watch their progress, and stream cell results as
// shards finish — the production-facing seam the context-aware engine was
// redesigned for.
//
// Endpoints:
//
//	POST   /v1/jobs              submit a scenario (the corona-sweep -config
//	                             JSON schema); 202 with the job id, 400 on
//	                             invalid input, 503 when the queue is full
//	GET    /v1/jobs              list known jobs
//	GET    /v1/jobs/{id}         status and progress
//	GET    /v1/jobs/{id}/results NDJSON stream of completed cells, following
//	                             the job live until it finishes
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/fabrics           the registered interconnect catalog
//	GET    /healthz              liveness
//
// Jobs are admitted into a bounded queue and executed by a fixed set of
// runner goroutines; within one job, cells fan out over the client's worker
// pool, and all jobs share the client's on-disk result cache. Close cancels
// running jobs (their completed cells stay cached) and drains the runners —
// graceful shutdown for the daemon.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"corona/internal/core"
	"corona/internal/noc"
)

// Options configures a Server.
type Options struct {
	// Client executes submitted jobs; nil builds a default client
	// (GOMAXPROCS workers, no cache).
	Client *core.Client
	// QueueDepth bounds jobs admitted but not yet finished being picked up;
	// submissions beyond it are rejected with 503. Default 16.
	QueueDepth int
	// Runners is how many jobs execute concurrently. Default 1: cells within
	// a job already fan out over the client's worker pool, so more runners
	// trade per-job latency for cross-job fairness.
	Runners int
	// MaxBodyBytes bounds the scenario JSON accepted by POST /v1/jobs.
	// Default 1 MiB.
	MaxBodyBytes int64
	// RetainJobs bounds how many finished jobs (and their accumulated cell
	// results) stay queryable: when a submission would exceed it, the oldest
	// terminal jobs are evicted. Live jobs are never evicted. Default 256.
	RetainJobs int
}

// Server owns the job registry, the bounded queue, and the runner pool.
// Create one with New, mount Handler on an http.Server, and Close it on
// shutdown.
type Server struct {
	client  *core.Client
	maxBody int64
	retain  int

	ctx    context.Context // canceled by Close: stops every running job
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *job

	mu     sync.Mutex
	closed bool
	nextID uint64
	jobs   map[string]*job
	order  []string // job ids in submission order, for bounded eviction
}

// New starts a Server's runner goroutines and returns it.
func New(opts Options) *Server {
	if opts.Client == nil {
		opts.Client = core.NewClient()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Runners <= 0 {
		opts.Runners = 1
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		client:  opts.Client,
		maxBody: opts.MaxBodyBytes,
		retain:  opts.RetainJobs,
		ctx:     ctx,
		cancel:  cancel,
		queue:   make(chan *job, opts.QueueDepth),
		jobs:    make(map[string]*job),
	}
	for i := 0; i < opts.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Close rejects further submissions, cancels queued and running jobs, and
// waits for the runners to drain. Completed cells keep their cache entries,
// so a resubmitted scenario resumes from them.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/fabrics", s.handleFabrics)
	return mux
}

// Job lifecycle states.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"
	statusCanceled = "canceled"
)

// job is one submitted scenario and everything observers need: state,
// accumulated cells (the NDJSON stream replays them to late readers), and a
// cond that broadcasts every state or cell change.
type job struct {
	id        string
	scenario  *core.Scenario
	total     int
	submitted time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	status   string
	cells    []core.CellResult
	errMsg   string
	canceled bool               // cancel requested (possibly before running)
	cancel   context.CancelFunc // non-nil while running
}

func newJob(id string, sc *core.Scenario) *job {
	j := &job{
		id:        id,
		scenario:  sc,
		total:     len(sc.Configs) * len(sc.Workloads),
		submitted: time.Now().UTC(),
		status:    statusQueued,
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// terminal reports whether the job has reached a final state. Callers hold
// j.mu.
func (j *job) terminal() bool {
	return j.status == statusDone || j.status == statusFailed || j.status == statusCanceled
}

// jobView is the JSON shape of a job for status responses.
type jobView struct {
	ID         string    `json:"id"`
	Status     string    `json:"status"`
	Done       int       `json:"done"`
	Total      int       `json:"total"`
	Error      string    `json:"error,omitempty"`
	Submitted  time.Time `json:"submitted"`
	ResultsURL string    `json:"results_url"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:         j.id,
		Status:     j.status,
		Done:       len(j.cells),
		Total:      j.total,
		Error:      j.errMsg,
		Submitted:  j.submitted,
		ResultsURL: "/v1/jobs/" + j.id + "/results",
	}
}

// runner executes queued jobs until the queue closes.
func (s *Server) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.terminal() {
		// Canceled while queued: handleCancel already finalized the state.
		j.mu.Unlock()
		return
	}
	if j.canceled || s.ctx.Err() != nil {
		j.status = statusCanceled
		j.errMsg = "canceled before start"
		j.cond.Broadcast()
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	j.cancel = cancel
	j.status = statusRunning
	j.cond.Broadcast()
	j.mu.Unlock()
	defer cancel()

	cj, err := s.client.Submit(ctx, j.scenario.Sweep())
	if err == nil {
		for cell := range cj.Results() {
			j.mu.Lock()
			j.cells = append(j.cells, cell)
			j.cond.Broadcast()
			j.mu.Unlock()
		}
		err = cj.Wait(context.Background())
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	defer j.cond.Broadcast()
	j.cancel = nil
	switch {
	case err == nil:
		j.status = statusDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = statusCanceled
		j.errMsg = err.Error()
	default:
		j.status = statusFailed
		j.errMsg = err.Error()
	}
}

// evictLocked drops the oldest terminal jobs once the registry exceeds the
// retention bound, so a long-lived daemon's memory stays proportional to
// retain + live jobs rather than to its submission history. Live (queued or
// running) jobs are never evicted. Callers hold s.mu.
func (s *Server) evictLocked() {
	for i := 0; len(s.jobs) > s.retain && i < len(s.order); {
		j := s.jobs[s.order[i]]
		j.mu.Lock()
		dead := j.terminal()
		j.mu.Unlock()
		if !dead {
			i++
			continue
		}
		delete(s.jobs, s.order[i])
		s.order = append(s.order[:i], s.order[i+1:]...)
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("scenario body exceeds %d bytes", s.maxBody))
		} else {
			writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return
	}
	sc, err := core.ParseScenario(body)
	if err != nil {
		// Every ParseScenario rejection is a *core.ConfigError — the
		// caller's input, not our failure — hence 400 across the board.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), sc)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.evictLocked()
		s.mu.Unlock()
	default:
		s.nextID-- // the id was never visible
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "job queue full; retry later")
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.jobs))
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		views = append(views, j.view())
	}
	// Zero-padded sequential ids make lexical order submission order.
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleResults streams the job's cells as NDJSON — one core.CellResult per
// line — replaying already-completed cells immediately and then following
// the live job until it reaches a terminal state or the client goes away.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	// cond.Wait cannot watch a context, so a disconnecting client pokes the
	// cond awake and the wait loop re-checks ctx.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	for i := 0; ; i++ {
		j.mu.Lock()
		for len(j.cells) <= i && !j.terminal() && ctx.Err() == nil {
			j.cond.Wait()
		}
		if ctx.Err() != nil || len(j.cells) <= i {
			j.mu.Unlock()
			return // client gone, or job finished with no further cells
		}
		cell := j.cells[i]
		j.mu.Unlock()
		if enc.Encode(cell) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	j.mu.Lock()
	j.canceled = true
	switch {
	case j.cancel != nil:
		// Running: the runner observes the context and finalizes the state.
		j.cancel()
	case !j.terminal():
		// Still queued: finalize immediately so status reflects the cancel
		// now; the runner skips terminal jobs when it dequeues this one.
		j.status = statusCanceled
		j.errMsg = "canceled while queued"
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, j.view())
}

// fabricView is one row of the interconnect catalog: the registry metadata
// at the paper's 64-cluster scale.
type fabricView struct {
	Name             string  `json:"name"`
	Display          string  `json:"display"`
	Description      string  `json:"description,omitempty"`
	BisectionTBs     float64 `json:"bisection_tbs,omitempty"`
	MinTransitCycles uint64  `json:"min_transit_cycles,omitempty"`
}

func (s *Server) handleFabrics(w http.ResponseWriter, _ *http.Request) {
	views := []fabricView{}
	for _, name := range noc.Names() {
		f, ok := noc.Lookup(name)
		if !ok {
			continue
		}
		v := fabricView{
			Name:             name,
			Display:          noc.DisplayName(name),
			Description:      f.Description,
			MinTransitCycles: uint64(f.MinTransitCycles),
		}
		if f.BisectionBytesPerSec != nil {
			// The analytic metadata is quoted at the paper's 64-cluster scale,
			// matching corona-inventory -table fabrics.
			v.BisectionTBs = f.BisectionBytesPerSec(noc.FabricParams{Clusters: 64}) / 1e12
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, views)
}
