package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
	"corona/internal/store"
)

// resumeScenario is a 2-config x 2-workload matrix (4 cells): enough to
// crash at several distinct write points, quick enough to run dozens of
// crash/restart cycles.
const resumeScenario = `{
	"configs": [{"preset": "XBar/OCM"}, {"fabric": "swmr", "mem": "OCM"}],
	"workloads": ["Uniform", "Hot Spot"],
	"requests": 300,
	"seed": 11
}`

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Logger: discardLogger(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// sortedNDJSON drains the job's results stream and returns the raw lines in
// canonical (matrix-index) order — the representation restart-resume
// equivalence is asserted in, since completion order is timing-dependent.
func sortedNDJSON(t *testing.T, ts *httptest.Server, id string) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type line struct {
		idx int
		raw string
	}
	var lines []line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line{m.Index, sc.Text()})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	slices.SortFunc(lines, func(a, b line) int { return a.idx - b.idx })
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = l.raw
	}
	return out
}

// TestRestartResumeByteIdentical is the acceptance gate for the durability
// layer: a daemon killed at every journal write point in turn, at several
// worker counts, must — after a restart against the same store directory —
// finish the interrupted job with a merged result set byte-identical to an
// uninterrupted run's.
//
// The kill is simulated with the store's fault points: the injected failure
// wedges the journal (nothing is written past the crash point, including a
// torn half-frame for the "torn" point), the old server is torn down, and a
// fresh store+server pair reopens the directory exactly as a restarted
// process would.
func TestRestartResumeByteIdentical(t *testing.T) {
	// Uninterrupted reference run. Cell contents are deterministic in the
	// scenario alone, so one baseline serves every worker count.
	baseline := func() []string {
		dir := t.TempDir()
		st := openStore(t, dir)
		defer st.Close()
		s := New(Options{Store: st, Client: core.NewClient(core.WithWorkers(2)), Logger: discardLogger()})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close()
		v, resp := postScenario(t, ts, resumeScenario)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("baseline submit: HTTP %d", resp.StatusCode)
		}
		waitStatus(t, ts, v.ID, statusDone)
		return sortedNDJSON(t, ts, v.ID)
	}()
	if len(baseline) != 4 {
		t.Fatalf("baseline produced %d lines, want 4", len(baseline))
	}

	// Appends for this campaign: hit 1 = submit record, hits 2-5 = the four
	// cells, hit 6 = the terminal status. Crashing at hits 2..6 leaves the
	// submission durable and the job interrupted (for the "sync" point at
	// hit 6 the status frame itself survives — the job restores as done).
	modes := []string{"before", "torn", "sync"}
	for _, workers := range []int{1, 4} {
		for hit := 2; hit <= 6; hit++ {
			mode := modes[hit%len(modes)]
			t.Run(fmt.Sprintf("workers=%d/hit=%d/%s", workers, hit, mode), func(t *testing.T) {
				defer faultinject.Disarm()
				dir := t.TempDir()

				// First life: run the campaign into the armed journal. The
				// job completes in memory, but the store dies at the chosen
				// write point and records only the prefix.
				st := openStore(t, dir)
				s := New(Options{Store: st,
					Client: core.NewClient(core.WithWorkers(workers)), Logger: discardLogger()})
				ts := httptest.NewServer(s.Handler())
				if err := faultinject.Arm(fmt.Sprintf("store.append.%s:error@%d", mode, hit)); err != nil {
					t.Fatal(err)
				}
				v, resp := postScenario(t, ts, resumeScenario)
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("submit: HTTP %d", resp.StatusCode)
				}
				waitStatus(t, ts, v.ID, statusDone)
				if st.Err() == nil {
					t.Fatal("fault did not fire; the crash point was never reached")
				}
				ts.Close()
				s.Close()
				st.Close()
				faultinject.Disarm()

				// Second life: a restarted daemon on the same directory must
				// resume the job and converge on the baseline.
				st2 := openStore(t, dir)
				if jobs := st2.Jobs(); len(jobs) != 1 || jobs[0].ID != v.ID {
					t.Fatalf("replayed jobs = %+v, want exactly %s", jobs, v.ID)
				}
				s2 := New(Options{Store: st2,
					Client: core.NewClient(core.WithWorkers(workers)), Logger: discardLogger()})
				ts2 := httptest.NewServer(s2.Handler())
				waitStatus(t, ts2, v.ID, statusDone)
				got := sortedNDJSON(t, ts2, v.ID)
				if !slices.Equal(got, baseline) {
					t.Fatalf("resumed results differ from the uninterrupted run:\n got %v\nwant %v", got, baseline)
				}
				ts2.Close()
				s2.Close()
				st2.Close()

				// Third life: the resumed completion itself must be durable —
				// no daemon should ever re-run this job again.
				st3 := openStore(t, dir)
				defer st3.Close()
				jobs := st3.Jobs()
				if len(jobs) != 1 || jobs[0].Status != statusDone || len(jobs[0].Cells) != 4 {
					t.Fatalf("after resume, journal holds %+v; want %s done with 4 cells", jobs, v.ID)
				}
			})
		}
	}
}

// TestGracefulShutdownLeavesJobResumable covers the planned-restart twin of
// the crash matrix: Close() interrupts a running job WITHOUT writing a
// terminal status, so the next daemon on the store resumes it rather than
// reporting a canceled husk.
func TestGracefulShutdownLeavesJobResumable(t *testing.T) {
	slow := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"], "requests": 2000000, "seed": 1}`
	dir := t.TempDir()
	st := openStore(t, dir)
	s := New(Options{Store: st, Client: core.NewClient(core.WithWorkers(1)), Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	v, resp := postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, ts, v.ID, statusRunning)
	ts.Close()
	s.Close()
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	jobs := st2.Jobs()
	if len(jobs) != 1 || jobs[0].Status != "" {
		t.Fatalf("journal after graceful shutdown = %+v; want the job interrupted (no status)", jobs)
	}
	s2 := New(Options{Store: st2, Client: core.NewClient(core.WithWorkers(1)), Logger: discardLogger()})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	got, code := getStatus(t, ts2, v.ID)
	if code != http.StatusOK {
		t.Fatalf("restored job status: HTTP %d", code)
	}
	if got.Status != statusResuming && got.Status != statusRunning {
		t.Fatalf("restored job status = %q, want resuming/running", got.Status)
	}
	// The restart's half-finished campaign is interruptible too (Close via
	// the deferred handlers); no need to wait out two million requests.
}

// TestUnparseableStoredScenarioFailsDurably plants a journal whose job
// scenario no longer parses and asserts the restarted daemon marks it failed
// — durably, so a third open does not resurrect it either — instead of
// crash-looping on it.
func TestUnparseableStoredScenarioFailsDurably(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if err := st.AppendSubmit("job-000007", []byte(`{"configs":[{"fabric":"warp"}]}`), 15, time.Now().UTC(), 0); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	s2 := New(Options{Store: st2, Logger: discardLogger()})
	ts2 := httptest.NewServer(s2.Handler())
	v, code := getStatus(t, ts2, "job-000007")
	if code != http.StatusOK || v.Status != statusFailed || v.Error == "" {
		t.Fatalf("unparseable stored job = %+v (HTTP %d), want failed with detail", v, code)
	}
	// And the next submission continues the id sequence past the stored job.
	nv, resp := postScenario(t, ts2, resumeScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after restore: HTTP %d", resp.StatusCode)
	}
	if nv.ID != "job-000008" {
		t.Fatalf("next id after restored job-000007 = %q, want job-000008", nv.ID)
	}
	waitStatus(t, ts2, nv.ID, statusDone)
	ts2.Close()
	s2.Close()
	st2.Close()

	st3 := openStore(t, dir)
	defer st3.Close()
	for _, js := range st3.Jobs() {
		if js.ID == "job-000007" && js.Status != statusFailed {
			t.Fatalf("job-000007 status after restart = %q, want failed persisted", js.Status)
		}
	}
}
