package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestBreakerCycle walks the full closed → open → half-open → closed state
// machine with explicit clock values, no sleeping: the transitions are pure
// functions of (state, now).
func TestBreakerCycle(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)

	if !b.allow(t0) || b.isOpen() || b.current() != "closed" {
		t.Fatal("fresh breaker is not closed and allowing")
	}
	// Two failures stay under the threshold.
	b.recordFailure(t0)
	b.recordFailure(t0)
	if !b.allow(t0) || b.isOpen() {
		t.Fatal("breaker opened below its threshold")
	}
	// A success resets the streak entirely.
	b.recordSuccess()
	b.recordFailure(t0)
	b.recordFailure(t0)
	if b.isOpen() {
		t.Fatal("failure streak survived a success")
	}
	// The third consecutive failure opens it.
	b.recordFailure(t0)
	if !b.isOpen() || b.current() != "open" {
		t.Fatalf("breaker state after threshold = %s, want open", b.current())
	}
	if b.allow(t0.Add(999 * time.Millisecond)) {
		t.Fatal("open breaker allowed dispatch inside the cooldown")
	}
	// Cooldown elapsed: the next caller is the half-open probe; its
	// followers are refused.
	t1 := t0.Add(time.Second)
	if !b.allow(t1) {
		t.Fatal("cooldown elapsed but the probe was refused")
	}
	if b.current() != "half_open" {
		t.Fatalf("state after probe admission = %s, want half_open", b.current())
	}
	if b.allow(t1.Add(10 * time.Millisecond)) {
		t.Fatal("second caller admitted while a probe is outstanding")
	}
	// A probe that never reports back is replaced after another cooldown —
	// the wedge guard.
	t2 := t1.Add(time.Second)
	if !b.allow(t2) {
		t.Fatal("stale probe was never replaced")
	}
	// The probe fails: re-open immediately.
	b.recordFailure(t2)
	if b.current() != "open" {
		t.Fatalf("state after failed probe = %s, want open", b.current())
	}
	// Next probe succeeds: closed, streak cleared.
	t3 := t2.Add(time.Second)
	if !b.allow(t3) {
		t.Fatal("second cooldown elapsed but the probe was refused")
	}
	b.recordSuccess()
	if b.isOpen() || b.current() != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", b.current())
	}
	// And the failure counter restarted from zero.
	b.recordFailure(t3)
	b.recordFailure(t3)
	if b.isOpen() {
		t.Fatal("failure streak leaked across the close")
	}
}

// TestBreakerWorthy pins the failure classifier: transport errors and 5xx
// indict the worker; context cancellations and 4xx do not.
func TestBreakerWorthy(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"transport", errors.New("connection refused"), true},
		{"wrapped transport", fmt.Errorf("worker x: %w", errors.New("broken pipe")), true},
		{"canceled", context.Canceled, false},
		{"wrapped canceled", fmt.Errorf("submit: %w", context.Canceled), false},
		{"deadline", context.DeadlineExceeded, false},
		{"http 500", &APIError{Status: 500, Message: "boom"}, true},
		{"http 503", fmt.Errorf("submit: %w", &APIError{Status: 503, Message: "full"}), true},
		{"http 400", &APIError{Status: 400, Message: "bad scenario"}, false},
		{"http 404", &APIError{Status: 404, Message: "unknown job"}, false},
	} {
		if got := breakerWorthy(tc.err); got != tc.want {
			t.Errorf("breakerWorthy(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDrainEstimate pins the Retry-After estimator: no recent completions
// fall back to the static hint, a measured rate scales with the backlog, and
// the clamp bounds the hint.
func TestDrainEstimate(t *testing.T) {
	now := time.Unix(5000, 0)
	at := func(secsAgo float64) time.Time {
		return now.Add(-time.Duration(secsAgo * float64(time.Second)))
	}
	if got := drainEstimate(nil, 3, now); got != retryAfterFull {
		t.Errorf("no samples: %d, want the static %d", got, retryAfterFull)
	}
	if got := drainEstimate([]time.Time{at(1)}, 3, now); got != retryAfterFull {
		t.Errorf("one sample: %d, want the static %d", got, retryAfterFull)
	}
	// Five completions 2s apart: 2 s/job; depth 3 -> (3+1)*2 = 8s.
	steady := []time.Time{at(8), at(6), at(4), at(2), at(0)}
	if got := drainEstimate(steady, 3, now); got != 8 {
		t.Errorf("steady rate, depth 3: %d, want 8", got)
	}
	// Empty queue still hints one job's worth.
	if got := drainEstimate(steady, 0, now); got != 2 {
		t.Errorf("steady rate, depth 0: %d, want 2", got)
	}
	// A glacial fleet is clamped.
	slow := []time.Time{at(59), at(1)}
	if got := drainEstimate(slow, 10, now); got != drainMaxHint {
		t.Errorf("glacial rate: %d, want the %d clamp", got, drainMaxHint)
	}
	// Samples beyond the window no longer inform the rate.
	stale := []time.Time{at(3000), at(2000), at(500)}
	if got := drainEstimate(stale, 5, now); got != retryAfterFull {
		t.Errorf("stale samples: %d, want the static %d", got, retryAfterFull)
	}
}
