package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corona/internal/core"
)

// tinyScenario is a 2-config x 1-workload matrix that simulates in
// milliseconds.
const tinyScenario = `{
	"configs": [{"preset": "XBar/OCM"}, {"fabric": "swmr", "mem": "OCM"}],
	"workloads": ["Uniform"],
	"requests": 300,
	"seed": 7
}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = discardLogger()
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postScenario(t *testing.T, ts *httptest.Server, body string) (JobView, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (JobView, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// waitStatus polls until the job reaches want (or any terminal state) and
// returns the final view.
func waitStatus(t *testing.T, ts *httptest.Server, id, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, code := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if v.Status == want {
			return v
		}
		if v.Status == statusDone || v.Status == statusFailed || v.Status == statusCanceled || v.Status == statusTimedOut {
			t.Fatalf("job %s terminal at %q (error %q), want %q", id, v.Status, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %q waiting for %q", id, v.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubmitStatusAndStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	v, resp := postScenario(t, ts, tinyScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if v.ID == "" || v.Total != 2 {
		t.Fatalf("submit view = %+v", v)
	}
	if got := resp.Header.Get("Location"); got != "/v1/jobs/"+v.ID {
		t.Errorf("Location = %q", got)
	}

	// The NDJSON stream follows the job live: one line per cell, exactly
	// Total lines, each a decodable core.CellResult with a real result.
	streamResp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results Content-Type = %q", ct)
	}
	var cells []core.CellResult
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		var cell core.CellResult
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		cells = append(cells, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("streamed %d cells, want 2", len(cells))
	}
	seen := map[string]bool{}
	for _, cell := range cells {
		seen[cell.Config] = true
		if cell.Workload != "Uniform" || cell.Result.Cycles == 0 {
			t.Errorf("bad cell %+v", cell)
		}
	}
	if !seen["XBar/OCM"] || !seen["SWMR/OCM"] {
		t.Errorf("streamed configs = %v, want both machines", seen)
	}

	final := waitStatus(t, ts, v.ID, statusDone)
	if final.Done != 2 || final.Error != "" {
		t.Fatalf("final view = %+v", final)
	}

	// A late reader replays the finished job's cells from the start.
	lateResp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer lateResp.Body.Close()
	late := 0
	lsc := bufio.NewScanner(lateResp.Body)
	for lsc.Scan() {
		late++
	}
	if late != 2 {
		t.Fatalf("late replay streamed %d cells, want 2", late)
	}
}

func TestSubmitRejectsInvalidScenarios(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed json", `{"configs": [}`, "scenario"},
		{"unknown fabric", `{"configs": [{"fabric": "warp"}]}`, "warp"},
		{"no configs", `{}`, "no configs"},
		{"unknown workload", `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Unifrm"]}`, "Unifrm"},
	}
	for _, c := range cases {
		_, resp := postScenario(t, ts, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", c.name, resp.StatusCode)
		}
	}
	// And nothing was admitted.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Fatalf("invalid submissions left %d jobs behind", len(views))
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/results"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestQueueBoundRejectsWith503(t *testing.T) {
	// One runner, one queue slot, and a slow job each: the first submission
	// occupies the runner, the second the queue; the third must bounce.
	slow := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"], "requests": 2000000, "seed": 1}`
	_, ts := newTestServer(t, Options{QueueDepth: 1, Runners: 1,
		Client: core.NewClient(core.WithWorkers(1))})
	first, resp := postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, ts, first.ID, statusRunning)
	if _, resp = postScenario(t, ts, slow); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", resp.StatusCode)
	}
	if _, resp = postScenario(t, ts, slow); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit: HTTP %d, want 503", resp.StatusCode)
	}
	// Cancel the running job via the API; Close drains the queued one.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", dresp.StatusCode)
	}
	v := waitStatus(t, ts, first.ID, statusCanceled)
	if v.Error == "" {
		t.Error("canceled job reports no error detail")
	}
}

func TestFabricCatalogEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/fabrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []fabricView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"xbar": false, "hmesh": false, "lmesh": false, "swmr": false}
	for _, v := range views {
		if _, ok := want[v.Name]; ok {
			want[v.Name] = true
		}
		if v.Display == "" {
			t.Errorf("fabric %q has no display name", v.Name)
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("catalog missing %q: %+v", name, views)
		}
	}
}

func TestGracefulCloseCancelsJobs(t *testing.T) {
	slow := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"], "requests": 2000000, "seed": 1}`
	s := New(Options{Client: core.NewClient(core.WithWorkers(1))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	v, resp := postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, ts, v.ID, statusRunning)

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain the running job")
	}
	got, _ := getStatus(t, ts, v.ID)
	if got.Status != statusCanceled {
		t.Fatalf("job after Close: %q, want canceled", got.Status)
	}
	// Submissions after Close are refused, not queued into the void.
	if _, resp := postScenario(t, ts, tinyScenario); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestJobIDsAreSequential(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var ids []string
	for i := 0; i < 3; i++ {
		v, resp := postScenario(t, ts, tinyScenario)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	for i, id := range ids {
		if want := fmt.Sprintf("job-%06d", i+1); id != want {
			t.Errorf("id %d = %q, want %q", i, id, want)
		}
	}
}

func TestCancelQueuedJobFinalizesImmediately(t *testing.T) {
	// One busy runner: the second submission sits in the queue, and a DELETE
	// against it must report "canceled" right away, not linger at "queued".
	slow := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"], "requests": 2000000, "seed": 1}`
	_, ts := newTestServer(t, Options{Runners: 1, Client: core.NewClient(core.WithWorkers(1))})
	running, resp := postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, ts, running.ID, statusRunning)
	queued, resp := postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(dresp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if v.Status != statusCanceled {
		t.Fatalf("DELETE of a queued job returned status %q, want canceled immediately", v.Status)
	}
	// And the runner must not resurrect it once it dequeues the husk: cancel
	// the running job so the runner reaches the queued one, then re-check.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	if dresp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitStatus(t, ts, running.ID, statusCanceled)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got, _ := getStatus(t, ts, queued.ID); got.Status != statusCanceled {
			t.Fatalf("dequeued canceled job resurrected as %q", got.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestFinishedJobsAreEvicted(t *testing.T) {
	// RetainJobs 2: after four quick jobs complete, the two oldest must be
	// gone (404) and the newest still queryable.
	_, ts := newTestServer(t, Options{RetainJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		v, resp := postScenario(t, ts, tinyScenario)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		waitStatus(t, ts, v.ID, statusDone)
		ids = append(ids, v.ID)
	}
	// The last submission's eviction pass ran with the earlier jobs already
	// terminal, so only the retained tail may remain.
	if _, code := getStatus(t, ts, ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest job %s still present (HTTP %d), want evicted", ids[0], code)
	}
	if v, code := getStatus(t, ts, ids[3]); code != http.StatusOK || v.Status != statusDone {
		t.Errorf("newest job %s: HTTP %d status %q, want 200/done", ids[3], code, v.Status)
	}
}
