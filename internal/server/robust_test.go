package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
)

// TestJobTimeoutLandsTimedOut submits a multi-million-request job with a
// tight wall-clock deadline and asserts it terminates as "timed_out" — not
// "canceled", not "failed" — with the deadline in the error detail.
func TestJobTimeoutLandsTimedOut(t *testing.T) {
	slow := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"],
		"requests": 2000000, "seed": 1, "timeout": "100ms"}`
	_, ts := newTestServer(t, Options{Client: core.NewClient(core.WithWorkers(1))})
	v, resp := postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if v.Timeout != "100ms" {
		t.Errorf("submit view Timeout = %q, want 100ms", v.Timeout)
	}
	final := waitStatus(t, ts, v.ID, statusTimedOut)
	if !strings.Contains(final.Error, "100ms") {
		t.Errorf("timed_out error detail = %q, want the deadline in it", final.Error)
	}
}

// TestBadTimeoutRejected covers the 400 path for unparseable and
// non-positive deadlines.
func TestBadTimeoutRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tmo := range []string{`"soon"`, `"-5s"`, `"0s"`} {
		body := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"],
			"requests": 300, "timeout": ` + tmo + `}`
		if _, resp := postScenario(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("timeout %s: HTTP %d, want 400", tmo, resp.StatusCode)
		}
	}
}

// TestCellPanicFailsOnlyItsJob arms the cell fault point in panic mode: the
// first job must fail with the contained panic, and the daemon — same
// process, same runner — must then run the next job to completion.
func TestCellPanicFailsOnlyItsJob(t *testing.T) {
	defer faultinject.Disarm()
	_, ts := newTestServer(t, Options{})
	if err := faultinject.Arm("core.cell.run:panic@1"); err != nil {
		t.Fatal(err)
	}
	v, resp := postScenario(t, ts, tinyScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := waitStatus(t, ts, v.ID, statusFailed)
	if !strings.Contains(final.Error, "panicked") {
		t.Errorf("failed job error = %q, want the contained panic", final.Error)
	}
	faultinject.Disarm()

	next, resp := postScenario(t, ts, tinyScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after panic: HTTP %d", resp.StatusCode)
	}
	if got := waitStatus(t, ts, next.ID, statusDone); got.Done != 2 {
		t.Fatalf("job after contained panic = %+v, want done with 2 cells", got)
	}
}

// TestHealthzReportsQueueAndStore pins the health body's backpressure and
// durability fields.
func TestHealthzReportsQueueAndStore(t *testing.T) {
	_, ts := newTestServer(t, Options{QueueDepth: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v HealthView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Status != "ok" || v.QueueCapacity != 7 || v.QueueDepth != 0 || v.Store != "disabled" {
		t.Fatalf("healthz without a store = %+v", v)
	}

	st := openStore(t, t.TempDir())
	defer st.Close()
	_, ts2 := newTestServer(t, Options{Store: st})
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var v2 HealthView
	if err := json.NewDecoder(resp2.Body).Decode(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Store != "ok" {
		t.Fatalf("healthz with a store = %+v, want store ok", v2)
	}

	// A wedged journal must be visible, and the daemon must keep serving.
	if err := faultinject.Arm("store.append.before:error@1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	jv, resp3 := postScenario(t, ts2, tinyScenario)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("submit onto wedging store: HTTP %d", resp3.StatusCode)
	}
	faultinject.Disarm()
	waitStatus(t, ts2, jv.ID, statusDone)
	resp4, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var v4 HealthView
	if err := json.NewDecoder(resp4.Body).Decode(&v4); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v4.Store, "wedged: ") {
		t.Fatalf("healthz after store failure = %+v, want a wedged store report", v4)
	}
}

// TestQueueFullCarriesRetryAfter asserts the 503 rejection carries the
// Retry-After hint backoff clients key on.
func TestQueueFullCarriesRetryAfter(t *testing.T) {
	slow := `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Uniform"], "requests": 2000000, "seed": 1}`
	_, ts := newTestServer(t, Options{QueueDepth: 1, Runners: 1,
		Client: core.NewClient(core.WithWorkers(1))})
	first, resp := postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	waitStatus(t, ts, first.ID, statusRunning)
	if _, resp = postScenario(t, ts, slow); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", resp.StatusCode)
	}
	_, resp = postScenario(t, ts, slow)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit: HTTP %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("queue-full 503 carries no Retry-After header")
	}
	// Unblock the runner so Cleanup's Close does not wait out the slow job.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}
}

// TestMiddleJobPanicsSiblingsSurvive runs three jobs through one runner with
// a panic armed to land in the middle job's first cell (jobs are serialized,
// two cell executions each, so hit 3 is job two): exactly that job must
// fail, and both siblings must complete in the same process.
func TestMiddleJobPanicsSiblingsSurvive(t *testing.T) {
	defer faultinject.Disarm()
	_, ts := newTestServer(t, Options{Runners: 1, Client: core.NewClient(core.WithWorkers(1))})
	if err := faultinject.Arm("core.cell.run:panic@3"); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		v, resp := postScenario(t, ts, tinyScenario)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	statuses := make([]string, len(ids))
	for i, id := range ids {
		deadline := time.Now().Add(30 * time.Second)
		for {
			v, _ := getStatus(t, ts, id)
			if v.Status == statusDone || v.Status == statusFailed {
				statuses[i] = v.Status
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck at %q", id, v.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	want := []string{statusDone, statusFailed, statusDone}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("job statuses = %v, want %v (panic contained to the middle job)", statuses, want)
		}
	}
}
