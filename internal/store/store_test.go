package store

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/sim"
)

var testScenario = json.RawMessage(`{"configs":[{"preset":"XBar/OCM"}],"workloads":["Uniform"],"requests":100}`)

func cell(idx int, cycles uint64) core.CellResult {
	return core.CellResult{Index: idx, Row: idx, Col: 0, Workload: "Uniform", Config: "XBar/OCM",
		Result: core.Result{Config: "XBar/OCM", Workload: "Uniform", Requests: 100, Cycles: sim.Time(cycles)}}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	sub := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	if err := s.AppendSubmit("job-000001", testScenario, 2, sub, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	c0, c1 := cell(0, 100), cell(1, 200)
	c1.Index, c1.Row = 1, 1
	if err := s.AppendCell("job-000001", c0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCell("job-000001", c1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendStatus("job-000001", "done", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	jobs := s2.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	j := jobs[0]
	if j.ID != "job-000001" || j.Total != 2 || j.Status != "done" ||
		j.Timeout != 3*time.Minute || !j.Submitted.Equal(sub) {
		t.Fatalf("replayed job = %+v", j)
	}
	if string(j.Scenario) != string(testScenario) {
		t.Fatalf("scenario round-trip: %s", j.Scenario)
	}
	if len(j.Cells) != 2 || j.Cells[0].Index != 0 || j.Cells[1].Index != 1 {
		t.Fatalf("cells = %+v", j.Cells)
	}
}

func TestInterruptedJobHasNoStatus(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.AppendSubmit("job-000001", testScenario, 4, time.Now().UTC(), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCell("job-000001", cell(2, 50)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	jobs := mustOpen(t, dir).Jobs()
	if len(jobs) != 1 || jobs[0].Status != "" || len(jobs[0].Cells) != 1 {
		t.Fatalf("interrupted job = %+v", jobs)
	}
}

func TestDuplicateCellsDeduplicated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.AppendSubmit("j", testScenario, 1, time.Now().UTC(), 0)
	s.AppendCell("j", cell(0, 100))
	s.AppendCell("j", cell(0, 100))
	s.Close()
	jobs := mustOpen(t, dir).Jobs()
	if len(jobs[0].Cells) != 1 {
		t.Fatalf("duplicate cell survived replay: %d cells", len(jobs[0].Cells))
	}
}

// TestTornTailIsTruncated hand-corrupts the journal tail three ways — a
// frame cut mid-payload, a frame cut mid-header, a CRC flip — and asserts
// each reopens to exactly the intact prefix, with the debris physically
// truncated so later appends extend a clean file.
func TestTornTailIsTruncated(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"mid-payload", func(t *testing.T, path string) { chop(t, path, 5) }},
		{"mid-header", func(t *testing.T, path string) {
			// A crash can also land mid-frame-header: append 4 stray bytes
			// of a half-written length word to an otherwise intact file.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{9, 0, 0, 0})
			f.Close()
		}},
		{"crc-flip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir)
			s.AppendSubmit("j", testScenario, 2, time.Now().UTC(), 0)
			s.AppendCell("j", cell(0, 100))
			s.AppendCell("j", cell(1, 200)) // this frame gets damaged
			path := s.f.Name()
			s.Close()
			c.mut(t, path)

			s2 := mustOpen(t, dir)
			jobs := s2.Jobs()
			if len(jobs) != 1 {
				t.Fatalf("replayed %d jobs, want 1", len(jobs))
			}
			wantCells := 1
			if c.name == "mid-header" {
				wantCells = 2 // the damage was appended after an intact file
			}
			if len(jobs[0].Cells) != wantCells {
				t.Fatalf("replayed %d cells, want %d", len(jobs[0].Cells), wantCells)
			}
			// The file must now end cleanly: append and reopen once more.
			if err := s2.AppendStatus("j", "done", ""); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			jobs = mustOpen(t, dir).Jobs()
			if jobs[0].Status != "done" {
				t.Fatalf("append after truncation lost: %+v", jobs[0])
			}
		})
	}
}

// chop removes the last n bytes of the file.
func chop(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	payload, _ := json.Marshal(Record{Type: "header", Schema: Schema + 1})
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(frame[8:], payload)
	if err := os.WriteFile(filepath.Join(dir, "journal-000001.wal"), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{})
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Open of future-schema journal: %v, want schema error", err)
	}
}

func TestCompactDropsEvictedJobs(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		s.AppendSubmit(id, testScenario, 1, time.Now().UTC(), 0)
		s.AppendCell(id, cell(0, 100))
		s.AppendStatus(id, "done", "")
	}
	before := s.f.Name()
	if err := s.Compact(func(id string) bool { return id != "job-000001" }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(before); !os.IsNotExist(err) {
		t.Fatalf("old segment %s still present after compaction", before)
	}
	// Appends continue into the new segment and everything replays.
	if err := s.AppendSubmit("job-000004", testScenario, 1, time.Now().UTC(), 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	jobs := mustOpen(t, dir).Jobs()
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	want := []string{"job-000002", "job-000003", "job-000004"}
	if len(ids) != 3 || ids[0] != want[0] || ids[1] != want[1] || ids[2] != want[2] {
		t.Fatalf("jobs after compaction = %v, want %v", ids, want)
	}
}

func TestOpenPrefersHighestSegment(t *testing.T) {
	// A crash between compaction's rename and the old segment's deletion
	// leaves two segments; the higher (newer) one is authoritative.
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.AppendSubmit("keep", testScenario, 1, time.Now().UTC(), 0)
	s.Close()
	// Fabricate a stale lower segment by renaming the real one up.
	if err := os.Rename(filepath.Join(dir, "journal-000001.wal"),
		filepath.Join(dir, "journal-000002.wal")); err != nil {
		t.Fatal(err)
	}
	stale := mustOpen(t, t.TempDir())
	stale.AppendSubmit("stale", testScenario, 1, time.Now().UTC(), 0)
	stale.Close()
	raw, err := os.ReadFile(filepath.Join(stale.dir, "journal-000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal-000001.wal"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "keep" {
		t.Fatalf("jobs = %+v, want only the higher segment's", jobs)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal-000001.wal")); !os.IsNotExist(err) {
		t.Error("superseded lower segment not removed at open")
	}
}

func TestEmptyAndFreshDirectories(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if jobs := s.Jobs(); len(jobs) != 0 {
		t.Fatalf("fresh store has %d jobs", len(jobs))
	}
	s.Close()
	// Reopen of a header-only journal.
	s2 := mustOpen(t, dir)
	if jobs := s2.Jobs(); len(jobs) != 0 {
		t.Fatalf("header-only store has %d jobs", len(jobs))
	}
}
