package store

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"corona/internal/faultinject"
)

// scriptedAppends drives a fixed sequence of appends against s, stopping at
// the first error, and returns how many succeeded. The sequence is one
// submit, n-2 cells, and a terminal status — the exact write pattern of one
// served job.
func scriptedAppends(s *Store, n int) (ok int, err error) {
	if err = s.AppendSubmit("job-000001", testScenario, n-2, time.Now().UTC(), 0); err != nil {
		return 0, err
	}
	ok++
	for i := 0; i < n-2; i++ {
		if err = s.AppendCell("job-000001", cell(i, uint64(100*i+1))); err != nil {
			return ok, err
		}
		ok++
	}
	if err = s.AppendStatus("job-000001", "done", ""); err != nil {
		return ok, err
	}
	return ok + 1, nil
}

// durableAfterCrash is what each fault point promises survives the crash:
// the failing append itself is durable only for the post-write "sync"
// point, where the frame hit the file before the simulated death.
func durableAfterCrash(point string, completed int) int {
	if point == "store.append.sync" {
		return completed + 1
	}
	return completed
}

// TestChaosCrashAtEveryWritePoint kills the store (via fault injection) at
// every append ordinal of a job's write sequence, for every fault point —
// before any bytes, mid-frame (a torn half-frame reaches disk), and after
// the write — then reopens the directory and asserts the journal replays to
// exactly the durable prefix, the store stayed wedged after the hit, and
// the reopened journal accepts further appends cleanly.
func TestChaosCrashAtEveryWritePoint(t *testing.T) {
	const appends = 6 // submit + 4 cells + status
	points := []string{"store.append.before", "store.append.torn", "store.append.sync"}
	// The header frame of a fresh segment is written by Open, after arming
	// would normally happen; open the store BEFORE arming so hit 1 is the
	// first scripted append, not the header.
	for _, point := range points {
		for hit := 1; hit <= appends; hit++ {
			t.Run(fmt.Sprintf("%s@%d", point, hit), func(t *testing.T) {
				defer faultinject.Disarm()
				dir := t.TempDir()
				s, err := Open(dir, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := faultinject.Arm(fmt.Sprintf("%s:error@%d", point, hit)); err != nil {
					t.Fatal(err)
				}
				ok, err := scriptedAppends(s, appends)
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("appends completed %d, err = %v, want injected fault", ok, err)
				}
				if ok != hit-1 {
					t.Fatalf("completed %d appends before the fault, want %d", ok, hit-1)
				}
				// The wedge must latch: nothing written after the crash point.
				if err := s.AppendStatus("job-000001", "done", ""); !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("append after wedge = %v, want the latched fault", err)
				}
				if s.Err() == nil {
					t.Fatal("Err() nil on a wedged store")
				}
				s.Close()
				faultinject.Disarm()

				s2, err := Open(dir, Options{})
				if err != nil {
					t.Fatalf("reopen after crash at %s hit %d: %v", point, hit, err)
				}
				defer s2.Close()
				want := durableAfterCrash(point, ok)
				jobs := s2.Jobs()
				got := 0
				if len(jobs) > 0 {
					got = 1 + len(jobs[0].Cells)
					if jobs[0].Status != "" {
						got++
					}
				}
				if got != want {
					t.Fatalf("replayed %d records, want %d (crash at %s hit %d)", got, want, point, hit)
				}
				// Recovery must leave a journal that keeps working.
				id := "job-000002"
				if err := s2.AppendSubmit(id, testScenario, 1, time.Now().UTC(), 0); err != nil {
					t.Fatal(err)
				}
				s2.Close()
				s3, err := Open(dir, Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer s3.Close()
				found := false
				for _, j := range s3.Jobs() {
					found = found || j.ID == id
				}
				if !found {
					t.Fatal("append after recovery did not survive a further reopen")
				}
			})
		}
	}
}

// TestChaosCrashDuringCompaction kills the store between writing the
// compacted temp segment and renaming it into place: the old segment must
// stay authoritative and the temp debris must be swept at reopen.
func TestChaosCrashDuringCompaction(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"job-000001", "job-000002"} {
		s.AppendSubmit(id, testScenario, 1, time.Now().UTC(), 0)
		s.AppendStatus(id, "done", "")
	}
	if err := faultinject.Arm("store.compact.rename:error@1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(func(id string) bool { return id == "job-000002" }); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Compact = %v, want injected fault", err)
	}
	s.Close()
	faultinject.Disarm()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("crashed compaction lost jobs: %+v", jobs)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); name != "journal-000001.wal" {
			t.Errorf("debris left after recovery: %s", name)
		}
	}
}

// TestChaosProbabilisticAppendStorm drives many journals under a seeded
// probabilistic fault and asserts the invariant that matters: whatever
// subset of appends survived, reopening always yields a consistent prefix
// (cells contiguous with what was acknowledged, never a record after the
// wedge). Deterministic seeds make a failure reproducible.
func TestChaosProbabilisticAppendStorm(t *testing.T) {
	rounds := 8
	if os.Getenv("CORONA_CHAOS") != "" {
		rounds = 64
	}
	for seed := 1; seed <= rounds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer faultinject.Disarm()
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Rotate through the three points, one armed per round.
			point := []string{"store.append.before", "store.append.torn", "store.append.sync"}[seed%3]
			if err := faultinject.Arm(fmt.Sprintf("%s:error:p=0.2:seed=%d", point, seed)); err != nil {
				t.Fatal(err)
			}
			ok, err := scriptedAppends(s, 10)
			s.Close()
			faultinject.Disarm()
			if err == nil {
				ok = 10 // the fault never fired this round
			}
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			jobs := s2.Jobs()
			floor := ok // every acknowledged append must have survived
			if len(jobs) == 0 {
				if floor != 0 {
					t.Fatalf("acknowledged %d appends but replay found no job", floor)
				}
				return
			}
			got := 1 + len(jobs[0].Cells)
			if jobs[0].Status != "" {
				got++
			}
			if got < floor || got > floor+1 {
				t.Fatalf("replayed %d records with %d acknowledged (crash point %s)", got, floor, point)
			}
		})
	}
}
