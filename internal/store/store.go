// Package store persists corona-serve's job registry as a schema-versioned,
// append-only journal, so a daemon killed at any instant restarts with every
// submission, every completed cell, and every terminal status it had durably
// written — the durability layer the restart-resume guarantee is built on.
//
// On-disk layout: the journal lives in one segment file, journal-NNNNNN.wal,
// inside the store directory. A segment is a sequence of frames
//
//	uint32 payload length (little endian)
//	uint32 CRC-32C of the payload (little endian)
//	payload (one JSON-encoded Record)
//
// whose first frame is a header record carrying the schema version. Appends
// go to the end of the highest-numbered segment and are fsynced by default.
// Replay tolerates a truncated or torn tail — a crash mid-append leaves a
// short or CRC-invalid final frame, which Open discards by truncating the
// file back to the last good frame, exactly as if the append had never
// started. Compaction (dropping evicted jobs, squeezing out superseded
// frames) writes a brand-new next-numbered segment through a temp file and
// an atomic rename, like the sweep cache's entry writes: a crash during
// compaction leaves either the old segment intact or the new one complete,
// never a half state. Open deletes leftover temp files and any superseded
// lower-numbered segments.
//
// Failure semantics: the first append or compaction error — a real disk
// failure or an injected one (internal/faultinject, points
// "store.append.before", "store.append.torn", "store.append.sync",
// "store.compact.rename") — wedges the store: the error is remembered,
// every later operation returns it, and nothing more is written. A wedged
// store is how the chaos suite models a machine dying at a write point: no
// byte after the failure reaches the journal, and reopening the directory
// must recover everything before it. See docs/OPERATIONS.md.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"corona/internal/core"
	"corona/internal/faultinject"
)

// Schema versions the journal's record layout. Bump it whenever Record or
// core.CellResult gains, loses, or reinterprets a field; Open refuses a
// journal written by a different schema rather than resurrecting
// wrong-shaped jobs.
const Schema = 1

// maxFrame bounds a frame payload; anything larger on replay is corruption,
// not data (a whole 6x15 sweep cell is ~1 KiB).
const maxFrame = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journal frame's payload. Type selects which fields are
// meaningful.
type Record struct {
	// Type is "header", "submit", "cell", or "status".
	Type string `json:"type"`
	// Schema is set on header records only.
	Schema int `json:"schema,omitempty"`
	// Job identifies the job every non-header record belongs to.
	Job string `json:"job,omitempty"`

	// Submit fields: the raw scenario JSON exactly as POSTed (re-parsed on
	// resume, so a stored job replays through the same validation as a live
	// one), the matrix size, the submission time, and the optional per-job
	// wall-clock deadline in nanoseconds.
	Scenario  json.RawMessage `json:"scenario,omitempty"`
	Total     int             `json:"total,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Timeout   time.Duration   `json:"timeout,omitempty"`

	// Cell is one completed sweep cell.
	Cell *core.CellResult `json:"cell,omitempty"`

	// Status fields: a terminal state ("done", "failed", "canceled",
	// "timed_out") and its error detail.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// JobState is one job as reconstructed by replay: its submission, every
// durably recorded cell (deduplicated by index, in append order), and its
// terminal status — or Status == "" for a job the daemon was still working
// on when it died, which the server resumes.
type JobState struct {
	ID        string
	Scenario  json.RawMessage
	Total     int
	Submitted time.Time
	Timeout   time.Duration
	Cells     []core.CellResult
	Status    string
	Error     string
}

// Options configures Open.
type Options struct {
	// Logger receives replay summaries, tail-truncation warnings, and wedge
	// reports. Nil uses slog.Default().
	Logger *slog.Logger
	// NoSync skips the per-append fsync. Appends then survive a process
	// crash (the OS has the bytes) but not a machine crash; meant for tests
	// and benchmarks.
	NoSync bool
}

// Store is an open journal. Its methods are safe for concurrent use.
type Store struct {
	dir string
	log *slog.Logger
	nos bool

	mu     sync.Mutex
	f      *os.File
	seg    int
	broken error

	jobs  map[string]*JobState
	order []string // job ids in first-submit order
	seen  map[string]map[int]bool
}

// Open opens (creating if needed) the journal in dir and replays it.
func Open(dir string, opts Options) (*Store, error) {
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:  dir,
		log:  log,
		nos:  opts.NoSync,
		jobs: make(map[string]*JobState),
		seen: make(map[string]map[int]bool),
	}
	seg, stale, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	// Superseded segments and orphaned temp files are debris from a
	// completed (or crashed) compaction; the highest segment is the journal.
	for _, p := range stale {
		os.Remove(p)
	}
	if seg == 0 {
		seg = 1
	}
	s.seg = seg
	f, err := os.OpenFile(s.segPath(seg), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) segPath(seg int) string {
	return filepath.Join(s.dir, fmt.Sprintf("journal-%06d.wal", seg))
}

// scanSegments returns the highest segment number in dir (0 when none) and
// the paths of everything superseded: lower-numbered segments and leftover
// compaction temp files.
func scanSegments(dir string) (int, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, nil, fmt.Errorf("store: %w", err)
	}
	highest, paths := 0, map[int]string{}
	var stale []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			stale = append(stale, filepath.Join(dir, name))
			continue
		}
		num, ok := strings.CutPrefix(name, "journal-")
		num, ok2 := strings.CutSuffix(num, ".wal")
		if !ok || !ok2 {
			continue
		}
		n, err := strconv.Atoi(num)
		if err != nil || n <= 0 {
			continue
		}
		paths[n] = filepath.Join(dir, name)
		if n > highest {
			highest = n
		}
	}
	for n, p := range paths {
		if n != highest {
			stale = append(stale, p)
		}
	}
	return highest, stale, nil
}

// replay reads the active segment, applies every intact frame, truncates a
// torn tail, and leaves the file positioned for appends. A fresh (empty)
// segment gets its header frame written here.
func (s *Store) replay() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	var (
		off     int64 // end of the last intact frame
		n       int
		header  bool
		hdr     [8]byte
		payload []byte
	)
	for off < size {
		if size-off < int64(len(hdr)) {
			break // torn frame header
		}
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			return fmt.Errorf("store: replay read: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFrame || off+8+int64(length) > size {
			break // absurd length or torn payload
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := s.f.ReadAt(payload, off+8); err != nil {
			return fmt.Errorf("store: replay read: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != crc {
			break // torn or bit-flipped frame
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // CRC-valid JSON garbage should be impossible; treat as tail
		}
		if !header {
			if rec.Type != "header" {
				return fmt.Errorf("store: %s does not start with a header frame", s.f.Name())
			}
			if rec.Schema != Schema {
				return fmt.Errorf("store: journal schema %d, this build speaks %d (migrate or move the directory aside)", rec.Schema, Schema)
			}
			header = true
		} else {
			s.apply(rec)
		}
		off += 8 + int64(length)
		n++
	}
	if off < size {
		s.log.Warn("store: truncating torn journal tail",
			"segment", s.f.Name(), "good_bytes", off, "dropped_bytes", size-off)
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	if !header {
		// Brand-new segment (or one that died before the header landed).
		if err := s.writeFrame(Record{Type: "header", Schema: Schema}); err != nil {
			return err
		}
		return nil
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	interrupted := 0
	for _, js := range s.jobs {
		if js.Status == "" {
			interrupted++
		}
	}
	s.log.Info("store: journal replayed",
		"segment", s.f.Name(), "frames", n, "jobs", len(s.jobs), "interrupted", interrupted)
	return nil
}

// apply folds one replayed (or just-appended) record into the job state.
func (s *Store) apply(rec Record) {
	switch rec.Type {
	case "submit":
		if rec.Job == "" {
			return
		}
		if _, dup := s.jobs[rec.Job]; dup {
			s.log.Warn("store: duplicate submit record ignored", "job", rec.Job)
			return
		}
		s.jobs[rec.Job] = &JobState{
			ID:        rec.Job,
			Scenario:  rec.Scenario,
			Total:     rec.Total,
			Submitted: rec.Submitted,
			Timeout:   rec.Timeout,
		}
		s.order = append(s.order, rec.Job)
		s.seen[rec.Job] = make(map[int]bool)
	case "cell":
		js := s.jobs[rec.Job]
		if js == nil || rec.Cell == nil || s.seen[rec.Job][rec.Cell.Index] {
			return
		}
		s.seen[rec.Job][rec.Cell.Index] = true
		js.Cells = append(js.Cells, *rec.Cell)
	case "status":
		if js := s.jobs[rec.Job]; js != nil {
			js.Status, js.Error = rec.Status, rec.Error
		}
	}
}

// writeFrame encodes rec, writes its frame at the current file position, and
// fsyncs (unless NoSync). The fault points bracket each sub-step so the
// chaos suite can kill the store before, during (a torn half-frame reaches
// the disk), or after the write. Any failure wedges the store. Callers hold
// s.mu (or are Open's single-threaded replay).
func (s *Store) writeFrame(rec Record) error {
	if err := faultinject.Fire("store.append.before"); err != nil {
		return s.wedge(err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return s.wedge(fmt.Errorf("store: encoding record: %w", err))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	if err := faultinject.Fire("store.append.torn"); err != nil {
		// Simulated crash mid-write: half the frame reaches the disk, the
		// rest never does. Replay must discard it.
		s.f.Write(frame[:len(frame)/2])
		return s.wedge(err)
	}
	if _, err := s.f.Write(frame); err != nil {
		return s.wedge(fmt.Errorf("store: append: %w", err))
	}
	if err := faultinject.Fire("store.append.sync"); err != nil {
		// Simulated crash after the write: the frame is on disk (the chaos
		// suite asserts it survives) but the caller sees a dead store.
		return s.wedge(err)
	}
	if !s.nos {
		if err := s.f.Sync(); err != nil {
			return s.wedge(fmt.Errorf("store: fsync: %w", err))
		}
	}
	return nil
}

// wedge latches the store's first error: every later operation returns it
// and no further bytes are written, so nothing can land in the journal
// after a torn frame.
func (s *Store) wedge(err error) error {
	if s.broken == nil {
		s.broken = err
		s.log.Error("store: wedged; no further writes will be attempted", "err", err)
	}
	return s.broken
}

// append serializes, writes, and applies one record.
func (s *Store) append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if err := s.writeFrame(rec); err != nil {
		return err
	}
	s.apply(rec)
	return nil
}

// AppendSubmit durably records a new job: its raw scenario JSON, matrix
// size, submission time, and optional deadline.
func (s *Store) AppendSubmit(id string, scenario json.RawMessage, total int, submitted time.Time, timeout time.Duration) error {
	if id == "" {
		return errors.New("store: empty job id")
	}
	return s.append(Record{Type: "submit", Job: id, Scenario: scenario,
		Total: total, Submitted: submitted, Timeout: timeout})
}

// AppendCell durably records one completed cell of a job.
func (s *Store) AppendCell(id string, cell core.CellResult) error {
	return s.append(Record{Type: "cell", Job: id, Cell: &cell})
}

// AppendStatus durably records a job's terminal status. Jobs without one
// are considered interrupted and are resumed by the next daemon to open the
// store.
func (s *Store) AppendStatus(id, status, errMsg string) error {
	return s.append(Record{Type: "status", Job: id, Status: status, Error: errMsg})
}

// Jobs returns every known job in first-submit order. The returned states
// are copies; mutating them does not affect the store.
func (s *Store) Jobs() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobState, 0, len(s.order))
	for _, id := range s.order {
		js := s.jobs[id]
		cp := *js
		cp.Cells = append([]core.CellResult(nil), js.Cells...)
		out = append(out, cp)
	}
	return out
}

// Err returns the error that wedged the store, or nil while it is healthy.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Compact rewrites the journal as a fresh next-numbered segment containing
// only the jobs keep reports true for (nil keeps everything), dropping
// evicted jobs and duplicate frames. The new segment is written to a temp
// file, fsynced, and renamed into place — a crash mid-compaction leaves the
// old segment authoritative — and only then is the old segment deleted.
func (s *Store) Compact(keep func(id string) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	next := s.seg + 1
	dst := s.segPath(next)
	tmp, err := os.CreateTemp(s.dir, "compact-*.tmp")
	if err != nil {
		return s.wedge(fmt.Errorf("store: compact: %w", err))
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	var kept []string
	for _, id := range s.order {
		if keep == nil || keep(id) {
			kept = append(kept, id)
		}
	}
	recs := []Record{{Type: "header", Schema: Schema}}
	for _, id := range kept {
		js := s.jobs[id]
		recs = append(recs, Record{Type: "submit", Job: id, Scenario: js.Scenario,
			Total: js.Total, Submitted: js.Submitted, Timeout: js.Timeout})
		for i := range js.Cells {
			recs = append(recs, Record{Type: "cell", Job: id, Cell: &js.Cells[i]})
		}
		if js.Status != "" {
			recs = append(recs, Record{Type: "status", Job: id, Status: js.Status, Error: js.Error})
		}
	}
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return s.wedge(fmt.Errorf("store: compact encode: %w", err))
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := tmp.Write(hdr[:]); err == nil {
			_, err = tmp.Write(payload)
		}
		if err != nil {
			tmp.Close()
			return s.wedge(fmt.Errorf("store: compact write: %w", err))
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return s.wedge(fmt.Errorf("store: compact sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return s.wedge(fmt.Errorf("store: compact close: %w", err))
	}
	if err := faultinject.Fire("store.compact.rename"); err != nil {
		return s.wedge(err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return s.wedge(fmt.Errorf("store: compact rename: %w", err))
	}
	syncDir(s.dir)
	f, err := os.OpenFile(dst, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return s.wedge(fmt.Errorf("store: compact reopen: %w", err))
	}
	old := s.f
	oldPath := s.segPath(s.seg)
	s.f, s.seg = f, next
	old.Close()
	os.Remove(oldPath)
	// Drop evicted jobs from the in-memory state to match the new segment.
	if len(kept) != len(s.order) {
		keptSet := make(map[string]bool, len(kept))
		for _, id := range kept {
			keptSet[id] = true
		}
		for id := range s.jobs {
			if !keptSet[id] {
				delete(s.jobs, id)
				delete(s.seen, id)
			}
		}
		s.order = kept
	}
	s.log.Info("store: compacted", "segment", dst, "jobs", len(kept), "frames", len(recs))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss;
// best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close syncs and closes the journal. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if s.broken == nil && !s.nos {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// SortCells orders cells by matrix index — the canonical order restart-
// resume equivalence is asserted in, since completion order is inherently
// timing-dependent at any worker count.
func SortCells(cells []core.CellResult) {
	sort.Slice(cells, func(a, b int) bool { return cells[a].Index < cells[b].Index })
}
