package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"reflect"
	"testing"
	"testing/quick"

	"corona/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 0, Thread: 0, Addr: 0x1000, Write: false},
		{Time: 100, Thread: 1023, Addr: 0xdeadbeef, Write: true},
		{Time: 1 << 40, Thread: 512, Addr: 0, Sync: true},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, uint64(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 3 {
		t.Fatalf("Count = %d, want 3", r.Count())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, recs)
	}
}

func TestStreamingCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, CountUnknown)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Write(Record{Time: sim.Time(i)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("read %d records, want 5", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACE-------")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Write(Record{Time: 1})
	w.w.Flush() // flush without count validation: simulate a crashed writer
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record should read: %v", err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated read err = %v, want truncation error", err)
	}
}

func TestWriteBeyondCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	if err := w.Write(Record{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Fatal("write beyond declared count succeeded")
	}
}

func TestFlushCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Write(Record{})
	if err := w.Flush(); err == nil {
		t.Fatal("flush with missing records succeeded")
	}
}

func TestClusterMapping(t *testing.T) {
	r := Record{Thread: 17}
	if got := r.Cluster(16); got != 1 {
		t.Errorf("Cluster(16) = %d, want 1", got)
	}
	if got := (Record{Thread: 1023}).Cluster(16); got != 63 {
		t.Errorf("thread 1023 cluster = %d, want 63", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(times []uint32, seed uint64) bool {
		rng := sim.NewRand(seed)
		recs := make([]Record, len(times))
		for i, tm := range times {
			recs[i] = Record{
				Time:   sim.Time(tm),
				Thread: uint16(rng.Intn(1024)),
				Addr:   rng.Uint64(),
				Write:  rng.Intn(2) == 0,
				Sync:   rng.Intn(10) == 0,
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, uint64(len(recs)))
		if err != nil {
			return false
		}
		for _, r := range recs {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := ReadAll(rd)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.after -= len(p)
	return len(p), nil
}

func TestWriterErrorPropagation(t *testing.T) {
	// Header write fails immediately.
	if _, err := NewWriter(&failWriter{after: 0}, 1); err == nil {
		// The bufio layer may defer the error to Flush; accept either, but
		// a full write-then-flush cycle must surface it.
		w, _ := NewWriter(&failWriter{after: 0}, 1)
		w.Write(Record{})
		if w.Flush() == nil {
			t.Fatal("failing writer never surfaced an error")
		}
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, CountUnknown)
	if w.Count() != 0 {
		t.Fatal("fresh writer count != 0")
	}
	w.Write(Record{})
	w.Write(Record{})
	if w.Count() != 2 {
		t.Fatalf("Count = %d, want 2", w.Count())
	}
}

func TestReaderShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("COR")); err == nil {
		t.Fatal("short magic accepted")
	}
	if _, err := NewReader(bytes.NewBufferString(Magic + "1234")); err == nil {
		t.Fatal("short count accepted")
	}
}

func TestReaderCountUnknownTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, CountUnknown)
	w.Write(Record{Time: 1})
	w.Flush()
	// Chop mid-record.
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewBuffer(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated streaming read err = %v, want truncation error", err)
	}
}

func TestReadAllPropagatesError(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Write(Record{})
	w.w.Flush()
	r, _ := NewReader(&buf)
	if _, err := ReadAll(r); err == nil {
		t.Fatal("ReadAll swallowed a truncation error")
	}
}

// BenchmarkRecordIO backs the package comment's buffering numbers: the
// record codec against its own 64 KiB bufio layer, versus the same codec
// forced through an unbuffered pipe (one syscall-grade boundary per
// record), which is what naive per-record file I/O would pay.
func BenchmarkRecordIO(b *testing.B) {
	rec := Record{Time: 12345, Thread: 7, Addr: 0xdeadbeef, Write: true}
	b.Run("buffered", func(b *testing.B) {
		w, err := NewWriter(io.Discard, CountUnknown)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Write(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unbuffered-pipe", func(b *testing.B) {
		pr, pw, err := os.Pipe()
		if err != nil {
			b.Fatal(err)
		}
		defer pr.Close()
		defer pw.Close()
		go func() {
			buf := make([]byte, 1<<16)
			for {
				if _, err := pr.Read(buf); err != nil {
					return
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// One write per record, no buffer in between — the shape of
			// per-record file I/O without the bufio layer.
			var buf [recordBytes]byte
			binary.LittleEndian.PutUint64(buf[0:], uint64(rec.Time))
			binary.LittleEndian.PutUint16(buf[8:], rec.Thread)
			binary.LittleEndian.PutUint64(buf[10:], rec.Addr)
			if _, err := pw.Write(buf[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
