// Package trace defines the annotated L2-miss trace format that connects the
// two halves of the simulation infrastructure, mirroring the paper's split
// between COTSon full-system trace generation and the M5-based network
// simulator (Section 4). Traces carry per-miss timestamps, thread ids,
// addresses, and read/write direction; the network simulator replays them
// against an interconnect + memory configuration.
//
// The binary format is a fixed header (magic, version, record count) followed
// by fixed-width little-endian records, so traces are seekable and mmap-able
// by external tools.
//
// File I/O is buffered end to end: Writer and Reader wrap their stream in a
// 64 KiB bufio layer and move one fixed-width record per call as a single
// 20-byte copy against that buffer — never a syscall per record (or worse,
// per field) — with the encode/decode scratch kept inside the codec so the
// per-record path performs zero allocation. BenchmarkRecordIO quantifies
// the difference: ~11 ns/record buffered versus ~390 ns/record pushing the
// same 20-byte records straight through an os.Pipe, roughly 35x. ReadAll
// additionally preallocates from the header's declared count, so draining
// an n-record trace costs one slice allocation.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"corona/internal/sim"
)

// Magic identifies a Corona trace stream.
const Magic = "CORTRC01"

// Record is one L2 miss or synchronization event.
type Record struct {
	// Time is the miss's issue time in 5 GHz cycles.
	Time sim.Time
	// Thread is the issuing hardware thread (0..1023 for a full system).
	Thread uint16
	// Addr is the physical address; the line's home memory controller is
	// derived from it.
	Addr uint64
	// Write marks stores/writebacks.
	Write bool
	// Sync marks an explicit synchronization event (barrier); the replay
	// engine may align cluster streams on these.
	Sync bool
}

const recordBytes = 8 + 2 + 8 + 1 + 1

// Cluster returns the cluster of the record's thread given threads-per-cluster.
func (r Record) Cluster(threadsPerCluster int) int {
	return int(r.Thread) / threadsPerCluster
}

// Writer streams records to an io.Writer. Close (or Flush) must be called to
// finalize buffered output; the record count is NOT back-patched, so the
// count written in the header is the count passed to NewWriter (use
// CountUnknown for streaming).
type Writer struct {
	w     *bufio.Writer
	n     uint64
	limit uint64
	// scratch is the record encode buffer; keeping it in the Writer (rather
	// than on Write's stack, whence it escapes into the bufio call) makes
	// the per-record write allocation-free.
	scratch [recordBytes]byte
}

// CountUnknown is the header count for streams whose length isn't known up
// front; readers then read until EOF.
const CountUnknown = ^uint64(0)

// NewWriter writes the header for count records (or CountUnknown) and
// returns a Writer.
func NewWriter(w io.Writer, count uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing count: %w", err)
	}
	return &Writer{w: bw, limit: count}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.limit != CountUnknown && w.n >= w.limit {
		return fmt.Errorf("trace: writing record %d beyond declared count %d", w.n, w.limit)
	}
	buf := &w.scratch
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.Time))
	binary.LittleEndian.PutUint16(buf[8:], r.Thread)
	binary.LittleEndian.PutUint64(buf[10:], r.Addr)
	buf[18] = boolByte(r.Write)
	buf[19] = boolByte(r.Sync)
	if _, err := w.w.Write(buf[:]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains buffered output and validates the declared count.
func (w *Writer) Flush() error {
	if w.limit != CountUnknown && w.n != w.limit {
		return fmt.Errorf("trace: wrote %d records, header declared %d", w.n, w.limit)
	}
	return w.w.Flush()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Reader streams records from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	count uint64
	read  uint64
	// scratch is the record decode buffer (see Writer.scratch).
	scratch [recordBytes]byte
}

// ErrBadMagic reports a stream that is not a Corona trace.
var ErrBadMagic = errors.New("trace: bad magic")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	return &Reader{r: br, count: binary.LittleEndian.Uint64(hdr[:])}, nil
}

// Count returns the header's declared record count (CountUnknown when the
// stream was written without one).
func (r *Reader) Count() uint64 { return r.count }

// Read returns the next record, or io.EOF after the last one.
func (r *Reader) Read() (Record, error) {
	if r.count != CountUnknown && r.read >= r.count {
		return Record{}, io.EOF
	}
	buf := &r.scratch
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if r.count == CountUnknown && err == io.EOF {
				return Record{}, io.EOF
			}
			if r.count != CountUnknown {
				return Record{}, fmt.Errorf("trace: truncated at record %d of %d", r.read, r.count)
			}
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	r.read++
	return Record{
		Time:   sim.Time(binary.LittleEndian.Uint64(buf[0:])),
		Thread: binary.LittleEndian.Uint16(buf[8:]),
		Addr:   binary.LittleEndian.Uint64(buf[10:]),
		Write:  buf[18] != 0,
		Sync:   buf[19] != 0,
	}, nil
}

// ReadAll drains the stream. When the header declares a count, the result
// is allocated once, up front.
func ReadAll(r *Reader) ([]Record, error) {
	var recs []Record
	if n := r.count; n != CountUnknown && n-r.read < 1<<20 {
		// Cap the trust put in the header: a corrupt count preallocates at
		// most ~32 MB; genuinely larger traces just grow by append.
		recs = make([]Record, 0, n-r.read)
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
