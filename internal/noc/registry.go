package noc

import (
	"fmt"
	"sort"
	"sync"

	"corona/internal/sim"
)

// FabricParams is the generic sizing input a fabric builder receives: the
// endpoint count the system requires plus fabric-specific integer overrides.
// A nil (or empty) Params map selects the fabric's published defaults;
// builders must reject unknown keys with a descriptive error, so a typo in a
// JSON config fails loudly instead of silently simulating the default.
type FabricParams struct {
	// Clusters is the number of network endpoints the system will attach.
	Clusters int
	// Params holds fabric-specific sizing overrides, keyed by the names each
	// builder documents (e.g. "bytes_per_cycle", "recv_buffer").
	Params map[string]int
}

// Get returns the override for key, or def when absent.
func (p FabricParams) Get(key string, def int) int {
	if v, ok := p.Params[key]; ok {
		return v
	}
	return def
}

// CheckKeys returns an error if Params contains a key outside known — the
// shared typo guard every builder applies before interpreting overrides.
func (p FabricParams) CheckKeys(fabric string, known ...string) error {
	for k := range p.Params {
		ok := false
		for _, w := range known {
			if k == w {
				ok = true
				break
			}
		}
		if !ok {
			sort.Strings(known)
			return fmt.Errorf("noc: fabric %q has no parameter %q (valid: %v)", fabric, k, known)
		}
	}
	return nil
}

// BuildFunc constructs a fabric's network model on kernel k.
type BuildFunc func(k *sim.Kernel, p FabricParams) (Network, error)

// Fabric describes one registered interconnect: how to build it, how to
// label it, and the analytic metadata the experiment layer reports without
// simulating (bisection bandwidth, power, channel utilization). Everything
// the core system assembly needs flows through this descriptor, so adding a
// topology never touches package core — see docs/ARCHITECTURE.md for the
// walkthrough.
type Fabric struct {
	// Name is the registry key, by convention lower-case ("xbar", "hmesh").
	Name string
	// Display is the label fragment used in configuration names ("XBar" in
	// "XBar/OCM"). Defaults to Name when empty.
	Display string
	// Description is a one-line summary for catalogs and error messages.
	Description string

	// Build constructs the network. Required.
	Build BuildFunc
	// Check validates params without building (used by config loaders to
	// reject bad files before any simulation starts). Optional; builders
	// whose constructors are cheap may leave it nil and rely on Build.
	Check func(p FabricParams) error

	// BisectionBytesPerSec returns the analytic bisection bandwidth for the
	// given params, in bytes/second. Optional.
	BisectionBytesPerSec func(p FabricParams) float64
	// MinTransitCycles is the best-case endpoint-to-endpoint transit latency
	// in cycles (analytic, uncontended). Zero when not stated.
	MinTransitCycles sim.Time

	// PowerW returns the on-chip network power of a finished run from the
	// network's counters and the elapsed simulated time (Figure 11's model).
	// Optional; nil reports zero.
	PowerW func(st Stats, elapsed sim.Time) float64
	// Utilization, when non-nil, reports mean data-channel occupancy over a
	// run (0..1) for crossbar-style fabrics whose channel utilization is a
	// first-class figure of merit. Mesh-style fabrics, whose link-occupancy
	// metric is not comparable, leave it nil.
	Utilization func(n Network, elapsed sim.Time) float64
}

// label returns the display fragment for configuration names.
func (f Fabric) label() string {
	if f.Display != "" {
		return f.Display
	}
	return f.Name
}

// registry is the process-wide fabric catalog. Built-in fabrics register
// from init (package config imports them for side effect); user fabrics
// register through the corona façade at startup. Reads vastly outnumber
// writes, hence the RWMutex.
var registry = struct {
	sync.RWMutex
	fabrics map[string]Fabric
}{fabrics: map[string]Fabric{}}

// Register adds f to the fabric catalog. It panics on an empty name, a nil
// builder, or a duplicate registration — all programmer errors that should
// fail at startup, not mid-sweep.
func Register(f Fabric) {
	if f.Name == "" {
		panic("noc: Register with empty fabric name")
	}
	if f.Build == nil {
		panic(fmt.Sprintf("noc: fabric %q registered without a builder", f.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.fabrics[f.Name]; dup {
		panic(fmt.Sprintf("noc: fabric %q registered twice", f.Name))
	}
	registry.fabrics[f.Name] = f
}

// Lookup returns the fabric registered under name.
func Lookup(name string) (Fabric, bool) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.fabrics[name]
	return f, ok
}

// DisplayName returns the registered display label for name, or name itself
// when unregistered (so configuration labels degrade gracefully).
func DisplayName(name string) string {
	if f, ok := Lookup(name); ok {
		return f.label()
	}
	return name
}

// Names returns the registered fabric names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.fabrics))
	for n := range registry.fabrics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
