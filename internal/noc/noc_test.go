package noc

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRequest:       "request",
		KindResponse:      "response",
		KindWriteback:     "writeback",
		KindInvalidate:    "invalidate",
		KindInvalidateAck: "invalidate-ack",
		KindCoherence:     "coherence",
		Kind(200):         "kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := &Message{ID: 1, Src: 0, Dst: 63, Size: 16}
	if err := Validate(ok, 64); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	bad := []*Message{
		nil,
		{ID: 2, Src: -1, Dst: 0, Size: 16},
		{ID: 3, Src: 64, Dst: 0, Size: 16},
		{ID: 4, Src: 0, Dst: 64, Size: 16},
		{ID: 5, Src: 0, Dst: 0, Size: 0},
	}
	for i, m := range bad {
		if err := Validate(m, 64); err == nil {
			t.Errorf("case %d: invalid message accepted", i)
		}
	}
}

func TestMessageSizes(t *testing.T) {
	// The response must carry a full cache line.
	if ResponseBytes < LineBytes {
		t.Fatal("response smaller than a cache line")
	}
	if WritebackBytes < LineBytes {
		t.Fatal("writeback smaller than a cache line")
	}
}

func TestMsgPoolRecycles(t *testing.T) {
	var p MsgPool
	m := p.Acquire()
	m.ID, m.Src, m.Dst, m.Size, m.Payload = 7, 1, 2, 64, 99
	p.Release(m)
	if p.FreeLen() != 1 {
		t.Fatalf("free list holds %d, want 1", p.FreeLen())
	}
	m2 := p.Acquire()
	if m2 != m {
		t.Error("Acquire did not reuse the released message")
	}
	if m2.ID != 0 || m2.Src != 0 || m2.Dst != 0 || m2.Size != 0 || m2.Payload != 0 {
		t.Errorf("recycled message not zeroed: %+v", m2)
	}
	if p.FreeLen() != 0 {
		t.Fatalf("free list holds %d after reuse, want 0", p.FreeLen())
	}
}

func TestMsgPoolDetectsDoubleRelease(t *testing.T) {
	var p MsgPool
	m := p.Acquire()
	p.Release(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	p.Release(m)
}
