package noc

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRequest:       "request",
		KindResponse:      "response",
		KindWriteback:     "writeback",
		KindInvalidate:    "invalidate",
		KindInvalidateAck: "invalidate-ack",
		KindCoherence:     "coherence",
		Kind(200):         "kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := &Message{ID: 1, Src: 0, Dst: 63, Size: 16}
	if err := Validate(ok, 64); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	bad := []*Message{
		nil,
		{ID: 2, Src: -1, Dst: 0, Size: 16},
		{ID: 3, Src: 64, Dst: 0, Size: 16},
		{ID: 4, Src: 0, Dst: 64, Size: 16},
		{ID: 5, Src: 0, Dst: 0, Size: 0},
	}
	for i, m := range bad {
		if err := Validate(m, 64); err == nil {
			t.Errorf("case %d: invalid message accepted", i)
		}
	}
}

func TestMessageSizes(t *testing.T) {
	// The response must carry a full cache line.
	if ResponseBytes < LineBytes {
		t.Fatal("response smaller than a cache line")
	}
	if WritebackBytes < LineBytes {
		t.Fatal("writeback smaller than a cache line")
	}
}
