// Package noc defines the message and network abstractions shared by the
// optical crossbars, the optical broadcast bus, and the electrical meshes,
// and hosts the fabric registry through which the system model constructs
// its interconnect by name (Register / Lookup; see docs/ARCHITECTURE.md for
// the registry design and a walkthrough of adding a new topology).
//
// A network moves Messages between cluster endpoints. Senders inject through
// Send, which may refuse a message when the per-source injection queue is
// full (back pressure); delivery is signalled through a per-destination
// callback installed with SetDeliver. All timing is in 5 GHz cycles.
//
// Messages are pooled per network (MsgPool): a producer obtains one with
// Acquire, the network owns it from a successful Send until delivery, the
// consumer owns it until Consume — which, besides returning the receive
// buffer credit, recycles the message onto the free list. The lifecycle and
// its rules are documented in docs/PERFORMANCE.md ("Message lifecycle and
// pooling rules"); in steady state the Send→Consume path allocates nothing.
package noc

import (
	"fmt"

	"corona/internal/sim"
)

// Kind classifies a message for routing and accounting.
type Kind uint8

// Message kinds. Requests and responses implement the L2-miss transaction;
// the coherence kinds are used by the directory protocol example.
const (
	KindRequest Kind = iota
	KindResponse
	KindWriteback
	KindInvalidate
	KindInvalidateAck
	KindCoherence
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindWriteback:
		return "writeback"
	case KindInvalidate:
		return "invalidate"
	case KindInvalidateAck:
		return "invalidate-ack"
	case KindCoherence:
		return "coherence"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Canonical message sizes in bytes. A request carries address and command; a
// response carries a 64 B cache line plus header (the paper sends a line as
// 256 bits twice per 5 GHz clock, i.e. 64 B/cycle on a crossbar channel).
const (
	RequestBytes   = 16
	ResponseBytes  = 72
	LineBytes      = 64
	WritebackBytes = 80
)

// Message is one network packet. Messages are obtained from a network's
// free list (Acquire), owned by the sender until Send accepts, by the
// network until delivery, and by the consumer until Consume recycles them.
type Message struct {
	ID   uint64
	Src  int // source cluster
	Dst  int // destination cluster
	Size int // bytes on the wire
	Kind Kind

	// Issue is when the requester generated the transaction (for end-to-end
	// latency); Inject is when the network accepted it.
	Issue  sim.Time
	Inject sim.Time

	// Hops is filled in by mesh networks with the number of router-to-router
	// link traversals, for the 196 pJ/hop power model. Optical networks leave
	// it zero and account power separately.
	Hops int

	// Payload is a uint64 handle into the owning simulation's payload
	// registry (sim.Slots) for messages that carry protocol state — an
	// in-flight transaction, a coherence continuation. Plain traffic leaves
	// it zero. Keeping the slot index here instead of an interface{} value
	// means a pooled message never boxes its payload: the referent stays
	// parked in one typed registry for its whole life.
	Payload uint64

	// pooled marks a message currently sitting on a free list; Release uses
	// it to detect double-recycle misuse (e.g. a double Consume).
	pooled bool
}

// MsgPool is a per-network message free list. Network implementations embed
// it to satisfy the Acquire half of the ownership cycle and call Release
// from Consume, the mandatory retirement point; after the pool has grown to
// the network's peak in-flight population, the Send→Consume path performs
// no allocation. A MsgPool belongs to one network on one kernel goroutine;
// it is not synchronized.
type MsgPool struct {
	free []*Message
}

// Acquire returns a zeroed message, reusing a recycled one when available.
func (p *MsgPool) Acquire() *Message {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		*m = Message{}
		return m
	}
	return &Message{}
}

// Release recycles m onto the free list. Releasing a message that is
// already pooled is a lifecycle violation — almost always a double Consume
// — and panics so the misuse is caught at its source rather than surfacing
// later as two in-flight transactions sharing one message.
func (p *MsgPool) Release(m *Message) {
	if m == nil {
		panic("noc: Release of nil message")
	}
	if m.pooled {
		panic(fmt.Sprintf("noc: message %d released twice (double Consume?)", m.ID))
	}
	m.pooled = true
	p.free = append(p.free, m)
}

// FreeLen returns the number of messages currently on the free list.
func (p *MsgPool) FreeLen() int { return len(p.free) }

// DeliverFunc receives a message at its destination cluster.
type DeliverFunc func(*Message)

// Network is the interface the cluster hub uses to communicate. Both optical
// and electrical interconnects implement it.
type Network interface {
	// Name identifies the network ("xbar", "hmesh", "lmesh", ...).
	Name() string
	// Clusters returns the number of endpoints.
	Clusters() int
	// Acquire returns a zeroed message from the network's free list for the
	// caller to fill and Send. Implementations embed MsgPool, which provides
	// it (and whose Release their Consume calls to close the cycle).
	Acquire() *Message
	// Send injects msg. It returns false when the source's injection queue is
	// full; the caller must retry later (back pressure).
	Send(msg *Message) bool
	// SetDeliver installs the delivery callback for a destination cluster.
	SetDeliver(cluster int, fn DeliverFunc)
	// Consume returns one receive-buffer credit at cluster after the hub has
	// drained the delivered message m. Every delivery must eventually be
	// matched by exactly one Consume, or the network wedges — which is
	// precisely the back-pressure the paper models with finite buffers. The
	// message identifies which buffer pool (virtual network) the freed slot
	// belongs to, and Consume is also the recycle point: the network returns
	// m to its free list, so the consumer must not touch it afterwards.
	Consume(cluster int, m *Message)
	// Stats returns the network's delivery counters.
	Stats() Stats
}

// Quiescer is the optional interface of networks that can assert they hold
// no in-flight state. The warmup-fork snapshot contract
// (docs/DETERMINISM.md) requires the network to be untouched — no queued
// messages, no outstanding credits, no arbitration in progress, no scheduled
// events — at the fork barrier, so that a snapshot taken under one fabric
// restores exactly into any other.
type Quiescer interface {
	// Quiescent returns nil when the network is in its pre-divergence
	// (construction) state, and a descriptive error naming the first
	// in-flight resource otherwise.
	Quiescent() error
}

// Resetter is the optional interface of networks that can return to their
// just-constructed state in place, retaining grown buffer capacity. The
// sweep engine uses it to reuse one network (and its whole System) across
// cells of a configuration instead of rebuilding, which must be
// behaviourally indistinguishable from a fresh build — the repo's
// byte-identical determinism contract extends to pooled reuse.
type Resetter interface {
	// Reset restores construction-time state: empty queues, full credit
	// pools, zeroed statistics. Messages still held by the free-list pools
	// stay pooled (capacity is the one thing reuse keeps).
	Reset()
}

// Stats aggregates the counters every network implementation maintains.
type Stats struct {
	Messages      uint64
	Bytes         uint64
	HopTraversals uint64 // mesh only: sum over messages of per-hop link uses
}

// Valid reports whether a message is internally consistent for a network of
// n clusters. It inlines into the senders' injection hot paths; on failure
// they call Validate for the descriptive error.
func Valid(m *Message, n int) bool {
	return m != nil && uint(m.Src) < uint(n) && uint(m.Dst) < uint(n) && m.Size > 0
}

// Validate checks a message for internal consistency against a network of n
// clusters, returning a descriptive error for invalid input.
func Validate(m *Message, n int) error {
	if !Valid(m, n) {
		return validateError(m, n)
	}
	return nil
}

// validateError builds Validate's descriptive error off the hot path.
func validateError(m *Message, n int) error {
	if m == nil {
		return fmt.Errorf("noc: nil message")
	}
	if m.Src < 0 || m.Src >= n {
		return fmt.Errorf("noc: message %d source %d out of range [0,%d)", m.ID, m.Src, n)
	}
	if m.Dst < 0 || m.Dst >= n {
		return fmt.Errorf("noc: message %d destination %d out of range [0,%d)", m.ID, m.Dst, n)
	}
	return fmt.Errorf("noc: message %d has non-positive size %d", m.ID, m.Size)
}
