// Package noc defines the message and network abstractions shared by the
// optical crossbars, the optical broadcast bus, and the electrical meshes,
// and hosts the fabric registry through which the system model constructs
// its interconnect by name (Register / Lookup; see docs/ARCHITECTURE.md for
// the registry design and a walkthrough of adding a new topology).
//
// A network moves Messages between cluster endpoints. Senders inject through
// Send, which may refuse a message when the per-source injection queue is
// full (back pressure); delivery is signalled through a per-destination
// callback installed with SetDeliver. All timing is in 5 GHz cycles.
package noc

import (
	"fmt"

	"corona/internal/sim"
)

// Kind classifies a message for routing and accounting.
type Kind uint8

// Message kinds. Requests and responses implement the L2-miss transaction;
// the coherence kinds are used by the directory protocol example.
const (
	KindRequest Kind = iota
	KindResponse
	KindWriteback
	KindInvalidate
	KindInvalidateAck
	KindCoherence
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindWriteback:
		return "writeback"
	case KindInvalidate:
		return "invalidate"
	case KindInvalidateAck:
		return "invalidate-ack"
	case KindCoherence:
		return "coherence"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Canonical message sizes in bytes. A request carries address and command; a
// response carries a 64 B cache line plus header (the paper sends a line as
// 256 bits twice per 5 GHz clock, i.e. 64 B/cycle on a crossbar channel).
const (
	RequestBytes   = 16
	ResponseBytes  = 72
	LineBytes      = 64
	WritebackBytes = 80
)

// Message is one network packet. Messages are allocated by the sender and
// owned by the network until delivery.
type Message struct {
	ID   uint64
	Src  int // source cluster
	Dst  int // destination cluster
	Size int // bytes on the wire
	Kind Kind

	// Issue is when the requester generated the transaction (for end-to-end
	// latency); Inject is when the network accepted it.
	Issue  sim.Time
	Inject sim.Time

	// Hops is filled in by mesh networks with the number of router-to-router
	// link traversals, for the 196 pJ/hop power model. Optical networks leave
	// it zero and account power separately.
	Hops int

	// Payload carries protocol state for coherence messages; plain memory
	// traffic leaves it nil.
	Payload interface{}
}

// DeliverFunc receives a message at its destination cluster.
type DeliverFunc func(*Message)

// Network is the interface the cluster hub uses to communicate. Both optical
// and electrical interconnects implement it.
type Network interface {
	// Name identifies the network ("xbar", "hmesh", "lmesh", ...).
	Name() string
	// Clusters returns the number of endpoints.
	Clusters() int
	// Send injects msg. It returns false when the source's injection queue is
	// full; the caller must retry later (back pressure).
	Send(msg *Message) bool
	// SetDeliver installs the delivery callback for a destination cluster.
	SetDeliver(cluster int, fn DeliverFunc)
	// Consume returns one receive-buffer credit at cluster after the hub has
	// drained the delivered message m. Every delivery must eventually be
	// matched by exactly one Consume, or the network wedges — which is
	// precisely the back-pressure the paper models with finite buffers. The
	// message identifies which buffer pool (virtual network) the freed slot
	// belongs to.
	Consume(cluster int, m *Message)
	// Stats returns the network's delivery counters.
	Stats() Stats
}

// Stats aggregates the counters every network implementation maintains.
type Stats struct {
	Messages      uint64
	Bytes         uint64
	HopTraversals uint64 // mesh only: sum over messages of per-hop link uses
}

// Validate checks a message for internal consistency against a network of n
// clusters. Models call it at injection; it returns a descriptive error.
func Validate(m *Message, n int) error {
	if m == nil {
		return fmt.Errorf("noc: nil message")
	}
	if m.Src < 0 || m.Src >= n {
		return fmt.Errorf("noc: message %d source %d out of range [0,%d)", m.ID, m.Src, n)
	}
	if m.Dst < 0 || m.Dst >= n {
		return fmt.Errorf("noc: message %d destination %d out of range [0,%d)", m.ID, m.Dst, n)
	}
	if m.Size <= 0 {
		return fmt.Errorf("noc: message %d has non-positive size %d", m.ID, m.Size)
	}
	return nil
}
