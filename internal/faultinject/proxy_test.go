package faultinject

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until the peer
// closes; it returns its address and a stop function.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("echo listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func newTestProxy(t *testing.T, opts ProxyOptions) *ChaosProxy {
	t.Helper()
	p, err := NewProxy(echoServer(t), opts)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

// roundTrip writes msg through the proxy and reads len(msg) echoed bytes.
func roundTrip(t *testing.T, addr string, msg []byte) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	_, err = io.ReadFull(c, got)
	return got, err
}

func TestProxyTransparentWhenDisarmed(t *testing.T) {
	p := newTestProxy(t, ProxyOptions{})
	msg := []byte("corona fleet chaos relay")
	got, err := roundTrip(t, p.Addr(), msg)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
}

func TestProxyPartitionClosesAcceptedConnections(t *testing.T) {
	p := newTestProxy(t, ProxyOptions{})
	if err := Arm("faultinject.proxy.accept:error@1"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	t.Cleanup(Disarm)
	if _, err := roundTrip(t, p.Addr(), []byte("partitioned")); err == nil {
		t.Fatal("partitioned connection round-tripped; want an error")
	}
	// Hit 2 does not fire: the link heals on its own.
	msg := []byte("healed")
	got, err := roundTrip(t, p.Addr(), msg)
	if err != nil {
		t.Fatalf("post-partition round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch after heal: got %q want %q", got, msg)
	}
}

func TestProxyResetSeversMidStream(t *testing.T) {
	p := newTestProxy(t, ProxyOptions{})
	if err := Arm("faultinject.proxy.chunk:error@1"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	t.Cleanup(Disarm)
	if _, err := roundTrip(t, p.Addr(), []byte("reset me")); err == nil {
		t.Fatal("reset connection delivered everything; want an error")
	}
}

func TestProxyPanicModeContainedAsReset(t *testing.T) {
	p := newTestProxy(t, ProxyOptions{})
	if err := Arm("faultinject.proxy.chunk:panic@1"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	t.Cleanup(Disarm)
	// The injected panic must not escape the relay goroutine; it degrades to
	// the reset behavior.
	if _, err := roundTrip(t, p.Addr(), []byte("panic me")); err == nil {
		t.Fatal("panic-mode reset delivered everything; want an error")
	}
}

func TestProxyDripDeliversEverythingSlowly(t *testing.T) {
	p := newTestProxy(t, ProxyOptions{DripBytes: 3, DripEvery: time.Millisecond})
	if err := Arm("faultinject.proxy.drip:error:p=1:seed=1"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	t.Cleanup(Disarm)
	msg := []byte("slow but intact: every byte arrives, just late")
	got, err := roundTrip(t, p.Addr(), msg)
	if err != nil {
		t.Fatalf("drip round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("drip corrupted the stream: got %q want %q", got, msg)
	}
}

func TestProxyDelayAddsLatency(t *testing.T) {
	const lat = 80 * time.Millisecond
	p := newTestProxy(t, ProxyOptions{Latency: lat})
	if err := Arm("faultinject.proxy.delay:error@1"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	t.Cleanup(Disarm)
	start := time.Now()
	msg := []byte("late")
	got, err := roundTrip(t, p.Addr(), msg)
	if err != nil {
		t.Fatalf("delayed round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("delay corrupted the stream: got %q want %q", got, msg)
	}
	if el := time.Since(start); el < lat {
		t.Fatalf("round trip took %v; want >= the injected %v", el, lat)
	}
}

func TestProxyCloseReturnsPromptlyMidDrip(t *testing.T) {
	p := newTestProxy(t, ProxyOptions{DripBytes: 1, DripEvery: 500 * time.Millisecond})
	if err := Arm("faultinject.proxy.drip:error:p=1:seed=1"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	t.Cleanup(Disarm)
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatalf("write: %v", err)
	}
	// 64 dripped bytes at 500ms apart would take half a minute; Close must
	// interrupt the drip sleeps and return in bounded time.
	time.Sleep(50 * time.Millisecond) // let the drip engage
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy Close wedged behind an in-flight drip")
	}
}
