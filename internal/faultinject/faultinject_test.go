package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedFireIsNil(t *testing.T) {
	Disarm()
	if err := Fire("anything"); err != nil {
		t.Fatalf("disarmed Fire = %v, want nil", err)
	}
	if Active() {
		t.Fatal("Active() with nothing armed")
	}
}

func TestNthHitErrorMode(t *testing.T) {
	defer Disarm()
	if err := Arm("p:error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Fire("p")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
			}
			var f *Fault
			if !errors.As(err, &f) || f.Point != "p" || f.Hit != 3 {
				t.Fatalf("hit %d: fault = %+v", i, f)
			}
		} else if err != nil {
			t.Fatalf("hit %d: err = %v, want nil", i, err)
		}
	}
	if got := Hits("p"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestPanicMode(t *testing.T) {
	defer Disarm()
	if err := Arm("p:panic@1"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		p, ok := v.(*Panic)
		if !ok || p.Point != "p" || p.Hit != 1 {
			t.Fatalf("recovered %v, want *Panic for point p hit 1", v)
		}
	}()
	Fire("p")
	t.Fatal("Fire did not panic")
}

func TestUnarmedPointIsUntouched(t *testing.T) {
	defer Disarm()
	if err := Arm("p:error@1"); err != nil {
		t.Fatal(err)
	}
	if err := Fire("other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestProbabilisticIsDeterministic(t *testing.T) {
	defer Disarm()
	run := func() []int {
		Disarm()
		if err := Arm("p:error:p=0.5:seed=42"); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 1; i <= 64; i++ {
			if Fire("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("p=0.5 fired on %d/64 hits; trigger looks stuck", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("two identical runs fired %d and %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestMultiSpecAndBadSpecs(t *testing.T) {
	defer Disarm()
	if err := Arm("a:error@1, b:panic@2"); err != nil {
		t.Fatal(err)
	}
	if Fire("a") == nil {
		t.Fatal("point a did not fire")
	}
	Fire("b") // hit 1 of 2: must not panic
	for _, bad := range []string{
		"", "noColon", "p:maybe@1", "p:error@0", "p:error@x",
		"p:error:p=2:seed=1", "p:error:p=0.5", "p:error:q=0.5:seed=1",
	} {
		if err := Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted", bad)
		}
	}
	// The failed Arms must not have clobbered the armed set.
	if !Active() {
		t.Fatal("bad specs disarmed the registry")
	}
}

func TestConcurrentFire(t *testing.T) {
	defer Disarm()
	if err := Arm("p:error@100"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if Fire("p") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("Nth-hit trigger fired %d times across goroutines, want exactly 1", fired)
	}
	if got := Hits("p"); got != 400 {
		t.Fatalf("Hits = %d, want 400", got)
	}
}
