// Package faultinject provides deterministic, seed-driven failure points for
// chaos testing the durability layer. A failure point is a named call site —
// Fire("store.append.torn") — that does nothing in production: when no fault
// is armed, Fire is a single atomic load and an immediate return, so points
// can sit on hot paths (store writes, cell execution) permanently.
//
// Tests (or an operator, via corona-serve's CORONA_FAULTS environment
// variable) arm points with a spec:
//
//	point:mode@N          fire on exactly the Nth hit of the point
//	point:mode:p=F:seed=S fire on each hit with probability F, decided by a
//	                      stateless hash of (S, hit index) — deterministic
//	                      for a given seed regardless of goroutine timing
//
// Mode is "error" (Fire returns an *Fault wrapping ErrInjected) or "panic"
// (Fire panics with *Panic). Multiple comma-separated specs arm multiple
// points. Both triggers are deterministic: the Nth-hit form trivially so,
// the probabilistic form because the decision depends only on the seed and
// the hit ordinal, never on shared RNG state or scheduling.
//
// The store treats any injected error as a crashed disk (it wedges and
// refuses further writes), which is how the chaos suites simulate killing a
// daemon at an arbitrary write point without leaving the process.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel every injected error wraps;
// errors.Is(err, ErrInjected) distinguishes a simulated fault from a real
// I/O failure.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is the error returned by an armed point in "error" mode.
type Fault struct {
	// Point is the failure site that fired.
	Point string
	// Hit is the 1-based hit ordinal at which it fired.
	Hit uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s failed (hit %d)", f.Point, f.Hit)
}

func (f *Fault) Unwrap() error { return ErrInjected }

// Panic is the value an armed point in "panic" mode panics with.
type Panic struct {
	Point string
	Hit   uint64
}

func (p *Panic) String() string {
	return fmt.Sprintf("faultinject: %s panicked (hit %d)", p.Point, p.Hit)
}

// mode selects what an armed point does when it fires.
type mode int

const (
	modeError mode = iota
	modePanic
)

// point is one armed failure site.
type point struct {
	name string
	mode mode

	// Nth-hit trigger: fire exactly when hits reaches n (n > 0).
	n uint64
	// Probabilistic trigger: fire when hash(seed, hit) < p (0 < p <= 1).
	p    float64
	seed uint64

	hits atomic.Uint64
}

// registry holds the armed points. armed is the fast-path gate: while it is
// false (the permanent state in production) Fire never touches the map or
// the mutex.
var (
	armed    atomic.Bool
	mu       sync.Mutex
	registry map[string]*point
)

// Arm parses a comma-separated spec list and arms its points, adding to any
// already armed. It returns an error on a malformed spec without changing
// the armed set.
func Arm(spec string) error {
	parsed := make([]*point, 0, 2)
	for _, one := range strings.Split(spec, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		pt, err := parseSpec(one)
		if err != nil {
			return err
		}
		parsed = append(parsed, pt)
	}
	if len(parsed) == 0 {
		return fmt.Errorf("faultinject: empty spec %q", spec)
	}
	mu.Lock()
	defer mu.Unlock()
	if registry == nil {
		registry = make(map[string]*point)
	}
	for _, pt := range parsed {
		registry[pt.name] = pt
	}
	armed.Store(true)
	return nil
}

// parseSpec parses "point:mode@N" or "point:mode:p=F:seed=S".
func parseSpec(s string) (*point, error) {
	name, rest, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return nil, fmt.Errorf("faultinject: spec %q: want point:mode@N or point:mode:p=F:seed=S", s)
	}
	pt := &point{name: name}
	modeStr, trigger, _ := strings.Cut(rest, "@")
	if trigger != "" {
		// Nth-hit form.
		modeStr = strings.TrimSuffix(modeStr, ":")
		n, err := strconv.ParseUint(trigger, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("faultinject: spec %q: hit count %q must be a positive integer", s, trigger)
		}
		pt.n = n
	} else {
		// Probabilistic form: mode:p=F:seed=S.
		parts := strings.Split(modeStr, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("faultinject: spec %q: want point:mode@N or point:mode:p=F:seed=S", s)
		}
		modeStr = parts[0]
		pv, ok1 := strings.CutPrefix(parts[1], "p=")
		sv, ok2 := strings.CutPrefix(parts[2], "seed=")
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("faultinject: spec %q: want p=F:seed=S after the mode", s)
		}
		p, err := strconv.ParseFloat(pv, 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("faultinject: spec %q: probability %q must be in (0,1]", s, pv)
		}
		seed, err := strconv.ParseUint(sv, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: spec %q: bad seed %q", s, sv)
		}
		pt.p, pt.seed = p, seed
	}
	switch modeStr {
	case "error":
		pt.mode = modeError
	case "panic":
		pt.mode = modePanic
	default:
		return nil, fmt.Errorf("faultinject: spec %q: mode %q must be \"error\" or \"panic\"", s, modeStr)
	}
	return pt, nil
}

// Disarm clears every armed point and restores the no-op fast path.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	registry = nil
	armed.Store(false)
}

// Active reports whether any point is armed.
func Active() bool { return armed.Load() }

// Hits returns how many times the named armed point has been hit; 0 when it
// is not armed.
func Hits(name string) uint64 {
	if !armed.Load() {
		return 0
	}
	mu.Lock()
	pt := registry[name]
	mu.Unlock()
	if pt == nil {
		return 0
	}
	return pt.hits.Load()
}

// Fire is the failure point. Disarmed (the production state) it is a single
// atomic load. Armed, it counts the hit and — when the point's trigger says
// so — returns an *Fault (mode "error") or panics with *Panic (mode
// "panic").
func Fire(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	pt := registry[name]
	mu.Unlock()
	if pt == nil {
		return nil
	}
	hit := pt.hits.Add(1)
	fire := false
	switch {
	case pt.n > 0:
		fire = hit == pt.n
	case pt.p > 0:
		// Stateless per-hit decision: splitmix64(seed ^ hit) mapped to [0,1).
		fire = float64(splitmix64(pt.seed^hit)>>11)/float64(1<<53) < pt.p
	}
	if !fire {
		return nil
	}
	if pt.mode == modePanic {
		panic(&Panic{Point: name, Hit: hit})
	}
	return &Fault{Point: name, Hit: hit}
}

// splitmix64 is the standard 64-bit mix; good enough to turn (seed, hit)
// into an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
