package faultinject

// ChaosProxy is the network-layer complement to the in-process failure
// points: a TCP relay a test (or an operator drill) puts between a fleet
// coordinator and a worker daemon, so the link itself — not the daemons —
// can partition, stall, drip, or reset, driven by the same deterministic
// point/spec grammar as every other fault in the repo.
//
// Four points cover the failure taxonomy of a network hop:
//
//	faultinject.proxy.accept  fired per accepted connection; firing closes
//	                          it immediately — a partition: the daemon is
//	                          up, the link refuses service
//	faultinject.proxy.delay   fired per relayed connection; firing sleeps
//	                          ProxyOptions.Latency before any byte moves —
//	                          added one-way latency
//	faultinject.proxy.drip    fired per relayed connection; firing latches
//	                          the connection into drip mode: every relayed
//	                          write is split into DripBytes-sized slices
//	                          spaced DripEvery apart — the slow straggler
//	faultinject.proxy.chunk   fired per relayed chunk (either direction);
//	                          firing closes both sides mid-stream — a
//	                          connection reset with bytes already delivered
//
// "panic" mode is contained at the connection boundary and behaves like the
// point's error mode — at the network layer every failure collapses to "the
// link broke here"; panics must never cross into the proxied daemons' test
// process.

import (
	"net"
	"sync"
	"time"
)

// ProxyOptions shapes the injected degradation; zero fields take defaults.
type ProxyOptions struct {
	// Latency is the pause injected when faultinject.proxy.delay fires.
	// Default 50ms.
	Latency time.Duration
	// DripBytes is the write-slice size of a dripping connection. Default 1.
	DripBytes int
	// DripEvery spaces a dripping connection's write slices. Default 50ms.
	DripEvery time.Duration
	// ChunkBytes is the relay buffer size — the granularity at which
	// faultinject.proxy.chunk can cut a stream. Default 4096.
	ChunkBytes int
}

func (o ProxyOptions) withDefaults() ProxyOptions {
	if o.Latency <= 0 {
		o.Latency = 50 * time.Millisecond
	}
	if o.DripBytes <= 0 {
		o.DripBytes = 1
	}
	if o.DripEvery <= 0 {
		o.DripEvery = 50 * time.Millisecond
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 4096
	}
	return o
}

// ChaosProxy is a TCP relay whose misbehavior is armed through the package
// fault registry. With nothing armed it is a transparent byte pipe.
type ChaosProxy struct {
	target string
	opts   ProxyOptions
	ln     net.Listener
	done   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewProxy listens on an ephemeral loopback port and relays every accepted
// connection to target (a host:port). Close releases everything.
func NewProxy(target string, opts ProxyOptions) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		target: target,
		opts:   opts.withDefaults(),
		ln:     ln,
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listening address (host:port).
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's address as an http base URL, ready for server.NewClient.
func (p *ChaosProxy) URL() string { return "http://" + p.Addr() }

// Close stops accepting, severs every relayed connection, and waits for the
// relay goroutines to drain (drip sleeps included — they watch done).
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

// track registers live connections so Close can sever them; it refuses (and
// closes) new ones once the proxy is closing.
func (p *ChaosProxy) track(cs ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		for _, c := range cs {
			c.Close()
		}
		return false
	}
	for _, c := range cs {
		p.conns[c] = struct{}{}
	}
	return true
}

func (p *ChaosProxy) untrack(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cs {
		delete(p.conns, c)
	}
}

// firing runs one Fire call, translating an injected panic into the fired
// verdict: at this layer panic mode and error mode both mean "break the
// link", and a panic escaping into net/http's test goroutines would take the
// whole suite down instead.
func firing(fire func() error) (fired bool) {
	defer func() {
		if recover() != nil {
			fired = true
		}
	}()
	return fire() != nil
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if firing(func() error { return Fire("faultinject.proxy.accept") }) {
			down.Close() // partition: the link refuses this connection
			continue
		}
		p.wg.Add(1)
		go p.relay(down)
	}
}

// relay connects one accepted connection to the target and pipes both
// directions, applying the per-connection faults (delay, drip) and the
// per-chunk one (reset).
func (p *ChaosProxy) relay(down net.Conn) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		down.Close()
		return
	}
	if !p.track(down, up) {
		return
	}
	defer p.untrack(down, up)
	// sever closes both sides exactly once — the shared failure action of
	// the reset point, a dead peer write, and proxy Close.
	var severOnce sync.Once
	sever := func() {
		severOnce.Do(func() {
			down.Close()
			up.Close()
		})
	}
	defer sever()
	if firing(func() error { return Fire("faultinject.proxy.delay") }) {
		if !p.pause(p.opts.Latency) {
			return
		}
	}
	drip := firing(func() error { return Fire("faultinject.proxy.drip") })
	var pipes sync.WaitGroup
	pipes.Add(2)
	go p.pipe(&pipes, up, down, drip, sever)
	go p.pipe(&pipes, down, up, drip, sever)
	pipes.Wait()
}

// pipe relays src to dst chunk by chunk until EOF or a fault cuts it. EOF
// half-closes the destination so request/response flows that rely on
// CloseWrite (an HTTP client finishing its body) still work through the
// proxy.
func (p *ChaosProxy) pipe(wg *sync.WaitGroup, dst, src net.Conn, drip bool, sever func()) {
	defer wg.Done()
	buf := make([]byte, p.opts.ChunkBytes)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if firing(func() error { return Fire("faultinject.proxy.chunk") }) {
				sever() // mid-stream reset, bytes already delivered stay delivered
				return
			}
			if !p.write(dst, buf[:n], drip) {
				sever()
				return
			}
		}
		if err != nil {
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				sever()
			}
			return
		}
	}
}

// write forwards one chunk, slicing it DripBytes at a time with DripEvery
// pauses when the connection is dripping. Reports false when the write (or
// the proxy) died.
func (p *ChaosProxy) write(dst net.Conn, b []byte, drip bool) bool {
	if !drip {
		_, err := dst.Write(b)
		return err == nil
	}
	for len(b) > 0 {
		n := p.opts.DripBytes
		if n > len(b) {
			n = len(b)
		}
		if _, err := dst.Write(b[:n]); err != nil {
			return false
		}
		if b = b[n:]; len(b) > 0 && !p.pause(p.opts.DripEvery) {
			return false
		}
	}
	return true
}

// pause sleeps d unless the proxy closes first; reports whether the full
// pause elapsed. Keeping every injected sleep select-based is what lets
// Close return promptly even with slow drips in flight.
func (p *ChaosProxy) pause(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}
