// Package traffic generates the synthetic workloads of Table 3 — Uniform,
// Hot Spot, Tornado, and Transpose — and provides the parameterised stochastic
// workload model (Spec) that the SPLASH-2 application models in package
// splash instantiate.
//
// A Spec describes offered load (aggregate bandwidth demand), destination
// distribution (pattern kind, locality, hot-spotting), write fraction, and
// optional barrier-driven burstiness. A Generator turns a Spec into
// per-cluster annotated L2-miss streams (trace.Record) that the network
// simulator replays, exactly as the paper replays COTSon traces.
package traffic

import (
	"fmt"

	"corona/internal/sim"
	"corona/internal/trace"
)

// PatternKind selects the destination distribution.
type PatternKind uint8

// Destination patterns (Table 3). Grid patterns interpret clusters as a
// radix-8 2D grid, matching the paper's definitions.
const (
	// Uniform sends to uniformly random clusters.
	Uniform PatternKind = iota
	// HotSpot sends everything to one cluster.
	HotSpot
	// Tornado sends cluster (i,j) to ((i+k/2-1)%k, (j+k/2-1)%k), k = radix.
	Tornado
	// Transpose sends cluster (i,j) to (j,i).
	Transpose
)

// String names the pattern.
func (p PatternKind) String() string {
	switch p {
	case Uniform:
		return "Uniform"
	case HotSpot:
		return "Hot Spot"
	case Tornado:
		return "Tornado"
	case Transpose:
		return "Transpose"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// BurstSpec models barrier-driven bursty traffic (the paper's analysis of LU:
// "many threads attempt to access the same remotely stored matrix block at
// the same time, following a barrier").
type BurstSpec struct {
	// PeriodCycles is the barrier-to-barrier phase length.
	PeriodCycles uint64
	// WindowFrac is the fraction of each phase, at its start, during which
	// traffic bursts.
	WindowFrac float64
	// Boost multiplies the issue rate inside the burst window.
	Boost float64
	// Concentration is the probability that a burst-window request targets
	// the phase's hot block home (which rotates every phase).
	Concentration float64
}

// Spec is a complete workload description.
type Spec struct {
	Name string
	Kind PatternKind
	// DemandTBs is the offered aggregate memory demand in TB/s (counting
	// request + response wire bytes). Zero or negative means saturating:
	// issue as fast as back pressure allows.
	DemandTBs float64
	// LocalFrac is the fraction of misses homed at the issuing cluster's own
	// memory controller.
	LocalFrac float64
	// WriteFrac is the store/writeback fraction.
	WriteFrac float64
	// HotTarget is the HotSpot destination cluster.
	HotTarget int
	// Burst, when non-nil, adds barrier-phase burstiness.
	Burst *BurstSpec
	// DefaultRequests is the paper's Table 3 network request count for this
	// workload; harnesses scale it down for quick runs.
	DefaultRequests int
}

// WireBytesPerRequest is the accounting size of one L2-miss transaction on
// the wire (16 B request + 72 B response), used to convert between demand
// bandwidth and request rate.
const WireBytesPerRequest = 88

// Synthetic returns the four Table 3 synthetic workloads. Demand is set at
// 5 TB/s — comfortably above every mesh's capacity and near the crossbar's
// observed ceiling — so the synthetics exercise interconnect limits, while
// Hot Spot is intrinsically clamped by its single memory controller.
func Synthetic() []Spec {
	return []Spec{
		{Name: "Uniform", Kind: Uniform, DemandTBs: 5, WriteFrac: 0.3, DefaultRequests: 1_000_000},
		{Name: "Hot Spot", Kind: HotSpot, DemandTBs: 5, WriteFrac: 0.3, HotTarget: 0, DefaultRequests: 1_000_000},
		{Name: "Tornado", Kind: Tornado, DemandTBs: 5, WriteFrac: 0.3, DefaultRequests: 1_000_000},
		{Name: "Transpose", Kind: Transpose, DemandTBs: 5, WriteFrac: 0.3, DefaultRequests: 1_000_000},
	}
}

// Generator produces per-cluster miss streams for a Spec.
type Generator struct {
	spec     Spec
	clusters int
	radix    int
	rngs     []*sim.Rand
	next     []sim.Time
	thread   []int
	meanGap  float64 // mean per-cluster inter-arrival in cycles
}

// NewGenerator builds a generator over `clusters` endpoints (must be a
// perfect square for the grid patterns; Corona's 64 is).
func NewGenerator(spec Spec, clusters int, seed uint64) *Generator {
	radix := intSqrt(clusters)
	if radix*radix != clusters {
		panic(fmt.Sprintf("traffic: clusters %d is not a perfect square", clusters))
	}
	g := &Generator{
		spec:     spec,
		clusters: clusters,
		radix:    radix,
		rngs:     make([]*sim.Rand, clusters),
		next:     make([]sim.Time, clusters),
		thread:   make([]int, clusters),
	}
	for i := range g.rngs {
		g.rngs[i] = sim.NewRand(seed*1_000_003 + uint64(i)*7919 + 1)
	}
	if spec.DemandTBs > 0 {
		// Aggregate requests/cycle = demand / (wire bytes * 5 GHz);
		// per cluster divide by cluster count.
		reqPerCycle := spec.DemandTBs * 1e12 / (WireBytesPerRequest * 5e9)
		g.meanGap = float64(clusters) / reqPerCycle
	}
	return g
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Clusters returns the endpoint count.
func (g *Generator) Clusters() int { return g.clusters }

// Clone returns an independent deep copy that continues the same per-cluster
// streams: the snapshot primitive for generator-backed runs
// (docs/DETERMINISM.md).
func (g *Generator) Clone() *Generator {
	c := *g
	c.rngs = make([]*sim.Rand, len(g.rngs))
	for i, r := range g.rngs {
		c.rngs[i] = r.Clone()
	}
	c.next = append([]sim.Time(nil), g.next...)
	c.thread = append([]int(nil), g.thread...)
	return &c
}

// inBurstWindow reports whether t falls inside the burst window of its phase
// and returns the phase index.
func (g *Generator) inBurstWindow(t sim.Time) (bool, uint64) {
	b := g.spec.Burst
	if b == nil || b.PeriodCycles == 0 {
		return false, 0
	}
	phase := uint64(t) / b.PeriodCycles
	offset := uint64(t) % b.PeriodCycles
	return float64(offset) < b.WindowFrac*float64(b.PeriodCycles), phase
}

// Next produces cluster's next miss record. Streams are per-cluster
// monotonic in time.
func (g *Generator) Next(cluster int) trace.Record {
	rng := g.rngs[cluster]
	t := g.next[cluster]

	burst, phase := g.inBurstWindow(t)
	gap := g.meanGap
	if burst && g.spec.Burst.Boost > 0 {
		gap /= g.spec.Burst.Boost
	}
	if gap > 0 {
		// Geometric inter-arrival with the configured mean.
		p := 1.0 / (gap + 1.0)
		g.next[cluster] = t + sim.Time(rng.Geometric(p)) + 1
	}
	// Saturating specs leave next[cluster] at t: issue limited purely by
	// back pressure.

	dst := g.dest(cluster, rng, burst, phase)
	addr := g.addrHomedAt(dst, rng)

	thr := uint16(cluster*16 + g.thread[cluster])
	g.thread[cluster] = (g.thread[cluster] + 1) % 16

	return trace.Record{
		Time:   t,
		Thread: thr,
		Addr:   addr,
		Write:  rng.Float64() < g.spec.WriteFrac,
	}
}

// dest draws the destination (home) cluster for one request from cluster.
func (g *Generator) dest(cluster int, rng *sim.Rand, burst bool, phase uint64) int {
	if burst && rng.Float64() < g.spec.Burst.Concentration {
		// The phase's hot block home, rotating each phase so no single MC
		// stays hot across the run.
		return int((phase * 17) % uint64(g.clusters))
	}
	if g.spec.LocalFrac > 0 && rng.Float64() < g.spec.LocalFrac {
		return cluster
	}
	k := g.radix
	x, y := cluster%k, cluster/k
	switch g.spec.Kind {
	case HotSpot:
		return g.spec.HotTarget
	case Tornado:
		shift := k/2 - 1
		return ((y+shift)%k)*k + (x+shift)%k
	case Transpose:
		return x*k + y
	default: // Uniform
		return rng.Intn(g.clusters)
	}
}

// addrHomedAt builds a line-aligned address whose home controller is dst,
// under line-interleaved home mapping: home = (addr/64) % clusters.
func (g *Generator) addrHomedAt(dst int, rng *sim.Rand) uint64 {
	page := rng.Uint64() % (1 << 40)
	return (page*uint64(g.clusters) + uint64(dst)) * 64
}

// HomeOf returns the home controller for addr under the generator's
// interleaving (the inverse of addrHomedAt).
func HomeOf(addr uint64, clusters int) int {
	return int((addr / 64) % uint64(clusters))
}
