package traffic

import (
	"math"
	"testing"

	"corona/internal/sim"
)

func TestPatternNames(t *testing.T) {
	if Uniform.String() != "Uniform" || HotSpot.String() != "Hot Spot" ||
		Tornado.String() != "Tornado" || Transpose.String() != "Transpose" {
		t.Error("pattern names wrong")
	}
}

func TestSyntheticTable(t *testing.T) {
	specs := Synthetic()
	if len(specs) != 4 {
		t.Fatalf("synthetic workloads = %d, want 4 (Table 3)", len(specs))
	}
	for _, s := range specs {
		if s.DefaultRequests != 1_000_000 {
			t.Errorf("%s requests = %d, want 1M (Table 3)", s.Name, s.DefaultRequests)
		}
	}
}

func TestHotSpotAllToOne(t *testing.T) {
	g := NewGenerator(Spec{Name: "hs", Kind: HotSpot, HotTarget: 5}, 64, 1)
	for c := 0; c < 64; c++ {
		for i := 0; i < 10; i++ {
			r := g.Next(c)
			if HomeOf(r.Addr, 64) != 5 {
				t.Fatalf("hot spot request from %d homed at %d, want 5", c, HomeOf(r.Addr, 64))
			}
		}
	}
}

func TestTornadoMapping(t *testing.T) {
	g := NewGenerator(Spec{Name: "tor", Kind: Tornado}, 64, 1)
	// Cluster (i,j)=(0,0) -> (3,3) = 27 for k=8.
	r := g.Next(0)
	if got := HomeOf(r.Addr, 64); got != 27 {
		t.Fatalf("tornado dest of cluster 0 = %d, want 27", got)
	}
	// Cluster (7,7)=63 -> ((7+3)%8,(7+3)%8) = (2,2) = 18.
	r = g.Next(63)
	if got := HomeOf(r.Addr, 64); got != 18 {
		t.Fatalf("tornado dest of cluster 63 = %d, want 18", got)
	}
}

func TestTransposeMapping(t *testing.T) {
	g := NewGenerator(Spec{Name: "tr", Kind: Transpose}, 64, 1)
	// Cluster (x,y)=(3,1) = 11 -> (1,3) = 25.
	r := g.Next(11)
	if got := HomeOf(r.Addr, 64); got != 25 {
		t.Fatalf("transpose dest of 11 = %d, want 25", got)
	}
	// Diagonal maps to itself.
	r = g.Next(9) // (1,1)
	if got := HomeOf(r.Addr, 64); got != 9 {
		t.Fatalf("transpose dest of 9 = %d, want 9", got)
	}
}

func TestUniformSpread(t *testing.T) {
	g := NewGenerator(Spec{Name: "u", Kind: Uniform}, 64, 7)
	counts := make([]int, 64)
	const n = 64000
	for i := 0; i < n; i++ {
		counts[HomeOf(g.Next(i%64).Addr, 64)]++
	}
	for d, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/64) > 0.01 {
			t.Errorf("destination %d got fraction %v, want ~1/64", d, frac)
		}
	}
}

func TestLocalFraction(t *testing.T) {
	g := NewGenerator(Spec{Name: "l", Kind: Uniform, LocalFrac: 0.5}, 64, 3)
	local := 0
	const n = 10000
	for i := 0; i < n; i++ {
		c := i % 64
		if HomeOf(g.Next(c).Addr, 64) == c {
			local++
		}
	}
	frac := float64(local) / n
	// 0.5 local plus ~1/64 of the uniform remainder.
	want := 0.5 + 0.5/64
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("local fraction = %v, want ~%v", frac, want)
	}
}

func TestDemandRate(t *testing.T) {
	// 1 TB/s over 64 clusters at 88 B/request = ~2.27 req/kcycle/cluster.
	spec := Spec{Name: "d", Kind: Uniform, DemandTBs: 1}
	g := NewGenerator(spec, 64, 11)
	const n = 2000
	var last sim.Time
	for i := 0; i < n; i++ {
		last = g.Next(0).Time
	}
	rate := float64(n) / float64(last) // requests per cycle for one cluster
	want := 1e12 / (WireBytesPerRequest * 5e9) / 64
	if math.Abs(rate-want)/want > 0.10 {
		t.Errorf("per-cluster rate = %v req/cycle, want ~%v", rate, want)
	}
}

func TestSaturatingSpecIssuesImmediately(t *testing.T) {
	g := NewGenerator(Spec{Name: "s", Kind: Uniform, DemandTBs: 0}, 64, 1)
	for i := 0; i < 100; i++ {
		if r := g.Next(3); r.Time != 0 {
			t.Fatalf("saturating spec issued at %d, want 0 (paced only by back pressure)", r.Time)
		}
	}
}

func TestPerClusterMonotonicTime(t *testing.T) {
	g := NewGenerator(Spec{Name: "m", Kind: Uniform, DemandTBs: 0.5}, 64, 5)
	for c := 0; c < 64; c += 7 {
		var prev sim.Time
		for i := 0; i < 500; i++ {
			r := g.Next(c)
			if r.Time < prev {
				t.Fatalf("cluster %d time went backwards: %d < %d", c, r.Time, prev)
			}
			prev = r.Time
		}
	}
}

func TestWriteFraction(t *testing.T) {
	g := NewGenerator(Spec{Name: "w", Kind: Uniform, WriteFrac: 0.3}, 64, 9)
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next(i % 64).Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("write fraction = %v, want ~0.3", frac)
	}
}

func TestBurstConcentration(t *testing.T) {
	spec := Spec{
		Name: "b", Kind: Uniform, DemandTBs: 1,
		Burst: &BurstSpec{PeriodCycles: 10000, WindowFrac: 0.2, Boost: 4, Concentration: 0.9},
	}
	g := NewGenerator(spec, 64, 13)
	inWindow := map[int]int{}
	total := 0
	for c := 0; c < 64; c++ {
		for i := 0; i < 200; i++ {
			r := g.Next(c)
			if off := uint64(r.Time) % 10000; float64(off) < 2000 {
				inWindow[HomeOf(r.Addr, 64)]++
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no burst-window requests generated")
	}
	// The top destination should dominate the burst window.
	max := 0
	for _, c := range inWindow {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(total) < 0.3 {
		t.Errorf("burst window max-destination share = %v, want >= 0.3 (hot-block concentration)",
			float64(max)/float64(total))
	}
}

func TestThreadIDsWithinCluster(t *testing.T) {
	g := NewGenerator(Spec{Name: "t", Kind: Uniform}, 64, 2)
	for i := 0; i < 64; i++ {
		r := g.Next(5)
		if r.Cluster(16) != 5 {
			t.Fatalf("thread %d not in cluster 5", r.Thread)
		}
	}
}

func TestNonSquareClustersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-square cluster count did not panic")
		}
	}()
	NewGenerator(Spec{Name: "x"}, 60, 1)
}

func TestHomeOfInverse(t *testing.T) {
	g := NewGenerator(Spec{Name: "h", Kind: Uniform}, 64, 21)
	rng := sim.NewRand(4)
	for i := 0; i < 1000; i++ {
		d := rng.Intn(64)
		addr := g.addrHomedAt(d, rng)
		if HomeOf(addr, 64) != d {
			t.Fatalf("HomeOf(addrHomedAt(%d)) = %d", d, HomeOf(addr, 64))
		}
		if addr%64 != 0 {
			t.Fatal("address not line aligned")
		}
	}
}
