// Package splash provides stochastic workload models of the eleven SPLASH-2
// applications the paper evaluates (Table 3), substituting for the
// COTSon-generated 1024-thread traces that are not reproducible outside HP
// Labs (see DESIGN.md, substitution 1).
//
// Each application is modelled by the workload characteristics the paper
// reports and analyses:
//
//   - Offered memory-bandwidth demand, taken from the achieved bandwidth of
//     the fastest (XBar/OCM) configuration in Figure 9. Low-demand
//     applications (Barnes, Radiosity, Volrend, Water-Sp) fit in cache and
//     are satisfied even by the 0.96 TB/s ECM; high-demand ones (Cholesky,
//     FFT, Ocean, Radix) need 2-5 TB/s and are memory-bound on ECM.
//   - NUMA locality: the fraction of misses homed at the local controller.
//   - Barrier-driven burstiness for LU and Raytrace, which the paper singles
//     out as latency-bound rather than bandwidth-bound ("many threads attempt
//     to access the same remotely stored matrix block at the same time,
//     following a barrier").
//
// The network request counts are Table 3's, and the dataset descriptions are
// carried along for the Table 3 reproduction.
package splash

import "corona/internal/traffic"

// App couples a traffic.Spec with the Table 3 dataset description.
type App struct {
	Spec traffic.Spec
	// Dataset is the experimental data set; DefaultDataset is the suite's
	// default, both as reported in Table 3.
	Dataset        string
	DefaultDataset string
}

// lightBurst returns the barrier-phase burst parameters shared by the two
// latency-bound applications: after each barrier the issue rate spikes 6x
// for the first fifth of the phase, with a modest fraction of the burst
// aimed at one rotating hot block home. The concentration is deliberately
// small — LU's post-barrier block fetch is a transient, not a steady hot
// spot — but it is enough to overwhelm a 15 GB/s ECM controller while a
// 160 GB/s OCM controller rides it out, reproducing the paper's analysis of
// why these two applications are latency- rather than bandwidth-bound.
func lightBurst() *traffic.BurstSpec {
	return &traffic.BurstSpec{
		PeriodCycles:  20_000,
		WindowFrac:    0.2,
		Boost:         6,
		Concentration: 0.08,
	}
}

// Apps returns the eleven SPLASH-2 application models in Table 3 order.
func Apps() []App {
	return []App{
		{
			Spec: traffic.Spec{
				Name: "Barnes", Kind: traffic.Uniform,
				DemandTBs: 0.30, LocalFrac: 0.4, WriteFrac: 0.35,
				DefaultRequests: 7_200_000,
			},
			Dataset: "64 K particles", DefaultDataset: "16 K",
		},
		{
			Spec: traffic.Spec{
				Name: "Cholesky", Kind: traffic.Uniform,
				DemandTBs: 2.60, LocalFrac: 0.10, WriteFrac: 0.30,
				DefaultRequests: 600_000,
			},
			Dataset: "tk29.O", DefaultDataset: "tk15.O",
		},
		{
			Spec: traffic.Spec{
				Name: "FFT", Kind: traffic.Transpose,
				DemandTBs: 4.40, LocalFrac: 0.15, WriteFrac: 0.40,
				DefaultRequests: 176_000_000,
			},
			Dataset: "16 M points", DefaultDataset: "64 K",
		},
		{
			Spec: traffic.Spec{
				Name: "FMM", Kind: traffic.Uniform,
				DemandTBs: 1.30, LocalFrac: 0.4, WriteFrac: 0.30,
				DefaultRequests: 1_800_000,
			},
			Dataset: "1 M particles", DefaultDataset: "16 K",
		},
		{
			Spec: traffic.Spec{
				Name: "LU", Kind: traffic.Uniform,
				DemandTBs: 1.60, LocalFrac: 0.3, WriteFrac: 0.30,
				Burst:           lightBurst(),
				DefaultRequests: 34_000_000,
			},
			Dataset: "2048x2048 matrix", DefaultDataset: "512x512",
		},
		{
			Spec: traffic.Spec{
				Name: "Ocean", Kind: traffic.Uniform,
				DemandTBs: 4.80, LocalFrac: 0.3, WriteFrac: 0.40,
				DefaultRequests: 240_000_000,
			},
			Dataset: "2050x2050 grid", DefaultDataset: "258x258",
		},
		{
			Spec: traffic.Spec{
				Name: "Radiosity", Kind: traffic.Uniform,
				DemandTBs: 0.25, LocalFrac: 0.4, WriteFrac: 0.30,
				DefaultRequests: 4_200_000,
			},
			Dataset: "roomlarge", DefaultDataset: "room",
		},
		{
			Spec: traffic.Spec{
				Name: "Radix", Kind: traffic.Uniform,
				DemandTBs: 4.90, LocalFrac: 0.1, WriteFrac: 0.45,
				DefaultRequests: 189_000_000,
			},
			Dataset: "64 M integers", DefaultDataset: "1 M",
		},
		{
			Spec: traffic.Spec{
				Name: "Raytrace", Kind: traffic.Uniform,
				DemandTBs: 1.10, LocalFrac: 0.3, WriteFrac: 0.20,
				Burst:           lightBurst(),
				DefaultRequests: 700_000,
			},
			Dataset: "balls4", DefaultDataset: "car",
		},
		{
			Spec: traffic.Spec{
				Name: "Volrend", Kind: traffic.Uniform,
				DemandTBs: 0.40, LocalFrac: 0.4, WriteFrac: 0.25,
				DefaultRequests: 3_600_000,
			},
			Dataset: "head", DefaultDataset: "head",
		},
		{
			Spec: traffic.Spec{
				Name: "Water-Sp", Kind: traffic.Uniform,
				DemandTBs: 0.15, LocalFrac: 0.5, WriteFrac: 0.30,
				DefaultRequests: 3_200_000,
			},
			Dataset: "32 K molecules", DefaultDataset: "512",
		},
	}
}

// Specs returns just the traffic specs, in Table 3 order.
func Specs() []traffic.Spec {
	apps := Apps()
	out := make([]traffic.Spec, len(apps))
	for i, a := range apps {
		out[i] = a.Spec
	}
	return out
}

// ByName returns the named application model, or false.
func ByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Spec.Name == name {
			return a, true
		}
	}
	return App{}, false
}
