package splash

import (
	"testing"

	"corona/internal/traffic"
)

func TestElevenApps(t *testing.T) {
	apps := Apps()
	if len(apps) != 11 {
		t.Fatalf("apps = %d, want 11 (Table 3)", len(apps))
	}
	wantOrder := []string{"Barnes", "Cholesky", "FFT", "FMM", "LU", "Ocean",
		"Radiosity", "Radix", "Raytrace", "Volrend", "Water-Sp"}
	for i, a := range apps {
		if a.Spec.Name != wantOrder[i] {
			t.Errorf("app %d = %s, want %s (Table 3 order)", i, a.Spec.Name, wantOrder[i])
		}
	}
}

func TestTable3RequestCounts(t *testing.T) {
	want := map[string]int{
		"Barnes": 7_200_000, "Cholesky": 600_000, "FFT": 176_000_000,
		"FMM": 1_800_000, "LU": 34_000_000, "Ocean": 240_000_000,
		"Radiosity": 4_200_000, "Radix": 189_000_000, "Raytrace": 700_000,
		"Volrend": 3_600_000, "Water-Sp": 3_200_000,
	}
	for _, a := range Apps() {
		if a.Spec.DefaultRequests != want[a.Spec.Name] {
			t.Errorf("%s requests = %d, want %d (Table 3)",
				a.Spec.Name, a.Spec.DefaultRequests, want[a.Spec.Name])
		}
	}
}

func TestDemandClasses(t *testing.T) {
	// The paper's analysis: Barnes/Radiosity/Volrend/Water-Sp fit under ECM's
	// 0.96 TB/s; Cholesky/FFT/Ocean/Radix demand well above it; FMM sits just
	// above; LU and Raytrace are moderate but bursty.
	low := map[string]bool{"Barnes": true, "Radiosity": true, "Volrend": true, "Water-Sp": true}
	high := map[string]bool{"Cholesky": true, "FFT": true, "Ocean": true, "Radix": true}
	for _, a := range Apps() {
		d := a.Spec.DemandTBs
		switch {
		case low[a.Spec.Name] && d >= 0.96:
			t.Errorf("%s demand %v should be under ECM bandwidth", a.Spec.Name, d)
		case high[a.Spec.Name] && d < 2:
			t.Errorf("%s demand %v should be well above ECM bandwidth", a.Spec.Name, d)
		}
	}
}

func TestBurstyApps(t *testing.T) {
	for _, a := range Apps() {
		bursty := a.Spec.Burst != nil
		wantBursty := a.Spec.Name == "LU" || a.Spec.Name == "Raytrace"
		if bursty != wantBursty {
			t.Errorf("%s bursty = %v, want %v", a.Spec.Name, bursty, wantBursty)
		}
	}
}

func TestByName(t *testing.T) {
	a, ok := ByName("FFT")
	if !ok || a.Spec.Name != "FFT" {
		t.Fatal("ByName(FFT) failed")
	}
	if a.Spec.Kind != traffic.Transpose {
		t.Error("FFT should use the transpose pattern (all-to-all butterfly)")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestSpecsGeneratorsRun(t *testing.T) {
	// Every model must produce a valid, monotone stream.
	for _, s := range Specs() {
		g := traffic.NewGenerator(s, 64, 42)
		var prev uint64
		for i := 0; i < 200; i++ {
			r := g.Next(i % 64)
			if i%64 == 0 {
				if uint64(r.Time) < prev {
					t.Fatalf("%s: time regressed", s.Name)
				}
				prev = uint64(r.Time)
			}
			if traffic.HomeOf(r.Addr, 64) < 0 || traffic.HomeOf(r.Addr, 64) >= 64 {
				t.Fatalf("%s: home out of range", s.Name)
			}
		}
	}
}

func TestDatasetsPresent(t *testing.T) {
	for _, a := range Apps() {
		if a.Dataset == "" || a.DefaultDataset == "" {
			t.Errorf("%s missing dataset strings for Table 3", a.Spec.Name)
		}
	}
}
