package sim

import "testing"

func TestFifoOrderAndReset(t *testing.T) {
	var q Fifo[int]
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero Fifo not empty")
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			q.Push(round*10 + i)
		}
		if q.Front() != round*10 {
			t.Fatalf("round %d: front = %d", round, q.Front())
		}
		for i := 0; i < 10; i++ {
			if got := q.Pop(); got != round*10+i {
				t.Fatalf("round %d: pop = %d, want %d", round, got, round*10+i)
			}
		}
		if !q.Empty() {
			t.Fatalf("round %d: not empty after draining", round)
		}
		if q.head != 0 || len(q.buf) != 0 {
			t.Fatalf("round %d: drained queue did not reset (head=%d len=%d)", round, q.head, len(q.buf))
		}
	}
	// Capacity survives the resets: no growth after the first round.
	if cap(q.buf) >= 20 {
		t.Fatalf("buffer grew to %d across drain/refill cycles", cap(q.buf))
	}
}

// TestFifoCompactsWhenNeverDrained pins the bounded-memory property for a
// queue that stays non-empty indefinitely (a saturated memory controller's
// waiter list): the dead prefix must be compacted away, keeping the buffer
// proportional to the live window, not to the total traffic.
func TestFifoCompactsWhenNeverDrained(t *testing.T) {
	var q Fifo[int]
	next, expect := 0, 0
	for i := 0; i < 8; i++ { // keep a live window of 8 at all times
		q.Push(next)
		next++
	}
	for i := 0; i < 100_000; i++ {
		q.Push(next)
		next++
		if got := q.Pop(); got != expect {
			t.Fatalf("op %d: pop = %d, want %d", i, got, expect)
		}
		expect++
	}
	if q.Len() != 8 {
		t.Fatalf("live window = %d, want 8", q.Len())
	}
	if cap(q.buf) > 4*(8+compactMin) {
		t.Fatalf("never-drained queue grew to cap %d — compaction not bounding memory", cap(q.buf))
	}
	// Compacted-over slots must not linger past the live window.
	for i := q.Len(); i < len(q.buf); i++ {
		t.Fatalf("buf longer than live window after compaction")
	}
}

func TestFifoZeroesPoppedSlots(t *testing.T) {
	var q Fifo[*int]
	v := new(int)
	q.Push(v)
	q.Push(new(int))
	q.Pop()
	// After popping, the slot behind head must not retain the pointer.
	if q.head != 1 || q.buf[0] != nil {
		t.Fatal("popped slot retains its reference")
	}
}
