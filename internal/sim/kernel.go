// Package sim provides the deterministic discrete-event simulation kernel
// used by every Corona subsystem model.
//
// Simulated time is measured in processor clock cycles at 5 GHz (the Corona
// core frequency, Table 1 of the paper), so one cycle is 0.2 ns. Components
// schedule work at absolute or relative times; the kernel executes it in
// time order, breaking ties by scheduling order so that runs are fully
// deterministic for a given seed.
//
// The scheduler is a hierarchical time wheel (calendar queue) with an
// overflow heap, dispatching from pooled event nodes held in one flat slice
// and linked by index: steady-state scheduling allocates nothing, both
// Schedule and Step are O(1) for the near-future events that dominate
// cycle-accurate models, and the index links keep the bucket push/pop hot
// path free of pointer write barriers. The flat layout is also what makes
// Snapshot/Restore — the warmup-forking substrate (docs/DETERMINISM.md) — a
// handful of slice copies. Components on the hot path use the typed
// ScheduleEvent/Handler fast path instead of closure capture;
// Schedule(delay, func()) remains as the compatibility path. The layout, the
// ordering guarantee, and the measured win over the former container/heap
// kernel are documented in docs/PERFORMANCE.md.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a simulation timestamp in 5 GHz clock cycles.
type Time uint64

// Cycle durations and conversions.
const (
	// CyclesPerNs is the number of 5 GHz cycles in one nanosecond.
	CyclesPerNs = 5
	// NsPerCycle is the duration of one cycle in nanoseconds.
	NsPerCycle = 0.2
)

// Ns converts a cycle count to nanoseconds.
func (t Time) Ns() float64 { return float64(t) * NsPerCycle }

// Seconds converts a cycle count to seconds.
func (t Time) Seconds() float64 { return float64(t) * 0.2e-9 }

// FromNs converts nanoseconds to cycles, rounding up so that latencies are
// never under-modelled.
func FromNs(ns float64) Time {
	c := ns * CyclesPerNs
	t := Time(c)
	if float64(t) < c {
		t++
	}
	return t
}

// Handler is the typed event target: the kernel's zero-allocation fast path.
// Implementations are small pointer-shaped types (typically a named type over
// the component struct), so storing one in the interface does not allocate;
// the uint64 data word carries the event's packed operands (cluster ids, slot
// indices from Slots, sizes).
type Handler interface {
	// OnEvent runs the event at simulation time now with the data word it was
	// scheduled with.
	OnEvent(now Time, data uint64)
}

// eventNode is one scheduled event. Nodes live in the kernel's flat node
// slice and are linked by index (next threads the wheel's bucket FIFOs and
// the free list), so steady-state scheduling performs no allocation and the
// links carry no write barriers. Exactly one of h and fn is set on a live
// node; index 0 is the shared nil sentinel.
type eventNode struct {
	when Time
	seq  uint64
	next int32

	h    Handler
	data uint64
	fn   func()
}

// Wheel geometry: three levels of 256 power-of-two cycle buckets. Level L
// buckets are 256^L cycles wide, so the wheel spans 2^24 cycles (~3.4 ms of
// simulated time) before the overflow heap takes over.
const (
	wheelBits   = 8
	wheelSize   = 1 << wheelBits
	wheelMask   = wheelSize - 1
	wheelLevels = 3

	span0 = Time(1) << wheelBits       // level-0 window: 256 one-cycle buckets
	span1 = Time(1) << (2 * wheelBits) // level-1 span: 256 buckets of 256 cycles
	span2 = Time(1) << (3 * wheelBits) // level-2 span: 256 buckets of 65536 cycles
)

// bucketList is a FIFO of event-node indices: appended at tail on schedule
// and cascade, drained from head on dispatch, so same-(when, seq) order is
// the append order. Index 0 means empty.
type bucketList struct {
	head, tail int32
}

// wheelLevel is one ring of buckets plus an occupancy bitmap used to find the
// next non-empty bucket in a handful of word operations.
type wheelLevel struct {
	buckets [wheelSize]bucketList
	occ     [wheelSize / 64]uint64
}

// Kernel is a discrete-event scheduler. The zero value is not usable; create
// one with NewKernel. A Kernel (including its node arena) is confined to one
// goroutine; independent kernels on separate goroutines share nothing.
type Kernel struct {
	now     Time
	seq     uint64
	stopped bool
	// executed counts events dispatched, for introspection and test limits.
	executed uint64

	// base is the start of the level-0 window, always span0-aligned. The
	// level-1 and level-2 spans containing it are base &^ (span1-1) and
	// base &^ (span2-1).
	base       Time
	levels     [wheelLevels]wheelLevel
	wheelCount int // events resident in the wheel levels
	pending    int // wheelCount plus overflow heap residents
	// cur0 is the level-0 occupancy scan cursor: every occ word below it is
	// empty, so dispatch scans start there instead of at word zero. popNext
	// raises it (events cannot be scheduled before the clock, which dispatch
	// has advanced to the found bucket); it resets to zero whenever base moves.
	cur0 int

	// overflow holds events beyond the wheel's current 2^24-cycle horizon,
	// ordered by (when, seq); it refills the wheel when dispatch rolls past
	// the horizon.
	overflow []int32

	// nodes is the flat event arena; nodes[0] is the nil sentinel. free heads
	// the free list of released nodes, reused at schedule.
	nodes []eventNode
	free  int32
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{nodes: make([]eventNode, 1, 1024)}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of scheduled, not-yet-executed events.
func (k *Kernel) Pending() int { return k.pending }

// Executed returns the number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Schedule runs fn after delay cycles (possibly zero, meaning "later this
// cycle", after already-queued events for the current time). This is the
// closure compatibility path; hot code should use ScheduleEvent.
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.At(k.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past is a programming
// error and panics: silent time travel corrupts causality in queue models.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now %d", t, k.now))
	}
	n := k.newNode()
	k.seq++
	nd := &k.nodes[n]
	nd.when, nd.seq, nd.fn = t, k.seq, fn
	k.enqueue(n)
}

// ScheduleEvent runs h.OnEvent(now, data) after delay cycles: the typed,
// zero-allocation fast path. Ordering is identical to Schedule — one shared
// sequence counter breaks same-cycle ties across both paths.
func (k *Kernel) ScheduleEvent(delay Time, h Handler, data uint64) {
	k.AtEvent(k.now+delay, h, data)
}

// AtEvent runs h.OnEvent(t, data) at absolute time t; it panics on a nil
// handler or a past timestamp.
func (k *Kernel) AtEvent(t Time, h Handler, data uint64) {
	if h == nil {
		panic("sim: AtEvent with nil handler")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now %d", t, k.now))
	}
	n := k.newNode()
	k.seq++
	nd := &k.nodes[n]
	nd.when, nd.seq, nd.h, nd.data = t, k.seq, h, data
	k.enqueue(n)
}

func (k *Kernel) newNode() int32 {
	if n := k.free; n != 0 {
		k.free = k.nodes[n].next
		k.nodes[n].next = 0
		return n
	}
	k.nodes = append(k.nodes, eventNode{})
	return int32(len(k.nodes) - 1)
}

func (k *Kernel) releaseNode(n int32) {
	nd := &k.nodes[n]
	// Zeroed h/fn mark the node free (Snapshot's liveness test). fn is nil on
	// the typed path, which is every hot-path event; the branch skips its
	// pointer write barrier there.
	nd.h, nd.data = nil, 0
	if nd.fn != nil {
		nd.fn = nil
	}
	nd.next = k.free
	k.free = n
}

// enqueue files n into the wheel or the overflow heap.
func (k *Kernel) enqueue(n int32) {
	if k.pending == 0 {
		// Empty kernel: snap the window back to the clock so a run that
		// coasted far ahead (RunUntil past the last event) does not strand
		// near-future work in the overflow heap.
		k.base = k.now &^ (span0 - 1)
		k.cur0 = 0
	}
	k.pending++
	k.place(n)
}

// place files n by range: the lowest wheel level whose current span contains
// n's timestamp, else the overflow heap. Spans are aligned, which is what
// makes bucket order dispatch order: a timestamp enters the wheel only at its
// span's refill/cascade boundary or later, so every append lands behind all
// earlier-scheduled events for the same cycle.
//
// A timestamp below the window (possible when peek cascaded the window past
// the clock and the next schedule lands in the gap) goes to the overflow
// heap, which dispatch checks before the wheel; it cannot tie with a wheel
// event, whose timestamps are all >= base.
func (k *Kernel) place(n int32) {
	when := k.nodes[n].when
	// Near-future events dominate; when-base underflows huge for when < base,
	// so one unsigned compare selects level 0 and subsumes the below-window
	// check.
	if when-k.base < span0 {
		k.pushBucket(0, int(when)&wheelMask, n)
		return
	}
	switch {
	case when < k.base:
		k.heapPush(n)
	case when < (k.base&^(span1-1))+span1:
		k.pushBucket(1, int(when>>wheelBits)&wheelMask, n)
	case when < (k.base&^(span2-1))+span2:
		k.pushBucket(2, int(when>>(2*wheelBits))&wheelMask, n)
	default:
		k.heapPush(n)
	}
}

func (k *Kernel) pushBucket(level, idx int, n int32) {
	k.wheelCount++
	lv := &k.levels[level]
	b := &lv.buckets[idx]
	k.nodes[n].next = 0
	if b.tail == 0 {
		b.head = n
	} else {
		k.nodes[b.tail].next = n
	}
	b.tail = n
	lv.occ[idx>>6] |= 1 << (idx & 63)
}

// firstSet returns the index of the lowest set bit in the occupancy bitmap.
func firstSet(occ *[wheelSize / 64]uint64) (int, bool) {
	for w, bitsWord := range occ {
		if bitsWord != 0 {
			return w<<6 + bits.TrailingZeros64(bitsWord), true
		}
	}
	return 0, false
}

// scan0 returns the lowest occupied level-0 bucket, starting the word scan at
// the cursor (cur0's invariant makes the skipped words provably empty). It
// does not move the cursor: only dispatch may, because only dispatch pins the
// clock to the found bucket.
func (k *Kernel) scan0() (int, bool) {
	occ := &k.levels[0].occ
	for w := k.cur0; w < len(occ); w++ {
		if occ[w] != 0 {
			return w<<6 + bits.TrailingZeros64(occ[w]), true
		}
	}
	return 0, false
}

// popNext removes and returns the earliest (when, seq) event's node index,
// or 0.
func (k *Kernel) popNext() int32 {
	if k.pending == 0 {
		return 0
	}
	for {
		if len(k.overflow) > 0 && k.nodes[k.overflow[0]].when < k.base {
			k.pending--
			return k.heapPop()
		}
		if idx, ok := k.scan0(); ok {
			k.cur0 = idx >> 6
			lv := &k.levels[0]
			b := &lv.buckets[idx]
			n := b.head
			b.head = k.nodes[n].next
			if b.head == 0 {
				b.tail = 0
				lv.occ[idx>>6] &^= 1 << (idx & 63)
			}
			k.wheelCount--
			k.pending--
			k.nodes[n].next = 0
			return n
		}
		k.advance()
	}
}

// peek returns the earliest pending timestamp without dispatching. It may
// advance the wheel window (cascade/refill), which never reorders events.
func (k *Kernel) peek() (Time, bool) {
	if k.pending == 0 {
		return 0, false
	}
	for {
		if len(k.overflow) > 0 && k.nodes[k.overflow[0]].when < k.base {
			return k.nodes[k.overflow[0]].when, true
		}
		if idx, ok := k.scan0(); ok {
			return k.base + Time(idx), true
		}
		k.advance()
	}
}

// advance moves the level-0 window forward to the next occupied region:
// cascading the first non-empty level-1 or level-2 bucket down, or — when
// the wheel is fully drained — jumping to the overflow heap's minimum and
// refilling the wheel's new 2^24-cycle horizon from it. Called only with
// pending > 0 and level 0 empty.
func (k *Kernel) advance() {
	k.cur0 = 0 // base moves; the cascade/refill below may fill any word
	if k.wheelCount == 0 {
		// Rollover: every wheel event has dispatched, so the next span is
		// wherever the heap minimum lives. Draining the heap in (when, seq)
		// order seeds each bucket FIFO sorted; later direct schedules into
		// these spans carry larger sequence numbers and append behind.
		k.base = k.nodes[k.overflow[0]].when &^ (span0 - 1)
		limit := (k.base &^ (span2 - 1)) + span2
		for len(k.overflow) > 0 && k.nodes[k.overflow[0]].when < limit {
			k.place(k.heapPop())
		}
		return
	}
	if idx, ok := firstSet(&k.levels[1].occ); ok {
		k.base = (k.base &^ (span1 - 1)) + Time(idx)<<wheelBits
		k.cascade(1, idx)
		return
	}
	idx, ok := firstSet(&k.levels[2].occ)
	if !ok {
		panic("sim: wheel accounting corrupted (resident events but all levels empty)")
	}
	k.base = (k.base &^ (span2 - 1)) + Time(idx)<<(2*wheelBits)
	k.cascade(2, idx)
}

// cascade redistributes one upper-level bucket into the levels below it,
// preserving list order (and therefore same-cycle FIFO order).
func (k *Kernel) cascade(level, idx int) {
	lv := &k.levels[level]
	b := &lv.buckets[idx]
	n := b.head
	b.head, b.tail = 0, 0
	lv.occ[idx>>6] &^= 1 << (idx & 63)
	for n != 0 {
		next := k.nodes[n].next
		k.wheelCount--
		k.place(n)
		n = next
	}
}

// Overflow heap: a hand-rolled binary min-heap on (when, seq) over node
// indices, avoiding container/heap's interface boxing on the cold path too.

func (k *Kernel) nodeLess(a, b int32) bool {
	na, nb := &k.nodes[a], &k.nodes[b]
	return na.when < nb.when || (na.when == nb.when && na.seq < nb.seq)
}

func (k *Kernel) heapPush(n int32) {
	h := append(k.overflow, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !k.nodeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	k.overflow = h
}

func (k *Kernel) heapPop() int32 {
	h := k.overflow
	n := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= len(h) {
			break
		}
		if c+1 < len(h) && k.nodeLess(h[c+1], h[c]) {
			c++
		}
		if !k.nodeLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	k.overflow = h
	return n
}

// Step executes the single earliest event and returns true, or returns false
// if no events remain.
func (k *Kernel) Step() bool {
	n := k.popNext()
	if n == 0 {
		return false
	}
	nd := &k.nodes[n]
	k.now = nd.when
	k.executed++
	// Release before dispatch so the handler's own scheduling reuses the node.
	if h := nd.h; h != nil {
		data := nd.data
		k.releaseNode(n)
		h.OnEvent(k.now, data)
	} else {
		fn := nd.fn
		k.releaseNode(n)
		fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t execute.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		when, ok := k.peek()
		if !ok || when > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunBefore executes events with timestamps strictly less than t, leaving
// the clock at the last dispatched event — unlike RunUntil it never coasts
// the clock forward, so the kernel's state afterwards is exactly the state
// an uninterrupted run passes through between two events. It is the
// run-to-warmup-barrier primitive (docs/DETERMINISM.md).
func (k *Kernel) RunBefore(t Time) {
	k.stopped = false
	for !k.stopped {
		when, ok := k.peek()
		if !ok || when >= t {
			return
		}
		k.Step()
	}
}

// RunLimit executes at most n further events; it returns the number executed.
// Useful as a safety net in tests.
func (k *Kernel) RunLimit(n uint64) uint64 {
	k.stopped = false
	var i uint64
	for i = 0; i < n && !k.stopped; i++ {
		if !k.Step() {
			break
		}
	}
	return i
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }
