// Package sim provides the deterministic discrete-event simulation kernel
// used by every Corona subsystem model.
//
// Simulated time is measured in processor clock cycles at 5 GHz (the Corona
// core frequency, Table 1 of the paper), so one cycle is 0.2 ns. Components
// schedule closures at absolute or relative times; the kernel executes them
// in time order, breaking ties by scheduling order so that runs are fully
// deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in 5 GHz clock cycles.
type Time uint64

// Cycle durations and conversions.
const (
	// CyclesPerNs is the number of 5 GHz cycles in one nanosecond.
	CyclesPerNs = 5
	// NsPerCycle is the duration of one cycle in nanoseconds.
	NsPerCycle = 0.2
)

// Ns converts a cycle count to nanoseconds.
func (t Time) Ns() float64 { return float64(t) * NsPerCycle }

// Seconds converts a cycle count to seconds.
func (t Time) Seconds() float64 { return float64(t) * 0.2e-9 }

// FromNs converts nanoseconds to cycles, rounding up so that latencies are
// never under-modelled.
func FromNs(ns float64) Time {
	c := ns * CyclesPerNs
	t := Time(c)
	if float64(t) < c {
		t++
	}
	return t
}

type event struct {
	when Time
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	pq      eventHeap
	now     Time
	seq     uint64
	stopped bool
	// executed counts events dispatched, for introspection and test limits.
	executed uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.pq)
	return k
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of scheduled, not-yet-executed events.
func (k *Kernel) Pending() int { return len(k.pq) }

// Executed returns the number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Schedule runs fn after delay cycles (possibly zero, meaning "later this
// cycle", after already-queued events for the current time).
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.At(k.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past is a programming
// error and panics: silent time travel corrupts causality in queue models.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.pq, event{when: t, seq: k.seq, fn: fn})
}

// Step executes the single earliest event and returns true, or returns false
// if no events remain.
func (k *Kernel) Step() bool {
	if len(k.pq) == 0 {
		return false
	}
	e := heap.Pop(&k.pq).(event)
	k.now = e.when
	k.executed++
	e.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t execute.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped && len(k.pq) > 0 && k.pq[0].when <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunLimit executes at most n further events; it returns the number executed.
// Useful as a safety net in tests.
func (k *Kernel) RunLimit(n uint64) uint64 {
	k.stopped = false
	var i uint64
	for i = 0; i < n && !k.stopped; i++ {
		if !k.Step() {
			break
		}
	}
	return i
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }
