package sim

import "fmt"

// KernelSnapshot is a deep, self-contained copy of a Kernel's scheduler
// state: clock, sequence counter, wheel levels, overflow heap, and the full
// node arena with every pending event. It shares nothing mutable with the
// kernel it was taken from, so one snapshot may be restored into many
// kernels, concurrently, from different goroutines — the warmup-forking
// substrate described in docs/DETERMINISM.md.
//
// Handler interface values in the snapshot still reference components of the
// source simulation; Restore remaps them into the target's components.
type KernelSnapshot struct {
	now      Time
	seq      uint64
	executed uint64
	base     Time

	levels     [wheelLevels]wheelLevel
	wheelCount int
	pending    int
	overflow   []int32
	nodes      []eventNode
	free       int32
}

// Now returns the snapshot's simulation clock.
func (s *KernelSnapshot) Now() Time { return s.now }

// Pending returns the number of scheduled events captured in the snapshot.
func (s *KernelSnapshot) Pending() int { return s.pending }

// Snapshot deep-copies the kernel's state. Closure events (the Schedule/At
// path) cannot be restored into another simulation — a captured closure pins
// the source's components — so any pending closure is an error; hot-path
// components all use the typed Handler path. accept, when non-nil, vets each
// pending event's handler (reject handlers Restore won't know how to remap);
// returning false fails the snapshot with a descriptive error.
func (k *Kernel) Snapshot(accept func(Handler) bool) (*KernelSnapshot, error) {
	s := &KernelSnapshot{
		now:        k.now,
		seq:        k.seq,
		executed:   k.executed,
		base:       k.base,
		levels:     k.levels,
		wheelCount: k.wheelCount,
		pending:    k.pending,
		overflow:   append([]int32(nil), k.overflow...),
		nodes:      append([]eventNode(nil), k.nodes...),
		free:       k.free,
	}
	// Free-list nodes are zeroed at release, so every node with h or fn set
	// is a live pending event.
	for i := 1; i < len(s.nodes); i++ {
		nd := &s.nodes[i]
		if nd.fn != nil {
			return nil, fmt.Errorf("sim: snapshot: pending closure event at t=%d cannot be restored; schedule restorable work via the typed Handler path", nd.when)
		}
		if nd.h != nil && accept != nil && !accept(nd.h) {
			return nil, fmt.Errorf("sim: snapshot: pending %T event at t=%d is not restorable", nd.h, nd.when)
		}
	}
	return s, nil
}

// Restore overwrites k with snap's state, reusing k's storage capacity. remap
// translates each pending event's handler into the restoring simulation's
// components; nil remap keeps handlers as-is (restoring into the same
// component set). A remap returning nil fails the restore, and k is left
// Reset (empty but valid) rather than half-loaded. snap is only read, never
// written, so concurrent restores from one shared snapshot are safe.
func (k *Kernel) Restore(snap *KernelSnapshot, remap func(Handler) Handler) error {
	if len(k.nodes) > len(snap.nodes) {
		clear(k.nodes[len(snap.nodes):])
	}
	k.nodes = append(k.nodes[:0], snap.nodes...)
	if remap != nil {
		for i := 1; i < len(k.nodes); i++ {
			h := k.nodes[i].h
			if h == nil {
				continue
			}
			nh := remap(h)
			if nh == nil {
				when := k.nodes[i].when
				k.Reset()
				return fmt.Errorf("sim: restore: no mapping for pending %T event at t=%d", h, when)
			}
			k.nodes[i].h = nh
		}
	}
	k.now, k.seq, k.executed, k.base = snap.now, snap.seq, snap.executed, snap.base
	k.stopped = false
	k.levels = snap.levels
	k.cur0 = 0 // scan accelerator, not snapshot state; zero is always valid
	k.wheelCount, k.pending = snap.wheelCount, snap.pending
	k.overflow = append(k.overflow[:0], snap.overflow...)
	k.free = snap.free
	return nil
}

// Reset returns the kernel to its just-constructed state — time zero, no
// events — retaining grown node-arena and heap capacity so a pooled kernel's
// next run schedules without allocating.
func (k *Kernel) Reset() {
	k.now, k.seq, k.executed, k.base = 0, 0, 0, 0
	k.stopped = false
	k.levels = [wheelLevels]wheelLevel{}
	k.cur0 = 0
	k.wheelCount, k.pending = 0, 0
	k.overflow = k.overflow[:0]
	if len(k.nodes) == 0 {
		k.nodes = make([]eventNode, 1, 1024)
		return
	}
	clear(k.nodes[:cap(k.nodes)])
	k.nodes = k.nodes[:1]
	k.free = 0
}
