package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandUniformity(t *testing.T) {
	// Coarse chi-squared-free check: each of 10 buckets gets 10% +- 2%.
	r := NewRand(99)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.02 {
			t.Errorf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(5)
	const p = 0.25
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestRandGeometricPOne(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%64) + 1
		r := NewRand(seed)
		dst := make([]int, n)
		r.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
