package sim

import (
	"container/heap"
	"sync"
	"testing"
)

// refEvent / refKernel reimplement the seed's container/heap scheduler as the
// ordering oracle for the time-wheel kernel: dispatch strictly by (when, seq).
type refEvent struct {
	when Time
	seq  uint64
	id   uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type refKernel struct {
	pq  refHeap
	now Time
	seq uint64
}

func (r *refKernel) schedule(d Time, id uint64) {
	r.seq++
	heap.Push(&r.pq, refEvent{when: r.now + d, seq: r.seq, id: id})
}

func (r *refKernel) step() (refEvent, bool) {
	if len(r.pq) == 0 {
		return refEvent{}, false
	}
	e := heap.Pop(&r.pq).(refEvent)
	r.now = e.when
	return e, true
}

func (r *refKernel) peek() (Time, bool) {
	if len(r.pq) == 0 {
		return 0, false
	}
	return r.pq[0].when, true
}

// delayMix spans every kernel tier: same-cycle ties, level-0/1/2 wheel
// buckets, and overflow-heap territory beyond the 2^24-cycle horizon.
var delayMix = []Time{
	0, 0, 1, 2, 3, 5, 17, 100,
	span0 - 1, span0, span0 + 1, 3 * span0,
	span1 - 1, span1, span1 + 1, 7 * span1,
	span2 - 1, span2, span2 + 1, 3 * span2,
}

// childDelays decides, purely from an event's id, which child events it
// schedules while running — so the wheel driver and the reference oracle make
// identical nested-scheduling decisions as long as dispatch order agrees.
func childDelays(id, budget uint64) []Time {
	if id%4 != 0 || budget == 0 {
		return nil
	}
	n := len(delayMix)
	return []Time{delayMix[(id*13)%uint64(n)], delayMix[(id*29)%uint64(n)], 0}
}

// diffDriver runs the wheel side of the differential test: every dispatched
// event records (when, id) and schedules its children, alternating between
// the typed and closure paths so both funnel through the ordering machinery.
type diffDriver struct {
	k      *Kernel
	got    []refEvent
	nextID uint64
	budget uint64 // remaining child spawns, to terminate the cascade
}

func (d *diffDriver) OnEvent(now Time, id uint64) {
	d.got = append(d.got, refEvent{when: now, id: id})
	for _, delay := range childDelays(id, d.budget) {
		d.budget--
		cid := d.nextID
		d.nextID++
		if cid%3 == 0 {
			k := d.k
			k.Schedule(delay, func() { d.OnEvent(k.Now(), cid) })
		} else {
			d.k.ScheduleEvent(delay, d, cid)
		}
	}
}

// refDriver mirrors diffDriver's decisions on the oracle.
type refDriver struct {
	r      *refKernel
	got    []refEvent
	nextID uint64
	budget uint64
}

func (d *refDriver) dispatch(e refEvent) {
	d.got = append(d.got, refEvent{when: e.when, id: e.id})
	for _, delay := range childDelays(e.id, d.budget) {
		d.budget--
		cid := d.nextID
		d.nextID++
		d.r.schedule(delay, cid)
	}
}

func compareDispatch(t *testing.T, trial int, got, want []refEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: wheel dispatched %d events, reference %d", trial, len(got), len(want))
	}
	for i := range want {
		if got[i].id != want[i].id || got[i].when != want[i].when {
			t.Fatalf("trial %d: dispatch diverges at %d: wheel (t=%d id=%d), reference (t=%d id=%d)",
				trial, i, got[i].when, got[i].id, want[i].when, want[i].id)
		}
	}
}

// TestWheelMatchesHeapKernel drives the wheel kernel and the reference heap
// kernel over identical randomized schedules — same-cycle ties, overflow
// bucket refills, events scheduled from inside running events — and asserts
// identical dispatch order.
func TestWheelMatchesHeapKernel(t *testing.T) {
	rng := NewRand(20080613)
	for trial := 0; trial < 40; trial++ {
		k := NewKernel()
		ref := &refKernel{}
		wd := &diffDriver{k: k, budget: 300}
		rd := &refDriver{r: ref, budget: 300}

		seed := 100 + rng.Intn(150)
		for i := 0; i < seed; i++ {
			d := delayMix[rng.Intn(len(delayMix))]
			k.ScheduleEvent(d, wd, wd.nextID)
			ref.schedule(d, rd.nextID)
			wd.nextID++
			rd.nextID++
		}

		k.Run()
		for {
			e, ok := ref.step()
			if !ok {
				break
			}
			rd.dispatch(e)
		}
		compareDispatch(t, trial, wd.got, rd.got)
		if k.Now() != ref.now {
			t.Fatalf("trial %d: final clock %d, reference %d", trial, k.Now(), ref.now)
		}
		if k.Pending() != 0 {
			t.Fatalf("trial %d: %d events still pending after Run", trial, k.Pending())
		}
	}
}

// TestWheelRunUntilMatchesHeap checks the RunUntil boundary against the
// oracle: several successive horizons, each dispatching exactly the events
// with timestamps <= t and leaving the clock at t.
func TestWheelRunUntilMatchesHeap(t *testing.T) {
	rng := NewRand(7)
	for trial := 0; trial < 20; trial++ {
		k := NewKernel()
		ref := &refKernel{}
		wd := &diffDriver{k: k, budget: 100}
		rd := &refDriver{r: ref, budget: 100}
		for i := 0; i < 120; i++ {
			d := delayMix[rng.Intn(len(delayMix))]
			k.ScheduleEvent(d, wd, wd.nextID)
			ref.schedule(d, rd.nextID)
			wd.nextID++
			rd.nextID++
		}
		// Horizons hit bucket edges, the far heap, and a gap past all events.
		for _, horizon := range []Time{0, 3, span0, span0 + 1, span1 - 1, 2 * span1, span2 + span1, 5 * span2} {
			k.RunUntil(horizon)
			for {
				w, ok := ref.peek()
				if !ok || w > horizon {
					break
				}
				e, _ := ref.step()
				rd.dispatch(e)
			}
			if ref.now < horizon {
				ref.now = horizon
			}
			compareDispatch(t, trial, wd.got, rd.got)
			if k.Now() != ref.now {
				t.Fatalf("trial %d: clock %d after RunUntil(%d), reference %d", trial, k.Now(), horizon, ref.now)
			}
		}
		// Scheduling into the gap between the clock and an advanced wheel
		// window must still dispatch in time order (below-window heap path).
		k.ScheduleEvent(1, wd, wd.nextID)
		ref.schedule(1, rd.nextID)
		wd.nextID++
		rd.nextID++
		k.Run()
		for {
			e, ok := ref.step()
			if !ok {
				break
			}
			rd.dispatch(e)
		}
		compareDispatch(t, trial, wd.got, rd.got)
	}
}

// stopAfter stops the kernel from inside an event, mid-cycle: events for the
// same cycle must stay queued and resume in FIFO order.
type stopAfter struct {
	k     *Kernel
	got   []uint64
	limit int
}

func (s *stopAfter) OnEvent(_ Time, data uint64) {
	s.got = append(s.got, data)
	if len(s.got) == s.limit {
		s.k.Stop()
	}
}

func TestWheelStopMidCycle(t *testing.T) {
	k := NewKernel()
	s := &stopAfter{k: k, limit: 3}
	// Five events on one cycle, two more a cycle later.
	for i := 0; i < 5; i++ {
		k.ScheduleEvent(10, s, uint64(i))
	}
	k.ScheduleEvent(11, s, 5)
	k.ScheduleEvent(11, s, 6)
	k.Run()
	if len(s.got) != 3 || k.Now() != 10 {
		t.Fatalf("stopped after %d events at t=%d, want 3 at t=10", len(s.got), k.Now())
	}
	if k.Pending() != 4 {
		t.Fatalf("pending = %d after mid-cycle stop, want 4", k.Pending())
	}
	k.Run()
	want := []uint64{0, 1, 2, 3, 4, 5, 6}
	if len(s.got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(s.got), len(want))
	}
	for i, id := range want {
		if s.got[i] != id {
			t.Fatalf("dispatch order %v, want %v (same-cycle FIFO across Stop)", s.got, want)
		}
	}
}

// reuseHandler exercises the node free list as components do: every dispatch
// immediately schedules again, so the just-released node is reused while the
// event is still running.
type reuseHandler struct {
	k    *Kernel
	left int
}

func (h *reuseHandler) OnEvent(_ Time, data uint64) {
	if h.left == 0 {
		return
	}
	h.left--
	// Mixed fan-out keeps several pooled nodes in flight at once.
	h.k.ScheduleEvent(1+Time(data%7), h, data*2654435761+1)
	if data%3 == 0 {
		h.k.ScheduleEvent(span1+Time(data%97), h, data+1)
	}
}

// TestWheelFreeListRace runs independent kernels concurrently under the race
// detector: the node pool is per-kernel state, so hammering many kernels at
// once must show no sharing. (go test -race is the point of this test; it
// still verifies pool-reuse bookkeeping without the detector.)
func TestWheelFreeListRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := NewKernel()
			h := &reuseHandler{k: k, left: 20000}
			for i := 0; i < 32; i++ {
				k.ScheduleEvent(Time(i%5), h, uint64(g*1000+i))
			}
			k.Run()
			if k.Pending() != 0 {
				t.Errorf("goroutine %d: %d events pending after Run", g, k.Pending())
			}
			if k.Executed() == 0 {
				t.Errorf("goroutine %d: no events executed", g)
			}
		}(g)
	}
	wg.Wait()
}
