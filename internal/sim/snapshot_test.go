package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// snapRecorder is a typed handler that records its dispatches and keeps a
// randomized self-perpetuating schedule going, exercising same-cycle ties,
// cascades, and overflow-heap territory.
type snapRecorder struct {
	k     *Kernel
	rng   *Rand
	trace []snapEvent
	left  int
}

type snapEvent struct {
	when Time
	data uint64
}

func (r *snapRecorder) OnEvent(now Time, data uint64) {
	r.trace = append(r.trace, snapEvent{now, data})
	if r.left <= 0 {
		return
	}
	r.left--
	// A burst of follow-on events across all wheel spans, with deliberate
	// same-cycle ties.
	n := 1 + r.rng.Intn(3)
	for i := 0; i < n; i++ {
		var delay Time
		switch r.rng.Intn(5) {
		case 0:
			delay = 0
		case 1:
			delay = Time(r.rng.Intn(256))
		case 2:
			delay = Time(r.rng.Intn(1 << 16))
		case 3:
			delay = Time(r.rng.Intn(1 << 24))
		default:
			delay = Time(r.rng.Intn(1 << 26)) // past the wheel horizon
		}
		r.k.ScheduleEvent(delay, r, r.rng.Uint64()%1000)
	}
}

func seedRecorder(k *Kernel, seed uint64, left int) *snapRecorder {
	r := &snapRecorder{k: k, rng: NewRand(seed), left: left}
	for i := 0; i < 8; i++ {
		k.ScheduleEvent(Time(r.rng.Intn(1<<20)), r, uint64(i))
	}
	return r
}

// TestKernelSnapshotRestoreMatchesOracle snapshots randomized runs at
// arbitrary event counts, restores into a fresh kernel, continues, and
// requires the dispatch trace — (when, data) pairs in dispatch order, which
// pins the (when, seq) tie-break across the restore boundary — to match the
// uninterrupted oracle exactly.
func TestKernelSnapshotRestoreMatchesOracle(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oracle := NewKernel()
			or := seedRecorder(oracle, seed, 400)
			oracle.Run()

			cut := NewRand(seed * 77).Intn(len(or.trace))

			k1 := NewKernel()
			r1 := seedRecorder(k1, seed, 400)
			for i := 0; i < cut; i++ {
				if !k1.Step() {
					t.Fatalf("kernel drained at %d, oracle ran %d", i, len(or.trace))
				}
			}
			snap, err := k1.Snapshot(nil)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}

			// Restore into a fresh kernel, remapping the recorder handler to a
			// new recorder bound to the new kernel with the same RNG state.
			k2 := NewKernel()
			r2 := &snapRecorder{k: k2, rng: r1.rng.Clone(), left: r1.left}
			err = k2.Restore(snap, func(h Handler) Handler {
				if h != Handler(r1) {
					t.Fatalf("unexpected handler %T", h)
				}
				return r2
			})
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if k2.Now() != k1.Now() || k2.Pending() != k1.Pending() || k2.Executed() != k1.Executed() {
				t.Fatalf("restored scalars diverge: now %d/%d pending %d/%d executed %d/%d",
					k2.Now(), k1.Now(), k2.Pending(), k1.Pending(), k2.Executed(), k1.Executed())
			}
			k2.Run()

			got := append(append([]snapEvent(nil), r1.trace...), r2.trace...)
			if !reflect.DeepEqual(got, or.trace) {
				t.Fatalf("trace diverges after restore at cut %d: got %d events, oracle %d", cut, len(got), len(or.trace))
			}

			// The donor kernel, left untouched, must also finish identically:
			// Snapshot must not perturb the source.
			k1.Run()
			if !reflect.DeepEqual(r1.trace, or.trace) {
				t.Fatalf("donor kernel diverged after Snapshot at cut %d", cut)
			}
		})
	}
}

// TestKernelSnapshotRejectsClosures pins the snapshot contract: pending
// closure events cannot be captured.
func TestKernelSnapshotRejectsClosures(t *testing.T) {
	k := NewKernel()
	k.Schedule(5, func() {})
	if _, err := k.Snapshot(nil); err == nil {
		t.Fatal("Snapshot accepted a pending closure event")
	}
}

// TestKernelSnapshotAcceptVeto pins the handler vetting hook.
func TestKernelSnapshotAcceptVeto(t *testing.T) {
	k := NewKernel()
	r := seedRecorder(k, 3, 0)
	_ = r
	if _, err := k.Snapshot(func(Handler) bool { return false }); err == nil {
		t.Fatal("Snapshot ignored the accept veto")
	}
	if _, err := k.Snapshot(func(Handler) bool { return true }); err != nil {
		t.Fatalf("Snapshot rejected accepted handlers: %v", err)
	}
}

// TestKernelRestoreRemapFailureResets pins that a failed restore leaves the
// kernel empty-but-valid rather than half-loaded.
func TestKernelRestoreRemapFailureResets(t *testing.T) {
	k := NewKernel()
	seedRecorder(k, 9, 0)
	snap, err := k.Snapshot(nil)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	k2 := NewKernel()
	if err := k2.Restore(snap, func(Handler) Handler { return nil }); err == nil {
		t.Fatal("Restore succeeded with a nil-returning remap")
	}
	if k2.Pending() != 0 || k2.Now() != 0 {
		t.Fatalf("failed restore left state behind: pending=%d now=%d", k2.Pending(), k2.Now())
	}
	// The reset kernel must be fully usable.
	fired := false
	k2.Schedule(1, func() { fired = true })
	k2.Run()
	if !fired {
		t.Fatal("kernel unusable after failed restore")
	}
}

// TestKernelResetMatchesFresh pins that a Reset kernel behaves exactly like a
// new one over a randomized schedule.
func TestKernelResetMatchesFresh(t *testing.T) {
	dirty := NewKernel()
	seedRecorder(dirty, 11, 200)
	for i := 0; i < 500; i++ {
		dirty.Step()
	}
	dirty.Reset()
	if dirty.Now() != 0 || dirty.Pending() != 0 || dirty.Executed() != 0 {
		t.Fatalf("Reset left state: now=%d pending=%d executed=%d", dirty.Now(), dirty.Pending(), dirty.Executed())
	}

	fresh := NewKernel()
	rd := seedRecorder(dirty, 13, 300)
	rf := seedRecorder(fresh, 13, 300)
	dirty.Run()
	fresh.Run()
	if !reflect.DeepEqual(rd.trace, rf.trace) {
		t.Fatal("reset kernel diverges from fresh kernel")
	}
}
