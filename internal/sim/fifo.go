package sim

// Fifo is the capacity-reusing queue behind every hot-path FIFO in the
// simulator (router port queues, injection queues, credit wait lists,
// controller space waiters). Pops advance a head index instead of
// reslicing away the backing array — the naive q = q[1:] idiom strands
// capacity and reallocates on every refill cycle — so a steady-state queue
// stops allocating once grown to its peak depth. A drained queue resets to
// the buffer's start, and a long-lived non-empty queue compacts once the
// dead prefix outweighs the live window, keeping memory O(live elements)
// even for a queue that never empties (a saturated memory controller's
// waiter list runs for a whole cell without draining). Compaction copies
// the live window at most once per len(live)+compactMin pops, so Pop stays
// amortized O(1). A Fifo belongs to one component on one kernel goroutine;
// it is not synchronized.
type Fifo[T any] struct {
	buf  []T
	head int
}

// compactMin is the minimum dead prefix before Pop considers compacting;
// small queues just run to empty and reset for free.
const compactMin = 32

// Push appends v to the tail.
func (q *Fifo[T]) Push(v T) { q.buf = append(q.buf, v) }

// Len returns the number of queued elements.
func (q *Fifo[T]) Len() int { return len(q.buf) - q.head }

// Empty reports whether the queue holds no elements.
func (q *Fifo[T]) Empty() bool { return q.head == len(q.buf) }

// Front returns the head element without removing it.
func (q *Fifo[T]) Front() T { return q.buf[q.head] }

// At returns the i-th queued element (0 = head) without removing it.
func (q *Fifo[T]) At(i int) T { return q.buf[q.head+i] }

// Reset drops every element and clears the whole backing buffer (so no
// references linger in capacity), keeping the grown capacity for reuse.
func (q *Fifo[T]) Reset() {
	clear(q.buf[:cap(q.buf)])
	q.buf = q.buf[:0]
	q.head = 0
}

// CopyFrom overwrites q with src's live window. The copy is compacted (head
// 0), which is observationally identical: only the live element sequence is
// visible through the Fifo API.
func (q *Fifo[T]) CopyFrom(src *Fifo[T]) {
	q.Reset()
	q.buf = append(q.buf, src.buf[src.head:]...)
}

// Pop removes and returns the head element. Popped (and compacted-over)
// slots are zeroed so the buffer never retains references.
func (q *Fifo[T]) Pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head >= compactMin && q.head > len(q.buf)-q.head:
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}
