package sim

// Rand is a small, fast, deterministic pseudo-random number generator
// (xorshift64*), used by workload generators so that simulations are
// reproducible independent of the Go runtime's rand implementation details.
// Each component owns its own Rand so event execution order cannot perturb
// random streams.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded by seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zeros fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Clone returns an independent generator that continues the same stream:
// the snapshot/restore primitive for random state (docs/DETERMINISM.md).
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Geometric returns a sample from a geometric distribution with success
// probability p (mean (1-p)/p extra trials); it is used to draw memoryless
// inter-arrival gaps. p must be in (0, 1].
func (r *Rand) Geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	// Inverse-CDF sampling; count failures before first success.
	var n uint64
	for r.Float64() >= p {
		n++
		if n > 1<<20 { // pathological p; bound the loop
			break
		}
	}
	return n
}

// Perm fills dst with a pseudo-random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
