package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(5, func() { got = append(got, 0) })
	k.Schedule(10, func() { got = append(got, 2) }) // same time: FIFO by seq
	k.Schedule(20, func() { got = append(got, 3) })
	k.Run()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %d, want 20", k.Now())
	}
}

func TestKernelZeroDelay(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.Schedule(0, func() {
		order = append(order, "a")
		k.Schedule(0, func() { order = append(order, "c") })
	})
	k.Schedule(0, func() { order = append(order, "b") })
	k.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits int
	var rec func(depth int)
	rec = func(depth int) {
		hits++
		if depth < 10 {
			k.Schedule(1, func() { rec(depth + 1) })
		}
	}
	k.Schedule(0, func() { rec(0) })
	k.Run()
	if hits != 11 {
		t.Fatalf("hits = %d, want 11", hits)
	}
	if k.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", k.Now())
	}
}

func TestKernelPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var count int
	for i := Time(1); i <= 100; i++ {
		k.At(i, func() { count++ })
	}
	k.RunUntil(50)
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
	if k.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", k.Now())
	}
	k.RunUntil(200)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if k.Now() != 200 {
		t.Fatalf("Now() = %d, want 200 (clock advances past last event)", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	var count int
	for i := Time(1); i <= 10; i++ {
		k.At(i, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	k.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resume", count)
	}
}

func TestKernelRunLimit(t *testing.T) {
	k := NewKernel()
	for i := Time(0); i < 10; i++ {
		k.At(i, func() {})
	}
	if n := k.RunLimit(4); n != 4 {
		t.Fatalf("RunLimit ran %d, want 4", n)
	}
	if n := k.RunLimit(100); n != 6 {
		t.Fatalf("RunLimit ran %d, want 6", n)
	}
}

// Property: for any set of (time, id) pairs, the kernel dispatches them
// sorted by time with stable order for equal times.
func TestKernelOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		type rec struct {
			when Time
			seq  int
		}
		var got []rec
		for i, d := range delays {
			d := Time(d)
			i := i
			k.At(d, func() { got = append(got, rec{d, i}) })
		}
		k.Run()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].when > got[i].when {
				return false
			}
			if got[i-1].when == got[i].when && got[i-1].seq > got[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromNs(20) != 100 {
		t.Errorf("FromNs(20) = %d, want 100", FromNs(20))
	}
	if FromNs(0.2) != 1 {
		t.Errorf("FromNs(0.2) = %d, want 1", FromNs(0.2))
	}
	if FromNs(0.3) != 2 { // rounds up
		t.Errorf("FromNs(0.3) = %d, want 2", FromNs(0.3))
	}
	if got := Time(100).Ns(); got != 20 {
		t.Errorf("Time(100).Ns() = %v, want 20", got)
	}
	if got := Time(5e9).Seconds(); got != 1 {
		t.Errorf("Time(5e9).Seconds() = %v, want 1", got)
	}
}
