package sim

import "fmt"

// Slots is a reusable reference registry for the typed event path: the
// Handler data word is a plain uint64, so components park reference payloads
// (messages, packets, transactions) in a Slots and thread the returned index
// through ScheduleEvent. Storage is free-listed, so steady-state use performs
// no allocation once the registry has grown to the component's peak
// concurrency. A Slots belongs to one component on one kernel goroutine; it
// is not synchronized.
type Slots[T any] struct {
	items []T
	free  []uint32
}

// Put parks v and returns its slot index for a Handler data word.
func (s *Slots[T]) Put(v T) uint64 {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		s.items[id] = v
		return uint64(id)
	}
	s.items = append(s.items, v)
	return uint64(len(s.items) - 1)
}

// Take removes and returns the value in slot id.
func (s *Slots[T]) Take(id uint64) T {
	v := s.Get(id)
	s.Free(id)
	return v
}

// Get returns the value in slot id without freeing it — for payloads shared
// by several in-flight events (free the slot with the last one).
func (s *Slots[T]) Get(id uint64) T {
	if id >= uint64(len(s.items)) {
		panic(fmt.Sprintf("sim: slot %d out of range (%d allocated)", id, len(s.items)))
	}
	return s.items[id]
}

// Free releases slot id for reuse and clears its storage so the registry
// does not retain the payload.
func (s *Slots[T]) Free(id uint64) {
	var zero T
	s.items[id] = zero
	s.free = append(s.free, uint32(id))
}

// Len returns the number of live (parked, unfreed) slots.
func (s *Slots[T]) Len() int { return len(s.items) - len(s.free) }

// Reset releases every slot and clears all storage, returning the registry to
// its zero state while keeping grown capacity for reuse.
func (s *Slots[T]) Reset() {
	clear(s.items)
	s.items = s.items[:0]
	s.free = s.free[:0]
}

// CopyFrom overwrites s with an exact copy of src: same slot contents, same
// free-list order, so indices already threaded through scheduled event data
// words remain valid in the copy. Part of the snapshot/restore substrate
// (docs/DETERMINISM.md).
func (s *Slots[T]) CopyFrom(src *Slots[T]) {
	// Clear the retained tail beyond the new length so old payload references
	// do not linger in capacity.
	if len(s.items) > len(src.items) {
		clear(s.items[len(src.items):])
	}
	s.items = append(s.items[:0], src.items...)
	s.free = append(s.free[:0], src.free...)
}

// Walk calls fn for every slot's storage, including freed slots (which hold
// zero values): restore paths use it to remap handler references held inside
// parked payloads in place.
func (s *Slots[T]) Walk(fn func(id uint64, v *T)) {
	for i := range s.items {
		fn(uint64(i), &s.items[i])
	}
}
