package xbar

import (
	"fmt"

	"corona/internal/noc"
	"corona/internal/power"
	"corona/internal/sim"
)

// Parameter keys the "xbar" fabric accepts in noc.FabricParams.Params;
// values override DefaultConfig field-for-field.
const (
	ParamBytesPerCycle = "bytes_per_cycle"
	ParamTokenSpeed    = "token_speed"
	ParamInjectQueue   = "inject_queue"
	ParamRecvBuffer    = "recv_buffer"
)

// FromParams resolves a Config from the published defaults plus overrides,
// rejecting unknown keys and non-positive sizes.
func FromParams(p noc.FabricParams) (Config, error) {
	if err := p.CheckKeys("xbar",
		ParamBytesPerCycle, ParamTokenSpeed, ParamInjectQueue, ParamRecvBuffer); err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig()
	if p.Clusters > 0 {
		cfg.Clusters = p.Clusters
	}
	cfg.BytesPerCycle = p.Get(ParamBytesPerCycle, cfg.BytesPerCycle)
	cfg.TokenSpeed = p.Get(ParamTokenSpeed, cfg.TokenSpeed)
	cfg.InjectQueue = p.Get(ParamInjectQueue, cfg.InjectQueue)
	cfg.RecvBuffer = p.Get(ParamRecvBuffer, cfg.RecvBuffer)
	if cfg.Clusters <= 0 || cfg.BytesPerCycle <= 0 || cfg.TokenSpeed <= 0 ||
		cfg.InjectQueue <= 0 || cfg.RecvBuffer <= 0 {
		return Config{}, fmt.Errorf("xbar: non-positive parameter in %+v", cfg)
	}
	return cfg, nil
}

// init registers the MWSR crossbar with the fabric registry; the system
// model builds it by name ("xbar") instead of linking this package.
func init() {
	noc.Register(noc.Fabric{
		Name:        "xbar",
		Display:     "XBar",
		Description: "MWSR photonic crossbar, token-ring write arbitration (Corona §3.2)",
		Build: func(k *sim.Kernel, p noc.FabricParams) (noc.Network, error) {
			cfg, err := FromParams(p)
			if err != nil {
				return nil, err
			}
			return New(k, cfg), nil
		},
		Check: func(p noc.FabricParams) error { _, err := FromParams(p); return err },
		BisectionBytesPerSec: func(p noc.FabricParams) float64 {
			cfg, err := FromParams(p)
			if err != nil {
				return 0
			}
			// Fully connected: every channel crosses any cut once.
			return float64(cfg.Clusters*cfg.BytesPerCycle) * 5e9
		},
		MinTransitCycles: 2, // 1-cycle serialization + 1-cycle nearest-hop propagation
		PowerW: func(_ noc.Stats, _ sim.Time) float64 {
			return power.XBarContinuousW
		},
		Utilization: func(n noc.Network, elapsed sim.Time) float64 {
			return n.(*Crossbar).Utilization(elapsed)
		},
	})
}
