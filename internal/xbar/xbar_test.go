package xbar

import (
	"testing"
	"testing/quick"

	"corona/internal/noc"
	"corona/internal/sim"
)

// harness wires a crossbar with auto-consuming sinks that record arrivals.
type harness struct {
	k    *sim.Kernel
	x    *Crossbar
	got  []*noc.Message
	when []sim.Time
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{k: sim.NewKernel()}
	h.x = New(h.k, cfg)
	for c := 0; c < cfg.Clusters; c++ {
		c := c
		h.x.SetDeliver(c, func(m *noc.Message) {
			h.got = append(h.got, m)
			h.when = append(h.when, h.k.Now())
			h.x.Consume(c, m)
		})
	}
	return h
}

func msg(id uint64, src, dst, size int) *noc.Message {
	return &noc.Message{ID: id, Src: src, Dst: dst, Size: size, Kind: noc.KindRequest}
}

func TestSingleMessageLatency(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if !h.x.Send(msg(1, 10, 20, 64)) {
		t.Fatal("Send refused on empty queue")
	}
	h.k.Run()
	if len(h.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(h.got))
	}
	// Latency = token wait (<=8) + 1 cycle tx + propagation (<=8).
	lat := h.when[0]
	if lat < 1 || lat > 17 {
		t.Errorf("64 B message latency = %d cycles, want within [1,17]", lat)
	}
}

func TestCacheLineOneCycleSerialization(t *testing.T) {
	// "A 64-byte cache line can be sent ... in one 5 GHz clock."
	h := newHarness(t, DefaultConfig())
	h.x.Send(msg(1, 1, 2, 64))
	h.k.Run()
	// src=1 -> dst=2: distance 1, propagation 1 cycle, tx 1 cycle. Token for
	// channel 2 starts at position 2 and must loop to 1: floor(63/8) = 7.
	want := sim.Time(7 + 1 + 1)
	if h.when[0] != want {
		t.Errorf("delivery at %d, want %d (token 7 + tx 1 + prop 1)", h.when[0], want)
	}
}

func TestPropagationBounds(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	for d := 0; d < 64; d++ {
		for s := 0; s < 64; s++ {
			if s == d {
				continue
			}
			p := h.x.propagation(s, d)
			if p < 1 || p > 8 {
				t.Fatalf("propagation(%d,%d) = %d, want in [1,8]", s, d, p)
			}
		}
	}
	if h.x.propagation(63, 0) != 1 {
		t.Errorf("adjacent upstream writer should see 1 cycle, got %d", h.x.propagation(63, 0))
	}
	// A writer just downstream of home must traverse nearly the whole ring.
	if h.x.propagation(1, 0) != 8 {
		t.Errorf("farthest writer should see 8 cycles, got %d", h.x.propagation(1, 0))
	}
}

func TestLocalTrafficPanics(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("src==dst Send did not panic")
		}
	}()
	h.x.Send(msg(1, 5, 5, 64))
}

func TestInjectionQueueBackPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectQueue = 2
	h := newHarness(t, cfg)
	if !h.x.Send(msg(1, 0, 1, 64)) || !h.x.Send(msg(2, 0, 1, 64)) {
		t.Fatal("queue refused before capacity")
	}
	if h.x.Send(msg(3, 0, 1, 64)) {
		t.Fatal("queue accepted beyond capacity")
	}
	h.k.Run()
	if len(h.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(h.got))
	}
	// After draining, sends are accepted again.
	if !h.x.Send(msg(4, 0, 1, 64)) {
		t.Fatal("queue still refusing after drain")
	}
}

func TestManyWritersOneReaderSerializes(t *testing.T) {
	// All 63 other clusters send a line to cluster 0; the channel moves one
	// line per cycle, so total time is at least 63 cycles of occupancy and
	// deliveries never overlap in a way that exceeds channel bandwidth.
	h := newHarness(t, DefaultConfig())
	for s := 1; s < 64; s++ {
		if !h.x.Send(msg(uint64(s), s, 0, 64)) {
			t.Fatalf("send from %d refused", s)
		}
	}
	h.k.Run()
	if len(h.got) != 63 {
		t.Fatalf("delivered %d, want 63", len(h.got))
	}
	if h.x.BusyCycles != 63 {
		t.Errorf("BusyCycles = %d, want 63 (one per line)", h.x.BusyCycles)
	}
	end := h.when[len(h.when)-1]
	if end < 63 {
		t.Errorf("63 lines finished in %d cycles; channel bandwidth exceeded", end)
	}
	// Token hand-offs between neighbours are ~1 cycle, so the whole drain
	// should be well under 3 cycles per message.
	if end > 63*3 {
		t.Errorf("drain took %d cycles; arbitration overhead too high", end)
	}
}

func TestDistinctChannelsParallel(t *testing.T) {
	// 32 disjoint pairs transfer simultaneously: total time should be close
	// to a single transfer, not 32 of them.
	h := newHarness(t, DefaultConfig())
	for i := 0; i < 32; i++ {
		src, dst := 2*i, 2*i+1
		h.x.Send(msg(uint64(i), src, dst, 64))
	}
	h.k.Run()
	if len(h.got) != 32 {
		t.Fatalf("delivered %d, want 32", len(h.got))
	}
	if h.k.Now() > 20 {
		t.Errorf("32 parallel transfers took %d cycles, want <= 20 (channels are independent)", h.k.Now())
	}
}

func TestReceiveBufferBackPressure(t *testing.T) {
	// A sink that never consumes stalls writers after RecvBuffer deliveries.
	cfg := DefaultConfig()
	cfg.RecvBuffer = 4
	cfg.InjectQueue = 16
	k := sim.NewKernel()
	x := New(k, cfg)
	var delivered int
	for c := 0; c < cfg.Clusters; c++ {
		x.SetDeliver(c, func(m *noc.Message) { delivered++ })
	}
	for i := 0; i < 10; i++ {
		if !x.Send(msg(uint64(i), 1, 0, 64)) {
			t.Fatalf("send %d refused", i)
		}
	}
	k.Run()
	if delivered != 4 {
		t.Fatalf("delivered %d with stalled sink, want 4 (RecvBuffer)", delivered)
	}
	// Consuming frees credits and restarts the pipeline.
	x.Consume(0, msg(100, 1, 0, 64))
	k.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d after one Consume, want 5", delivered)
	}
	for i := 0; i < 5; i++ {
		x.Consume(0, msg(101, 1, 0, 64))
	}
	k.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d after full drain, want 10", delivered)
	}
}

func TestMultiMessageSizes(t *testing.T) {
	// A 16 B request still costs a full cycle; a 128 B message costs two.
	h := newHarness(t, DefaultConfig())
	h.x.Send(msg(1, 3, 4, 16))
	h.x.Send(msg(2, 3, 4, 128))
	h.k.Run()
	if h.x.BusyCycles != 1+2 {
		t.Errorf("BusyCycles = %d, want 3", h.x.BusyCycles)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.x.Send(msg(1, 0, 1, 16))
	h.x.Send(msg(2, 1, 0, 72))
	h.k.Run()
	s := h.x.Stats()
	if s.Messages != 2 || s.Bytes != 88 {
		t.Errorf("stats = %+v, want 2 messages / 88 bytes", s)
	}
	if u := h.x.Utilization(h.k.Now()); u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want in (0,1]", u)
	}
	if h.x.Utilization(0) != 0 {
		t.Error("zero-elapsed utilization should be 0")
	}
}

// Property: every sent message is delivered exactly once with a consuming
// sink, regardless of traffic pattern, and delivery time >= inject time.
func TestDeliveryCompleteness(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rng := sim.NewRand(seed)
		k := sim.NewKernel()
		cfg := DefaultConfig()
		cfg.InjectQueue = 200 // accept everything up front
		x := New(k, cfg)
		seen := make(map[uint64]int)
		for c := 0; c < cfg.Clusters; c++ {
			c := c
			x.SetDeliver(c, func(m *noc.Message) {
				seen[m.ID]++
				x.Consume(c, m)
			})
		}
		for i := 0; i < n; i++ {
			src := rng.Intn(64)
			dst := rng.Intn(63)
			if dst >= src {
				dst++
			}
			size := 16 + rng.Intn(112)
			if !x.Send(msg(uint64(i), src, dst, size)) {
				return false
			}
		}
		if k.RunLimit(2_000_000) >= 2_000_000 {
			return false
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateBandwidth(t *testing.T) {
	// Saturating all 64 channels simultaneously should sustain ~64 B/cycle
	// per channel: with 63 writers per channel sending back-to-back lines the
	// crossbar must move close to 20.48 TB/s in aggregate.
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.InjectQueue = 4
	x := New(k, cfg)
	var delivered uint64
	for c := 0; c < 64; c++ {
		c := c
		x.SetDeliver(c, func(m *noc.Message) {
			delivered += uint64(m.Size)
			x.Consume(c, m)
		})
	}
	// Keep the network saturated via retrying senders: every cluster writes
	// every channel, so the token hops between adjacent requesters and the
	// hand-off cost is sub-cycle.
	var pump func(src, dst int)
	var id uint64
	pump = func(src, dst int) {
		id++
		if x.Send(msg(id, src, dst, 64)) {
			k.Schedule(1, func() { pump(src, dst) })
		} else {
			k.Schedule(2, func() { pump(src, dst) })
		}
	}
	for c := 0; c < 64; c++ {
		for s := 0; s < 64; s++ {
			if s != c {
				pump(s, c)
			}
		}
	}
	const horizon = 2000
	k.RunUntil(horizon)
	k.Stop()
	perChannelBytesPerCycle := float64(delivered) / horizon / 64
	// Perfect is 64 B/cycle; arbitration hand-off costs a little.
	if perChannelBytesPerCycle < 48 {
		t.Errorf("sustained %.1f B/cycle/channel, want >= 48 (near line rate)", perChannelBytesPerCycle)
	}
}

// TestDoubleConsumePanics pins the pool misuse guard: a hub that Consumes
// one delivery twice would corrupt both the credit ledger and the free
// list, so the second release must panic at the offending call site.
func TestDoubleConsumePanics(t *testing.T) {
	k := sim.NewKernel()
	x := New(k, DefaultConfig())
	var delivered *noc.Message
	for c := 0; c < 64; c++ {
		x.SetDeliver(c, func(m *noc.Message) { delivered = m })
	}
	if !x.Send(msg(1, 3, 9, 64)) {
		t.Fatal("send refused")
	}
	k.Run()
	if delivered == nil {
		t.Fatal("message never delivered")
	}
	x.Consume(9, delivered)
	defer func() {
		if recover() == nil {
			t.Fatal("double Consume did not panic")
		}
	}()
	x.Consume(9, delivered)
}
