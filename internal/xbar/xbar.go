// Package xbar models Corona's optical crossbar (Section 3.2.1): a fully
// connected 64x64 interconnect built from 64 many-writer single-reader DWDM
// channels laid out as serpentine waveguide bundles.
//
// Each cluster owns one channel that only it can read; any cluster may write
// the channel by modulating the light as it passes. A channel is 256
// wavelengths (4 bundled waveguides) wide and is modulated on both clock
// edges, moving 64 bytes — one cache line — per 5 GHz clock, for 2.56 Tb/s
// per cluster and 20.48 TB/s total. Light is sourced at the channel's home
// cluster, travels once around the serpentine in 8 clocks, and terminates in
// the home cluster's detectors, so propagation takes up to 8 clocks
// depending on sender position. Write access is arbitrated by the all-optical
// token scheme in package arbiter; receive buffers at the home cluster apply
// credit-based back pressure to writers.
package xbar

import (
	"fmt"

	"corona/internal/arbiter"
	"corona/internal/noc"
	"corona/internal/sim"
)

// Config parameterizes the crossbar.
type Config struct {
	Clusters      int // 64
	BytesPerCycle int // channel payload per cycle (64 = one cache line)
	TokenSpeed    int // cluster positions the token travels per cycle (8)
	// InjectQueue is the per-(source,destination) injection FIFO depth.
	InjectQueue int
	// RecvBuffer is the per-destination receive buffer depth in messages;
	// it is the credit pool writers draw from.
	RecvBuffer int
}

// DefaultConfig returns the published Corona crossbar parameters.
func DefaultConfig() Config {
	return Config{
		Clusters:      64,
		BytesPerCycle: 64,
		TokenSpeed:    8,
		InjectQueue:   8,
		RecvBuffer:    16,
	}
}

type srcDstQueue struct {
	msgs   sim.Fifo[*noc.Message]
	active bool // head message is progressing through credit/token/transmit
}

// Crossbar implements noc.Network.
type Crossbar struct {
	noc.MsgPool // per-network message free list (Acquire / Consume recycles)

	k   *sim.Kernel
	cfg Config
	arb *arbiter.TokenRing

	queues  [][]srcDstQueue // [src][dst]
	deliver []noc.DeliverFunc

	credits    []int           // per destination channel
	creditWait []sim.Fifo[int] // per destination: src clusters waiting, FIFO

	// slots parks in-flight messages for the typed delivery event.
	slots sim.Slots[*noc.Message]

	stats noc.Stats
	// BusyCycles accumulates channel occupancy for utilization reporting.
	BusyCycles uint64
}

var _ noc.Network = (*Crossbar)(nil)

// The crossbar's kernel events run on the typed fast path: named views of
// the Crossbar implement sim.Handler for each event kind, with the source
// and destination cluster packed into the data word, so the hot
// credit/token/transmit pipeline schedules without allocating.

// pack2 packs a (src, dst) cluster pair into a handler data word.
func pack2(src, dst int) uint64 { return uint64(src)<<16 | uint64(dst) }

func unpack2(data uint64) (src, dst int) { return int(data >> 16 & 0xffff), int(data & 0xffff) }

// creditEvent hands a freed receive-buffer credit to a waiting writer.
type creditEvent Crossbar

func (e *creditEvent) OnEvent(_ sim.Time, data uint64) {
	src, dst := unpack2(data)
	(*Crossbar)(e).haveCredit(src, dst)
}

// releaseEvent fires when a message's tail leaves the modulators: the token
// re-injects and the next queued message restarts at the credit step.
type releaseEvent Crossbar

func (e *releaseEvent) OnEvent(_ sim.Time, data uint64) {
	x := (*Crossbar)(e)
	src, dst := unpack2(data)
	x.arb.Release(dst, src)
	x.advance(src, dst)
}

// deliverEvent fires when the light reaches the destination's detectors.
type deliverEvent Crossbar

func (e *deliverEvent) OnEvent(_ sim.Time, data uint64) {
	x := (*Crossbar)(e)
	m := x.slots.Take(data)
	x.stats.Messages++
	x.stats.Bytes += uint64(m.Size)
	x.deliver[m.Dst](m)
}

// Granted implements arbiter.GrantHandler: the destination channel's token
// was diverted for cluster, so the head message transmits.
func (x *Crossbar) Granted(channel, cluster int) { x.transmit(cluster, channel) }

// New builds a crossbar on kernel k.
func New(k *sim.Kernel, cfg Config) *Crossbar {
	if cfg.Clusters > 1<<16 {
		// pack2 carries cluster ids in 16-bit event data fields.
		panic(fmt.Sprintf("xbar: %d clusters exceeds the %d-cluster event encoding limit",
			cfg.Clusters, 1<<16))
	}
	if cfg.Clusters <= 0 || cfg.BytesPerCycle <= 0 || cfg.InjectQueue <= 0 || cfg.RecvBuffer <= 0 {
		panic(fmt.Sprintf("xbar: invalid config %+v", cfg))
	}
	x := &Crossbar{
		k:          k,
		cfg:        cfg,
		arb:        arbiter.New(k, cfg.Clusters, cfg.Clusters, cfg.TokenSpeed),
		queues:     make([][]srcDstQueue, cfg.Clusters),
		deliver:    make([]noc.DeliverFunc, cfg.Clusters),
		credits:    make([]int, cfg.Clusters),
		creditWait: make([]sim.Fifo[int], cfg.Clusters),
	}
	for i := range x.queues {
		x.queues[i] = make([]srcDstQueue, cfg.Clusters)
		x.credits[i] = cfg.RecvBuffer
	}
	return x
}

// Name implements noc.Network.
func (x *Crossbar) Name() string { return "xbar" }

// Quiescent implements noc.Quiescer: nil only when the crossbar is in its
// construction state — empty injection FIFOs, full credit pools, no waiting
// writers, no in-flight deliveries, and a virgin arbiter.
func (x *Crossbar) Quiescent() error {
	for src := range x.queues {
		for dst := range x.queues[src] {
			q := &x.queues[src][dst]
			if !q.msgs.Empty() || q.active {
				return fmt.Errorf("xbar: queue (%d,%d) busy (%d queued, active=%v)", src, dst, q.msgs.Len(), q.active)
			}
		}
	}
	for d := range x.credits {
		if x.credits[d] != x.cfg.RecvBuffer {
			return fmt.Errorf("xbar: cluster %d holds %d/%d credits", d, x.credits[d], x.cfg.RecvBuffer)
		}
		if !x.creditWait[d].Empty() {
			return fmt.Errorf("xbar: cluster %d has %d writers waiting on credits", d, x.creditWait[d].Len())
		}
	}
	if n := x.slots.Len(); n != 0 {
		return fmt.Errorf("xbar: %d messages in flight", n)
	}
	return x.arb.Quiescent()
}

// Reset implements noc.Resetter: restore the construction state in place,
// keeping the message pool and grown queue capacity. Delivery callbacks are
// left installed; a reusing System overwrites them via SetDeliver.
func (x *Crossbar) Reset() {
	for src := range x.queues {
		for dst := range x.queues[src] {
			q := &x.queues[src][dst]
			q.msgs.Reset()
			q.active = false
		}
	}
	for d := range x.credits {
		x.credits[d] = x.cfg.RecvBuffer
		x.creditWait[d].Reset()
	}
	x.slots.Reset()
	x.arb.Reset()
	x.stats = noc.Stats{}
	x.BusyCycles = 0
}

// Clusters implements noc.Network.
func (x *Crossbar) Clusters() int { return x.cfg.Clusters }

// Stats returns message/byte counters.
func (x *Crossbar) Stats() noc.Stats { return x.stats }

// Arbiter exposes the token ring for statistics.
func (x *Crossbar) Arbiter() *arbiter.TokenRing { return x.arb }

// SetDeliver implements noc.Network.
func (x *Crossbar) SetDeliver(cluster int, fn noc.DeliverFunc) {
	x.deliver[cluster] = fn
}

// Send implements noc.Network: enqueue on the (src,dst) injection FIFO.
// Cluster-local traffic never enters the optics; the hub must handle it
// without the network, so src == dst panics.
func (x *Crossbar) Send(m *noc.Message) bool {
	if !noc.Valid(m, x.cfg.Clusters) {
		panic(noc.Validate(m, x.cfg.Clusters))
	}
	if m.Src == m.Dst {
		panic(fmt.Sprintf("xbar: message %d is cluster-local (src == dst == %d)", m.ID, m.Src))
	}
	q := &x.queues[m.Src][m.Dst]
	if q.msgs.Len() >= x.cfg.InjectQueue {
		return false
	}
	m.Inject = x.k.Now()
	q.msgs.Push(m)
	if !q.active {
		q.active = true
		x.advance(m.Src, m.Dst)
	}
	return true
}

// Consume implements noc.Network: the hub drained one message from cluster's
// receive buffer, freeing a credit and recycling the message. The crossbar
// has a single buffer pool per cluster, so only the freed credit matters.
func (x *Crossbar) Consume(cluster int, m *noc.Message) {
	x.Release(m)
	if wait := &x.creditWait[cluster]; !wait.Empty() {
		// Hand the credit straight to the waiting writer.
		x.k.ScheduleEvent(0, (*creditEvent)(x), pack2(wait.Pop(), cluster))
		return
	}
	x.credits[cluster]++
	if x.credits[cluster] > x.cfg.RecvBuffer {
		panic(fmt.Sprintf("xbar: credit overflow at cluster %d", cluster))
	}
}

// advance starts the head message of (src,dst) through the credit/token
// pipeline.
func (x *Crossbar) advance(src, dst int) {
	q := &x.queues[src][dst]
	if q.msgs.Empty() {
		q.active = false
		return
	}
	// Step 1: acquire a receive-buffer credit at dst.
	if x.credits[dst] > 0 {
		x.credits[dst]--
		x.haveCredit(src, dst)
	} else {
		x.creditWait[dst].Push(src)
	}
}

// haveCredit is step 2: arbitrate for the destination's channel token.
func (x *Crossbar) haveCredit(src, dst int) {
	x.arb.RequestEvent(dst, src, x)
}

// transmit is step 3: modulate the message onto the channel, release the
// token with the message tail, and deliver after propagation.
func (x *Crossbar) transmit(src, dst int) {
	q := &x.queues[src][dst]
	m := q.msgs.Pop()

	tx := sim.Time((m.Size + x.cfg.BytesPerCycle - 1) / x.cfg.BytesPerCycle)
	prop := x.propagation(src, dst)
	x.BusyCycles += uint64(tx)

	// Token travels in parallel with the tail of the message.
	x.k.ScheduleEvent(tx, (*releaseEvent)(x), pack2(src, dst))
	x.k.ScheduleEvent(tx+prop, (*deliverEvent)(x), x.slots.Put(m))
}

// propagation returns the serpentine transit time from src's modulators to
// dst's (the channel home's) detectors: light travels in cyclically
// increasing cluster order and covers TokenSpeed positions per cycle,
// so the farthest writer pays the paper's 8-clock maximum.
func (x *Crossbar) propagation(src, dst int) sim.Time {
	d := (dst - src) % x.cfg.Clusters
	if d <= 0 {
		d += x.cfg.Clusters
	}
	return sim.Time((d + x.cfg.TokenSpeed - 1) / x.cfg.TokenSpeed)
}

// Utilization returns mean channel occupancy over elapsed cycles across all
// channels (0..1).
func (x *Crossbar) Utilization(elapsed sim.Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(x.BusyCycles) / (float64(elapsed) * float64(x.cfg.Clusters))
}
