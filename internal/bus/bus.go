// Package bus models Corona's optical broadcast bus (Section 3.2.2): a
// single 64-wavelength waveguide that passes every cluster twice in a coiled,
// spiral-like layout. On the light's first pass around the coil a cluster —
// having acquired the bus's single arbitration token — modulates its message;
// on the second pass the message is "active" and every cluster's splitter
// diverts a fraction of the light to a dead-end waveguide populated with
// detectors, so all clusters snoop the message simultaneously.
//
// The bus exists to turn MOESI invalidations of widely shared lines into one
// message instead of a storm of crossbar unicasts; it can also carry other
// broadcast traffic (bandwidth-adaptive snooping, barrier notification).
package bus

import (
	"fmt"

	"corona/internal/arbiter"
	"corona/internal/noc"
	"corona/internal/sim"
)

// Config parameterizes the broadcast bus.
type Config struct {
	Clusters      int // 64
	BytesPerCycle int // 64 λ dual-edge = 16 B/cycle
	TokenSpeed    int // positions per cycle, as for the crossbar
	InjectQueue   int // per-cluster broadcast FIFO depth
}

// DefaultConfig returns the published bus parameters.
func DefaultConfig() Config {
	return Config{Clusters: 64, BytesPerCycle: 16, TokenSpeed: 8, InjectQueue: 8}
}

// DeliverFunc receives a broadcast at one cluster.
type DeliverFunc func(*noc.Message)

// Bus is the optical broadcast bus. It is not a noc.Network: its delivery
// semantics are one-to-all, and snooped messages are consumed immediately by
// the coherence logic rather than buffered with credits (invalidates are
// small and the snoop path is dedicated). Messages follow the same pooled
// lifecycle as the point-to-point networks, with the retirement point moved
// to where the ownership cycle actually closes: the bus recycles a
// broadcast after its last snoop fires, so snoop callbacks must not retain
// the message.
type Bus struct {
	noc.MsgPool // broadcast free list (Acquire / last snoop recycles)

	k   *sim.Kernel
	cfg Config
	arb *arbiter.TokenRing

	queues  [][]*noc.Message
	active  []bool
	deliver []DeliverFunc

	// slots parks the in-flight broadcast for its per-cluster snoop events.
	slots sim.Slots[*noc.Message]

	// Broadcasts and Bytes count completed broadcasts.
	Broadcasts uint64
	Bytes      uint64
	// BusyCycles accumulates modulation occupancy.
	BusyCycles uint64
}

// New builds a broadcast bus on kernel k.
func New(k *sim.Kernel, cfg Config) *Bus {
	if cfg.Clusters <= 0 || cfg.BytesPerCycle <= 0 || cfg.InjectQueue <= 0 {
		panic(fmt.Sprintf("bus: invalid config %+v", cfg))
	}
	if cfg.Clusters > 1<<16 {
		// txDoneEvent/snoopEvent carry cluster ids in 16-bit event data fields.
		panic(fmt.Sprintf("bus: %d clusters exceeds the %d-cluster event encoding limit",
			cfg.Clusters, 1<<16))
	}
	return &Bus{
		k:   k,
		cfg: cfg,
		// One token arbitrates the single bus among all clusters.
		arb:     arbiter.New(k, cfg.Clusters, 1, cfg.TokenSpeed),
		queues:  make([][]*noc.Message, cfg.Clusters),
		active:  make([]bool, cfg.Clusters),
		deliver: make([]DeliverFunc, cfg.Clusters),
	}
}

// Bus kernel events run on the typed fast path via named views of the Bus,
// so a broadcast's release and its 64 snoops schedule without closures.

// Granted implements arbiter.GrantHandler: cluster diverted the bus token and
// starts modulating its head message.
func (b *Bus) Granted(_, cluster int) { b.transmit(cluster) }

// txDoneEvent fires when the modulated message's tail leaves the source: the
// token re-injects, counters update, and any queued broadcast re-arbitrates.
// The broadcast byte count rides in the upper bits of the data word.
type txDoneEvent Bus

func (e *txDoneEvent) OnEvent(_ sim.Time, data uint64) {
	b := (*Bus)(e)
	src := int(data & 0xffff)
	b.arb.Release(0, src)
	if len(b.queues[src]) > 0 {
		b.arb.RequestEvent(0, src, b)
	} else {
		b.active[src] = false
	}
	b.Broadcasts++
	b.Bytes += data >> 16
}

// snoopEvent fires when the second-pass light reaches one cluster's
// detectors. The slot index and the snooping cluster share the data word;
// the last cluster in coil order frees the slot and recycles the message
// (after its own deliver callback has run — the callback may Broadcast,
// which would otherwise re-acquire the message out from under it).
type snoopEvent Bus

func (e *snoopEvent) OnEvent(_ sim.Time, data uint64) {
	b := (*Bus)(e)
	slot, j := data>>16, int(data&0xffff)
	m := b.slots.Get(slot)
	last := j == b.cfg.Clusters-1
	if last {
		b.slots.Free(slot)
	}
	if b.deliver[j] != nil {
		b.deliver[j](m)
	}
	if last {
		b.Release(m)
	}
}

// Clusters returns the endpoint count.
func (b *Bus) Clusters() int { return b.cfg.Clusters }

// Quiescent returns nil only when the bus is in its construction state —
// empty broadcast FIFOs, no modulation in progress, no in-flight snoops, and
// a virgin token. It is the broadcast leg of the network snapshot contract
// (docs/DETERMINISM.md).
func (b *Bus) Quiescent() error {
	for src, q := range b.queues {
		if len(q) > 0 || b.active[src] {
			return fmt.Errorf("bus: cluster %d broadcast queue busy (%d queued, active=%v)", src, len(q), b.active[src])
		}
	}
	if n := b.slots.Len(); n != 0 {
		return fmt.Errorf("bus: %d broadcasts in flight", n)
	}
	return b.arb.Quiescent()
}

// Reset restores the construction state in place, keeping the message pool
// and grown queue capacity. Snoop callbacks are left installed.
func (b *Bus) Reset() {
	for src := range b.queues {
		clear(b.queues[src])
		b.queues[src] = b.queues[src][:0]
		b.active[src] = false
	}
	b.slots.Reset()
	b.arb.Reset()
	b.Broadcasts, b.Bytes, b.BusyCycles = 0, 0, 0
}

// Arbiter exposes the bus token for statistics.
func (b *Bus) Arbiter() *arbiter.TokenRing { return b.arb }

// SetDeliver installs cluster's snoop callback.
func (b *Bus) SetDeliver(cluster int, fn DeliverFunc) { b.deliver[cluster] = fn }

// Broadcast queues msg for transmission to every cluster (including the
// sender, whose own detectors snoop the second pass like everyone else's).
// It returns false when the sender's broadcast FIFO is full.
func (b *Bus) Broadcast(m *noc.Message) bool {
	if m == nil || m.Size <= 0 {
		panic("bus: invalid message")
	}
	if m.Src < 0 || m.Src >= b.cfg.Clusters {
		panic(fmt.Sprintf("bus: source %d out of range", m.Src))
	}
	if len(b.queues[m.Src]) >= b.cfg.InjectQueue {
		return false
	}
	m.Inject = b.k.Now()
	b.queues[m.Src] = append(b.queues[m.Src], m)
	if !b.active[m.Src] {
		b.active[m.Src] = true
		b.arb.RequestEvent(0, m.Src, b)
	}
	return true
}

// transmit modulates the head message on the first pass and schedules the
// second-pass snoops.
func (b *Bus) transmit(src int) {
	q := b.queues[src]
	m := q[0]
	b.queues[src] = q[1:]

	tx := sim.Time((m.Size + b.cfg.BytesPerCycle - 1) / b.cfg.BytesPerCycle)
	b.BusyCycles += uint64(tx)

	b.k.ScheduleEvent(tx, (*txDoneEvent)(b), uint64(src)|uint64(m.Size)<<16)

	// The message becomes active when the light enters its second pass: it
	// must first travel from src to the end of the first pass (the coil's
	// midpoint), then each cluster j snoops when the light reaches its
	// second-pass position. Cluster positions on the second pass follow the
	// same increasing order, so cluster j receives at
	// (Clusters - src) + j positions after modulation; the last cluster's
	// snoop event frees the message slot.
	slot := b.slots.Put(m)
	for j := 0; j < b.cfg.Clusters; j++ {
		dist := (b.cfg.Clusters - src) + j
		prop := sim.Time((dist + b.cfg.TokenSpeed - 1) / b.cfg.TokenSpeed)
		b.k.ScheduleEvent(tx+prop, (*snoopEvent)(b), uint64(j)|slot<<16)
	}
}
