// Package bus models Corona's optical broadcast bus (Section 3.2.2): a
// single 64-wavelength waveguide that passes every cluster twice in a coiled,
// spiral-like layout. On the light's first pass around the coil a cluster —
// having acquired the bus's single arbitration token — modulates its message;
// on the second pass the message is "active" and every cluster's splitter
// diverts a fraction of the light to a dead-end waveguide populated with
// detectors, so all clusters snoop the message simultaneously.
//
// The bus exists to turn MOESI invalidations of widely shared lines into one
// message instead of a storm of crossbar unicasts; it can also carry other
// broadcast traffic (bandwidth-adaptive snooping, barrier notification).
package bus

import (
	"fmt"

	"corona/internal/arbiter"
	"corona/internal/noc"
	"corona/internal/sim"
)

// Config parameterizes the broadcast bus.
type Config struct {
	Clusters      int // 64
	BytesPerCycle int // 64 λ dual-edge = 16 B/cycle
	TokenSpeed    int // positions per cycle, as for the crossbar
	InjectQueue   int // per-cluster broadcast FIFO depth
}

// DefaultConfig returns the published bus parameters.
func DefaultConfig() Config {
	return Config{Clusters: 64, BytesPerCycle: 16, TokenSpeed: 8, InjectQueue: 8}
}

// DeliverFunc receives a broadcast at one cluster.
type DeliverFunc func(*noc.Message)

// Bus is the optical broadcast bus. It is not a noc.Network: its delivery
// semantics are one-to-all, and snooped messages are consumed immediately by
// the coherence logic rather than buffered with credits (invalidates are
// small and the snoop path is dedicated).
type Bus struct {
	k   *sim.Kernel
	cfg Config
	arb *arbiter.TokenRing

	queues  [][]*noc.Message
	active  []bool
	deliver []DeliverFunc

	// Broadcasts and Bytes count completed broadcasts.
	Broadcasts uint64
	Bytes      uint64
	// BusyCycles accumulates modulation occupancy.
	BusyCycles uint64
}

// New builds a broadcast bus on kernel k.
func New(k *sim.Kernel, cfg Config) *Bus {
	if cfg.Clusters <= 0 || cfg.BytesPerCycle <= 0 || cfg.InjectQueue <= 0 {
		panic(fmt.Sprintf("bus: invalid config %+v", cfg))
	}
	return &Bus{
		k:   k,
		cfg: cfg,
		// One token arbitrates the single bus among all clusters.
		arb:     arbiter.New(k, cfg.Clusters, 1, cfg.TokenSpeed),
		queues:  make([][]*noc.Message, cfg.Clusters),
		active:  make([]bool, cfg.Clusters),
		deliver: make([]DeliverFunc, cfg.Clusters),
	}
}

// Clusters returns the endpoint count.
func (b *Bus) Clusters() int { return b.cfg.Clusters }

// Arbiter exposes the bus token for statistics.
func (b *Bus) Arbiter() *arbiter.TokenRing { return b.arb }

// SetDeliver installs cluster's snoop callback.
func (b *Bus) SetDeliver(cluster int, fn DeliverFunc) { b.deliver[cluster] = fn }

// Broadcast queues msg for transmission to every cluster (including the
// sender, whose own detectors snoop the second pass like everyone else's).
// It returns false when the sender's broadcast FIFO is full.
func (b *Bus) Broadcast(m *noc.Message) bool {
	if m == nil || m.Size <= 0 {
		panic("bus: invalid message")
	}
	if m.Src < 0 || m.Src >= b.cfg.Clusters {
		panic(fmt.Sprintf("bus: source %d out of range", m.Src))
	}
	if len(b.queues[m.Src]) >= b.cfg.InjectQueue {
		return false
	}
	m.Inject = b.k.Now()
	b.queues[m.Src] = append(b.queues[m.Src], m)
	if !b.active[m.Src] {
		b.active[m.Src] = true
		b.arb.Request(0, m.Src, func() { b.transmit(m.Src) })
	}
	return true
}

// transmit modulates the head message on the first pass and schedules the
// second-pass snoops.
func (b *Bus) transmit(src int) {
	q := b.queues[src]
	m := q[0]
	b.queues[src] = q[1:]

	tx := sim.Time((m.Size + b.cfg.BytesPerCycle - 1) / b.cfg.BytesPerCycle)
	b.BusyCycles += uint64(tx)

	b.k.Schedule(tx, func() {
		b.arb.Release(0, src)
		if len(b.queues[src]) > 0 {
			b.arb.Request(0, src, func() { b.transmit(src) })
		} else {
			b.active[src] = false
		}
	})

	// The message becomes active when the light enters its second pass: it
	// must first travel from src to the end of the first pass (the coil's
	// midpoint), then each cluster j snoops when the light reaches its
	// second-pass position. Cluster positions on the second pass follow the
	// same increasing order, so cluster j receives at
	// (Clusters - src) + j positions after modulation.
	for j := 0; j < b.cfg.Clusters; j++ {
		dist := (b.cfg.Clusters - src) + j
		prop := sim.Time((dist + b.cfg.TokenSpeed - 1) / b.cfg.TokenSpeed)
		j := j
		b.k.Schedule(tx+prop, func() {
			if b.deliver[j] != nil {
				b.deliver[j](m)
			}
		})
	}
	b.k.Schedule(tx, func() {
		b.Broadcasts++
		b.Bytes += uint64(m.Size)
	})
}
