package bus

import (
	"testing"

	"corona/internal/sim"
)

func TestBarrierReleasesAllAfterLastArrival(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, DefaultConfig())
	br := NewBarrier(b, 64)

	released := make([]sim.Time, 64)
	releasedCount := 0
	var lastArrival sim.Time
	for c := 0; c < 64; c++ {
		c := c
		at := sim.Time(c * 3) // staggered arrivals
		if at > lastArrival {
			lastArrival = at
		}
		k.At(at, func() {
			br.Arrive(c, func() {
				released[c] = k.Now()
				releasedCount++
			})
		})
	}
	k.Run()
	if releasedCount != 64 {
		t.Fatalf("released %d clusters, want 64", releasedCount)
	}
	for c, at := range released {
		if at < lastArrival {
			t.Fatalf("cluster %d released at %d, before the last arrival at %d", c, at, lastArrival)
		}
	}
	if br.Releases != 1 {
		t.Fatalf("Releases = %d, want 1", br.Releases)
	}
}

func TestBarrierLatencyIsBusBound(t *testing.T) {
	// All clusters arrive simultaneously: release requires 64 serialized
	// one-cycle broadcasts plus propagation, i.e. on the order of 100-300
	// cycles — far cheaper than 64 crossbar round trips to a coordinator
	// under contention.
	k := sim.NewKernel()
	b := New(k, DefaultConfig())
	br := NewBarrier(b, 64)
	var last sim.Time
	n := 0
	for c := 0; c < 64; c++ {
		br.Arrive(c, func() { n++; last = k.Now() })
	}
	k.Run()
	if n != 64 {
		t.Fatalf("released %d, want 64", n)
	}
	if last > 400 {
		t.Errorf("barrier completed at %d cycles, want <= 400 (bus-serialized)", last)
	}
	if last < 64 {
		t.Errorf("barrier completed at %d cycles; 64 broadcasts cannot fit", last)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, DefaultConfig())
	br := NewBarrier(b, 64)
	for gen := 0; gen < 3; gen++ {
		n := 0
		for c := 0; c < 64; c++ {
			br.Arrive(c, func() { n++ })
		}
		k.Run()
		if n != 64 {
			t.Fatalf("generation %d released %d, want 64", gen, n)
		}
	}
	if br.Releases != 3 {
		t.Fatalf("Releases = %d, want 3", br.Releases)
	}
}

func TestBarrierDoubleArrivalPanics(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, DefaultConfig())
	br := NewBarrier(b, 64)
	br.Arrive(5, nil)
	defer func() {
		if recover() == nil {
			t.Error("double arrival did not panic")
		}
	}()
	br.Arrive(5, nil)
	_ = k
}

func TestBarrierSizeValidation(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("oversized barrier did not panic")
		}
	}()
	NewBarrier(b, 65)
}
