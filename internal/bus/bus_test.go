package bus

import (
	"testing"

	"corona/internal/noc"
	"corona/internal/sim"
)

type rx struct {
	cluster int
	id      uint64
	at      sim.Time
}

func harness(t *testing.T, cfg Config) (*sim.Kernel, *Bus, *[]rx) {
	t.Helper()
	k := sim.NewKernel()
	b := New(k, cfg)
	var got []rx
	for c := 0; c < cfg.Clusters; c++ {
		c := c
		b.SetDeliver(c, func(m *noc.Message) {
			got = append(got, rx{cluster: c, id: m.ID, at: k.Now()})
		})
	}
	return k, b, &got
}

func inv(id uint64, src int) *noc.Message {
	return &noc.Message{ID: id, Src: src, Dst: -1, Size: 16, Kind: noc.KindInvalidate}
}

func TestBroadcastReachesAllClusters(t *testing.T) {
	k, b, got := harness(t, DefaultConfig())
	if !b.Broadcast(inv(1, 7)) {
		t.Fatal("broadcast refused")
	}
	k.Run()
	if len(*got) != 64 {
		t.Fatalf("delivered to %d clusters, want 64", len(*got))
	}
	seen := map[int]bool{}
	for _, r := range *got {
		if seen[r.cluster] {
			t.Fatalf("cluster %d snooped twice", r.cluster)
		}
		seen[r.cluster] = true
	}
}

func TestSecondPassOrdering(t *testing.T) {
	// Clusters snoop in increasing cluster order on the second pass, and
	// nobody snoops before the light finishes the first pass.
	k, b, got := harness(t, DefaultConfig())
	b.Broadcast(inv(1, 32))
	k.Run()
	var prev sim.Time
	for i, r := range *got {
		if r.at < prev {
			t.Fatalf("snoop %d at %d before previous %d (second-pass order broken)", i, r.at, prev)
		}
		prev = r.at
	}
	first := (*got)[0]
	if first.cluster != 0 {
		t.Errorf("first snoop at cluster %d, want 0 (second pass starts at coil origin)", first.cluster)
	}
	// First-pass travel from src=32 to coil end is 32 positions = 4 cycles,
	// plus 1 cycle modulation.
	if first.at < 5 {
		t.Errorf("first snoop at %d, want >= 5 (first-pass transit)", first.at)
	}
}

func TestSenderSnoopsItself(t *testing.T) {
	k, b, got := harness(t, DefaultConfig())
	b.Broadcast(inv(9, 5))
	k.Run()
	found := false
	for _, r := range *got {
		if r.cluster == 5 {
			found = true
		}
	}
	if !found {
		t.Error("sender did not snoop its own broadcast")
	}
}

func TestBusSerializesSenders(t *testing.T) {
	// Two clusters broadcasting concurrently share one token: modulation
	// windows must not overlap.
	k, b, got := harness(t, DefaultConfig())
	b.Broadcast(inv(1, 3))
	b.Broadcast(inv(2, 40))
	k.Run()
	if len(*got) != 128 {
		t.Fatalf("delivered %d, want 128", len(*got))
	}
	if b.Broadcasts != 2 {
		t.Fatalf("Broadcasts = %d, want 2", b.Broadcasts)
	}
	// With snoops interleaved, per-message receive sets must still be complete.
	count := map[uint64]int{}
	for _, r := range *got {
		count[r.id]++
	}
	if count[1] != 64 || count[2] != 64 {
		t.Fatalf("per-message snoop counts = %v, want 64 each", count)
	}
}

func TestInjectQueueBackPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectQueue = 2
	k, b, _ := harness(t, cfg)
	if !b.Broadcast(inv(1, 0)) || !b.Broadcast(inv(2, 0)) {
		t.Fatal("refused below capacity")
	}
	if b.Broadcast(inv(3, 0)) {
		t.Fatal("accepted beyond capacity")
	}
	k.Run()
	if b.Broadcasts != 2 {
		t.Fatalf("Broadcasts = %d, want 2", b.Broadcasts)
	}
	if !b.Broadcast(inv(4, 0)) {
		t.Fatal("still refusing after drain")
	}
}

func TestQueuedBroadcastsFromOneSender(t *testing.T) {
	k, b, got := harness(t, DefaultConfig())
	for i := 0; i < 5; i++ {
		if !b.Broadcast(inv(uint64(i+1), 11)) {
			t.Fatalf("broadcast %d refused", i)
		}
	}
	k.Run()
	if len(*got) != 5*64 {
		t.Fatalf("delivered %d, want %d", len(*got), 5*64)
	}
	if b.Bytes != 5*16 {
		t.Fatalf("Bytes = %d, want 80", b.Bytes)
	}
}

func TestInvalidBroadcastPanics(t *testing.T) {
	_, b, _ := harness(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("invalid source did not panic")
		}
	}()
	b.Broadcast(inv(1, 99))
}
