package bus

import (
	"fmt"

	"corona/internal/noc"
	"corona/internal/sim"
)

// Section 3.2.2: "the bus' functionality could be generalized for other
// broadcast applications, such as bandwidth adaptive snooping and barrier
// notification." Barrier implements the barrier-notification generalization:
// each participating cluster broadcasts a one-wavelength arrival pulse; every
// cluster snoops all pulses, so each observes the full arrival count and
// releases itself locally — no central coordinator, no release broadcast.
type Barrier struct {
	k   *sim.Kernel
	b   *Bus
	n   int // participants
	gen uint64

	arrived  []int // per-cluster count of observed arrivals (this generation)
	released []func()
	waiting  []bool

	// Releases counts completed barrier episodes (any cluster's local
	// release increments once per generation, at the last observer).
	Releases uint64
}

// NewBarrier attaches a barrier protocol to bus b with n participating
// clusters. It takes over the bus's delivery callbacks for barrier messages;
// install it before other SetDeliver users or use a dedicated bus instance
// (Corona allocates separate wavelengths, so a dedicated instance mirrors
// the hardware).
func NewBarrier(b *Bus, n int) *Barrier {
	if n <= 0 || n > b.Clusters() {
		panic(fmt.Sprintf("bus: barrier size %d out of range", n))
	}
	br := &Barrier{
		k: b.k, b: b, n: n,
		arrived:  make([]int, b.Clusters()),
		released: make([]func(), b.Clusters()),
		waiting:  make([]bool, b.Clusters()),
	}
	for c := 0; c < b.Clusters(); c++ {
		c := c
		b.SetDeliver(c, func(m *noc.Message) { br.snoop(c, m) })
	}
	return br
}

// Arrive announces cluster's arrival at the barrier; release runs at that
// cluster once it has snooped all n arrivals.
func (br *Barrier) Arrive(cluster int, release func()) {
	if br.waiting[cluster] {
		panic(fmt.Sprintf("bus: cluster %d arrived twice at the barrier", cluster))
	}
	br.waiting[cluster] = true
	br.released[cluster] = release
	m := br.b.Acquire()
	m.ID, m.Src, m.Dst = br.gen, cluster, -1
	m.Size, m.Kind = 1, noc.KindCoherence
	var try func()
	try = func() {
		if !br.b.Broadcast(m) {
			//lint:allow schedulepath cold backpressure retry; the recursive closure exists regardless and fires at most once per bus stall
			br.k.Schedule(2, try)
		}
	}
	try()
}

// snoop counts arrivals at each cluster and releases it when complete.
func (br *Barrier) snoop(cluster int, m *noc.Message) {
	if m.Kind != noc.KindCoherence {
		return
	}
	br.arrived[cluster]++
	if br.arrived[cluster] < br.n {
		return
	}
	// This cluster has seen every arrival: release locally.
	br.arrived[cluster] = 0
	if br.waiting[cluster] {
		br.waiting[cluster] = false
		if fn := br.released[cluster]; fn != nil {
			br.released[cluster] = nil
			fn()
		}
	}
	if cluster == br.b.Clusters()-1 {
		br.Releases++
		br.gen++
	}
}
