package photonic

import (
	"math"
	"strings"
	"testing"
)

func TestExpectedFailures(t *testing.T) {
	m := YieldModel{RingFailureProb: 1e-5}
	// Full Corona inventory: ~1.08 M rings -> ~10.8 expected failures.
	total := InventoryTotal(Inventory(DefaultGeometry()))
	got := m.ExpectedFailures(total.Rings)
	if got < 10 || got > 12 {
		t.Errorf("expected failures = %v, want ~10.8", got)
	}
}

func TestSubsystemYieldMonotone(t *testing.T) {
	m := DefaultYieldModel()
	if m.SubsystemYield(64) <= m.SubsystemYield(1024*1024) {
		t.Error("larger subsystems must yield worse")
	}
	if y := m.SubsystemYield(64); y < 0.999 {
		t.Errorf("clock subsystem yield = %v, want ~1", y)
	}
	// The million-ring crossbar without sparing is hopeless — the point of
	// the analysis.
	if y := m.SubsystemYield(1024 * 1024); y > 0.01 {
		t.Errorf("crossbar no-spare yield = %v, want ~0 (sparing required)", y)
	}
}

func TestSparesFor(t *testing.T) {
	m := YieldModel{RingFailureProb: 1e-5}
	// A 256-wavelength channel with no spares yields (1-1e-5)^256 ≈ 0.9974,
	// short of 0.999; one spare must fix it.
	s := m.SparesFor(256, 0.999)
	if s != 1 {
		t.Errorf("SparesFor(256, 0.999) = %d, want 1", s)
	}
	// Zero spares suffice for a lax target.
	if got := m.SparesFor(256, 0.99); got != 0 {
		t.Errorf("SparesFor(256, 0.99) = %d, want 0", got)
	}
	// Higher defect rates need more spares, monotonically.
	bad := YieldModel{RingFailureProb: 1e-3}
	if bad.SparesFor(256, 0.999) <= m.SparesFor(256, 0.999) {
		t.Error("worse process should need more spares")
	}
}

func TestSparesForBinomialSanity(t *testing.T) {
	// With p=0.5 and group=4, even many spares converge slowly; the guard
	// must terminate.
	m := YieldModel{RingFailureProb: 0.5}
	s := m.SparesFor(4, 0.999)
	if s <= 0 {
		t.Error("pathological process should demand spares")
	}
}

func TestSparesForPanics(t *testing.T) {
	m := DefaultYieldModel()
	for _, f := range []func(){
		func() { m.SparesFor(0, 0.9) },
		func() { m.SparesFor(10, 0) },
		func() { m.SparesFor(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid SparesFor input did not panic")
				}
			}()
			f()
		}()
	}
}

func TestYieldReport(t *testing.T) {
	s := YieldReport(DefaultGeometry(), DefaultYieldModel()).String()
	for _, want := range []string{"Crossbar", "Total", "E[failures]"} {
		if !strings.Contains(s, want) {
			t.Errorf("yield report missing %q:\n%s", want, s)
		}
	}
}

func TestDefaultModelInternallyConsistent(t *testing.T) {
	m := DefaultYieldModel()
	if m.TrimmableFraction <= 0.99 {
		t.Error("trimming should recover the vast majority of shifted rings")
	}
	if math.IsNaN(m.SubsystemYield(1000)) {
		t.Error("NaN yield")
	}
}
