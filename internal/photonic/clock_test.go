package photonic

import (
	"math"
	"testing"
)

func TestAdjacentPhaseOffset(t *testing.T) {
	c := DefaultClock()
	// "each cluster is offset from the previous cluster by approximately
	// 1/8th of a clock cycle"
	if got := c.AdjacentOffsetCycles(); got != 0.125 {
		t.Fatalf("adjacent offset = %v, want 1/8", got)
	}
	for i := 1; i < 64; i++ {
		step := c.PhaseOffset(i) - c.PhaseOffset(i-1)
		// Wraps from 7/8 back to 0 every 8 clusters.
		if step < 0 {
			step += 1
		}
		if math.Abs(step-0.125) > 1e-12 {
			t.Fatalf("phase step at cluster %d = %v, want 0.125", i, step)
		}
	}
}

func TestPhaseOffsetRange(t *testing.T) {
	c := DefaultClock()
	for i := 0; i < 64; i++ {
		p := c.PhaseOffset(i)
		if p < 0 || p >= 1 {
			t.Fatalf("phase offset of %d = %v, out of [0,1)", i, p)
		}
	}
	if c.PhaseOffset(0) != 0 {
		t.Error("cluster 0 should define phase zero")
	}
	if c.PhaseOffset(8) != 0 {
		t.Error("cluster 8 is exactly one cycle behind: phase 0")
	}
}

func TestNeedsRetimingOnlyAtWrap(t *testing.T) {
	c := DefaultClock()
	// Forward (non-wrapping) paths are in phase; wrapping paths retime.
	if c.NeedsRetiming(3, 10) {
		t.Error("forward path should not retime")
	}
	if !c.NeedsRetiming(10, 3) {
		t.Error("wrapping path should retime")
	}
	if !c.NeedsRetiming(63, 0) {
		t.Error("the 63->0 seam must retime")
	}
}

func TestRetimingFraction(t *testing.T) {
	c := DefaultClock()
	// Exactly half the ordered (src, dst) pairs have src > dst and so cross
	// the seam: 2016 of 4032.
	if got := c.RetimingFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("retiming fraction = %v, want 0.5", got)
	}
}

func TestClockPanics(t *testing.T) {
	c := DefaultClock()
	for _, f := range []func(){
		func() { c.PhaseOffset(-1) },
		func() { c.PhaseOffset(64) },
		func() { c.NeedsRetiming(-1, 0) },
		func() { c.NeedsRetiming(0, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range input did not panic")
				}
			}()
			f()
		}()
	}
}
