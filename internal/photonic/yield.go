package photonic

import (
	"fmt"
	"math"

	"corona/internal/stats"
)

// Section 2 flags integration scale as the foremost open problem: "It will
// be necessary to analyze and correct for the inevitable fabrication
// variations to minimize device failures and maximize yield." This file
// provides that analysis: given a per-ring hard-failure probability (defects
// that trimming cannot correct) and a trimming budget, it computes expected
// device failures per subsystem, the probability a whole subsystem is
// defect-free, and the spare rings per wavelength group needed to reach a
// target yield.

// YieldModel parameterizes fabrication variation.
type YieldModel struct {
	// RingFailureProb is the probability an individual ring resonator is
	// unusable after trimming (hard defect).
	RingFailureProb float64
	// TrimmableFraction is the fraction of fabrication-shifted rings that
	// thermal/charge trimming recovers; only (1 - TrimmableFraction) of the
	// shifted population contributes to RingFailureProb-style loss when the
	// caller derives it from process spread.
	TrimmableFraction float64
}

// DefaultYieldModel returns a conservative near-term model: one hard defect
// per hundred thousand rings after trimming recovers 99.9% of shifted
// devices.
func DefaultYieldModel() YieldModel {
	return YieldModel{RingFailureProb: 1e-5, TrimmableFraction: 0.999}
}

// ExpectedFailures returns the expected number of failed rings among n.
func (m YieldModel) ExpectedFailures(n int) float64 {
	return float64(n) * m.RingFailureProb
}

// SubsystemYield returns the probability that all n rings of a subsystem
// work (no sparing).
func (m YieldModel) SubsystemYield(n int) float64 {
	return math.Pow(1-m.RingFailureProb, float64(n))
}

// SparesFor returns the number of spare rings each group of `group` rings
// needs so that the probability of fewer-or-equal failures than spares is at
// least targetYield. It evaluates the binomial CDF directly; group sizes in
// Corona are at most a few hundred (a channel's wavelengths).
func (m YieldModel) SparesFor(group int, targetYield float64) int {
	if group <= 0 {
		panic(fmt.Sprintf("photonic: invalid group %d", group))
	}
	if targetYield <= 0 || targetYield >= 1 {
		panic(fmt.Sprintf("photonic: target yield %v out of (0,1)", targetYield))
	}
	p := m.RingFailureProb
	for spares := 0; ; spares++ {
		// P(failures <= spares) over group+spares fabricated rings.
		n := group + spares
		var cdf, pmf float64
		pmf = math.Pow(1-p, float64(n)) // P(0 failures)
		cdf = pmf
		for k := 1; k <= spares; k++ {
			pmf *= float64(n-k+1) / float64(k) * p / (1 - p)
			cdf += pmf
		}
		if cdf >= targetYield {
			return spares
		}
		if spares > group {
			return spares // defect rate too high for sparing to help
		}
	}
}

// YieldReport summarises expected failures and no-spare yield per subsystem
// of the Table 2 inventory, plus the sparing needed for a 99.9% per-channel
// yield of the crossbar's 256-wavelength channels.
func YieldReport(g Geometry, m YieldModel) *stats.Table {
	t := stats.NewTable("Subsystem", "Rings", "E[failures]", "P(all good)")
	for _, s := range Inventory(g) {
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.Rings),
			fmt.Sprintf("%.2f", m.ExpectedFailures(s.Rings)),
			fmt.Sprintf("%.4f", m.SubsystemYield(s.Rings)))
	}
	total := InventoryTotal(Inventory(g))
	t.AddRow("Total",
		fmt.Sprintf("%d", total.Rings),
		fmt.Sprintf("%.2f", m.ExpectedFailures(total.Rings)),
		fmt.Sprintf("%.4f", m.SubsystemYield(total.Rings)))
	return t
}
