package photonic

import (
	"fmt"
	"math"
)

func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }
func mwToDBm(mw float64) float64  { return 10 * math.Log10(mw) }
func fractionToDB(f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(f)
}

// LinkBudget is an optical power budget for one wavelength over one path.
type LinkBudget struct {
	Name           string
	LaunchDBm      float64 // laser power per wavelength at the source
	Segments       []BudgetSegment
	SensitivityDBm float64 // detector requirement
}

// BudgetSegment is one loss contribution along a light path.
type BudgetSegment struct {
	Name   string
	LossDB float64
}

// Add appends a loss segment.
func (b *LinkBudget) Add(name string, lossDB float64) {
	b.Segments = append(b.Segments, BudgetSegment{Name: name, LossDB: lossDB})
}

// TotalLossDB sums all segment losses.
func (b *LinkBudget) TotalLossDB() float64 {
	var sum float64
	for _, s := range b.Segments {
		sum += s.LossDB
	}
	return sum
}

// ReceivedDBm is the power arriving at the detector.
func (b *LinkBudget) ReceivedDBm() float64 { return b.LaunchDBm - b.TotalLossDB() }

// MarginDB is received power minus detector sensitivity; the link closes when
// the margin is non-negative.
func (b *LinkBudget) MarginDB() float64 { return b.ReceivedDBm() - b.SensitivityDBm }

// Closes reports whether the link budget closes.
func (b *LinkBudget) Closes() bool { return b.MarginDB() >= 0 }

// RequiredLaunchDBm returns the minimum per-wavelength laser power for the
// budget to close with the given margin.
func (b *LinkBudget) RequiredLaunchDBm(marginDB float64) float64 {
	return b.SensitivityDBm + b.TotalLossDB() + marginDB
}

// String renders the budget as a small report.
func (b *LinkBudget) String() string {
	s := fmt.Sprintf("%s: launch %.1f dBm", b.Name, b.LaunchDBm)
	for _, seg := range b.Segments {
		s += fmt.Sprintf("\n  -%.2f dB  %s", seg.LossDB, seg.Name)
	}
	s += fmt.Sprintf("\n  received %.2f dBm, sensitivity %.1f dBm, margin %.2f dB",
		b.ReceivedDBm(), b.SensitivityDBm, b.MarginDB())
	return s
}

// CrossbarWorstCaseBudget builds the budget for the longest crossbar path: a
// wavelength sourced at a channel's home splitter, travelling the full
// serpentine past every other cluster's (off-resonance) modulator banks, and
// terminating in the home detectors.
func CrossbarWorstCaseBudget(launchDBm float64) *LinkBudget {
	geom := DefaultGeometry()
	b := &LinkBudget{
		Name:           "crossbar worst-case channel",
		LaunchDBm:      launchDBm,
		SensitivityDBm: DetectorSensitivityDBm,
	}
	b.Add("home power splitter", Splitter{Tap: 1.0 / float64(geom.Clusters)}.BranchLossDB())
	wg := Waveguide{
		LengthCm: float64(geom.SerpentineCm),
		// Every non-home cluster has one modulator ring per wavelength on
		// this waveguide; only the matching-wavelength rings add through
		// loss for our wavelength, one per cluster.
		Rings:       geom.Clusters - 1,
		LossDBPerCm: InterconnectLossDBPerCm,
	}
	b.Add("serpentine waveguide", wg.LossDB(0))
	b.Add("active modulator", ModulatorInsertionLossDB)
	return b
}

// OCMBudget builds the budget for an optically connected memory link through
// nModules daisy-chained OCMs and back (Figure 6c): fiber out, through each
// module's off-resonance rings, loop back.
func OCMBudget(launchDBm float64, nModules int) *LinkBudget {
	b := &LinkBudget{
		Name:           fmt.Sprintf("OCM loop through %d modules", nModules),
		LaunchDBm:      launchDBm,
		SensitivityDBm: DetectorSensitivityDBm,
	}
	b.Add("stack-to-fiber coupler", CouplerLossDB)
	for i := 0; i < nModules; i++ {
		b.Add(fmt.Sprintf("OCM %d pass-through", i), 2*CouplerLossDB+float64(WavelengthsPerComb)*RingThroughLossDB)
	}
	b.Add("fiber-to-stack coupler", CouplerLossDB)
	return b
}

// MaxOCMModules returns the largest daisy-chain depth whose budget closes at
// the given launch power with the given margin. Expansion "adds only
// modulators and detectors and not lasers" (Section 3.3), so depth is bounded
// by the optical budget, which this function quantifies.
func MaxOCMModules(launchDBm, marginDB float64) int {
	n := 0
	for {
		b := OCMBudget(launchDBm, n+1)
		if b.MarginDB() < marginDB {
			return n
		}
		n++
		if n > 1024 {
			return n
		}
	}
}
