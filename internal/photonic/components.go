// Package photonic models the nanophotonic building blocks of Section 2 of
// the paper — ring resonators, waveguides, splitters, and mode-locked comb
// lasers — at the analytic level the architecture needs: device counts
// (Table 2), optical loss/laser power budgets, and propagation timing.
//
// No electromagnetic simulation is performed; the paper itself treats these
// devices through a handful of constants (2–3 dB/cm waveguide loss, 10 Gb/s
// per wavelength, 64-wavelength combs, 2 cm of waveguide per 5 GHz clock),
// and those constants are what the interconnect models consume.
package photonic

import "fmt"

// Physical and architectural constants from Sections 2–3 of the paper.
const (
	// WavelengthsPerComb is the number of DWDM wavelengths one on-stack
	// mode-locked laser provides.
	WavelengthsPerComb = 64
	// DataRateGbps is the per-wavelength signalling rate (dual-edge 5 GHz).
	DataRateGbps = 10.0
	// WaveguideCmPerClock is how far light travels in silicon waveguide in
	// one 5 GHz clock cycle.
	WaveguideCmPerClock = 2.0
	// WaveguideLossDBPerCm is the propagation loss of a demonstrated-today
	// SOI waveguide (the paper quotes 2–3 dB/cm).
	WaveguideLossDBPerCm = 2.5
	// InterconnectLossDBPerCm is the loss of the low-loss ridge waveguide the
	// chip-scale serpentine requires: at 2.5 dB/cm a 16 cm serpentine alone
	// costs 40 dB and no practical laser closes the budget, so Corona-class
	// designs (and the follow-on literature) assume ~0.3 dB/cm for the long
	// on-stack runs. The budget functions use this figure for the crossbar.
	InterconnectLossDBPerCm = 0.3
	// RingThroughLossDB is the insertion loss an off-resonance ring imposes
	// on wavelengths passing it.
	RingThroughLossDB = 0.01
	// SplitterExcessLossDB is the excess (non-split) loss of a broadband
	// splitter.
	SplitterExcessLossDB = 0.1
	// DetectorSensitivityDBm is the minimum optical power a ring-resonator
	// SiGe detector needs (its ~1 fF capacitance removes the TIA).
	DetectorSensitivityDBm = -20.0
	// ModulatorInsertionLossDB is the loss of an active modulator pass.
	ModulatorInsertionLossDB = 0.5
	// CouplerLossDB is the fiber-to-stack coupling loss for off-stack links.
	CouplerLossDB = 1.0
)

// RingRole distinguishes the three uses of a ring resonator (Figure 1).
type RingRole uint8

// Ring resonator roles.
const (
	RoleModulator RingRole = iota // encodes data onto a CW wavelength
	RoleInjector                  // diverts a wavelength between waveguides
	RoleDetector                  // absorbs a wavelength into a SiGe junction
)

// String names the role.
func (r RingRole) String() string {
	switch r {
	case RoleModulator:
		return "modulator"
	case RoleInjector:
		return "injector"
	case RoleDetector:
		return "detector"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Ring is a ring resonator tuned to one wavelength index within a comb.
// Bringing it on resonance couples its wavelength; off resonance the
// wavelength passes by (Figure 1a/b).
type Ring struct {
	Role        RingRole
	Wavelength  int // index within the 64-wavelength comb
	onResonance bool
}

// SetResonance tunes the ring on or off resonance (charge injection in the
// real device).
func (r *Ring) SetResonance(on bool) { r.onResonance = on }

// OnResonance reports whether the ring is currently resonant.
func (r *Ring) OnResonance() bool { return r.onResonance }

// Couples reports whether the ring interacts with wavelength w: it must be
// resonant and tuned to w.
func (r *Ring) Couples(w int) bool { return r.onResonance && r.Wavelength == w }

// Waveguide is a length of on-stack silicon waveguide.
type Waveguide struct {
	// LengthCm is the routed length.
	LengthCm float64
	// Rings is the number of ring resonators coupled along it (their
	// through-loss accumulates for every wavelength passing them).
	Rings int
	// Splitters is the number of broadband splitters along it.
	Splitters int
	// LossDBPerCm overrides the propagation loss; zero selects the
	// demonstrated-today WaveguideLossDBPerCm.
	LossDBPerCm float64
}

// PropagationClocks returns the time in 5 GHz clocks for light to traverse
// the waveguide, rounded up.
func (w Waveguide) PropagationClocks() int {
	c := w.LengthCm / WaveguideCmPerClock
	n := int(c)
	if float64(n) < c {
		n++
	}
	return n
}

// LossDB returns the total optical loss along the waveguide in dB, given the
// fraction of power each splitter taps off (splitTap in (0,1)).
func (w Waveguide) LossDB(splitTap float64) float64 {
	perCm := w.LossDBPerCm
	if perCm == 0 {
		perCm = WaveguideLossDBPerCm
	}
	loss := w.LengthCm * perCm
	loss += float64(w.Rings) * RingThroughLossDB
	if w.Splitters > 0 {
		perSplit := SplitterExcessLossDB + fractionToDB(1-splitTap)
		loss += float64(w.Splitters) * perSplit
	}
	return loss
}

// Laser is an on-stack mode-locked comb laser feeding power waveguides.
type Laser struct {
	// Wavelengths in the comb (64 per laser, Section 2).
	Wavelengths int
	// PowerPerWavelengthDBm is the launched power per wavelength.
	PowerPerWavelengthDBm float64
}

// TotalPowerMW returns the total launched optical power in milliwatts.
func (l Laser) TotalPowerMW() float64 {
	return float64(l.Wavelengths) * dbmToMW(l.PowerPerWavelengthDBm)
}

// Splitter is a broadband splitter diverting Tap of the incoming power of
// all wavelengths onto a branch waveguide (Section 2's final component).
type Splitter struct {
	Tap float64 // fraction diverted, in (0,1)
}

// BranchLossDB is the loss seen by the diverted branch relative to input.
func (s Splitter) BranchLossDB() float64 {
	return SplitterExcessLossDB + fractionToDB(s.Tap)
}

// ThroughLossDB is the loss seen by the continuing trunk.
func (s Splitter) ThroughLossDB() float64 {
	return SplitterExcessLossDB + fractionToDB(1-s.Tap)
}
