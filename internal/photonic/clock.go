package photonic

import "fmt"

// Corona distributes its clock optically (Section 3.2.1): a clock waveguide
// parallels the data serpentine, the clock signal travelling clockwise with
// the data. Each cluster phase-locks its electrical clock to the arriving
// optical clock, so each cluster runs offset from the previous one by about
// 1/8th of a clock cycle — and because data and clock co-propagate, input
// and output data stay in phase with the local clock everywhere except where
// the serpentine wraps around, the single point that needs retiming.

// ClockDistribution models the global optical clock.
type ClockDistribution struct {
	Clusters int
	// PositionsPerCycle is how many cluster positions light passes per clock
	// (8 for Corona: a 64-cluster revolution in 8 clocks).
	PositionsPerCycle int
}

// DefaultClock returns Corona's published clocking.
func DefaultClock() ClockDistribution {
	return ClockDistribution{Clusters: 64, PositionsPerCycle: 8}
}

// PhaseOffset returns cluster's clock phase relative to cluster 0, as a
// fraction of one cycle in [0, 1): the clock arrives cluster/8 cycles after
// it passes cluster 0, and only the fractional part is a phase difference.
func (c ClockDistribution) PhaseOffset(cluster int) float64 {
	if cluster < 0 || cluster >= c.Clusters {
		panic(fmt.Sprintf("photonic: cluster %d out of range", cluster))
	}
	return float64(cluster%c.PositionsPerCycle) / float64(c.PositionsPerCycle)
}

// AdjacentOffsetCycles returns the phase step between neighbouring clusters
// (the paper's "approximately 1/8th of a clock cycle").
func (c ClockDistribution) AdjacentOffsetCycles() float64 {
	return 1 / float64(c.PositionsPerCycle)
}

// NeedsRetiming reports whether data travelling from src to the channel home
// dst crosses the serpentine wrap-around and therefore needs resynchronized
// capture. Light travels in cyclically increasing cluster order, so the wrap
// (position Clusters-1 back to 0) is crossed exactly when src >= dst.
func (c ClockDistribution) NeedsRetiming(src, dst int) bool {
	if src < 0 || src >= c.Clusters || dst < 0 || dst >= c.Clusters {
		panic(fmt.Sprintf("photonic: src %d / dst %d out of range", src, dst))
	}
	return src >= dst
}

// RetimingFraction returns the fraction of (src, dst) pairs that cross the
// wrap — the share of traffic paying the retiming penalty the scheme avoids
// everywhere else.
func (c ClockDistribution) RetimingFraction() float64 {
	var crossing, total int
	for s := 0; s < c.Clusters; s++ {
		for d := 0; d < c.Clusters; d++ {
			if s == d {
				continue
			}
			total++
			if c.NeedsRetiming(s, d) {
				crossing++
			}
		}
	}
	return float64(crossing) / float64(total)
}
