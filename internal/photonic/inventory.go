package photonic

import "corona/internal/stats"

// Geometry captures the architectural parameters the optical inventory and
// timing derive from (Sections 3.2–3.3).
type Geometry struct {
	Clusters              int // 64
	ChannelWaveguides     int // 4 waveguides bundled per crossbar channel
	WavelengthsPerGuide   int // 64 DWDM wavelengths per waveguide
	MemoryFibersPerMC     int // 2 (a pair of single-waveguide 64-λ links)
	SerpentineCm          int // routed length of one crossbar serpentine
	BroadcastPassCount    int // broadcast coil passes each cluster twice
	ArbitrationWaveguides int // one for the crossbar tokens, one for broadcast
}

// DefaultGeometry returns Corona's published configuration.
func DefaultGeometry() Geometry {
	return Geometry{
		Clusters:              64,
		ChannelWaveguides:     4,
		WavelengthsPerGuide:   64,
		MemoryFibersPerMC:     2,
		SerpentineCm:          16, // 8 clocks of propagation at 2 cm/clock
		BroadcastPassCount:    2,
		ArbitrationWaveguides: 2,
	}
}

// ChannelWavelengths returns the width of one crossbar channel in
// wavelengths (256 for Corona).
func (g Geometry) ChannelWavelengths() int {
	return g.ChannelWaveguides * g.WavelengthsPerGuide
}

// ChannelBytesPerCycle returns the payload a crossbar channel moves per
// 5 GHz cycle with dual-edge modulation: 256 λ × 2 bits / 8 = 64 B.
func (g Geometry) ChannelBytesPerCycle() int {
	return g.ChannelWavelengths() * 2 / 8
}

// MaxPropagationClocks returns the worst-case crossbar propagation time.
func (g Geometry) MaxPropagationClocks() int {
	return Waveguide{LengthCm: float64(g.SerpentineCm)}.PropagationClocks()
}

// SubsystemInventory is one row of Table 2.
type SubsystemInventory struct {
	Name       string
	Waveguides int
	Rings      int
}

// Inventory reproduces Table 2: the optical resource requirements of each
// photonic subsystem (power waveguides and I/O components omitted, as in the
// paper).
func Inventory(g Geometry) []SubsystemInventory {
	chanW := g.ChannelWavelengths()
	// Crossbar: each of the Clusters channels is ChannelWaveguides guides.
	// Every cluster can write every channel (modulator ring per wavelength),
	// and the home cluster reads it (detector ring per wavelength):
	// Clusters channels × Clusters clusters × 256 λ = 1024 K rings.
	xbar := SubsystemInventory{
		Name:       "Crossbar",
		Waveguides: g.Clusters * g.ChannelWaveguides,
		Rings:      g.Clusters * ((g.Clusters-1)*chanW + chanW),
	}
	// Memory: per MC a fiber pair, each 64 λ, with a modulator and detector
	// ring per wavelength on the stack side: 64 MC × 2 × (64+64) = 16 K.
	mem := SubsystemInventory{
		Name:       "Memory",
		Waveguides: g.Clusters * g.MemoryFibersPerMC,
		Rings:      g.Clusters * g.MemoryFibersPerMC * 2 * g.WavelengthsPerGuide,
	}
	// Broadcast: one coiled waveguide; each cluster has 64 modulator rings
	// (first pass) and 64 detector rings on its splitter branch (second
	// pass): 64 × 128 = 8 K.
	bcast := SubsystemInventory{
		Name:       "Broadcast",
		Waveguides: 1,
		Rings:      g.Clusters * 2 * g.WavelengthsPerGuide,
	}
	// Arbitration: two token waveguides; each cluster holds a fixed-λ
	// detector and injector per crossbar channel token: 64 × (64+64) = 8 K.
	arb := SubsystemInventory{
		Name:       "Arbitration",
		Waveguides: g.ArbitrationWaveguides,
		Rings:      g.Clusters * 2 * g.WavelengthsPerGuide,
	}
	// Clock: one distribution waveguide with a detector ring per cluster.
	clock := SubsystemInventory{
		Name:       "Clock",
		Waveguides: 1,
		Rings:      g.Clusters,
	}
	return []SubsystemInventory{mem, xbar, bcast, arb, clock}
}

// InventoryTotal sums an inventory.
func InventoryTotal(inv []SubsystemInventory) SubsystemInventory {
	t := SubsystemInventory{Name: "Total"}
	for _, s := range inv {
		t.Waveguides += s.Waveguides
		t.Rings += s.Rings
	}
	return t
}

// InventoryTable renders Table 2.
func InventoryTable(g Geometry) *stats.Table {
	tab := stats.NewTable("Photonic Subsystem", "Waveguides", "Ring Resonators")
	inv := Inventory(g)
	for _, s := range inv {
		tab.AddRow(s.Name, itoa(s.Waveguides), ringCount(s.Rings))
	}
	t := InventoryTotal(inv)
	tab.AddRow(t.Name, itoa(t.Waveguides), "~ "+ringCount(t.Rings))
	return tab
}

func itoa(v int) string {
	// small helper to avoid strconv import churn at call sites
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ringCount formats a ring count the way the paper does (K = 1024).
func ringCount(v int) string {
	if v >= 1024 && v%64 == 0 {
		k := v / 1024
		if v%1024 != 0 {
			// round to nearest K as the paper's "≈ 1056 K" does
			k = (v + 512) / 1024
		}
		return itoa(k) + " K"
	}
	return itoa(v)
}
