package photonic

import (
	"math"
	"strings"
	"testing"
)

func TestInventoryMatchesTable2(t *testing.T) {
	g := DefaultGeometry()
	inv := Inventory(g)
	byName := map[string]SubsystemInventory{}
	for _, s := range inv {
		byName[s.Name] = s
	}
	cases := []struct {
		name       string
		waveguides int
		rings      int
	}{
		{"Memory", 128, 16 * 1024},
		{"Crossbar", 256, 1024 * 1024},
		{"Broadcast", 1, 8 * 1024},
		{"Arbitration", 2, 8 * 1024},
		{"Clock", 1, 64},
	}
	for _, c := range cases {
		s, ok := byName[c.name]
		if !ok {
			t.Fatalf("subsystem %q missing from inventory", c.name)
		}
		if s.Waveguides != c.waveguides {
			t.Errorf("%s waveguides = %d, want %d (Table 2)", c.name, s.Waveguides, c.waveguides)
		}
		if s.Rings != c.rings {
			t.Errorf("%s rings = %d, want %d (Table 2)", c.name, s.Rings, c.rings)
		}
	}
	total := InventoryTotal(inv)
	if total.Waveguides != 388 {
		t.Errorf("total waveguides = %d, want 388 (Table 2)", total.Waveguides)
	}
	// Paper reports ≈ 1056 K; exact sum is 1056.0625 K.
	if total.Rings < 1055*1024 || total.Rings > 1057*1024 {
		t.Errorf("total rings = %d, want ≈ 1056 K", total.Rings)
	}
}

func TestChannelGeometry(t *testing.T) {
	g := DefaultGeometry()
	if got := g.ChannelWavelengths(); got != 256 {
		t.Errorf("channel wavelengths = %d, want 256", got)
	}
	if got := g.ChannelBytesPerCycle(); got != 64 {
		t.Errorf("channel bytes/cycle = %d, want 64 (one cache line per clock)", got)
	}
	if got := g.MaxPropagationClocks(); got != 8 {
		t.Errorf("max propagation = %d clocks, want 8", got)
	}
}

func TestCrossbarBandwidth(t *testing.T) {
	g := DefaultGeometry()
	// 64 channels x 64 B/cycle x 5 GHz = 20.48 TB/s.
	perChannelTbps := float64(g.ChannelWavelengths()) * DataRateGbps / 1000
	if math.Abs(perChannelTbps-2.56) > 1e-9 {
		t.Errorf("per-cluster bandwidth = %v Tb/s, want 2.56", perChannelTbps)
	}
	totalTBs := float64(g.Clusters) * float64(g.ChannelBytesPerCycle()) * 5e9 / 1e12
	if math.Abs(totalTBs-20.48) > 1e-9 {
		t.Errorf("total crossbar bandwidth = %v TB/s, want 20.48", totalTBs)
	}
}

func TestWaveguidePropagation(t *testing.T) {
	cases := []struct {
		cm   float64
		want int
	}{
		{0, 0}, {1, 1}, {2, 1}, {2.1, 2}, {16, 8},
	}
	for _, c := range cases {
		if got := (Waveguide{LengthCm: c.cm}).PropagationClocks(); got != c.want {
			t.Errorf("PropagationClocks(%v cm) = %d, want %d", c.cm, got, c.want)
		}
	}
}

func TestWaveguideLoss(t *testing.T) {
	wg := Waveguide{LengthCm: 2, Rings: 10}
	want := 2*WaveguideLossDBPerCm + 10*RingThroughLossDB
	if got := wg.LossDB(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("LossDB = %v, want %v", got, want)
	}
	// Splitters add loss.
	wg.Splitters = 2
	if wg.LossDB(0.01) <= want {
		t.Error("splitters should add loss")
	}
}

func TestRingResonance(t *testing.T) {
	r := Ring{Role: RoleModulator, Wavelength: 5}
	if r.Couples(5) {
		t.Error("off-resonance ring must not couple")
	}
	r.SetResonance(true)
	if !r.Couples(5) {
		t.Error("on-resonance ring must couple its wavelength")
	}
	if r.Couples(6) {
		t.Error("ring must not couple other wavelengths")
	}
	if !r.OnResonance() {
		t.Error("OnResonance should be true")
	}
}

func TestRingRoleString(t *testing.T) {
	if RoleModulator.String() != "modulator" || RoleInjector.String() != "injector" ||
		RoleDetector.String() != "detector" {
		t.Error("role names wrong")
	}
	if !strings.HasPrefix(RingRole(9).String(), "role(") {
		t.Error("unknown role should format numerically")
	}
}

func TestSplitterLosses(t *testing.T) {
	s := Splitter{Tap: 0.5}
	// A 50/50 splitter loses ~3 dB on each side plus excess.
	if math.Abs(s.BranchLossDB()-(SplitterExcessLossDB+3.0103)) > 0.01 {
		t.Errorf("BranchLossDB = %v", s.BranchLossDB())
	}
	if math.Abs(s.ThroughLossDB()-s.BranchLossDB()) > 1e-9 {
		t.Errorf("50/50 splitter should be symmetric")
	}
	// Small tap: branch lossy, trunk nearly transparent.
	small := Splitter{Tap: 0.01}
	if small.BranchLossDB() < 19 {
		t.Errorf("1%% tap branch loss = %v, want ~20 dB", small.BranchLossDB())
	}
	if small.ThroughLossDB() > 0.2 {
		t.Errorf("1%% tap through loss = %v, want < 0.2 dB", small.ThroughLossDB())
	}
}

func TestLaserPower(t *testing.T) {
	l := Laser{Wavelengths: 64, PowerPerWavelengthDBm: 0} // 1 mW per λ
	if math.Abs(l.TotalPowerMW()-64) > 1e-9 {
		t.Errorf("TotalPowerMW = %v, want 64", l.TotalPowerMW())
	}
}

func TestLinkBudgetArithmetic(t *testing.T) {
	b := &LinkBudget{Name: "t", LaunchDBm: 3, SensitivityDBm: -20}
	b.Add("a", 5)
	b.Add("b", 7)
	if b.TotalLossDB() != 12 {
		t.Errorf("TotalLossDB = %v, want 12", b.TotalLossDB())
	}
	if b.ReceivedDBm() != -9 {
		t.Errorf("ReceivedDBm = %v, want -9", b.ReceivedDBm())
	}
	if b.MarginDB() != 11 {
		t.Errorf("MarginDB = %v, want 11", b.MarginDB())
	}
	if !b.Closes() {
		t.Error("budget should close")
	}
	if got := b.RequiredLaunchDBm(3); got != -5 {
		t.Errorf("RequiredLaunchDBm = %v, want -5", got)
	}
	if !strings.Contains(b.String(), "margin") {
		t.Error("String() should include margin")
	}
}

func TestCrossbarWorstCaseBudgetCloses(t *testing.T) {
	// With a few mW per wavelength the worst-case crossbar path must close:
	// the whole architecture depends on it.
	b := CrossbarWorstCaseBudget(10) // 10 dBm = 10 mW per λ
	if !b.Closes() {
		t.Errorf("worst-case crossbar budget does not close:\n%s", b)
	}
	// And with a microwatt it must not.
	b2 := CrossbarWorstCaseBudget(-30)
	if b2.Closes() {
		t.Error("budget closes with -30 dBm launch; loss model too optimistic")
	}
}

func TestOCMBudgetDepth(t *testing.T) {
	// More modules -> more loss, monotonically.
	prev := math.Inf(1)
	for n := 1; n <= 8; n++ {
		m := OCMBudget(0, n).MarginDB()
		if m >= prev {
			t.Fatalf("OCM margin not decreasing at depth %d", n)
		}
		prev = m
	}
	d := MaxOCMModules(0, 1)
	if d < 1 {
		t.Errorf("MaxOCMModules(0 dBm) = %d, want >= 1 (expansion must be possible)", d)
	}
	if MaxOCMModules(20, 1) <= d {
		t.Error("more launch power should allow deeper chains")
	}
}

func TestInventoryTableRenders(t *testing.T) {
	s := InventoryTable(DefaultGeometry()).String()
	for _, want := range []string{"Crossbar", "1024 K", "388", "Memory", "16 K"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, s)
		}
	}
}

func TestRingCountFormatting(t *testing.T) {
	if ringCount(64) != "64" {
		t.Errorf("ringCount(64) = %q", ringCount(64))
	}
	if ringCount(8192) != "8 K" {
		t.Errorf("ringCount(8192) = %q", ringCount(8192))
	}
	if ringCount(1048576) != "1024 K" {
		t.Errorf("ringCount(1048576) = %q", ringCount(1048576))
	}
}
