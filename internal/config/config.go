// Package config describes simulated system configurations declaratively —
// a registered interconnect fabric name plus sizing parameters, a memory
// interconnect, and the cluster/MSHR/hub structure — and reproduces the
// paper's configuration tables (Tables 1, 3, and 4). The five machines of
// Section 4 (XBar/OCM, HMesh/OCM, LMesh/OCM, HMesh/ECM, LMesh/ECM) are
// presets over that scheme; arbitrary machines are built with Custom or
// loaded from JSON (core.LoadScenario). See docs/ARCHITECTURE.md.
package config

import (
	"fmt"
	"strings"

	"corona/internal/memory"
	"corona/internal/noc"
	"corona/internal/splash"
	"corona/internal/stats"
	"corona/internal/traffic"

	// The shipped fabric catalog registers itself with the noc registry;
	// these packages are linked here (and only here) for that side effect,
	// so every consumer of a configuration can resolve its fabric by name.
	_ "corona/internal/mesh"
	_ "corona/internal/swmr"
	_ "corona/internal/xbar"
)

// NetworkKind selects the on-stack interconnect among the paper's presets.
// It survives the fabric registry as the preset vocabulary: parsing and
// printing for CLIs, and a compact way to name the five machines. Arbitrary
// fabrics are addressed by registry name in System.Fabric instead.
type NetworkKind uint8

// On-stack interconnect options (Section 4).
const (
	XBar NetworkKind = iota
	HMesh
	LMesh
)

// FabricName returns the registry name of the preset's fabric.
func (n NetworkKind) FabricName() string {
	switch n {
	case XBar:
		return "xbar"
	case HMesh:
		return "hmesh"
	case LMesh:
		return "lmesh"
	default:
		return fmt.Sprintf("net(%d)", uint8(n))
	}
}

// String names the network.
func (n NetworkKind) String() string {
	switch n {
	case XBar:
		return "XBar"
	case HMesh:
		return "HMesh"
	case LMesh:
		return "LMesh"
	default:
		return fmt.Sprintf("net(%d)", uint8(n))
	}
}

// ParseNetworkKind is the inverse of String. It rejects unknown names with
// an error listing the valid ones, so a typo in a flag or JSON config fails
// loudly instead of silently selecting a default machine.
func ParseNetworkKind(s string) (NetworkKind, error) {
	for _, n := range []NetworkKind{XBar, HMesh, LMesh} {
		if s == n.String() {
			return n, nil
		}
	}
	return 0, fmt.Errorf("config: unknown network %q (valid: XBar, HMesh, LMesh)", s)
}

// MemoryKind selects the off-stack memory interconnect.
type MemoryKind uint8

// Memory interconnect options (Section 4).
const (
	OCM MemoryKind = iota
	ECM
)

// String names the memory system.
func (m MemoryKind) String() string {
	switch m {
	case OCM:
		return "OCM"
	case ECM:
		return "ECM"
	default:
		return fmt.Sprintf("mem(%d)", uint8(m))
	}
}

// ParseMemoryKind is the inverse of String, rejecting unknown names.
func ParseMemoryKind(s string) (MemoryKind, error) {
	for _, m := range []MemoryKind{OCM, ECM} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("config: unknown memory interconnect %q (valid: OCM, ECM)", s)
}

// System is one simulated configuration, described declaratively: the
// interconnect is a fabric registry name plus a parameter map, never a
// hard-wired type. Everything that shapes a result is in this struct (plus
// the workload), which is why the sweep cache fingerprints its full JSON.
type System struct {
	// Fabric is the registered interconnect name ("xbar", "hmesh", "lmesh",
	// "swmr", or any fabric registered through corona.RegisterFabric).
	Fabric string
	// FabricParams are fabric-specific sizing overrides, keyed by the names
	// the fabric's builder documents; nil selects its published defaults.
	FabricParams map[string]int
	// Mem selects the off-stack memory interconnect.
	Mem MemoryKind
	// Label, when non-empty, overrides Name()'s derived display label —
	// useful when two configurations share a fabric and differ in params.
	Label string

	// Clusters is the cluster count (64).
	Clusters int
	// MSHRs bounds outstanding misses per cluster hub.
	MSHRs int
	// HubLatency is the hub's internal routing latency in cycles, paid by
	// cluster-local transactions in lieu of the network.
	HubLatency int

	// MemOverride replaces the Mem preset's controller parameters; nil
	// selects the published ones.
	MemOverride *memory.Config
}

// Name returns the configuration's display label: Label when set, otherwise
// the fabric's display name and the memory kind, e.g. "XBar/OCM".
func (s System) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return noc.DisplayName(s.Fabric) + "/" + s.Mem.String()
}

// Params assembles the noc.FabricParams the fabric builder receives.
func (s System) Params() noc.FabricParams {
	return noc.FabricParams{Clusters: s.Clusters, Params: s.FabricParams}
}

// Validate checks that the fabric is registered and accepts the parameters,
// without building anything — the cheap pre-flight for CLIs and config
// loaders.
func (s System) Validate() error {
	fab, ok := noc.Lookup(s.Fabric)
	if !ok {
		return fmt.Errorf("config: %s: unknown fabric %q (registered: %v)", s.Name(), s.Fabric, noc.Names())
	}
	if s.Clusters <= 0 || s.MSHRs <= 0 || s.HubLatency <= 0 {
		return fmt.Errorf("config: %s: non-positive structural parameter (clusters=%d mshrs=%d hub_latency=%d)",
			s.Name(), s.Clusters, s.MSHRs, s.HubLatency)
	}
	if fab.Check != nil {
		if err := fab.Check(s.Params()); err != nil {
			return fmt.Errorf("config: %s: %w", s.Name(), err)
		}
	}
	return nil
}

// Custom returns a declarative System for any registered fabric, with the
// paper's structural defaults (64 clusters, 64 MSHRs, 4-cycle hub). The
// label may be empty to derive one from the fabric and memory names.
func Custom(label, fabric string, mem MemoryKind, params map[string]int) System {
	return System{
		Fabric: fabric, FabricParams: params, Mem: mem, Label: label,
		Clusters: 64, MSHRs: 64, HubLatency: 4,
	}
}

// Default fills in the common structural parameters for a preset machine.
func Default(net NetworkKind, mem MemoryKind) System {
	return Custom("", net.FabricName(), mem, nil)
}

// Corona returns the flagship XBar/OCM configuration.
func Corona() System { return Default(XBar, OCM) }

// Combos returns the five simulated configurations in the paper's
// baseline-first order (Figure 8's legend order).
func Combos() []System {
	return []System{
		Default(LMesh, ECM),
		Default(HMesh, ECM),
		Default(LMesh, OCM),
		Default(HMesh, OCM),
		Default(XBar, OCM),
	}
}

// ParseName resolves a preset label of the form "<Network>/<Memory>", e.g.
// "XBar/OCM" — the vocabulary of the paper's five machines plus the SWMR
// variant ("SWMR/OCM" etc.), which shares the preset structure.
func ParseName(name string) (System, error) {
	netName, memName, ok := strings.Cut(name, "/")
	if !ok {
		return System{}, fmt.Errorf("config: preset %q is not of the form Network/Memory (e.g. XBar/OCM)", name)
	}
	mem, err := ParseMemoryKind(memName)
	if err != nil {
		return System{}, fmt.Errorf("preset %q: %w", name, err)
	}
	if netName == "SWMR" {
		return Custom("", "swmr", mem, nil), nil
	}
	net, err := ParseNetworkKind(netName)
	if err != nil {
		return System{}, fmt.Errorf("preset %q: %w (or SWMR)", name, err)
	}
	return Default(net, mem), nil
}

// MemConfig returns the per-controller memory configuration.
func (s System) MemConfig() memory.Config {
	if s.MemOverride != nil {
		return *s.MemOverride
	}
	if s.Mem == OCM {
		return memory.OCMConfig()
	}
	return memory.ECMConfig()
}

// FabricCatalog renders the registered fabrics with their analytic
// metadata — bisection bandwidth and best-case transit at the paper's
// 64-cluster scale — the at-a-glance design-space table the registry
// opens up beyond the five fixed machines.
func FabricCatalog() *stats.Table {
	t := stats.NewTable("Fabric", "Label", "Bisection (TB/s)", "Min transit (cycles)", "Description")
	for _, name := range noc.Names() {
		f, ok := noc.Lookup(name)
		if !ok {
			continue
		}
		p := noc.FabricParams{Clusters: 64}
		bisection := "-"
		if f.BisectionBytesPerSec != nil {
			if bw := f.BisectionBytesPerSec(p); bw > 0 {
				bisection = fmt.Sprintf("%.2f", bw/1e12)
			}
		}
		transit := "-"
		if f.MinTransitCycles > 0 {
			transit = fmt.Sprintf("%d", f.MinTransitCycles)
		}
		t.AddRow(name, noc.DisplayName(name), bisection, transit, f.Description)
	}
	return t
}

// Table1 reproduces the paper's resource configuration table.
func Table1() *stats.Table {
	t := stats.NewTable("Resource", "Value")
	rows := [][2]string{
		{"Number of clusters", "64"},
		{"Per-Cluster:", ""},
		{"  L2 cache size/assoc", "4 MB/16-way"},
		{"  L2 cache line size", "64 B"},
		{"  L2 coherence", "MOESI"},
		{"  Memory controllers", "1"},
		{"  Cores", "4"},
		{"Per-Core:", ""},
		{"  L1 ICache size/assoc", "16 KB/4-way"},
		{"  L1 DCache size/assoc", "32 KB/4-way"},
		{"  L1 I & D cache line size", "64 B"},
		{"  Frequency", "5 GHz"},
		{"  Threads", "4"},
		{"  Issue policy", "In-order"},
		{"  Issue width", "2"},
		{"  64 b floating point SIMD width", "4"},
		{"  Fused floating point operations", "Multiply-Add"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t
}

// Table3 reproduces the benchmark setup table.
func Table3() *stats.Table {
	t := stats.NewTable("Benchmark", "Data Set (Default)", "Network Requests")
	for _, s := range traffic.Synthetic() {
		t.AddRow(s.Name, "-", fmt.Sprintf("%d M", s.DefaultRequests/1_000_000))
	}
	for _, a := range splash.Apps() {
		t.AddRow(a.Spec.Name,
			fmt.Sprintf("%s (%s)", a.Dataset, a.DefaultDataset),
			formatMillions(a.Spec.DefaultRequests))
	}
	return t
}

func formatMillions(n int) string {
	return fmt.Sprintf("%.1f M", float64(n)/1e6)
}

// Table4 reproduces the optical-vs-electrical memory interconnect table.
func Table4() *stats.Table {
	ocm, ecm := memory.OCMConfig(), memory.ECMConfig()
	t := stats.NewTable("Resource", "OCM", "ECM")
	t.AddRow("Memory controllers", "64", "64")
	t.AddRow("External connectivity", "256 fibers", "1536 pins")
	t.AddRow("Channel width", "128 b half duplex", "12 b full duplex")
	t.AddRow("Channel data rate", "10 Gb/s", "10 Gb/s")
	t.AddRow("Memory bandwidth",
		fmt.Sprintf("%.2f TB/s", ocm.AggregateBytesPerSec(64)/1e12),
		fmt.Sprintf("%.2f TB/s", ecm.AggregateBytesPerSec(64)/1e12))
	t.AddRow("Memory latency", "20 ns", "20 ns")
	return t
}
