// Package config defines the five simulated system configurations of
// Section 4 (XBar/OCM, HMesh/OCM, LMesh/OCM, HMesh/ECM, LMesh/ECM) and
// reproduces the paper's configuration tables (Tables 1, 3, and 4).
package config

import (
	"fmt"

	"corona/internal/memory"
	"corona/internal/mesh"
	"corona/internal/splash"
	"corona/internal/stats"
	"corona/internal/traffic"
	"corona/internal/xbar"
)

// NetworkKind selects the on-stack interconnect.
type NetworkKind uint8

// On-stack interconnect options (Section 4).
const (
	XBar NetworkKind = iota
	HMesh
	LMesh
)

// String names the network.
func (n NetworkKind) String() string {
	switch n {
	case XBar:
		return "XBar"
	case HMesh:
		return "HMesh"
	case LMesh:
		return "LMesh"
	default:
		return fmt.Sprintf("net(%d)", uint8(n))
	}
}

// MemoryKind selects the off-stack memory interconnect.
type MemoryKind uint8

// Memory interconnect options (Section 4).
const (
	OCM MemoryKind = iota
	ECM
)

// String names the memory system.
func (m MemoryKind) String() string {
	switch m {
	case OCM:
		return "OCM"
	case ECM:
		return "ECM"
	default:
		return fmt.Sprintf("mem(%d)", uint8(m))
	}
}

// System is one simulated configuration.
type System struct {
	Net NetworkKind
	Mem MemoryKind
	// Clusters is the cluster count (64).
	Clusters int
	// MSHRs bounds outstanding misses per cluster hub.
	MSHRs int
	// HubLatency is the hub's internal routing latency in cycles, paid by
	// cluster-local transactions in lieu of the network.
	HubLatency int

	// Optional overrides for ablation studies; nil selects the published
	// parameters.
	XBarOverride *xbar.Config
	MeshOverride *mesh.Config
	MemOverride  *memory.Config
}

// Name returns the paper's configuration label, e.g. "XBar/OCM".
func (s System) Name() string { return s.Net.String() + "/" + s.Mem.String() }

// Default fills in the common structural parameters.
func Default(net NetworkKind, mem MemoryKind) System {
	return System{Net: net, Mem: mem, Clusters: 64, MSHRs: 64, HubLatency: 4}
}

// Corona returns the flagship XBar/OCM configuration.
func Corona() System { return Default(XBar, OCM) }

// Combos returns the five simulated configurations in the paper's
// baseline-first order (Figure 8's legend order).
func Combos() []System {
	return []System{
		Default(LMesh, ECM),
		Default(HMesh, ECM),
		Default(LMesh, OCM),
		Default(HMesh, OCM),
		Default(XBar, OCM),
	}
}

// MeshConfig returns the mesh parameters for a mesh-based System; it panics
// for the crossbar.
func (s System) MeshConfig() mesh.Config {
	if s.Net != HMesh && s.Net != LMesh {
		panic("config: " + s.Name() + " has no mesh")
	}
	if s.MeshOverride != nil {
		return *s.MeshOverride
	}
	if s.Net == HMesh {
		return mesh.HMeshConfig()
	}
	return mesh.LMeshConfig()
}

// XBarConfig returns the crossbar parameters; it panics for meshes.
func (s System) XBarConfig() xbar.Config {
	if s.Net != XBar {
		panic("config: " + s.Name() + " has no crossbar")
	}
	if s.XBarOverride != nil {
		return *s.XBarOverride
	}
	return xbar.DefaultConfig()
}

// MemConfig returns the per-controller memory configuration.
func (s System) MemConfig() memory.Config {
	if s.MemOverride != nil {
		return *s.MemOverride
	}
	if s.Mem == OCM {
		return memory.OCMConfig()
	}
	return memory.ECMConfig()
}

// Table1 reproduces the paper's resource configuration table.
func Table1() *stats.Table {
	t := stats.NewTable("Resource", "Value")
	rows := [][2]string{
		{"Number of clusters", "64"},
		{"Per-Cluster:", ""},
		{"  L2 cache size/assoc", "4 MB/16-way"},
		{"  L2 cache line size", "64 B"},
		{"  L2 coherence", "MOESI"},
		{"  Memory controllers", "1"},
		{"  Cores", "4"},
		{"Per-Core:", ""},
		{"  L1 ICache size/assoc", "16 KB/4-way"},
		{"  L1 DCache size/assoc", "32 KB/4-way"},
		{"  L1 I & D cache line size", "64 B"},
		{"  Frequency", "5 GHz"},
		{"  Threads", "4"},
		{"  Issue policy", "In-order"},
		{"  Issue width", "2"},
		{"  64 b floating point SIMD width", "4"},
		{"  Fused floating point operations", "Multiply-Add"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t
}

// Table3 reproduces the benchmark setup table.
func Table3() *stats.Table {
	t := stats.NewTable("Benchmark", "Data Set (Default)", "Network Requests")
	for _, s := range traffic.Synthetic() {
		t.AddRow(s.Name, "-", fmt.Sprintf("%d M", s.DefaultRequests/1_000_000))
	}
	for _, a := range splash.Apps() {
		t.AddRow(a.Spec.Name,
			fmt.Sprintf("%s (%s)", a.Dataset, a.DefaultDataset),
			formatMillions(a.Spec.DefaultRequests))
	}
	return t
}

func formatMillions(n int) string {
	return fmt.Sprintf("%.1f M", float64(n)/1e6)
}

// Table4 reproduces the optical-vs-electrical memory interconnect table.
func Table4() *stats.Table {
	ocm, ecm := memory.OCMConfig(), memory.ECMConfig()
	t := stats.NewTable("Resource", "OCM", "ECM")
	t.AddRow("Memory controllers", "64", "64")
	t.AddRow("External connectivity", "256 fibers", "1536 pins")
	t.AddRow("Channel width", "128 b half duplex", "12 b full duplex")
	t.AddRow("Channel data rate", "10 Gb/s", "10 Gb/s")
	t.AddRow("Memory bandwidth",
		fmt.Sprintf("%.2f TB/s", ocm.AggregateBytesPerSec(64)/1e12),
		fmt.Sprintf("%.2f TB/s", ecm.AggregateBytesPerSec(64)/1e12))
	t.AddRow("Memory latency", "20 ns", "20 ns")
	return t
}
