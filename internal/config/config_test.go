package config

import (
	"strings"
	"testing"
)

func TestFiveCombos(t *testing.T) {
	combos := Combos()
	if len(combos) != 5 {
		t.Fatalf("combos = %d, want 5", len(combos))
	}
	names := make([]string, len(combos))
	for i, c := range combos {
		names[i] = c.Name()
	}
	want := []string{"LMesh/ECM", "HMesh/ECM", "LMesh/OCM", "HMesh/OCM", "XBar/OCM"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("combos = %v, want %v", names, want)
		}
	}
	if names[0] != "LMesh/ECM" {
		t.Error("the baseline (speedup = 1) must come first")
	}
}

func TestCoronaIsXBarOCM(t *testing.T) {
	c := Corona()
	if c.Name() != "XBar/OCM" {
		t.Fatalf("Corona() = %s", c.Name())
	}
	if c.Clusters != 64 || c.MSHRs <= 0 || c.HubLatency <= 0 {
		t.Errorf("Corona defaults incomplete: %+v", c)
	}
}

func TestSubConfigAccessors(t *testing.T) {
	if Default(HMesh, ECM).Fabric != "hmesh" {
		t.Error("HMesh fabric name wrong")
	}
	if Default(LMesh, ECM).Fabric != "lmesh" {
		t.Error("LMesh fabric name wrong")
	}
	if Corona().Fabric != "xbar" {
		t.Error("XBar fabric name wrong")
	}
	if Default(HMesh, OCM).MemConfig().Name != "ocm" {
		t.Error("OCM config wrong")
	}
	if Default(HMesh, ECM).MemConfig().Name != "ecm" {
		t.Error("ECM config wrong")
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, c := range Combos() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
	if err := Custom("", "swmr", OCM, nil).Validate(); err != nil {
		t.Errorf("SWMR/OCM: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	if err := Custom("", "warp-bus", OCM, nil).Validate(); err == nil ||
		!strings.Contains(err.Error(), "warp-bus") {
		t.Errorf("unknown fabric not rejected: %v", err)
	}
	typo := Custom("", "xbar", OCM, map[string]int{"recv_bufer": 4})
	if err := typo.Validate(); err == nil || !strings.Contains(err.Error(), "recv_bufer") {
		t.Errorf("param typo not rejected: %v", err)
	}
	zero := Corona()
	zero.Clusters = 0
	if err := zero.Validate(); err == nil {
		t.Error("zero clusters not rejected")
	}
}

func TestCustomLabelAndName(t *testing.T) {
	c := Custom("BigBuf", "xbar", OCM, map[string]int{"recv_buffer": 64})
	if c.Name() != "BigBuf" {
		t.Errorf("label not honoured: %s", c.Name())
	}
	if Custom("", "swmr", OCM, nil).Name() != "SWMR/OCM" {
		t.Errorf("derived name wrong: %s", Custom("", "swmr", OCM, nil).Name())
	}
	// Unregistered fabrics degrade to the raw name, never panic.
	if got := Custom("", "mystery", ECM, nil).Name(); got != "mystery/ECM" {
		t.Errorf("unregistered fabric name = %s", got)
	}
}

func TestParseKindsRoundTrip(t *testing.T) {
	for _, n := range []NetworkKind{XBar, HMesh, LMesh} {
		got, err := ParseNetworkKind(n.String())
		if err != nil || got != n {
			t.Errorf("ParseNetworkKind(%s) = %v, %v", n, got, err)
		}
	}
	for _, m := range []MemoryKind{OCM, ECM} {
		got, err := ParseMemoryKind(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMemoryKind(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseNetworkKind("Xbar"); err == nil ||
		!strings.Contains(err.Error(), "XBar") {
		t.Errorf("case typo must fail with the valid names listed: %v", err)
	}
	if _, err := ParseMemoryKind("ocm"); err == nil {
		t.Error("lower-case memory name must fail (String round-trip only)")
	}
}

func TestParseName(t *testing.T) {
	for _, want := range []string{"XBar/OCM", "LMesh/ECM", "SWMR/OCM"} {
		c, err := ParseName(want)
		if err != nil {
			t.Fatalf("ParseName(%s): %v", want, err)
		}
		if c.Name() != want {
			t.Errorf("ParseName(%s).Name() = %s", want, c.Name())
		}
		if err := c.Validate(); err != nil {
			t.Errorf("ParseName(%s) invalid: %v", want, err)
		}
	}
	for _, bad := range []string{"XBar", "XBar/OCM/extra", "Ring/OCM", "XBar/DDR"} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%s) accepted", bad)
		}
	}
}

func TestTable1Contents(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"64", "MOESI", "4 MB/16-way", "5 GHz", "In-order", "Multiply-Add"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable3Contents(t *testing.T) {
	s := Table3().String()
	for _, want := range []string{"Uniform", "Hot Spot", "Barnes", "Water-Sp", "tk29.O", "240.0 M"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestTable4Contents(t *testing.T) {
	s := Table4().String()
	for _, want := range []string{"256 fibers", "1536 pins", "10.24 TB/s", "0.96 TB/s", "20 ns", "128 b half duplex"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestFabricCatalog(t *testing.T) {
	s := FabricCatalog().String()
	for _, want := range []string{"xbar", "hmesh", "lmesh", "swmr", "20.48", "1.28", "0.64"} {
		if !strings.Contains(s, want) {
			t.Errorf("fabric catalog missing %q:\n%s", want, s)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if XBar.String() != "XBar" || HMesh.String() != "HMesh" || LMesh.String() != "LMesh" {
		t.Error("network names wrong")
	}
	if OCM.String() != "OCM" || ECM.String() != "ECM" {
		t.Error("memory names wrong")
	}
	if !strings.HasPrefix(NetworkKind(9).String(), "net(") || !strings.HasPrefix(MemoryKind(9).String(), "mem(") {
		t.Error("unknown kinds should format numerically")
	}
}
