package config

import (
	"strings"
	"testing"
)

func TestFiveCombos(t *testing.T) {
	combos := Combos()
	if len(combos) != 5 {
		t.Fatalf("combos = %d, want 5", len(combos))
	}
	names := make([]string, len(combos))
	for i, c := range combos {
		names[i] = c.Name()
	}
	want := []string{"LMesh/ECM", "HMesh/ECM", "LMesh/OCM", "HMesh/OCM", "XBar/OCM"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("combos = %v, want %v", names, want)
		}
	}
	if names[0] != "LMesh/ECM" {
		t.Error("the baseline (speedup = 1) must come first")
	}
}

func TestCoronaIsXBarOCM(t *testing.T) {
	c := Corona()
	if c.Name() != "XBar/OCM" {
		t.Fatalf("Corona() = %s", c.Name())
	}
	if c.Clusters != 64 || c.MSHRs <= 0 || c.HubLatency <= 0 {
		t.Errorf("Corona defaults incomplete: %+v", c)
	}
}

func TestSubConfigAccessors(t *testing.T) {
	if Default(HMesh, ECM).MeshConfig().Name != "hmesh" {
		t.Error("HMesh config wrong")
	}
	if Default(LMesh, ECM).MeshConfig().Name != "lmesh" {
		t.Error("LMesh config wrong")
	}
	if Corona().XBarConfig().Clusters != 64 {
		t.Error("XBar config wrong")
	}
	if Default(HMesh, OCM).MemConfig().Name != "ocm" {
		t.Error("OCM config wrong")
	}
	if Default(HMesh, ECM).MemConfig().Name != "ecm" {
		t.Error("ECM config wrong")
	}
}

func TestMeshConfigPanicsForXBar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MeshConfig on XBar did not panic")
		}
	}()
	Corona().MeshConfig()
}

func TestXBarConfigPanicsForMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("XBarConfig on mesh did not panic")
		}
	}()
	Default(HMesh, OCM).XBarConfig()
}

func TestTable1Contents(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"64", "MOESI", "4 MB/16-way", "5 GHz", "In-order", "Multiply-Add"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable3Contents(t *testing.T) {
	s := Table3().String()
	for _, want := range []string{"Uniform", "Hot Spot", "Barnes", "Water-Sp", "tk29.O", "240.0 M"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestTable4Contents(t *testing.T) {
	s := Table4().String()
	for _, want := range []string{"256 fibers", "1536 pins", "10.24 TB/s", "0.96 TB/s", "20 ns", "128 b half duplex"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if XBar.String() != "XBar" || HMesh.String() != "HMesh" || LMesh.String() != "LMesh" {
		t.Error("network names wrong")
	}
	if OCM.String() != "OCM" || ECM.String() != "ECM" {
		t.Error("memory names wrong")
	}
	if !strings.HasPrefix(NetworkKind(9).String(), "net(") || !strings.HasPrefix(MemoryKind(9).String(), "mem(") {
		t.Error("unknown kinds should format numerically")
	}
}
