package arbiter

import (
	"testing"
	"testing/quick"

	"corona/internal/sim"
)

func newRing(t *testing.T) (*sim.Kernel, *TokenRing) {
	t.Helper()
	k := sim.NewKernel()
	return k, New(k, 64, 64, 8)
}

func TestRevolutionCycles(t *testing.T) {
	_, tr := newRing(t)
	if tr.RevolutionCycles() != 8 {
		t.Fatalf("revolution = %d cycles, want 8", tr.RevolutionCycles())
	}
}

func TestUncontestedGrantWithinRevolution(t *testing.T) {
	// The paper: "a cluster may wait as long as 8 processor clock cycles for
	// an uncontested token".
	for _, cluster := range []int{0, 1, 7, 8, 32, 63} {
		k, tr := newRing(t)
		var grantedAt sim.Time
		granted := false
		tr.Request(5, cluster, func() { granted = true; grantedAt = k.Now() })
		k.Run()
		if !granted {
			t.Fatalf("cluster %d never granted", cluster)
		}
		if grantedAt > 8 {
			t.Errorf("cluster %d waited %d cycles for uncontested token, want <= 8", cluster, grantedAt)
		}
	}
}

func TestExclusiveGrant(t *testing.T) {
	k, tr := newRing(t)
	holders := 0
	tr.Request(3, 10, func() { holders++ })
	tr.Request(3, 20, func() { holders++ })
	k.Run()
	if holders != 1 {
		t.Fatalf("%d concurrent holders of one channel, want 1 (second must wait for release)", holders)
	}
	if tr.PendingCount(3) != 1 {
		t.Fatalf("pending = %d, want 1", tr.PendingCount(3))
	}
}

func TestReleaseGrantsNext(t *testing.T) {
	k, tr := newRing(t)
	var order []int
	tr.Request(0, 5, func() { order = append(order, 5) })
	tr.Request(0, 6, func() { order = append(order, 6) })
	k.Run()
	tr.Release(0, order[0])
	k.Run()
	if len(order) != 2 || order[0] != 5 || order[1] != 6 {
		t.Fatalf("grant order = %v, want [5 6]", order)
	}
}

func TestRingOrderGrant(t *testing.T) {
	// The free token departs the releaser's position, so the nearest
	// downstream requester wins regardless of request arrival order.
	k, tr := newRing(t)
	got := -1
	tr.Request(0, 10, func() { got = 10 })
	k.Run()
	if got != 10 {
		t.Fatal("setup grant failed")
	}
	// While held, two clusters queue: 40 requested first, but 12 is closer
	// downstream of the releasing cluster 10.
	tr.Request(0, 40, func() { got = 40 })
	tr.Request(0, 12, func() { got = 12 })
	tr.Release(0, 10)
	k.Run()
	if got != 12 {
		t.Fatalf("downstream-nearest requester lost: granted %d, want 12", got)
	}
}

func TestSelfReacquireExclusion(t *testing.T) {
	// A releaser re-requesting immediately must not beat a cluster that the
	// token reaches within the same revolution.
	k, tr := newRing(t)
	got := -1
	tr.Request(0, 10, func() { got = 10 })
	k.Run()
	tr.Request(0, 30, func() { got = 30 }) // 20 positions downstream: ~3 cycles
	tr.Release(0, 10)
	tr.Request(0, 10, func() { got = 10 }) // self re-request, distance 0 but excluded
	k.Run()
	if got != 30 {
		t.Fatalf("self-reacquire exclusion violated: granted %d, want 30", got)
	}
}

func TestSelfReacquireAfterRevolution(t *testing.T) {
	// With no other requesters the releaser gets its token back after one
	// full revolution.
	k, tr := newRing(t)
	tr.Request(0, 10, func() {})
	k.Run()
	releaseTime := k.Now()
	tr.Release(0, 10)
	var regrant sim.Time
	tr.Request(0, 10, func() { regrant = k.Now() })
	k.Run()
	if regrant != releaseTime+tr.RevolutionCycles() {
		t.Fatalf("self re-grant at %d, want %d (release + one revolution)",
			regrant, releaseTime+tr.RevolutionCycles())
	}
}

func TestRoundRobinFairnessUnderContention(t *testing.T) {
	// All 64 clusters hammer channel 0. Over 64 grants every cluster must be
	// served exactly once (round-robin ring order), and grant-to-grant gaps
	// stay small because the token moves directly between neighbours.
	k, tr := newRing(t)
	served := map[int]int{}
	var current int
	var grants int
	var request func(cluster int)
	request = func(cluster int) {
		tr.Request(0, cluster, func() {
			served[cluster]++
			grants++
			current = cluster
			// Hold for 2 cycles (a message), then release and re-request.
			k.Schedule(2, func() {
				tr.Release(0, current)
			})
		})
	}
	for cl := 0; cl < 64; cl++ {
		request(cl)
	}
	// Run until 64 grants have occurred.
	for grants < 64 && k.Step() {
	}
	for cl := 0; cl < 64; cl++ {
		if served[cl] != 1 {
			t.Fatalf("cluster %d served %d times in first 64 grants, want exactly 1 (fairness)", cl, served[cl])
		}
	}
}

func TestHighContentionUtilization(t *testing.T) {
	// "When contention is high, token transfer time is low and channel
	// utilization is high": with every cluster always ready and 8-cycle
	// holds, transfer overhead should be ~1 cycle per hand-off.
	k, tr := newRing(t)
	const holds = 200
	const holdCycles = 8
	var grants int
	var rerequest func(cluster int)
	rerequest = func(cluster int) {
		tr.Request(0, cluster, func() {
			grants++
			k.Schedule(holdCycles, func() {
				tr.Release(0, cluster)
				if grants < holds {
					rerequest(cluster)
				}
			})
		})
	}
	for cl := 0; cl < 64; cl++ {
		rerequest(cl)
	}
	for grants < holds && k.Step() {
	}
	elapsed := float64(k.Now())
	busy := float64(grants * holdCycles)
	util := busy / elapsed
	if util < 0.8 {
		t.Fatalf("channel utilization %.2f under full contention, want >= 0.8", util)
	}
}

func TestIndependentChannels(t *testing.T) {
	k, tr := newRing(t)
	grants := 0
	for ch := 0; ch < 64; ch++ {
		tr.Request(ch, (ch+1)%64, func() { grants++ })
	}
	k.Run()
	if grants != 64 {
		t.Fatalf("grants = %d, want 64 (channels are independent)", grants)
	}
}

func TestRequestPanicsOnDuplicate(t *testing.T) {
	k, tr := newRing(t)
	tr.Request(0, 1, func() {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate request did not panic")
		}
	}()
	tr.Request(0, 1, func() {})
	_ = k
}

func TestReleasePanicsOnNonHolder(t *testing.T) {
	k, tr := newRing(t)
	tr.Request(0, 1, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("release by non-holder did not panic")
		}
	}()
	tr.Release(0, 2)
}

// Property: for any interleaving of requesters and hold times, every request
// is eventually granted exactly once and the channel never has two holders.
func TestTokenRingSafetyLiveness(t *testing.T) {
	f := func(seed uint64, nreqRaw uint8) bool {
		rng := sim.NewRand(seed)
		nreq := int(nreqRaw%40) + 1
		k := sim.NewKernel()
		tr := New(k, 64, 64, 8)
		grantCount := make(map[int]int)
		holding := false
		ok := true
		clusters := make([]int, 64)
		rng.Perm(clusters)
		for i := 0; i < nreq; i++ {
			cl := clusters[i%64]
			if _, dup := grantCount[cl]; dup {
				continue
			}
			grantCount[cl] = 0
			hold := sim.Time(rng.Intn(10) + 1)
			delay := sim.Time(rng.Intn(50))
			k.Schedule(delay, func() {
				tr.Request(7, cl, func() {
					if holding {
						ok = false
					}
					holding = true
					grantCount[cl]++
					k.Schedule(hold, func() {
						holding = false
						tr.Release(7, cl)
					})
				})
			})
		}
		if k.RunLimit(1_000_000) >= 1_000_000 {
			return false // livelock
		}
		for cl, n := range grantCount {
			if n != 1 {
				t.Logf("cluster %d granted %d times", cl, n)
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
