// Package arbiter implements Corona's distributed, all-optical, token-based
// channel arbitration (Section 3.2.3 and Figure 5 of the paper).
//
// One token per channel circulates an arbitration waveguide as a short pulse
// in a dedicated wavelength. A cluster that wants a channel diverts
// (completely removes) the channel's token as it passes, which constitutes an
// exclusive grant; when the cluster finishes transmitting it re-injects the
// token at its own position, so the token travels in parallel with the tail
// of the message. Detectors are positioned so a cluster cannot re-acquire a
// token it just injected until the token has completed one full revolution,
// which makes the discipline round-robin fair under contention.
//
// Timing: light makes a full revolution of the 64-cluster ring in 8 clocks
// (2 cm of waveguide per 5 GHz clock), i.e. the token moves 8 cluster
// positions per cycle. An uncontested acquisition therefore waits at most
// 8 cycles, exactly the figure the paper quotes.
package arbiter

import (
	"fmt"

	"corona/internal/sim"
)

// GrantFunc is invoked when a cluster's request for a channel is granted.
type GrantFunc func()

// GrantHandler is the typed counterpart of GrantFunc: components on the
// kernel's zero-allocation fast path implement it (usually on the component
// struct itself) and request with RequestEvent, avoiding a closure per
// arbitration.
type GrantHandler interface {
	// Granted reports that cluster now holds channel's token.
	Granted(channel, cluster int)
}

type waiter struct {
	cluster int
	grant   GrantFunc
	h       GrantHandler
}

type tokenChannel struct {
	// holder is the cluster currently owning the token, or -1 if the token
	// is circulating.
	holder int
	// freePos/freeAt give the token's position when it was last released:
	// at time freeAt it was at cluster position freePos, moving in cyclically
	// increasing cluster order.
	freePos int
	freeAt  sim.Time
	// lastReleaser cannot re-acquire before lastRelease + one revolution.
	lastReleaser int
	lastRelease  sim.Time
	// pending requesters, in arrival order (grant order is ring order, not
	// arrival order; arrival order only breaks exact ties deterministically).
	pending []waiter
	// gen invalidates in-flight grant events after a re-commit.
	gen uint64
	// committed is true when a grant event is scheduled; commitCluster and
	// commitWait describe that commitment for the typed grant event.
	committed     bool
	commitCluster int
	commitWait    sim.Time
}

// TokenRing arbitrates nchan channels among n clusters.
type TokenRing struct {
	k     *sim.Kernel
	n     int // clusters (ring positions)
	speed int // cluster positions the token advances per cycle
	chans []tokenChannel

	// Grants counts total grants, for utilization statistics.
	Grants uint64
	// WaitCycles accumulates token acquisition wait, for Figure 10's queueing
	// component.
	WaitCycles uint64
}

// New returns a token ring arbitrating nchan channels among n clusters on
// kernel k. speed is the token's travel rate in cluster positions per cycle;
// Corona's is 8. The crossbar uses nchan == n (one channel per destination);
// the broadcast bus uses nchan == 1.
func New(k *sim.Kernel, n, nchan, speed int) *TokenRing {
	if n <= 0 || nchan <= 0 || speed <= 0 {
		panic(fmt.Sprintf("arbiter: invalid n=%d nchan=%d speed=%d", n, nchan, speed))
	}
	if nchan > 1<<16 {
		// grantEvent carries the channel index in the data word's low 16 bits.
		panic(fmt.Sprintf("arbiter: %d channels exceeds the %d-channel event encoding limit",
			nchan, 1<<16))
	}
	t := &TokenRing{k: k, n: n, speed: speed, chans: make([]tokenChannel, nchan)}
	for i := range t.chans {
		t.chans[i] = tokenChannel{
			holder:       -1,
			freePos:      i % n, // each token starts at its home cluster
			freeAt:       0,
			lastReleaser: -1,
		}
	}
	return t
}

// Channels returns the number of arbitrated channels.
func (t *TokenRing) Channels() int { return len(t.chans) }

// Quiescent returns nil when every channel is in its construction state:
// token free at its home position, never moved, no pending requesters, no
// committed grant. It is the arbitration leg of the network snapshot
// contract (docs/DETERMINISM.md).
func (t *TokenRing) Quiescent() error {
	for i := range t.chans {
		c := &t.chans[i]
		switch {
		case c.holder >= 0:
			return fmt.Errorf("arbiter: channel %d token held by cluster %d", i, c.holder)
		case len(c.pending) > 0:
			return fmt.Errorf("arbiter: channel %d has %d pending requesters", i, len(c.pending))
		case c.committed:
			return fmt.Errorf("arbiter: channel %d has a committed grant in flight", i)
		case c.freePos != i%t.n || c.freeAt != 0 || c.lastReleaser != -1:
			return fmt.Errorf("arbiter: channel %d token has circulated (pos %d, freed at %d)", i, c.freePos, c.freeAt)
		}
	}
	return nil
}

// Reset returns every channel to its construction state and zeroes the
// counters, keeping grown pending-queue capacity.
func (t *TokenRing) Reset() {
	for i := range t.chans {
		c := &t.chans[i]
		clear(c.pending)
		*c = tokenChannel{
			holder:       -1,
			freePos:      i % t.n,
			lastReleaser: -1,
			pending:      c.pending[:0],
		}
	}
	t.Grants, t.WaitCycles = 0, 0
}

// Clusters returns the ring size.
func (t *TokenRing) Clusters() int { return t.n }

// RevolutionCycles returns the cycles for one full token revolution.
func (t *TokenRing) RevolutionCycles() sim.Time {
	return sim.Time((t.n + t.speed - 1) / t.speed)
}

// Holder returns the cluster holding channel's token, or -1 if free.
func (t *TokenRing) Holder(channel int) int { return t.chans[channel].holder }

// PendingCount returns the number of outstanding requests for channel.
func (t *TokenRing) PendingCount(channel int) int { return len(t.chans[channel].pending) }

// posAt returns the token's ring position at time now (only valid while the
// token is free).
func (c *tokenChannel) posAt(now sim.Time, n, speed int) int {
	elapsed := uint64(now - c.freeAt)
	return int((uint64(c.freePos) + elapsed*uint64(speed)) % uint64(n))
}

// Request asks for channel on behalf of cluster; grant runs when the token is
// diverted. Multiple outstanding requests from distinct clusters are fine; a
// cluster must not request a channel it already holds or has pending.
func (t *TokenRing) Request(channel, cluster int, grant GrantFunc) {
	t.request(channel, waiter{cluster: cluster, grant: grant})
}

// RequestEvent is Request on the typed fast path: h.Granted(channel, cluster)
// runs when the token is diverted, with no closure allocated.
func (t *TokenRing) RequestEvent(channel, cluster int, h GrantHandler) {
	t.request(channel, waiter{cluster: cluster, h: h})
}

func (t *TokenRing) request(channel int, w waiter) {
	cluster := w.cluster
	if channel < 0 || channel >= len(t.chans) || cluster < 0 || cluster >= t.n {
		panic(fmt.Sprintf("arbiter: request channel=%d cluster=%d out of range", channel, cluster))
	}
	c := &t.chans[channel]
	if c.holder == cluster {
		panic(fmt.Sprintf("arbiter: cluster %d re-requesting held channel %d", cluster, channel))
	}
	for _, p := range c.pending {
		if p.cluster == cluster {
			panic(fmt.Sprintf("arbiter: cluster %d duplicate request for channel %d", cluster, channel))
		}
	}
	c.pending = append(c.pending, w)
	if c.holder < 0 {
		t.commit(channel)
	}
}

// Release returns channel's token to the ring; cluster must be the holder.
// The token is re-injected at the releasing cluster's position.
func (t *TokenRing) Release(channel, cluster int) {
	c := &t.chans[channel]
	if c.holder != cluster {
		panic(fmt.Sprintf("arbiter: cluster %d releasing channel %d held by %d", cluster, channel, c.holder))
	}
	c.holder = -1
	c.freePos = cluster
	c.freeAt = t.k.Now()
	c.lastReleaser = cluster
	c.lastRelease = t.k.Now()
	c.gen++ // invalidate any stale events
	c.committed = false
	if len(c.pending) > 0 {
		t.commit(channel)
	}
}

// commit (re)schedules the grant for the pending requester the free token
// reaches first. Called whenever the pending set changes while the token is
// free. A later Request can pre-empt an in-flight commitment only if the new
// requester intercepts the token earlier — exactly what the optics do.
func (t *TokenRing) commit(channel int) {
	c := &t.chans[channel]
	now := t.k.Now()
	pos := c.posAt(now, t.n, t.speed)

	best := -1
	var bestETA sim.Time
	for i, w := range c.pending {
		dist := (w.cluster - pos) % t.n
		if dist < 0 {
			dist += t.n
		}
		// Token travel is floored, not rounded up: a hand-off to a nearby
		// cluster takes a fraction of a cycle in the optics (the token moves
		// `speed` positions per cycle), and rounding it up would halve the
		// achievable channel utilization under full contention — contradicting
		// the paper's "token transfer time is low and channel utilization is
		// high". Sub-cycle arrivals grant within the current cycle.
		eta := now + sim.Time(dist/t.speed)
		// Self-reacquire exclusion: the last releaser's detector cannot divert
		// its own token until one revolution after injection.
		if w.cluster == c.lastReleaser {
			min := c.lastRelease + t.RevolutionCycles()
			if eta < min {
				eta = min
			}
		}
		if best < 0 || eta < bestETA {
			best = i
			bestETA = eta
		}
	}
	if best < 0 {
		return
	}
	c.gen++
	c.committed = true
	c.commitCluster = c.pending[best].cluster
	c.commitWait = bestETA - now
	// The in-flight grant is a typed kernel event: the channel index and the
	// commit generation pack into the data word, and the commitment details
	// live on the channel, so no closure is allocated per arbitration.
	t.k.AtEvent(bestETA, (*grantEvent)(t), uint64(channel)|(c.gen&genMask)<<genShift)
}

// genMask truncates the commit generation to the data word's upper bits; a
// stale event could only alias a live commitment after 2^48 re-commits on one
// channel, far beyond any simulation's event budget.
const (
	genShift = 16
	genMask  = (1 << (64 - genShift)) - 1
)

// grantEvent is TokenRing's typed handler for committed grants.
type grantEvent TokenRing

// OnEvent diverts the token to the committed requester, unless a re-commit
// or a release race superseded this event.
func (g *grantEvent) OnEvent(_ sim.Time, data uint64) {
	t := (*TokenRing)(g)
	channel := int(data & (1<<genShift - 1))
	c := &t.chans[channel]
	if c.gen&genMask != data>>genShift || c.holder >= 0 {
		return // superseded by a re-commit or a release race
	}
	// Divert the token: exclusive grant.
	c.holder = c.commitCluster
	c.committed = false
	// Remove the waiter.
	var w waiter
	for i := range c.pending {
		if c.pending[i].cluster == c.commitCluster {
			w = c.pending[i]
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	t.Grants++
	t.WaitCycles += uint64(c.commitWait)
	if w.h != nil {
		w.h.Granted(channel, c.holder)
	} else {
		w.grant()
	}
}
