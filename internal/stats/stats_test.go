package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Value after Reset = %d, want 0", c.Value())
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 6} {
		s.Observe(v)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 4 {
		t.Errorf("Mean = %v, want 4", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Errorf("Min/Max = %v/%v, want 2/6", s.Min(), s.Max())
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestHistogramExactPercentiles(t *testing.T) {
	h := NewHistogram(1000)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{50, 50}, {90, 90}, {99, 99}, {100, 100}, {1, 1},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHistogramPercentileCacheInvalidation(t *testing.T) {
	// Percentile caches the sorted view; interleaved Observe calls must
	// invalidate it so later queries see the new observations.
	h := NewHistogram(1000)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.Percentile(100); got != 10 {
		t.Fatalf("P100 = %v, want 10", got)
	}
	h.Observe(1000)
	if got := h.Percentile(100); got != 1000 {
		t.Errorf("P100 after new max = %v, want 1000 (stale sorted cache?)", got)
	}
	h.Observe(0.5)
	if got := h.Percentile(1); got != 0.5 {
		t.Errorf("P1 after new min = %v, want 0.5 (stale sorted cache?)", got)
	}
}

func TestHistogramBucketEstimate(t *testing.T) {
	h := NewHistogram(10) // force overflow into bucket estimation
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Percentile(50)
	// Bucket estimate should land within a factor-of-2 band of the true 500.
	if p50 < 250 || p50 > 1100 {
		t.Errorf("bucket-estimated P50 = %v, want within [250, 1100]", p50)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 8, 0, -1}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean ignoring non-positives = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestSpeedups(t *testing.T) {
	s := Speedups(100, []float64{100, 50, 25, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("speedup[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, float64(v)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHistogram(1 << 16)
		for _, v := range raw {
			h.Observe(float64(v))
		}
		prev := -1.0
		for p := 5.0; p <= 100; p += 5 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Benchmark", "XBar/OCM")
	tab.AddRow("FFT", "8.10")
	tab.AddRow("LongBenchmarkName", "1.00")
	s := tab.String()
	if !strings.Contains(s, "FFT") || !strings.Contains(s, "8.10") {
		t.Fatalf("table missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width mismatch:\n%s", s)
	}
}

func TestFormatTBs(t *testing.T) {
	if got := FormatTBs(2.5e12); got != "2.50" {
		t.Errorf("FormatTBs = %q, want 2.50", got)
	}
}

func TestHistogramOverflowTail(t *testing.T) {
	h := NewHistogram(4)
	// Push the raw reservoir past its cap so Percentile uses buckets, with
	// values beyond the last dense bucket landing in the overflow tail.
	huge := math.Exp2(80)
	for i := 0; i < 8; i++ {
		h.Observe(huge)
	}
	if h.overflow != 8 {
		t.Fatalf("overflow tail = %d, want 8", h.overflow)
	}
	if got := h.Percentile(99); got != huge {
		t.Errorf("overflow-tail percentile = %v, want the observed max %v", got, huge)
	}
	// Mixed stream: dense buckets still resolve percentiles below the tail.
	h2 := NewHistogram(2)
	for i := 0; i < 99; i++ {
		h2.Observe(100)
	}
	h2.Observe(huge)
	p50 := h2.Percentile(50)
	if p50 < 63 || p50 > 255 {
		t.Errorf("P50 = %v, want within the 100-value bucket's range", p50)
	}
}

// mapHistogram reimplements the pre-dense bucket layout (map[int]uint64,
// one hash per Observe) as the before/after baseline for
// BenchmarkHistogramObserve.
type mapHistogram struct {
	Sample
	buckets map[int]uint64
}

func (h *mapHistogram) Observe(v float64) {
	h.Sample.Observe(v)
	h.buckets[bucketOf(v)]++
}

// BenchmarkHistogramObserve measures the hot Observe path (every retired
// request of every sweep cell funnels through it) on the dense-slice layout
// versus the map layout it replaced.
func BenchmarkHistogramObserve(b *testing.B) {
	values := make([]float64, 1024)
	for i := range values {
		values[i] = float64((i*2654435761)%100000) / 7
	}
	b.Run("dense", func(b *testing.B) {
		h := NewHistogram(1) // exercise the bucket path, not the reservoir
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(values[i&1023])
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		h := &mapHistogram{buckets: make(map[int]uint64)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(values[i&1023])
		}
	})
}
