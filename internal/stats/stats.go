// Package stats provides the measurement primitives used by the simulation:
// counters, latency histograms, rates, and the aggregate statistics
// (geometric means, normalized speedups) reported in the paper's evaluation.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Counter is a monotonically increasing event/byte counter.
type Counter struct {
	n uint64
}

// Add increments the counter by v.
func (c *Counter) Add(v uint64) { c.n += v }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Sample accumulates a stream of values and reports mean/min/max.
type Sample struct {
	count uint64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Observe adds one value to the sample.
func (s *Sample) Observe(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.sumSq += v * v
}

// Count returns the number of observations.
func (s *Sample) Count() uint64 { return s.count }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	if s.count == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// histBuckets is the dense log-bucket count: floor(log2(v+1)) for every
// latency a simulation can produce fits comfortably below 64 (bucket 63
// starts near 9e18 — beyond any cycle count the kernel can represent), so
// the bucket table is a fixed array and anything past it lands in a single
// overflow tail.
const histBuckets = 64

// Histogram is a log-scaled latency histogram with exact percentile support
// for moderate observation counts (it additionally retains raw values up to a
// cap, beyond which percentiles are estimated from buckets). The log-bucket
// index is small and bounded, so the buckets are a dense fixed array indexed
// directly — Observe is a couple of array stores, with no map hashing or
// bucket allocation — plus an overflow tail for the (practically
// unreachable) values beyond the last bucket; BenchmarkHistogramObserve
// measures the win over the map-backed layout this replaced.
type Histogram struct {
	Sample
	raw      []float64
	rawCap   int
	buckets  [histBuckets]uint64 // bucket index = floor(log2(v+1))
	overflow uint64              // observations past the last bucket

	// scratch holds a reorderable copy of raw for percentile selection: a
	// query copies raw in (once per batch of observations — Observe marks it
	// dirty) and then partially orders it in place via quickselect, so the
	// per-cell P99 of a sweep costs O(n) instead of a full O(n log n) sort.
	scratch []float64
	dirty   bool
}

// NewHistogram returns a histogram retaining up to rawCap exact values
// (rawCap <= 0 selects a default of 1<<16).
func NewHistogram(rawCap int) *Histogram {
	if rawCap <= 0 {
		rawCap = 1 << 16
	}
	return &Histogram{rawCap: rawCap}
}

// Observe adds one value.
func (h *Histogram) Observe(v float64) {
	h.Sample.Observe(v)
	if len(h.raw) < h.rawCap {
		h.raw = append(h.raw, v)
		h.dirty = true
	}
	if b := bucketOf(v); b < histBuckets {
		h.buckets[b]++
	} else {
		h.overflow++
	}
}

func bucketOf(v float64) int {
	if v < 0 {
		v = 0
	}
	// floor(log2(y)) for y >= 1 is y's unbiased IEEE-754 exponent — a bit
	// shift instead of a Log2 call, which shows up in sweep profiles because
	// Observe runs once per completed transaction.
	return int(math.Float64bits(v+1)>>52) - 1023
}

// Reset returns the histogram to its just-constructed state (same rawCap),
// keeping grown reservoir capacity.
func (h *Histogram) Reset() {
	h.Sample = Sample{}
	h.raw = h.raw[:0]
	h.buckets = [histBuckets]uint64{}
	h.overflow = 0
	h.scratch = h.scratch[:0]
	h.dirty = false
}

// CopyFrom overwrites h with an exact copy of src's observations (and its
// rawCap), reusing h's storage. The selection scratch is not copied — the
// copy refills it lazily on its first percentile query, which yields
// identical results.
func (h *Histogram) CopyFrom(src *Histogram) {
	h.Sample = src.Sample
	h.rawCap = src.rawCap
	h.raw = append(h.raw[:0], src.raw...)
	h.buckets = src.buckets
	h.overflow = src.overflow
	h.scratch = h.scratch[:0]
	h.dirty = len(h.raw) > 0
}

// Percentile returns the p-th percentile (0 <= p <= 100). When the raw
// reservoir holds every observation the result is exact; otherwise it falls
// back to a bucket-midpoint estimate.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if uint64(len(h.raw)) == h.count {
		if h.dirty {
			h.scratch = append(h.scratch[:0], h.raw...)
			h.dirty = false
		}
		idx := int(math.Ceil(p/100*float64(len(h.scratch)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.scratch) {
			idx = len(h.scratch) - 1
		}
		return quickselect(h.scratch, idx)
	}
	// Bucket estimate: walk the dense table in index (= value) order; the
	// overflow tail, if ever reached, estimates as the observed maximum.
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for k, n := range h.buckets {
		cum += n
		if cum >= target {
			lo := math.Exp2(float64(k)) - 1
			hi := math.Exp2(float64(k+1)) - 1
			return (lo + hi) / 2
		}
	}
	return h.max
}

// quickselect returns the k-th smallest element of s (0-based), partially
// reordering s in place. The result is exactly the value a full sort would
// leave at s[k] — the order statistic is unique, so percentiles are
// bit-identical to the sorted path this replaced — at O(n) per query
// instead of O(n log n). Hoare partition with a deterministic
// median-of-three pivot; partial order left by earlier queries only helps
// later ones, never changes their answers.
func quickselect(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return s[k]
		}
	}
	return s[k]
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries
// (matching the paper's geometric-mean speedups). An empty input returns 0.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Speedups divides each runtime in base position by the corresponding config
// runtime: speedup[i] = baseline / runtimes[i].
func Speedups(baseline float64, runtimes []float64) []float64 {
	out := make([]float64, len(runtimes))
	for i, r := range runtimes {
		if r > 0 {
			out[i] = baseline / r
		}
	}
	return out
}

// Table is a simple fixed-column text table used by the sweep harness to
// print paper figures as rows. It right-aligns numeric cells.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Header) {
		cells = cells[:len(t.Header)]
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i == 0 {
			b.WriteString(strings.Repeat("-", w))
		} else {
			b.WriteString("  " + strings.Repeat("-", w))
		}
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatTBs formats a bytes-per-second value as terabytes per second.
func FormatTBs(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f", bytesPerSec/1e12)
}
