// Package cluster models the intra-cluster hierarchy of Figure 2(b) and
// Table 1: four dual-issue, in-order, four-way multithreaded cores with
// private L1 instruction and data caches, sharing a unified L2.
//
// Its main role in the reproduction is as the substitute for the paper's
// COTSon full-system trace generation: a Cluster executes per-thread
// synthetic reference streams against the real L1/L2 cache models, and the
// resulting stream of L2 misses — annotated with thread and time — is
// exactly the trace the network simulator replays (Section 4's two-part
// infrastructure). It also carries the per-cluster area/power bookkeeping
// the paper derives from Penryn/Silverthorne scaling.
package cluster

import (
	"fmt"

	"corona/internal/cache"
	"corona/internal/sim"
	"corona/internal/trace"
)

// Table 1 structural constants.
const (
	CoresPerCluster   = 4
	ThreadsPerCore    = 4
	ThreadsPerCluster = CoresPerCluster * ThreadsPerCore
	IssueWidth        = 2
	SIMDWidth         = 4 // 64 b floating point SIMD lanes
	FrequencyGHz      = 5
)

// FlopsPerCycle returns a core's peak FLOPs per cycle: SIMD width x 2
// (fused multiply-add counts two operations).
func FlopsPerCycle() int { return SIMDWidth * 2 }

// PeakSystemTeraflops returns the 256-core chip's peak: the paper's
// 10 teraflops.
func PeakSystemTeraflops(clusters int) float64 {
	return float64(clusters*CoresPerCluster*FlopsPerCycle()) * FrequencyGHz * 1e9 / 1e12
}

// Core is one in-order multithreaded core with private L1s.
type Core struct {
	ID  int
	L1I *cache.Cache
	L1D *cache.Cache
}

// Cluster is four cores plus the shared L2.
type Cluster struct {
	ID    int
	Cores [CoresPerCluster]*Core
	L2    *cache.Cache
}

// New builds a cluster with Table 1 cache geometry; sim-scale L2 (256 KB,
// Section 4) is selected by simL2.
func New(id int, simL2 bool) *Cluster {
	c := &Cluster{ID: id}
	l2cfg := cache.L2Config()
	if simL2 {
		l2cfg = cache.L2SimConfig()
	}
	c.L2 = cache.New(l2cfg)
	for i := range c.Cores {
		c.Cores[i] = &Core{
			ID:  id*CoresPerCluster + i,
			L1I: cache.New(cache.L1IConfig()),
			L1D: cache.New(cache.L1DConfig()),
		}
	}
	return c
}

// Access runs one data reference from a hardware thread through the L1D and
// (on miss) the shared L2. It returns whether the reference missed all the
// way to memory — i.e. whether it becomes a network request — and any dirty
// L2 victim that must be written back.
func (c *Cluster) Access(thread int, addr uint64, write bool) (l2Miss bool, writeback bool, victim uint64) {
	if thread < 0 || thread >= ThreadsPerCluster {
		panic(fmt.Sprintf("cluster: thread %d out of range", thread))
	}
	core := c.Cores[thread/ThreadsPerCore]
	if r := core.L1D.Access(addr, write); r.Hit {
		return false, false, 0
	}
	r := c.L2.Access(addr, write)
	if r.Hit {
		return false, false, 0
	}
	return true, r.Writeback, r.VictimAddr
}

// ThreadModel parameterizes one synthetic thread's reference stream: a
// working set it mostly revisits plus a streaming component that forces
// cold misses, the knobs that control the model's L2 miss rate.
type ThreadModel struct {
	// WorkingSetLines is the number of distinct hot lines the thread loops
	// over; sized below the L1 it yields hits, sized above the L2 it
	// produces capacity misses.
	WorkingSetLines int
	// StreamFrac is the fraction of references that walk a cold streaming
	// region (compulsory misses).
	StreamFrac float64
	// WriteFrac is the store fraction.
	WriteFrac float64
	// ReferencesPerCycle approximates issue intensity (loads+stores per
	// cycle per thread).
	ReferencesPerCycle float64
}

// TraceEngine drives synthetic threads against a cluster's caches and emits
// the resulting L2-miss trace — the COTSon substitute.
type TraceEngine struct {
	cluster *Cluster
	model   ThreadModel
	rng     *sim.Rand
	streams [ThreadsPerCluster]uint64 // per-thread stream cursor
	hot     [ThreadsPerCluster]uint64 // per-thread working-set base
	now     [ThreadsPerCluster]float64
	// References and Misses count the engine's activity.
	References uint64
	Misses     uint64
}

// NewTraceEngine builds an engine for cluster c.
func NewTraceEngine(c *Cluster, model ThreadModel, seed uint64) *TraceEngine {
	if model.WorkingSetLines <= 0 || model.ReferencesPerCycle <= 0 {
		panic(fmt.Sprintf("cluster: invalid thread model %+v", model))
	}
	e := &TraceEngine{cluster: c, model: model, rng: sim.NewRand(seed)}
	for t := range e.hot {
		// Disjoint per-thread regions, offset per cluster.
		e.hot[t] = (uint64(c.ID)*ThreadsPerCluster + uint64(t)) << 32
		e.streams[t] = e.hot[t] | 1<<28
	}
	return e
}

// Step advances one thread by one reference and returns an L2-miss trace
// record when the reference (or the writeback it forced) misses to memory.
// The boolean reports whether a record was produced.
func (e *TraceEngine) Step(thread int) (trace.Record, bool) {
	m := e.model
	e.References++
	e.now[thread] += 1 / m.ReferencesPerCycle

	var addr uint64
	if e.rng.Float64() < m.StreamFrac {
		addr = e.streams[thread]
		e.streams[thread] += 64 // next line of the stream
	} else {
		line := uint64(e.rng.Intn(m.WorkingSetLines))
		addr = e.hot[thread] + line*64
	}
	write := e.rng.Float64() < m.WriteFrac

	miss, _, _ := e.cluster.Access(thread, addr, write)
	if !miss {
		return trace.Record{}, false
	}
	e.Misses++
	return trace.Record{
		Time:   sim.Time(e.now[thread]),
		Thread: uint16(e.cluster.ID*ThreadsPerCluster + thread),
		Addr:   addr,
		Write:  write,
	}, true
}

// Generate runs all threads round-robin until n trace records are produced,
// writing them to w.
func (e *TraceEngine) Generate(w *trace.Writer, n int) error {
	thread := 0
	for produced := 0; produced < n; {
		rec, ok := e.Step(thread)
		thread = (thread + 1) % ThreadsPerCluster
		if !ok {
			continue
		}
		if err := w.Write(rec); err != nil {
			return fmt.Errorf("cluster: generating trace: %w", err)
		}
		produced++
	}
	return nil
}

// MissRate returns the engine's observed memory miss rate per reference.
func (e *TraceEngine) MissRate() float64 {
	if e.References == 0 {
		return 0
	}
	return float64(e.Misses) / float64(e.References)
}
