package cluster

import (
	"bytes"
	"testing"

	"corona/internal/trace"
)

func TestPeakTeraflops(t *testing.T) {
	// 256 cores x 4-wide FMA x 5 GHz = 10.24 teraflops — the paper's "10
	// teraflop" headline.
	got := PeakSystemTeraflops(64)
	if got < 10 || got > 10.5 {
		t.Fatalf("peak = %v TF, want ~10.24", got)
	}
}

func TestClusterStructure(t *testing.T) {
	c := New(3, false)
	if len(c.Cores) != 4 {
		t.Fatal("cluster must have 4 cores")
	}
	if c.L2.Config().SizeBytes != 4<<20 {
		t.Errorf("L2 = %d bytes, want 4 MB", c.L2.Config().SizeBytes)
	}
	if New(0, true).L2.Config().SizeBytes != 256<<10 {
		t.Error("sim L2 should be 256 KB (Section 4)")
	}
	if c.Cores[0].ID != 12 {
		t.Errorf("core 0 of cluster 3 has id %d, want 12", c.Cores[0].ID)
	}
}

func TestAccessHierarchy(t *testing.T) {
	c := New(0, true)
	// Cold: miss to memory.
	miss, _, _ := c.Access(0, 0x10000, false)
	if !miss {
		t.Fatal("cold access should miss to memory")
	}
	// Warm in L1: hit.
	miss, _, _ = c.Access(0, 0x10000, false)
	if miss {
		t.Fatal("warm access should hit")
	}
	// Different thread on same core shares L1; different core misses L1 but
	// hits shared L2.
	miss, _, _ = c.Access(1, 0x10000, false) // same core (threads 0-3)
	if miss {
		t.Fatal("same-core thread should hit L1")
	}
	miss, _, _ = c.Access(4, 0x10000, false) // core 1: L1 miss, L2 hit
	if miss {
		t.Fatal("cross-core access should hit shared L2")
	}
}

func TestAccessBadThreadPanics(t *testing.T) {
	c := New(0, true)
	defer func() {
		if recover() == nil {
			t.Error("bad thread did not panic")
		}
	}()
	c.Access(16, 0, false)
}

func TestMissRateTracksWorkingSet(t *testing.T) {
	// A tiny working set (fits in L1) should produce a near-zero miss rate;
	// a pure stream should miss on every new line (1/8 of references after
	// L1 spatial reuse... here stream strides a full line, so ~100%).
	small := NewTraceEngine(New(0, true), ThreadModel{
		WorkingSetLines: 64, StreamFrac: 0, WriteFrac: 0.3, ReferencesPerCycle: 0.5,
	}, 1)
	for i := 0; i < 50000; i++ {
		small.Step(i % ThreadsPerCluster)
	}
	// Warm-up produces exactly the compulsory misses (16 threads x 64 lines);
	// steady state adds none.
	cold := small.Misses
	for i := 0; i < 50000; i++ {
		small.Step(i % ThreadsPerCluster)
	}
	if small.Misses != cold {
		t.Errorf("L1-resident working set missed %d times after warm-up, want 0", small.Misses-cold)
	}

	stream := NewTraceEngine(New(1, true), ThreadModel{
		WorkingSetLines: 64, StreamFrac: 1, WriteFrac: 0, ReferencesPerCycle: 0.5,
	}, 2)
	for i := 0; i < 50000; i++ {
		stream.Step(i % ThreadsPerCluster)
	}
	if r := stream.MissRate(); r < 0.9 {
		t.Errorf("pure-stream miss rate = %v, want ~1", r)
	}
}

func TestCapacityMisses(t *testing.T) {
	// A working set far beyond the 256 KB sim L2 must produce substantial
	// capacity misses even with no streaming.
	big := NewTraceEngine(New(0, true), ThreadModel{
		WorkingSetLines: 64 * 1024, // 4 MB per thread
		StreamFrac:      0, WriteFrac: 0.3, ReferencesPerCycle: 0.5,
	}, 3)
	for i := 0; i < 100000; i++ {
		big.Step(i % ThreadsPerCluster)
	}
	if r := big.MissRate(); r < 0.5 {
		t.Errorf("L2-thrashing working set miss rate = %v, want high", r)
	}
}

func TestGenerateTrace(t *testing.T) {
	e := NewTraceEngine(New(2, true), ThreadModel{
		WorkingSetLines: 32 * 1024, StreamFrac: 0.2, WriteFrac: 0.3, ReferencesPerCycle: 0.5,
	}, 4)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Generate(w, 1000); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1000 {
		t.Fatalf("trace has %d records, want 1000", len(recs))
	}
	perThread := map[uint16]uint64{}
	for _, rec := range recs {
		if rec.Cluster(ThreadsPerCluster) != 2 {
			t.Fatalf("record thread %d not in cluster 2", rec.Thread)
		}
		if uint64(rec.Time) < perThread[rec.Thread] {
			t.Fatal("per-thread times must be monotone")
		}
		perThread[rec.Thread] = uint64(rec.Time)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() uint64 {
		e := NewTraceEngine(New(0, true), ThreadModel{
			WorkingSetLines: 8192, StreamFrac: 0.1, WriteFrac: 0.3, ReferencesPerCycle: 0.5,
		}, 99)
		for i := 0; i < 20000; i++ {
			e.Step(i % ThreadsPerCluster)
		}
		return e.Misses
	}
	if run() != run() {
		t.Fatal("engine is not deterministic")
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid model did not panic")
		}
	}()
	NewTraceEngine(New(0, true), ThreadModel{}, 1)
}
