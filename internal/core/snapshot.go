package core

import (
	"fmt"

	"corona/internal/cache"
	"corona/internal/memory"
	"corona/internal/noc"
	"corona/internal/sim"
	"corona/internal/stats"
)

// SystemSnapshot is a deep copy of a System's simulation state at a
// network-quiescent instant: the kernel (clock, sequence counter, every
// pending event), memory controllers, MSHR files, transaction registry,
// latency histogram, and counters. It shares nothing mutable with the system
// it was taken from, so one snapshot may be restored into many systems —
// concurrently, under different fabrics — which is what makes warmup forking
// sound (docs/DETERMINISM.md, "Warmup forking and the snapshot contract").
type SystemSnapshot struct {
	clusters   int
	mshrs      int
	hubLatency int
	memCfg     memory.Config

	kernel   *sim.KernelSnapshot
	mcs      []memory.ControllerState
	hubMSHRs []*cache.MSHR
	latency  *stats.Histogram

	wireBytes uint64
	completed int
	nextID    uint64
	txnSlots  sim.Slots[txn]
}

// restorableHandler vets a pending event's handler for Snapshot: true for
// the typed handlers core knows how to remap (hub events, memory completion
// events, the runner's issue wake-up).
func restorableHandler(h sim.Handler) bool {
	switch h.(type) {
	case *submitLocalEvent, *pumpRetryEvent, *respondEvent, *localDoneEvent,
		*retireEvent, *remoteRetryEvent, *issueWake:
		return true
	}
	return memory.OwnsHandler(h)
}

// quiescentNet asserts the snapshot contract's network half: the fabric must
// be able to prove it holds no in-flight state.
func (s *System) quiescentNet() error {
	q, ok := s.Net.(noc.Quiescer)
	if !ok {
		return fmt.Errorf("core: %s: fabric %q cannot assert quiescence (no noc.Quiescer)", s.Cfg.Name(), s.Net.Name())
	}
	if err := q.Quiescent(); err != nil {
		return fmt.Errorf("core: %s: network not quiescent at snapshot: %w", s.Cfg.Name(), err)
	}
	return nil
}

// Snapshot deep-copies the system's state. It requires the network to be
// quiescent — untouched since construction — which is guaranteed before the
// first remote miss issues (the warmup barrier): pre-divergence state is
// fabric-independent, so the snapshot can be restored under any fabric. The
// hubs' injection queues, held deliveries, and closure-captured work would
// all break that contract; their presence is an error.
func (s *System) Snapshot() (*SystemSnapshot, error) {
	if err := s.quiescentNet(); err != nil {
		return nil, err
	}
	if n := s.msgSlots.Len(); n != 0 {
		return nil, fmt.Errorf("core: %s: %d deliveries held for controller space at snapshot", s.Cfg.Name(), n)
	}
	for _, h := range s.hubs {
		for dst := range h.outq {
			if !h.outq[dst].Empty() || h.outArmed[dst] {
				return nil, fmt.Errorf("core: %s: hub %d has queued network injections at snapshot", s.Cfg.Name(), h.id)
			}
		}
	}
	ks, err := s.K.Snapshot(restorableHandler)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.Cfg.Name(), err)
	}
	snap := &SystemSnapshot{
		clusters:   s.Cfg.Clusters,
		mshrs:      s.Cfg.MSHRs,
		hubLatency: s.Cfg.HubLatency,
		memCfg:     s.Cfg.MemConfig(),
		kernel:     ks,
		mcs:        make([]memory.ControllerState, len(s.MCs)),
		hubMSHRs:   make([]*cache.MSHR, len(s.hubs)),
		latency:    stats.NewHistogram(1),
		wireBytes:  s.WireBytes,
		completed:  s.completed,
		nextID:     s.nextID,
	}
	for i, mc := range s.MCs {
		if err := mc.CaptureState(&snap.mcs[i]); err != nil {
			return nil, fmt.Errorf("core: %s: %w", s.Cfg.Name(), err)
		}
	}
	for i, h := range s.hubs {
		snap.hubMSHRs[i] = cache.NewMSHR(s.Cfg.MSHRs)
		snap.hubMSHRs[i].CopyFrom(h.mshr)
	}
	snap.latency.CopyFrom(s.Latency)
	snap.txnSlots.CopyFrom(&s.txnSlots)
	return snap, nil
}

// remapHandler translates a handler captured from the snapshot's source
// simulation into this system's equivalent component. extra handles the
// handlers core does not own (the runner's issueWake); nil means unknown.
func (s *System) remapHandler(h sim.Handler, extra func(sim.Handler) sim.Handler) sim.Handler {
	switch e := h.(type) {
	case *submitLocalEvent:
		return (*submitLocalEvent)(s.hubs[(*hub)(e).id])
	case *pumpRetryEvent:
		return (*pumpRetryEvent)(s.hubs[(*hub)(e).id])
	case *respondEvent:
		return (*respondEvent)(s.hubs[(*hub)(e).id])
	case *localDoneEvent:
		return (*localDoneEvent)(s.hubs[(*hub)(e).id])
	case *retireEvent:
		return (*retireEvent)(s.hubs[(*hub)(e).id])
	case *remoteRetryEvent:
		return (*remoteRetryEvent)(s.hubs[(*hub)(e).id])
	}
	if nh, ok := memory.RemapHandler(h, func(id int) *memory.Controller { return s.MCs[id] }); ok {
		return nh
	}
	if extra != nil {
		return extra(h)
	}
	return nil
}

// Restore overwrites the system's simulation state with snap. The target
// must be structurally compatible — same cluster count, MSHR capacity, hub
// latency, and memory configuration; the fabric may differ, which is the
// whole point of warmup forking — and its network must be quiescent (freshly
// built or Reset). extra remaps handlers core does not own. snap is only
// read, so concurrent restores from one shared snapshot are safe.
func (s *System) Restore(snap *SystemSnapshot, extra func(sim.Handler) sim.Handler) error {
	switch {
	case s.Cfg.Clusters != snap.clusters:
		return fmt.Errorf("core: %s: restore cluster count mismatch (%d vs %d)", s.Cfg.Name(), s.Cfg.Clusters, snap.clusters)
	case s.Cfg.MSHRs != snap.mshrs:
		return fmt.Errorf("core: %s: restore MSHR capacity mismatch (%d vs %d)", s.Cfg.Name(), s.Cfg.MSHRs, snap.mshrs)
	case s.Cfg.HubLatency != snap.hubLatency:
		return fmt.Errorf("core: %s: restore hub latency mismatch (%d vs %d)", s.Cfg.Name(), s.Cfg.HubLatency, snap.hubLatency)
	case s.Cfg.MemConfig() != snap.memCfg:
		return fmt.Errorf("core: %s: restore memory config mismatch (%s vs %s)", s.Cfg.Name(), s.Cfg.MemConfig().Name, snap.memCfg.Name)
	}
	if err := s.quiescentNet(); err != nil {
		return err
	}
	remap := func(h sim.Handler) sim.Handler { return s.remapHandler(h, extra) }
	if err := s.K.Restore(snap.kernel, remap); err != nil {
		return fmt.Errorf("core: %s: %w", s.Cfg.Name(), err)
	}
	for i, mc := range s.MCs {
		if err := mc.RestoreState(&snap.mcs[i], remap); err != nil {
			return fmt.Errorf("core: %s: %w", s.Cfg.Name(), err)
		}
	}
	for i, h := range s.hubs {
		h.mshr.CopyFrom(snap.hubMSHRs[i])
		for dst := range h.outq {
			h.outq[dst].Reset()
		}
		clear(h.outArmed)
	}
	s.Latency.CopyFrom(snap.latency)
	s.WireBytes, s.completed, s.nextID = snap.wireBytes, snap.completed, snap.nextID
	s.txnSlots.CopyFrom(&snap.txnSlots)
	s.msgSlots.Reset()
	s.onMSHRFree = nil
	return nil
}

// Reset returns the system to its just-constructed state, reusing every
// grown buffer: the kernel's node arena, the network's queues and pools, the
// controllers' booking lists, the hubs' MSHR files and injection queues, and
// the latency reservoir. It fails when the fabric does not support in-place
// reset (no noc.Resetter); callers fall back to building a fresh system.
func (s *System) Reset() error {
	r, ok := s.Net.(noc.Resetter)
	if !ok {
		return fmt.Errorf("core: %s: fabric %q does not support in-place reset (no noc.Resetter)", s.Cfg.Name(), s.Net.Name())
	}
	s.K.Reset()
	r.Reset()
	for _, mc := range s.MCs {
		mc.Reset()
	}
	for _, h := range s.hubs {
		h.mshr.Reset()
		for dst := range h.outq {
			h.outq[dst].Reset()
		}
		clear(h.outArmed)
	}
	s.Latency.Reset()
	s.WireBytes, s.completed, s.nextID = 0, 0, 0
	s.txnSlots.Reset()
	s.msgSlots.Reset()
	s.onMSHRFree = nil
	return nil
}
