// Package core assembles the full Corona system model — 64 cluster hubs, an
// on-stack interconnect, and 64 memory controllers with their off-stack
// links — and drives the trace-replay experiments that reproduce the
// paper's evaluation (Figures 8-11). The interconnect is resolved by name
// through the noc fabric registry, so core knows nothing about individual
// topologies: registering a new fabric (docs/ARCHITECTURE.md) makes it
// buildable here, sweepable, and loadable from JSON with no core change.
//
// The hub mirrors Figure 2(b): it routes each L2 miss between the cluster,
// the network interface, and the memory controller, holding it in a finite
// MSHR file and exerting back pressure when any stage (MSHRs, injection
// queues, receive buffers, controller queues) fills — the modelling detail
// the paper calls out ("finite buffers, queues, and ports ... bandwidth,
// latency, back pressure, and capacity limits").
//
// Sweep is the experiment matrix behind the figures. Its engine fans the
// independent (configuration, workload) cells out over a bounded,
// statically sharded worker pool (Pool) with derived per-workload seeds
// (CellSeed) and an optional on-disk result cache, producing tables that
// are byte-identical for every worker count; the scheme and its guarantee
// are documented in docs/DETERMINISM.md.
//
// Execution is context-aware end to end: every run takes a context.Context
// and returns (Result, error) — invalid input is a *ConfigError, a stopped
// run a *CanceledError — and Client/Job wrap the engine in a submission API
// whose sweeps stream cells as they finish (Job.Results) instead of
// blocking on the matrix barrier. That is the seam internal/server exposes
// over HTTP; docs/API.md documents the model.
package core

import (
	"fmt"

	"corona/internal/cache"
	"corona/internal/config"
	"corona/internal/memory"
	"corona/internal/noc"
	"corona/internal/sim"
	"corona/internal/stats"
	"corona/internal/traffic"
)

// txn is one in-flight L2 miss transaction.
type txn struct {
	id      uint64
	cluster int
	home    int
	line    uint64
	write   bool
	issue   sim.Time
}

// System is a fully assembled simulated machine.
type System struct {
	K   *sim.Kernel
	Cfg config.System
	Net noc.Network
	MCs []*memory.Controller

	// fabric is the registry descriptor Net was built from; the result
	// collector uses its analytic metadata (power, channel utilization).
	fabric noc.Fabric

	hubs []*hub

	// Latency is the end-to-end L2 miss latency histogram in nanoseconds
	// (Figure 10's metric: queueing plus transit).
	Latency *stats.Histogram
	// WireBytes counts memory-transaction bytes for Figure 9's achieved
	// bandwidth.
	WireBytes uint64

	completed int
	nextID    uint64

	// txnSlots parks in-flight transactions — by value, so a transaction is
	// never individually heap-allocated — for the hubs' typed events and the
	// messages that carry them: a transaction occupies exactly one slot from
	// Issue to retirement, and that slot index is what rides in
	// noc.Message.Payload. msgSlots parks back-pressured deliveries awaiting
	// controller space. Together they make the steady-state request
	// lifecycle allocation-free.
	txnSlots sim.Slots[txn]
	msgSlots sim.Slots[*noc.Message]

	// onMSHRFree, when set, is called with the cluster id whenever that
	// cluster retires a transaction; the runner uses it to resume issue.
	onMSHRFree func(cluster int)
}

// hub is one cluster's message router (Figure 2b).
type hub struct {
	sys  *System
	id   int
	mshr *cache.MSHR
	// outq holds messages awaiting network injection, per destination, with
	// one retry timer per destination (outArmed) — unbounded here because
	// the MSHR file already bounds the cluster's outstanding work.
	outq     []sim.Fifo[*noc.Message]
	outArmed []bool
}

// Hub kernel events run on the typed fast path via named views of the hub.
// The data word is the transaction's txnSlots index — the same index the
// transaction keeps for its whole Issue→retire life — except for the
// controller-space retry events, whose data is a msgSlots index holding the
// back-pressured delivery.

// submitLocalEvent pushes a cluster-local miss into the memory controller
// after the hub traversal.
type submitLocalEvent hub

func (e *submitLocalEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.submitLocal(data)
}

// pumpRetryEvent re-drives a back-pressured injection queue.
type pumpRetryEvent hub

func (e *pumpRetryEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.outArmed[data] = false
	h.pumpOut(int(data))
}

// respondEvent is the memory controller's typed completion for remote
// transactions: send the response back over the network.
type respondEvent hub

func (e *respondEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.respond(data)
}

// localDoneEvent is the completion for cluster-local transactions: the
// response crosses only the hub, then the transaction retires.
type localDoneEvent hub

func (e *localDoneEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.sys.K.ScheduleEvent(sim.Time(h.sys.Cfg.HubLatency), (*retireEvent)(h), data)
}

// retireEvent completes a transaction at its requesting cluster.
type retireEvent hub

func (e *retireEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.sys.retire(h.sys.txnSlots.Take(data))
}

// remoteRetryEvent re-presents a delivered request to a previously full
// memory controller; its data parks the held message in msgSlots.
type remoteRetryEvent hub

func (e *remoteRetryEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.submitRemote(h.sys.msgSlots.Take(data))
}

// NewSystem builds a machine per cfg. Invalid input — an unregistered
// fabric, rejected parameters, non-positive structural sizing, or a fabric
// whose built network disagrees with the configured cluster count — returns
// a *ConfigError instead of panicking, so bad configurations are a caller
// problem (a 4xx behind the server) rather than a crash.
func NewSystem(cfg config.System) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, &ConfigError{Name: cfg.Name(), Err: err}
	}
	k := sim.NewKernel()
	s := &System{
		K:       k,
		Cfg:     cfg,
		MCs:     make([]*memory.Controller, cfg.Clusters),
		hubs:    make([]*hub, cfg.Clusters),
		Latency: stats.NewHistogram(1 << 17),
	}
	fab, _ := noc.Lookup(cfg.Fabric) // Validate guarantees registration
	net, err := fab.Build(k, cfg.Params())
	if err != nil {
		return nil, &ConfigError{Name: cfg.Name(), Err: fmt.Errorf("core: %s: %w", cfg.Name(), err)}
	}
	s.fabric, s.Net = fab, net
	if s.Net.Clusters() != cfg.Clusters {
		return nil, &ConfigError{Name: cfg.Name(), Err: fmt.Errorf(
			"core: %s: network has %d endpoints, config %d", cfg.Name(), s.Net.Clusters(), cfg.Clusters)}
	}
	mcfg := cfg.MemConfig()
	for c := 0; c < cfg.Clusters; c++ {
		s.MCs[c] = memory.NewController(k, mcfg, c)
		h := &hub{
			sys: s, id: c, mshr: cache.NewMSHR(cfg.MSHRs),
			outq:     make([]sim.Fifo[*noc.Message], cfg.Clusters),
			outArmed: make([]bool, cfg.Clusters),
		}
		s.hubs[c] = h
		s.Net.SetDeliver(c, h.deliver)
	}
	return s, nil
}

// Completed returns the number of retired transactions.
func (s *System) Completed() int { return s.completed }

// SetMSHRFreeHook installs the runner's issue-resume callback.
func (s *System) SetMSHRFreeHook(fn func(cluster int)) { s.onMSHRFree = fn }

// MSHRFree reports whether cluster can accept another miss.
func (s *System) MSHRFree(cluster int) bool {
	h := s.hubs[cluster]
	return h.mshr.Len() < h.mshr.Cap()
}

// Issue injects one L2 miss at the current simulation time. It returns false
// when the cluster's MSHR file is full (the caller must retry after a
// retirement). Merged secondary misses return true without generating
// network traffic, exactly like hardware MSHRs.
func (s *System) Issue(cluster int, addr uint64, write bool) bool {
	h := s.hubs[cluster]
	line := addr / noc.LineBytes
	primary, ok := h.mshr.Allocate(line)
	if !ok {
		return false
	}
	if !primary {
		return true // merged onto an outstanding miss
	}
	s.nextID++
	t := txn{
		id:      s.nextID,
		cluster: cluster,
		home:    traffic.HomeOf(addr, s.Cfg.Clusters),
		line:    line,
		write:   write,
		issue:   s.K.Now(),
	}
	slot := s.txnSlots.Put(t)
	if t.home == cluster {
		// Local transaction: hub -> MC directly, no network.
		s.K.ScheduleEvent(sim.Time(s.Cfg.HubLatency), (*submitLocalEvent)(h), slot)
		return true
	}
	m := s.Net.Acquire()
	m.ID, m.Src, m.Dst = t.id, t.cluster, t.home
	m.Kind, m.Size = noc.KindRequest, noc.RequestBytes
	if t.write {
		m.Kind, m.Size = noc.KindWriteback, noc.WritebackBytes
	}
	m.Payload = slot
	h.send(m)
	return true
}

// send injects m, queueing it only when the network (or queue order)
// requires: an uncontended destination goes straight into the fabric, so
// hubs that never see back pressure never grow an injection buffer.
func (h *hub) send(m *noc.Message) {
	q := &h.outq[m.Dst]
	if q.Empty() {
		if h.sys.Net.Send(m) {
			return
		}
		q.Push(m)
		h.armRetry(m.Dst)
		return
	}
	q.Push(m)
	h.pumpOut(m.Dst)
}

// armRetry schedules the (single) injection retry timer for dst.
func (h *hub) armRetry(dst int) {
	if !h.outArmed[dst] {
		h.outArmed[dst] = true
		h.sys.K.ScheduleEvent(2, (*pumpRetryEvent)(h), uint64(dst))
	}
}

// pumpOut injects as many queued messages for dst as the network accepts,
// then arms a single retry timer on back pressure.
func (h *hub) pumpOut(dst int) {
	q := &h.outq[dst]
	for !q.Empty() {
		if !h.sys.Net.Send(q.Front()) {
			h.armRetry(dst)
			return
		}
		q.Pop()
	}
}

// deliver handles a network arrival at this hub.
func (h *hub) deliver(m *noc.Message) {
	switch m.Kind {
	case noc.KindRequest, noc.KindWriteback:
		h.submitRemote(m)
	case noc.KindResponse:
		slot := m.Payload
		h.sys.Net.Consume(h.id, m) // recycles m; slot outlives it
		h.sys.retire(h.sys.txnSlots.Take(slot))
	default:
		panic(fmt.Sprintf("core: hub %d received unexpected %v", h.id, m.Kind))
	}
}

// submitRemote pushes a delivered request into the local memory controller,
// holding the network receive-buffer credit (and the message) until the
// controller accepts — that is how controller congestion back-pressures the
// interconnect.
func (h *hub) submitRemote(m *noc.Message) {
	if h.trySubmit(m.Payload, (*respondEvent)(h)) {
		h.sys.Net.Consume(h.id, m)
		return
	}
	h.sys.MCs[h.id].NotifySpaceEvent((*remoteRetryEvent)(h), h.sys.msgSlots.Put(m))
}

// submitLocal pushes a cluster-local request into the MC, retrying while
// the queue is full (the retry re-enters through submitLocalEvent; no
// message or credit is held for local transactions). Its completion
// crosses only the hub, not the network.
func (h *hub) submitLocal(slot uint64) {
	if h.trySubmit(slot, (*localDoneEvent)(h)) {
		return
	}
	h.sys.MCs[h.id].NotifySpaceEvent((*submitLocalEvent)(h), slot)
}

// trySubmit presents the parked transaction to the local controller. The
// request is stack-allocated: Submit copies it by value and the completion
// carries the transaction's slot, so the whole exchange allocates nothing.
func (h *hub) trySubmit(slot uint64, done sim.Handler) bool {
	t := h.sys.txnSlots.Get(slot)
	req := memory.Request{
		ID:          t.id,
		Addr:        t.line * noc.LineBytes,
		Write:       t.write,
		DoneHandler: done,
		DoneData:    slot,
	}
	if t.write {
		req.ReqBytes = noc.WritebackBytes
		req.RspBytes = 0
	} else {
		req.ReqBytes = noc.RequestBytes
		req.RspBytes = noc.ResponseBytes
	}
	return h.sys.MCs[h.id].Submit(&req)
}

// respond sends the completion back to the requester (full line for reads, a
// small ack for writebacks); the transaction keeps its slot for the ride.
func (h *hub) respond(slot uint64) {
	t := h.sys.txnSlots.Get(slot)
	m := h.sys.Net.Acquire()
	m.ID, m.Src, m.Dst = t.id, h.id, t.cluster
	m.Kind, m.Size = noc.KindResponse, noc.ResponseBytes
	if t.write {
		m.Size = noc.RequestBytes // write ack
	}
	m.Payload = slot
	h.send(m)
}

// retire completes a transaction at its requesting cluster: MSHR entry (and
// all merged requesters) release, latency accounting, issue-resume hook.
func (s *System) retire(t txn) {
	h := s.hubs[t.cluster]
	merged := h.mshr.Complete(t.line)
	lat := (s.K.Now() - t.issue).Ns()
	wire := uint64(noc.RequestBytes + noc.ResponseBytes)
	if t.write {
		wire = noc.WritebackBytes + noc.RequestBytes
	}
	for i := 0; i < merged; i++ {
		s.Latency.Observe(lat)
		s.completed++
	}
	s.WireBytes += wire
	if s.onMSHRFree != nil {
		s.onMSHRFree(t.cluster)
	}
}

// NetworkStats returns the interconnect's counters.
func (s *System) NetworkStats() noc.Stats { return s.Net.Stats() }

// MemoryBytesMoved sums controller traffic.
func (s *System) MemoryBytesMoved() uint64 {
	var total uint64
	for _, mc := range s.MCs {
		total += mc.BytesMoved
	}
	return total
}
