// Package core assembles the full Corona system model — 64 cluster hubs, an
// on-stack interconnect, and 64 memory controllers with their off-stack
// links — and drives the trace-replay experiments that reproduce the
// paper's evaluation (Figures 8-11). The interconnect is resolved by name
// through the noc fabric registry, so core knows nothing about individual
// topologies: registering a new fabric (docs/ARCHITECTURE.md) makes it
// buildable here, sweepable, and loadable from JSON with no core change.
//
// The hub mirrors Figure 2(b): it routes each L2 miss between the cluster,
// the network interface, and the memory controller, holding it in a finite
// MSHR file and exerting back pressure when any stage (MSHRs, injection
// queues, receive buffers, controller queues) fills — the modelling detail
// the paper calls out ("finite buffers, queues, and ports ... bandwidth,
// latency, back pressure, and capacity limits").
//
// Sweep is the experiment matrix behind the figures. Its engine fans the
// independent (configuration, workload) cells out over a bounded,
// statically sharded worker pool (Pool) with derived per-workload seeds
// (CellSeed) and an optional on-disk result cache, producing tables that
// are byte-identical for every worker count; the scheme and its guarantee
// are documented in docs/DETERMINISM.md.
//
// Execution is context-aware end to end: every run takes a context.Context
// and returns (Result, error) — invalid input is a *ConfigError, a stopped
// run a *CanceledError — and Client/Job wrap the engine in a submission API
// whose sweeps stream cells as they finish (Job.Results) instead of
// blocking on the matrix barrier. That is the seam internal/server exposes
// over HTTP; docs/API.md documents the model.
package core

import (
	"fmt"

	"corona/internal/cache"
	"corona/internal/config"
	"corona/internal/memory"
	"corona/internal/noc"
	"corona/internal/sim"
	"corona/internal/stats"
	"corona/internal/traffic"
)

// txn is one in-flight L2 miss transaction.
type txn struct {
	id      uint64
	cluster int
	home    int
	line    uint64
	write   bool
	issue   sim.Time
}

// System is a fully assembled simulated machine.
type System struct {
	K   *sim.Kernel
	Cfg config.System
	Net noc.Network
	MCs []*memory.Controller

	// fabric is the registry descriptor Net was built from; the result
	// collector uses its analytic metadata (power, channel utilization).
	fabric noc.Fabric

	hubs []*hub

	// Latency is the end-to-end L2 miss latency histogram in nanoseconds
	// (Figure 10's metric: queueing plus transit).
	Latency *stats.Histogram
	// WireBytes counts memory-transaction bytes for Figure 9's achieved
	// bandwidth.
	WireBytes uint64

	completed int
	nextID    uint64

	// txnSlots parks in-flight transactions for the hubs' typed events.
	txnSlots sim.Slots[*txn]

	// onMSHRFree, when set, is called with the cluster id whenever that
	// cluster retires a transaction; the runner uses it to resume issue.
	onMSHRFree func(cluster int)
}

// hub is one cluster's message router (Figure 2b).
type hub struct {
	sys  *System
	id   int
	mshr *cache.MSHR
	// outq holds messages awaiting network injection, per destination, with
	// one retry timer per destination (outArmed) — unbounded here because
	// the MSHR file already bounds the cluster's outstanding work.
	outq     [][]*noc.Message
	outArmed []bool
}

// Hub kernel events run on the typed fast path via named views of the hub,
// with the transaction parked in the system's slot registry.

// submitLocalEvent pushes a cluster-local miss into the memory controller
// after the hub traversal.
type submitLocalEvent hub

func (e *submitLocalEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.submitLocal(h.sys.txnSlots.Take(data))
}

// pumpRetryEvent re-drives a back-pressured injection queue.
type pumpRetryEvent hub

func (e *pumpRetryEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.outArmed[data] = false
	h.pumpOut(int(data))
}

// respondEvent is the memory controller's typed completion for remote
// transactions: send the response back over the network.
type respondEvent hub

func (e *respondEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.respond(h.sys.txnSlots.Take(data))
}

// localDoneEvent is the completion for cluster-local transactions: the
// response crosses only the hub, then the transaction retires.
type localDoneEvent hub

func (e *localDoneEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.sys.K.ScheduleEvent(sim.Time(h.sys.Cfg.HubLatency), (*retireEvent)(h), data)
}

// retireEvent completes a transaction at its requesting cluster.
type retireEvent hub

func (e *retireEvent) OnEvent(_ sim.Time, data uint64) {
	h := (*hub)(e)
	h.sys.retire(h.sys.txnSlots.Take(data))
}

// NewSystem builds a machine per cfg. Invalid input — an unregistered
// fabric, rejected parameters, non-positive structural sizing, or a fabric
// whose built network disagrees with the configured cluster count — returns
// a *ConfigError instead of panicking, so bad configurations are a caller
// problem (a 4xx behind the server) rather than a crash.
func NewSystem(cfg config.System) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, &ConfigError{Name: cfg.Name(), Err: err}
	}
	k := sim.NewKernel()
	s := &System{
		K:       k,
		Cfg:     cfg,
		MCs:     make([]*memory.Controller, cfg.Clusters),
		hubs:    make([]*hub, cfg.Clusters),
		Latency: stats.NewHistogram(1 << 17),
	}
	fab, _ := noc.Lookup(cfg.Fabric) // Validate guarantees registration
	net, err := fab.Build(k, cfg.Params())
	if err != nil {
		return nil, &ConfigError{Name: cfg.Name(), Err: fmt.Errorf("core: %s: %w", cfg.Name(), err)}
	}
	s.fabric, s.Net = fab, net
	if s.Net.Clusters() != cfg.Clusters {
		return nil, &ConfigError{Name: cfg.Name(), Err: fmt.Errorf(
			"core: %s: network has %d endpoints, config %d", cfg.Name(), s.Net.Clusters(), cfg.Clusters)}
	}
	mcfg := cfg.MemConfig()
	for c := 0; c < cfg.Clusters; c++ {
		s.MCs[c] = memory.NewController(k, mcfg, c)
		h := &hub{
			sys: s, id: c, mshr: cache.NewMSHR(cfg.MSHRs),
			outq:     make([][]*noc.Message, cfg.Clusters),
			outArmed: make([]bool, cfg.Clusters),
		}
		s.hubs[c] = h
		s.Net.SetDeliver(c, h.deliver)
	}
	return s, nil
}

// Completed returns the number of retired transactions.
func (s *System) Completed() int { return s.completed }

// SetMSHRFreeHook installs the runner's issue-resume callback.
func (s *System) SetMSHRFreeHook(fn func(cluster int)) { s.onMSHRFree = fn }

// MSHRFree reports whether cluster can accept another miss.
func (s *System) MSHRFree(cluster int) bool {
	h := s.hubs[cluster]
	return h.mshr.Len() < h.mshr.Cap()
}

// Issue injects one L2 miss at the current simulation time. It returns false
// when the cluster's MSHR file is full (the caller must retry after a
// retirement). Merged secondary misses return true without generating
// network traffic, exactly like hardware MSHRs.
func (s *System) Issue(cluster int, addr uint64, write bool) bool {
	h := s.hubs[cluster]
	line := addr / noc.LineBytes
	primary, ok := h.mshr.Allocate(line)
	if !ok {
		return false
	}
	if !primary {
		return true // merged onto an outstanding miss
	}
	s.nextID++
	t := &txn{
		id:      s.nextID,
		cluster: cluster,
		home:    traffic.HomeOf(addr, s.Cfg.Clusters),
		line:    line,
		write:   write,
		issue:   s.K.Now(),
	}
	if t.home == cluster {
		// Local transaction: hub -> MC directly, no network.
		s.K.ScheduleEvent(sim.Time(s.Cfg.HubLatency), (*submitLocalEvent)(h), s.txnSlots.Put(t))
		return true
	}
	h.send(reqMsg(t))
	return true
}

// reqMsg builds the outbound request message for a transaction.
func reqMsg(t *txn) *noc.Message {
	m := &noc.Message{
		ID: t.id, Src: t.cluster, Dst: t.home,
		Kind: noc.KindRequest, Size: noc.RequestBytes,
		Payload: t,
	}
	if t.write {
		m.Kind = noc.KindWriteback
		m.Size = noc.WritebackBytes
	}
	return m
}

// send queues m for injection and drives the per-destination pump.
func (h *hub) send(m *noc.Message) {
	h.outq[m.Dst] = append(h.outq[m.Dst], m)
	h.pumpOut(m.Dst)
}

// pumpOut injects as many queued messages for dst as the network accepts,
// then arms a single retry timer on back pressure.
func (h *hub) pumpOut(dst int) {
	for len(h.outq[dst]) > 0 {
		if !h.sys.Net.Send(h.outq[dst][0]) {
			if !h.outArmed[dst] {
				h.outArmed[dst] = true
				h.sys.K.ScheduleEvent(2, (*pumpRetryEvent)(h), uint64(dst))
			}
			return
		}
		h.outq[dst] = h.outq[dst][1:]
	}
}

// deliver handles a network arrival at this hub.
func (h *hub) deliver(m *noc.Message) {
	t := m.Payload.(*txn)
	switch m.Kind {
	case noc.KindRequest, noc.KindWriteback:
		h.submitRemote(t, m)
	case noc.KindResponse:
		h.sys.Net.Consume(h.id, m)
		h.sys.retire(t)
	default:
		panic(fmt.Sprintf("core: hub %d received unexpected %v", h.id, m.Kind))
	}
}

// submitRemote pushes a delivered request into the local memory controller,
// holding the network receive-buffer credit until the controller accepts —
// that is how controller congestion back-pressures the interconnect.
func (h *hub) submitRemote(t *txn, m *noc.Message) {
	if h.trySubmit(t, (*respondEvent)(h)) {
		h.sys.Net.Consume(h.id, m)
		return
	}
	h.sys.MCs[h.id].NotifySpace(func() { h.submitRemote(t, m) })
}

// submitLocal pushes a cluster-local request into the MC, retrying while the
// queue is full. Its completion crosses only the hub, not the network.
func (h *hub) submitLocal(t *txn) {
	if h.trySubmit(t, (*localDoneEvent)(h)) {
		return
	}
	h.sys.MCs[h.id].NotifySpace(func() { h.submitLocal(t) })
}

func (h *hub) trySubmit(t *txn, done sim.Handler) bool {
	slot := h.sys.txnSlots.Put(t)
	req := &memory.Request{
		ID:          t.id,
		Addr:        t.line * noc.LineBytes,
		Write:       t.write,
		DoneHandler: done,
		DoneData:    slot,
	}
	if t.write {
		req.ReqBytes = noc.WritebackBytes
		req.RspBytes = 0
	} else {
		req.ReqBytes = noc.RequestBytes
		req.RspBytes = noc.ResponseBytes
	}
	if !h.sys.MCs[h.id].Submit(req) {
		h.sys.txnSlots.Free(slot)
		return false
	}
	return true
}

// respond sends the completion back to the requester (full line for reads, a
// small ack for writebacks).
func (h *hub) respond(t *txn) {
	m := &noc.Message{
		ID: t.id, Src: h.id, Dst: t.cluster,
		Kind: noc.KindResponse, Size: noc.ResponseBytes,
		Payload: t,
	}
	if t.write {
		m.Size = noc.RequestBytes // write ack
	}
	h.send(m)
}

// retire completes a transaction at its requesting cluster: MSHR entry (and
// all merged requesters) release, latency accounting, issue-resume hook.
func (s *System) retire(t *txn) {
	h := s.hubs[t.cluster]
	merged := h.mshr.Complete(t.line)
	lat := (s.K.Now() - t.issue).Ns()
	wire := uint64(noc.RequestBytes + noc.ResponseBytes)
	if t.write {
		wire = noc.WritebackBytes + noc.RequestBytes
	}
	for i := 0; i < merged; i++ {
		s.Latency.Observe(lat)
		s.completed++
	}
	s.WireBytes += wire
	if s.onMSHRFree != nil {
		s.onMSHRFree(t.cluster)
	}
}

// NetworkStats returns the interconnect's counters.
func (s *System) NetworkStats() noc.Stats { return s.Net.Stats() }

// MemoryBytesMoved sums controller traffic.
func (s *System) MemoryBytesMoved() uint64 {
	var total uint64
	for _, mc := range s.MCs {
		total += mc.BytesMoved
	}
	return total
}
