package core

import (
	"encoding/json"
	"fmt"
	"os"

	"corona/internal/config"
	"corona/internal/traffic"
)

// Scenario is a fully resolved experiment description: which machines, which
// workloads, how many requests per cell, at what base seed. It is what a
// JSON config file parses into, and what NewMatrixSweep consumes — the
// bridge that makes new machines runnable without recompiling.
type Scenario struct {
	Configs   []config.System
	Workloads []traffic.Spec
	Requests  int
	Seed      uint64
}

// Sweep prepares the scenario's matrix on the sweep engine.
func (sc *Scenario) Sweep() *Sweep {
	return NewMatrixSweep(sc.Configs, sc.Workloads, sc.Requests, sc.Seed)
}

// scenarioFile is the JSON schema of a -config file:
//
//	{
//	  "configs": [
//	    {"preset": "XBar/OCM"},
//	    {"label": "SWMR/OCM", "fabric": "swmr", "mem": "OCM",
//	     "params": {"recv_buffer": 16}, "mshrs": 64}
//	  ],
//	  "workloads": ["Uniform", "FFT"],   // omit for all fifteen
//	  "requests": 20000,                 // omit for the 20000 default
//	  "seed": 42                         // omit for 42
//	}
type scenarioFile struct {
	Configs   []scenarioConfig `json:"configs"`
	Workloads []string         `json:"workloads"`
	Requests  int              `json:"requests"`
	Seed      *uint64          `json:"seed"`
}

// scenarioConfig describes one machine: either a preset label, or a
// declarative fabric + memory description with optional structural sizing.
// Omitted structural fields take the paper's defaults (64 clusters,
// 64 MSHRs, 4-cycle hub).
type scenarioConfig struct {
	Preset     string         `json:"preset"`
	Label      string         `json:"label"`
	Fabric     string         `json:"fabric"`
	Mem        string         `json:"mem"`
	Params     map[string]int `json:"params"`
	Clusters   int            `json:"clusters"`
	MSHRs      int            `json:"mshrs"`
	HubLatency int            `json:"hub_latency"`
}

// resolve turns one scenario entry into a validated config.System.
func (e scenarioConfig) resolve(i int) (config.System, error) {
	if e.Preset != "" {
		if e.Fabric != "" || e.Mem != "" || e.Params != nil {
			return config.System{}, fmt.Errorf("config %d: %q mixes preset with fabric/mem/params; use one or the other", i, e.Preset)
		}
		cfg, err := config.ParseName(e.Preset)
		if err != nil {
			return config.System{}, fmt.Errorf("config %d: %w", i, err)
		}
		if e.Label != "" {
			cfg.Label = e.Label
		}
		return applySizing(cfg, e), nil
	}
	if e.Fabric == "" {
		return config.System{}, fmt.Errorf("config %d: needs either \"preset\" or \"fabric\"", i)
	}
	mem := config.OCM
	if e.Mem != "" {
		var err error
		if mem, err = config.ParseMemoryKind(e.Mem); err != nil {
			return config.System{}, fmt.Errorf("config %d: %w", i, err)
		}
	}
	return applySizing(config.Custom(e.Label, e.Fabric, mem, e.Params), e), nil
}

func applySizing(cfg config.System, e scenarioConfig) config.System {
	if e.Clusters > 0 {
		cfg.Clusters = e.Clusters
	}
	if e.MSHRs > 0 {
		cfg.MSHRs = e.MSHRs
	}
	if e.HubLatency > 0 {
		cfg.HubLatency = e.HubLatency
	}
	return cfg
}

// FindWorkload resolves a Table 3 workload by name.
func FindWorkload(name string) (traffic.Spec, bool) {
	for _, w := range AllWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	return traffic.Spec{}, false
}

// workloadNames lists the valid Table 3 names for error messages.
func workloadNames() []string {
	all := AllWorkloads()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// ParseScenario parses and fully validates a JSON scenario: every config
// resolves against the fabric registry (parameter typos rejected), every
// workload name must be a Table 3 name, and defaults (all workloads,
// 20000 requests, seed 42) fill the omitted fields. Every rejection is a
// *ConfigError — invalid input, never an internal failure — so servers and
// CLIs can map it to "fix your request" without string matching.
func ParseScenario(data []byte) (*Scenario, error) {
	badInput := func(name string, err error) error {
		return &ConfigError{Name: name, Err: err}
	}
	var f scenarioFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, badInput("scenario", fmt.Errorf("scenario: %w", err))
	}
	if len(f.Configs) == 0 {
		return nil, badInput("scenario", fmt.Errorf("scenario: no configs"))
	}
	sc := &Scenario{Requests: 20000, Seed: 42}
	if f.Requests > 0 {
		sc.Requests = f.Requests
	}
	if f.Seed != nil {
		sc.Seed = *f.Seed
	}
	seen := map[string]bool{}
	for i, e := range f.Configs {
		cfg, err := e.resolve(i)
		if err != nil {
			return nil, badInput(fmt.Sprintf("config %d", i), fmt.Errorf("scenario: %w", err))
		}
		if err := cfg.Validate(); err != nil {
			return nil, badInput(cfg.Name(), fmt.Errorf("scenario: config %d: %w", i, err))
		}
		if seen[cfg.Name()] {
			return nil, badInput(cfg.Name(),
				fmt.Errorf("scenario: duplicate config name %q (give one a distinct \"label\")", cfg.Name()))
		}
		seen[cfg.Name()] = true
		sc.Configs = append(sc.Configs, cfg)
	}
	if len(f.Workloads) == 0 {
		sc.Workloads = AllWorkloads()
	} else {
		for _, name := range f.Workloads {
			spec, ok := FindWorkload(name)
			if !ok {
				return nil, badInput(name,
					fmt.Errorf("scenario: unknown workload %q (valid: %v)", name, workloadNames()))
			}
			sc.Workloads = append(sc.Workloads, spec)
		}
	}
	return sc, nil
}

// LoadScenario reads and parses a JSON scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
