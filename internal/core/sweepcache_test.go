package core

import (
	"os"
	"testing"

	"corona/internal/config"
	"corona/internal/traffic"
)

// TestCorruptedCacheEntryIsEvictedNotFatal plants a torn JSON file at a
// cell's exact cache path and asserts the sweep (a) still succeeds with the
// right result, (b) evicted the bad file, and (c) left a fresh valid entry
// in its place, so the next run hits.
func TestCorruptedCacheEntryIsEvictedNotFatal(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec(1)
	cfg := config.Corona()
	want := mustRun(t, cfg, spec, 400, CellSeed(5, spec.Name))

	s := NewMatrixSweep([]config.System{cfg}, []traffic.Spec{spec}, 400, 5)

	// Plant the torn entry where the sweep's only cell will look.
	c := openCache(dir)
	fp, ok := cellFingerprint(cfg, spec, 400, CellSeed(5, spec.Name))
	if !ok {
		t.Fatal("cellFingerprint failed")
	}
	path := c.path(fp)
	if err := os.WriteFile(path, []byte(`{"schema":3,"fingerprint":"abc`), 0o644); err != nil {
		t.Fatal(err)
	}

	mustSweep(t, s, CacheDir(dir), Workers(1))
	if s.Results[0][0] != want {
		t.Fatalf("sweep over a torn cache entry = %+v, want %+v", s.Results[0][0], want)
	}

	// The torn file was replaced by a valid entry: a reload must now hit.
	if res, hit := c.load(cfg, spec, 400, CellSeed(5, spec.Name)); !hit || res != want {
		t.Fatalf("cache after recovery: hit=%v res=%+v", hit, res)
	}
}

// TestUnreadableCacheNeverFailsSweep points the cache at a path that cannot
// be a directory and asserts the sweep still completes.
func TestUnreadableCacheNeverFailsSweep(t *testing.T) {
	file := t.TempDir() + "/not-a-dir"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewMatrixSweep([]config.System{config.Corona()}, []traffic.Spec{quickSpec(1)}, 300, 5)
	mustSweep(t, s, CacheDir(file+"/sub"), Workers(1))
	if s.Results[0][0].Cycles == 0 {
		t.Fatal("sweep with unusable cache dir produced no result")
	}
}
