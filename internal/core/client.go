package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"corona/internal/config"
	"corona/internal/trace"
	"corona/internal/traffic"
)

// Client is the job-oriented entry point to the experiment engine: every
// call takes a context, returns (result, error) instead of panicking, and
// sweeps can be submitted as streaming Jobs whose cells arrive as shards
// finish. A Client carries the execution defaults — worker pool size and
// cache directory — so a server (or any concurrent caller) configures them
// once and submits from many goroutines; the zero-value-equivalent
// NewClient() uses GOMAXPROCS workers and no cache. Clients are immutable
// after construction and safe for concurrent use. See docs/API.md for the
// model and the migration table from the legacy blocking calls.
type Client struct {
	workers  int
	cacheDir string
}

// ClientOption configures a NewClient call.
type ClientOption func(*Client)

// WithWorkers sets the default worker pool size for the client's runs and
// jobs: 0 (the default) means GOMAXPROCS, 1 forces the sequential path.
// Per-submit Workers options override it.
func WithWorkers(n int) ClientOption { return func(c *Client) { c.workers = n } }

// WithCacheDir sets the client's on-disk result cache for sweeps; empty
// (the default) disables caching. Per-submit CacheDir options override it.
func WithCacheDir(dir string) ClientOption { return func(c *Client) { c.cacheDir = dir } }

// NewClient returns a Client with the given defaults.
func NewClient(opts ...ClientOption) *Client {
	c := &Client{}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Run simulates `requests` L2 misses of spec on cfg at the given seed —
// the context-aware, error-returning form of the one-cell experiment.
// Invalid configurations return a *ConfigError; a canceled ctx returns a
// *CanceledError.
func (c *Client) Run(ctx context.Context, cfg config.System, spec traffic.Spec, requests int, seed uint64) (Result, error) {
	return Run(ctx, cfg, spec, requests, seed)
}

// Replay replays recorded L2 misses on cfg, mapping trace thread ids onto
// clusters threadsPerCluster at a time (16 for a full 1024-thread Corona).
func (c *Client) Replay(ctx context.Context, cfg config.System, recs []trace.Record, threadsPerCluster int) (Result, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	r, err := NewTraceRunner(sys, recs, threadsPerCluster)
	if err != nil {
		return Result{}, err
	}
	return r.Run(ctx)
}

// Compare runs spec on several machines concurrently under identical
// traffic (every machine sees the same seed, hence the same offered stream)
// and returns results in argument order. With no explicit configs it
// compares the paper's five machines in Combos order.
func (c *Client) Compare(ctx context.Context, spec traffic.Spec, requests int, seed uint64, configs ...config.System) ([]Result, error) {
	if len(configs) == 0 {
		configs = config.Combos()
	}
	cells := make([]Cell, len(configs))
	for i, cfg := range configs {
		cells[i] = Cell{Config: cfg, Spec: spec, Requests: requests, Seed: seed}
	}
	return RunCells(ctx, cells, c.workers)
}

// Submit starts s running asynchronously and returns a Job handle
// immediately. Configuration problems — an unregistered fabric, rejected
// parameters, a non-positive request count — are reported synchronously as
// a *ConfigError, so a rejected submission never occupies workers. The
// sweep belongs to the job until it finishes: read s (or Job.Sweep()) only
// after Wait returns or Results is closed.
//
// Options are layered client defaults first, so a per-submit Workers or
// CacheDir overrides the client's.
func (c *Client) Submit(ctx context.Context, s *Sweep, opts ...Option) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s == nil {
		return nil, &ConfigError{Name: "sweep", Err: fmt.Errorf("core: Submit of a nil sweep")}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}

	total := len(s.Configs) * len(s.Workloads)
	jobCtx, cancel := context.WithCancel(ctx)
	j := &Job{
		sweep: s,
		total: total,
		// Buffered to the matrix size: the engine's serialized onCell sends
		// can never block, so a slow (or absent) consumer cannot stall the
		// worker pool, and a late consumer still sees every cell.
		results: make(chan CellResult, total),
		done:    make(chan struct{}),
		cancel:  cancel,
	}
	run := append([]Option{Workers(c.workers), CacheDir(c.cacheDir)}, opts...)
	run = append(run, onCell(func(cell CellResult) {
		j.completed.Add(1)
		j.results <- cell
	}))
	go func() {
		defer cancel()
		j.err = s.Run(jobCtx, run...)
		close(j.results)
		close(j.done)
	}()
	return j, nil
}

// Job is a submitted, asynchronously running sweep. Consume cells as they
// complete from Results, or block on Wait for the barrier semantics; Cancel
// stops the job early. A Job's methods are safe for concurrent use.
type Job struct {
	sweep     *Sweep
	total     int
	results   chan CellResult
	done      chan struct{}
	cancel    context.CancelFunc
	completed atomic.Int64

	// err is written by the runner goroutine before done closes; readers go
	// through Err/Wait, which synchronize on the close.
	err error
}

// Results streams completed cells in completion order. The channel is
// closed once the job finishes (normally, by error, or by cancellation);
// after it closes, Err reports how the job ended. The channel is buffered
// to the full matrix, so consuming late — or not at all — never blocks the
// simulation.
func (j *Job) Results() <-chan CellResult { return j.results }

// Done is closed when the job finishes; select on it alongside other work.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes and returns its terminal error: nil on
// success, a *CanceledError if the job's context was canceled, or the first
// cell failure. The ctx here only bounds the wait itself — cancelling it
// abandons the wait (returning ctx.Err()) without cancelling the job.
func (j *Job) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel asks the job to stop: in-flight cells halt at their next kernel
// checkpoint, completed cells keep their results and cache entries, and
// Wait returns a *CanceledError. Cancel is idempotent and safe after the
// job has finished.
func (j *Job) Cancel() { j.cancel() }

// Err returns the job's terminal error once it has finished, or nil while
// it is still running (use Wait to block for it).
func (j *Job) Err() error {
	select {
	case <-j.done:
		return j.err
	default:
		return nil
	}
}

// Progress reports cells completed so far and the matrix size.
func (j *Job) Progress() (done, total int) {
	return int(j.completed.Load()), j.total
}

// Sweep returns the underlying sweep — its Results grid and figure tables
// are valid once the job has finished (Wait returned nil).
func (j *Job) Sweep() *Sweep { return j.sweep }
