package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"corona/internal/config"
)

// subsetSweep builds a small 2-config x 3-workload matrix (6 cells) that
// simulates in milliseconds.
func subsetSweep() *Sweep {
	return NewMatrixSweep(config.Combos()[:2], AllWorkloads()[:3], 300, 17)
}

// TestSubsetMatchesFullRun is the shard-subset determinism contract: the
// matrix split into 1, 2, or 5 disjoint index shards — each executed as an
// independent Subset run, as a fleet's workers would — reassembles into a
// Results grid field-identical to one full run, and every shard surfaces
// exactly its own cells through the streaming callback.
func TestSubsetMatchesFullRun(t *testing.T) {
	ref := subsetSweep()
	if err := ref.Run(context.Background(), Workers(1)); err != nil {
		t.Fatal(err)
	}
	total := len(ref.Configs) * len(ref.Workloads)

	for _, shards := range [][][]int{
		{{0, 1, 2, 3, 4, 5}},
		{{0, 1, 2}, {3, 4, 5}},
		{{0, 1}, {2}, {3}, {4}, {5}},
	} {
		merged := subsetSweep()
		merged.Results = make([][]Result, len(merged.Workloads))
		for w := range merged.Results {
			merged.Results[w] = make([]Result, len(merged.Configs))
		}
		for _, shard := range shards {
			s := subsetSweep()
			want := map[int]bool{}
			for _, i := range shard {
				want[i] = true
			}
			err := s.Run(context.Background(), Workers(2), Subset(shard),
				onCell(func(cell CellResult) {
					if !want[cell.Index] {
						t.Errorf("%d shards: shard %v surfaced foreign cell %d", len(shards), shard, cell.Index)
					}
					merged.Results[cell.Row][cell.Col] = cell.Result
				}))
			if err != nil {
				t.Fatalf("%d shards: shard %v: %v", len(shards), shard, err)
			}
			// The shard's own grid holds only its cells; others stay zero.
			for i := 0; i < total; i++ {
				got := s.Results[i/len(s.Configs)][i%len(s.Configs)]
				if want[i] && got.Cycles == 0 {
					t.Errorf("%d shards: shard %v left its cell %d empty", len(shards), shard, i)
				}
				if !want[i] && got.Cycles != 0 {
					t.Errorf("%d shards: shard %v simulated foreign cell %d", len(shards), shard, i)
				}
			}
		}
		if !reflect.DeepEqual(merged.Results, ref.Results) {
			t.Errorf("%d shards: merged subset results differ from the full run", len(shards))
		}
	}
}

// TestSubsetRejectsBadIndices pins the pre-flight validation: out-of-range,
// duplicate, and explicitly empty subsets are *ConfigError before any cell
// simulates.
func TestSubsetRejectsBadIndices(t *testing.T) {
	for name, subset := range map[string][]int{
		"negative":     {-1},
		"out of range": {0, 6},
		"duplicate":    {1, 2, 1},
		"empty":        {},
	} {
		s := subsetSweep()
		ran := false
		err := s.Run(context.Background(), Subset(subset), onCell(func(CellResult) { ran = true }))
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s subset %v: err = %v, want *ConfigError", name, subset, err)
		}
		if ran {
			t.Errorf("%s subset %v: cells simulated despite rejection", name, subset)
		}
	}
}

// TestSubsetWithPrecomputed pins the resume-on-a-shard path a fleet worker
// re-runs after a crash: precomputed cells inside the subset surface as
// cached without simulating, precomputed cells outside it stay silent.
func TestSubsetWithPrecomputed(t *testing.T) {
	ref := subsetSweep()
	if err := ref.Run(context.Background(), Workers(1)); err != nil {
		t.Fatal(err)
	}
	pre := map[int]Result{
		1: ref.Results[0][1], // inside the subset
		4: ref.Results[2][0], // outside it
	}
	s := subsetSweep()
	got := map[int]CellResult{}
	err := s.Run(context.Background(), Workers(1), Subset([]int{0, 1, 2}), Precomputed(pre),
		onCell(func(cell CellResult) { got[cell.Index] = cell }))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("surfaced %d cells, want 3: %v", len(got), got)
	}
	if !got[1].Cached {
		t.Error("precomputed subset cell 1 not marked cached")
	}
	if _, ok := got[4]; ok {
		t.Error("precomputed cell 4 outside the subset surfaced anyway")
	}
	for i := 0; i < 3; i++ {
		if want := ref.Results[i/2][i%2]; !reflect.DeepEqual(got[i].Result, want) {
			t.Errorf("cell %d differs from the full run", i)
		}
	}
}
