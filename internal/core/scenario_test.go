package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseScenarioFull(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"configs": [
			{"preset": "XBar/OCM"},
			{"label": "SWMR big-rx", "fabric": "swmr", "mem": "OCM",
			 "params": {"recv_buffer": 32}, "mshrs": 32},
			{"fabric": "hmesh", "mem": "ECM", "hub_latency": 6}
		],
		"workloads": ["Uniform", "FFT"],
		"requests": 1234,
		"seed": 9
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Configs) != 3 || len(sc.Workloads) != 2 || sc.Requests != 1234 || sc.Seed != 9 {
		t.Fatalf("scenario = %+v", sc)
	}
	if sc.Configs[0].Name() != "XBar/OCM" || sc.Configs[1].Name() != "SWMR big-rx" ||
		sc.Configs[2].Name() != "HMesh/ECM" {
		t.Fatalf("names = %s / %s / %s", sc.Configs[0].Name(), sc.Configs[1].Name(), sc.Configs[2].Name())
	}
	if sc.Configs[1].MSHRs != 32 || sc.Configs[1].FabricParams["recv_buffer"] != 32 {
		t.Fatalf("sizing not applied: %+v", sc.Configs[1])
	}
	if sc.Configs[2].HubLatency != 6 || sc.Configs[2].Clusters != 64 {
		t.Fatalf("defaults not filled: %+v", sc.Configs[2])
	}
	if sc.Workloads[1].Name != "FFT" {
		t.Fatalf("workloads = %v", sc.Workloads)
	}
}

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"configs": [{"preset": "LMesh/ECM"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Workloads) != 15 || sc.Requests != 20000 || sc.Seed != 42 {
		t.Fatalf("defaults = %d workloads, %d requests, seed %d", len(sc.Workloads), sc.Requests, sc.Seed)
	}
}

func TestParseScenarioRejections(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"no configs", `{}`, "no configs"},
		{"bad json", `{"configs": [}`, ""},
		{"unknown preset", `{"configs": [{"preset": "Ring/OCM"}]}`, "Ring"},
		{"unknown fabric", `{"configs": [{"fabric": "warp"}]}`, "warp"},
		{"unknown memory", `{"configs": [{"fabric": "xbar", "mem": "DDR"}]}`, "DDR"},
		{"param typo", `{"configs": [{"fabric": "xbar", "params": {"recv_bufer": 4}}]}`, "recv_bufer"},
		{"preset+fabric mix", `{"configs": [{"preset": "XBar/OCM", "fabric": "swmr"}]}`, "mixes"},
		{"unknown workload", `{"configs": [{"preset": "XBar/OCM"}], "workloads": ["Unifrm"]}`, "Unifrm"},
		{"duplicate names", `{"configs": [{"preset": "XBar/OCM"}, {"fabric": "xbar", "params": {"recv_buffer": 4}}]}`, "duplicate"},
		{"bad mesh geometry", `{"configs": [{"fabric": "hmesh", "params": {"width": 5}}]}`, "geometry"},
	}
	for _, c := range cases {
		_, err := ParseScenario([]byte(c.json))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
		// Every scenario rejection is invalid input, and must say so in its
		// type: the server maps *ConfigError to 400, not 500.
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %q is not a *ConfigError", c.name, err)
		}
	}
}

func TestScenarioSweepRuns(t *testing.T) {
	// A JSON-described two-machine matrix runs end to end on the engine and
	// labels its columns with the scenario names.
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(`{
		"configs": [
			{"preset": "XBar/OCM"},
			{"fabric": "swmr", "mem": "OCM"}
		],
		"workloads": ["Uniform"],
		"requests": 400,
		"seed": 3
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	s := sc.Sweep()
	mustSweep(t, s, Workers(2))
	if s.Results[0][0].Config != "XBar/OCM" || s.Results[0][1].Config != "SWMR/OCM" {
		t.Fatalf("columns = %s / %s", s.Results[0][0].Config, s.Results[0][1].Config)
	}
	if s.Results[0][1].NetworkPowerW != 32 {
		t.Errorf("SWMR network power = %v, want 32 W", s.Results[0][1].NetworkPowerW)
	}
	if s.Results[0][1].XBarUtil <= 0 {
		t.Error("SWMR channel utilization not reported through the registry")
	}
	header := s.Figure8().String()
	if !strings.Contains(header, "SWMR/OCM") {
		t.Errorf("Figure 8 header missing SWMR column:\n%s", header)
	}
}

func TestLoadScenarioMissingFile(t *testing.T) {
	if _, err := LoadScenario("/nonexistent/scenario.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
