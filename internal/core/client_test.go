package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"corona/internal/config"
)

// smallSweep is a 5-config x 2-workload matrix, small enough for unit tests
// but wide enough that a mid-sweep cancellation leaves real work undone.
func smallSweep(requests int, seed uint64) *Sweep {
	s := NewSweep(requests, seed)
	s.Workloads = s.Workloads[:2]
	return s
}

func TestClientRunMatchesDirectRun(t *testing.T) {
	spec := quickSpec(1)
	want := mustRun(t, config.Corona(), spec, 1500, 11)
	got, err := NewClient().Run(context.Background(), config.Corona(), spec, 1500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Client.Run differs from core.Run:\n%+v\nvs\n%+v", got, want)
	}
}

func TestClientTypedConfigErrors(t *testing.T) {
	bad := config.Custom("", "warp-drive", config.OCM, nil)
	_, err := NewClient().Run(context.Background(), bad, quickSpec(1), 100, 1)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("unknown fabric: got %v, want *ConfigError", err)
	}
	if ce.Name == "" {
		t.Error("ConfigError.Name empty, want the config's display name")
	}

	if _, err := NewClient().Submit(context.Background(), NewMatrixSweep(
		[]config.System{bad}, AllWorkloads()[:1], 100, 1)); !errors.As(err, &ce) {
		t.Fatalf("Submit with bad config: got %v, want synchronous *ConfigError", err)
	}
	zero := NewSweep(0, 1)
	if _, err := NewClient().Submit(context.Background(), zero); !errors.As(err, &ce) {
		t.Fatalf("Submit with zero requests: got %v, want *ConfigError", err)
	}

	// A canceled run is not a config problem, and must say so in its type.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = NewClient().Run(ctx, config.Corona(), quickSpec(1), 100, 1)
	var cancelErr *CanceledError
	if !errors.As(err, &cancelErr) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: got %v, want *CanceledError wrapping context.Canceled", err)
	}
	if errors.As(err, &ce) {
		t.Fatalf("cancellation misreported as *ConfigError: %v", err)
	}
}

func TestJobStreamsEveryCell(t *testing.T) {
	s := smallSweep(300, 5)
	total := len(s.Configs) * len(s.Workloads)
	job, err := NewClient(WithWorkers(4)).Submit(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for cell := range job.Results() {
		if seen[cell.Index] {
			t.Errorf("cell %d streamed twice", cell.Index)
		}
		seen[cell.Index] = true
		if cell.Row != cell.Index/len(s.Configs) || cell.Col != cell.Index%len(s.Configs) {
			t.Errorf("cell %d has row/col %d/%d", cell.Index, cell.Row, cell.Col)
		}
		if want := s.Workloads[cell.Row].Name; cell.Workload != want {
			t.Errorf("cell %d workload = %q, want %q", cell.Index, cell.Workload, want)
		}
		if cell.Result.Cycles == 0 {
			t.Errorf("cell %d has zero runtime", cell.Index)
		}
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != total {
		t.Fatalf("streamed %d cells, want %d", len(seen), total)
	}
	if done, tot := job.Progress(); done != total || tot != total {
		t.Fatalf("Progress() = %d/%d, want %d/%d", done, tot, total, total)
	}
	// The streamed cells and the barrier-side grid agree: what you consumed
	// incrementally is exactly what Figure tables render.
	ref := smallSweep(300, 5)
	mustSweep(t, ref, Workers(1))
	if sweepTables(job.Sweep()) != sweepTables(ref) {
		t.Fatal("streamed job tables differ from a sequential run")
	}
}

// TestSweepCancelLeavesCacheConsistent is the acceptance-criterion
// cancellation test: cancel a sweep mid-flight, then re-run against the
// same cache — the resumed sweep must complete from cache plus fresh cells
// and render byte-identical tables to an uninterrupted run.
func TestSweepCancelLeavesCacheConsistent(t *testing.T) {
	reference := smallSweep(300, 9)
	mustSweep(t, reference, Workers(1))
	want := sweepTables(reference)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 3
	interrupted := smallSweep(300, 9)
	err := interrupted.Run(ctx, Workers(2), CacheDir(dir), OnProgress(func(p Progress) {
		if p.Done == stopAfter {
			cancel()
		}
	}))
	var cancelErr *CanceledError
	if !errors.As(err, &cancelErr) {
		t.Fatalf("interrupted sweep returned %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
	if cancelErr.Completed < stopAfter || cancelErr.Completed >= cancelErr.Total {
		t.Fatalf("CanceledError reports %d/%d completed, want in [%d, %d)",
			cancelErr.Completed, cancelErr.Total, stopAfter, cancelErr.Total)
	}

	// Resume: completed cells come from cache, the rest simulate fresh, and
	// the tables match the uninterrupted run byte for byte.
	var hits int
	resumed := smallSweep(300, 9)
	mustSweep(t, resumed, Workers(2), CacheDir(dir), OnProgress(func(p Progress) {
		if p.Cached {
			hits++
		}
	}))
	if hits < stopAfter {
		t.Errorf("resumed sweep reused %d cached cells, want >= %d", hits, stopAfter)
	}
	if got := sweepTables(resumed); got != want {
		t.Fatalf("cancelled-then-resumed tables differ from uninterrupted run:\n%s\n--- want ---\n%s", got, want)
	}
}

func TestJobCancelStopsStream(t *testing.T) {
	// A larger matrix so cancellation lands mid-sweep, not after the end.
	s := NewSweep(4000, 13)
	job, err := NewClient(WithWorkers(2)).Submit(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	first := 0
	for range job.Results() {
		first++
		if first == 2 {
			job.Cancel()
		}
	}
	err = job.Wait(context.Background())
	var cancelErr *CanceledError
	if !errors.As(err, &cancelErr) {
		t.Fatalf("canceled job returned %v, want *CanceledError", err)
	}
	if done, total := job.Progress(); done >= total {
		t.Fatalf("job claims %d/%d cells after mid-sweep cancel", done, total)
	}
	if job.Err() == nil {
		t.Fatal("Err() nil after the job finished canceled")
	}
}

func TestJobWaitHonorsWaitContext(t *testing.T) {
	s := NewSweep(30000, 17) // big enough to still be running at the deadline
	job, err := NewClient(WithWorkers(2)).Submit(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		job.Cancel()
		job.Wait(context.Background())
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := job.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under an expired wait-ctx returned %v, want DeadlineExceeded", err)
	}
	if job.Err() != nil {
		t.Fatalf("abandoning a Wait must not fail the job: Err() = %v", job.Err())
	}
}

// TestClientConcurrentSubmissions drives several jobs through one shared
// client at once — the server's usage pattern — and checks each against a
// sequential reference. CI runs this under -race, which is the point.
func TestClientConcurrentSubmissions(t *testing.T) {
	client := NewClient(WithWorkers(2))
	const jobs = 4
	tables := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := smallSweep(300, uint64(100+i))
			job, err := client.Submit(context.Background(), s)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			cells := 0
			for range job.Results() {
				cells++
			}
			if err := job.Wait(context.Background()); err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			if want := len(s.Configs) * len(s.Workloads); cells != want {
				t.Errorf("job %d streamed %d cells, want %d", i, cells, want)
			}
			tables[i] = sweepTables(s)
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		ref := smallSweep(300, uint64(100+i))
		mustSweep(t, ref, Workers(1))
		if tables[i] != sweepTables(ref) {
			t.Errorf("concurrent job %d tables differ from its sequential reference", i)
		}
	}
}
