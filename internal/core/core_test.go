package core

import (
	"context"
	"testing"

	"corona/internal/config"
	"corona/internal/sim"
	"corona/internal/trace"
	"corona/internal/traffic"
)

// quickSpec is a small uniform workload for unit tests.
func quickSpec(demand float64) traffic.Spec {
	return traffic.Spec{Name: "test", Kind: traffic.Uniform, DemandTBs: demand, WriteFrac: 0.3}
}

// mustRun is the test-side shorthand for the context-aware Run: background
// context, fatal on error.
func mustRun(t testing.TB, cfg config.System, spec traffic.Spec, requests int, seed uint64) Result {
	t.Helper()
	res, err := Run(context.Background(), cfg, spec, requests, seed)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", cfg.Name(), spec.Name, err)
	}
	return res
}

// mustSweep runs s to completion with a background context, fatal on error.
func mustSweep(t testing.TB, s *Sweep, opts ...Option) {
	t.Helper()
	if err := s.Run(context.Background(), opts...); err != nil {
		t.Fatalf("Sweep.Run: %v", err)
	}
}

// mustSystem builds a system, fatal on error.
func mustSystem(t testing.TB, cfg config.System) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", cfg.Name(), err)
	}
	return sys
}

func TestRunCompletesAllConfigs(t *testing.T) {
	for _, cfg := range config.Combos() {
		res := mustRun(t, cfg, quickSpec(1), 2000, 42)
		if res.Requests != 2000 {
			t.Fatalf("%s: requests = %d", cfg.Name(), res.Requests)
		}
		if res.Cycles == 0 {
			t.Fatalf("%s: zero runtime", cfg.Name())
		}
		if res.MeanLatencyNs <= 0 {
			t.Fatalf("%s: no latency recorded", cfg.Name())
		}
		if res.AchievedTBs <= 0 {
			t.Fatalf("%s: no bandwidth recorded", cfg.Name())
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, config.Corona(), quickSpec(2), 3000, 7)
	b := mustRun(t, config.Corona(), quickSpec(2), 3000, 7)
	if a.Cycles != b.Cycles || a.MeanLatencyNs != b.MeanLatencyNs || a.NetBytes != b.NetBytes {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
	c := mustRun(t, config.Corona(), quickSpec(2), 3000, 8)
	if a.Cycles == c.Cycles && a.NetBytes == c.NetBytes {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestLowDemandAllConfigsEquivalent(t *testing.T) {
	// A 0.3 TB/s workload fits even LMesh/ECM: all five configs should run
	// it in roughly the same time (speedup ~1), like Barnes et al. in Fig 8.
	spec := quickSpec(0.3)
	spec.LocalFrac = 0.4
	base := mustRun(t, config.Default(config.LMesh, config.ECM), spec, 4000, 3)
	for _, cfg := range config.Combos()[1:] {
		r := mustRun(t, cfg, spec, 4000, 3)
		sp := r.Speedup(base)
		if sp < 0.9 || sp > 1.5 {
			t.Errorf("%s speedup on low-demand workload = %.2f, want ~1", cfg.Name(), sp)
		}
	}
}

func TestHighDemandOrdering(t *testing.T) {
	// Figure 8's robust pairwise orderings on a bandwidth-bound workload:
	// OCM beats ECM on the same mesh, HMesh beats LMesh on the same memory,
	// and XBar/OCM is the fastest of all five. (The paper does not assert a
	// total order: LMesh/OCM vs HMesh/ECM depends on which of network or
	// memory binds first.)
	spec := quickSpec(5)
	res := map[string]Result{}
	for _, cfg := range config.Combos() {
		res[cfg.Name()] = mustRun(t, cfg, spec, 30000, 9)
	}
	faster := func(a, b string) {
		t.Helper()
		if res[a].Cycles >= res[b].Cycles {
			t.Errorf("%s (%d cycles) not faster than %s (%d cycles)",
				a, res[a].Cycles, b, res[b].Cycles)
		}
	}
	faster("HMesh/OCM", "HMesh/ECM")
	faster("HMesh/ECM", "LMesh/ECM")
	faster("HMesh/OCM", "LMesh/OCM")
	for _, other := range []string{"HMesh/OCM", "LMesh/OCM", "HMesh/ECM", "LMesh/ECM"} {
		faster("XBar/OCM", other)
	}
	// LMesh/OCM must be at least as fast as LMesh/ECM (OCM can never hurt).
	if res["LMesh/OCM"].Cycles > res["LMesh/ECM"].Cycles {
		t.Errorf("LMesh/OCM (%d) slower than LMesh/ECM (%d)",
			res["LMesh/OCM"].Cycles, res["LMesh/ECM"].Cycles)
	}
}

func TestECMBandwidthCeiling(t *testing.T) {
	// Saturating uniform traffic on an ECM system cannot exceed ~0.96 TB/s
	// of memory bandwidth (Table 4).
	r := mustRun(t, config.Default(config.HMesh, config.ECM), quickSpec(5), 6000, 5)
	if r.AchievedTBs > 1.1 {
		t.Errorf("ECM achieved %v TB/s, above its 0.96 TB/s ceiling", r.AchievedTBs)
	}
	if r.AchievedTBs < 0.4 {
		t.Errorf("ECM achieved only %v TB/s; should approach its ceiling under load", r.AchievedTBs)
	}
}

func TestHotSpotMemoryLimited(t *testing.T) {
	// Hot Spot channels everything through one controller: OCM gives a big
	// win over ECM, but the crossbar adds little on top (the paper's
	// exceptional case).
	hot := traffic.Spec{Name: "hot", Kind: traffic.HotSpot, DemandTBs: 5, HotTarget: 0}
	ecm := mustRun(t, config.Default(config.HMesh, config.ECM), hot, 3000, 11)
	ocm := mustRun(t, config.Default(config.HMesh, config.OCM), hot, 3000, 11)
	xb := mustRun(t, config.Corona(), hot, 3000, 11)
	if sp := ocm.Speedup(ecm); sp < 3 {
		t.Errorf("OCM over ECM on Hot Spot = %.2f, want large (single-MC bandwidth ratio)", sp)
	}
	if sp := xb.Speedup(ocm); sp > 1.5 {
		t.Errorf("XBar over HMesh on Hot Spot = %.2f, want ~1 (memory-limited)", sp)
	}
	// Achieved bandwidth clamps near one controller's 160 GB/s.
	if xb.AchievedTBs > 0.35 {
		t.Errorf("Hot Spot achieved %v TB/s through one MC, want <= ~0.22", xb.AchievedTBs)
	}
}

func TestLocalTrafficBypassesNetwork(t *testing.T) {
	spec := quickSpec(1)
	spec.LocalFrac = 1.0 // everything cluster-local
	sys := mustSystem(t, config.Corona())
	res, err := NewRunner(sys, spec, 1000, 13).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.NetMessages != 0 {
		t.Fatalf("local-only workload sent %d network messages", res.NetMessages)
	}
	if res.AchievedTBs <= 0 {
		t.Fatal("local traffic should still count as memory bandwidth")
	}
}

func TestXBarLatencyBeatsMesh(t *testing.T) {
	// Uncontended, the crossbar's ~2-cycle transit beats the mesh's 5
	// cycles/hop: mean latency must be lower on XBar/OCM than LMesh/OCM.
	spec := quickSpec(0.5)
	xb := mustRun(t, config.Corona(), spec, 3000, 17)
	lm := mustRun(t, config.Default(config.LMesh, config.OCM), spec, 3000, 17)
	if xb.MeanLatencyNs >= lm.MeanLatencyNs {
		t.Errorf("XBar latency %.1f ns >= LMesh %.1f ns", xb.MeanLatencyNs, lm.MeanLatencyNs)
	}
}

func TestPowerAccounting(t *testing.T) {
	spec := quickSpec(3)
	xb := mustRun(t, config.Corona(), spec, 3000, 19)
	if xb.NetworkPowerW != 26 {
		t.Errorf("crossbar power = %v, want constant 26 W", xb.NetworkPowerW)
	}
	hm := mustRun(t, config.Default(config.HMesh, config.OCM), spec, 3000, 19)
	if hm.NetworkPowerW <= 0 {
		t.Error("mesh dynamic power not recorded")
	}
	if hm.HopTraversals == 0 {
		t.Error("hop traversals not counted")
	}
	if xb.MemoryPowerW <= 0 || hm.MemoryPowerW <= 0 {
		t.Error("memory interconnect power not recorded")
	}
	// ECM memory power must dwarf OCM's at similar traffic.
	em := mustRun(t, config.Default(config.HMesh, config.ECM), spec, 3000, 19)
	if em.MemoryPowerW <= xb.MemoryPowerW {
		t.Errorf("ECM memory power %v W <= OCM %v W at lower bandwidth", em.MemoryPowerW, xb.MemoryPowerW)
	}
}

func TestMSHRBackPressure(t *testing.T) {
	// With tiny MSHRs a saturating workload still completes, just slower.
	cfg := config.Corona()
	cfg.MSHRs = 2
	small := mustRun(t, cfg, quickSpec(0), 2000, 23)
	big := mustRun(t, config.Corona(), quickSpec(0), 2000, 23)
	if small.Cycles <= big.Cycles {
		t.Errorf("2-MSHR run (%d cycles) not slower than 64-MSHR run (%d cycles)",
			small.Cycles, big.Cycles)
	}
}

func TestSweepSmall(t *testing.T) {
	s := NewSweep(400, 1)
	s.Workloads = s.Workloads[:2] // Uniform + Hot Spot only, for speed
	var runs int
	var lastDone int
	mustSweep(t, s, Workers(1), OnProgress(func(p Progress) {
		runs++
		if p.Done != lastDone+1 || p.Total != 10 {
			t.Errorf("progress %d/%d after %d events", p.Done, p.Total, runs)
		}
		lastDone = p.Done
		if p.Cached {
			t.Error("cache hit reported with caching disabled")
		}
	}))
	if runs != 2*5 {
		t.Fatalf("sweep ran %d cells, want 10", runs)
	}
	f8 := s.Figure8().String()
	if len(f8) == 0 {
		t.Fatal("empty Figure 8 table")
	}
	for _, tab := range []string{s.Figure9().String(), s.Figure10().String(), s.Figure11().String()} {
		if len(tab) == 0 {
			t.Fatal("empty figure table")
		}
	}
	sp := s.Speedups(4) // XBar/OCM
	if len(sp) != 2 || sp[0] <= 0 {
		t.Fatalf("speedups = %v", sp)
	}
	a, b := s.GeoMeanSummary(0, 2)
	if a <= 0 || b <= 0 {
		t.Fatalf("geomeans = %v, %v", a, b)
	}
}

func TestMergedMissesCountOnce(t *testing.T) {
	// Force heavy same-line merging: a hot-spot spec with a single address.
	sys := mustSystem(t, config.Corona())
	issued := 0
	for i := 0; i < 10; i++ {
		if sys.Issue(1, 0x40000, false) {
			issued++
		}
	}
	for sys.Completed() < issued {
		if !sys.K.Step() {
			t.Fatalf("deadlock at %d of %d", sys.Completed(), issued)
		}
	}
	// One primary miss, nine merges: one network transaction.
	if sys.NetworkStats().Messages != 2 { // request + response
		t.Errorf("messages = %d, want 2 (merged misses share one transaction)",
			sys.NetworkStats().Messages)
	}
	if sys.Completed() != 10 {
		t.Errorf("completed = %d, want 10", sys.Completed())
	}
}

func TestTraceReplay(t *testing.T) {
	// Build a small trace by hand and replay it on two configurations; the
	// faster machine must finish sooner, and both must complete every record.
	var recs []trace.Record
	rng := sim.NewRand(31)
	for i := 0; i < 2000; i++ {
		dst := rng.Intn(64)
		recs = append(recs, trace.Record{
			Time:   sim.Time(i / 4),
			Thread: uint16(rng.Intn(1024)),
			Addr:   (rng.Uint64()%(1<<20)*64 + uint64(dst)) * 64,
			Write:  rng.Intn(3) == 0,
		})
	}
	// Per-cluster monotonicity: sort is implied by Time being i/4 and thread
	// assignment random — bucket order preserves global order, so fine.
	replay := func(cfg config.System) Result {
		t.Helper()
		sys := mustSystem(t, cfg)
		r, err := NewTraceRunner(sys, recs, 16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rf := replay(config.Corona())
	rs := replay(config.Default(config.LMesh, config.ECM))
	if rf.Requests != 2000 || rs.Requests != 2000 {
		t.Fatalf("replay requests = %d/%d, want 2000", rf.Requests, rs.Requests)
	}
	if rf.Cycles >= rs.Cycles {
		t.Errorf("XBar/OCM replay (%d cycles) not faster than LMesh/ECM (%d)", rf.Cycles, rs.Cycles)
	}
	if rf.Workload != "trace" {
		t.Errorf("workload label = %q, want trace", rf.Workload)
	}
}
