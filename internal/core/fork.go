package core

import (
	"fmt"

	"corona/internal/sim"
	"corona/internal/trace"
	"corona/internal/traffic"
)

// WarmupSnapshot captures a runner and its system at the warmup barrier: a
// fabric-independent mid-run state from which replays under any fabric can
// be forked instead of re-simulating the warmup prefix. One snapshot may
// fork many runners, concurrently (docs/DETERMINISM.md).
type WarmupSnapshot struct {
	sys *SystemSnapshot

	name     string
	requests int
	src      Source // frozen clone; each fork clones it again

	perCluster []int
	pending    []trace.Record
	hasPending []bool
	waiting    []bool
}

// cloneSource deep-copies a miss-stream source's replay position. It reports
// false for source types it cannot clone.
func cloneSource(src Source) (Source, bool) {
	switch s := src.(type) {
	case *traceSource:
		return &traceSource{buckets: append([][]trace.Record(nil), s.buckets...)}, true
	case *traffic.Generator:
		return s.Clone(), true
	}
	return nil, false
}

// Snapshot captures the runner and its system at the current instant (which
// must satisfy the system snapshot contract: network quiescent, no queued
// injections). The runner's replay position — per-cluster remaining counts,
// buffered head records, wake bookkeeping, and the source's stream state —
// is captured alongside the system so a fork resumes mid-stream exactly.
func (r *Runner) Snapshot() (*WarmupSnapshot, error) {
	src, ok := cloneSource(r.src)
	if !ok {
		return nil, fmt.Errorf("core: %T sources cannot be snapshotted", r.src)
	}
	sys, err := r.sys.Snapshot()
	if err != nil {
		return nil, err
	}
	return &WarmupSnapshot{
		sys:        sys,
		name:       r.name,
		requests:   r.requests,
		src:        src,
		perCluster: append([]int(nil), r.perCluster...),
		pending:    append([]trace.Record(nil), r.pending...),
		hasPending: append([]bool(nil), r.hasPending...),
		waiting:    append([]bool(nil), r.waiting...),
	}, nil
}

// ForkRunner restores snap into sys — a freshly built or Reset machine,
// structurally compatible with the snapshot's source but possibly under a
// different fabric — and returns a Runner that continues the replay from the
// barrier. The forked runner's Run produces a Result field-identical to a
// from-scratch run of the same cell (the differential fork-equivalence suite
// pins this).
func ForkRunner(sys *System, snap *WarmupSnapshot) (*Runner, error) {
	src, _ := cloneSource(snap.src) // snapshotted sources always re-clone
	r := &Runner{
		sys:        sys,
		src:        src,
		name:       snap.name,
		requests:   snap.requests,
		perCluster: append([]int(nil), snap.perCluster...),
		pending:    append([]trace.Record(nil), snap.pending...),
		hasPending: append([]bool(nil), snap.hasPending...),
		waiting:    append([]bool(nil), snap.waiting...),
		pumped:     true, // the snapshot was taken after the initial pump
	}
	err := sys.Restore(snap.sys, func(h sim.Handler) sim.Handler {
		if _, ok := h.(*issueWake); ok {
			return (*issueWake)(r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sys.SetMSHRFreeHook(func(cluster int) { r.pump(cluster) })
	return r, nil
}

// RunToBarrier advances the replay to the warmup barrier: it performs the
// initial pump, then dispatches every event with a timestamp strictly below
// barrier, leaving the clock at the last dispatched event. With the barrier
// at WarmupHorizon, no remote miss has issued yet, so the network is still
// quiescent and the runner satisfies the Snapshot contract.
func (r *Runner) RunToBarrier(barrier sim.Time) {
	if !r.pumped {
		for c := 0; c < r.sys.Cfg.Clusters; c++ {
			r.pump(c)
		}
		r.pumped = true
	}
	r.sys.K.RunBefore(barrier)
}

// WarmupHorizon returns the conservative warmup barrier for a materialized
// stream: the earliest timestamp at which any cluster's replay can issue a
// remote (network-visible) miss. Per-cluster streams are time-monotone, so
// every record strictly before the horizon is local and the simulation prefix
// below it is fabric-independent. Zero means some cluster's very first record
// is already remote at time zero — no prefix to share, and callers skip
// forking. A stream with no remote records at all returns the maximum time:
// the whole replay is fabric-independent.
func WarmupHorizon(buckets [][]trace.Record) sim.Time {
	clusters := len(buckets)
	horizon := ^sim.Time(0)
	for c, bucket := range buckets {
		for _, rec := range bucket {
			if traffic.HomeOf(rec.Addr, clusters) != c {
				if rec.Time < horizon {
					horizon = rec.Time
				}
				break
			}
		}
	}
	return horizon
}
