package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"corona/internal/config"
	"corona/internal/sim"
	"corona/internal/traffic"
)

// maxHorizon is WarmupHorizon's "no remote record at all" sentinel: the whole
// replay is fabric-independent.
const maxHorizon = ^sim.Time(0)

// forkFabrics are the four registered fabrics a structural group's snapshot
// must restore under interchangeably.
var forkFabrics = []string{"xbar", "swmr", "hmesh", "lmesh"}

// fabricConfig builds the 64-cluster OCM preset structure on the named
// fabric — all four share one warmupGroupKey, so they fork from one snapshot.
func fabricConfig(fabric string) config.System {
	return config.Custom("", fabric, config.OCM, nil)
}

// localUniformSpec is the forced-fork workload: local enough that every
// cluster's first miss is home-bound (a nonzero warmup barrier), remote
// enough that the replay still exercises the network after the fork. The
// horizon this yields under seed 1 at 800 requests is pinned by
// TestForcedForkSweepDifferential.
func localUniformSpec() traffic.Spec {
	return traffic.Spec{Name: "LocalUniform", Kind: traffic.Uniform,
		DemandTBs: 5, LocalFrac: 0.999, WriteFrac: 0.3}
}

// localTransposeSpec draws a stream with no remote record at all under seed 1
// at 800 requests: WarmupHorizon reports the maximum time, and the donor
// replays the entire cell before snapshotting — the end-state-capture extreme
// of the fork path.
func localTransposeSpec() traffic.Spec {
	return traffic.Spec{Name: "LocalTranspose", Kind: traffic.Transpose,
		DemandTBs: 5, LocalFrac: 0.999, WriteFrac: 0.1}
}

// assertCellsEqual compares two sweeps' Results grids field-exactly (Result
// is a comparable struct, so == is every-field equality).
func assertCellsEqual(t *testing.T, label string, want, got *Sweep) {
	t.Helper()
	for w := range want.Results {
		for c := range want.Results[w] {
			if got.Results[w][c] != want.Results[w][c] {
				t.Errorf("%s: cell (%s on %s) differs:\nwarmup off: %+v\nwarmup on:  %+v",
					label, want.Workloads[w].Name, want.Configs[c].Name(),
					want.Results[w][c], got.Results[w][c])
			}
		}
	}
}

// TestWarmupSweepMatchesNoWarmup is the differential fork-equivalence suite
// over the acceptance matrix: every (config, workload) cell of the 6x15
// matrix must produce a field-exact identical Result with warmup forking on
// and off, sequentially and in parallel, and the rendered figure tables must
// match byte for byte. Warmup(false) is the reference path; Warmup(true) is
// the default the sweep engine actually runs.
func TestWarmupSweepMatchesNoWarmup(t *testing.T) {
	if testing.Short() {
		t.Skip("three 90-cell matrices")
	}
	ref := sixMachineMatrix(300)
	mustSweep(t, ref, Workers(1), Warmup(false))
	want := sweepTables(ref)
	for _, leg := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 8}} {
		warm := sixMachineMatrix(300)
		mustSweep(t, warm, Workers(leg.workers), Warmup(true))
		assertCellsEqual(t, leg.name, ref, warm)
		if sweepTables(warm) != want {
			t.Errorf("%s: warmup-on 6x15 tables differ from warmup-off reference", leg.name)
		}
	}
}

// forcedForkMatrix pairs the two forced-fork workloads with all six machine
// structures. Both rows carry a nonzero warmup barrier, so with warmup on
// every cell but each row's donor genuinely forks from a shared snapshot.
func forcedForkMatrix(requests int) *Sweep {
	configs := append(config.Combos(), config.Custom("", "swmr", config.OCM, nil))
	return NewMatrixSweep(configs,
		[]traffic.Spec{localUniformSpec(), localTransposeSpec()}, requests, 1)
}

// TestForcedForkSweepDifferential drives the sweep engine down the fork path
// for real: it first pins that the two workloads' barriers are nonzero (one
// mid-stream, one at end-of-stream), then asserts warmup-on results are
// field-identical to the warmup-off reference, sequentially and in parallel.
// The paper's fifteen workloads all touch the network at time zero, so this
// synthetic matrix is what actually exercises forking end to end.
func TestForcedForkSweepDifferential(t *testing.T) {
	const requests = 800
	s := forcedForkMatrix(requests)
	horizons := make(map[string]sim.Time)
	for _, spec := range s.Workloads {
		buckets := MaterializeStream(spec, 64, requests, CellSeed(s.Seed, spec.Name))
		horizons[spec.Name] = WarmupHorizon(buckets)
		if horizons[spec.Name] == 0 {
			t.Fatalf("%s: warmup horizon is zero — the fork path would not run; pick a different seed", spec.Name)
		}
	}
	if h := horizons["LocalUniform"]; h == maxHorizon {
		t.Fatalf("LocalUniform: expected a finite mid-stream barrier, got the no-remote sentinel")
	}
	if h := horizons["LocalTranspose"]; h != maxHorizon {
		t.Logf("LocalTranspose: barrier %d (finite); end-of-stream extreme not covered this seed", h)
	}

	ref := forcedForkMatrix(requests)
	mustSweep(t, ref, Workers(1), Warmup(false))
	seqWarm := forcedForkMatrix(requests)
	mustSweep(t, seqWarm, Workers(1), Warmup(true))
	assertCellsEqual(t, "sequential", ref, seqWarm)
	parWarm := forcedForkMatrix(requests)
	mustSweep(t, parWarm, Workers(6), Warmup(true))
	assertCellsEqual(t, "parallel", ref, parWarm)
}

// TestForkCellMatchesScratchAcrossFabrics is the cell-level half of the
// differential suite: one donor (the crossbar machine) replays to the barrier
// and snapshots; the snapshot then forks into a fresh machine of every fabric
// — including fabrics the donor never was — and each forked Run must equal
// that fabric's from-scratch Run on every Result field.
func TestForkCellMatchesScratchAcrossFabrics(t *testing.T) {
	spec := localUniformSpec()
	const requests = 800
	buckets := MaterializeStream(spec, 64, requests, CellSeed(1, spec.Name))
	barrier := WarmupHorizon(buckets)
	if barrier == 0 || barrier == maxHorizon {
		t.Fatalf("want a finite nonzero barrier, got %d", barrier)
	}
	donor, err := NewSystem(fabricConfig("xbar"))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := ReplayRunner(donor, spec.Name, buckets)
	if err != nil {
		t.Fatal(err)
	}
	dr.RunToBarrier(barrier)
	snap, err := dr.Snapshot()
	if err != nil {
		t.Fatalf("snapshot at barrier %d: %v", barrier, err)
	}
	for _, fabric := range forkFabrics {
		cfg := fabricConfig(fabric)
		scratchSys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := ReplayRunner(scratchSys, spec.Name, buckets)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := sr.Run(context.Background())
		if err != nil {
			t.Fatalf("%s scratch: %v", fabric, err)
		}
		forkSys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := ForkRunner(forkSys, snap)
		if err != nil {
			t.Fatalf("%s fork: %v", fabric, err)
		}
		forked, err := fr.Run(context.Background())
		if err != nil {
			t.Fatalf("%s forked run: %v", fabric, err)
		}
		if forked != scratch {
			t.Errorf("%s: forked result differs from scratch:\nscratch: %+v\nforked:  %+v",
				fabric, scratch, forked)
		}
	}
}

// TestSnapshotRandomCutsMatchOracle is the property test behind the snapshot
// contract: under an all-local workload (the network stays quiescent at every
// instant, so any cut satisfies the contract), a run snapshotted after an
// arbitrary seeded-random number of kernel events and forked into a fresh
// machine must finish with exactly the oracle's Result — including Cycles and
// KernelEvents, which pin the restored kernel's (when, seq) dispatch order —
// and the interrupted original must too.
func TestSnapshotRandomCutsMatchOracle(t *testing.T) {
	spec := traffic.Spec{Name: "AllLocal", Kind: traffic.Uniform,
		DemandTBs: 5, LocalFrac: 1, WriteFrac: 0.4}
	cfg := config.Corona()
	const requests = 900
	buckets := MaterializeStream(spec, cfg.Clusters, requests, CellSeed(7, spec.Name))

	oracleSys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	or, err := ReplayRunner(oracleSys, spec.Name, buckets)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := or.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if oracle.KernelEvents < 100 {
		t.Fatalf("oracle dispatched only %d events; cuts would not be interesting", oracle.KernelEvents)
	}

	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 8; trial++ {
		cut := 1 + rng.Intn(int(oracle.KernelEvents)-1)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ReplayRunner(sys, spec.Name, buckets)
		if err != nil {
			t.Fatal(err)
		}
		r.RunToBarrier(0) // initial pump only: no event precedes time zero
		for i := 0; i < cut; i++ {
			if !sys.K.Step() {
				t.Fatalf("trial %d: queue drained after %d of %d events", trial, i, cut)
			}
		}
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatalf("trial %d: snapshot after %d events: %v", trial, cut, err)
		}
		fresh, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := ForkRunner(fresh, snap)
		if err != nil {
			t.Fatalf("trial %d: fork: %v", trial, err)
		}
		forked, err := fr.Run(context.Background())
		if err != nil {
			t.Fatalf("trial %d: forked run: %v", trial, err)
		}
		if forked != oracle {
			t.Errorf("trial %d: fork at event %d diverged from oracle:\noracle: %+v\nforked: %+v",
				trial, cut, oracle, forked)
		}
		cont, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("trial %d: resumed original: %v", trial, err)
		}
		if cont != oracle {
			t.Errorf("trial %d: interrupted original diverged from oracle after event %d:\noracle:  %+v\nresumed: %+v",
				trial, cut, oracle, cont)
		}
	}
}

// TestConcurrentForksShareSnapshotRace extends TestPooledSweepParallelRace to
// the snapshot plane: eight goroutines fork one shared WarmupSnapshot into
// their own machines — two of each fabric — concurrently, the read-only
// sharing the sweep engine relies on when a row's cells fork in parallel.
// Run under -race in CI; each fork must still match its fabric's scratch run.
func TestConcurrentForksShareSnapshotRace(t *testing.T) {
	spec := localUniformSpec()
	const requests = 600
	buckets := MaterializeStream(spec, 64, requests, CellSeed(1, spec.Name))
	barrier := WarmupHorizon(buckets)
	if barrier == 0 {
		t.Fatal("warmup horizon is zero; no snapshot to share")
	}
	donor, err := NewSystem(fabricConfig("xbar"))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := ReplayRunner(donor, spec.Name, buckets)
	if err != nil {
		t.Fatal(err)
	}
	dr.RunToBarrier(barrier)
	snap, err := dr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]Result, len(forkFabrics))
	for _, fabric := range forkFabrics {
		sys, err := NewSystem(fabricConfig(fabric))
		if err != nil {
			t.Fatal(err)
		}
		sr, err := ReplayRunner(sys, spec.Name, buckets)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sr.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want[fabric] = res
	}
	var wg sync.WaitGroup
	for i := 0; i < 2*len(forkFabrics); i++ {
		fabric := forkFabrics[i%len(forkFabrics)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, err := NewSystem(fabricConfig(fabric))
			if err != nil {
				t.Errorf("%s: %v", fabric, err)
				return
			}
			fr, err := ForkRunner(sys, snap)
			if err != nil {
				t.Errorf("%s: fork: %v", fabric, err)
				return
			}
			got, err := fr.Run(context.Background())
			if err != nil {
				t.Errorf("%s: forked run: %v", fabric, err)
				return
			}
			if got != want[fabric] {
				t.Errorf("%s: concurrent fork differs from scratch:\nscratch: %+v\nforked:  %+v",
					fabric, want[fabric], got)
			}
		}()
	}
	wg.Wait()
}
