package core

import (
	"context"
	"testing"

	"corona/internal/config"
	"corona/internal/traffic"
)

// TestMaterializedReplayMatchesGenerator is the row-sharing correctness
// anchor: replaying a materialized stream must produce exactly the Result
// the lazily-driven generator produces, for every field, on both an optical
// and an electrical machine. This is what lets Sweep.Run materialize a
// row's traffic once and share it across the row's configurations without
// moving a single golden byte.
func TestMaterializedReplayMatchesGenerator(t *testing.T) {
	spec := traffic.Spec{Name: "Uniform", Kind: traffic.Uniform, DemandTBs: 5, WriteFrac: 0.3}
	const requests, seed = 1500, 77
	for _, cfg := range []config.System{config.Corona(), config.Default(config.HMesh, config.ECM)} {
		live, err := Run(context.Background(), cfg, spec, requests, seed)
		if err != nil {
			t.Fatal(err)
		}
		buckets := MaterializeStream(spec, cfg.Clusters, requests, seed)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ReplayRunner(sys, spec.Name, buckets)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if live != replayed {
			t.Errorf("%s: replayed result differs from generator-driven:\nlive:   %+v\nreplay: %+v",
				cfg.Name(), live, replayed)
		}
	}
}

// TestReplayRunnerRejectsMismatchedClusters: a materialized stream only
// replays on a machine with the same endpoint count.
func TestReplayRunnerRejectsMismatchedClusters(t *testing.T) {
	spec := traffic.Spec{Name: "Uniform", Kind: traffic.Uniform, DemandTBs: 5}
	buckets := MaterializeStream(spec, 16, 160, 1)
	sys, err := NewSystem(config.Corona()) // 64 clusters
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayRunner(sys, spec.Name, buckets); err == nil {
		t.Fatal("ReplayRunner accepted a 16-cluster stream on a 64-cluster machine")
	}
}

// TestPooledSweepParallelRace is the -race coverage for the two shared-
// nothing/shared-read structures the pooled data plane introduced: each
// cell's networks recycle messages through per-network free lists (private
// to the cell's kernel goroutine), while all cells of a row replay one
// materialized trace through read-only slice headers. Eight workers over a
// mesh+crossbar matrix hammer both, and the tables must still match the
// sequential run byte for byte.
func TestPooledSweepParallelRace(t *testing.T) {
	mk := func() *Sweep {
		return NewMatrixSweep(
			[]config.System{config.Default(config.HMesh, config.ECM), config.Corona()},
			AllWorkloads()[:4], 600, 42)
	}
	seq := mk()
	mustSweep(t, seq, Workers(1))
	want := sweepTables(seq)
	for i := 0; i < 3; i++ {
		par := mk()
		mustSweep(t, par, Workers(8))
		if sweepTables(par) != want {
			t.Fatalf("run %d: parallel pooled sweep diverged from sequential", i)
		}
	}
}
