package core

import (
	"context"
	"errors"
	"testing"

	"corona/internal/config"
	"corona/internal/faultinject"
	"corona/internal/traffic"
)

// tinyMatrix is a 2-config x 2-workload matrix for the containment tests.
func tinyMatrix(requests int, seed uint64) *Sweep {
	return NewMatrixSweep(config.Combos()[:2],
		[]traffic.Spec{quickSpec(1), quickSpec(2)}, requests, seed)
}

// TestCellPanicFailsSweepNotProcess arms the cell fault point in panic mode
// and asserts the panic surfaces as Sweep.Run's *PanicError — not as an
// unwound goroutine — and that the engine works normally afterwards.
func TestCellPanicFailsSweepNotProcess(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("core.cell.run:panic@1"); err != nil {
		t.Fatal(err)
	}
	s := tinyMatrix(200, 7)
	err := s.Run(context.Background(), Workers(2))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Sweep.Run = %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	faultinject.Disarm()

	// The same process serves the next sweep untouched.
	s2 := tinyMatrix(200, 7)
	mustSweep(t, s2, Workers(2))
	if s2.Results[0][0].Cycles == 0 {
		t.Fatal("sweep after contained panic produced empty results")
	}
}

// TestCellFaultErrorFailsSweep is the error-mode twin: an injected cell
// error fails the sweep with the fault, not a cancellation.
func TestCellFaultErrorFailsSweep(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("core.cell.run:error@2"); err != nil {
		t.Fatal(err)
	}
	err := tinyMatrix(200, 7).Run(context.Background(), Workers(1))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Sweep.Run = %v, want the injected fault", err)
	}
}

// TestRunCellsPanicContained covers the RunCells path (Client.Compare) with
// the same barrier.
func TestRunCellsPanicContained(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("core.cell.run:panic@1"); err != nil {
		t.Fatal(err)
	}
	cells := []Cell{
		{Config: config.Corona(), Spec: quickSpec(1), Requests: 200, Seed: 3},
		{Config: config.Corona(), Spec: quickSpec(1), Requests: 200, Seed: 4},
	}
	_, err := RunCells(context.Background(), cells, 2)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunCells = %v, want *PanicError", err)
	}
}

// TestPrecomputedCellsSkipSimulation seeds a sweep with one already-known
// cell and asserts it surfaces verbatim (marked cached), while the rest
// simulate to exactly what an unseeded run produces — the property the
// server's restart-resume path is built on.
func TestPrecomputedCellsSkipSimulation(t *testing.T) {
	ref := tinyMatrix(300, 9)
	mustSweep(t, ref, Workers(1))

	// A sentinel result that simulation could never produce.
	fake := Result{Config: "sentinel", Workload: "sentinel", Requests: -1, Cycles: 123456789}
	resumed := tinyMatrix(300, 9)
	var cells []CellResult
	mustSweep(t, resumed, Workers(2), Precomputed(map[int]Result{1: fake}),
		onCell(func(c CellResult) { cells = append(cells, c) }))

	for w := range ref.Results {
		for c := range ref.Results[w] {
			idx := w*len(ref.Configs) + c
			if idx == 1 {
				if resumed.Results[w][c] != fake {
					t.Fatalf("precomputed cell %d = %+v, want the seeded sentinel", idx, resumed.Results[w][c])
				}
				continue
			}
			if resumed.Results[w][c] != ref.Results[w][c] {
				t.Fatalf("cell %d differs from the unseeded run:\n%+v\nvs\n%+v",
					idx, resumed.Results[w][c], ref.Results[w][c])
			}
		}
	}
	for _, cell := range cells {
		if cell.Index == 1 && !cell.Cached {
			t.Error("precomputed cell streamed with Cached=false")
		}
	}
}
