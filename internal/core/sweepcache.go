package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"corona/internal/config"
	"corona/internal/traffic"
)

// cacheSchema versions the cached-entry layout. Bump it whenever Result or
// config.System gains, loses, or reinterprets a field, so stale entries
// miss instead of resurfacing with wrong shapes.
//
// Schema 2: Result gained KernelEvents (time-wheel kernel PR).
// Schema 3: config.System became declarative (Fabric name + FabricParams
// map replacing the NetworkKind enum and typed overrides); keys now
// fingerprint every sizing parameter, so two custom configs sharing a
// fabric name can never collide.
const cacheSchema = 3

// cacheEntry is the on-disk form of one sweep cell. The fingerprint — the
// full JSON of the cell's parameters, not just its labels — is stored
// alongside the result and re-checked on load, so both a filename-hash
// collision and a parameter change behind an unchanged name degrade to a
// cache miss rather than a wrong table.
type cacheEntry struct {
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Result      Result `json:"result"`
}

// resultCache is a best-effort on-disk cache of completed sweep cells, keyed
// by (config, workload, requests, seed). Every I/O failure — unreadable
// entry, full disk, unwritable directory — degrades to simulating the cell
// again; the cache can never change results, only skip redundant work.
// Result round-trips through encoding/json exactly (integers are integers,
// float64 rendering is shortest-round-trip), so cached sweeps reproduce live
// sweeps byte-for-byte.
type resultCache struct {
	dir string
}

// openCache returns a cache rooted at dir, creating it if needed, or nil
// (meaning "no cache") when dir is empty or cannot be created.
func openCache(dir string) *resultCache {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	return &resultCache{dir: dir}
}

// fingerprint serializes everything a cell result is a function of — the
// full configuration and workload structs (including ablation overrides,
// which JSON dereferences), not just their display names — plus the request
// count and derived seed. A caller who mutates Sweep.Configs or
// Sweep.Workloads behind an unchanged name therefore misses instead of
// reloading the old parameters' result. What the fingerprint cannot see is
// the simulator code itself: bump cacheSchema (or clear the directory) when
// a model change alters results.
func cellFingerprint(cfg config.System, spec traffic.Spec, requests int, seed uint64) (string, bool) {
	cj, err1 := json.Marshal(cfg)
	sj, err2 := json.Marshal(spec)
	if err1 != nil || err2 != nil {
		return "", false
	}
	return fmt.Sprintf("%d\x00%s\x00%s\x00%d\x00%d", cacheSchema, cj, sj, requests, seed), true
}

func (c *resultCache) path(fingerprint string) string {
	h := sha256.Sum256([]byte(fingerprint))
	return filepath.Join(c.dir, "cell-"+hex.EncodeToString(h[:12])+".json")
}

// load returns the cached result for the cell, if a valid entry exists. A
// corrupted or truncated entry — a torn write from a killed process, disk
// rot, a stray editor — is treated as a miss and evicted so it cannot keep
// costing a failed parse on every sweep; it can never fail the sweep
// itself, which simply re-simulates the cell and rewrites the entry.
func (c *resultCache) load(cfg config.System, spec traffic.Spec, requests int, seed uint64) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	fp, ok := cellFingerprint(cfg, spec, requests, seed)
	if !ok {
		return Result{}, false
	}
	path := c.path(fp)
	raw, err := os.ReadFile(path)
	if err != nil {
		return Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		os.Remove(path)
		slog.Warn("core: evicting corrupted sweep-cache entry",
			"path", path, "bytes", len(raw), "err", err)
		return Result{}, false
	}
	if e.Schema != cacheSchema || e.Fingerprint != fp {
		// Structurally valid but stale or hash-colliding: an ordinary miss.
		return Result{}, false
	}
	return e.Result, true
}

// store writes the cell's result atomically (temp file + rename), so a
// concurrent or crashed writer can never leave a half-written entry behind.
func (c *resultCache) store(cfg config.System, spec traffic.Spec, requests int, seed uint64, r Result) {
	if c == nil {
		return
	}
	fp, ok := cellFingerprint(cfg, spec, requests, seed)
	if !ok {
		return
	}
	raw, err := json.Marshal(cacheEntry{Schema: cacheSchema, Fingerprint: fp, Result: r})
	if err != nil {
		return
	}
	dst := c.path(fp)
	tmp, err := os.CreateTemp(c.dir, "cell-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), dst) != nil {
		os.Remove(tmp.Name())
	}
}
