package core

import "fmt"

// ConfigError marks invalid configuration or scenario input: an unknown
// fabric or preset name, a rejected fabric parameter, a malformed scenario
// file, a trace record that maps outside the machine. It is the typed form
// of everything NewSystem and the scenario loader used to panic (or
// log.Fatal) over, so callers branch with
//
//	var ce *core.ConfigError
//	if errors.As(err, &ce) { ... }  // caller bug: fix the input
//
// and servers map it to a 4xx status instead of a crash. The message comes
// from the wrapped error, which already names the offending input.
type ConfigError struct {
	// Name identifies the rejected input: a configuration's display name, a
	// scenario entry ("config 2"), or "trace" for trace-replay input.
	Name string
	Err  error
}

func (e *ConfigError) Error() string { return e.Err.Error() }

func (e *ConfigError) Unwrap() error { return e.Err }

// CanceledError reports a run stopped early by context cancellation, with
// how far it got: completed requests for a single simulation, completed
// cells for a sweep. It wraps the context's error, so
// errors.Is(err, context.Canceled) (or context.DeadlineExceeded) holds and
// callers distinguish "asked to stop" from a genuine failure. Sweep cells
// that finished before the cancellation keep their results (and their cache
// entries — see sweepcache.go); only in-flight work is lost.
type CanceledError struct {
	Completed int
	Total     int
	// Err is the triggering context error: context.Canceled or
	// context.DeadlineExceeded.
	Err error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: canceled after %d of %d completed: %v", e.Completed, e.Total, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// PanicError reports a panic captured inside one sweep cell's simulation.
// The engine converts cell panics into this error instead of letting them
// unwind the worker pool: the panicking cell fails its own sweep (Run
// returns the PanicError), while the process — and, behind corona-serve,
// every sibling job — keeps running. Stack is the panicking goroutine's
// stack as captured at recovery, for the log line; Error keeps to the
// panic value so status payloads stay small.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: cell panicked: %v", e.Value)
}
