package core

import (
	"context"
	"fmt"

	"corona/internal/config"
	"corona/internal/power"
	"corona/internal/sim"
	"corona/internal/trace"
	"corona/internal/traffic"
)

// Result is the outcome of one (configuration, workload) simulation — one
// bar in each of Figures 8-11.
type Result struct {
	Config   string
	Workload string
	Requests int

	// Cycles is the simulated runtime; Figure 8 normalizes its inverse.
	Cycles sim.Time
	// AchievedTBs is Figure 9's rate of communication with main memory.
	AchievedTBs float64
	// MeanLatencyNs and P99LatencyNs report Figure 10's L2 miss latency.
	MeanLatencyNs float64
	P99LatencyNs  float64
	// NetworkPowerW is Figure 11's on-chip network power; MemoryPowerW is
	// the off-stack memory interconnect power.
	NetworkPowerW float64
	MemoryPowerW  float64

	// Diagnostics.
	NetMessages   uint64
	NetBytes      uint64
	HopTraversals uint64
	// XBarUtil is mean data-channel occupancy for crossbar-family fabrics
	// (those whose registry descriptor reports a channel utilization);
	// mesh-style fabrics leave it zero.
	XBarUtil float64
	// KernelEvents is the number of discrete events the simulation kernel
	// dispatched to produce this cell — the denominator for simulator
	// throughput (events/sec) reporting.
	KernelEvents uint64
}

// Speedup returns other's runtime divided by r's (how much faster r is).
func (r Result) Speedup(baseline Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// Source produces per-cluster miss streams; traffic.Generator is the
// synthetic implementation, and traceSource replays recorded traces.
type Source interface {
	Next(cluster int) trace.Record
}

// Runner replays a workload against a System until a fixed number of network
// requests (L2 misses) completes, as the paper does ("We ran each simulation
// for a predetermined number of network requests").
type Runner struct {
	sys      *System
	src      Source
	name     string
	requests int

	perCluster []int          // remaining issues per cluster
	pending    []trace.Record // head record per cluster, valid when hasPending
	hasPending []bool
	waiting    []bool // a timed wake-up is scheduled

	// pumped records that the initial per-cluster pump has run, so Run does
	// not repeat it after RunToBarrier or on a runner forked mid-replay.
	pumped bool
}

// NewRunner builds a runner issuing `requests` synthetic misses split evenly
// across clusters.
func NewRunner(sys *System, spec traffic.Spec, requests int, seed uint64) *Runner {
	r := newRunner(sys, traffic.NewGenerator(spec, sys.Cfg.Clusters, seed), spec.Name, requests)
	base := requests / sys.Cfg.Clusters
	extra := requests % sys.Cfg.Clusters
	for c := range r.perCluster {
		r.perCluster[c] = base
		if c < extra {
			r.perCluster[c]++
		}
	}
	return r
}

func newRunner(sys *System, src Source, name string, requests int) *Runner {
	r := &Runner{
		sys:        sys,
		src:        src,
		name:       name,
		requests:   requests,
		perCluster: make([]int, sys.Cfg.Clusters),
		pending:    make([]trace.Record, sys.Cfg.Clusters),
		hasPending: make([]bool, sys.Cfg.Clusters),
		waiting:    make([]bool, sys.Cfg.Clusters),
	}
	sys.SetMSHRFreeHook(func(cluster int) { r.pump(cluster) })
	return r
}

// traceSource replays pre-recorded, per-cluster bucketed records.
type traceSource struct {
	buckets [][]trace.Record
}

func (t *traceSource) Next(cluster int) trace.Record {
	rec := t.buckets[cluster][0]
	t.buckets[cluster] = t.buckets[cluster][1:]
	return rec
}

// NewTraceRunner builds a runner that replays recs (annotated L2 misses,
// e.g. from a trace file or the cluster trace engine) on sys. Records are
// assigned to clusters by thread id with threadsPerCluster threads each, and
// must be per-cluster time-monotone. A record whose thread maps outside the
// machine is invalid input and returns a *ConfigError.
func NewTraceRunner(sys *System, recs []trace.Record, threadsPerCluster int) (*Runner, error) {
	if threadsPerCluster <= 0 {
		return nil, &ConfigError{Name: "trace",
			Err: fmt.Errorf("core: threads-per-cluster must be positive, got %d", threadsPerCluster)}
	}
	buckets := make([][]trace.Record, sys.Cfg.Clusters)
	for _, rec := range recs {
		c := rec.Cluster(threadsPerCluster)
		if c < 0 || c >= sys.Cfg.Clusters {
			return nil, &ConfigError{Name: "trace",
				Err: fmt.Errorf("core: trace thread %d maps to cluster %d, out of range [0,%d)",
					rec.Thread, c, sys.Cfg.Clusters)}
		}
		buckets[c] = append(buckets[c], rec)
	}
	r := newRunner(sys, &traceSource{buckets: buckets}, "trace", len(recs))
	for c := range r.perCluster {
		r.perCluster[c] = len(buckets[c])
	}
	return r, nil
}

// MaterializeStream generates the complete per-cluster miss stream a
// NewRunner with the same (spec, clusters, requests, seed) would draw
// lazily, bucketed by cluster — the paper's "capture the miss stream once"
// step. The generator's per-cluster state is independent (each cluster has
// its own RNG), so eager per-cluster generation yields exactly the records
// the simulation-driven interleaving would, and the buckets can be replayed
// against any number of configurations (ReplayRunner) — the sweep engine
// materializes each row once and shares it, read-only, across the row's
// cells and workers.
func MaterializeStream(spec traffic.Spec, clusters, requests int, seed uint64) [][]trace.Record {
	g := traffic.NewGenerator(spec, clusters, seed)
	buckets := make([][]trace.Record, clusters)
	base, extra := requests/clusters, requests%clusters
	for c := range buckets {
		n := base
		if c < extra {
			n++
		}
		bucket := make([]trace.Record, n)
		for i := range bucket {
			bucket[i] = g.Next(c)
		}
		buckets[c] = bucket
	}
	return buckets
}

// ReplayRunner builds a runner that replays a materialized per-cluster
// stream (MaterializeStream) on sys under the workload's display name. The
// runner takes only fresh slice headers over the shared buckets, never
// writing through them, so one materialized row is safely replayed by
// concurrent cells.
func ReplayRunner(sys *System, name string, buckets [][]trace.Record) (*Runner, error) {
	if len(buckets) != sys.Cfg.Clusters {
		return nil, &ConfigError{Name: "trace", Err: fmt.Errorf(
			"core: materialized stream has %d cluster buckets, system %d", len(buckets), sys.Cfg.Clusters)}
	}
	total := 0
	heads := make([][]trace.Record, len(buckets))
	for c, b := range buckets {
		heads[c] = b
		total += len(b)
	}
	r := newRunner(sys, &traceSource{buckets: heads}, name, total)
	for c := range r.perCluster {
		r.perCluster[c] = len(heads[c])
	}
	return r, nil
}

// issueWake is the runner's typed timed wake-up: the cluster's next record
// lies in the future, so issue resumes when the clock reaches it.
type issueWake Runner

func (e *issueWake) OnEvent(_ sim.Time, data uint64) {
	r := (*Runner)(e)
	r.waiting[data] = false
	r.pump(int(data))
}

// pump issues as many of cluster's trace records as timestamps and MSHR
// capacity allow.
func (r *Runner) pump(cluster int) {
	for r.perCluster[cluster] > 0 {
		if !r.hasPending[cluster] {
			r.pending[cluster] = r.src.Next(cluster)
			r.hasPending[cluster] = true
		}
		rec := &r.pending[cluster]
		if rec.Time > r.sys.K.Now() {
			if !r.waiting[cluster] {
				r.waiting[cluster] = true
				r.sys.K.AtEvent(rec.Time, (*issueWake)(r), uint64(cluster))
			}
			return
		}
		if !r.sys.Issue(cluster, rec.Addr, rec.Write) {
			return // MSHR full; the free hook re-pumps
		}
		r.hasPending[cluster] = false
		r.perCluster[cluster]--
	}
}

// cancelCheckEvents is how many kernel events the replay loop dispatches
// between context checks. The typed kernel sustains tens of millions of
// events per second, so a few thousand events bound cancellation latency to
// well under a millisecond while keeping the check off the per-event path.
const cancelCheckEvents = 4096

// Run executes the replay to completion and returns the Result. The replay
// loop checks ctx between batches of kernel events, so a canceled or expired
// context stops a long cell promptly with a *CanceledError recording how far
// it got. A deadlock (event queue empty before all requests retire) is
// reported as an error rather than a panic: behind a server it is a request
// failure, not a process failure.
func (r *Runner) Run(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, &CanceledError{Completed: 0, Total: r.requests, Err: err}
	}
	if !r.pumped {
		for c := 0; c < r.sys.Cfg.Clusters; c++ {
			r.pump(c)
		}
		r.pumped = true
	}
	done := ctx.Done()
	sinceCheck := 0
	for r.sys.Completed() < r.requests {
		if !r.sys.K.Step() {
			return Result{}, fmt.Errorf("core: deadlock with %d of %d requests completed",
				r.sys.Completed(), r.requests)
		}
		if done == nil {
			continue
		}
		if sinceCheck++; sinceCheck >= cancelCheckEvents {
			sinceCheck = 0
			select {
			case <-done:
				return Result{}, &CanceledError{
					Completed: r.sys.Completed(), Total: r.requests, Err: ctx.Err()}
			default:
			}
		}
	}
	return r.collect(), nil
}

func (r *Runner) collect() Result {
	sys := r.sys
	elapsed := sys.K.Now()
	ns := sys.NetworkStats()
	res := Result{
		Config:        sys.Cfg.Name(),
		Workload:      r.name,
		Requests:      r.requests,
		Cycles:        elapsed,
		MeanLatencyNs: sys.Latency.Mean(),
		P99LatencyNs:  sys.Latency.Percentile(99),
		NetMessages:   ns.Messages,
		NetBytes:      ns.Bytes,
		HopTraversals: ns.HopTraversals,
		KernelEvents:  sys.K.Executed(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.AchievedTBs = float64(sys.WireBytes) / sec / 1e12
	}
	if sys.fabric.PowerW != nil {
		res.NetworkPowerW = sys.fabric.PowerW(ns, elapsed)
	}
	if sys.fabric.Utilization != nil {
		res.XBarUtil = sys.fabric.Utilization(sys.Net, elapsed)
	}
	memBytes := sys.MemoryBytesMoved()
	if sys.Cfg.Mem == config.OCM {
		res.MemoryPowerW = power.OCMInterconnectW(memBytes, elapsed)
	} else {
		res.MemoryPowerW = power.ECMInterconnectW(memBytes, elapsed)
	}
	return res
}

// Run is the one-call convenience: build a system for cfg, replay spec for
// `requests` misses with the given seed, and return the Result. Invalid
// configurations surface as *ConfigError, cancellation as *CanceledError.
func Run(ctx context.Context, cfg config.System, spec traffic.Spec, requests int, seed uint64) (Result, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	return NewRunner(sys, spec, requests, seed).Run(ctx)
}
