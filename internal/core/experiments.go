package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"corona/internal/config"
	"corona/internal/faultinject"
	"corona/internal/noc"
	"corona/internal/splash"
	"corona/internal/stats"
	"corona/internal/trace"
	"corona/internal/traffic"
)

// Sweep runs every workload on every configuration. NewSweep prepares the
// paper's 5x15 matrix behind Figures 8-11; NewMatrixSweep accepts any
// configs x workloads matrix — six machines, one machine at twenty
// parameter points, or anything a JSON scenario (LoadScenario) describes —
// with the same engine, determinism guarantee, and on-disk cache.
type Sweep struct {
	Configs   []config.System
	Workloads []traffic.Spec
	// Requests per run (the paper's Table 3 counts are scaled down by the
	// caller for tractable wall-clock time; shapes are stable well below the
	// paper's 10^6).
	Requests int
	Seed     uint64

	// Results[w][c] is the run of Workloads[w] on Configs[c].
	Results [][]Result
}

// AllWorkloads returns the paper's 15 workloads: 4 synthetics then 11
// SPLASH-2 models, in figure order.
func AllWorkloads() []traffic.Spec {
	specs := traffic.Synthetic()
	specs = append(specs, splash.Specs()...)
	return specs
}

// NewSweep prepares the paper's full 5-configuration x 15-workload matrix.
func NewSweep(requests int, seed uint64) *Sweep {
	return NewMatrixSweep(config.Combos(), AllWorkloads(), requests, seed)
}

// NewMatrixSweep prepares an arbitrary configs x workloads matrix. The
// first configuration whose Name is "LMesh/ECM" is the speedup baseline;
// when absent, the first configuration is (so order configs baseline-first
// for custom matrices).
func NewMatrixSweep(configs []config.System, workloads []traffic.Spec, requests int, seed uint64) *Sweep {
	return &Sweep{
		Configs:   configs,
		Workloads: workloads,
		Requests:  requests,
		Seed:      seed,
	}
}

// Progress describes one completed cell of a running sweep. Callbacks are
// serialized by the engine and arrive with Done strictly increasing, so a
// consumer can render "Done/Total" without its own locking, regardless of
// how many workers are simulating.
type Progress struct {
	Done, Total int    // cells finished so far (including this one) / cells this run executes (the matrix, or the Subset size)
	Workload    string // the cell that just finished
	Config      string
	Cached      bool // satisfied from the on-disk cache, not simulated
}

// CellResult is one completed sweep cell as delivered to a streaming
// consumer (Job.Results, the server's NDJSON endpoint): the cell's position
// in the matrix, whether it came from the cache, and the full Result. Cells
// arrive in completion order, not matrix order — Index places them.
type CellResult struct {
	// Index is the cell's linear position, Row*len(Configs)+Col.
	Index int `json:"index"`
	// Row and Col index Sweep.Workloads and Sweep.Configs respectively.
	Row int `json:"row"`
	Col int `json:"col"`

	Workload string `json:"workload"`
	Config   string `json:"config"`
	// Cached marks a cell satisfied from the on-disk cache, not simulated.
	Cached bool   `json:"cached"`
	Result Result `json:"result"`
}

// runConfig collects the sweep-execution options.
type runConfig struct {
	workers     int
	cacheDir    string
	progress    func(Progress)
	onCell      func(CellResult)
	noWarmup    bool
	precomputed map[int]Result
	subset      []int
}

// Option configures one Sweep.Run invocation.
type Option func(*runConfig)

// Workers bounds the sweep's worker pool. n <= 0 selects GOMAXPROCS (the
// default); Workers(1) is the sequential debugging path and the reference
// against which parallel determinism is asserted.
func Workers(n int) Option { return func(rc *runConfig) { rc.workers = n } }

// CacheDir enables the on-disk result cache rooted at dir: cells whose
// (config, workload, requests, seed) key already has a valid entry are
// loaded instead of simulated, so re-runs only pay for invalidated cells.
// An empty dir (the default) disables caching.
func CacheDir(dir string) Option { return func(rc *runConfig) { rc.cacheDir = dir } }

// OnProgress registers a callback invoked after each cell completes. The
// engine serializes invocations, so fn needs no locking of its own.
func OnProgress(fn func(Progress)) Option { return func(rc *runConfig) { rc.progress = fn } }

// Warmup toggles warmup forking (on by default). When on, the first cell of
// each row's structural group replays the workload's fabric-independent
// prefix — everything before the first remote miss can issue — once, snapshots
// the machine at that barrier, and every other cell of the group forks from
// the snapshot instead of re-simulating the prefix. Results are byte-identical
// either way (the differential fork-equivalence suite pins this); Warmup(false)
// is the reference path that byte-identity is asserted against.
func Warmup(on bool) Option { return func(rc *runConfig) { rc.noWarmup = !on } }

// Precomputed seeds the run with cells that are already known, keyed by
// linear index (Row*len(Configs)+Col). Those cells skip simulation entirely
// and surface through Results/OnProgress/onCell with Cached=true, exactly
// like an on-disk cache hit — the resume path corona-serve uses to re-run
// only the cells a crashed campaign had not durably recorded. Deterministic
// seeding (CellSeed) guarantees the freshly simulated remainder is
// byte-identical to what an uninterrupted run would have produced.
func Precomputed(cells map[int]Result) Option {
	return func(rc *runConfig) { rc.precomputed = cells }
}

// Subset restricts the run to the given linear cell indices
// (Row*len(Configs)+Col): only those cells simulate, fill Results, and
// surface through OnProgress/onCell — the shard-subset entry a fleet worker
// executes when a coordinator hands it one slice of a campaign's matrix.
// Because every cell is independent and self-seeded (CellSeed), a subset
// cell's Result is byte-identical to the same cell of a full run, at any
// worker count — which is what lets a coordinator scatter a matrix across
// nodes and merge the shards back into a single-node-identical stream.
// Indices out of range, duplicated, or an explicitly empty set are rejected
// with a *ConfigError before anything simulates. A nil subset (the default)
// runs the whole matrix.
func Subset(indices []int) Option {
	return func(rc *runConfig) { rc.subset = indices }
}

// onCell registers the streaming-consumer callback (Job.Results). Like
// OnProgress it is serialized by the engine; unlike OnProgress it carries
// the full Result, so a consumer can render cells as shards finish instead
// of waiting for the matrix barrier.
func onCell(fn func(CellResult)) Option { return func(rc *runConfig) { rc.onCell = fn } }

// rowStreams coordinates one sweep row's shared traffic: the workload's
// miss stream is materialized once (lazily, by the first cell of the row
// that actually simulates) and replayed read-only by every configuration in
// the row — the paper's own methodology, which replays one captured miss
// stream against many interconnects, and the reason CellSeed derives seeds
// from the workload alone. Rows whose configurations disagree on cluster
// count (possible in custom scenarios) materialize one stream per distinct
// count, since the streams genuinely differ. The buffer is dropped once the
// last cell of the row has finished, bounding a sweep's resident streams to
// roughly the rows its workers currently occupy.
type rowStreams struct {
	mu         sync.Mutex
	byClusters map[int][][]trace.Record
	warm       map[string]*warmupShared
	remaining  int
}

// warmupShared is one row's shared warmup snapshot for one structural group
// of configurations (same cluster count, MSHR capacity, hub latency, and
// memory config — the parameters a snapshot restore requires to match; the
// fabric is deliberately excluded). The first cell of the group to arrive
// computes the snapshot under the once; the rest fork from it. A nil snap
// after the once means the group has nothing to share (barrier at time zero,
// or the snapshot failed) and cells replay from scratch.
type warmupShared struct {
	once sync.Once
	snap *WarmupSnapshot
}

// acquire returns the row's materialized stream for a machine of `clusters`
// endpoints, generating it on first use. Concurrent cells of the row block
// here rather than duplicate the generation work.
func (r *rowStreams) acquire(spec traffic.Spec, clusters, requests int, seed uint64) [][]trace.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byClusters[clusters]; ok {
		return s
	}
	if r.byClusters == nil {
		r.byClusters = make(map[int][][]trace.Record)
	}
	s := MaterializeStream(spec, clusters, requests, seed)
	r.byClusters[clusters] = s
	return s
}

// warmup returns the row's shared warmup state for one structural group,
// creating it on first use.
func (r *rowStreams) warmup(key string) *warmupShared {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.warm == nil {
		r.warm = make(map[string]*warmupShared)
	}
	ws := r.warm[key]
	if ws == nil {
		ws = &warmupShared{}
		r.warm[key] = ws
	}
	return ws
}

// release records one finished cell; the last one frees the row's streams
// and warmup snapshots.
func (r *rowStreams) release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.remaining--; r.remaining == 0 {
		r.byClusters = nil
		r.warm = nil
	}
}

// systemPool recycles built machines across a sweep's cells, one free list
// per configuration column. A column's systems are structurally identical, so
// get pops one and Resets it to construction state (falling back to a fresh
// build if the fabric cannot reset in place); put parks only systems whose
// fabric supports reset. Pooling kills the per-cell construction garbage that
// previously dominated sweep allocation.
type systemPool struct {
	mu   sync.Mutex
	free [][]*System
}

func newSystemPool(columns int) *systemPool {
	return &systemPool{free: make([][]*System, columns)}
}

func (p *systemPool) get(col int, cfg config.System) (*System, error) {
	p.mu.Lock()
	var sys *System
	if n := len(p.free[col]); n > 0 {
		sys = p.free[col][n-1]
		p.free[col][n-1] = nil
		p.free[col] = p.free[col][:n-1]
	}
	p.mu.Unlock()
	if sys != nil && sys.Reset() == nil {
		return sys, nil
	}
	return NewSystem(cfg)
}

func (p *systemPool) put(col int, sys *System) {
	if sys == nil {
		return
	}
	if _, ok := sys.Net.(noc.Resetter); !ok {
		return
	}
	p.mu.Lock()
	p.free[col] = append(p.free[col], sys)
	p.mu.Unlock()
}

// warmupGroupKey names the structural group a configuration's cells share a
// warmup snapshot within: the parameters System.Restore requires to match.
// The fabric is excluded — restoring one group's snapshot under different
// fabrics is the point of warmup forking.
func warmupGroupKey(sys *System) string {
	return fmt.Sprintf("%d/%d/%d/%+v", sys.Cfg.Clusters, sys.Cfg.MSHRs, sys.Cfg.HubLatency, sys.Cfg.MemConfig())
}

// warmupSnap returns the row's shared warmup snapshot for sys's structural
// group, computing it on first use by replaying the fabric-independent prefix
// on sys itself (the donor) up to the warmup barrier and snapshotting there.
// A nil snapshot means there is nothing to share — the barrier is at time
// zero, or capturing failed — and the caller replays from scratch; dirty
// reports that sys advanced past construction state without yielding a
// snapshot and must be reset before that scratch replay.
func (s *Sweep) warmupSnap(sys *System, name string, row *rowStreams, buckets [][]trace.Record) (snap *WarmupSnapshot, dirty bool) {
	ws := row.warmup(warmupGroupKey(sys))
	ws.once.Do(func() {
		barrier := WarmupHorizon(buckets)
		if barrier == 0 {
			return
		}
		r, err := ReplayRunner(sys, name, buckets)
		if err != nil {
			return
		}
		r.RunToBarrier(barrier)
		captured, err := r.Snapshot()
		if err != nil {
			dirty = true
			return
		}
		ws.snap = captured
	})
	return ws.snap, dirty
}

// runCellSafe wraps runCell in a panic barrier and the chaos suite's cell
// fault point. A panic anywhere in the cell's simulation — a model bug, a
// corrupt snapshot, an injected fault — becomes a *PanicError that fails
// this sweep only: the worker pool, the process, and (behind corona-serve)
// every other job keep running.
func (s *Sweep) runCellSafe(ctx context.Context, cfg config.System, spec traffic.Spec, row *rowStreams, seed uint64, pool *systemPool, col int, noWarmup bool) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Fire("core.cell.run"); err != nil {
		return Result{}, err
	}
	return s.runCell(ctx, cfg, spec, row, seed, pool, col, noWarmup)
}

// runCell simulates one sweep cell by replaying the row's shared stream on a
// pooled (or freshly built) machine. With warmup on, the cell forks from its
// structural group's shared barrier snapshot instead of replaying the
// fabric-independent prefix; every fallback path below lands on the scratch
// replay, so a cell can never fail because forking was unavailable.
func (s *Sweep) runCell(ctx context.Context, cfg config.System, spec traffic.Spec, row *rowStreams, seed uint64, pool *systemPool, col int, noWarmup bool) (Result, error) {
	sys, err := pool.get(col, cfg)
	if err != nil {
		return Result{}, err
	}
	defer func() { pool.put(col, sys) }()
	buckets := row.acquire(spec, sys.Cfg.Clusters, s.Requests, seed)
	if !noWarmup {
		snap, dirty := s.warmupSnap(sys, spec.Name, row, buckets)
		if snap != nil {
			if fr, err := ForkRunner(sys, snap); err == nil {
				return fr.Run(ctx)
			}
			dirty = true // a failed restore leaves the kernel reset, not the system
		}
		if dirty && sys.Reset() != nil {
			if sys, err = NewSystem(cfg); err != nil {
				return Result{}, err
			}
		}
	}
	r, err := ReplayRunner(sys, spec.Name, buckets)
	if err != nil {
		return Result{}, err
	}
	return r.Run(ctx)
}

// Run executes the matrix on a bounded worker pool (GOMAXPROCS workers by
// default — pass Workers(1) for the sequential path). Each cell runs at a
// seed derived by CellSeed, so the filled Results grid is identical for
// every worker count and completion order; see docs/DETERMINISM.md. Cells
// in a row replay one shared, materialized traffic stream (rowStreams)
// instead of regenerating the workload per configuration.
//
// Invalid configurations are rejected up front with a *ConfigError, before
// any cell simulates. When ctx is canceled mid-sweep, in-flight cells stop
// at their next kernel checkpoint, the pool drains, and Run returns a
// *CanceledError recording how many cells completed; finished cells keep
// their Results entries and their (atomically written) cache entries, so a
// re-run with the same CacheDir completes the matrix from cache with
// byte-identical tables. Any other cell failure cancels the remaining cells
// and is returned as-is.
func (s *Sweep) Run(ctx context.Context, opts ...Option) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	if err := s.validate(); err != nil {
		return err
	}
	nc := len(s.Configs)
	total := nc * len(s.Workloads)
	order, err := subsetOrder(rc.subset, total)
	if err != nil {
		return err
	}
	s.Results = make([][]Result, len(s.Workloads))
	for w := range s.Workloads {
		s.Results[w] = make([]Result, nc)
	}

	cache := openCache(rc.cacheDir)
	pool := newSystemPool(nc)
	rows := make([]*rowStreams, len(s.Workloads))
	for w := range rows {
		rows[w] = &rowStreams{remaining: nc}
	}
	n := total
	if order != nil {
		// A subset run touches only its own cells: rows release their shared
		// stream once the subset's cells of that row finish, and rows with no
		// subset cells never materialize at all.
		n = len(order)
		for w := range rows {
			rows[w].remaining = 0
		}
		for _, i := range order {
			rows[i/nc].remaining++
		}
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex // serializes the callbacks and their counter
		done     int
		firstErr error
	)
	NewPool(rc.workers).Run(runCtx, n, func(k int) {
		i := k
		if order != nil {
			i = order[k]
		}
		w, c := i/nc, i%nc
		defer rows[w].release()
		cfg, spec := s.Configs[c], s.Workloads[w]
		seed := CellSeed(s.Seed, spec.Name)
		res, cached := rc.precomputed[i]
		if !cached {
			res, cached = cache.load(cfg, spec, s.Requests, seed)
		}
		if !cached {
			var err error
			res, err = s.runCellSafe(runCtx, cfg, spec, rows[w], seed, pool, c, rc.noWarmup)
			if err != nil {
				mu.Lock()
				// Cancellations are either the outer ctx (reported below) or
				// fallout from an earlier failure — never the root cause.
				if firstErr == nil && !isCanceled(err) {
					firstErr = err
				}
				mu.Unlock()
				cancel()
				return
			}
			cache.store(cfg, spec, s.Requests, seed, res)
		}
		s.Results[w][c] = res
		mu.Lock()
		done++
		if rc.progress != nil {
			rc.progress(Progress{Done: done, Total: n,
				Workload: spec.Name, Config: cfg.Name(), Cached: cached})
		}
		if rc.onCell != nil {
			rc.onCell(CellResult{Index: i, Row: w, Col: c,
				Workload: spec.Name, Config: cfg.Name(), Cached: cached, Result: res})
		}
		mu.Unlock()
	})
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return &CanceledError{Completed: done, Total: n, Err: err}
	}
	return nil
}

// subsetOrder validates and canonicalizes a Subset option against the matrix
// size: a sorted copy of the indices for a subset run, nil for a full one.
// Out-of-range or duplicate indices — and an explicitly empty subset — are
// caller mistakes, rejected as *ConfigError before any cell simulates.
func subsetOrder(subset []int, total int) ([]int, error) {
	if subset == nil {
		return nil, nil
	}
	if len(subset) == 0 {
		return nil, &ConfigError{Name: "subset", Err: fmt.Errorf("core: Subset selects no cells")}
	}
	order := make([]int, len(subset))
	copy(order, subset)
	sort.Ints(order)
	for k, i := range order {
		if i < 0 || i >= total {
			return nil, &ConfigError{Name: "subset", Err: fmt.Errorf("core: Subset index %d outside the %d-cell matrix", i, total)}
		}
		if k > 0 && order[k-1] == i {
			return nil, &ConfigError{Name: "subset", Err: fmt.Errorf("core: Subset index %d duplicated", i)}
		}
	}
	return order, nil
}

// validate pre-flights the matrix: every configuration must resolve against
// the registry and the request count must be positive. It is the single
// rule set behind both Sweep.Run's up-front rejection and Client.Submit's
// synchronous one — the two can never diverge.
func (s *Sweep) validate() error {
	for _, cfg := range s.Configs {
		if err := cfg.Validate(); err != nil {
			return &ConfigError{Name: cfg.Name(), Err: err}
		}
	}
	if s.Requests <= 0 {
		return &ConfigError{Name: "sweep", Err: fmt.Errorf("core: requests per cell must be positive, got %d", s.Requests)}
	}
	return nil
}

// BaselineName returns the display name of the speedup-1 reference column.
func (s *Sweep) BaselineName() string { return s.Configs[s.baselineIndex()].Name() }

// baselineIndex locates LMesh/ECM, the speedup-1 reference, falling back
// to the first configuration for matrices without the paper's baseline.
func (s *Sweep) baselineIndex() int {
	for i, c := range s.Configs {
		if c.Name() == "LMesh/ECM" {
			return i
		}
	}
	return 0
}

func (s *Sweep) header() []string {
	h := []string{"Benchmark"}
	for _, c := range s.Configs {
		h = append(h, c.Name())
	}
	return h
}

func (s *Sweep) table(cell func(Result, Result) string) *stats.Table {
	t := stats.NewTable(s.header()...)
	base := s.baselineIndex()
	for w := range s.Workloads {
		row := []string{s.Workloads[w].Name}
		for c := range s.Configs {
			row = append(row, cell(s.Results[w][c], s.Results[w][base]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure8 renders normalized speedup over LMesh/ECM.
func (s *Sweep) Figure8() *stats.Table {
	return s.table(func(r, base Result) string {
		return fmt.Sprintf("%.2f", r.Speedup(base))
	})
}

// Figure9 renders achieved memory bandwidth in TB/s.
func (s *Sweep) Figure9() *stats.Table {
	return s.table(func(r, _ Result) string {
		return fmt.Sprintf("%.2f", r.AchievedTBs)
	})
}

// Figure10 renders average L2 miss latency in ns.
func (s *Sweep) Figure10() *stats.Table {
	return s.table(func(r, _ Result) string {
		return fmt.Sprintf("%.0f", r.MeanLatencyNs)
	})
}

// Figure11 renders on-chip network power in watts.
func (s *Sweep) Figure11() *stats.Table {
	return s.table(func(r, _ Result) string {
		return fmt.Sprintf("%.1f", r.NetworkPowerW)
	})
}

// Speedups returns the per-workload speedups of configuration c over the
// baseline, in workload order.
func (s *Sweep) Speedups(c int) []float64 {
	base := s.baselineIndex()
	out := make([]float64, len(s.Workloads))
	for w := range s.Workloads {
		out[w] = s.Results[w][c].Speedup(s.Results[w][base])
	}
	return out
}

// configIndex finds a configuration by name, or -1.
func (s *Sweep) configIndex(name string) int {
	for i, c := range s.Configs {
		if c.Name() == name {
			return i
		}
	}
	return -1
}

// GeoMeanSummary computes the paper's two headline geometric means over a
// workload index range [lo, hi): the OCM-over-ECM gain on an HMesh, and the
// further crossbar-over-HMesh gain on OCM. The paper reports 3.28 and 2.36
// for the synthetics ([0,4)) and 1.80 and 1.44 for SPLASH-2 ([4,15)).
func (s *Sweep) GeoMeanSummary(lo, hi int) (ocmOverEcm, xbarOverHMesh float64) {
	he := s.configIndex("HMesh/ECM")
	ho := s.configIndex("HMesh/OCM")
	xo := s.configIndex("XBar/OCM")
	if he < 0 || ho < 0 || xo < 0 {
		return 0, 0
	}
	var a, b []float64
	for w := lo; w < hi && w < len(s.Workloads); w++ {
		a = append(a, s.Results[w][ho].Speedup(s.Results[w][he]))
		b = append(b, s.Results[w][xo].Speedup(s.Results[w][ho]))
	}
	return stats.GeoMean(a), stats.GeoMean(b)
}
