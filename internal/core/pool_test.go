package core

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"corona/internal/config"
)

func TestPoolRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]int32, n)
		NewPool(workers).Run(context.Background(), n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(-3).Workers() = %d, want GOMAXPROCS", got)
	}
}

func TestPoolStaticSharding(t *testing.T) {
	// Job i must be claimed by shard i mod W, and each shard must see its
	// jobs in increasing order.
	// Shard k runs its residue class k, k+w, k+2w... strictly in order, so
	// the arrival order recorded per class must be increasing.
	const n, w = 40, 4
	var mu sync.Mutex
	perShard := map[int][]int{}
	NewPool(w).Run(context.Background(), n, func(i int) {
		mu.Lock()
		perShard[i%w] = append(perShard[i%w], i)
		mu.Unlock()
	})
	for shard, jobs := range perShard {
		for k := 1; k < len(jobs); k++ {
			if jobs[k] <= jobs[k-1] {
				t.Fatalf("shard %d saw jobs out of order: %v", shard, jobs)
			}
		}
		if len(jobs) != n/w {
			t.Fatalf("shard %d ran %d jobs, want %d", shard, len(jobs), n/w)
		}
	}
}

func TestPoolPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("recovered %v, want the worker's panic value", r)
		}
	}()
	NewPool(4).Run(context.Background(), 16, func(i int) {
		if i == 5 {
			panic("boom: simulated deadlock")
		}
	})
}

func TestCellSeedDistinctAndStable(t *testing.T) {
	// Every workload must get its own seed (distinct traffic per figure
	// row), and the derivation must be stable across calls.
	seen := map[uint64]string{}
	for _, spec := range AllWorkloads() {
		s := CellSeed(42, spec.Name)
		if s == 0 {
			t.Fatalf("zero derived seed for %s", spec.Name)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %s and %s", spec.Name, prev)
		}
		seen[s] = spec.Name
		if s != CellSeed(42, spec.Name) {
			t.Fatal("CellSeed not stable")
		}
	}
}

func TestSweepSharesSeedAcrossRow(t *testing.T) {
	// Within one figure row, all five configurations must face the same
	// derived seed — speedup columns compare machines under identical
	// offered traffic, exactly as a direct same-seed Run pair would.
	spec := AllWorkloads()[0]
	s := NewSweep(600, 42)
	s.Workloads = s.Workloads[:1]
	mustSweep(t, s, Workers(4))
	want := mustRun(t, config.Corona(), spec, 600, CellSeed(42, spec.Name))
	got := s.Results[0][len(s.Configs)-1] // XBar/OCM column
	if got != want {
		t.Fatalf("sweep cell differs from direct run at the derived seed:\n%+v\nvs\n%+v", got, want)
	}
}

// sweepTables renders all four figure tables as one string, the byte-exact
// artifact the determinism guarantee is stated over.
func sweepTables(s *Sweep) string {
	return s.Figure8().String() + s.Figure9().String() +
		s.Figure10().String() + s.Figure11().String()
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	// The headline guarantee (docs/DETERMINISM.md): Workers(1) and
	// Workers(N) produce byte-identical Figure 8-11 tables. A trimmed
	// 3-workload matrix keeps the test fast; the full-matrix check runs in
	// the benchmark suite.
	trim := func() *Sweep {
		s := NewSweep(500, 42)
		s.Workloads = s.Workloads[:3]
		return s
	}
	seq := trim()
	mustSweep(t, seq, Workers(1))
	for _, workers := range []int{0, 2, 8} {
		par := trim()
		mustSweep(t, par, Workers(workers))
		if got, want := sweepTables(par), sweepTables(seq); got != want {
			t.Fatalf("Workers(%d) tables differ from sequential:\n%s\n--- want ---\n%s",
				workers, got, want)
		}
	}
}

func TestSweepCache(t *testing.T) {
	dir := t.TempDir()
	run := func() (*Sweep, int, int) {
		s := NewSweep(300, 7)
		s.Workloads = s.Workloads[:2]
		var hits, misses int
		mustSweep(t, s, CacheDir(dir), OnProgress(func(p Progress) {
			if p.Cached {
				hits++
			} else {
				misses++
			}
		}))
		return s, hits, misses
	}

	first, hits, misses := run()
	if hits != 0 || misses != 10 {
		t.Fatalf("cold cache: %d hits / %d misses, want 0/10", hits, misses)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "cell-*.json"))
	if err != nil || len(entries) != 10 {
		t.Fatalf("cache holds %d entries (err=%v), want 10", len(entries), err)
	}

	second, hits, misses := run()
	if hits != 10 || misses != 0 {
		t.Fatalf("warm cache: %d hits / %d misses, want 10/0", hits, misses)
	}
	if sweepTables(second) != sweepTables(first) {
		t.Fatal("cached sweep tables differ from the live run")
	}

	// A different seed must invalidate every cell, not reuse entries.
	s3 := NewSweep(300, 8)
	s3.Workloads = s3.Workloads[:2]
	var reused int
	mustSweep(t, s3, CacheDir(dir), OnProgress(func(p Progress) {
		if p.Cached {
			reused++
		}
	}))
	if reused != 0 {
		t.Fatalf("changed seed reused %d cached cells", reused)
	}

	// Corrupt entries degrade to misses, never to wrong results.
	for _, e := range entries {
		if err := os.WriteFile(e, []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	repaired, hits, _ := run()
	if hits != 0 {
		t.Fatalf("corrupt cache produced %d hits", hits)
	}
	if sweepTables(repaired) != sweepTables(first) {
		t.Fatal("repaired sweep differs from original")
	}
}

func TestSweepCacheInvalidatedByParameters(t *testing.T) {
	// The cache key fingerprints the full config and workload structs, so
	// changing a parameter behind an unchanged display name must miss
	// instead of resurfacing the old parameters' result.
	dir := t.TempDir()
	run := func(demand float64, mshrs int) (hits int) {
		s := NewSweep(300, 7)
		s.Workloads = s.Workloads[:1]
		s.Workloads[0].DemandTBs = demand
		for i := range s.Configs {
			s.Configs[i].MSHRs = mshrs
		}
		mustSweep(t, s, CacheDir(dir), OnProgress(func(p Progress) {
			if p.Cached {
				hits++
			}
		}))
		return hits
	}
	if h := run(2, 64); h != 0 {
		t.Fatalf("cold cache: %d hits", h)
	}
	if h := run(2, 64); h != 5 {
		t.Fatalf("warm cache: %d hits, want 5", h)
	}
	if h := run(3, 64); h != 0 {
		t.Fatalf("changed workload demand (same name) reused %d cached cells", h)
	}
	if h := run(2, 16); h != 0 {
		t.Fatalf("changed config MSHRs (same name) reused %d cached cells", h)
	}
}

func TestRunCellsOrderAndSeeds(t *testing.T) {
	spec := quickSpec(1)
	cells := []Cell{
		{Config: config.Corona(), Spec: spec, Requests: 800, Seed: 3},
		{Config: config.Default(config.LMesh, config.ECM), Spec: spec, Requests: 800, Seed: 3},
		{Config: config.Corona(), Spec: spec, Requests: 800, Seed: 4},
	}
	par, err := RunCells(context.Background(), cells, 3)
	if err != nil {
		t.Fatal(err)
	}
	seqr, err := RunCells(context.Background(), cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if par[i] != seqr[i] {
			t.Fatalf("cell %d differs between parallel and sequential", i)
		}
		if par[i].Config != cells[i].Config.Name() {
			t.Fatalf("cell %d result out of order: got %s", i, par[i].Config)
		}
	}
	if par[0].Cycles == par[2].Cycles && par[0].NetBytes == par[2].NetBytes {
		t.Fatal("different seeds produced identical cells (suspicious)")
	}
}
