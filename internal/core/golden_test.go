package core

import (
	"context"
	"os"
	"testing"

	"corona/internal/config"
)

// goldenTables renders the four figure tables with their CLI headings — the
// byte-exact artifact testdata/golden_figures.txt captures.
func goldenTables(s *Sweep) string {
	return "Figure 8: Normalized Speedup (over LMesh/ECM)\n" + s.Figure8().String() +
		"\nFigure 9: Achieved Bandwidth (TB/s)\n" + s.Figure9().String() +
		"\nFigure 10: Average L2 Miss Latency (ns)\n" + s.Figure10().String() +
		"\nFigure 11: On-chip Network Power (W)\n" + s.Figure11().String()
}

// TestGoldenFigureTables guards the refactor-safety criterion: the five
// preset machines must render byte-identical Figure 8-11 tables to the
// build that generated testdata/golden_figures.txt (captured before the
// fabric-registry refactor). Any model change that legitimately moves the
// numbers must regenerate the golden — and bump the sweep cache schema —
// in the same commit, with the shift called out in the PR.
//
// The sweep runs through the Client/Job submission path — streamed cells
// and all — so the golden also pins the new API to the old bytes.
func TestGoldenFigureTables(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_figures.txt")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSweep(500, 1)
	job, err := NewClient().Submit(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for cell := range job.Results() {
		if cell.Result.Cycles == 0 {
			t.Errorf("streamed cell %d (%s on %s) has zero runtime", cell.Index, cell.Workload, cell.Config)
		}
		streamed++
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if streamed != 75 {
		t.Fatalf("streamed %d cells, want 75", streamed)
	}
	got := goldenTables(job.Sweep())
	if got != string(want) {
		t.Fatalf("preset figure tables diverged from the pre-refactor golden.\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}

// sixMachineMatrix is the acceptance-criterion matrix: the paper's five
// presets plus the SWMR/OCM variant, over all fifteen workloads.
func sixMachineMatrix(requests int) *Sweep {
	configs := append(config.Combos(), config.Custom("", "swmr", config.OCM, nil))
	return NewMatrixSweep(configs, AllWorkloads(), requests, 42)
}

// TestMatrixSweepSixConfigsDeterministic runs the 6x15 matrix sequentially
// and at several worker counts and asserts byte-identical tables — the
// arbitrary-matrix generalization of the 5x15 determinism guarantee. The
// parallel legs go through Client.Submit, so the streaming path is held to
// the same guarantee as the blocking one.
func TestMatrixSweepSixConfigsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("90-cell matrix")
	}
	seq := sixMachineMatrix(300)
	mustSweep(t, seq, Workers(1))
	if got := len(seq.Results[0]); got != 6 {
		t.Fatalf("matrix has %d config columns, want 6", got)
	}
	want := sweepTables(seq)
	for _, workers := range []int{0, 3, 8} {
		par := sixMachineMatrix(300)
		job, err := NewClient(WithWorkers(workers)).Submit(context.Background(), par)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if sweepTables(par) != want {
			t.Fatalf("Workers(%d) 6x15 tables differ from sequential", workers)
		}
	}
	// The SWMR column must be populated and distinct from XBar's: same
	// photonic bandwidth, different arbitration and queueing structure.
	var swmrDiffers bool
	for w := range seq.Workloads {
		xb, sw := seq.Results[w][4], seq.Results[w][5]
		if sw.Cycles == 0 || sw.Config != "SWMR/OCM" {
			t.Fatalf("SWMR cell %d empty or mislabelled: %+v", w, sw)
		}
		if sw.Cycles != xb.Cycles {
			swmrDiffers = true
		}
	}
	if !swmrDiffers {
		t.Error("SWMR column identical to XBar on every workload (fabric seam suspicious)")
	}
}

// TestSweepCacheDistinguishesParams is the cache-key collision regression:
// two custom configs sharing a fabric (and thus nearly the same name-level
// identity) must occupy distinct cache entries, because the key fingerprints
// the full parameter set, not the display names.
func TestSweepCacheDistinguishesParams(t *testing.T) {
	dir := t.TempDir()
	run := func(recvBuffer int) (*Sweep, int) {
		cfg := config.Custom("Tuned", "swmr", config.OCM,
			map[string]int{"recv_buffer": recvBuffer})
		s := NewMatrixSweep([]config.System{cfg}, AllWorkloads()[:1], 300, 7)
		hits := 0
		mustSweep(t, s, CacheDir(dir), OnProgress(func(p Progress) {
			if p.Cached {
				hits++
			}
		}))
		return s, hits
	}
	small, h := run(2)
	if h != 0 {
		t.Fatalf("cold cache: %d hits", h)
	}
	big, h := run(16)
	if h != 0 {
		t.Fatalf("same label, different recv_buffer: %d cache hits (collision!)", h)
	}
	if small.Results[0][0] == big.Results[0][0] {
		t.Fatal("2-credit and 16-credit runs produced identical results (param not applied)")
	}
	if _, h = run(2); h != 1 {
		t.Fatalf("warm re-run of the 2-credit config: %d hits, want 1", h)
	}
	again, _ := run(2)
	if again.Results[0][0] != small.Results[0][0] {
		t.Fatal("cached result differs from the live 2-credit run")
	}
}
