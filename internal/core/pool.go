package core

import (
	"context"
	"errors"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"

	"corona/internal/config"
	"corona/internal/faultinject"
	"corona/internal/traffic"
)

// Pool executes independent jobs over a bounded set of workers with
// deterministic static sharding: job i is always claimed by shard i mod W.
// Because every job in this package is an independent, self-seeded
// simulation, the assignment only affects wall-clock time — never results —
// but keeping it static makes scheduling reproducible too (a given shard
// always executes the same cells in the same order, which is useful when
// profiling or bisecting a single worker's workload).
type Pool struct {
	workers int
}

// NewPool returns a pool of n workers. n <= 0 selects GOMAXPROCS, the
// default for sweep runs; NewPool(1) degenerates to the sequential path,
// kept for debugging and as the determinism reference.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes job(0) .. job(n-1) across the pool and returns when all have
// finished or ctx is done. Shard k runs jobs k, k+W, k+2W, ... in increasing
// order; once ctx is canceled, shards stop claiming new jobs and the pool
// drains — already-running jobs finish (or observe the cancellation
// themselves) before Run returns, so no job is ever abandoned mid-flight on
// a live goroutine. A nil ctx means "never canceled". A panic in any job is
// captured and re-raised on the caller's goroutine once the workers drain.
func (p *Pool) Run(ctx context.Context, n int, job func(i int)) {
	if ctx == nil {
		ctx = context.Background()
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			job(i)
		}
		return
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for i := k; i < n; i += w {
				if ctx.Err() != nil {
					return
				}
				job(i)
			}
		}(k)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// CellSeed derives the RNG seed for a sweep cell from the sweep's base seed
// and the cell's workload: base ^ FNV-1a(workload name). Deriving seeds up
// front — rather than threading one RNG through the matrix — is what makes
// sweep results independent of worker count and completion order; deriving
// from the workload alone (never the configuration) keeps every machine in
// a figure row facing the identical offered traffic stream, which the
// paper's speedup comparisons require. See docs/DETERMINISM.md. The zero
// seed is remapped because the underlying xorshift generator has an
// all-zeros fixed point.
func CellSeed(base uint64, workloadName string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(workloadName))
	s := base ^ h.Sum64()
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return s
}

// Cell is one independent unit of sweep work: a workload replayed on a
// configuration for a fixed number of requests at an explicit seed.
type Cell struct {
	Config   config.System
	Spec     traffic.Spec
	Requests int
	Seed     uint64
}

// RunCells simulates every cell on a pool of `workers` (<= 0 for GOMAXPROCS)
// and returns results in cell order. Seeds are taken from the cells as given
// — callers comparing configurations under identical traffic pass the same
// seed everywhere; Sweep.Run derives per-cell seeds via CellSeed instead.
// The first cell failure cancels the remaining cells and is returned
// (*ConfigError for invalid input); a done ctx yields a *CanceledError.
func RunCells(ctx context.Context, cells []Cell, workers int) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]Result, len(cells))
	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	NewPool(workers).Run(runCtx, len(cells), func(i int) {
		cl := cells[i]
		res, err := runCellContained(runCtx, cl)
		if err != nil {
			mu.Lock()
			// A cancellation here is either the outer ctx (reported below) or
			// the fallout of an earlier cell's failure — never the root cause.
			if firstErr == nil && !isCanceled(err) {
				firstErr = err
			}
			mu.Unlock()
			cancel()
			return
		}
		out[i] = res
		mu.Lock()
		done++
		mu.Unlock()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Completed: done, Total: len(cells), Err: err}
	}
	return out, nil
}

// runCellContained runs one independent cell behind a panic barrier, so a
// panicking simulation fails its own RunCells call (as a *PanicError) rather
// than unwinding the worker pool and the process. Sweep.Run has the same
// barrier in runCellSafe.
func runCellContained(ctx context.Context, cl Cell) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	//lint:allow faultpoint runCellContained and Sweep.runCellSafe are alternative runners — a process drives cells through exactly one, so hit ordinals stay well-defined
	if err := faultinject.Fire("core.cell.run"); err != nil {
		return Result{}, err
	}
	return Run(ctx, cl.Config, cl.Spec, cl.Requests, cl.Seed)
}

// isCanceled reports whether err is a context cancellation or deadline,
// directly or wrapped (CanceledError unwraps to the context error).
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
