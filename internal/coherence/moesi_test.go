package coherence

import (
	"testing"
	"testing/quick"

	"corona/internal/sim"
)

func mustOK(t *testing.T, p *Protocol) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestColdReadGrantsExclusive(t *testing.T) {
	p := New(4, Transport{})
	p.Read(1, 0x100)
	if st := p.StateOf(1, 0x100); st != Exclusive {
		t.Fatalf("state = %v, want E", st)
	}
	if p.Stats().DataFromMemory != 1 {
		t.Error("cold read should fetch from memory")
	}
	mustOK(t, p)
}

func TestReadSharing(t *testing.T) {
	p := New(4, Transport{})
	p.Read(0, 0x40)
	p.Read(1, 0x40) // owner E -> S, requester S
	if p.StateOf(0, 0x40) != Shared || p.StateOf(1, 0x40) != Shared {
		t.Fatalf("states = %v/%v, want S/S", p.StateOf(0, 0x40), p.StateOf(1, 0x40))
	}
	if p.Stats().CacheToCacheForwards != 1 {
		t.Error("E owner should forward data cache-to-cache")
	}
	mustOK(t, p)
}

func TestDirtyOwnerForwardsAndStaysOwned(t *testing.T) {
	p := New(4, Transport{})
	p.Write(2, 0x80) // M at 2 (cold write miss fetches from memory once)
	memReadsBefore := p.Stats().DataFromMemory
	p.Read(3, 0x80)
	if p.StateOf(2, 0x80) != Owned {
		t.Fatalf("previous M holder = %v, want O", p.StateOf(2, 0x80))
	}
	if p.StateOf(3, 0x80) != Shared {
		t.Fatalf("reader = %v, want S", p.StateOf(3, 0x80))
	}
	// The forward itself must not have touched memory.
	if p.Stats().DataFromMemory != memReadsBefore {
		t.Error("dirty forward should not read memory")
	}
	mustOK(t, p)
}

func TestWriteInvalidatesSharers(t *testing.T) {
	p := New(8, Transport{})
	line := uint64(0x200)
	p.Read(0, line)
	for n := 1; n < 6; n++ {
		p.Read(n, line)
	}
	p.Write(6, line)
	for n := 0; n < 6; n++ {
		if st := p.StateOf(n, line); st != Invalid {
			t.Fatalf("node %d state = %v after invalidation, want I", n, st)
		}
	}
	if p.StateOf(6, line) != Modified {
		t.Fatalf("writer = %v, want M", p.StateOf(6, line))
	}
	if p.Stats().Invalidations != 6 {
		t.Errorf("Invalidations = %d, want 6", p.Stats().Invalidations)
	}
	mustOK(t, p)
}

func TestSilentEToMUpgrade(t *testing.T) {
	p := New(4, Transport{})
	p.Read(1, 0x40) // E
	before := p.Stats().UnicastMessages
	p.Write(1, 0x40)
	if p.StateOf(1, 0x40) != Modified {
		t.Fatal("E->M upgrade failed")
	}
	if p.Stats().UnicastMessages != before {
		t.Error("silent upgrade sent messages")
	}
	mustOK(t, p)
}

func TestBroadcastThreshold(t *testing.T) {
	p := New(16, Transport{})
	p.BroadcastThreshold = 3
	line := uint64(0x1000)
	// 2 sharers: below threshold -> unicast invalidates.
	p.Read(0, line)
	p.Read(1, line)
	p.Write(2, line)
	if p.Stats().BroadcastMessages != 0 {
		t.Fatal("small sharer pool should not broadcast")
	}
	// 8 sharers: broadcast.
	for n := 0; n < 8; n++ {
		p.Read(n, line)
	}
	p.Write(9, line)
	if p.Stats().BroadcastMessages != 1 {
		t.Fatalf("BroadcastMessages = %d, want 1", p.Stats().BroadcastMessages)
	}
	mustOK(t, p)
}

func TestUnicastVsBroadcastMessageSavings(t *testing.T) {
	// The motivation for the bus (Section 3.2.2): invalidating a wide sharer
	// pool takes one broadcast instead of ~n unicasts.
	run := func(threshold int) uint64 {
		p := New(64, Transport{})
		p.BroadcastThreshold = threshold
		line := uint64(0x40)
		for n := 0; n < 63; n++ {
			p.Read(n, line)
		}
		before := p.Stats().UnicastMessages
		p.Write(63, line)
		return p.Stats().UnicastMessages - before
	}
	withBus := run(3)
	noBus := run(1 << 30) // never broadcast
	if noBus <= withBus {
		t.Fatalf("bus saves nothing: %d unicasts with bus, %d without", withBus, noBus)
	}
	if noBus-withBus < 60 {
		t.Errorf("expected ~63 unicast invalidates saved, got %d", noBus-withBus)
	}
}

func TestEvictions(t *testing.T) {
	p := New(4, Transport{})
	p.Write(0, 0x40)
	p.Evict(0, 0x40)
	if p.Stats().WritebacksToMemory != 1 {
		t.Error("M eviction should write back")
	}
	if p.StateOf(0, 0x40) != Invalid {
		t.Error("evicted line still valid")
	}
	mustOK(t, p)

	p.Read(1, 0x40) // E again (line was uncached after eviction)
	if p.StateOf(1, 0x40) != Exclusive {
		t.Fatalf("re-read after full eviction = %v, want E", p.StateOf(1, 0x40))
	}
	p.Evict(1, 0x40)
	if p.Stats().WritebacksToMemory != 1 {
		t.Error("E eviction must not write back")
	}
	mustOK(t, p)
}

func TestOwnedEvictionWritesBack(t *testing.T) {
	p := New(4, Transport{})
	p.Write(0, 0x40)
	p.Read(1, 0x40) // 0: O, 1: S
	p.Evict(0, 0x40)
	if p.Stats().WritebacksToMemory != 1 {
		t.Error("O eviction should write back dirty data")
	}
	if p.StateOf(1, 0x40) != Shared {
		t.Error("sharer disturbed by owner eviction")
	}
	mustOK(t, p)
	// The remaining sharer's data is clean-in-memory now; a write by it must
	// still work.
	p.Write(1, 0x40)
	if p.StateOf(1, 0x40) != Modified {
		t.Fatal("write after owner eviction failed")
	}
	mustOK(t, p)
}

func TestTransportCallbacks(t *testing.T) {
	var uni, bro int
	p := New(8, Transport{
		Unicast:   func(from, to int, kind string) { uni++ },
		Broadcast: func(from int, kind string) { bro++ },
	})
	for n := 0; n < 6; n++ {
		p.Read(n, 0x40)
	}
	p.Write(6, 0x40)
	if uni == 0 {
		t.Error("no unicast callbacks")
	}
	if bro != 1 {
		t.Errorf("broadcast callbacks = %d, want 1", bro)
	}
}

// Property: under any random operation sequence the MOESI invariants hold
// after every step, and a Write always leaves the writer in M with everyone
// else Invalid.
func TestProtocolInvariantsProperty(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := sim.NewRand(seed)
		ops := int(opsRaw%400) + 1
		p := New(8, Transport{})
		lines := []uint64{0x40, 0x80, 0xc0, 0x100, 0x140}
		for i := 0; i < ops; i++ {
			node := rng.Intn(8)
			line := lines[rng.Intn(len(lines))]
			switch rng.Intn(3) {
			case 0:
				p.Read(node, line)
			case 1:
				p.Write(node, line)
				if p.StateOf(node, line) != Modified {
					return false
				}
				for other := 0; other < 8; other++ {
					if other != node && p.StateOf(other, line) != Invalid {
						return false
					}
				}
			case 2:
				p.Evict(node, line)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHomeDistribution(t *testing.T) {
	p := New(64, Transport{})
	if p.Home(0) != 0 || p.Home(65) != 1 || p.Home(127) != 63 {
		t.Error("home hashing wrong")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}
