// Package coherence implements Corona's MOESI directory protocol
// (Section 3.1.2). Each cluster's L2 is a coherence node; a directory at the
// line's home cluster tracks the owner and sharer set. Invalidations of
// widely shared lines ride the optical broadcast bus ("used to quickly
// invalidate a large pool of sharers with a single message") instead of being
// translated into a storm of crossbar unicasts.
//
// The paper built this protocol for die-size and power estimation but did not
// model it in the performance simulation; here it is implemented and tested
// in full as a functional state machine with a pluggable message-counting
// transport, and exercised against the network models in the coherence
// example.
package coherence

import (
	"fmt"
	"sort"
)

// State is a MOESI cache-line state.
type State uint8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Transport receives the protocol's traffic so callers can count messages or
// inject them into a network model. Any field may be nil.
type Transport struct {
	// Unicast is invoked for each point-to-point protocol message.
	Unicast func(from, to int, kind string)
	// Broadcast is invoked when an invalidation uses the broadcast bus.
	Broadcast func(from int, kind string)
}

type dirEntry struct {
	owner   int // node in M/E/O, or -1
	sharers map[int]bool
}

// Stats counts protocol events.
type Stats struct {
	Reads                uint64
	Writes               uint64
	Evictions            uint64
	UnicastMessages      uint64
	BroadcastMessages    uint64
	Invalidations        uint64 // individual sharer invalidations performed
	DataFromMemory       uint64
	CacheToCacheForwards uint64
	WritebacksToMemory   uint64
}

// Protocol is a directory-based MOESI coherence engine over n nodes.
// The directory is distributed by line address: home(line) = line % n,
// matching Corona's per-cluster directories.
type Protocol struct {
	n int
	// BroadcastThreshold: invalidations touching more than this many sharers
	// use the broadcast bus; at or below it they are unicast on the crossbar.
	BroadcastThreshold int

	dir    map[uint64]*dirEntry
	caches []map[uint64]State
	tr     Transport
	stats  Stats
}

// New builds a protocol over n nodes with the given transport.
func New(n int, tr Transport) *Protocol {
	if n <= 0 {
		panic("coherence: need at least one node")
	}
	p := &Protocol{
		n:                  n,
		BroadcastThreshold: 3,
		dir:                make(map[uint64]*dirEntry),
		caches:             make([]map[uint64]State, n),
		tr:                 tr,
	}
	for i := range p.caches {
		p.caches[i] = make(map[uint64]State)
	}
	return p
}

// Nodes returns the node count.
func (p *Protocol) Nodes() int { return p.n }

// Clone returns a deep copy of the protocol: directory entries, sharer sets,
// per-node cache states, and counters are all independent of the original.
// The transport is shared (it is a pair of caller-owned callbacks); pass the
// clone new callbacks via SetTransport when forking a counting run. This is
// the MOESI leg of the warmup-fork snapshot machinery (docs/DETERMINISM.md);
// note the protocol is a functional state machine, not part of
// core.System's timed model.
func (p *Protocol) Clone() *Protocol {
	c := &Protocol{
		n:                  p.n,
		BroadcastThreshold: p.BroadcastThreshold,
		dir:                make(map[uint64]*dirEntry, len(p.dir)),
		caches:             make([]map[uint64]State, p.n),
		tr:                 p.tr,
		stats:              p.stats,
	}
	for line, e := range p.dir {
		ne := &dirEntry{owner: e.owner, sharers: make(map[int]bool, len(e.sharers))}
		for s, v := range e.sharers {
			ne.sharers[s] = v
		}
		c.dir[line] = ne
	}
	for i, m := range p.caches {
		c.caches[i] = make(map[uint64]State, len(m))
		for line, s := range m {
			c.caches[i][line] = s
		}
	}
	return c
}

// SetTransport replaces the protocol's transport callbacks (used after Clone
// to point a fork at its own counters).
func (p *Protocol) SetTransport(tr Transport) { p.tr = tr }

// Stats returns protocol counters.
func (p *Protocol) Stats() Stats { return p.stats }

// Home returns the line's home (directory) node.
func (p *Protocol) Home(line uint64) int { return int(line % uint64(p.n)) }

// StateOf returns node's state for line.
func (p *Protocol) StateOf(node int, line uint64) State { return p.caches[node][line] }

// Holders returns the directory's view of line: the owning node (or -1) and
// the sharer set. Timed protocol engines use it to plan message exchanges
// before committing a transition.
func (p *Protocol) Holders(line uint64) (owner int, sharers []int) {
	e, ok := p.dir[line]
	if !ok {
		return -1, nil
	}
	for s := range e.sharers {
		sharers = append(sharers, s)
	}
	sort.Ints(sharers)
	return e.owner, sharers
}

func (p *Protocol) entry(line uint64) *dirEntry {
	e, ok := p.dir[line]
	if !ok {
		e = &dirEntry{owner: -1, sharers: make(map[int]bool)}
		p.dir[line] = e
	}
	return e
}

func (p *Protocol) unicast(from, to int, kind string) {
	p.stats.UnicastMessages++
	if p.tr.Unicast != nil {
		p.tr.Unicast(from, to, kind)
	}
}

func (p *Protocol) broadcast(from int, kind string) {
	p.stats.BroadcastMessages++
	if p.tr.Broadcast != nil {
		p.tr.Broadcast(from, kind)
	}
}

func (p *Protocol) setState(node int, line uint64, s State) {
	if s == Invalid {
		delete(p.caches[node], line)
		return
	}
	p.caches[node][line] = s
}

// Read performs node's load miss on line (GetS to the home directory).
func (p *Protocol) Read(node int, line uint64) {
	p.checkNode(node)
	p.stats.Reads++
	if p.caches[node][line] != Invalid {
		return // already readable in any valid state
	}
	home := p.Home(line)
	p.unicast(node, home, "GetS")
	e := p.entry(line)
	switch {
	case e.owner == -1 && len(e.sharers) == 0:
		// Uncached: memory supplies data; grant Exclusive.
		p.stats.DataFromMemory++
		p.unicast(home, node, "DataE")
		e.owner = node
		p.setState(node, line, Exclusive)
	case e.owner != -1:
		// An owner holds the latest data: forward cache-to-cache; owner
		// degrades M->O / E->S(owner relinquishes ownership to sharer set).
		owner := e.owner
		p.unicast(home, owner, "FwdGetS")
		p.unicast(owner, node, "Data")
		p.stats.CacheToCacheForwards++
		switch p.caches[owner][line] {
		case Modified, Owned:
			p.setState(owner, line, Owned) // dirty data stays owned
		case Exclusive:
			p.setState(owner, line, Shared)
			e.owner = -1
			e.sharers[owner] = true
		default:
			panic(fmt.Sprintf("coherence: directory owner %d in state %v for line %#x",
				owner, p.caches[owner][line], line))
		}
		e.sharers[node] = true
		p.setState(node, line, Shared)
	default:
		// Shared, no owner: memory supplies data.
		p.stats.DataFromMemory++
		p.unicast(home, node, "DataS")
		e.sharers[node] = true
		p.setState(node, line, Shared)
	}
}

// Write performs node's store miss on line (GetM to the home directory),
// invalidating all other holders.
func (p *Protocol) Write(node int, line uint64) {
	p.checkNode(node)
	p.stats.Writes++
	switch p.caches[node][line] {
	case Modified:
		return
	case Exclusive:
		// Silent upgrade.
		p.setState(node, line, Modified)
		return
	}
	home := p.Home(line)
	p.unicast(node, home, "GetM")
	e := p.entry(line)

	// Collect every other holder to invalidate.
	var holders []int
	if e.owner != -1 && e.owner != node {
		holders = append(holders, e.owner)
	}
	for s := range e.sharers {
		if s != node {
			holders = append(holders, s)
		}
	}
	sort.Ints(holders) // invalidations go out in node order, not map order

	// Data source: owner forwards if present, else memory (unless the writer
	// already holds valid data in S/O).
	switch {
	case e.owner != -1 && e.owner != node:
		p.unicast(home, e.owner, "FwdGetM")
		p.unicast(e.owner, node, "Data")
		p.stats.CacheToCacheForwards++
	case p.caches[node][line] == Invalid:
		p.stats.DataFromMemory++
		p.unicast(home, node, "DataM")
	}

	// Invalidate: broadcast for large sharer pools, unicast otherwise.
	if len(holders) > p.BroadcastThreshold {
		p.broadcast(home, "InvAll")
	} else {
		for _, h := range holders {
			p.unicast(home, h, "Inv")
		}
	}
	for _, h := range holders {
		p.stats.Invalidations++
		p.setState(h, line, Invalid)
		p.unicast(h, node, "InvAck")
	}

	e.owner = node
	e.sharers = make(map[int]bool)
	p.setState(node, line, Modified)
}

// Evict removes line from node's cache, writing dirty data back to memory
// when node owns it.
func (p *Protocol) Evict(node int, line uint64) {
	p.checkNode(node)
	st := p.caches[node][line]
	if st == Invalid {
		return
	}
	p.stats.Evictions++
	home := p.Home(line)
	e := p.entry(line)
	switch st {
	case Modified, Owned:
		p.unicast(node, home, "PutMO")
		p.stats.WritebacksToMemory++
		e.owner = -1
	case Exclusive:
		p.unicast(node, home, "PutE")
		e.owner = -1
	case Shared:
		p.unicast(node, home, "PutS")
		delete(e.sharers, node)
	}
	p.setState(node, line, Invalid)
	if e.owner == -1 && len(e.sharers) == 0 {
		delete(p.dir, line)
	}
}

func (p *Protocol) checkNode(node int) {
	if node < 0 || node >= p.n {
		panic(fmt.Sprintf("coherence: node %d out of range [0,%d)", node, p.n))
	}
}

// CheckInvariants validates global MOESI safety properties, returning a
// descriptive error on the first violation. Tests call it after every
// operation; it is O(lines x nodes).
func (p *Protocol) CheckInvariants() error {
	// Gather per-line views from the caches.
	type view struct {
		m, e, o int
		sharers []int
	}
	lines := make(map[uint64]*view)
	get := func(l uint64) *view {
		v, ok := lines[l]
		if !ok {
			v = &view{m: -1, e: -1, o: -1}
			lines[l] = v
		}
		return v
	}
	for node, c := range p.caches {
		//lint:allow determinism diagnostic-only: which violation reports first is immaterial, and sharers accumulate in the outer loop's node order
		for l, s := range c {
			v := get(l)
			switch s {
			case Modified:
				if v.m != -1 {
					return fmt.Errorf("line %#x: two Modified holders (%d, %d)", l, v.m, node)
				}
				v.m = node
			case Exclusive:
				if v.e != -1 {
					return fmt.Errorf("line %#x: two Exclusive holders (%d, %d)", l, v.e, node)
				}
				v.e = node
			case Owned:
				if v.o != -1 {
					return fmt.Errorf("line %#x: two Owned holders (%d, %d)", l, v.o, node)
				}
				v.o = node
			case Shared:
				v.sharers = append(v.sharers, node)
			}
		}
	}
	for l, v := range lines {
		exclusiveHolders := 0
		if v.m != -1 {
			exclusiveHolders++
		}
		if v.e != -1 {
			exclusiveHolders++
		}
		if v.o != -1 {
			exclusiveHolders++
		}
		if v.m != -1 || v.e != -1 {
			if len(v.sharers) > 0 || v.o != -1 || exclusiveHolders > 1 {
				return fmt.Errorf("line %#x: M/E holder coexists with other copies (M=%d E=%d O=%d S=%v)",
					l, v.m, v.e, v.o, v.sharers)
			}
		}
		// Directory agreement.
		e, ok := p.dir[l]
		if !ok {
			return fmt.Errorf("line %#x: cached but no directory entry", l)
		}
		switch {
		case v.m != -1 && e.owner != v.m:
			return fmt.Errorf("line %#x: directory owner %d, Modified holder %d", l, e.owner, v.m)
		case v.e != -1 && e.owner != v.e:
			return fmt.Errorf("line %#x: directory owner %d, Exclusive holder %d", l, e.owner, v.e)
		case v.o != -1 && e.owner != v.o:
			return fmt.Errorf("line %#x: directory owner %d, Owned holder %d", l, e.owner, v.o)
		}
		for _, s := range v.sharers {
			if !e.sharers[s] {
				return fmt.Errorf("line %#x: node %d Shared but not in directory sharer set", l, s)
			}
		}
	}
	// Directory entries must not name stale holders.
	for l, e := range p.dir {
		if e.owner != -1 {
			st := p.caches[e.owner][l]
			if st != Modified && st != Exclusive && st != Owned {
				return fmt.Errorf("line %#x: directory owner %d holds state %v", l, e.owner, st)
			}
		}
		for s := range e.sharers {
			if p.caches[s][l] != Shared {
				return fmt.Errorf("line %#x: directory sharer %d holds state %v", l, s, p.caches[s][l])
			}
		}
	}
	return nil
}
