// Package cache implements the set-associative cache models of Corona's
// cluster hierarchy (Table 1): per-core 16 KB/4-way L1 instruction and
// 32 KB/4-way L1 data caches and the 4 MB/16-way shared L2, all with 64 B
// lines, LRU replacement, and write-back/write-allocate policy. It also
// provides the MSHR file the hub uses to track and merge outstanding misses.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
}

// Table 1 configurations.
func L1IConfig() Config { return Config{Name: "l1i", SizeBytes: 16 << 10, Ways: 4, LineBytes: 64} }
func L1DConfig() Config { return Config{Name: "l1d", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64} }
func L2Config() Config  { return Config{Name: "l2", SizeBytes: 4 << 20, Ways: 16, LineBytes: 64} }

// L2SimConfig returns the 256 KB L2 used in the paper's simulations "to
// better match our simulated benchmark size and duration" (Section 4).
func L2SimConfig() Config {
	c := L2Config()
	c.SizeBytes = 256 << 10
	return c
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set logical timestamp; smaller = older.
	lru uint64
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns misses / accesses.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Cache is a single-level set-associative cache with LRU replacement and
// write-back/write-allocate policy. It tracks tags only (no data payloads):
// the simulation needs hit/miss/writeback behaviour, not contents.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64
	stats Stats
}

// New builds a cache; the configuration must describe a power-of-two set
// count for the address hashing to be sound.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	n := cfg.Sets()
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", n))
	}
	sets := make([][]line, n)
	backing := make([]line, n*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	return int(lineAddr % uint64(len(c.sets))), lineAddr / uint64(len(c.sets))
}

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Writeback is set when a dirty victim was evicted; VictimAddr is its
	// line-aligned address.
	Writeback  bool
	Eviction   bool
	VictimAddr uint64
}

// Access looks up addr, allocating on miss (write-allocate) and marking the
// line dirty on writes. It returns the victim information the caller needs
// to issue a writeback.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	c.clock++
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.clock
			if write {
				lines[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	res := Result{}
	if lines[victim].valid {
		res.Eviction = true
		res.VictimAddr = c.lineAddr(set, lines[victim].tag)
		if lines[victim].dirty {
			res.Writeback = true
			c.stats.Writebacks++
		}
		c.stats.Evictions++
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return res
}

func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag*uint64(len(c.sets)) + uint64(set)) * uint64(c.cfg.LineBytes)
}

// Contains reports whether addr's line is present, without touching LRU
// state (a snoop lookup).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr's line if present, returning whether it was present
// and whether it was dirty (needing a writeback in MOESI's O/M states).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			present, dirty = true, lines[i].dirty
			lines[i] = line{}
			return present, dirty
		}
	}
	return false, false
}

// Occupancy returns the fraction of valid lines (0..1).
func (c *Cache) Occupancy() float64 {
	var valid int
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid {
				valid++
			}
		}
	}
	return float64(valid) / float64(len(c.sets)*c.cfg.Ways)
}

// Reset returns the cache to its just-constructed state (all lines invalid,
// counters zero), reusing the backing array.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		clear(set)
	}
	c.clock = 0
	c.stats = Stats{}
}

// CopyFrom overwrites c with an exact copy of src's lines, LRU clock, and
// counters. The two caches must share a configuration. Part of the
// snapshot/restore substrate (docs/DETERMINISM.md).
func (c *Cache) CopyFrom(src *Cache) {
	if c.cfg != src.cfg {
		panic(fmt.Sprintf("cache: CopyFrom config mismatch (%+v vs %+v)", c.cfg, src.cfg))
	}
	for i, set := range src.sets {
		copy(c.sets[i], set)
	}
	c.clock = src.clock
	c.stats = src.stats
}

// mshrEntry is one outstanding line miss and its merged requester count.
type mshrEntry struct {
	line  uint64
	count int
}

// MSHR is a miss-status holding register file: it tracks outstanding line
// misses, merges secondary misses onto the primary, and bounds the number of
// in-flight misses (the finite-MSHR back pressure the paper models). The
// file is a flat entry slice searched linearly — at the architectural
// capacities involved (tens of entries) that beats a hash map on the
// Allocate/Complete hot path, and the entry order is unobservable: no
// simulation decision ever iterates the file.
type MSHR struct {
	cap     int
	entries []mshrEntry
	// Stats.
	PrimaryMisses   uint64
	SecondaryMerges uint64
	FullStalls      uint64
}

// NewMSHR builds an MSHR file with cap entries.
func NewMSHR(cap int) *MSHR {
	if cap <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHR{cap: cap, entries: make([]mshrEntry, 0, cap)}
}

// find returns line's entry index, or -1.
func (m *MSHR) find(line uint64) int {
	for i := range m.entries {
		if m.entries[i].line == line {
			return i
		}
	}
	return -1
}

// Len returns the number of occupied entries.
func (m *MSHR) Len() int { return len(m.entries) }

// Cap returns the entry capacity.
func (m *MSHR) Cap() int { return m.cap }

// Lookup reports whether a miss for line is already outstanding.
func (m *MSHR) Lookup(line uint64) bool { return m.find(line) >= 0 }

// Allocate registers a miss for line. primary is true when this is the first
// outstanding miss for the line (the caller must issue the memory request);
// ok is false when the file is full and the miss must stall.
func (m *MSHR) Allocate(line uint64) (primary, ok bool) {
	if i := m.find(line); i >= 0 {
		m.entries[i].count++
		m.SecondaryMerges++
		return false, true
	}
	if len(m.entries) >= m.cap {
		m.FullStalls++
		return false, false
	}
	m.entries = append(m.entries, mshrEntry{line: line, count: 1})
	m.PrimaryMisses++
	return true, true
}

// Reset drops every entry and zeroes the counters, keeping capacity.
func (m *MSHR) Reset() {
	m.entries = m.entries[:0]
	m.PrimaryMisses, m.SecondaryMerges, m.FullStalls = 0, 0, 0
}

// CopyFrom overwrites m with an exact copy of src's entries and counters.
// Capacities must match.
func (m *MSHR) CopyFrom(src *MSHR) {
	if m.cap != src.cap {
		panic(fmt.Sprintf("cache: MSHR CopyFrom capacity mismatch (%d vs %d)", m.cap, src.cap))
	}
	m.entries = append(m.entries[:0], src.entries...)
	m.PrimaryMisses, m.SecondaryMerges, m.FullStalls = src.PrimaryMisses, src.SecondaryMerges, src.FullStalls
}

// Complete retires line's entry, returning how many requesters were merged
// on it. Completing a line with no entry panics: it indicates a protocol
// bug, not a recoverable condition.
func (m *MSHR) Complete(line uint64) int {
	i := m.find(line)
	if i < 0 {
		panic(fmt.Sprintf("cache: MSHR completion for absent line %#x", line))
	}
	n := m.entries[i].count
	last := len(m.entries) - 1
	m.entries[i] = m.entries[last]
	m.entries = m.entries[:last]
	return n
}
