package cache

import (
	"testing"
	"testing/quick"

	"corona/internal/sim"
)

func TestConfigGeometry(t *testing.T) {
	if s := L1IConfig().Sets(); s != 64 {
		t.Errorf("L1I sets = %d, want 64", s)
	}
	if s := L1DConfig().Sets(); s != 128 {
		t.Errorf("L1D sets = %d, want 128", s)
	}
	if s := L2Config().Sets(); s != 4096 {
		t.Errorf("L2 sets = %d, want 4096", s)
	}
	if s := L2SimConfig().Sets(); s != 256 {
		t.Errorf("L2Sim sets = %d, want 256", s)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(L1DConfig())
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x1000+32, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(0x1000+64, false); r.Hit {
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way set: fill 4 ways, touch the first, insert a fifth; the second
	// (LRU) way must be the victim.
	c := New(Config{Name: "t", SizeBytes: 4 * 64, Ways: 4, LineBytes: 64})
	// One set only; distinct tags via high bits.
	addrs := []uint64{0 << 6, 1 << 6, 2 << 6, 3 << 6}
	for _, a := range addrs {
		c.Access(a, false)
	}
	c.Access(addrs[0], false) // refresh way 0
	r := c.Access(4<<6, false)
	if !r.Eviction {
		t.Fatal("no eviction on full set")
	}
	if r.VictimAddr != addrs[1] {
		t.Errorf("victim = %#x, want %#x (LRU)", r.VictimAddr, addrs[1])
	}
	if !c.Contains(addrs[0]) {
		t.Error("refreshed line evicted")
	}
	if c.Contains(addrs[1]) {
		t.Error("victim still present")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 64, Ways: 1, LineBytes: 64})
	c.Access(0, true) // dirty
	r := c.Access(1<<6, false)
	if !r.Writeback || r.VictimAddr != 0 {
		t.Fatalf("dirty eviction result = %+v, want writeback of 0", r)
	}
	// Clean eviction: no writeback.
	r = c.Access(2<<6, false)
	if r.Writeback {
		t.Fatal("clean eviction produced a writeback")
	}
	if !r.Eviction {
		t.Fatal("eviction not reported")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(L1DConfig())
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(0x40) {
		t.Fatal("line survives invalidation")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Fatal("double invalidation reported present")
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 2 * 64, Ways: 2, LineBytes: 64})
	c.Access(0<<6, false)
	c.Access(1<<6, false)
	c.Contains(0 << 6) // must NOT refresh
	r := c.Access(2<<6, false)
	if r.VictimAddr != 0<<6 {
		t.Errorf("victim = %#x, want %#x (Contains must not refresh LRU)", r.VictimAddr, 0<<6)
	}
}

func TestOccupancy(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4 * 64, Ways: 2, LineBytes: 64})
	if c.Occupancy() != 0 {
		t.Fatal("empty cache occupancy != 0")
	}
	c.Access(0, false)
	if got := c.Occupancy(); got != 0.25 {
		t.Fatalf("occupancy = %v, want 0.25", got)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", s.MissRate())
	}
}

// Property: a cache never reports a hit for a line it has not been shown, and
// working sets no larger than one set's ways never evict.
func TestSmallWorkingSetNeverEvicts(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		cfg := Config{Name: "t", SizeBytes: 8 * 64, Ways: 8, LineBytes: 64}
		c := New(cfg)
		// 8 lines mapping to the same single set? Sets()=1, so any 8 lines fit.
		if cfg.Sets() != 1 {
			return false
		}
		lines := make([]uint64, 8)
		for i := range lines {
			lines[i] = rng.Uint64() &^ 63
		}
		// Dedup (collisions would shrink the working set, which is fine).
		for pass := 0; pass < 50; pass++ {
			a := lines[rng.Intn(len(lines))]
			r := c.Access(a, rng.Intn(2) == 0)
			if pass >= len(lines)*2 && r.Eviction {
				// After warm-up, no evictions may occur.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses == accesses, and evictions <= misses.
func TestStatsConsistency(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		rng := sim.NewRand(seed)
		c := New(Config{Name: "t", SizeBytes: 16 << 10, Ways: 4, LineBytes: 64})
		for i := 0; i < n; i++ {
			c.Access(rng.Uint64()%uint64(1<<20), rng.Intn(2) == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == uint64(n) && s.Evictions <= s.Misses && s.Writebacks <= s.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRMerge(t *testing.T) {
	m := NewMSHR(4)
	primary, ok := m.Allocate(0x40)
	if !primary || !ok {
		t.Fatal("first allocation should be primary")
	}
	primary, ok = m.Allocate(0x40)
	if primary || !ok {
		t.Fatal("second allocation should merge")
	}
	if n := m.Complete(0x40); n != 2 {
		t.Fatalf("Complete = %d, want 2 merged requesters", n)
	}
	if m.Len() != 0 {
		t.Fatal("entry not retired")
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(1)
	m.Allocate(2)
	if _, ok := m.Allocate(3); ok {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if m.FullStalls != 1 {
		t.Fatalf("FullStalls = %d, want 1", m.FullStalls)
	}
	// Merging onto existing entries still works at capacity.
	if primary, ok := m.Allocate(1); primary || !ok {
		t.Fatal("merge at capacity failed")
	}
	m.Complete(1)
	if _, ok := m.Allocate(3); !ok {
		t.Fatal("allocation after retire failed")
	}
}

func TestMSHRCompleteAbsentPanics(t *testing.T) {
	m := NewMSHR(2)
	defer func() {
		if recover() == nil {
			t.Error("completing absent line did not panic")
		}
	}()
	m.Complete(0x99)
}

func TestMSHRLookup(t *testing.T) {
	m := NewMSHR(2)
	if m.Lookup(5) {
		t.Fatal("lookup on empty file")
	}
	m.Allocate(5)
	if !m.Lookup(5) {
		t.Fatal("lookup missed outstanding line")
	}
	if m.Cap() != 2 {
		t.Fatal("Cap wrong")
	}
}
