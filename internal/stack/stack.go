// Package stack models Corona's 3D package (Sections 3.1.1 and 3.4,
// Figure 7): the four-die stack (processor/L1, memory-controller/directory/
// L2, analog electronics, optical), its through-silicon via budget, and the
// paper's die-area and power estimates.
//
// The paper brackets its estimates between two core design points scaled to
// 16 nm: a Penryn-derived in-order core (aggressive, out-of-order die pruned
// 3x, power pruned 5x then +20% for quad threading) and a Silverthorne-
// derived core (conservative). Those published endpoints are encoded here
// and exposed as ranges, exactly as the paper reports them: 423-491 mm^2 of
// processor/L1 die and 82-155 W of processor+cache+MC+hub power, plus the
// 39 W photonic subsystem.
package stack

import (
	"fmt"

	"corona/internal/cluster"
	"corona/internal/power"
	"corona/internal/stats"
)

// CoreDesign is one of the paper's two scaling endpoints.
type CoreDesign struct {
	Name string
	// DieAreaMM2 is the processor/L1 die area for 256 cores at 16 nm.
	DieAreaMM2 float64
	// ProcessorPowerW covers processor, cache, memory controller, and hub.
	ProcessorPowerW float64
	// L1CellTransistors records the SRAM cell design difference the paper
	// cites for the area discrepancy.
	L1CellTransistors int
}

// Penryn returns the Penryn-derived (desktop/laptop segment) endpoint.
func Penryn() CoreDesign {
	return CoreDesign{Name: "Penryn-based", DieAreaMM2: 423, ProcessorPowerW: 155, L1CellTransistors: 6}
}

// Silverthorne returns the Silverthorne-derived (low-power embedded)
// endpoint.
func Silverthorne() CoreDesign {
	return CoreDesign{Name: "Silverthorne-based", DieAreaMM2: 491, ProcessorPowerW: 82, L1CellTransistors: 8}
}

// Die identifies one layer of the stack (Figure 7, heat sink down the list).
type Die uint8

// Stack layers, top (heat sink side) to bottom.
const (
	ProcessorDie Die = iota // clustered cores and L1s, adjacent to heat sink
	CacheDie                // memory controller / directory / L2
	AnalogDie               // detector circuits, ring resonance control
	OpticalDie              // waveguides, rings, detectors; oversized mezzanine
	numDies
)

// String names the die.
func (d Die) String() string {
	switch d {
	case ProcessorDie:
		return "processor/L1"
	case CacheDie:
		return "MC/directory/L2"
	case AnalogDie:
		return "analog electronics"
	case OpticalDie:
		return "optical"
	default:
		return fmt.Sprintf("die(%d)", uint8(d))
	}
}

// Dies returns the stack's layers in order.
func Dies() []Die { return []Die{ProcessorDie, CacheDie, AnalogDie, OpticalDie} }

// TSVBudget estimates the through-silicon via counts of Figure 7:
// signal TSVs (sTSVs) connect every L2-die communication endpoint down to
// the analog die; power/ground/clock TSVs (pgcTSVs) pierce three die to feed
// the two digital layers.
type TSVBudget struct {
	SignalTSVs int
	PGCTSVs    int
}

// EstimateTSVs sizes the via budget for a given cluster count: each cluster
// needs signal vias for its crossbar channel (256 λ wide, in and out), its
// memory fibers, broadcast, and arbitration taps, plus a power/ground/clock
// allocation per cluster.
func EstimateTSVs(clusters int) TSVBudget {
	perClusterSignals := 256 /* xbar modulator data */ +
		256 /* xbar detector data */ +
		2*64 /* memory fiber pair */ +
		2*64 /* broadcast mod+detect */ +
		2*64 /* arbitration inject+detect */
	// Power delivery dominates pgc: a conservative 4 power/ground pairs per
	// signal via region plus clock distribution.
	return TSVBudget{
		SignalTSVs: clusters * perClusterSignals,
		PGCTSVs:    clusters*512 + clusters/4,
	}
}

// Budget is the assembled package-level estimate.
type Budget struct {
	Clusters int
	// Area range across the two core endpoints.
	MinDieAreaMM2, MaxDieAreaMM2 float64
	// Power ranges.
	MinProcessorW, MaxProcessorW float64
	PhotonicW                    float64
	MemoryInterconnectW          float64
	TSVs                         TSVBudget
	PeakTeraflops                float64
}

// Estimate assembles the paper's package budget for a 64-cluster system.
func Estimate(clusters int) Budget {
	p, s := Penryn(), Silverthorne()
	b := Budget{
		Clusters:            clusters,
		MinDieAreaMM2:       minf(p.DieAreaMM2, s.DieAreaMM2),
		MaxDieAreaMM2:       maxf(p.DieAreaMM2, s.DieAreaMM2),
		MinProcessorW:       minf(p.ProcessorPowerW, s.ProcessorPowerW),
		MaxProcessorW:       maxf(p.ProcessorPowerW, s.ProcessorPowerW),
		PhotonicW:           power.PhotonicSubsystemW,
		MemoryInterconnectW: 6.4, // OCM at full 10.24 TB/s (Section 3.3)
		TSVs:                EstimateTSVs(clusters),
		PeakTeraflops:       cluster.PeakSystemTeraflops(clusters),
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TotalPowerRange returns the package's total power band: processor band
// plus photonic subsystem plus memory interconnect.
func (b Budget) TotalPowerRange() (min, max float64) {
	base := b.PhotonicW + b.MemoryInterconnectW
	return b.MinProcessorW + base, b.MaxProcessorW + base
}

// Table renders the stack budget as a report.
func (b Budget) Table() *stats.Table {
	t := stats.NewTable("Quantity", "Estimate")
	t.AddRow("Clusters / cores", fmt.Sprintf("%d / %d", b.Clusters, b.Clusters*cluster.CoresPerCluster))
	t.AddRow("Peak performance", fmt.Sprintf("%.2f teraflops", b.PeakTeraflops))
	t.AddRow("Processor/L1 die area", fmt.Sprintf("%.0f-%.0f mm^2", b.MinDieAreaMM2, b.MaxDieAreaMM2))
	t.AddRow("Processor+cache+MC+hub power", fmt.Sprintf("%.0f-%.0f W", b.MinProcessorW, b.MaxProcessorW))
	t.AddRow("Photonic subsystem power", fmt.Sprintf("%.0f W", b.PhotonicW))
	t.AddRow("Memory interconnect power", fmt.Sprintf("%.1f W", b.MemoryInterconnectW))
	lo, hi := b.TotalPowerRange()
	t.AddRow("Package total power", fmt.Sprintf("%.0f-%.0f W", lo, hi))
	t.AddRow("Signal TSVs", fmt.Sprintf("%d", b.TSVs.SignalTSVs))
	t.AddRow("Power/ground/clock TSVs", fmt.Sprintf("%d", b.TSVs.PGCTSVs))
	t.AddRow("Stack dies", fmt.Sprintf("%d (%s / %s / %s / %s)",
		int(numDies), ProcessorDie, CacheDie, AnalogDie, OpticalDie))
	return t
}
