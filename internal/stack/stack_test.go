package stack

import (
	"strings"
	"testing"
)

func TestPaperEndpoints(t *testing.T) {
	p, s := Penryn(), Silverthorne()
	// Section 3.1.1: "Total die area ... between 423 mm2 (Penryn based) and
	// 491 mm2 (Silverthorne based)"; power "between 82 watts (Silverthorne
	// based) and 155 watts (Penryn based)".
	if p.DieAreaMM2 != 423 || s.DieAreaMM2 != 491 {
		t.Errorf("die areas = %v/%v, want 423/491", p.DieAreaMM2, s.DieAreaMM2)
	}
	if p.ProcessorPowerW != 155 || s.ProcessorPowerW != 82 {
		t.Errorf("power = %v/%v, want 155/82", p.ProcessorPowerW, s.ProcessorPowerW)
	}
	// The cell-design difference the paper cites.
	if p.L1CellTransistors != 6 || s.L1CellTransistors != 8 {
		t.Error("L1 cell transistor counts wrong")
	}
}

func TestBudgetRanges(t *testing.T) {
	b := Estimate(64)
	if b.MinDieAreaMM2 != 423 || b.MaxDieAreaMM2 != 491 {
		t.Errorf("area range = %v-%v", b.MinDieAreaMM2, b.MaxDieAreaMM2)
	}
	if b.MinProcessorW != 82 || b.MaxProcessorW != 155 {
		t.Errorf("power range = %v-%v", b.MinProcessorW, b.MaxProcessorW)
	}
	if b.PhotonicW != 39 {
		t.Errorf("photonic power = %v, want 39", b.PhotonicW)
	}
	if b.PeakTeraflops < 10 || b.PeakTeraflops > 10.5 {
		t.Errorf("peak = %v TF, want ~10.24", b.PeakTeraflops)
	}
	lo, hi := b.TotalPowerRange()
	if lo >= hi || lo < 82+39 || hi > 155+39+10 {
		t.Errorf("total power band = %v-%v", lo, hi)
	}
}

func TestTSVBudget(t *testing.T) {
	v := EstimateTSVs(64)
	// 896 signal vias per cluster.
	if v.SignalTSVs != 64*896 {
		t.Errorf("signal TSVs = %d, want %d", v.SignalTSVs, 64*896)
	}
	if v.PGCTSVs <= 0 {
		t.Error("no pgc TSVs")
	}
	// Budget scales linearly with clusters.
	if EstimateTSVs(128).SignalTSVs != 2*v.SignalTSVs {
		t.Error("signal TSVs do not scale with clusters")
	}
}

func TestDieNames(t *testing.T) {
	if len(Dies()) != 4 {
		t.Fatal("stack must have 4 dies (Figure 7)")
	}
	want := []string{"processor/L1", "MC/directory/L2", "analog electronics", "optical"}
	for i, d := range Dies() {
		if d.String() != want[i] {
			t.Errorf("die %d = %q, want %q", i, d, want[i])
		}
	}
	if !strings.HasPrefix(Die(9).String(), "die(") {
		t.Error("unknown die should format numerically")
	}
}

func TestTableRendering(t *testing.T) {
	s := Estimate(64).Table().String()
	for _, want := range []string{"423-491 mm^2", "82-155 W", "39 W", "10.24 teraflops", "processor/L1"} {
		if !strings.Contains(s, want) {
			t.Errorf("stack table missing %q:\n%s", want, s)
		}
	}
}
