package netif

import (
	"testing"
	"testing/quick"

	"corona/internal/sim"
)

func TestLinkBandwidthMatchesOCM(t *testing.T) {
	// The interface reuses the OCM signalling: 160 GB/s per fiber.
	if got := DefaultConfig().BytesPerSec(); got != 160e9 {
		t.Fatalf("link bandwidth = %v, want 160 GB/s", got)
	}
}

func TestPropagation(t *testing.T) {
	cases := []struct {
		meters float64
		want   sim.Time
	}{
		{0.2, 1}, {1, 5}, {10, 50}, {0.3, 2},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.CableMeters = c.meters
		if got := cfg.PropagationCycles(); got != c.want {
			t.Errorf("propagation(%vm) = %d, want %d", c.meters, got, c.want)
		}
	}
}

func TestSingleTransfer(t *testing.T) {
	k := sim.NewKernel()
	var at sim.Time
	var got *Packet
	l := NewLink(k, DefaultConfig(), func(p *Packet) { got = p; at = k.Now() })
	if !l.Send(&Packet{ID: 1, Size: 64, Stack: 1}) {
		t.Fatal("send refused")
	}
	k.Run()
	if got == nil || got.ID != 1 {
		t.Fatal("packet not delivered")
	}
	// tx ceil(64/32)=2 + prop 5 = 7.
	if at != 7 {
		t.Errorf("delivered at %d, want 7", at)
	}
	if l.Sent != 1 || l.Bytes != 64 {
		t.Errorf("counters = %d/%d", l.Sent, l.Bytes)
	}
}

func TestSerialization(t *testing.T) {
	k := sim.NewKernel()
	var times []sim.Time
	l := NewLink(k, DefaultConfig(), func(p *Packet) { times = append(times, k.Now()) })
	for i := 0; i < 10; i++ {
		l.Send(&Packet{ID: uint64(i), Size: 64})
	}
	k.Run()
	if len(times) != 10 {
		t.Fatalf("delivered %d, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < 2 {
			t.Fatalf("transfers %d cycles apart, want >= 2 (serialization)", times[i]-times[i-1])
		}
	}
}

func TestQueueBackPressure(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.QueueDepth = 3
	l := NewLink(k, cfg, func(*Packet) {})
	ok := 0
	for i := 0; i < 10; i++ {
		if l.Send(&Packet{ID: uint64(i), Size: 64}) {
			ok++
		}
	}
	if ok != 3 {
		t.Fatalf("accepted %d, want 3", ok)
	}
	k.Run()
	if !l.Send(&Packet{ID: 99, Size: 64}) {
		t.Fatal("refusing after drain")
	}
}

func TestFullDuplexPair(t *testing.T) {
	k := sim.NewKernel()
	var aGot, bGot int
	p := NewPair(k, DefaultConfig(),
		func(*Packet) { aGot++ },
		func(*Packet) { bGot++ })
	// Simultaneous traffic both ways must not interfere: both finish at the
	// single-transfer time.
	p.AtoB.Send(&Packet{ID: 1, Size: 64})
	p.BtoA.Send(&Packet{ID: 2, Size: 64})
	k.Run()
	if aGot != 1 || bGot != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1", aGot, bGot)
	}
	if k.Now() != 7 {
		t.Errorf("both directions done at %d, want 7 (full duplex)", k.Now())
	}
}

func TestRemoteStackAccessLatencyModel(t *testing.T) {
	// A remote-stack memory access pays two fiber crossings (request out,
	// line back); with a 1 m cable that is 10 cycles = 2 ns of propagation
	// plus serialization — small next to the 20 ns DRAM access, which is the
	// paper's implicit argument that multi-stack NUMA remains tractable.
	k := sim.NewKernel()
	cfg := DefaultConfig()
	var done sim.Time
	var pair *Pair
	pair = NewPair(k, cfg,
		func(p *Packet) { done = k.Now() }, // response back at stack A
		func(p *Packet) { // request arrives at stack B: emulate memory, respond
			k.Schedule(sim.FromNs(20), func() {
				pair.BtoA.Send(&Packet{ID: p.ID, Size: 72})
			})
		})
	pair.AtoB.Send(&Packet{ID: 1, Size: 16})
	k.Run()
	total := done.Ns()
	if total < 20 || total > 25 {
		t.Errorf("remote-stack access = %v ns, want 20-25 (fiber adds ~2-3 ns)", total)
	}
}

// Property: every accepted packet is delivered exactly once, in send order.
func TestDeliveryOrderProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := sim.NewRand(seed)
		n := int(nRaw%50) + 1
		k := sim.NewKernel()
		cfg := DefaultConfig()
		cfg.QueueDepth = 1000
		var got []uint64
		l := NewLink(k, cfg, func(p *Packet) { got = append(got, p.ID) })
		for i := 0; i < n; i++ {
			delay := sim.Time(rng.Intn(20))
			id := uint64(i)
			k.Schedule(delay, func() {
				l.Send(&Packet{ID: id, Size: 16 + rng.Intn(100)})
			})
		}
		if k.RunLimit(1_000_000) >= 1_000_000 {
			return false
		}
		return len(got) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	k := sim.NewKernel()
	for _, f := range []func(){
		func() { NewLink(k, Config{}, func(*Packet) {}) },
		func() { NewLink(k, DefaultConfig(), nil) },
		func() {
			l := NewLink(k, DefaultConfig(), func(*Packet) {})
			l.Send(nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input did not panic")
				}
			}()
			f()
		}()
	}
}
