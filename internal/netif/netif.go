// Package netif models Corona's inter-stack network interfaces
// (Section 3.1.2): "Network interfaces, similar to the interface to off-stack
// main memory, provide inter-stack communication for larger systems using
// DWDM interconnects."
//
// Each cluster's network interface owns a DWDM fiber pair identical in
// signalling to the OCM links (64 wavelengths, dual-edge 10 Gb/s,
// 32 B/cycle), connecting it to the peer cluster of another Corona stack.
// Like the memory channel — and unlike the peer-to-peer on-stack crossbar —
// the link is scheduled by its master endpoint with no arbitration; unlike
// the memory channel, both endpoints are masters of their own outbound
// fiber, making the pair full duplex at the stack-to-stack level.
//
// The model supports multi-stack NUMA experiments: remote-stack memory
// accesses traverse the local hub, the inter-stack fiber, and the remote
// stack's hub, paying fiber propagation set by the physical cable length.
package netif

import (
	"fmt"

	"corona/internal/sim"
)

// Config parameterizes one inter-stack interface.
type Config struct {
	// BytesPerCycle is the fiber bandwidth (32 = 64 λ dual edge, as OCM).
	BytesPerCycle int
	// CableMeters is the physical fiber length; light in fiber covers about
	// 0.2 m per 5 GHz cycle (n ≈ 1.5).
	CableMeters float64
	// QueueDepth bounds the outbound queue; Send refuses beyond it.
	QueueDepth int
}

// DefaultConfig returns an OCM-grade link over a 1 m cable (same-board
// stacks).
func DefaultConfig() Config {
	return Config{BytesPerCycle: 32, CableMeters: 1, QueueDepth: 64}
}

// FiberMetersPerCycle is how far light travels in fiber in one 5 GHz cycle.
const FiberMetersPerCycle = 0.2

// PropagationCycles returns the one-way fiber latency.
func (c Config) PropagationCycles() sim.Time {
	cycles := c.CableMeters / FiberMetersPerCycle
	t := sim.Time(cycles)
	if float64(t) < cycles {
		t++
	}
	return t
}

// BytesPerSec returns the link's one-direction bandwidth.
func (c Config) BytesPerSec() float64 { return float64(c.BytesPerCycle) * 5e9 }

// Packet is one inter-stack transfer. Packets are pooled per link: obtain
// one with Acquire, fill it, Send it; the link recycles it after the remote
// delivery callback returns, so receivers must not retain packets.
type Packet struct {
	ID    uint64
	Size  int
	Stack int // destination stack id, for the receiver's bookkeeping
	// Payload is a uint64 handle into the sending stack's payload registry
	// (sim.Slots) for packets that embed a reference (e.g. a remote memory
	// request); plain transfers leave it zero.
	Payload uint64

	pooled bool
}

// Link is one unidirectional inter-stack fiber; build two for a pair.
type Link struct {
	k   *sim.Kernel
	cfg Config

	queue     sim.Fifo[*Packet]
	busyUntil sim.Time
	active    bool
	deliver   func(*Packet)

	// slots parks in-flight packets for the typed arrival event; free is
	// the recycle list Acquire draws from.
	slots sim.Slots[*Packet]
	free  []*Packet

	// Sent and Bytes count completed transfers.
	Sent  uint64
	Bytes uint64
}

// Acquire returns a zeroed packet from the link's free list.
func (l *Link) Acquire() *Packet {
	if n := len(l.free); n > 0 {
		p := l.free[n-1]
		l.free = l.free[:n-1]
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// release recycles a delivered packet, panicking on a double release.
func (l *Link) release(p *Packet) {
	if p.pooled {
		panic(fmt.Sprintf("netif: packet %d released twice", p.ID))
	}
	p.pooled = true
	l.free = append(l.free, p)
}

// The link's kernel events run on the typed fast path via named views of the
// Link, so the pump/arrival cycle schedules without closures.

// pumpEvent starts (or continues) serializing the outbound queue.
type pumpEvent Link

func (e *pumpEvent) OnEvent(_ sim.Time, _ uint64) { (*Link)(e).pump() }

// arriveEvent fires when a packet's tail reaches the remote detectors. The
// packet recycles once the delivery callback returns.
type arriveEvent Link

func (e *arriveEvent) OnEvent(_ sim.Time, data uint64) {
	l := (*Link)(e)
	p := l.slots.Take(data)
	l.Sent++
	l.Bytes += uint64(p.Size)
	l.deliver(p)
	l.release(p)
}

// NewLink builds a link on kernel k delivering into the remote stack's
// callback.
func NewLink(k *sim.Kernel, cfg Config, deliver func(*Packet)) *Link {
	if cfg.BytesPerCycle <= 0 || cfg.QueueDepth <= 0 || deliver == nil {
		panic(fmt.Sprintf("netif: invalid link config %+v", cfg))
	}
	return &Link{k: k, cfg: cfg, deliver: deliver}
}

// QueueLen returns the number of queued (unsent) packets.
func (l *Link) QueueLen() int { return l.queue.Len() }

// Send queues p for transmission; it returns false when the outbound queue
// is full.
func (l *Link) Send(p *Packet) bool {
	if p == nil || p.Size <= 0 {
		panic("netif: invalid packet")
	}
	if l.queue.Len() >= l.cfg.QueueDepth {
		return false
	}
	l.queue.Push(p)
	if !l.active {
		l.active = true
		l.k.ScheduleEvent(0, (*pumpEvent)(l), 0)
	}
	return true
}

// pump serializes queued packets onto the fiber back to back.
func (l *Link) pump() {
	if l.queue.Empty() {
		l.active = false
		return
	}
	p := l.queue.Pop()
	tx := sim.Time((p.Size + l.cfg.BytesPerCycle - 1) / l.cfg.BytesPerCycle)
	prop := l.cfg.PropagationCycles()
	l.k.ScheduleEvent(tx+prop, (*arriveEvent)(l), l.slots.Put(p))
	l.k.ScheduleEvent(tx, (*pumpEvent)(l), 0)
}

// Pair is a full-duplex stack-to-stack connection.
type Pair struct {
	AtoB *Link
	BtoA *Link
}

// NewPair wires two stacks together; deliverA receives packets sent by B
// and vice versa.
func NewPair(k *sim.Kernel, cfg Config, deliverA, deliverB func(*Packet)) *Pair {
	return &Pair{
		AtoB: NewLink(k, cfg, deliverB),
		BtoA: NewLink(k, cfg, deliverA),
	}
}
