// Package cohsim is the timed coherence simulation: the MOESI directory
// protocol of package coherence executed over the actual interconnect models
// — protocol requests, forwards, data, and acknowledgements ride the optical
// crossbar (or a mesh), and wide invalidations ride the optical broadcast
// bus, with all of the networks' arbitration, serialization, and back
// pressure in effect.
//
// The paper designed this machinery ("the coherence scheme was included for
// purposes of die size and power estimation, but has not yet been modeled in
// the system simulation", Section 3.1.2); this package models it, letting us
// measure what the broadcast bus actually buys: the latency and message cost
// of invalidating a wide sharer pool with one bus transit versus a storm of
// crossbar unicasts.
//
// Modelling choices: the directory serializes transactions per line (a line
// busy bit with a FIFO of waiters), which is the standard blocking-directory
// simplification; memory access costs a fixed latency at the home node;
// protocol state transitions commit atomically when the timed message
// exchange completes, so the untimed protocol engine remains the single
// source of truth for state (and its invariant checker runs underneath).
package cohsim

import (
	"fmt"

	"corona/internal/bus"
	"corona/internal/coherence"
	"corona/internal/noc"
	"corona/internal/sim"
	"corona/internal/stats"
	"corona/internal/xbar"
)

// Config parameterizes the timed coherence system.
type Config struct {
	Clusters int
	// UseBus enables the broadcast bus for invalidations touching more than
	// BroadcastThreshold sharers; otherwise all invalidations are unicast.
	UseBus             bool
	BroadcastThreshold int
	// MemoryCycles is the home-node memory access latency for lines no cache
	// can supply.
	MemoryCycles sim.Time
	// HubCycles is the per-hop hub processing latency.
	HubCycles sim.Time
}

// DefaultConfig returns the Corona coherence configuration.
func DefaultConfig() Config {
	return Config{
		Clusters:           64,
		UseBus:             true,
		BroadcastThreshold: 3,
		MemoryCycles:       sim.FromNs(20),
		HubCycles:          4,
	}
}

// op is one in-flight coherence transaction.
type op struct {
	id    uint64
	node  int
	line  uint64
	write bool
	start sim.Time
	done  func()
	acks  int // invalidation acks still outstanding
	data  bool
	// invalidated marks writes that had to invalidate at least one holder.
	invalidated bool
}

// System is the timed coherent machine.
type System struct {
	K     *sim.Kernel
	cfg   Config
	proto *coherence.Protocol
	net   *xbar.Crossbar
	bus   *bus.Bus

	// busy lines and their waiting transactions, at each home directory.
	busy   map[uint64][]*op
	nextID uint64

	// opSlots and msgSlots park transactions and messages for typed events;
	// atSlots parks the protocol's arrival continuations so a network
	// message's Payload is a plain slot handle rather than a boxed func.
	opSlots  sim.Slots[*op]
	msgSlots sim.Slots[*noc.Message]
	atSlots  sim.Slots[func()]

	// Latency histograms by transaction flavour, in ns.
	ReadLatency  *stats.Histogram
	WriteLatency *stats.Histogram
	InvLatency   *stats.Histogram // writes that had to invalidate sharers
	// Completed counts retired transactions.
	Completed uint64
}

// New builds a timed coherence system.
func New(cfg Config) *System {
	k := sim.NewKernel()
	s := &System{
		K:            k,
		cfg:          cfg,
		proto:        coherence.New(cfg.Clusters, coherence.Transport{}),
		net:          xbar.New(k, xbar.DefaultConfig()),
		bus:          bus.New(k, bus.DefaultConfig()),
		busy:         make(map[uint64][]*op),
		ReadLatency:  stats.NewHistogram(1 << 16),
		WriteLatency: stats.NewHistogram(1 << 16),
		InvLatency:   stats.NewHistogram(1 << 16),
	}
	if !cfg.UseBus {
		s.proto.BroadcastThreshold = 1 << 30
	} else {
		s.proto.BroadcastThreshold = cfg.BroadcastThreshold
	}
	for c := 0; c < cfg.Clusters; c++ {
		c := c
		s.net.SetDeliver(c, func(m *noc.Message) { s.deliver(c, m) })
	}
	// Bus snoops: invalidation broadcasts are self-acknowledging in this
	// model — every cluster snoops in bounded time, and the second-pass
	// arrival at the writer's own detectors confirms completion, so no ack
	// storm is needed (one of the bus's advantages).
	for c := 0; c < cfg.Clusters; c++ {
		c := c
		s.bus.SetDeliver(c, func(m *noc.Message) { s.snoop(c, m) })
	}
	return s
}

// The frequent mechanical events — local-hit commits, network injection with
// back-pressure retry, bus injection, serving the next line waiter — run on
// the kernel's typed fast path via named views of the System. The protocol's
// continuation chains (the `at` callbacks threaded through message payloads)
// stay on the closure compatibility path.

// localHitEvent commits a transaction that its own cache already satisfies,
// after the hub look-up latency.
type localHitEvent System

func (e *localHitEvent) OnEvent(_ sim.Time, data uint64) {
	s := (*System)(e)
	o := s.opSlots.Take(data)
	if o.write {
		s.proto.Write(o.node, o.line) // silent E -> M upgrade
	}
	s.commit(o)
}

// netSendEvent (re)tries injecting a parked message into the crossbar,
// rescheduling itself while the injection queue exerts back pressure.
type netSendEvent System

func (e *netSendEvent) OnEvent(_ sim.Time, data uint64) {
	s := (*System)(e)
	if !s.net.Send(s.msgSlots.Get(data)) {
		s.K.ScheduleEvent(2, e, data)
		return
	}
	s.msgSlots.Free(data)
}

// busSendEvent is netSendEvent for the broadcast bus.
type busSendEvent System

func (e *busSendEvent) OnEvent(_ sim.Time, data uint64) {
	s := (*System)(e)
	if !s.bus.Broadcast(s.msgSlots.Get(data)) {
		s.K.ScheduleEvent(2, e, data)
		return
	}
	s.msgSlots.Free(data)
}

// hopEvent runs an arrival continuation parked in atSlots after a fixed
// latency: hub-local hops and memory-access delays ride it instead of the
// allocating closure-compat Schedule path.
type hopEvent System

func (e *hopEvent) OnEvent(_ sim.Time, data uint64) {
	(*System)(e).atSlots.Take(data)()
}

// serveEvent starts the directory side of the next queued transaction on a
// just-released line.
type serveEvent System

func (e *serveEvent) OnEvent(_ sim.Time, data uint64) {
	s := (*System)(e)
	s.serve(s.opSlots.Take(data))
}

// Protocol exposes the underlying state machine (for invariant checks).
func (s *System) Protocol() *coherence.Protocol { return s.proto }

// Stats returns the protocol's message counters.
func (s *System) Stats() coherence.Stats { return s.proto.Stats() }

// NetworkMessages returns the crossbar's delivered message count.
func (s *System) NetworkMessages() uint64 { return s.net.Stats().Messages }

// BusBroadcasts returns the number of bus transits used.
func (s *System) BusBroadcasts() uint64 { return s.bus.Broadcasts }

// home returns the line's directory node.
func (s *System) home(line uint64) int { return s.proto.Home(line) }

// Access issues a timed read (write=false) or write miss from node on line;
// done runs when the transaction commits. Concurrent transactions on one
// line serialize at the home directory.
func (s *System) Access(node int, line uint64, write bool, done func()) {
	s.nextID++
	o := &op{id: s.nextID, node: node, line: line, write: write, start: s.K.Now(), done: done}
	// Already-satisfying states commit locally after a hub look-up.
	st := s.proto.StateOf(node, line)
	if (!write && st != coherence.Invalid) ||
		(write && (st == coherence.Modified || st == coherence.Exclusive)) {
		s.K.ScheduleEvent(s.cfg.HubCycles, (*localHitEvent)(s), s.opSlots.Put(o))
		return
	}
	// Request travels to the home directory.
	s.sendOrLocal(node, s.home(line), noc.KindRequest, noc.RequestBytes, func() {
		s.arriveAtHome(o)
	})
}

// sendOrLocal moves a protocol message between nodes: over the crossbar for
// remote pairs, through the hub for node-local ones. at runs on arrival,
// parked in atSlots and referenced by the pooled message's payload handle.
func (s *System) sendOrLocal(from, to int, kind noc.Kind, size int, at func()) {
	if from == to {
		s.K.ScheduleEvent(s.cfg.HubCycles, (*hopEvent)(s), s.atSlots.Put(at))
		return
	}
	s.nextID++
	m := s.net.Acquire()
	m.ID, m.Src, m.Dst = s.nextID, from, to
	m.Kind, m.Size = kind, size
	m.Payload = s.atSlots.Put(at)
	if !s.net.Send(m) {
		s.K.ScheduleEvent(2, (*netSendEvent)(s), s.msgSlots.Put(m))
	}
}

// deliver dispatches a crossbar arrival: the payload handle resolves the
// continuation (before Consume recycles the message).
func (s *System) deliver(cluster int, m *noc.Message) {
	slot := m.Payload // read before Consume recycles the message
	s.net.Consume(cluster, m)
	s.K.ScheduleEvent(s.cfg.HubCycles, (*hopEvent)(s), slot)
}

// snoop handles a bus broadcast at one cluster. The payload word packs the
// writer's node id (low 16 bits) beside the op's slot (high bits), so the
// 63 bystander snoops never touch the registry; the writer's own snoop
// (second pass) takes the op and completes the invalidation phase.
func (s *System) snoop(cluster int, m *noc.Message) {
	if cluster != int(m.Payload&0xffff) {
		return
	}
	o := s.opSlots.Take(m.Payload >> 16)
	// All clusters at or before the writer's second-pass position have now
	// snooped; clusters after it snoop within the same transit. Model the
	// grant as complete at the writer's snoop.
	o.acks = 0
	s.maybeFinishWrite(o)
}

// arriveAtHome runs the directory side of a transaction.
func (s *System) arriveAtHome(o *op) {
	if q, isBusy := s.busy[o.line]; isBusy {
		s.busy[o.line] = append(q, o)
		return
	}
	s.busy[o.line] = nil
	s.serve(o)
}

// serve plans and executes the timed message exchange for o, based on the
// directory's current (pre-transition) state.
func (s *System) serve(o *op) {
	owner, sharers := s.proto.Holders(o.line)
	home := s.home(o.line)

	if !o.write {
		// GetS: data from the owner cache if any, else memory at home.
		commit := func() { s.commitAtRequester(o) }
		if owner >= 0 && owner != o.node {
			s.sendOrLocal(home, owner, noc.KindCoherence, noc.RequestBytes, func() {
				s.sendOrLocal(owner, o.node, noc.KindResponse, noc.ResponseBytes, commit)
			})
			return
		}
		s.K.ScheduleEvent(s.cfg.MemoryCycles, (*hopEvent)(s), s.atSlots.Put(func() {
			s.sendOrLocal(home, o.node, noc.KindResponse, noc.ResponseBytes, commit)
		}))
		return
	}

	// GetM: collect every other holder.
	var holders []int
	if owner >= 0 && owner != o.node {
		holders = append(holders, owner)
	}
	for _, sh := range sharers {
		if sh != o.node {
			holders = append(holders, sh)
		}
	}
	o.acks = len(holders)
	o.data = false
	o.invalidated = len(holders) > 0

	dataReady := func() {
		o.data = true
		s.maybeFinishWrite(o)
	}
	// Data source.
	switch {
	case owner >= 0 && owner != o.node:
		s.sendOrLocal(home, owner, noc.KindCoherence, noc.RequestBytes, func() {
			s.sendOrLocal(owner, o.node, noc.KindResponse, noc.ResponseBytes, dataReady)
		})
	case s.proto.StateOf(o.node, o.line) == coherence.Invalid:
		s.K.ScheduleEvent(s.cfg.MemoryCycles, (*hopEvent)(s), s.atSlots.Put(func() {
			s.sendOrLocal(home, o.node, noc.KindResponse, noc.ResponseBytes, dataReady)
		}))
	default:
		dataReady() // upgrading a Shared/Owned copy: data already on hand
	}

	// Invalidations.
	if len(holders) == 0 {
		return
	}
	if s.cfg.UseBus && len(holders) > s.cfg.BroadcastThreshold {
		inv := s.bus.Acquire()
		inv.ID, inv.Src, inv.Dst = o.id, home, -1
		inv.Kind, inv.Size = noc.KindInvalidate, noc.RequestBytes
		inv.Payload = s.opSlots.Put(o)<<16 | uint64(o.node)
		if !s.bus.Broadcast(inv) {
			s.K.ScheduleEvent(2, (*busSendEvent)(s), s.msgSlots.Put(inv))
		}
		return
	}
	for _, h := range holders {
		h := h
		s.sendOrLocal(home, h, noc.KindInvalidate, noc.RequestBytes, func() {
			// The holder acks straight to the writer.
			s.sendOrLocal(h, o.node, noc.KindInvalidateAck, noc.RequestBytes, func() {
				o.acks--
				s.maybeFinishWrite(o)
			})
		})
	}
}

// maybeFinishWrite commits a write once its data and every invalidation ack
// have arrived.
func (s *System) maybeFinishWrite(o *op) {
	if !o.write || o.acks > 0 || !o.data {
		return
	}
	s.commitAtRequester(o)
}

// commitAtRequester applies the protocol transition and releases the line.
func (s *System) commitAtRequester(o *op) {
	if o.write {
		s.proto.Write(o.node, o.line)
	} else {
		s.proto.Read(o.node, o.line)
	}
	s.commit(o)
	// Release the home line and serve the next waiter.
	if q, ok := s.busy[o.line]; ok {
		if len(q) == 0 {
			delete(s.busy, o.line)
		} else {
			next := q[0]
			s.busy[o.line] = q[1:]
			s.K.ScheduleEvent(s.cfg.HubCycles, (*serveEvent)(s), s.opSlots.Put(next))
		}
	}
}

// commit records completion statistics.
func (s *System) commit(o *op) {
	lat := (s.K.Now() - o.start).Ns()
	if o.write {
		s.WriteLatency.Observe(lat)
		if o.invalidated {
			s.InvLatency.Observe(lat)
		}
	} else {
		s.ReadLatency.Observe(lat)
	}
	s.Completed++
	if o.done != nil {
		o.done()
	}
}

// Run drives the kernel until n transactions complete; it panics on
// deadlock.
func (s *System) Run(n uint64) {
	for s.Completed < n {
		if !s.K.Step() {
			panic(fmt.Sprintf("cohsim: deadlock with %d of %d transactions complete", s.Completed, n))
		}
	}
}
