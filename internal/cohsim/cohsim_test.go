package cohsim

import (
	"testing"
	"testing/quick"

	"corona/internal/coherence"
	"corona/internal/sim"
)

func TestColdReadCommits(t *testing.T) {
	s := New(DefaultConfig())
	done := false
	s.Access(5, 0x40, false, func() { done = true })
	s.Run(1)
	if !done {
		t.Fatal("transaction never committed")
	}
	if st := s.Protocol().StateOf(5, 0x40); st != coherence.Exclusive {
		t.Fatalf("state = %v, want E", st)
	}
	// Cold read: request to home + memory + data back ≈ 20 ns memory plus
	// tens of cycles of network; must exceed the raw memory latency.
	if mean := s.ReadLatency.Mean(); mean < 20 || mean > 60 {
		t.Errorf("cold read latency = %v ns, want 20-60", mean)
	}
}

func TestLocalHitIsFast(t *testing.T) {
	s := New(DefaultConfig())
	s.Access(3, 0x40, false, nil)
	s.Run(1)
	s.Access(3, 0x40, false, nil) // now a pure hub hit
	s.Run(2)
	if s.ReadLatency.Max() < s.ReadLatency.Mean()*1.5 {
		t.Log("latency spread small; acceptable")
	}
	if s.ReadLatency.Min() > 2 {
		t.Errorf("hit latency = %v ns, want ~0.8 (hub only)", s.ReadLatency.Min())
	}
}

func TestCacheToCacheForward(t *testing.T) {
	s := New(DefaultConfig())
	s.Access(1, 0x80, true, nil) // M at 1
	s.Run(1)
	memBefore := s.Stats().DataFromMemory
	s.Access(2, 0x80, false, nil) // must forward from 1, not memory
	s.Run(2)
	if s.Stats().DataFromMemory != memBefore {
		t.Error("read after remote M went to memory instead of forwarding")
	}
	if st := s.Protocol().StateOf(1, 0x80); st != coherence.Owned {
		t.Errorf("previous owner = %v, want O", st)
	}
}

func TestWriteInvalidatesWithTiming(t *testing.T) {
	s := New(DefaultConfig())
	line := uint64(0x1000)
	issued := uint64(0)
	for n := 0; n < 10; n++ {
		s.Access(n, line, false, nil)
		issued++
		s.Run(issued) // serialize to build the sharer set deterministically
	}
	s.Access(20, line, true, nil)
	issued++
	s.Run(issued)
	for n := 0; n < 10; n++ {
		if st := s.Protocol().StateOf(n, line); st != coherence.Invalid {
			t.Fatalf("sharer %d not invalidated (state %v)", n, st)
		}
	}
	if st := s.Protocol().StateOf(20, line); st != coherence.Modified {
		t.Fatalf("writer state = %v, want M", st)
	}
	if s.BusBroadcasts() == 0 {
		t.Error("wide invalidation should have used the broadcast bus")
	}
	if err := s.Protocol().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBusBeatsUnicastInvalidation(t *testing.T) {
	// The package's headline experiment: invalidating a 40-cluster sharer
	// pool must be faster and cheaper on the bus than with unicasts.
	// The writer is itself a sharer (an upgrade), so its data is on hand and
	// the measured latency is purely the invalidation exchange.
	run := func(useBus bool) (latNs float64, netMsgs uint64) {
		cfg := DefaultConfig()
		cfg.UseBus = useBus
		s := New(cfg)
		var issued uint64
		line := uint64(0x2000)
		for n := 0; n < 41; n++ {
			s.Access(n, line, false, nil)
			issued++
			s.Run(issued)
		}
		before := s.NetworkMessages()
		s.Access(40, line, true, nil) // sharer upgrades, invalidating 40 others
		issued++
		s.Run(issued)
		return s.InvLatency.Mean(), s.NetworkMessages() - before
	}
	busLat, busMsgs := run(true)
	uniLat, uniMsgs := run(false)
	if busLat >= uniLat {
		t.Errorf("bus invalidation latency %v ns >= unicast %v ns", busLat, uniLat)
	}
	if busMsgs >= uniMsgs {
		t.Errorf("bus invalidation used %d crossbar messages >= unicast %d", busMsgs, uniMsgs)
	}
	// Unicast costs ~2 crossbar messages per sharer (Inv + Ack).
	if uniMsgs < 70 {
		t.Errorf("unicast messages = %d, want ~80 for 40 sharers", uniMsgs)
	}
}

func TestLineSerialization(t *testing.T) {
	// Two concurrent writes to one line must serialize at the directory and
	// leave exactly one Modified holder.
	s := New(DefaultConfig())
	s.Access(1, 0x40, true, nil)
	s.Access(2, 0x40, true, nil)
	s.Run(2)
	m1 := s.Protocol().StateOf(1, 0x40) == coherence.Modified
	m2 := s.Protocol().StateOf(2, 0x40) == coherence.Modified
	if m1 == m2 {
		t.Fatalf("exactly one writer must end Modified (got %v/%v)", m1, m2)
	}
	if err := s.Protocol().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: any interleaving of timed reads and writes completes without
// deadlock and preserves the MOESI invariants.
func TestTimedProtocolProperty(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		rng := sim.NewRand(seed)
		ops := uint64(opsRaw%60) + 1
		s := New(DefaultConfig())
		lines := []uint64{0x40, 0x80, 0xc0}
		for i := uint64(0); i < ops; i++ {
			node := rng.Intn(64)
			line := lines[rng.Intn(len(lines))]
			write := rng.Intn(3) == 0
			delay := sim.Time(rng.Intn(40))
			s.K.Schedule(delay, func() { s.Access(node, line, write, nil) })
		}
		// Drive manually: Access calls are scheduled, so Completed advances
		// as the kernel drains.
		if s.K.RunLimit(3_000_000) >= 3_000_000 {
			return false
		}
		if s.Completed != ops {
			t.Logf("completed %d of %d", s.Completed, ops)
			return false
		}
		return s.Protocol().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSilentUpgrade(t *testing.T) {
	s := New(DefaultConfig())
	s.Access(7, 0x40, false, nil) // E
	s.Run(1)
	msgs := s.NetworkMessages()
	s.Access(7, 0x40, true, nil) // silent E->M
	s.Run(2)
	if s.NetworkMessages() != msgs {
		t.Error("silent upgrade generated network traffic")
	}
	if st := s.Protocol().StateOf(7, 0x40); st != coherence.Modified {
		t.Fatalf("state = %v, want M", st)
	}
}
