package swmr

import (
	"strings"
	"testing"
	"testing/quick"

	"corona/internal/noc"
	"corona/internal/sim"
)

// harness wires an SWMR crossbar with auto-consuming sinks.
type harness struct {
	k    *sim.Kernel
	x    *Crossbar
	got  []*noc.Message
	when []sim.Time
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{k: sim.NewKernel()}
	h.x = New(h.k, cfg)
	for c := 0; c < cfg.Clusters; c++ {
		c := c
		h.x.SetDeliver(c, func(m *noc.Message) {
			h.got = append(h.got, m)
			h.when = append(h.when, h.k.Now())
			h.x.Consume(c, m)
		})
	}
	return h
}

func msg(id uint64, src, dst, size int) *noc.Message {
	return &noc.Message{ID: id, Src: src, Dst: dst, Size: size, Kind: noc.KindRequest}
}

func TestNoArbitrationLatency(t *testing.T) {
	// The organization's headline property: an uncontended send starts
	// immediately — serialization plus propagation only, no token wait.
	h := newHarness(t, DefaultConfig())
	if !h.x.Send(msg(1, 1, 2, 64)) {
		t.Fatal("Send refused on empty queue")
	}
	h.k.Run()
	if len(h.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(h.got))
	}
	// src=1 -> dst=2: tx 1 cycle + propagation ceil(1/8) = 1 cycle. The MWSR
	// crossbar pays up to a full token revolution extra here.
	if want := sim.Time(1 + 1); h.when[0] != want {
		t.Errorf("delivery at %d, want %d (tx 1 + prop 1, zero arbitration)", h.when[0], want)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// A head message stalled on a full destination blocks a second message
	// to a completely idle destination — SWMR's structural cost. The same
	// pair of sends on the MWSR crossbar would proceed independently.
	cfg := DefaultConfig()
	cfg.RecvBuffer = 1
	k := sim.NewKernel()
	x := New(k, cfg)
	var toIdle []sim.Time
	for c := 0; c < cfg.Clusters; c++ {
		c := c
		x.SetDeliver(c, func(m *noc.Message) {
			if c == 2 {
				toIdle = append(toIdle, k.Now())
				x.Consume(c, m)
			}
			// Cluster 1's sink never consumes: its single credit stays held.
		})
	}
	// Exhaust dst 1's credit from another source, then queue src 0's pair.
	if !x.Send(msg(1, 3, 1, 64)) {
		t.Fatal("credit-exhausting send refused")
	}
	k.Run()
	if !x.Send(msg(2, 0, 1, 64)) || !x.Send(msg(3, 0, 2, 64)) {
		t.Fatal("sends refused below queue capacity")
	}
	k.Run()
	if len(toIdle) != 0 {
		t.Fatalf("message to idle dst 2 delivered despite blocked head (HOL violated)")
	}
	// Releasing dst 1's buffer unblocks the whole source FIFO.
	x.Consume(1, msg(99, 3, 1, 64))
	k.Run()
	if len(toIdle) != 1 {
		t.Fatalf("idle-destination message not delivered after head unblocked")
	}
}

func TestPropagationBounds(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	for d := 0; d < 64; d++ {
		for s := 0; s < 64; s++ {
			if s == d {
				continue
			}
			p := h.x.propagation(s, d)
			if p < 1 || p > 8 {
				t.Fatalf("propagation(%d,%d) = %d, want in [1,8]", s, d, p)
			}
		}
	}
}

func TestLocalTrafficPanics(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("src==dst Send did not panic")
		}
	}()
	h.x.Send(msg(1, 5, 5, 64))
}

func TestInjectionQueueBackPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectQueue = 2
	h := newHarness(t, cfg)
	if !h.x.Send(msg(1, 0, 1, 64)) || !h.x.Send(msg(2, 0, 2, 64)) {
		t.Fatal("queue refused before capacity")
	}
	if h.x.Send(msg(3, 0, 3, 64)) {
		t.Fatal("queue accepted beyond capacity")
	}
	h.k.Run()
	if len(h.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(h.got))
	}
	if !h.x.Send(msg(4, 0, 1, 64)) {
		t.Fatal("queue still refusing after drain")
	}
}

func TestReceiveBufferBackPressure(t *testing.T) {
	// A sink that never consumes stalls writers after RecvBuffer deliveries.
	cfg := DefaultConfig()
	cfg.RecvBuffer = 4
	cfg.InjectQueue = 16
	k := sim.NewKernel()
	x := New(k, cfg)
	var delivered int
	for c := 0; c < cfg.Clusters; c++ {
		x.SetDeliver(c, func(m *noc.Message) { delivered++ })
	}
	for i := 0; i < 10; i++ {
		if !x.Send(msg(uint64(i), 1, 0, 64)) {
			t.Fatalf("send %d refused", i)
		}
	}
	k.Run()
	if delivered != 4 {
		t.Fatalf("delivered %d with stalled sink, want 4 (RecvBuffer)", delivered)
	}
	x.Consume(0, msg(100, 1, 0, 64))
	k.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d after one Consume, want 5", delivered)
	}
}

func TestFanInSharesReceiverBandwidthTuned(t *testing.T) {
	// With a single tuned receiver per cluster, 63 writers into one reader
	// serialize on the receiver: the drain takes at least 63 transmit slots,
	// and the token ring (reused from the MWSR design) paces hand-offs.
	cfg := DefaultConfig()
	cfg.TunedReceivers = true
	cfg.InjectQueue = 2
	h := newHarness(t, cfg)
	for s := 1; s < 64; s++ {
		if !h.x.Send(msg(uint64(s), s, 0, 64)) {
			t.Fatalf("send from %d refused", s)
		}
	}
	h.k.Run()
	if len(h.got) != 63 {
		t.Fatalf("delivered %d, want 63", len(h.got))
	}
	end := h.when[len(h.when)-1]
	if end < 63 {
		t.Errorf("63 transfers through one tuned receiver finished in %d cycles (< 63)", end)
	}
}

func TestFanInParallelWithFullReceivers(t *testing.T) {
	// With per-channel receivers, fan-in is bounded by credits and source
	// channels, not a shared receiver: 16 writers with 16 credits all land
	// within one serialization + worst-case propagation window.
	cfg := DefaultConfig()
	h := newHarness(t, cfg)
	for s := 1; s <= 16; s++ {
		if !h.x.Send(msg(uint64(s), s, 0, 64)) {
			t.Fatalf("send from %d refused", s)
		}
	}
	h.k.Run()
	if len(h.got) != 16 {
		t.Fatalf("delivered %d, want 16", len(h.got))
	}
	if h.k.Now() > 9 {
		t.Errorf("16-way fan-in took %d cycles, want <= 9 (tx 1 + prop <= 8)", h.k.Now())
	}
}

func TestDeliveryCompleteness(t *testing.T) {
	for _, tuned := range []bool{false, true} {
		f := func(seed uint64, nRaw uint8) bool {
			n := int(nRaw%100) + 1
			rng := sim.NewRand(seed)
			k := sim.NewKernel()
			cfg := DefaultConfig()
			cfg.InjectQueue = 200 // accept everything up front
			cfg.TunedReceivers = tuned
			x := New(k, cfg)
			seen := make(map[uint64]int)
			for c := 0; c < cfg.Clusters; c++ {
				c := c
				x.SetDeliver(c, func(m *noc.Message) {
					seen[m.ID]++
					x.Consume(c, m)
				})
			}
			for i := 0; i < n; i++ {
				src := rng.Intn(64)
				dst := rng.Intn(63)
				if dst >= src {
					dst++
				}
				size := 16 + rng.Intn(112)
				if !x.Send(msg(uint64(i), src, dst, size)) {
					return false
				}
			}
			if k.RunLimit(2_000_000) >= 2_000_000 {
				return false
			}
			if len(seen) != n {
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("tuned=%v: %v", tuned, err)
		}
	}
}

func TestStatsAndUtilization(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.x.Send(msg(1, 0, 1, 16))
	h.x.Send(msg(2, 1, 0, 72))
	h.k.Run()
	s := h.x.Stats()
	if s.Messages != 2 || s.Bytes != 88 {
		t.Errorf("stats = %+v, want 2 messages / 88 bytes", s)
	}
	if u := h.x.Utilization(h.k.Now()); u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want in (0,1]", u)
	}
}

func TestFromParamsValidatesKeys(t *testing.T) {
	if _, err := FromParams(noc.FabricParams{Clusters: 64,
		Params: map[string]int{"recv_bufer": 8}}); err == nil ||
		!strings.Contains(err.Error(), "recv_bufer") {
		t.Fatalf("typo key not rejected: %v", err)
	}
	cfg, err := FromParams(noc.FabricParams{Clusters: 64,
		Params: map[string]int{ParamRecvBuffer: 8, ParamTunedReceivers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RecvBuffer != 8 || !cfg.TunedReceivers || cfg.BytesPerCycle != 64 {
		t.Fatalf("params not applied over defaults: %+v", cfg)
	}
	if _, err := FromParams(noc.FabricParams{Clusters: 64,
		Params: map[string]int{ParamBytesPerCycle: 0}}); err == nil {
		t.Fatal("zero channel width not rejected")
	}
}

func TestRegisteredFabric(t *testing.T) {
	f, ok := noc.Lookup("swmr")
	if !ok {
		t.Fatal("swmr fabric not registered")
	}
	if f.Display != "SWMR" || f.Utilization == nil || f.PowerW == nil {
		t.Fatalf("incomplete descriptor: %+v", f)
	}
	n, err := f.Build(sim.NewKernel(), noc.FabricParams{Clusters: 64})
	if err != nil {
		t.Fatal(err)
	}
	if n.Clusters() != 64 || n.Name() != "swmr" {
		t.Fatalf("built network wrong: %s/%d", n.Name(), n.Clusters())
	}
	if bw := f.BisectionBytesPerSec(noc.FabricParams{Clusters: 64}); bw != 64*64*5e9 {
		t.Errorf("bisection = %v, want 20.48 TB/s", bw)
	}
}
