// Package swmr models a single-writer multiple-reader photonic crossbar —
// the channel organization the Corona paper contrasts its MWSR design
// against (Section 3.2: "an alternative ... each cluster modulates its own
// dedicated channel and every other cluster filters it at the receiver").
//
// Each source cluster owns one DWDM channel that only it can modulate, so
// the send path needs no token arbitration at all: a writer's channel is
// always its own, and a message starts transmitting as soon as the
// destination grants a receive-buffer credit. The contention moves to the
// receive side. In the default organization every cluster carries tuned
// drop filters for all channels (receive-side wavelength filtering), which
// multiplies the ring count — the component-cost argument the paper makes —
// but removes arbitration latency entirely. With TunedReceivers, the model
// instead gives each cluster a single rapidly tunable receiver and
// arbitrates it with the same all-optical token ring the MWSR crossbar uses
// for its writers (package arbiter, reused only where the organization
// actually needs it).
//
// The structural trade against MWSR is head-of-line blocking: a source
// serializes all its traffic through one channel in FIFO order, so a
// message behind a back-pressured destination blocks messages to idle
// destinations — where the MWSR crossbar queues per (source, destination)
// pair and suffers token-acquisition latency instead.
package swmr

import (
	"fmt"

	"corona/internal/arbiter"
	"corona/internal/noc"
	"corona/internal/power"
	"corona/internal/sim"
)

// Config parameterizes the SWMR crossbar.
type Config struct {
	Clusters      int // endpoints (64)
	BytesPerCycle int // channel payload per cycle (64 = one cache line)
	// PropSpeed is the serpentine propagation rate in cluster positions per
	// cycle (8, matching the MWSR waveguide geometry).
	PropSpeed int
	// InjectQueue is the per-source injection FIFO depth. One FIFO per
	// source — not per (source, destination) — is the organization's
	// defining head-of-line constraint.
	InjectQueue int
	// RecvBuffer is the per-destination receive buffer depth in messages;
	// it is the credit pool writers draw from.
	RecvBuffer int
	// TunedReceivers selects the single-tunable-receiver organization:
	// each destination's receiver is arbitrated by an optical token ring.
	// False (the default) models fully provisioned per-channel receivers.
	TunedReceivers bool
}

// DefaultConfig returns the SWMR organization at the paper's channel
// geometry: same width, propagation, and buffering as the MWSR crossbar.
func DefaultConfig() Config {
	return Config{
		Clusters:      64,
		BytesPerCycle: 64,
		PropSpeed:     8,
		InjectQueue:   8,
		RecvBuffer:    16,
	}
}

// srcQueue is one source's injection FIFO over its private channel.
type srcQueue struct {
	msgs   sim.Fifo[*noc.Message]
	active bool // head message is progressing through credit/receiver/transmit
}

// Crossbar implements noc.Network.
type Crossbar struct {
	noc.MsgPool // per-network message free list (Acquire / Consume recycles)

	k   *sim.Kernel
	cfg Config
	// arb arbitrates destination receivers; nil unless TunedReceivers.
	arb *arbiter.TokenRing

	queues  []srcQueue // per source
	deliver []noc.DeliverFunc

	credits    []int           // per destination receive-buffer pool
	creditWait []sim.Fifo[int] // per destination: sources waiting, FIFO

	// slots parks in-flight messages for the typed delivery event.
	slots sim.Slots[*noc.Message]

	stats noc.Stats
	// BusyCycles accumulates channel occupancy for utilization reporting.
	BusyCycles uint64
}

var _ noc.Network = (*Crossbar)(nil)

// pack2 packs a (src, dst) cluster pair into a handler data word.
func pack2(src, dst int) uint64 { return uint64(src)<<16 | uint64(dst) }

func unpack2(data uint64) (src, dst int) { return int(data >> 16 & 0xffff), int(data & 0xffff) }

// creditEvent hands a freed receive-buffer credit to a waiting writer.
type creditEvent Crossbar

func (e *creditEvent) OnEvent(_ sim.Time, data uint64) {
	src, _ := unpack2(data)
	(*Crossbar)(e).haveCredit(src)
}

// releaseEvent fires when a message's tail leaves the source's channel: the
// head (which occupied its injection-FIFO slot while in flight) pops and
// the next queued message restarts at the credit step.
type releaseEvent Crossbar

func (e *releaseEvent) OnEvent(_ sim.Time, data uint64) {
	x := (*Crossbar)(e)
	src := int(data)
	x.queues[src].msgs.Pop()
	x.advance(src)
}

// rxFreeEvent fires when the tail reaches a tuned receiver: the receiver's
// token re-injects into the arbitration ring.
type rxFreeEvent Crossbar

func (e *rxFreeEvent) OnEvent(_ sim.Time, data uint64) {
	src, dst := unpack2(data)
	(*Crossbar)(e).arb.Release(dst, src)
}

// deliverEvent fires when the light reaches the destination's drop filters.
type deliverEvent Crossbar

func (e *deliverEvent) OnEvent(_ sim.Time, data uint64) {
	x := (*Crossbar)(e)
	m := x.slots.Take(data)
	x.stats.Messages++
	x.stats.Bytes += uint64(m.Size)
	x.deliver[m.Dst](m)
}

// Granted implements arbiter.GrantHandler for the tuned-receiver
// organization: channel is the destination whose receiver was won, cluster
// the transmitting source.
func (x *Crossbar) Granted(channel, cluster int) { x.transmit(cluster, channel) }

// New builds an SWMR crossbar on kernel k.
func New(k *sim.Kernel, cfg Config) *Crossbar {
	if cfg.Clusters > 1<<16 {
		// pack2 carries cluster ids in 16-bit event data fields.
		panic(fmt.Sprintf("swmr: %d clusters exceeds the %d-cluster event encoding limit",
			cfg.Clusters, 1<<16))
	}
	if cfg.Clusters <= 0 || cfg.BytesPerCycle <= 0 || cfg.PropSpeed <= 0 ||
		cfg.InjectQueue <= 0 || cfg.RecvBuffer <= 0 {
		panic(fmt.Sprintf("swmr: invalid config %+v", cfg))
	}
	x := &Crossbar{
		k:          k,
		cfg:        cfg,
		queues:     make([]srcQueue, cfg.Clusters),
		deliver:    make([]noc.DeliverFunc, cfg.Clusters),
		credits:    make([]int, cfg.Clusters),
		creditWait: make([]sim.Fifo[int], cfg.Clusters),
	}
	if cfg.TunedReceivers {
		x.arb = arbiter.New(k, cfg.Clusters, cfg.Clusters, cfg.PropSpeed)
	}
	for i := range x.credits {
		x.credits[i] = cfg.RecvBuffer
	}
	return x
}

// Name implements noc.Network.
func (x *Crossbar) Name() string { return "swmr" }

// Quiescent implements noc.Quiescer: nil only when the crossbar is in its
// construction state — empty source FIFOs, full credit pools, no waiting
// sources, no in-flight deliveries, and (when tuned) a virgin receiver
// arbiter.
func (x *Crossbar) Quiescent() error {
	for src := range x.queues {
		q := &x.queues[src]
		if !q.msgs.Empty() || q.active {
			return fmt.Errorf("swmr: source %d queue busy (%d queued, active=%v)", src, q.msgs.Len(), q.active)
		}
	}
	for d := range x.credits {
		if x.credits[d] != x.cfg.RecvBuffer {
			return fmt.Errorf("swmr: cluster %d holds %d/%d credits", d, x.credits[d], x.cfg.RecvBuffer)
		}
		if !x.creditWait[d].Empty() {
			return fmt.Errorf("swmr: cluster %d has %d sources waiting on credits", d, x.creditWait[d].Len())
		}
	}
	if n := x.slots.Len(); n != 0 {
		return fmt.Errorf("swmr: %d messages in flight", n)
	}
	if x.arb != nil {
		return x.arb.Quiescent()
	}
	return nil
}

// Reset implements noc.Resetter: restore the construction state in place,
// keeping the message pool and grown queue capacity. Delivery callbacks are
// left installed; a reusing System overwrites them via SetDeliver.
func (x *Crossbar) Reset() {
	for src := range x.queues {
		q := &x.queues[src]
		q.msgs.Reset()
		q.active = false
	}
	for d := range x.credits {
		x.credits[d] = x.cfg.RecvBuffer
		x.creditWait[d].Reset()
	}
	x.slots.Reset()
	if x.arb != nil {
		x.arb.Reset()
	}
	x.stats = noc.Stats{}
	x.BusyCycles = 0
}

// Clusters implements noc.Network.
func (x *Crossbar) Clusters() int { return x.cfg.Clusters }

// Stats implements noc.Network.
func (x *Crossbar) Stats() noc.Stats { return x.stats }

// SetDeliver implements noc.Network.
func (x *Crossbar) SetDeliver(cluster int, fn noc.DeliverFunc) {
	x.deliver[cluster] = fn
}

// Send implements noc.Network: enqueue on the source's channel FIFO.
// Cluster-local traffic never enters the optics, so src == dst panics.
func (x *Crossbar) Send(m *noc.Message) bool {
	if !noc.Valid(m, x.cfg.Clusters) {
		panic(noc.Validate(m, x.cfg.Clusters))
	}
	if m.Src == m.Dst {
		panic(fmt.Sprintf("swmr: message %d is cluster-local (src == dst == %d)", m.ID, m.Src))
	}
	q := &x.queues[m.Src]
	if q.msgs.Len() >= x.cfg.InjectQueue {
		return false
	}
	m.Inject = x.k.Now()
	q.msgs.Push(m)
	if !q.active {
		q.active = true
		x.advance(m.Src)
	}
	return true
}

// Consume implements noc.Network: the hub drained one message from
// cluster's receive buffer, freeing a credit and recycling the message.
// Like the MWSR crossbar, each cluster has a single buffer pool, so only
// the freed credit matters.
func (x *Crossbar) Consume(cluster int, m *noc.Message) {
	x.Release(m)
	if wait := &x.creditWait[cluster]; !wait.Empty() {
		// Hand the credit straight to the waiting writer.
		x.k.ScheduleEvent(0, (*creditEvent)(x), pack2(wait.Pop(), cluster))
		return
	}
	x.credits[cluster]++
	if x.credits[cluster] > x.cfg.RecvBuffer {
		panic(fmt.Sprintf("swmr: credit overflow at cluster %d", cluster))
	}
}

// advance starts src's head message through the credit (and, if configured,
// receiver-arbitration) pipeline.
func (x *Crossbar) advance(src int) {
	q := &x.queues[src]
	if q.msgs.Empty() {
		q.active = false
		return
	}
	dst := q.msgs.Front().Dst
	// Step 1: acquire a receive-buffer credit at dst. The head waits here on
	// back pressure — and everything queued behind it waits too (HOL).
	if x.credits[dst] > 0 {
		x.credits[dst]--
		x.haveCredit(src)
	} else {
		x.creditWait[dst].Push(src)
	}
}

// haveCredit is step 2: with full per-channel receivers the source
// transmits immediately (no arbitration — the defining SWMR property);
// with tuned receivers it must win the destination's receiver token first.
func (x *Crossbar) haveCredit(src int) {
	dst := x.queues[src].msgs.Front().Dst
	if x.arb != nil {
		x.arb.RequestEvent(dst, src, x)
		return
	}
	x.transmit(src, dst)
}

// transmit is step 3: modulate the message onto the source's own channel
// and deliver after serpentine propagation. The head stays at the front of
// the source FIFO (holding its injection slot) until the release fires.
func (x *Crossbar) transmit(src, dst int) {
	m := x.queues[src].msgs.Front()

	tx := sim.Time((m.Size + x.cfg.BytesPerCycle - 1) / x.cfg.BytesPerCycle)
	prop := x.propagation(src, dst)
	x.BusyCycles += uint64(tx)

	x.k.ScheduleEvent(tx+prop, (*deliverEvent)(x), x.slots.Put(m))
	if x.arb != nil {
		// A tuned receiver stays filtering this channel until the tail
		// arrives, so the token re-injects at tx+prop — and the source's
		// next message must not re-request a token it still holds, so its
		// release is scheduled after the token's (same cycle, FIFO order).
		x.k.ScheduleEvent(tx+prop, (*rxFreeEvent)(x), pack2(src, dst))
		x.k.ScheduleEvent(tx+prop, (*releaseEvent)(x), uint64(src))
		return
	}
	// Fully provisioned receivers: the channel frees as soon as the tail
	// leaves the modulators.
	x.k.ScheduleEvent(tx, (*releaseEvent)(x), uint64(src))
}

// propagation returns the serpentine transit time from src's modulators to
// dst's drop filters: light is sourced at the channel home (src), travels
// in cyclically increasing cluster order, and covers PropSpeed positions
// per cycle.
func (x *Crossbar) propagation(src, dst int) sim.Time {
	d := (dst - src) % x.cfg.Clusters
	if d <= 0 {
		d += x.cfg.Clusters
	}
	return sim.Time((d + x.cfg.PropSpeed - 1) / x.cfg.PropSpeed)
}

// Utilization returns mean channel occupancy over elapsed cycles across all
// source channels (0..1).
func (x *Crossbar) Utilization(elapsed sim.Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(x.BusyCycles) / (float64(elapsed) * float64(x.cfg.Clusters))
}

// Parameter keys the "swmr" fabric accepts in noc.FabricParams.Params.
const (
	ParamBytesPerCycle  = "bytes_per_cycle"
	ParamPropSpeed      = "prop_speed"
	ParamInjectQueue    = "inject_queue"
	ParamRecvBuffer     = "recv_buffer"
	ParamTunedReceivers = "tuned_receivers" // 0 = full per-channel receivers, 1 = token-arbitrated
)

// FromParams resolves a Config from the published defaults plus overrides.
func FromParams(p noc.FabricParams) (Config, error) {
	if err := p.CheckKeys("swmr", ParamBytesPerCycle, ParamPropSpeed,
		ParamInjectQueue, ParamRecvBuffer, ParamTunedReceivers); err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig()
	if p.Clusters > 0 {
		cfg.Clusters = p.Clusters
	}
	cfg.BytesPerCycle = p.Get(ParamBytesPerCycle, cfg.BytesPerCycle)
	cfg.PropSpeed = p.Get(ParamPropSpeed, cfg.PropSpeed)
	cfg.InjectQueue = p.Get(ParamInjectQueue, cfg.InjectQueue)
	cfg.RecvBuffer = p.Get(ParamRecvBuffer, cfg.RecvBuffer)
	cfg.TunedReceivers = p.Get(ParamTunedReceivers, 0) != 0
	if cfg.Clusters <= 0 || cfg.BytesPerCycle <= 0 || cfg.PropSpeed <= 0 ||
		cfg.InjectQueue <= 0 || cfg.RecvBuffer <= 0 {
		return Config{}, fmt.Errorf("swmr: non-positive parameter in %+v", cfg)
	}
	return cfg, nil
}

// init registers the SWMR crossbar with the fabric registry — the worked
// example of docs/ARCHITECTURE.md's "adding a topology" walkthrough.
func init() {
	noc.Register(noc.Fabric{
		Name:        "swmr",
		Display:     "SWMR",
		Description: "SWMR photonic crossbar: arbitration-free send, receive-side wavelength filtering",
		Build: func(k *sim.Kernel, p noc.FabricParams) (noc.Network, error) {
			cfg, err := FromParams(p)
			if err != nil {
				return nil, err
			}
			return New(k, cfg), nil
		},
		Check: func(p noc.FabricParams) error { _, err := FromParams(p); return err },
		BisectionBytesPerSec: func(p noc.FabricParams) float64 {
			cfg, err := FromParams(p)
			if err != nil {
				return 0
			}
			return float64(cfg.Clusters*cfg.BytesPerCycle) * 5e9
		},
		MinTransitCycles: 2,
		PowerW: func(_ noc.Stats, _ sim.Time) float64 {
			return power.SWMRContinuousW
		},
		Utilization: func(n noc.Network, elapsed sim.Time) float64 {
			return n.(*Crossbar).Utilization(elapsed)
		},
	})
}
