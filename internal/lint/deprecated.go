package lint

import (
	"go/ast"

	"corona/internal/lint/analysis"
)

// DeprecatedCaller fences off the repository's deprecated compatibility
// surfaces. The blocking façade wrappers (corona.RunWorkload and friends)
// exist only so external users of old releases keep compiling; everything
// in-repo must use the context-aware Client API (docs/API.md). This
// analyzer replaces the old CI grep gate — which keyed on spelled-out
// function names and died on any rename — with a semantic check: any use of
// an object whose doc comment carries a "Deprecated:" paragraph is
// reported, wherever the object migrates.
//
// Deprecation facts travel between compilation units in corona-vet's vetx
// files, so cross-package calls are caught under `go vet`'s separate
// per-package analysis. Two uses stay legal: the declaring package's own
// test files (they pin the wrappers' compatibility behavior), and the body
// of another deprecated declaration (compat shims may layer).
var DeprecatedCaller = &analysis.Analyzer{
	Name: "deprecated",
	Doc: "forbid in-repo use of symbols documented as Deprecated:, except " +
		"from the declaring package's tests and other deprecated shims",
	Run: runDeprecatedCaller,
}

func runDeprecatedCaller(pass *analysis.Pass) error {
	if len(pass.Deprecated) == 0 {
		return nil
	}
	selfPath := normalizePkgPath(pass.Pkg.Path())
	for _, file := range pass.Files {
		var enclosing []*ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if fd, ok := n.(*ast.FuncDecl); ok {
				enclosing = append(enclosing, fd)
				// Note: Inspect gives no pop signal per node type; track by
				// position instead — the last enclosing decl whose range
				// covers the current node is the active one.
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			key := analysis.DeprecatedKey(obj)
			if key == "" || !pass.Deprecated[key] {
				return true
			}
			declPath := normalizePkgPath(obj.Pkg().Path())
			if pass.InTestFile(id.Pos()) && declPath == selfPath {
				return true // the declaring package's tests pin compat behavior
			}
			for _, fd := range enclosing {
				if fd.Pos() <= id.Pos() && id.Pos() <= fd.End() && declaredDeprecated(pass, fd) {
					return true // deprecated shims may call each other
				}
			}
			pass.Reportf(id.Pos(),
				"%s is deprecated: see its Deprecated: doc note for the replacement (the compat façades map to the Client API, docs/API.md)", key)
			return true
		})
	}
	return nil
}

// declaredDeprecated reports whether the function declaration itself
// carries a Deprecated: paragraph — i.e. the use occurs inside another
// deprecated shim.
func declaredDeprecated(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	key := normalizePkgPath(pass.Pkg.Path()) + "." + name
	if fd.Recv != nil {
		// Method shim: reconstruct the method key through its own object.
		if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
			key = analysis.DeprecatedKey(obj)
		}
	}
	return pass.Deprecated[key]
}
