package lint_test

import (
	"testing"

	"corona/internal/lint"
	"corona/internal/lint/linttest"
)

func TestDeprecatedCaller(t *testing.T) {
	linttest.Run(t, lint.DeprecatedCaller,
		"dep/internal/caller", // cross-package uses, shim and allow exemptions
		"dep/internal/old",    // negative: declaring package and its tests
	)
}
