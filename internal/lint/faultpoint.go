package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"corona/internal/lint/analysis"
)

// FaultPoint polices the deterministic fault-injection vocabulary
// (internal/faultinject, docs/OPERATIONS.md). Chaos drills and the crash
// matrix address failure sites by name — `CORONA_FAULTS=store.append.torn:…`
// — so the names are an operational API:
//
//   - every faultinject.Fire/Hits point name must be a string literal (an
//     operator must be able to grep for it) shaped pkg.component.action,
//     with the leading segment naming the package that owns the site;
//   - a point fires from exactly one call site per package (a second site
//     silently doubles the hit-count stream the @N triggers key on);
//   - the set of points a package fires must match the fault-point table in
//     docs/OPERATIONS.md exactly, both directions — an undocumented point is
//     invisible to operators, a documented-but-deleted one is a stale drill.
//
// The documentation cross-check anchors at the repository's go.mod and runs
// only for packages that call into faultinject at all.
var FaultPoint = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "require faultinject point names to be literal pkg.component.action " +
		"strings, fired once per package, matching docs/OPERATIONS.md",
	Run: runFaultPoint,
}

// faultPointDoc is the repo-root-relative file holding the fault-point
// vocabulary. Points are recognized inside backticked code spans.
const faultPointDoc = "docs/OPERATIONS.md"

var (
	pointNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*){2,}$`)
	// docSpanRE captures inline backticked spans; the point name is the prefix
	// of the span up to an optional :mode@N / :mode:p=… trigger spec.
	docSpanRE = regexp.MustCompile("`([^`]+)`")
	// docTokenRE finds point-shaped tokens on fenced code-block lines, where
	// backticks carry no markup meaning.
	docTokenRE = regexp.MustCompile(`[a-z][a-z0-9]*(\.[a-z][a-z0-9]*){2,}`)
)

func runFaultPoint(pass *analysis.Pass) error {
	isFaultPkg := func(p string) bool { return hasInternalSegment(p, "faultinject") }
	pkgName := pass.Pkg.Name()

	fired := make(map[string][]token.Pos) // Fire sites per point name
	sawFaultinject := false

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.TypesInfo, call)
			if !funcFrom(fn, isFaultPkg) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				// Tests arm scratch points and drill production ones by
				// name; the vocabulary rules bind production sites only.
				return true
			}
			sawFaultinject = true
			if (fn.Name() != "Fire" && fn.Name() != "Hits") || len(call.Args) < 1 {
				return true
			}
			name, ok := stringLiteral(call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"faultinject.%s point name must be a string literal so operators can grep for it", fn.Name())
				return true
			}
			if !pointNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"fault point %q is not shaped pkg.component.action (lowercase dot-separated, ≥3 segments)", name)
				return true
			}
			if first := name[:strings.Index(name, ".")]; first != pkgName {
				pass.Reportf(call.Args[0].Pos(),
					"fault point %q claims package %q but fires from package %q: the first segment names the owning package", name, first, pkgName)
				return true
			}
			if fn.Name() == "Fire" {
				fired[name] = append(fired[name], call.Args[0].Pos())
			}
			return true
		})
	}

	// Duplicate-site check: deterministic @N triggers count hits globally
	// per point, so a second Fire site changes every drill's meaning.
	names := make([]string, 0, len(fired))
	for name := range fired {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := fired[name]
		if len(sites) > 1 {
			sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
			for _, pos := range sites[1:] {
				pass.Reportf(pos,
					"fault point %q is fired from %d call sites in this package: each point fires from one site, or its hit ordinals become path-dependent", name, len(sites))
			}
		}
	}

	if !sawFaultinject {
		return nil
	}
	documented, err := documentedFaultPoints(pass)
	if err != nil {
		pass.Reportf(pass.Files[0].Package,
			"cannot cross-check fault points against %s: %v", faultPointDoc, err)
		return nil
	}
	for _, name := range names {
		if !documented[name] {
			pass.Reportf(fired[name][0],
				"fault point %q is not documented in %s: add it to the fault-injection section so operators can find it", name, faultPointDoc)
		}
	}
	// Reverse direction: table rows owned by this package must still exist
	// in code.
	var docNames []string
	for name := range documented {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if owner := name[:strings.Index(name, ".")]; owner == pkgName && len(fired[name]) == 0 {
			pass.Reportf(pass.Files[0].Package,
				"%s documents fault point %q for this package, but nothing fires it: stale documentation row", faultPointDoc, name)
		}
	}
	return nil
}

// documentedFaultPoints extracts every point name the operations doc
// mentions: inline backticked spans in prose, and bare point-shaped tokens
// inside ``` code fences (where backticks carry no markup meaning — scanning
// a fence for span pairs would desynchronize every span after it).
// Trigger-spec suffixes are stripped, so `store.append.torn:error:p=0.05`
// documents point store.append.torn.
func documentedFaultPoints(pass *analysis.Pass) (map[string]bool, error) {
	if pass.ReadRepoFile == nil {
		return nil, fmt.Errorf("no repository root available")
	}
	data, err := pass.ReadRepoFile(faultPointDoc)
	if err != nil {
		return nil, err
	}
	points := make(map[string]bool)
	record := func(span string) {
		if i := strings.Index(span, ":"); i >= 0 {
			span = span[:i]
		}
		span = strings.TrimSpace(span)
		if pointNameRE.MatchString(span) {
			points[span] = true
		}
	}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			for _, tok := range docTokenRE.FindAllString(line, -1) {
				record(tok)
			}
			continue
		}
		for _, m := range docSpanRE.FindAllStringSubmatch(line, -1) {
			record(m[1])
		}
	}
	return points, nil
}

// stringLiteral unquotes expr when it is a plain string literal.
func stringLiteral(expr ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(expr).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
