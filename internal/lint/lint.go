// Package lint is corona-vet: a suite of static-analysis invariants that
// keep the repository's core guarantees — byte-identical deterministic
// sweeps, zero-allocation pooled message flow, the typed schedule path,
// disciplined fault-point naming, structured logging, and a deprecation
// fence — enforced by the compiler toolchain instead of convention and CI
// greps. The suite compiles into cmd/corona-vet and runs as
// `go vet -vettool=corona-vet ./...`; docs/LINTING.md is the catalog.
//
// Intentional violations are annotated in place:
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above it. The reason is mandatory and
// the analyzer name must exist; malformed directives are themselves
// diagnostics.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"corona/internal/lint/analysis"
)

// Analyzers returns the full corona-vet suite in catalog order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		SchedulePath,
		PoolFlow,
		FaultPoint,
		LogDiscipline,
		DeprecatedCaller,
	}
}

// Names returns the set of analyzer names, the legal targets of a
// lint:allow directive.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// simPackages is the simulation core: every package whose execution feeds
// the byte-identical determinism contract (docs/DETERMINISM.md). The server,
// store, and cmd layers are deliberately absent — wall-clock time is
// legitimate operational state there.
var simPackages = map[string]bool{
	"sim": true, "core": true, "noc": true, "xbar": true, "mesh": true,
	"swmr": true, "bus": true, "netif": true, "memory": true, "cohsim": true,
	"coherence": true, "arbiter": true, "stats": true, "trace": true,
	"traffic": true, "photonic": true, "power": true,
}

// hasInternalSegment reports whether pkgPath contains the consecutive
// segments ".../internal/<name>/...". Matching on segments rather than the
// repository's module prefix keeps the analyzers testable against fixture
// packages (testdata/src/<mod>/internal/<name>) and robust to a module
// rename.
func hasInternalSegment(pkgPath, name string) bool {
	segs := strings.Split(normalizePkgPath(pkgPath), "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && segs[i+1] == name {
			return true
		}
	}
	return false
}

// inSimScope reports whether pkgPath is one of the simulation-core packages.
func inSimScope(pkgPath string) bool {
	segs := strings.Split(normalizePkgPath(pkgPath), "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && simPackages[segs[i+1]] {
			return true
		}
	}
	return false
}

// splitPath splits a normalized package path into segments.
func splitPath(pkgPath string) []string {
	return strings.Split(normalizePkgPath(pkgPath), "/")
}

// normalizePkgPath strips go vet's test-variant decorations; see
// analysis.NormalizePkgPath.
func normalizePkgPath(pkgPath string) string { return analysis.NormalizePkgPath(pkgPath) }

// calleeOf resolves the called object of a call expression: the *types.Func
// for direct calls and method calls, nil for builtins, conversions, and
// calls through function-valued expressions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcFrom reports whether fn is a package-level function (no receiver)
// declared in a package satisfying pathOK.
func funcFrom(fn *types.Func, pathOK func(string) bool) bool {
	if fn == nil || fn.Pkg() == nil || !pathOK(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodOn reports whether fn is a method whose receiver's named type is
// typeName declared in a package satisfying pathOK.
func methodOn(fn *types.Func, typeName string, pathOK func(string) bool) bool {
	if fn == nil || fn.Pkg() == nil || !pathOK(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeName(sig.Recv().Type()) == typeName
}

// namedTypeName unwraps pointers and returns the named type's name, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isNamedFrom reports whether t (after unwrapping pointers) is the named
// type typeName from a package satisfying pathOK.
func isNamedFrom(t types.Type, typeName string, pathOK func(string) bool) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && pathOK(n.Obj().Pkg().Path())
}
