package lint

import (
	"go/ast"
	"go/types"

	"corona/internal/lint/analysis"
)

// PoolFlow enforces the pooled message lifecycle from PR 5
// (docs/PERFORMANCE.md, "Message lifecycle and pooling rules"): a
// noc.Message is born from a network's free list via Acquire and dies in
// Consume, which recycles it. Two ways to break that discipline are caught
// statically:
//
//  1. Constructing a noc.Message (or a mesh packet) by composite literal
//     outside its pool. A literal message bypasses the free list, so the
//     steady-state zero-allocation property silently erodes, and Consume
//     recycles a message the pool never owned.
//
//  2. Acquiring a message that provably cannot reach a consumer: the result
//     is discarded, or the variable holding it is only ever written to
//     (field fills) and never passed to a call, stored, sent, or returned.
//     Such a message is a leaked receive-buffer credit.
//
// The escape check is intraprocedural and deliberately conservative — any
// call argument, store, send, alias, or return counts as reaching a
// consumer; only the unambiguous leak is reported.
var PoolFlow = &analysis.Analyzer{
	Name: "poolflow",
	Doc: "forbid noc.Message/mesh packet literals outside their pools and flag " +
		"Acquire results that cannot reach Send/Consume",
	Run: runPoolFlow,
}

func runPoolFlow(pass *analysis.Pass) error {
	isNocPkg := func(p string) bool { return hasInternalSegment(p, "noc") }
	isMeshPkg := func(p string) bool { return hasInternalSegment(p, "mesh") }
	inNoc := isNocPkg(pass.Pkg.Path())

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if pass.InTestFile(n.Pos()) {
					return true
				}
				t := pass.TypesInfo.Types[n].Type
				if !inNoc && isNamedFrom(t, "Message", isNocPkg) {
					pass.Reportf(n.Pos(),
						"noc.Message composite literal bypasses the message pool: obtain messages with Acquire so Consume can recycle them (docs/PERFORMANCE.md)")
				}
				if isNamedFrom(t, "packet", isMeshPkg) {
					pass.Reportf(n.Pos(),
						"mesh packet composite literal bypasses the packet pool: route construction through newPacket")
				}
			case *ast.FuncDecl:
				if n.Body != nil && !pass.InTestFile(n.Pos()) {
					checkAcquireEscapes(pass, n, isNocPkg)
				}
			}
			return true
		})
	}
	return nil
}

// checkAcquireEscapes scans one function for Acquire calls whose *Message
// result never reaches a consuming use.
func checkAcquireEscapes(pass *analysis.Pass, fn *ast.FuncDecl, isNocPkg func(string) bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil || callee.Name() != "Acquire" {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Results().Len() != 1 || !isNamedFrom(sig.Results().At(0).Type(), "Message", isNocPkg) {
			return true
		}
		switch use := acquireResultUse(pass, fn, call); use {
		case acquireDiscarded:
			pass.Reportf(call.Pos(),
				"Acquire result is discarded: the message never reaches Send or Consume, leaking a pooled message")
		case acquireFilledOnly:
			pass.Reportf(call.Pos(),
				"acquired message is filled but never sent, stored, returned, or consumed: leaked pooled message")
		}
		return true
	})
}

type acquireUse int

const (
	acquireConsumed acquireUse = iota // reaches a call/store/send/return, or analysis gave up
	acquireDiscarded
	acquireFilledOnly
)

// acquireResultUse classifies what happens to the result of one Acquire
// call inside fn.
func acquireResultUse(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) acquireUse {
	// Result used directly as part of a larger expression (argument,
	// return value, …): find the immediate parent statement/expression.
	obj := acquireBoundVar(pass, fn, call)
	if obj == nil {
		// Not a simple `m := X.Acquire()` binding. A bare statement or
		// blank assignment discards the message; anything else (argument
		// position, return, field store) is a consuming context.
		if isDiscardingContext(fn, call) {
			return acquireDiscarded
		}
		return acquireConsumed
	}
	consumed := false
	walkWithParents(fn.Body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return
		}
		if identIsConsumingUse(id, parents) {
			consumed = true
		}
	})
	if consumed {
		return acquireConsumed
	}
	return acquireFilledOnly
}

// acquireBoundVar returns the variable a `v := X.Acquire()` statement binds,
// or nil when the call is not a single-variable initialization.
func acquireBoundVar(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) *types.Var {
	var found *types.Var
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
			return true
		}
		if ast.Unparen(assign.Rhs[0]) != ast.Expr(call) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				found = v
			} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				found = v
			}
		}
		return found == nil
	})
	return found
}

// isDiscardingContext reports whether call appears as its own statement or
// on the RHS of a blank-only assignment.
func isDiscardingContext(fn *ast.FuncDecl, call *ast.CallExpr) bool {
	discarding := false
	walkWithParents(fn.Body, func(n ast.Node, parents []ast.Node) {
		if n != ast.Node(call) || len(parents) == 0 {
			return
		}
		switch p := parents[len(parents)-1].(type) {
		case *ast.ExprStmt:
			discarding = true
		case *ast.AssignStmt:
			allBlank := true
			for _, lhs := range p.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank {
				discarding = true
			}
		}
	})
	return discarding
}

// identIsConsumingUse reports whether one use of the acquired variable can
// hand the message onward: argument to any call, a store (assignment RHS,
// composite literal, index/map store, channel send), or a return. Plain
// field fills (m.ID = …) and the binding itself do not count.
func identIsConsumingUse(id *ast.Ident, parents []ast.Node) bool {
	child := ast.Node(id)
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.SelectorExpr:
			// m.Field — keep climbing: m.Field as a call argument would be
			// odd for a message, but m itself as an argument arrives here
			// only when child == p.X, which the CallExpr case handles.
			if p.X != child {
				return false // the ident is the .Sel, not a use of m
			}
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == child {
					return true
				}
			}
			return false // it is the function expression, e.g. m.Method()
		case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit:
			return true
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == child {
					return true // aliased or stored somewhere
				}
			}
			// LHS: m.Field = x or m = x — a fill or rebind, not consumption.
			return false
		case *ast.IndexExpr, *ast.StarExpr, *ast.UnaryExpr, *ast.ParenExpr:
			// keep climbing through value-preserving wrappers
		default:
			return false
		}
		child = parents[i]
	}
	return false
}

// walkWithParents walks the AST calling visit with each node's ancestor
// chain (outermost first).
func walkWithParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
