package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the directive that suppresses one analyzer's diagnostics on
// the directive's own line and the line directly below it:
//
//	//lint:allow <analyzer> <reason>
//
// Comment directives (//-comments whose text starts with a word, a colon and
// no space) survive in the parsed AST like any other comment; the reason is
// part of the contract — an allow without one is reported instead of obeyed.
const allowPrefix = "//lint:allow"

// allowIndex maps file name → line number → set of analyzer names whose
// diagnostics are suppressed on that line.
type allowIndex map[string]map[int]map[string]bool

func (idx allowIndex) add(file string, line int, analyzer string) {
	lines := idx[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		idx[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

// suppressed reports whether a diagnostic from the named analyzer at posn is
// covered by an allow directive.
func (idx allowIndex) suppressed(analyzer string, posn token.Position) bool {
	return idx[posn.Filename][posn.Line][analyzer]
}

// indexAllows scans every comment in files for allow directives. Well-formed
// directives land in the returned index keyed on both the directive's line
// (trailing-comment placement) and the following line (directive-above
// placement). Malformed directives — no analyzer, no reason, or an analyzer
// name outside knownNames — become hygiene diagnostics attributed to the
// pseudo-analyzer "lint", so a typo cannot silently disable nothing.
func indexAllows(fset *token.FileSet, files []*ast.File, knownNames map[string]bool) (allowIndex, []SuiteDiagnostic) {
	idx := make(allowIndex)
	var hygiene []SuiteDiagnostic
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					hygiene = append(hygiene, SuiteDiagnostic{
						Analyzer: "lint",
						Pos:      c.Pos(),
						Message:  "lint:allow directive names no analyzer (want //lint:allow <analyzer> <reason>)",
					})
				case !knownNames[fields[0]]:
					hygiene = append(hygiene, SuiteDiagnostic{
						Analyzer: "lint",
						Pos:      c.Pos(),
						Message:  "lint:allow names unknown analyzer " + quote(fields[0]),
					})
				case len(fields) == 1:
					hygiene = append(hygiene, SuiteDiagnostic{
						Analyzer: "lint",
						Pos:      c.Pos(),
						Message:  "lint:allow " + fields[0] + " is missing its reason — say why the violation is intentional",
					})
				default:
					posn := fset.Position(c.Pos())
					idx.add(posn.Filename, posn.Line, fields[0])
					idx.add(posn.Filename, posn.Line+1, fields[0])
				}
			}
		}
	}
	return idx, hygiene
}

// quote quotes a token for a message without pulling in fmt here.
func quote(s string) string { return "\"" + s + "\"" }
