// Package analysis is a dependency-free reimplementation of the slice of
// golang.org/x/tools/go/analysis that corona-vet needs: an Analyzer value, a
// per-package Pass, plain Diagnostics, and a driver protocol compatible with
// `go vet -vettool` (see unitchecker.go). The build environment for this
// repository is intentionally hermetic — no module downloads — so the
// framework lives in-tree; the surface mirrors x/tools closely enough that an
// analyzer written here ports to the upstream API by changing one import.
//
// Two extensions carry repo-specific policy:
//
//   - Allow directives. A diagnostic is suppressed by a comment of the form
//     `//lint:allow <analyzer> <reason>` on the reported line or the line
//     directly above it. The reason is mandatory; a directive without one, or
//     one naming an analyzer that does not exist, is itself a diagnostic, so
//     the escape hatch cannot silently rot.
//
//   - Deprecation facts. Each Pass carries the set of objects whose doc
//     comment contains a "Deprecated:" paragraph, for the current package and
//     (through the vetx fact files go vet threads between compilation units)
//     its whole import closure. See facts.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named invariant check run over a single typechecked
// package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, allow directives, and the
	// -<name>=false disable flag. It must look like an identifier.
	Name string
	// Doc is the one-paragraph description printed by corona-vet help and
	// docs/LINTING.md's catalog.
	Doc string
	// Run performs the check, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer with a single typechecked package and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Deprecated holds the qualified keys of every object in the package's
	// import closure (and the package itself) whose documentation carries a
	// "Deprecated:" paragraph. Keys are "pkgpath.Func" for package-level
	// functions and "pkgpath.Type.Method" for methods; DeprecatedKey builds
	// the key for an arbitrary object.
	Deprecated map[string]bool

	// ReadRepoFile reads a file by path relative to the repository root
	// (the directory holding go.mod). Analyzers that cross-check source
	// against checked-in documentation — faultpoint and docs/OPERATIONS.md —
	// use it so the test harness can substitute a fixture tree. It returns
	// an error when no repository root is identifiable.
	ReadRepoFile func(rel string) ([]byte, error)

	diagnostics []Diagnostic
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) { p.diagnostics = append(p.diagnostics, d) }

// Reportf records one finding with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Several analyzers
// scope themselves to production code: tests legitimately poke lifecycle
// internals, pin deprecated compatibility surfaces, and build literals.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return isTestFilename(p.Fset.Position(pos).Filename)
}

func isTestFilename(name string) bool {
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// NormalizePkgPath strips the decorations go vet adds to test-variant
// package paths — the " [pkg.test]" suffix of a test build and the "_test"
// suffix of an external test package — so fact keys stay canonical across
// build variants.
func NormalizePkgPath(pkgPath string) string {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	return strings.TrimSuffix(pkgPath, "_test")
}

// DeprecatedKey returns the key under which obj would appear in
// Pass.Deprecated, or "" for objects that cannot carry deprecation facts
// (nil, universe-scope, or local objects). Package paths in keys are
// normalized via NormalizePkgPath.
func DeprecatedKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkgPath := NormalizePkgPath(obj.Pkg().Path())
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Struct fields share the "pkg.Name" key space with package-level
		// declarations (ast.File's Package field vs the ast.Package type);
		// fields carry no facts, so they must not match any.
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv()
			name := recvTypeName(recv.Type())
			if name == "" {
				return ""
			}
			return pkgPath + "." + name + "." + obj.Name()
		}
	}
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "" // local declaration
	}
	return pkgPath + "." + obj.Name()
}

// recvTypeName unwraps a method receiver type down to its named type's name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// A SuiteDiagnostic is a Diagnostic tagged with the analyzer that produced
// it, as returned by RunSuite.
type SuiteDiagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// RunSuite runs the given analyzers over one typechecked package, applies
// allow-directive filtering, and appends directive-hygiene findings (unknown
// analyzer names, missing reasons). knownNames is the full set of analyzer
// names a directive may legally reference — the complete suite, even when
// only a subset runs (the test harness runs analyzers one at a time).
func RunSuite(analyzers []*Analyzer, knownNames map[string]bool, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deprecated map[string]bool, readRepoFile func(string) ([]byte, error)) ([]SuiteDiagnostic, error) {
	allows, hygiene := indexAllows(fset, files, knownNames)
	var out []SuiteDiagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:     a,
			Fset:         fset,
			Files:        files,
			Pkg:          pkg,
			TypesInfo:    info,
			Deprecated:   deprecated,
			ReadRepoFile: readRepoFile,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
		for _, d := range pass.diagnostics {
			if allows.suppressed(a.Name, fset.Position(d.Pos)) {
				continue
			}
			out = append(out, SuiteDiagnostic{Analyzer: a.Name, Pos: d.Pos, Message: d.Message})
		}
	}
	return append(out, hygiene...), nil
}
