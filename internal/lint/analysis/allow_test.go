package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

//lint:allow determinism reasoned exception
var A = 1

//lint:allow
var B = 2

//lint:allow nosuch some reason
var C = 3

//lint:allow determinism
var D = 4
`

func parseAllowSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestIndexAllowsSuppression(t *testing.T) {
	fset, files := parseAllowSrc(t)
	idx, _ := indexAllows(fset, files, map[string]bool{"determinism": true})

	// The well-formed directive on line 3 covers lines 3 and 4.
	for _, line := range []int{3, 4} {
		if !idx.suppressed("determinism", token.Position{Filename: "p.go", Line: line}) {
			t.Errorf("line %d: directive does not suppress determinism", line)
		}
	}
	if idx.suppressed("determinism", token.Position{Filename: "p.go", Line: 5}) {
		t.Error("line 5: suppression leaked past the directive's line+1 window")
	}
	if idx.suppressed("poolflow", token.Position{Filename: "p.go", Line: 4}) {
		t.Error("directive for determinism suppressed a different analyzer")
	}
	// Malformed directives must not suppress anything.
	if idx.suppressed("determinism", token.Position{Filename: "p.go", Line: 13}) {
		t.Error("reason-less directive on line 12 suppressed its line+1")
	}
}

func TestIndexAllowsHygiene(t *testing.T) {
	fset, files := parseAllowSrc(t)
	_, hygiene := indexAllows(fset, files, map[string]bool{"determinism": true})

	wantFragments := []string{
		"names no analyzer",
		`unknown analyzer "nosuch"`,
		"missing its reason",
	}
	if len(hygiene) != len(wantFragments) {
		t.Fatalf("got %d hygiene diagnostics, want %d: %+v", len(hygiene), len(wantFragments), hygiene)
	}
	for i, frag := range wantFragments {
		if hygiene[i].Analyzer != "lint" {
			t.Errorf("hygiene[%d].Analyzer = %q, want \"lint\"", i, hygiene[i].Analyzer)
		}
		if !strings.Contains(hygiene[i].Message, frag) {
			t.Errorf("hygiene[%d] = %q, want it to mention %q", i, hygiene[i].Message, frag)
		}
	}
}
