package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestFactsRoundTrip(t *testing.T) {
	in := map[string]bool{"a.F": true, "b.T.M": true}
	data, err := EncodeFacts(in)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	if err := DecodeFacts(data, out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost facts: %v -> %v", in, out)
	}
	for k := range in {
		if !out[k] {
			t.Errorf("fact %q lost in round trip", k)
		}
	}
}

func TestEncodeFactsDeterministic(t *testing.T) {
	// Map iteration order must not leak into the bytes — go vet
	// content-addresses the vetx file into its build cache.
	a, _ := EncodeFacts(map[string]bool{"x.A": true, "x.B": true, "x.C": true})
	b, _ := EncodeFacts(map[string]bool{"x.C": true, "x.B": true, "x.A": true})
	if !bytes.Equal(a, b) {
		t.Errorf("same fact set encoded differently: %s vs %s", a, b)
	}
}

func TestDecodeFactsEmptyAndSchema(t *testing.T) {
	if err := DecodeFacts(nil, map[string]bool{}); err != nil {
		t.Errorf("empty vetx data should decode cleanly, got %v", err)
	}
	stale, _ := json.Marshal(vetxFacts{Schema: vetxSchema + 1, Deprecated: []string{"x.A"}})
	if err := DecodeFacts(stale, map[string]bool{}); err == nil {
		t.Error("unknown schema must be an error, not silently ignored")
	}
}

const deprecatedSrc = `package p

// Old is legacy.
//
// Deprecated: use New instead.
func Old() {}

// New is fine.
func New() {}

// Legacy does it the old way.
//
// Deprecated: use Modern.
func (*T) Legacy() {}

// T is a type.
type T struct{}

// DT is old.
//
// Deprecated: use T.
type DT struct{}

// Deprecated: gone.
var V = 1

// NotDeprecated mentions the word Deprecated: mid-paragraph only as prose
// and must not count.
func NotDeprecated() {}
`

func TestCollectDeprecated(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", deprecatedSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	CollectDeprecated("m/p", []*ast.File{f}, got)

	for _, want := range []string{"m/p.Old", "m/p.T.Legacy", "m/p.DT", "m/p.V"} {
		if !got[want] {
			t.Errorf("missing deprecated key %q (got %v)", want, got)
		}
	}
	for _, absent := range []string{"m/p.New", "m/p.T", "m/p.NotDeprecated"} {
		if got[absent] {
			t.Errorf("key %q wrongly marked deprecated", absent)
		}
	}
}

func TestNormalizePkgPath(t *testing.T) {
	cases := map[string]string{
		"corona/internal/core":                             "corona/internal/core",
		"corona/internal/core [corona/internal/core.test]": "corona/internal/core",
		"corona/internal/core_test":                        "corona/internal/core",
	}
	for in, want := range cases {
		if got := NormalizePkgPath(in); got != want {
			t.Errorf("NormalizePkgPath(%q) = %q, want %q", in, got, want)
		}
	}
}
