package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// vetxFacts is the payload corona-vet writes to the per-package vetx file go
// vet threads between compilation units (Config.VetxOutput / PackageVetx).
// Each package's file re-exports the union of its own facts and those of its
// direct dependencies, so transitive facts reach every consumer even though
// go vet only hands a unit its direct dependencies' files.
type vetxFacts struct {
	Schema     int      `json:"schema"`
	Deprecated []string `json:"deprecated,omitempty"`
}

const vetxSchema = 1

// EncodeFacts serializes the deprecation-fact set for a vetx file.
func EncodeFacts(deprecated map[string]bool) ([]byte, error) {
	f := vetxFacts{Schema: vetxSchema}
	for k := range deprecated {
		f.Deprecated = append(f.Deprecated, k)
	}
	// Deterministic output keeps go vet's content-addressed cache stable.
	sort.Strings(f.Deprecated)
	return json.Marshal(f)
}

// DecodeFacts merges a vetx file's fact set into dst. Unknown schemas are an
// error: silently ignoring them would re-open the exact gap (stale tooling
// passing vet) the suite exists to close.
func DecodeFacts(data []byte, dst map[string]bool) error {
	if len(data) == 0 {
		return nil // dependency carried no facts
	}
	var f vetxFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("corrupt vetx facts: %w", err)
	}
	if f.Schema != vetxSchema {
		return fmt.Errorf("vetx facts schema %d, this corona-vet speaks %d", f.Schema, vetxSchema)
	}
	for _, k := range f.Deprecated {
		dst[k] = true
	}
	return nil
}

// CollectDeprecated scans a package's syntax for declarations whose doc
// comment contains a "Deprecated:" paragraph (the convention pkg.go.dev and
// gopls honor) and records their keys — "pkgpath.Name" or
// "pkgpath.Type.Method" — into dst.
func CollectDeprecated(pkgPath string, files []*ast.File, dst map[string]bool) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !hasDeprecatedParagraph(d.Doc) {
					continue
				}
				key := pkgPath + "." + d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					if name := recvASTTypeName(d.Recv.List[0].Type); name != "" {
						key = pkgPath + "." + name + "." + d.Name.Name
					}
				}
				dst[key] = true
			case *ast.GenDecl:
				declDoc := d.Doc
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						if hasDeprecatedParagraph(s.Doc) || (len(d.Specs) == 1 && hasDeprecatedParagraph(declDoc)) {
							for _, n := range s.Names {
								dst[pkgPath+"."+n.Name] = true
							}
						}
					case *ast.TypeSpec:
						if hasDeprecatedParagraph(s.Doc) || (len(d.Specs) == 1 && hasDeprecatedParagraph(declDoc)) {
							dst[pkgPath+"."+s.Name.Name] = true
						}
					}
				}
			}
		}
	}
}

// hasDeprecatedParagraph reports whether a doc comment contains a paragraph
// starting with "Deprecated:".
func hasDeprecatedParagraph(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// recvASTTypeName extracts the receiver base type name from its AST.
func recvASTTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver [T]
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
