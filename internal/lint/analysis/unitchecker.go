package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// This file implements the (unpublished but stable) command-line protocol
// `go vet -vettool=<tool>` speaks to its tool, the same protocol
// golang.org/x/tools/go/analysis/unitchecker implements:
//
//	tool -V=full       print a version line for go's build cache
//	tool -flags        print the tool's flag definitions as JSON
//	tool [flags] x.cfg analyze the single compilation unit described by the
//	                   JSON config file, writing facts to cfg.VetxOutput and
//	                   diagnostics to stderr (exit 1 when any are found)
//
// go vet drives the tool once per package in the build graph — dependencies
// run in VetxOnly mode purely to produce facts — handing each invocation the
// export data of its imports (PackageFile) and the fact files of its direct
// dependencies (PackageVetx). Everything here sticks to the standard
// library: the gc export-data importer plus go/parser and go/types replace
// the x/tools loader.

// vetConfig mirrors cmd/go's vetConfig / unitchecker.Config JSON.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built from a suite of analyzers.
// It never returns.
func Main(progname string, analyzers []*Analyzer) {
	if len(os.Args) >= 2 && os.Args[1] == "-V=full" {
		// go's build cache identifies the tool by this line. The content
		// hash makes editing an analyzer invalidate cached vet results —
		// with a fixed version string, a rebuilt corona-vet would keep
		// serving stale verdicts out of GOCACHE.
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+firstSentence(a.Doc)+")")
	}
	printFlags := fs.Bool("flags", false, "print the tool's flags as JSON (for go vet)")
	fs.Parse(os.Args[1:])

	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		fs.VisitAll(func(f *flag.Flag) {
			if f.Name == "flags" {
				return
			}
			out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
		})
		data, err := json.Marshal(out)
		if err != nil {
			fatalf(progname, "encoding -flags: %v", err)
		}
		os.Stdout.Write(data)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] unit.cfg\n%s is a go vet tool; run it via go vet -vettool=$(which %s) ./...\n", progname, progname, progname)
		os.Exit(2)
	}

	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	os.Exit(runUnit(progname, args[0], active, known))
}

// runUnit analyzes one compilation unit and returns the process exit code.
func runUnit(progname, cfgPath string, analyzers []*Analyzer, known map[string]bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf(progname, "%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf(progname, "cannot decode vet config %s: %v", cfgPath, err)
	}
	if len(cfg.GoFiles) == 0 {
		fatalf(progname, "package %s has no Go files", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeFacts(progname, &cfg, nil) // compiler will report it
			}
			fatalf(progname, "%v", err)
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  makeImporter(&cfg, fset),
		Sizes:     types.SizesFor("gc", goarch()),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts(progname, &cfg, nil)
		}
		fatalf(progname, "typechecking %s: %v", cfg.ImportPath, err)
	}

	// Assemble deprecation facts: this unit's own doc comments plus the
	// fact files of its direct dependencies (which re-export transitives).
	deprecated := make(map[string]bool)
	for depPath, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // no facts recorded for this dependency
		}
		if err := DecodeFacts(data, deprecated); err != nil {
			fatalf(progname, "facts of %s: %v", depPath, err)
		}
	}
	// Standard-library deprecations (ast.Package, importer.ForCompiler, …)
	// are upstream's business, not this repo's fence: only units of the main
	// module contribute facts. (cfg.Standard can't tell us — it records the
	// std-ness of the unit's dependencies, never of the unit itself.)
	if inModule(cfg.ImportPath, cfg.ModulePath) {
		CollectDeprecated(NormalizePkgPath(pkg.Path()), files, deprecated)
	}

	if code := writeFacts(progname, &cfg, deprecated); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := RunSuite(analyzers, known, fset, files, pkg, info, deprecated, repoFileReader(cfg.Dir))
	if err != nil {
		fatalf(progname, "%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeFacts writes the unit's vetx output file; go vet content-addresses it
// into the build cache, so it must exist even when empty.
func writeFacts(progname string, cfg *vetConfig, deprecated map[string]bool) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	data, err := EncodeFacts(deprecated)
	if err != nil {
		fatalf(progname, "encoding facts: %v", err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fatalf(progname, "%v", err)
	}
	return 0
}

// makeImporter resolves imports through the export data go build already
// produced (cfg.PackageFile), after translating source-level import paths
// through cfg.ImportMap (vendoring, test variants).
func makeImporter(cfg *vetConfig, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// repoFileReader serves Pass.ReadRepoFile: paths are resolved against the
// nearest enclosing directory containing go.mod, starting from the unit's
// package directory.
func repoFileReader(pkgDir string) func(string) ([]byte, error) {
	return func(rel string) ([]byte, error) {
		dir := pkgDir
		for {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				return os.ReadFile(filepath.Join(dir, rel))
			}
			parent := filepath.Dir(dir)
			if parent == dir {
				return nil, fmt.Errorf("no go.mod above %s to anchor %s", pkgDir, rel)
			}
			dir = parent
		}
	}
}

// inModule reports whether importPath belongs to the module modPath.
// Standard-library units carry no module path, so they never match.
func inModule(importPath, modPath string) bool {
	if modPath == "" {
		return false
	}
	importPath = NormalizePkgPath(importPath)
	return importPath == modPath || strings.HasPrefix(importPath, modPath+"/")
}

// goarch returns the architecture go vet is building for; the tool inherits
// it via the environment like every other toolchain subprocess.
func goarch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// selfHash fingerprints the running executable for the -V=full build ID.
func selfHash() string {
	h := fnv.New64a()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func firstSentence(doc string) string {
	if i := strings.IndexAny(doc, ".\n"); i >= 0 {
		return doc[:i]
	}
	return doc
}

func fatalf(progname, format string, args ...any) {
	fmt.Fprintf(os.Stderr, progname+": "+format+"\n", args...)
	os.Exit(1)
}
