// Package rand is a fixture stub shadowing crypto/rand for corona-vet's
// hermetic analyzer tests.
package rand

func Read(b []byte) (int, error) { return 0, nil }
