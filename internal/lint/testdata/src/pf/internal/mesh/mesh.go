// Package mesh exercises the poolflow analyzer's packet rule: packet
// wrappers come from the pool feeder, nowhere else — including inside the
// package itself.
package mesh

type packet struct {
	stage int
	path  []int
}

type Mesh struct {
	free []*packet
}

func (m *Mesh) newPacket() *packet {
	if n := len(m.free); n > 0 {
		p := m.free[n-1]
		m.free = m.free[:n-1]
		return p
	}
	//lint:allow poolflow the pool's own feeder is the one sanctioned construction site
	return &packet{path: make([]int, 0, 8)}
}

func (m *Mesh) stray() *packet {
	return &packet{stage: 1} // want `mesh packet composite literal bypasses the packet pool`
}
