package router

import "pf/internal/noc"

func literalFromTest() *noc.Message {
	return &noc.Message{ID: 1} // tests may build literals freely
}
