// Package router exercises the poolflow analyzer: literal construction and
// Acquire results that never reach a consumer.
package router

import "pf/internal/noc"

func Literal() *noc.Message {
	return &noc.Message{ID: 1} // want `noc\.Message composite literal bypasses the message pool`
}

func AllowedLiteral() *noc.Message {
	//lint:allow poolflow fixture demonstrates an annotated exception
	return &noc.Message{ID: 1}
}

func Leaked(p *noc.Pool) {
	m := p.Acquire() // want `acquired message is filled but never sent, stored, returned, or consumed`
	m.ID = 7
	m.Size = 16
}

func Discarded(p *noc.Pool) {
	p.Acquire() // want `Acquire result is discarded`
}

func Sent(p *noc.Pool) {
	m := p.Acquire()
	m.ID = 7
	p.Send(m)
}

func Returned(p *noc.Pool) *noc.Message {
	m := p.Acquire()
	m.ID = 7
	return m
}

func Stored(p *noc.Pool, out []*noc.Message) []*noc.Message {
	m := p.Acquire()
	out = append(out, m)
	return out
}
