// Package noc is a fixture pool for the poolflow analyzer: the same
// Message/Acquire/Consume lifecycle as corona's internal/noc.
package noc

type Message struct {
	ID   uint64
	Size int
}

type Pool struct {
	free []*Message
}

// Acquire hands out a recycled (or fresh) message. The composite literal
// here is the pool's own feeder — package noc is exempt.
func (p *Pool) Acquire() *Message {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return &Message{}
}

func (p *Pool) Send(m *Message) bool { return true }

func (p *Pool) Consume(m *Message) { p.free = append(p.free, m) }
