// Package server exercises the logdiscipline analyzer: daemon packages log
// through slog, never raw streams or the std log package.
package server

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

type buffer struct{}

func (b *buffer) Write(p []byte) (int, error) { return len(p), nil }

func Bad(logger *slog.Logger) {
	fmt.Fprintf(os.Stderr, "boom\n")  // want `fmt\.Fprintf to a standard stream from a daemon package`
	fmt.Fprintln(os.Stdout, "status") // want `fmt\.Fprintln to a standard stream from a daemon package`
	fmt.Println("hello")              // want `fmt\.Println prints to stdout from a daemon package`
	log.Printf("old style")           // want `log\.Printf bypasses structured logging`
	log.Fatal("dying")                // want `log\.Fatal bypasses structured logging`
	println("debug")                  // want `builtin println writes raw bytes to stderr`
}

func Good(logger *slog.Logger) {
	logger.Info("structured", "key", 1)
	var b buffer
	fmt.Fprintf(&b, "not a std stream\n") // writers other than stderr/stdout are fine
	_ = fmt.Sprintf("formatting itself is fine")
}

func Allowed() {
	//lint:allow logdiscipline fixture demonstrates an annotated exception
	fmt.Println("sanctioned escape hatch")
}
