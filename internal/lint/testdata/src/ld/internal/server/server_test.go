package server

import "fmt"

func printFromTest() {
	fmt.Println("tests may print") // test files are exempt
}
