// Package api shows the logdiscipline analyzer's scoping: only
// internal/server and internal/store are fenced.
package api

import "fmt"

func Print() {
	fmt.Println("not a daemon package") // out of scope: no diagnostic
}
