package engine

import "sp/internal/sim"

func driveFromTest(k *sim.Kernel) {
	k.Schedule(1, func() {}) // tests keep the ergonomic closure form
}
