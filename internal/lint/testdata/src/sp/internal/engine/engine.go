// Package engine exercises the schedulepath analyzer inside internal/
// production code.
package engine

import "sp/internal/sim"

type tick struct{}

func (tick) OnEvent(now sim.Time, data uint64) {}

func Drive(k *sim.Kernel) {
	k.Schedule(1, func() {}) // want `closure-compat Kernel\.Schedule allocates per event`
	k.At(10, func() {})      // want `closure-compat Kernel\.At allocates per event`
	k.ScheduleEvent(1, tick{}, 0)
	k.AtEvent(10, tick{}, 0)
	//lint:allow schedulepath fixture demonstrates an annotated exception
	k.Schedule(2, func() {})
}
