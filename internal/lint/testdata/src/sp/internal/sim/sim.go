// Package sim is a fixture kernel for the schedulepath analyzer: the same
// Schedule/ScheduleEvent surface as corona's internal/sim.
package sim

type Time int64

type Handler interface {
	OnEvent(now Time, data uint64)
}

type Kernel struct{}

func (k *Kernel) Schedule(delay Time, fn func())                   {}
func (k *Kernel) At(t Time, fn func())                             {}
func (k *Kernel) ScheduleEvent(delay Time, h Handler, data uint64) {}
func (k *Kernel) AtEvent(t Time, h Handler, data uint64)           {}
