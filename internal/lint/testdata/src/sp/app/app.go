// Package app shows the schedulepath analyzer's scoping: code outside
// internal/ may use the closure-compat path.
package app

import "sp/internal/sim"

func Drive(k *sim.Kernel) {
	k.Schedule(1, func() {}) // not under internal/: no diagnostic
}
