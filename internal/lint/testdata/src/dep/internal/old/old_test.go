package old

func pinCompatBehavior() int {
	return Old() + T{}.Legacy() // the declaring package's tests pin compat behavior
}
