// Package old declares deprecated compatibility surfaces for the deprecated
// analyzer fixtures.
package old

// Old is the legacy entry point.
//
// Deprecated: use New instead.
func Old() int { return 1 }

// New is the supported entry point.
func New() int { return 2 }

// T is a supported type with one deprecated method.
type T struct{}

// Legacy does it the old way.
//
// Deprecated: use (T).Modern instead.
func (T) Legacy() int { return 1 }

// Modern is the supported method.
func (T) Modern() int { return 2 }

// DT is the legacy handle type.
//
// Deprecated: use T instead.
type DT struct{}
