// Package caller exercises the deprecated analyzer: in-repo use of symbols
// carrying a Deprecated: doc paragraph.
package caller

import "dep/internal/old"

func UsesOld() int {
	return old.Old() // want `dep/internal/old\.Old is deprecated`
}

func UsesNew() int {
	return old.New()
}

func UsesLegacyMethod(t old.T) int {
	return t.Legacy() // want `dep/internal/old\.T\.Legacy is deprecated`
}

func UsesModernMethod(t old.T) int {
	return t.Modern()
}

func UsesDeprecatedType() any {
	return old.DT{} // want `dep/internal/old\.DT is deprecated`
}

// Shim layers one compat surface on another.
//
// Deprecated: use UsesNew instead.
func Shim() int {
	return old.Old() // deprecated shims may call each other
}

func Allowed() int {
	//lint:allow deprecated fixture demonstrates an annotated exception
	return old.Old()
}
