// Package rand is a fixture stub shadowing math/rand for corona-vet's
// hermetic analyzer tests.
package rand

type Source interface{ Int63() int64 }

type Rand struct{}

func Intn(n int) int              { return 0 }
func Float64() float64            { return 0 }
func NewSource(seed int64) Source { return nil }
func New(src Source) *Rand        { return &Rand{} }
func (r *Rand) Intn(n int) int    { return 0 }
