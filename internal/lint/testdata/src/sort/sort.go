// Package sort is a fixture stub shadowing the standard library for
// corona-vet's hermetic analyzer tests.
package sort

func Ints(a []int)       {}
func Strings(a []string) {}
