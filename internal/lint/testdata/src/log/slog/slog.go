// Package slog is a fixture stub shadowing log/slog for corona-vet's
// hermetic analyzer tests.
package slog

type Logger struct{}

func Default() *Logger { return &Logger{} }

func (l *Logger) Info(msg string, args ...any)  {}
func (l *Logger) Error(msg string, args ...any) {}
