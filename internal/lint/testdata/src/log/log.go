// Package log is a fixture stub shadowing the standard library for
// corona-vet's hermetic analyzer tests.
package log

func Printf(format string, v ...any) {}
func Println(v ...any)               {}
func Fatal(v ...any)                 {}
func Fatalf(format string, v ...any) {}
