// Package time is a fixture stub shadowing the standard library for
// corona-vet's hermetic analyzer tests.
package time

type Time struct{}

type Duration int64

func Now() Time                    { return Time{} }
func Since(t Time) Duration        { return 0 }
func Sleep(d Duration)             {}
func (t Time) Sub(u Time) Duration { return 0 }
