// Package faultinject is a fixture registry for the faultpoint analyzer:
// the same Fire/Hits surface as corona's internal/faultinject.
package faultinject

func Fire(name string) error { return nil }

func Hits(name string) uint64 { return 0 }
