package alpha

import "fp/internal/faultinject"

func scratchFromTest() error {
	return faultinject.Fire("scratch.point.name") // tests arm scratch points freely
}
