// Package alpha exercises the faultpoint analyzer: literal names, shape,
// package ownership, duplicate sites, and the docs cross-check.
package alpha // want `documents fault point "alpha\.stale\.act" for this package, but nothing fires it`

import "fp/internal/faultinject"

func Documented() error {
	return faultinject.Fire("alpha.thing.act")
}

func Fenced() error {
	return faultinject.Fire("alpha.fenced.act")
}

func Undocumented() error {
	return faultinject.Fire("alpha.missing.act") // want `fault point "alpha\.missing\.act" is not documented in docs/OPERATIONS\.md`
}

func NonLiteral(name string) error {
	return faultinject.Fire(name) // want `point name must be a string literal`
}

func BadShape() error {
	return faultinject.Fire("alpha.bad") // want `is not shaped pkg\.component\.action`
}

func WrongOwner() error {
	return faultinject.Fire("beta.thing.act") // want `claims package "beta" but fires from package "alpha"`
}

func Duplicate() error {
	return faultinject.Fire("alpha.thing.act") // want `fired from 2 call sites in this package`
}

func Observed() uint64 {
	return faultinject.Hits("alpha.thing.act")
}
