// Package gamma exercises the faultpoint analyzer when the fixture tree has
// no docs/OPERATIONS.md to cross-check against.
package gamma // want `cannot cross-check fault points against docs/OPERATIONS\.md`

import "fp/internal/faultinject"

func Run() error {
	return faultinject.Fire("gamma.thing.act")
}
