// Package os is a fixture stub shadowing the standard library for
// corona-vet's hermetic analyzer tests.
package os

type File struct{}

var (
	Stderr = &File{}
	Stdout = &File{}
)
