// Package server shows the determinism analyzer's scoping: internal/server
// is operational code, where wall-clock time is legitimate.
package server

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start) // out of sim scope: no diagnostic
}
