// Package core exercises the determinism analyzer: wall-clock time, global
// rand, crypto randomness, and map-ordered output inside a sim-scope package.
package core

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func WallClock() {
	_ = time.Now()             // want `time\.Now is wall-clock time`
	time.Sleep(1)              // want `time\.Sleep is wall-clock scheduling`
	start := time.Time{}       // constructing a Time value is fine
	_ = time.Since(start)      // want `time\.Since is wall-clock time`
	_ = start.Sub(time.Time{}) // method on a value: not the runtime clock
}

func GlobalRand() {
	_ = rand.Intn(6)   // want `math/rand\.Intn draws from the global rand source`
	_ = rand.Float64() // want `math/rand\.Float64 draws from the global rand source`
	var buf []byte
	_, _ = crand.Read(buf) // want `crypto/rand is nondeterministic by design`
}

func SeededRand() int {
	r := rand.New(rand.NewSource(42)) // explicit seed: the sanctioned shape
	return r.Intn(6)
}

func Allowed() {
	//lint:allow determinism fixture demonstrates an annotated exception
	_ = time.Now()
}

func MapOrdered(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order is randomized, and this loop appends`
		out = append(out, k)
	}
	return out
}

func MapSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func MapCount(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func MapPrint(m map[int]int) {
	for k := range m { // want `map iteration order is randomized, and this loop writes output`
		fmt.Println(k)
	}
}

func SliceOrdered(xs []int) []int {
	var out []int
	for _, x := range xs { // slices iterate deterministically
		out = append(out, x)
	}
	return out
}
