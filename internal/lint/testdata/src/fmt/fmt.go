// Package fmt is a fixture stub shadowing the standard library for
// corona-vet's hermetic analyzer tests.
package fmt

func Print(a ...any) (int, error)                         { return 0, nil }
func Printf(format string, a ...any) (int, error)         { return 0, nil }
func Println(a ...any) (int, error)                       { return 0, nil }
func Fprint(w any, a ...any) (int, error)                 { return 0, nil }
func Fprintf(w any, format string, a ...any) (int, error) { return 0, nil }
func Fprintln(w any, a ...any) (int, error)               { return 0, nil }
func Sprintf(format string, a ...any) string              { return "" }
func Errorf(format string, a ...any) error                { return nil }
