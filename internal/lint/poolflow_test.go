package lint_test

import (
	"testing"

	"corona/internal/lint"
	"corona/internal/lint/linttest"
)

func TestPoolFlow(t *testing.T) {
	linttest.Run(t, lint.PoolFlow,
		"pf/internal/router", // literals, leaks, discards, consuming flows
		"pf/internal/noc",    // negative: the pool's own package is exempt
		"pf/internal/mesh",   // packet literals, including in-package
	)
}
