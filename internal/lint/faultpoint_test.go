package lint_test

import (
	"testing"

	"corona/internal/lint"
	"corona/internal/lint/linttest"
)

func TestFaultPoint(t *testing.T) {
	linttest.Run(t, lint.FaultPoint,
		"fp/internal/alpha",       // shapes, ownership, duplicates, docs cross-check
		"fp/internal/faultinject", // negative: the registry itself fires nothing
		"fpnodoc/internal/gamma",  // missing docs/OPERATIONS.md is reported
	)
}
