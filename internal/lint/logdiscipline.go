package lint

import (
	"go/ast"
	"go/types"

	"corona/internal/lint/analysis"
)

// LogDiscipline keeps the daemon layers on structured logging. PR 7 moved
// internal/server and internal/store from fmt.Fprintf(os.Stderr, …) to
// log/slog — operators parse the daemon's output (the -log json mode feeds
// collectors), and log.Fatal-style exits bypass graceful shutdown and the
// journal's crash-safety guarantees. This analyzer replaces the old CI grep
// with a typed check: in those packages, no direct stderr/stdout printing,
// no std "log" package, no bare print/println builtins. slog is the only
// sanctioned sink; the cmd/ layer (CLI tools whose stderr IS the UI) stays
// free.
var LogDiscipline = &analysis.Analyzer{
	Name: "logdiscipline",
	Doc: "forbid fmt stderr/stdout printing, the std log package, and bare " +
		"print builtins in internal/server and internal/store (slog only)",
	Run: runLogDiscipline,
}

func runLogDiscipline(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !hasInternalSegment(path, "server") && !hasInternalSegment(path, "store") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			checkLogCall(pass, call)
			return true
		})
	}
	return nil
}

func checkLogCall(pass *analysis.Pass, call *ast.CallExpr) {
	// print/println builtins write raw bytes to stderr behind the runtime's
	// back.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			pass.Reportf(call.Pos(),
				"builtin %s writes raw bytes to stderr: use the injected *slog.Logger", id.Name)
		}
		return
	}

	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "log":
		pass.Reportf(call.Pos(),
			"log.%s bypasses structured logging (and Fatal skips graceful shutdown): use the injected *slog.Logger", fn.Name())
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			pass.Reportf(call.Pos(),
				"fmt.%s prints to stdout from a daemon package: use the injected *slog.Logger", fn.Name())
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && isStdStream(pass, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"fmt.%s to a standard stream from a daemon package: use the injected *slog.Logger", fn.Name())
			}
		}
	}
}

// isStdStream reports whether expr denotes os.Stderr or os.Stdout.
func isStdStream(pass *analysis.Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stderr" || obj.Name() == "Stdout"
}
