package lint_test

import (
	"testing"

	"corona/internal/lint"
	"corona/internal/lint/linttest"
)

func TestSchedulePath(t *testing.T) {
	linttest.Run(t, lint.SchedulePath,
		"sp/internal/engine", // positive, allow, and test-file cases
		"sp/internal/sim",    // negative: the kernel's own package is exempt
		"sp/app",             // negative: outside internal/
	)
}
