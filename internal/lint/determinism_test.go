package lint_test

import (
	"testing"

	"corona/internal/lint"
	"corona/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism,
		"det/internal/core",   // positive, allow, and map-range cases
		"det/internal/server", // negative: operational scope is exempt
	)
}
